#include "src/workloads/cassandra.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/types.h"
#include "src/mem/address_space.h"

namespace mtm {
namespace {

Bytes MemtableBytes(const Workload::Params& p, const CassandraWorkload::Options& o) {
  return !o.memtable_bytes.IsZero() ? o.memtable_bytes : HugeAlignUp(p.footprint_bytes / 32);
}

Bytes CommitLogBytes(const Workload::Params& p, const CassandraWorkload::Options& o) {
  return !o.commitlog_bytes.IsZero() ? o.commitlog_bytes : HugeAlignUp(p.footprint_bytes / 64);
}

u64 NumRows(const Workload::Params& p, const CassandraWorkload::Options& o) {
  Bytes rows_bytes =
      HugeAlignDown(p.footprint_bytes - MemtableBytes(p, o) - CommitLogBytes(p, o));
  return std::max<u64>(1, rows_bytes / o.row_bytes);
}

}  // namespace

CassandraWorkload::CassandraWorkload(Params params)
    : CassandraWorkload(params, Options{}) {}

CassandraWorkload::CassandraWorkload(Params params, Options options)
    : Workload(params),
      options_(options),
      key_zipf_(NumRows(params, options), options.zipf_theta) {
  memtable_bytes_ = MemtableBytes(params_, options_);
  commitlog_bytes_ = CommitLogBytes(params_, options_);
  rows_bytes_ = HugeAlignDown(params_.footprint_bytes - memtable_bytes_ - commitlog_bytes_);
  num_rows_ = NumRows(params_, options_);
  MTM_CHECK_GT(num_rows_, 0ull);
}

void CassandraWorkload::Build(AddressSpace& address_space) {
  // Base pages for the row store (scattered row reads/updates, as above).
  u32 r = address_space.Allocate(rows_bytes_, /*thp=*/false, "cassandra.rows");
  u32 m = address_space.Allocate(memtable_bytes_, /*thp=*/true, "cassandra.memtable");
  u32 c = address_space.Allocate(commitlog_bytes_, /*thp=*/true, "cassandra.commitlog");
  rows_start_ = address_space.vma(r).start;
  memtable_start_ = address_space.vma(m).start;
  commitlog_start_ = address_space.vma(c).start;
}

VirtAddr CassandraWorkload::RowAddr(u64 key) {
  // Keys map to slots with block-granular shuffling: runs of 4096
  // consecutive ranks (a few MB of rows) stay together but the blocks
  // scatter across the store. Popular keys thus form hot *blocks* spread
  // over the address space — the clustering a real memtable/SSTable layout
  // produces — rather than a uniform per-row hash that would erase all
  // page-level hotness structure.
  constexpr u64 kBlockRows = 4096;
  u64 num_blocks = std::max<u64>(1, num_rows_ / kBlockRows);
  u64 block = ((key / kBlockRows) * 0x9e3779b97f4a7c15ull >> 17) % num_blocks;
  u64 slot = block * kBlockRows + key % kBlockRows;
  if (slot >= num_rows_) {
    slot = key % num_rows_;
  }
  return rows_start_ + options_.row_bytes * slot;
}

u32 CassandraWorkload::NextBatch(MemAccess* out, u32 n) {
  u32 filled = 0;
  while (filled < n) {
    u32 thread = NextThread();
    u64 key = key_zipf_.Sample(rng_);
    VirtAddr row = RowAddr(key);
    bool update = rng_.NextBernoulli(0.5);  // YCSB-A: 50/50 read/update
    out[filled++] = MemAccess{row, thread, false};  // read the row either way
    if (!update || filled >= n) {
      continue;
    }
    out[filled++] = MemAccess{row, thread, true};
    if (filled < n && rng_.NextBernoulli(options_.memtable_prob)) {
      VirtAddr a = memtable_start_ + Bytes(memtable_cursor_ % memtable_bytes_.value());
      memtable_cursor_ += options_.row_bytes.value();
      out[filled++] = MemAccess{a, thread, true};
    }
    if (filled < n) {
      VirtAddr a = commitlog_start_ + Bytes(commitlog_cursor_ % commitlog_bytes_.value());
      commitlog_cursor_ += 64;
      out[filled++] = MemAccess{a, thread, true};
    }
  }
  return filled;
}

}  // namespace mtm
