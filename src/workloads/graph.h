// Graph analytics workloads: BFS and SSSP over a synthetic skewed graph
// (Table 2: parallel traversal/shortest-path on a 0.9B-node, 14B-edge graph,
// 525 GB, read-only).
//
// A real CSR graph is generated (power-law-ish degrees via zipf-sampled
// endpoints, RMAT-like skew) and real BFS / Bellman-Ford-style SSSP rounds
// are executed over it; the traversal's loads of the offset, edge, and
// per-vertex state arrays are emitted as simulated memory accesses at the
// arrays' simulated addresses. Hot structure emerges naturally: high-degree
// vertices' adjacency lists and the frontier state are touched far more
// often than the long tail.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/mem/address_space.h"
#include "src/workloads/workload.h"

namespace mtm {

// Compressed-sparse-row graph with skewed degree distribution.
class CsrGraph {
 public:
  // Builds a graph with ~avg_degree * num_vertices edges; hub vertices are
  // chosen by zipf so degree mass concentrates (RMAT-like skew).
  CsrGraph(u64 num_vertices, double avg_degree, double skew_theta, u64 seed);

  u64 num_vertices() const { return num_vertices_; }
  u64 num_edges() const { return edges_.size(); }
  u64 OffsetOf(u64 v) const { return offsets_[v]; }
  u64 DegreeOf(u64 v) const { return offsets_[v + 1] - offsets_[v]; }
  u32 Edge(u64 index) const { return edges_[index]; }

 private:
  u64 num_vertices_;
  std::vector<u64> offsets_;  // size num_vertices + 1
  std::vector<u32> edges_;
};

class GraphWorkload : public Workload {
 public:
  enum class Algorithm { kBfs, kSssp };

  struct Options {
    Algorithm algorithm = Algorithm::kBfs;
    double avg_degree = 15.5;  // 14B edges / 0.9B nodes
    double skew_theta = 0.6;
    u32 edges_per_access = 2;  // 64B line covers two 32B edge records
  };

  GraphWorkload(Params params, Options options);

  std::string name() const override {
    return options_.algorithm == Algorithm::kBfs ? "bfs" : "sssp";
  }
  void Build(AddressSpace& address_space) override;
  u32 NextBatch(MemAccess* out, u32 n) override;
  double read_fraction() const override { return 1.0; }  // Table 2: read-only

  const CsrGraph& graph() const { return *graph_; }

 private:
  void StartTraversal();
  // Expands one vertex, appending its accesses; returns accesses emitted.
  u32 ExpandVertex(u64 v, MemAccess* out, u32 capacity);

  Options options_;
  std::unique_ptr<CsrGraph> graph_;
  u64 num_vertices_ = 0;

  VirtAddr offsets_start_;
  VirtAddr edges_start_;
  VirtAddr state_start_;  // visited/distance array

  std::vector<u8> visited_;
  std::vector<u32> dist_;
  std::deque<u64> frontier_;
  u64 traversals_ = 0;
  u32 sssp_round_ = 0;
};

}  // namespace mtm
