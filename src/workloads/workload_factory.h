// Factory building the Table 2 workloads at paper-faithful footprints
// (divided by the simulation scale).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/common/units.h"
#include "src/workloads/workload.h"

namespace mtm {

// Paper footprints (Table 2), in bytes at scale 1.
inline constexpr Bytes kGupsFootprint = GiB(512);
inline constexpr Bytes kVoltDbFootprint = GiB(300);
inline constexpr Bytes kCassandraFootprint = GiB(400);
inline constexpr Bytes kGraphFootprint = GiB(525);
inline constexpr Bytes kSparkFootprint = GiB(350);
// Adversarial admission-control microbenchmark, not part of Table 2.
inline constexpr Bytes kPingPongFootprint = GiB(400);

// names: gups, voltdb, cassandra, bfs, sssp, spark, pingpong
std::unique_ptr<Workload> MakeWorkload(const std::string& name, u64 sim_scale,
                                       u32 num_threads, u64 seed);

// The Table 2 set iterated by the paper's figures; excludes pingpong.
std::vector<std::string> AllWorkloadNames();

}  // namespace mtm
