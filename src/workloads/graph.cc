#include "src/workloads/graph.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/mem/address_space.h"

namespace mtm {
namespace {

// Simulated storage strides: an edge record carries the target plus weight
// and property payload (32 B), a vertex offset is 8 B, per-vertex state
// (distance, visited flag, padding) is 8 B. The simulated footprint is
// therefore ~512 B per vertex at the default average degree.
constexpr u64 kOffsetStride = 8;
constexpr u64 kEdgeStride = 32;
constexpr u64 kStateStride = 8;

}  // namespace

CsrGraph::CsrGraph(u64 num_vertices, double avg_degree, double skew_theta, u64 seed)
    : num_vertices_(num_vertices) {
  MTM_CHECK_GT(num_vertices, 1ull);
  const u64 target_edges = static_cast<u64>(static_cast<double>(num_vertices) * avg_degree);

  // Analytic power-law degrees: deg(rank r) ~ 1/(r+1)^theta, scaled to the
  // edge target; vertex ids are a hash of the rank so hubs scatter.
  std::vector<u32> degree(num_vertices, 0);
  double norm = 0.0;
  // Harmonic-like normalization over a subsample for speed, then exact scale.
  for (u64 r = 0; r < num_vertices; ++r) {
    norm += 1.0 / std::pow(static_cast<double>(r + 1), skew_theta);
  }
  u64 assigned = 0;
  for (u64 r = 0; r < num_vertices; ++r) {
    // Vertex id == degree rank: hubs occupy low ids, as in degree-ordered
    // CSR layouts; their offsets, adjacency runs, and state cluster.
    double share = (1.0 / std::pow(static_cast<double>(r + 1), skew_theta)) / norm;
    u32 d = static_cast<u32>(share * static_cast<double>(target_edges));
    degree[r] += d;
    assigned += d;
  }
  // Distribute rounding remainder one edge at a time.
  Rng rng(seed);
  while (assigned < target_edges) {
    ++degree[rng.NextBounded(num_vertices)];
    ++assigned;
  }

  offsets_.resize(num_vertices + 1);
  offsets_[0] = 0;
  for (u64 v = 0; v < num_vertices; ++v) {
    offsets_[v + 1] = offsets_[v] + degree[v];
  }
  edges_.resize(offsets_[num_vertices]);
  for (u64 i = 0; i < edges_.size(); ++i) {
    edges_[i] = static_cast<u32>(rng.NextBounded(num_vertices));
  }
}

GraphWorkload::GraphWorkload(Params params, Options options)
    : Workload(params), options_(options) {
  // footprint = n*(kOffsetStride + kStateStride) + n*avg_degree*kEdgeStride.
  double per_vertex = static_cast<double>(kOffsetStride + kStateStride) +
                      options_.avg_degree * static_cast<double>(kEdgeStride);
  num_vertices_ =
      static_cast<u64>(static_cast<double>(params_.footprint_bytes.value()) / per_vertex);
  MTM_CHECK_GT(num_vertices_, 16ull);
  graph_ = std::make_unique<CsrGraph>(num_vertices_, options_.avg_degree, options_.skew_theta,
                                      params_.seed ^ 0x9a4a9);
  visited_.assign(num_vertices_, 0);
  dist_.assign(num_vertices_, ~u32{0});
}

void GraphWorkload::Build(AddressSpace& address_space) {
  u32 off = address_space.Allocate(Bytes(num_vertices_ * kOffsetStride), true, "graph.offsets");
  u32 edg =
      address_space.Allocate(Bytes(graph_->num_edges() * kEdgeStride), true, "graph.edges");
  u32 st = address_space.Allocate(Bytes(num_vertices_ * kStateStride), true, "graph.state");
  offsets_start_ = address_space.vma(off).start;
  edges_start_ = address_space.vma(edg).start;
  state_start_ = address_space.vma(st).start;
  StartTraversal();
}

void GraphWorkload::StartTraversal() {
  std::fill(visited_.begin(), visited_.end(), 0);
  std::fill(dist_.begin(), dist_.end(), ~u32{0});
  frontier_.clear();
  // Bias sources toward hubs so traversals overlap: the hot adjacency lists
  // stay hot across restarts, as in repeated-query graph serving.
  u64 src = rng_.NextBounded(std::max<u64>(1, num_vertices_ / 16));
  visited_[src] = 1;
  dist_[src] = 0;
  frontier_.push_back(src);
  ++traversals_;
  sssp_round_ = 0;
}

u32 GraphWorkload::ExpandVertex(u64 v, MemAccess* out, u32 capacity) {
  // Real traversal with emitted loads: offset lookup, edge-array scan (one
  // access per cache line of edge records), and per-neighbor state checks.
  u32 filled = 0;
  u32 thread = NextThread();
  if (filled < capacity) {
    out[filled++] = MemAccess{offsets_start_ + v * kOffsetStride, thread, false};
  }
  u64 off = graph_->OffsetOf(v);
  u64 deg = graph_->DegreeOf(v);
  u64 relaxed = dist_[v] == ~u32{0} ? 0u : dist_[v] + 1;
  for (u64 i = 0; i < deg && filled < capacity; ++i) {
    if (i % options_.edges_per_access == 0) {
      out[filled++] = MemAccess{edges_start_ + (off + i) * kEdgeStride, thread, false};
      if (filled >= capacity) {
        break;
      }
    }
    u32 w = graph_->Edge(off + i);
    out[filled++] = MemAccess{state_start_ + w * kStateStride, thread, false};
    if (options_.algorithm == Algorithm::kBfs) {
      if (!visited_[w]) {
        visited_[w] = 1;
        dist_[w] = static_cast<u32>(relaxed);
        frontier_.push_back(w);
      }
    } else {
      if (relaxed != 0 && relaxed < dist_[w]) {
        dist_[w] = static_cast<u32>(relaxed);
        frontier_.push_back(w);
      }
    }
  }
  return filled;
}

u32 GraphWorkload::NextBatch(MemAccess* out, u32 n) {
  u32 filled = 0;
  while (filled < n) {
    if (frontier_.empty()) {
      StartTraversal();
    }
    u64 v = frontier_.front();
    frontier_.pop_front();
    filled += ExpandVertex(v, out + filled, n - filled);
    // Capacity-truncated expansions simply re-expand later traversals; the
    // access distribution is what matters, not exact traversal order.
  }
  return filled;
}

}  // namespace mtm
