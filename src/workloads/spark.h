// Spark running TeraSort (Table 2: 350 GB, R/W 1:1).
//
// TeraSort's memory behavior is phase-structured:
//   map    — sequential scan of the input partition, writes scattered into
//            shuffle buckets (partitioning by key prefix);
//   reduce — per-bucket sort: repeated reads within the bucket (merge runs),
//            sequential writes to the output.
// Phases alternate over the job, so the hot object migrates from the input
// to the shuffle space to the output — a pattern that rewards profilers
// that adapt quickly.
#pragma once

#include "src/common/types.h"
#include "src/mem/address_space.h"
#include "src/workloads/workload.h"

namespace mtm {

class SparkTeraSortWorkload : public Workload {
 public:
  struct Options {
    Bytes record_bytes{128};
    u32 num_buckets = 16;
    // Accesses per phase before switching, as a fraction of records.
    double map_pass_fraction = 1.0;
    double reduce_passes = 2.0;  // merge reads per record in reduce
  };

  explicit SparkTeraSortWorkload(Params params);
  SparkTeraSortWorkload(Params params, Options options);

  std::string name() const override { return "spark"; }
  void Build(AddressSpace& address_space) override;
  u32 NextBatch(MemAccess* out, u32 n) override;
  double read_fraction() const override { return 0.5; }

 private:
  enum class Phase { kMap, kReduce };

  Options options_;
  Bytes input_bytes_;
  Bytes shuffle_bytes_;
  Bytes output_bytes_;
  VirtAddr input_start_;
  VirtAddr shuffle_start_;
  VirtAddr output_start_;

  Phase phase_ = Phase::kMap;
  u64 phase_accesses_ = 0;
  u64 phase_budget_ = 0;
  u64 map_cursor_ = 0;
  u64 output_cursor_ = 0;
  u32 current_bucket_ = 0;
};

}  // namespace mtm
