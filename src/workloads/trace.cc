#include "src/workloads/trace.h"

#include <cstring>

#include "src/common/logging.h"
#include "src/common/types.h"
#include "src/mem/address_space.h"

namespace mtm {
namespace {

struct TraceHeader {
  char magic[8];
  u32 version;
  u32 vma_count;
};

}  // namespace

TraceRecorder::TraceRecorder(std::unique_ptr<Workload> inner, std::string path)
    : Workload(inner->params()), inner_(std::move(inner)), path_(std::move(path)) {}

TraceRecorder::~TraceRecorder() { (void)Finish(); }

void TraceRecorder::Build(AddressSpace& address_space) {
  inner_->Build(address_space);
  MTM_CHECK(!address_space.vmas().empty());
  base_ = address_space.vmas().front().start;

  file_ = std::fopen(path_.c_str(), "wb");
  MTM_CHECK(file_ != nullptr) << "cannot open trace file " << path_;
  TraceHeader header;
  std::memcpy(header.magic, kTraceMagic, sizeof(header.magic));
  header.version = kTraceVersion;
  header.vma_count = static_cast<u32>(address_space.vmas().size());
  std::fwrite(&header, sizeof(header), 1, file_);
  for (const Vma& vma : address_space.vmas()) {
    u64 start = vma.start.value();
    u64 len = vma.len.value();
    u8 thp = vma.thp ? 1 : 0;
    std::fwrite(&start, sizeof(start), 1, file_);
    std::fwrite(&len, sizeof(len), 1, file_);
    std::fwrite(&thp, sizeof(thp), 1, file_);
  }
}

u32 TraceRecorder::NextBatch(MemAccess* out, u32 n) {
  u32 filled = inner_->NextBatch(out, n);
  MTM_CHECK(file_ != nullptr) << "Build() must run before NextBatch";
  for (u32 i = 0; i < filled; ++i) {
    u64 packed = PackRecord(out[i].addr, base_, out[i].thread, out[i].is_write);
    std::fwrite(&packed, sizeof(packed), 1, file_);
  }
  records_written_ += filled;
  return filled;
}

Status TraceRecorder::Finish() {
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0) {
      file_ = nullptr;
      return InternalError("trace close failed");
    }
    file_ = nullptr;
  }
  return OkStatus();
}

TraceReplayWorkload::TraceReplayWorkload(Params params, std::FILE* file,
                                         std::vector<TraceVma> vmas, long data_offset)
    : Workload(params), file_(file), vmas_(std::move(vmas)), data_offset_(data_offset) {}

TraceReplayWorkload::~TraceReplayWorkload() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Result<std::unique_ptr<TraceReplayWorkload>> TraceReplayWorkload::Open(const std::string& path,
                                                                       Params params) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status(StatusCode::kNotFound, "trace file not found: " + path);
  }
  TraceHeader header;
  if (std::fread(&header, sizeof(header), 1, file) != 1 ||
      std::memcmp(header.magic, kTraceMagic, sizeof(header.magic)) != 0) {
    std::fclose(file);
    return Status(StatusCode::kInvalidArgument, "not an MTM trace: " + path);
  }
  if (header.version != kTraceVersion) {
    std::fclose(file);
    return Status(StatusCode::kInvalidArgument, "unsupported trace version");
  }
  std::vector<TraceVma> vmas;
  VirtAddr recorded_base;
  for (u32 i = 0; i < header.vma_count; ++i) {
    u64 start = 0;
    u64 len = 0;
    u8 thp = 0;
    if (std::fread(&start, sizeof(start), 1, file) != 1 ||
        std::fread(&len, sizeof(len), 1, file) != 1 ||
        std::fread(&thp, sizeof(thp), 1, file) != 1) {
      std::fclose(file);
      return Status(StatusCode::kInvalidArgument, "truncated trace header");
    }
    if (i == 0) {
      recorded_base = VirtAddr(start);
    }
    vmas.push_back(TraceVma{len, thp != 0});
  }
  long data_offset = std::ftell(file);
  // NOLINTNEXTLINE(modernize-make-unique): the ctor is private, so
  // make_unique cannot reach it; mtm_lint allowlists this naked new.
  auto workload = std::unique_ptr<TraceReplayWorkload>(
      new TraceReplayWorkload(params, file, std::move(vmas), data_offset));
  workload->recorded_base_ = recorded_base;
  return workload;
}

void TraceReplayWorkload::Build(AddressSpace& address_space) {
  // Recreate the recorded layout; AddressSpace's deterministic packing
  // (huge-aligned VMAs with one-huge-page guard gaps) means recorded
  // offsets from the first VMA remain valid relative to the new base.
  for (std::size_t i = 0; i < vmas_.size(); ++i) {
    u32 index = address_space.Allocate(Bytes(vmas_[i].len), vmas_[i].thp,
                                       "trace.vma" + std::to_string(i));
    if (i == 0) {
      replay_base_ = address_space.vma(index).start;
    }
  }
}

u32 TraceReplayWorkload::NextBatch(MemAccess* out, u32 n) {
  MTM_CHECK(!replay_base_.IsZero()) << "Build() must run before NextBatch";
  u32 filled = 0;
  while (filled < n) {
    u64 packed = 0;
    if (std::fread(&packed, sizeof(packed), 1, file_) != 1) {
      // End of trace: loop.
      std::fseek(file_, data_offset_, SEEK_SET);
      ++loops_;
      if (std::fread(&packed, sizeof(packed), 1, file_) != 1) {
        break;  // empty trace
      }
    }
    UnpackRecord(packed, replay_base_, &out[filled]);
    ++filled;
  }
  return filled;
}

}  // namespace mtm
