// Ping-pong: an adversarial microbenchmark for migration admission control.
//
// Two disjoint page sets (A and B) inside one table alternate roles every
// flip_ops updates: the active set receives hot_access_prob of the update
// traffic, the inactive set goes cold, and the remainder of the table sees
// uniform background accesses. A tiering policy that promotes on observed
// hotness will promote the active set, watch it go cold one epoch later,
// demote it, and promote the other set — each flip re-migrating the same
// pages in the opposite direction. This is the §6 thrashing pattern the
// ppt admission controller is designed to damp; under vanilla admission it
// maximises flip-wasted migration bytes.
//
// Accesses are GUPS-style updates: a read followed by a write of the same
// location (R/W 1:1).
#pragma once

#include "src/common/types.h"
#include "src/mem/address_space.h"
#include "src/profiling/oracle.h"
#include "src/workloads/workload.h"

namespace mtm {

class PingPongWorkload : public Workload {
 public:
  // Defaults are tuned against the default experiment scale (512): each set
  // is small enough to migrate within one epoch at the default promote
  // batch, and an epoch (2 * flip_ops accesses) spans a few profiling
  // intervals — inside the admission stage's flip window, so reversals
  // register as ping-pong rather than slow drift.
  struct Options {
    double hot_fraction = 0.05;    // size of EACH set, as a fraction of the table
    double hot_access_prob = 0.9;  // updates landing in the active set
    u64 flip_ops = 1'000'000;      // updates per epoch; 0 = never flip (set A stays hot)
  };

  explicit PingPongWorkload(Params params);
  PingPongWorkload(Params params, Options options);

  std::string name() const override { return "pingpong"; }
  void Build(AddressSpace& address_space) override;
  u32 NextBatch(MemAccess* out, u32 n) override;
  // The currently active set only — the inactive set is genuinely cold.
  std::vector<HotRange> TrueHotRanges() const override;
  double read_fraction() const override { return 0.5; }

  // Set extents (stable across flips; which one is hot alternates).
  HotRange set_a() const;
  HotRange set_b() const;
  u64 epoch() const { return epoch_; }

 private:
  void AdvanceEpochIfNeeded();
  VirtAddr SampleAddr();

  Options options_;
  Bytes table_bytes_;
  VirtAddr table_start_;

  u64 table_pages_ = 0;
  u64 set_pages_ = 0;      // pages per set
  u64 a_first_page_ = 0;   // set A offset (pages) within the table
  u64 b_first_page_ = 0;   // set B offset (pages) within the table
  u64 ops_ = 0;
  u64 epoch_ = 0;          // even epochs: A hot; odd epochs: B hot

  // Pending write-half of an update (read emitted first).
  bool pending_write_ = false;
  VirtAddr pending_addr_;
  u32 pending_thread_ = 0;
};

}  // namespace mtm
