// Workload interface: a workload owns a set of VMAs in the simulated
// address space and produces the application's memory-access stream.
//
// The six workloads model Table 2 of the paper (GUPS, VoltDB/TPC-C,
// Cassandra/YCSB-A, BFS, SSSP, Spark TeraSort) at footprints scaled by the
// same factor as the machine capacities, preserving every footprint:tier
// ratio the evaluation depends on.
#pragma once

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/mem/address_space.h"
#include "src/profiling/oracle.h"

namespace mtm {

struct MemAccess {
  VirtAddr addr;
  u32 thread = 0;
  bool is_write = false;
};

class Workload {
 public:
  struct Params {
    Bytes footprint_bytes;  // required, already divided by the sim scale
    u32 num_threads = 8;
    u64 seed = 1;
  };

  explicit Workload(Params params) : params_(params), rng_(params.seed) {}
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  // Allocates the workload's VMAs. Called exactly once.
  virtual void Build(AddressSpace& address_space) = 0;

  // Fills `out` with the next `n` accesses, advancing internal phase state.
  // Returns the number filled (normally n).
  virtual u32 NextBatch(MemAccess* out, u32 n) = 0;

  // The currently hot extents, if the workload knows them a priori (GUPS
  // does — the paper's Figure 1/6 methodology). Empty when unknown.
  virtual std::vector<HotRange> TrueHotRanges() const { return {}; }

  // Approximate fraction of accesses that are reads (Table 2's R/W column).
  virtual double read_fraction() const = 0;

  const Params& params() const { return params_; }

 protected:
  u32 NextThread() { return thread_rr_++ % params_.num_threads; }

  Params params_;
  Rng rng_;
  u32 thread_rr_ = 0;
};

}  // namespace mtm
