#include "src/workloads/voltdb.h"

#include "src/common/logging.h"
#include "src/common/types.h"
#include "src/mem/address_space.h"

namespace mtm {

VoltDbWorkload::VoltDbWorkload(Params params) : VoltDbWorkload(params, Options{}) {}

VoltDbWorkload::VoltDbWorkload(Params params, Options options)
    : Workload(params),
      options_(options),
      warehouse_zipf_(options.num_warehouses, options.warehouse_zipf_theta) {
  MTM_CHECK_GT(params_.footprint_bytes, 8 * kHugePageBytes);
  index_bytes_ = !options_.index_bytes.IsZero() ? options_.index_bytes
                                                : HugeAlignUp(params_.footprint_bytes / 48);
  log_bytes_ = !options_.log_bytes.IsZero() ? options_.log_bytes
                                            : HugeAlignUp(params_.footprint_bytes / 64);
  history_bytes_ = !options_.history_bytes.IsZero() ? options_.history_bytes
                                                    : HugeAlignDown(params_.footprint_bytes / 4);
  table_bytes_ =
      HugeAlignDown(params_.footprint_bytes - index_bytes_ - log_bytes_ - history_bytes_);
  warehouse_bytes_ = table_bytes_ / options_.num_warehouses;
  MTM_CHECK_GT(warehouse_bytes_, Bytes{});
}

void VoltDbWorkload::Build(AddressSpace& address_space) {
  // Base pages for the record blocks: OLTP touches scattered rows, and
  // access-bit profiling of such traffic needs 4 KiB granularity (a huge
  // page's single accessed bit saturates under any broad traffic).
  u32 t = address_space.Allocate(table_bytes_, /*thp=*/false, "voltdb.tables");
  u32 i = address_space.Allocate(index_bytes_, /*thp=*/true, "voltdb.index");
  u32 l = address_space.Allocate(log_bytes_, /*thp=*/true, "voltdb.orderlog");
  // Accumulated order-line history: the bulk of a TPC-C database's
  // footprint, appended by every transaction and almost never read back —
  // the cold mass a tiering system parks in slow memory.
  u32 h = address_space.Allocate(history_bytes_, /*thp=*/true, "voltdb.history",
                                 /*prefault=*/false);
  table_start_ = address_space.vma(t).start;
  index_start_ = address_space.vma(i).start;
  log_start_ = address_space.vma(l).start;
  history_start_ = address_space.vma(h).start;
}

u64 VoltDbWorkload::WarehouseForRank(u64 rank) const {
  // Rotating the rank->warehouse mapping shifts which warehouses are busy.
  return (rank + rotation_) % options_.num_warehouses;
}

u32 VoltDbWorkload::NextBatch(MemAccess* out, u32 n) {
  u32 filled = 0;
  while (filled < n) {
    u32 thread = NextThread();
    u64 warehouse = WarehouseForRank(warehouse_zipf_.Sample(rng_));
    VirtAddr wh_base = table_start_ + warehouse_bytes_ * warehouse;

    // Index lookups precede record touches.
    if (rng_.NextBernoulli(options_.index_access_prob)) {
      VirtAddr a = index_start_ + Bytes(rng_.NextBounded(index_bytes_.value()) & ~u64{7});
      out[filled++] = MemAccess{a, thread, false};
      if (filled >= n) {
        break;
      }
    }
    for (u32 r = 0; r < options_.records_per_txn && filled < n; ++r) {
      VirtAddr a = wh_base + Bytes(rng_.NextBounded(warehouse_bytes_.value()) & ~u64{7});
      bool is_write = (r & 1) != 0;  // R/W 1:1 within the transaction
      out[filled++] = MemAccess{a, thread, is_write};
    }
    // Append to the order log and the order-line history.
    if (filled < n) {
      VirtAddr a = log_start_ + Bytes(log_cursor_ % log_bytes_.value());
      log_cursor_ += 64;
      out[filled++] = MemAccess{a, thread, true};
    }
    if (filled < n) {
      VirtAddr a = history_start_ + Bytes(history_cursor_ % history_bytes_.value());
      history_cursor_ += 256;
      out[filled++] = MemAccess{a, thread, true};
    }
    if (filled < n && rng_.NextBernoulli(options_.history_read_prob)) {
      VirtAddr a = history_start_ + Bytes(rng_.NextBounded(history_bytes_.value()) & ~u64{7});
      out[filled++] = MemAccess{a, thread, false};
    }
    ++txns_;
    if (options_.rotate_txns != 0 && txns_ % options_.rotate_txns == 0) {
      // Gentle drift: the busy-warehouse set shifts by a few warehouses, as
      // client affinity changes — not a wholesale teleport of the hot set.
      rotation_ = (rotation_ + options_.num_warehouses / 64 + 1) % options_.num_warehouses;
    }
  }
  return filled;
}

}  // namespace mtm
