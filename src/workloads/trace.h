// Access-trace recording and replay.
//
// A TraceRecorder wraps any workload and tees its access stream to a
// compact binary file; a TraceReplayWorkload plays a recorded file back as
// a workload. This is the standard methodology bridge for memory-tiering
// research: capture a stream once (or convert an external trace into this
// format) and evaluate every solution against the identical stream.
//
// File format (little-endian):
//   header:  magic "MTMTRACE" | u32 version | u32 reserved
//            u32 vma_count | per VMA: u64 start, u64 len, u8 thp
//   records: u64 packed = (addr << 12 sign... ) — see PackRecord: the
//            49-bit address offset from the first VMA base, 14-bit thread,
//            1-bit is_write.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/mem/address_space.h"
#include "src/profiling/oracle.h"
#include "src/workloads/workload.h"

namespace mtm {

inline constexpr char kTraceMagic[8] = {'M', 'T', 'M', 'T', 'R', 'A', 'C', 'E'};
inline constexpr u32 kTraceVersion = 1;

// Packs one access relative to `base` (the lowest VMA start).
inline u64 PackRecord(VirtAddr addr, VirtAddr base, u32 thread, bool is_write) {
  u64 offset = addr - base;
  return (offset << 15) | (static_cast<u64>(thread & 0x3fff) << 1) |
         static_cast<u64>(is_write);
}

inline void UnpackRecord(u64 packed, VirtAddr base, MemAccess* out) {
  out->is_write = (packed & 1) != 0;
  out->thread = static_cast<u32>((packed >> 1) & 0x3fff);
  out->addr = base + (packed >> 15);
}

// Wraps a workload; every generated batch is also appended to the trace
// file. The wrapped workload defines the address-space layout.
class TraceRecorder : public Workload {
 public:
  // Takes ownership of `inner`. The file is created on Build.
  TraceRecorder(std::unique_ptr<Workload> inner, std::string path);
  ~TraceRecorder() override;

  std::string name() const override { return inner_->name() + "+trace"; }
  void Build(AddressSpace& address_space) override;
  u32 NextBatch(MemAccess* out, u32 n) override;
  std::vector<HotRange> TrueHotRanges() const override { return inner_->TrueHotRanges(); }
  double read_fraction() const override { return inner_->read_fraction(); }

  // Flushes and closes the file (also done by the destructor).
  Status Finish();

  u64 records_written() const { return records_written_; }

 private:
  std::unique_ptr<Workload> inner_;
  std::string path_;
  std::FILE* file_ = nullptr;
  VirtAddr base_;
  u64 records_written_ = 0;
};

// Replays a recorded trace as a workload. The original VMA layout is
// restored (sizes and THP flags), rebased to wherever the current address
// space places it. Replay loops when the trace is exhausted.
class TraceReplayWorkload : public Workload {
 public:
  // `params.footprint_bytes` is ignored (the trace defines the layout).
  static Result<std::unique_ptr<TraceReplayWorkload>> Open(const std::string& path,
                                                           Params params);
  ~TraceReplayWorkload() override;

  std::string name() const override { return "trace-replay"; }
  void Build(AddressSpace& address_space) override;
  u32 NextBatch(MemAccess* out, u32 n) override;
  double read_fraction() const override { return 0.5; }

  u64 loops() const { return loops_; }

 private:
  struct TraceVma {
    u64 len = 0;
    bool thp = false;
  };

  TraceReplayWorkload(Params params, std::FILE* file, std::vector<TraceVma> vmas,
                      long data_offset);

  std::FILE* file_;
  std::vector<TraceVma> vmas_;
  long data_offset_;
  VirtAddr recorded_base_;  // base used at record time (offset 0)
  VirtAddr replay_base_;    // base in the replaying address space
  u64 loops_ = 0;
};

}  // namespace mtm
