// Cassandra under YCSB workload A (Table 2: 400 GB, update-heavy, R/W 1:1).
//
// YCSB-A issues 50% reads and 50% updates over a zipfian key distribution
// (theta 0.99, the YCSB default). The model adds Cassandra's storage-engine
// structure: an in-memory row store (the partitioned rows), a memtable
// absorbing updates with sequential appends, and a commit log written
// sequentially. Row keys map to row slots via a multiplicative hash, so the
// zipfian-popular rows scatter across the row store — hot *pages* rather
// than one hot blob.
#pragma once

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/mem/address_space.h"
#include "src/workloads/workload.h"

namespace mtm {

class CassandraWorkload : public Workload {
 public:
  struct Options {
    double zipf_theta = 0.99;
    Bytes row_bytes{1024};
    double memtable_prob = 0.6;  // updates also touch the memtable
    Bytes memtable_bytes{};      // default footprint/32
    Bytes commitlog_bytes{};     // default footprint/64
  };

  explicit CassandraWorkload(Params params);
  CassandraWorkload(Params params, Options options);

  std::string name() const override { return "cassandra"; }
  void Build(AddressSpace& address_space) override;
  u32 NextBatch(MemAccess* out, u32 n) override;
  double read_fraction() const override { return 0.5; }

 private:
  VirtAddr RowAddr(u64 key);

  Options options_;
  Bytes rows_bytes_;
  Bytes memtable_bytes_;
  Bytes commitlog_bytes_;
  u64 num_rows_ = 0;
  VirtAddr rows_start_;
  VirtAddr memtable_start_;
  VirtAddr commitlog_start_;
  ZipfSampler key_zipf_;
  u64 memtable_cursor_ = 0;
  u64 commitlog_cursor_ = 0;
};

}  // namespace mtm
