// VoltDB running TPC-C (Table 2: 300 GB working set, R/W 1:1).
//
// The model captures the access structure that matters for tiering:
//  * per-warehouse record blocks; transactions pick a warehouse with a
//    zipfian home-warehouse skew and touch a handful of records in its
//    block (stock/customer/order rows), half reads half writes;
//  * B-tree-style index pages, a small and very hot object;
//  * an append-only order log written sequentially;
//  * the set of busy warehouses rotates slowly, giving the time-varying
//    hotness that distinguishes adaptive profilers.
#pragma once

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/mem/address_space.h"
#include "src/workloads/workload.h"

namespace mtm {

class VoltDbWorkload : public Workload {
 public:
  struct Options {
    u64 num_warehouses = 512;
    double warehouse_zipf_theta = 0.95;
    u32 records_per_txn = 12;
    double index_access_prob = 0.5;
    double history_read_prob = 0.02;  // rare lookups into old orders
    u64 rotate_txns = 400000;  // drift the zipf mapping this often
    Bytes index_bytes{};       // default footprint/48
    Bytes log_bytes{};         // default footprint/64
    Bytes history_bytes{};     // default footprint/4: accumulated order lines
  };

  explicit VoltDbWorkload(Params params);
  VoltDbWorkload(Params params, Options options);

  std::string name() const override { return "voltdb"; }
  void Build(AddressSpace& address_space) override;
  u32 NextBatch(MemAccess* out, u32 n) override;
  double read_fraction() const override { return 0.5; }

 private:
  u64 WarehouseForRank(u64 rank) const;

  Options options_;
  Bytes table_bytes_;
  Bytes index_bytes_;
  Bytes log_bytes_;
  Bytes history_bytes_;
  Bytes warehouse_bytes_;
  VirtAddr table_start_;
  VirtAddr index_start_;
  VirtAddr log_start_;
  VirtAddr history_start_;
  u64 history_cursor_ = 0;
  ZipfSampler warehouse_zipf_;
  u64 txns_ = 0;
  u64 rotation_ = 0;
  u64 log_cursor_ = 0;
};

}  // namespace mtm
