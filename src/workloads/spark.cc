#include "src/workloads/spark.h"

#include "src/common/logging.h"
#include "src/common/types.h"
#include "src/mem/address_space.h"

namespace mtm {

SparkTeraSortWorkload::SparkTeraSortWorkload(Params params)
    : SparkTeraSortWorkload(params, Options{}) {}

SparkTeraSortWorkload::SparkTeraSortWorkload(Params params, Options options)
    : Workload(params), options_(options) {
  input_bytes_ = HugeAlignDown(params_.footprint_bytes * 2 / 5);
  shuffle_bytes_ = HugeAlignDown(params_.footprint_bytes * 2 / 5);
  output_bytes_ = HugeAlignDown(params_.footprint_bytes / 5);
  MTM_CHECK_GT(input_bytes_, Bytes{});
  phase_budget_ = input_bytes_ / options_.record_bytes * 2;  // read + write per record
}

void SparkTeraSortWorkload::Build(AddressSpace& address_space) {
  u32 in = address_space.Allocate(input_bytes_, /*thp=*/true, "spark.input");
  u32 sh = address_space.Allocate(shuffle_bytes_, /*thp=*/true, "spark.shuffle");
  u32 outv = address_space.Allocate(output_bytes_, /*thp=*/true, "spark.output");
  input_start_ = address_space.vma(in).start;
  shuffle_start_ = address_space.vma(sh).start;
  output_start_ = address_space.vma(outv).start;
}

u32 SparkTeraSortWorkload::NextBatch(MemAccess* out, u32 n) {
  const Bytes bucket_bytes = shuffle_bytes_ / options_.num_buckets;
  u32 filled = 0;
  while (filled < n) {
    u32 thread = NextThread();
    if (phase_ == Phase::kMap) {
      // Sequential input read; partitioned (pseudo-random bucket) shuffle
      // write.
      VirtAddr in = input_start_ + Bytes(map_cursor_ % input_bytes_.value());
      map_cursor_ += options_.record_bytes.value();
      out[filled++] = MemAccess{in, thread, false};
      if (filled < n) {
        u64 bucket = rng_.NextBounded(options_.num_buckets);
        VirtAddr sh = shuffle_start_ + bucket_bytes * bucket +
                      Bytes(rng_.NextBounded(bucket_bytes.value()) & ~u64{63});
        out[filled++] = MemAccess{sh, thread, true};
      }
      phase_accesses_ += 2;
      if (phase_accesses_ >= phase_budget_) {
        phase_ = Phase::kReduce;
        phase_accesses_ = 0;
        phase_budget_ = static_cast<u64>(static_cast<double>(shuffle_bytes_.value()) /
                                         static_cast<double>(options_.record_bytes.value()) *
                                         (options_.reduce_passes + 1.0));
        current_bucket_ = 0;
      }
    } else {
      // Per-bucket merge: random reads within the current (hot) bucket,
      // sequential output writes. Buckets advance so the hot spot moves.
      VirtAddr sh = shuffle_start_ + bucket_bytes * current_bucket_ +
                    Bytes(rng_.NextBounded(bucket_bytes.value()) & ~u64{63});
      out[filled++] = MemAccess{sh, thread, false};
      if (filled < n && rng_.NextBernoulli(1.0 / (options_.reduce_passes + 1.0))) {
        VirtAddr o = output_start_ + Bytes(output_cursor_ % output_bytes_.value());
        output_cursor_ += options_.record_bytes.value();
        out[filled++] = MemAccess{o, thread, true};
      }
      phase_accesses_ += 2;
      u64 per_bucket = phase_budget_ / options_.num_buckets;
      current_bucket_ = static_cast<u32>(
          std::min<u64>(options_.num_buckets - 1, phase_accesses_ / std::max<u64>(1, per_bucket)));
      if (phase_accesses_ >= phase_budget_) {
        phase_ = Phase::kMap;
        phase_accesses_ = 0;
        phase_budget_ = input_bytes_ / options_.record_bytes * 2;
      }
    }
  }
  return filled;
}

}  // namespace mtm
