// GUPS (Giga Updates Per Second), the paper's primary microbenchmark.
//
// Layout follows the Figure 6 methodology: three data objects
//   A — the indexes used to address the hot set (small, very hot),
//   B — the hot-set information (small, hot),
//   C — the hot set itself: hot_fraction of the main table.
// 20% of the table is selected as the hot set; 80% of updates land in it,
// with per-page hotness inside the hot set following a (truncated) Gaussian
// — "the page hotness of GUPS follows a Gaussian distribution" (§3). An
// update is a read followed by a write of the same location (R/W 1:1,
// Table 2). The hot set drifts every phase_ops updates so profilers face
// access-pattern variance, as in §9.3's DAMON comparison.
#pragma once

#include "src/common/types.h"
#include "src/mem/address_space.h"
#include "src/profiling/oracle.h"
#include "src/workloads/workload.h"

namespace mtm {

class GupsWorkload : public Workload {
 public:
  struct Options {
    double hot_fraction = 0.2;
    double hot_access_prob = 0.8;
    double index_access_prob = 0.15;   // reads of object A per update
    double info_access_prob = 0.05;    // reads of object B per update
    u64 phase_ops = 0;                 // 0 = static hot set
    double gaussian_stddev_frac = 0.15;  // stddev as a fraction of hot pages
    Bytes index_bytes{};               // default footprint/64
    Bytes info_bytes{};                // default footprint/1024
  };

  explicit GupsWorkload(Params params);
  GupsWorkload(Params params, Options options);

  std::string name() const override { return "gups"; }
  void Build(AddressSpace& address_space) override;
  u32 NextBatch(MemAccess* out, u32 n) override;
  std::vector<HotRange> TrueHotRanges() const override;
  double read_fraction() const override { return 0.5; }

  // Object extents (for Figure 6's labeled heatmap).
  HotRange object_a() const { return {index_start_, index_bytes_}; }
  HotRange object_b() const { return {info_start_, info_bytes_}; }
  HotRange object_c() const;  // the current hot set within the table

 private:
  void AdvancePhaseIfNeeded();
  VirtAddr SampleTableAddr();

  Options options_;
  Bytes table_bytes_;
  Bytes index_bytes_;
  Bytes info_bytes_;
  VirtAddr table_start_;
  VirtAddr index_start_;
  VirtAddr info_start_;

  u64 table_pages_ = 0;
  u64 hot_pages_ = 0;
  u64 hot_first_page_ = 0;  // hot-set offset (in pages) within the table
  u64 ops_ = 0;
  u64 phase_ = 0;

  // Pending write-half of an update (read emitted first).
  bool pending_write_ = false;
  VirtAddr pending_addr_;
  u32 pending_thread_ = 0;
};

}  // namespace mtm
