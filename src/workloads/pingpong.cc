#include "src/workloads/pingpong.h"

#include "src/common/logging.h"
#include "src/common/types.h"
#include "src/mem/address_space.h"
#include "src/profiling/oracle.h"

namespace mtm {

PingPongWorkload::PingPongWorkload(Params params) : PingPongWorkload(params, Options{}) {}

PingPongWorkload::PingPongWorkload(Params params, Options options)
    : Workload(params), options_(options) {
  MTM_CHECK_GT(params_.footprint_bytes, 4 * kHugePageBytes);
  MTM_CHECK_GT(options_.hot_fraction, 0.0);
  MTM_CHECK_LT(options_.hot_fraction, 0.5);
  table_bytes_ = HugeAlignDown(params_.footprint_bytes);
  table_pages_ = NumPages(table_bytes_);
  set_pages_ = static_cast<u64>(static_cast<double>(table_pages_) * options_.hot_fraction);
  if (set_pages_ == 0) {
    set_pages_ = 1;
  }
}

void PingPongWorkload::Build(AddressSpace& address_space) {
  // Base pages, as for GUPS: random 8-byte updates need 4 KiB profiling
  // granularity.
  u32 table = address_space.Allocate(table_bytes_, /*thp=*/false, "pingpong.table");
  table_start_ = address_space.vma(table).start;
  // Sets at the 1/4 and 3/4 marks: symmetric, disjoint, and past what
  // first-touch keeps in DRAM, so reaching either requires promotion.
  a_first_page_ = table_pages_ / 4 - set_pages_ / 2;
  b_first_page_ = (3 * table_pages_) / 4 - set_pages_ / 2;
  MTM_CHECK_LT(a_first_page_ + set_pages_, b_first_page_);
  MTM_CHECK_LE(b_first_page_ + set_pages_, table_pages_);
}

HotRange PingPongWorkload::set_a() const {
  return {table_start_ + PagesToBytes(a_first_page_), PagesToBytes(set_pages_)};
}

HotRange PingPongWorkload::set_b() const {
  return {table_start_ + PagesToBytes(b_first_page_), PagesToBytes(set_pages_)};
}

std::vector<HotRange> PingPongWorkload::TrueHotRanges() const {
  return {epoch_ % 2 == 0 ? set_a() : set_b()};
}

void PingPongWorkload::AdvanceEpochIfNeeded() {
  if (options_.flip_ops == 0 || ops_ == 0 || ops_ % options_.flip_ops != 0) {
    return;
  }
  ++epoch_;
}

VirtAddr PingPongWorkload::SampleAddr() {
  if (rng_.NextBernoulli(options_.hot_access_prob)) {
    u64 first = epoch_ % 2 == 0 ? a_first_page_ : b_first_page_;
    u64 page = first + rng_.NextBounded(set_pages_);
    return table_start_ + PagesToBytes(page) + Bytes(rng_.Next() & (kPageSize - 1) & ~u64{7});
  }
  u64 page = rng_.NextBounded(table_pages_);
  return table_start_ + PagesToBytes(page) + Bytes(rng_.Next() & (kPageSize - 1) & ~u64{7});
}

u32 PingPongWorkload::NextBatch(MemAccess* out, u32 n) {
  u32 filled = 0;
  while (filled < n) {
    if (pending_write_) {
      out[filled++] = MemAccess{pending_addr_, pending_thread_, /*is_write=*/true};
      pending_write_ = false;
      continue;
    }
    u32 thread = NextThread();
    VirtAddr addr = SampleAddr();
    out[filled++] = MemAccess{addr, thread, /*is_write=*/false};
    pending_write_ = true;
    pending_addr_ = addr;
    pending_thread_ = thread;
    ++ops_;
    AdvanceEpochIfNeeded();
  }
  return filled;
}

}  // namespace mtm
