#include "src/workloads/workload_factory.h"

#include "src/common/logging.h"
#include "src/workloads/cassandra.h"
#include "src/workloads/gups.h"
#include "src/workloads/graph.h"
#include "src/workloads/pingpong.h"
#include "src/workloads/spark.h"
#include "src/workloads/voltdb.h"

namespace mtm {

std::unique_ptr<Workload> MakeWorkload(const std::string& name, u64 sim_scale,
                                       u32 num_threads, u64 seed) {
  MTM_CHECK_GT(sim_scale, 0ull);
  Workload::Params params;
  params.num_threads = num_threads;
  params.seed = seed;
  if (name == "gups") {
    params.footprint_bytes = kGupsFootprint / sim_scale;
    GupsWorkload::Options options;
    // Hot set drifts every ~8M updates so profilers face pattern variance.
    options.phase_ops = 8'000'000;
    return std::make_unique<GupsWorkload>(params, options);
  }
  if (name == "voltdb") {
    params.footprint_bytes = kVoltDbFootprint / sim_scale;
    return std::make_unique<VoltDbWorkload>(params);
  }
  if (name == "cassandra") {
    params.footprint_bytes = kCassandraFootprint / sim_scale;
    return std::make_unique<CassandraWorkload>(params);
  }
  if (name == "bfs" || name == "sssp") {
    params.footprint_bytes = kGraphFootprint / sim_scale;
    GraphWorkload::Options options;
    options.algorithm =
        name == "bfs" ? GraphWorkload::Algorithm::kBfs : GraphWorkload::Algorithm::kSssp;
    return std::make_unique<GraphWorkload>(params, options);
  }
  if (name == "spark") {
    params.footprint_bytes = kSparkFootprint / sim_scale;
    return std::make_unique<SparkTeraSortWorkload>(params);
  }
  if (name == "pingpong") {
    params.footprint_bytes = kPingPongFootprint / sim_scale;
    return std::make_unique<PingPongWorkload>(params);
  }
  MTM_CHECK(false) << "unknown workload: " << name;
  return nullptr;
}

std::vector<std::string> AllWorkloadNames() {
  return {"gups", "voltdb", "cassandra", "bfs", "sssp", "spark"};
}

}  // namespace mtm
