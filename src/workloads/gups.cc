#include "src/workloads/gups.h"

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/mem/address_space.h"
#include "src/profiling/oracle.h"

namespace mtm {

GupsWorkload::GupsWorkload(Params params) : GupsWorkload(params, Options{}) {}

GupsWorkload::GupsWorkload(Params params, Options options)
    : Workload(params), options_(options) {
  MTM_CHECK_GT(params_.footprint_bytes, 4 * kHugePageBytes);
  index_bytes_ = !options_.index_bytes.IsZero() ? options_.index_bytes
                                                : HugeAlignUp(params_.footprint_bytes / 64);
  info_bytes_ = !options_.info_bytes.IsZero() ? options_.info_bytes
                                              : HugeAlignUp(params_.footprint_bytes / 1024);
  table_bytes_ = HugeAlignDown(params_.footprint_bytes - index_bytes_ - info_bytes_);
  table_pages_ = NumPages(table_bytes_);
  hot_pages_ = static_cast<u64>(static_cast<double>(table_pages_) * options_.hot_fraction);
  if (hot_pages_ == 0) {
    hot_pages_ = 1;
  }
}

void GupsWorkload::Build(AddressSpace& address_space) {
  // Base pages for the table: GUPS performs random 8-byte updates, and
  // access-bit profiling of such traffic needs 4 KiB granularity (a 2 MiB
  // huge page's single accessed bit saturates under uniform background
  // traffic). The index stays THP-mapped.
  u32 table = address_space.Allocate(table_bytes_, /*thp=*/false, "gups.table");
  u32 index = address_space.Allocate(index_bytes_, /*thp=*/true, "gups.index");
  u32 info = address_space.Allocate(info_bytes_, /*thp=*/false, "gups.info");
  table_start_ = address_space.vma(table).start;
  index_start_ = address_space.vma(index).start;
  info_start_ = address_space.vma(info).start;
  // Initial hot-set position: centered in the table (Figure 6 places the
  // hot set C in the middle of the address space), which also puts it past
  // what first-touch can hold in DRAM.
  hot_first_page_ = (table_pages_ - hot_pages_) / 2;
}

HotRange GupsWorkload::object_c() const {
  return {table_start_ + PagesToBytes(hot_first_page_), PagesToBytes(hot_pages_)};
}

std::vector<HotRange> GupsWorkload::TrueHotRanges() const {
  return {object_a(), object_b(), object_c()};
}

void GupsWorkload::AdvancePhaseIfNeeded() {
  if (options_.phase_ops == 0 || ops_ == 0 || ops_ % options_.phase_ops != 0) {
    return;
  }
  ++phase_;
  // Drift the hot set by a quarter of its size each phase, wrapping.
  u64 shift = hot_pages_ / 4 + 1;
  hot_first_page_ = (hot_first_page_ + shift) % (table_pages_ - hot_pages_);
}

VirtAddr GupsWorkload::SampleTableAddr() {
  if (rng_.NextBernoulli(options_.hot_access_prob)) {
    // Gaussian-weighted page inside the hot set, centered mid-hot-set.
    GaussianIndexSampler sampler(
        hot_pages_, static_cast<double>(hot_pages_) / 2.0,
        static_cast<double>(hot_pages_) * options_.gaussian_stddev_frac);
    u64 page = hot_first_page_ + sampler.Sample(rng_);
    return table_start_ + PagesToBytes(page) + Bytes(rng_.Next() & (kPageSize - 1) & ~u64{7});
  }
  u64 page = rng_.NextBounded(table_pages_);
  return table_start_ + PagesToBytes(page) + Bytes(rng_.Next() & (kPageSize - 1) & ~u64{7});
}

u32 GupsWorkload::NextBatch(MemAccess* out, u32 n) {
  u32 filled = 0;
  while (filled < n) {
    if (pending_write_) {
      out[filled++] = MemAccess{pending_addr_, pending_thread_, /*is_write=*/true};
      pending_write_ = false;
      continue;
    }
    u32 thread = NextThread();
    // Occasional reads of the index (A) and hot-set info (B).
    if (filled < n && rng_.NextBernoulli(options_.index_access_prob)) {
      VirtAddr a = index_start_ + Bytes(rng_.NextBounded(index_bytes_.value()) & ~u64{7});
      out[filled++] = MemAccess{a, thread, /*is_write=*/false};
      if (filled >= n) {
        break;
      }
    }
    if (filled < n && rng_.NextBernoulli(options_.info_access_prob)) {
      VirtAddr b = info_start_ + Bytes(rng_.NextBounded(info_bytes_.value()) & ~u64{7});
      out[filled++] = MemAccess{b, thread, /*is_write=*/false};
      if (filled >= n) {
        break;
      }
    }
    // The update: read then write the same table location.
    VirtAddr addr = SampleTableAddr();
    out[filled++] = MemAccess{addr, thread, /*is_write=*/false};
    pending_write_ = true;
    pending_addr_ = addr;
    pending_thread_ = thread;
    ++ops_;
    AdvancePhaseIfNeeded();
  }
  return filled;
}

}  // namespace mtm
