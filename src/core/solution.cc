#include "src/core/solution.h"

#include "src/common/logging.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/migration/admission/admission.h"
#include "src/migration/mechanism.h"
#include "src/migration/policy_registry.h"
#include "src/profiling/autonuma.h"
#include "src/profiling/autotiering.h"
#include "src/profiling/damon.h"
#include "src/profiling/hemem_profiler.h"
#include "src/profiling/mtm_profiler.h"
#include "src/profiling/thermostat.h"
#include "src/sim/tier.h"

namespace mtm {

const char* SolutionKindName(SolutionKind kind) {
  switch (kind) {
    case SolutionKind::kFirstTouch:
      return "first-touch";
    case SolutionKind::kHmc:
      return "hmc";
    case SolutionKind::kVanillaTieredAutoNuma:
      return "vanilla-tiered-autonuma";
    case SolutionKind::kTieredAutoNuma:
      return "tiered-autonuma";
    case SolutionKind::kAutoTiering:
      return "autotiering";
    case SolutionKind::kHemem:
      return "hemem";
    case SolutionKind::kMtm:
      return "mtm";
    case SolutionKind::kThermostatProfilerMtmMigration:
      return "thermostat+mtm-migration";
    case SolutionKind::kAutoNumaProfilerMtmMigration:
      return "autonuma+mtm-migration";
  }
  return "?";
}

SolutionKind SolutionKindFromName(const std::string& name) {
  for (SolutionKind k :
       {SolutionKind::kFirstTouch, SolutionKind::kHmc, SolutionKind::kVanillaTieredAutoNuma,
        SolutionKind::kTieredAutoNuma, SolutionKind::kAutoTiering, SolutionKind::kHemem,
        SolutionKind::kMtm, SolutionKind::kThermostatProfilerMtmMigration,
        SolutionKind::kAutoNumaProfilerMtmMigration}) {
    if (name == SolutionKindName(k)) {
      return k;
    }
  }
  MTM_CHECK(false) << "unknown solution: " << name;
  return SolutionKind::kMtm;
}

std::vector<SolutionKind> Figure4Solutions() {
  return {SolutionKind::kFirstTouch,      SolutionKind::kHmc,
          SolutionKind::kVanillaTieredAutoNuma, SolutionKind::kTieredAutoNuma,
          SolutionKind::kAutoTiering,     SolutionKind::kMtm};
}

Solution::Solution(SolutionKind kind, const ExperimentConfig& config, Workload& workload)
    : kind_(kind), config_(config) {
  if (!config.fault_spec.empty()) {
    // Distinct seed stream from the profiler/workload RNGs so enabling
    // faults never perturbs their sequences.
    Result<FaultInjector> parsed = FaultInjector::Parse(config.fault_spec, config.seed ^ 0xFA017);
    MTM_CHECK(parsed.ok()) << "bad fault_spec: " << parsed.status().ToString();
    injector_ = std::make_unique<FaultInjector>(std::move(parsed).value());
  }
  machine_ = std::make_unique<Machine>(config.two_tier
                                           ? Machine::TwoTier(config.sim_scale)
                                           : Machine::OptaneFourTier(config.sim_scale));
  frames_ = std::make_unique<FrameAllocator>(*machine_);
  counters_ = std::make_unique<MemCounters>(machine_->num_components());

  PebsEngine::Config pebs_config;
  if (kind == SolutionKind::kHemem) {
    pebs_config.sample_dram = true;  // HeMem samples DRAM and NVM loads
  }
  pebs_ = std::make_unique<PebsEngine>(*machine_, pebs_config);
  if (fault_injector() != nullptr) {
    pebs_->set_fault_injector(fault_injector());
  }

  AccessEngine::Config engine_config;
  engine_config.num_threads = config.num_threads;
  engine_ = std::make_unique<AccessEngine>(*machine_, page_table_, clock_, *counters_,
                                           engine_config);
  engine_->set_pebs(pebs_.get());
  engine_->set_tracker(&tracker_);

  // Placement policy per solution.
  PlacementPolicy placement = PlacementPolicy::kFirstTouch;
  if (kind == SolutionKind::kMtm || kind == SolutionKind::kThermostatProfilerMtmMigration ||
      kind == SolutionKind::kAutoNumaProfilerMtmMigration) {
    placement = config.mtm.placement;
  } else if (kind == SolutionKind::kHmc) {
    placement = PlacementPolicy::kPmOnly;
  }

  // Lay out the workload, then register tracking over its VMAs.
  workload.Build(address_space_);
  for (const Vma& vma : address_space_.vmas()) {
    tracker_.Register(vma.start, vma.len);
  }

  fault_handler_ = std::make_unique<PlacementFaultHandler>(*machine_, page_table_, *frames_,
                                                           address_space_, placement);
  engine_->set_fault_handler(fault_handler_.get());

  if (kind == SolutionKind::kHmc) {
    // One DRAM cache per socket fronting that socket's PM.
    std::vector<HmcCache*> caches;
    for (u32 s = 0; s < machine_->num_sockets(); ++s) {
      ComponentId dram = kInvalidComponent;
      for (ComponentId c{0}; c < machine_->end_component(); ++c) {
        if (machine_->component(c).mem_class == MemClass::kDram &&
            machine_->component(c).home_socket == s) {
          dram = c;
        }
      }
      MTM_CHECK_NE(dram, kInvalidComponent);
      hmc_caches_.push_back(std::make_unique<HmcCache>(
          *machine_, s, machine_->component(dram).capacity_bytes));
      caches.push_back(hmc_caches_.back().get());
    }
    engine_->set_hmc_caches(std::move(caches));
    return;  // no profiler / policy / migration
  }
  if (kind == SolutionKind::kFirstTouch) {
    return;  // allocation-only baseline
  }

  const SimNanos interval = config.IntervalNs();
  const Bytes batch = config.PromoteBatchBytes();

  // Profiler.
  switch (kind) {
    case SolutionKind::kMtm: {
      MtmProfiler::Config pc;
      pc.num_scans = config.mtm.num_scans;
      pc.overhead_fraction = config.mtm.overhead_fraction;
      pc.interval_ns = interval;
      pc.tau_m = config.mtm.TauM();
      pc.tau_s = config.mtm.TauS();
      pc.alpha = config.mtm.alpha;
      pc.adaptive_regions = config.mtm.adaptive_regions;
      pc.adaptive_sampling = config.mtm.adaptive_sampling;
      pc.overhead_control = config.mtm.overhead_control;
      pc.use_pebs = config.mtm.use_pebs;
      pc.scan_threads = config.mtm.scan_threads;
      pc.seed = config.seed ^ 0x5151;
      profiler_ = std::make_unique<MtmProfiler>(*machine_, page_table_, address_space_,
                                                *engine_, pebs_.get(), pc);
      break;
    }
    case SolutionKind::kVanillaTieredAutoNuma:
    case SolutionKind::kTieredAutoNuma: {
      AutoNumaProfiler::Config pc;
      // NUMA balancing covers the address space over tens of scan periods;
      // model one full sweep per ~64 intervals at minimum.
      pc.scan_window_bytes =
          std::max(config.ScanWindowBytes(), address_space_.total_bytes() / 64);
      pc.patched = kind == SolutionKind::kTieredAutoNuma;
      // Kernel two-touch counters persist; the patched MFU path weights
      // recent faults.
      pc.decay = pc.patched ? 0.7 : 1.0;
      profiler_ = std::make_unique<AutoNumaProfiler>(page_table_, address_space_, *engine_, pc);
      break;
    }
    case SolutionKind::kAutoTiering: {
      AutoTieringProfiler::Config pc;
      pc.scan_window_bytes = config.ScanWindowBytes();
      pc.seed = config.seed ^ 0xa7a7;
      profiler_ = std::make_unique<AutoTieringProfiler>(page_table_, address_space_, pc);
      break;
    }
    case SolutionKind::kHemem: {
      HememProfiler::Config pc;
      profiler_ = std::make_unique<HememProfiler>(page_table_, *pebs_, pc);
      break;
    }
    case SolutionKind::kThermostatProfilerMtmMigration: {
      ThermostatProfiler::Config pc;
      pc.interval_ns = interval;
      pc.overhead_fraction = config.mtm.overhead_fraction;
      pc.seed = config.seed ^ 0x7777;
      profiler_ = std::make_unique<ThermostatProfiler>(address_space_, tracker_, pc);
      break;
    }
    case SolutionKind::kAutoNumaProfilerMtmMigration: {
      AutoNumaProfiler::Config pc;
      pc.scan_window_bytes =
          std::max(config.ScanWindowBytes(), address_space_.total_bytes() / 64);
      pc.patched = true;
      pc.decay = 0.7;
      profiler_ = std::make_unique<AutoNumaProfiler>(page_table_, address_space_, *engine_, pc);
      break;
    }
    default:
      break;
  }
  if (profiler_ != nullptr) {
    profiler_->Initialize();
  }

  // Policy: every solution's default policy resolves by name through the
  // registry, and config.policy_override swaps in any registered plugin
  // (the knob behind --policy=<name>). The params stay those of the
  // solution kind, so an override inherits the experiment's batch size and
  // score range — --policy=mtm-feature on the mtm solution is byte-identical
  // to the hand-wired default.
  std::string policy_name;
  PolicyParams params;
  params.promote_batch_bytes = batch;
  switch (kind) {
    case SolutionKind::kMtm:
      policy_name = "mtm";
      params.hotness_max = static_cast<double>(config.mtm.num_scans);
      break;
    case SolutionKind::kThermostatProfilerMtmMigration:
    case SolutionKind::kAutoNumaProfilerMtmMigration:
      policy_name = "mtm";
      params.hotness_max = -1.0;  // adapt to the foreign profiler's scale
      break;
    case SolutionKind::kVanillaTieredAutoNuma:
      policy_name = "vanilla-autonuma";
      break;
    case SolutionKind::kTieredAutoNuma:
      policy_name = "autonuma";
      break;
    case SolutionKind::kAutoTiering:
      policy_name = "autotiering";
      break;
    case SolutionKind::kHemem:
      policy_name = "hemem";
      break;
    default:
      break;
  }
  if (!policy_name.empty() && !config.policy_override.empty()) {
    policy_overridden_ = config.policy_override != policy_name;
    policy_name = config.policy_override;
  }
  if (!policy_name.empty()) {
    policy_ = MakePolicy(policy_name, params);
    MTM_CHECK(policy_ != nullptr) << "unknown policy: " << policy_name;
  }

  // Migration mechanism.
  MechanismKind mech = MechanismKind::kMovePages;
  switch (kind) {
    case SolutionKind::kMtm:
    case SolutionKind::kThermostatProfilerMtmMigration:
    case SolutionKind::kAutoNumaProfilerMtmMigration:
      mech = config.mtm.mechanism;
      break;
    case SolutionKind::kHemem:
      mech = MechanismKind::kNimble;  // HeMem migrates asynchronously in userspace
      break;
    default:
      mech = MechanismKind::kMovePages;  // kernel default path
      break;
  }
  migration_ = std::make_unique<MigrationEngine>(*machine_, page_table_, *frames_,
                                                 address_space_, *counters_, clock_, mech);
  migration_->set_migrate_threads(config.mtm.migrate_threads);
  engine_->set_write_track_observer(migration_.get());
  if (fault_injector() != nullptr) {
    migration_->set_fault_injector(fault_injector());
  }

  // Admission stage: sim-time windows derive from the profiling interval so
  // the controllers scale with the experiment, and the bandwidth budget
  // defaults to the policy's promote batch (N, §6.1).
  AdmissionTuning tuning;
  tuning.flip_window_ns = interval * 5;
  tuning.ppt_base_cooldown_ns = interval;
  tuning.ppt_max_cooldown_ns = interval * 32;
  tuning.interval_budget_bytes = !config.mtm.admission_budget_bytes.IsZero()
                                     ? config.mtm.admission_budget_bytes
                                     : batch;
  admission_ = MakeAdmissionController(config.mtm.admission, tuning);
  migration_->set_admission(admission_.get(), tuning);
}

}  // namespace mtm
