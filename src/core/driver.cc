#include "src/core/driver.h"

#include <array>

#include "src/common/fault_injection.h"
#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/strong_types.h"
#include "src/common/types.h"
#include "src/mem/address_space.h"
#include "src/migration/admission/admission.h"
#include "src/migration/policy.h"
#include "src/obs/metric_id.h"
#include "src/obs/trace.h"
#include "src/profiling/profiler.h"
#include "src/sim/access_engine.h"
#include "src/sim/clock.h"
#include "src/sim/counters.h"
#include "src/sim/page_table.h"
#include "src/workloads/workload_factory.h"

namespace mtm {

RunResult RunSimulation(Workload& workload, Solution& solution,
                        const ExperimentConfig& config, const RunOptions& options) {
  RunResult result;
  result.solution = solution.name();
  result.workload = workload.name();
  result.footprint_bytes = workload.params().footprint_bytes;
  if (solution.policy() != nullptr) {
    result.policy = solution.policy()->name();
    result.policy_overridden = solution.policy_overridden();
  }

  // Observability wiring: attach the registry to every instrumented
  // component, then intern the driver's own metric ids once up front.
  Observability* obs = options.obs;
  MetricId interval_id = kInvalidMetricId;
  MetricId accesses_id = kInvalidMetricId;
  MetricId hot_bytes_id = kInvalidMetricId;
  MetricId app_ns_id = kInvalidMetricId;
  MetricId profiling_ns_id = kInvalidMetricId;
  MetricId migration_ns_id = kInvalidMetricId;
  MetricId rollbacks_id = kInvalidMetricId;
  MetricId abandoned_id = kInvalidMetricId;
  MetricId sync_fallbacks_id = kInvalidMetricId;
  MetricId thrash_id = kInvalidMetricId;
  MetricId retry_backlog_id = kInvalidMetricId;
  MetricId async_copies_id = kInvalidMetricId;
  MetricId fallback_copy_bytes_id = kInvalidMetricId;
  MetricId admitted_id = kInvalidMetricId;
  MetricId deferred_id = kInvalidMetricId;
  MetricId rejected_id = kInvalidMetricId;
  MetricId flip_bytes_id = kInvalidMetricId;
  MetricId pingpong_id = kInvalidMetricId;
  IdMap<ComponentId, MetricId> app_access_ids;
  IdMap<ComponentId, MetricId> migration_bytes_ids;
  // Resilience and admission metrics join the timeline only when the run
  // can produce them (chaos run, or a non-vanilla controller armed): the
  // timeline snapshots every interned metric, so interning them on
  // fault-free vanilla runs would change the seed goldens' schema.
  const bool admission_active = solution.migration() != nullptr &&
                                solution.migration()->admission() != nullptr &&
                                solution.migration()->admission()->kind() !=
                                    AdmissionKind::kVanilla;
  const bool chaos = solution.fault_injector() != nullptr;
  if (obs != nullptr) {
    if (solution.profiler() != nullptr) {
      solution.profiler()->set_metrics(&obs->metrics);
    }
    if (solution.pebs() != nullptr) {
      solution.pebs()->AttachMetrics(&obs->metrics);
    }
    if (solution.migration() != nullptr) {
      solution.migration()->AttachObservability(obs);
    }
    interval_id = obs->metrics.Counter("driver/intervals");
    accesses_id = obs->metrics.Counter("driver/accesses");
    hot_bytes_id = obs->metrics.Gauge("driver/hot_bytes");
    app_ns_id = obs->metrics.Gauge("time/app_ns");
    profiling_ns_id = obs->metrics.Gauge("time/profiling_ns");
    migration_ns_id = obs->metrics.Gauge("time/migration_ns");
    rollbacks_id = obs->metrics.Gauge("migration/rollbacks");
    abandoned_id = obs->metrics.Gauge("migration/orders_abandoned");
    sync_fallbacks_id = obs->metrics.Gauge("migration/sync_fallbacks");
    if (chaos || admission_active) {
      thrash_id = obs->metrics.Gauge("migration/thrash_aborts");
      retry_backlog_id = obs->metrics.Gauge("migration/retry_backlog");
    }
    if (obs->async_flows) {
      // Copy-engine gauges ride the same opt-in as the flow arrows: the
      // timeline snapshots every interned metric, so interning these
      // unconditionally would change the seed goldens' schema.
      async_copies_id = obs->metrics.Gauge("migration/async_copies");
      fallback_copy_bytes_id = obs->metrics.Gauge("migration/fallback_copy_bytes");
    }
    if (admission_active) {
      admitted_id = obs->metrics.Gauge("admission/admitted");
      deferred_id = obs->metrics.Gauge("admission/deferred");
      rejected_id = obs->metrics.Gauge("admission/rejected");
      flip_bytes_id = obs->metrics.Gauge("admission/flip_bytes");
      pingpong_id = obs->metrics.Gauge("admission/max_pingpong_score");
    }
    for (ComponentId c{0}; c < solution.machine().end_component(); ++c) {
      app_access_ids.push_back(
          obs->metrics.Counter("mem/app_accesses_c" + std::to_string(c.value())));
      migration_bytes_ids.push_back(
          obs->metrics.Gauge("mem/migration_bytes_c" + std::to_string(c.value())));
    }
  }

  const SimNanos interval_ns = config.IntervalNs();
  const u32 ticks = std::max<u32>(1, config.mtm.num_scans);
  SimClock& clock = solution.clock();
  AccessEngine& engine = solution.engine();
  MemCounters& counters = solution.counters();

  PolicyContext ctx;
  ctx.machine = &solution.machine();
  ctx.page_table = &solution.page_table();
  ctx.frames = &solution.frames();
  ctx.interval_ns = interval_ns;
  if (solution.migration() != nullptr) {
    ctx.history = &solution.migration()->history();
  }

  constexpr u32 kBatch = 2048;
  std::array<MemAccess, kBatch> batch;

  // Application initialization: fault the working set in address order, as
  // real initialization loops do. This is where first-touch placement
  // decisions happen; the access-phase hot set has no influence on them.
  {
    u32 rr = 0;
    for (const Vma& vma : solution.address_space().vmas()) {
      if (!vma.prefault) {
        continue;  // grows at runtime (e.g. append-only history)
      }
      const u64 step = vma.thp ? kHugePageSize : kPageSize;
      for (VirtAddr addr = vma.start; addr < vma.end(); addr += step) {
        engine.Apply(addr, /*is_write=*/true, solution.SocketOfThread(rr++));
      }
    }
    solution.tracker().ResetEpoch();
    // Initialization leaves every accessed bit set; clear them so the first
    // profiling interval observes the access phase, not the init loop.
    for (const Vma& vma : solution.address_space().vmas()) {
      solution.page_table().ForEachMapping(vma.start, vma.len, [](VirtAddr, Bytes, Pte& pte) {
        pte.Clear(Pte::kAccessed);
        pte.Clear(Pte::kDirty);
      });
    }
  }

  u64 fast_tier_accesses_prev = 0;
  const ComponentId fast_tier = solution.machine().TierOrder(0)[0];

  // Chaos wiring: fire scheduled tier-degradation events once their
  // simulated time passes. The Machine's health state flips first (so cost
  // models and policies see it), then the migration engine reacts — rolling
  // back in-flight orders targeting a dead component and draining it.
  FaultInjector* injector = solution.fault_injector();
  auto apply_due_faults = [&]() {
    if (injector == nullptr) {
      return;
    }
    for (const TierFaultEvent& event : injector->TakeDue(clock.now())) {
      MTM_CHECK_LT(event.component.value(), solution.machine().num_components());
      ++result.faults.tier_events;
      if (event.offline) {
        solution.mutable_machine().SetOffline(event.component, true);
      } else {
        solution.mutable_machine().SetBandwidthDerate(event.component, event.bandwidth_derate);
      }
      if (solution.migration() != nullptr) {
        solution.migration()->OnTierFault(event);
      }
    }
  };
  result.faults.active = injector != nullptr;
  apply_due_faults();

  RunningStats hot_bytes_stats;
  RunningStats merged_stats;
  RunningStats split_stats;
  RunningStats regions_stats;

  for (u32 interval = 0; interval < config.num_intervals; ++interval) {
    if (config.target_accesses != 0 && result.total_accesses >= config.target_accesses) {
      break;
    }
    if (solution.profiler() != nullptr) {
      solution.profiler()->OnIntervalStart();
    }
    if (solution.migration() != nullptr) {
      solution.migration()->BeginInterval();  // fresh thrash-guard window
    }
    const SimNanos interval_start = clock.now();
    for (u32 tick = 0; tick < ticks; ++tick) {
      const SimNanos tick_end =
          interval_start + (static_cast<u64>(tick) + 1) * interval_ns / ticks;
      apply_due_faults();
      while (clock.now() < tick_end) {
        u32 n = workload.NextBatch(batch.data(), kBatch);
        for (u32 i = 0; i < n; ++i) {
          engine.Apply(batch[i].addr, batch[i].is_write,
                       solution.SocketOfThread(batch[i].thread));
        }
        result.total_accesses += n;
        if (solution.migration() != nullptr) {
          solution.migration()->Poll();
        }
      }
      if (solution.profiler() != nullptr) {
        MTM_TRACE_SCOPE(obs != nullptr ? obs->wall_registry() : nullptr, "scan_tick");
        solution.profiler()->OnScanTick(tick);
      }
    }

    IntervalRecord record;
    record.fast_tier_accesses = counters.app_accesses(fast_tier) - fast_tier_accesses_prev;
    fast_tier_accesses_prev = counters.app_accesses(fast_tier);

    if (solution.profiler() != nullptr) {
      MTM_TRACE_SCOPE(obs != nullptr ? obs->wall_registry() : nullptr, "interval_end");
      const SimNanos profiling_start = clock.now();
      ProfileOutput profile = solution.profiler()->OnIntervalEnd();
      clock.AdvanceProfiling(profile.profiling_cost_ns);
      if (obs != nullptr) {
        // The interval's PTE-scan work is charged here as one modeled cost;
        // the span renders it on the profiling track in simulated time.
        obs->trace.AddSpan("pte_scan", "profiling", profiling_start,
                           profile.profiling_cost_ns);
        obs->metrics.Set(hot_bytes_id, static_cast<double>(profile.hot_bytes.value()));
        obs->trace.AddCounter("hot_bytes", clock.now(),
                              static_cast<double>(profile.hot_bytes.value()));
      }
      if (options.evaluate_quality) {
        std::vector<HotRange> truth = workload.TrueHotRanges();
        if (!truth.empty()) {
          record.quality = Oracle::Evaluate(std::move(truth), profile);
        }
      }
      record.hot_bytes = profile.hot_bytes;
      record.regions_merged = profile.regions_merged;
      record.regions_split = profile.regions_split;
      record.num_regions = profile.num_regions;
      hot_bytes_stats.Add(static_cast<double>(profile.hot_bytes.value()));
      merged_stats.Add(static_cast<double>(profile.regions_merged));
      split_stats.Add(static_cast<double>(profile.regions_split));
      regions_stats.Add(static_cast<double>(profile.num_regions));

      // Decide before exporting, submit after: the exporters see exactly
      // the residency and history state the policy consumed, plus the
      // orders it produced, before migration perturbs either.
      ctx.now = clock.now();
      const bool deciding = solution.policy() != nullptr && solution.migration() != nullptr;
      std::vector<MigrationOrder> orders;
      if (deciding) {
        orders = solution.policy()->Decide(profile, ctx);
      }
      if (options.feature_export != nullptr || options.heatmap_export != nullptr) {
        std::vector<FeatureVector> features = BuildFeatures(profile, ctx);
        if (options.heatmap_export != nullptr) {
          options.heatmap_export->OnInterval(interval, clock.now(), profile, features);
        }
        if (options.feature_export != nullptr) {
          options.feature_export->OnInterval(interval, clock.now(), profile, features, orders,
                                             ctx);
        }
      }
      if (deciding) {
        solution.migration()->SubmitAll(orders);
      }
    }
    record.end_time_ns = clock.now();
    if (obs != nullptr) {
      obs->trace.AddSpan("interval", "driver", interval_start, clock.now() - interval_start);
      obs->metrics.Add(interval_id);
      obs->metrics.Add(accesses_id, result.total_accesses - obs->metrics.counter(accesses_id));
      obs->metrics.Set(app_ns_id, static_cast<double>(clock.app_ns().value()));
      obs->metrics.Set(profiling_ns_id, static_cast<double>(clock.profiling_ns().value()));
      obs->metrics.Set(migration_ns_id, static_cast<double>(clock.migration_ns().value()));
      for (ComponentId c{0}; c < solution.machine().end_component(); ++c) {
        MetricId id = app_access_ids[c];
        u64 cumulative = counters.app_accesses(c);
        obs->metrics.Add(id, cumulative - obs->metrics.counter(id));
        obs->metrics.Set(migration_bytes_ids[c],
                         static_cast<double>(counters.migration_bytes(c).value()));
      }
      if (solution.migration() != nullptr) {
        const MigrationStats& ms = solution.migration()->stats();
        obs->metrics.Set(rollbacks_id, static_cast<double>(ms.rollbacks));
        obs->metrics.Set(abandoned_id, static_cast<double>(ms.orders_abandoned));
        obs->metrics.Set(sync_fallbacks_id, static_cast<double>(ms.sync_fallbacks));
        if (obs->async_flows) {
          obs->metrics.Set(async_copies_id, static_cast<double>(ms.async_copies));
          obs->metrics.Set(fallback_copy_bytes_id,
                           static_cast<double>(ms.fallback_copy_bytes.value()));
        }
        if (chaos || admission_active) {
          obs->metrics.Set(thrash_id, static_cast<double>(ms.thrash_aborts));
          obs->metrics.Set(retry_backlog_id,
                           static_cast<double>(solution.migration()->retry_backlog()));
        }
        if (admission_active) {
          const AdmissionStats& as = solution.migration()->admission_stats();
          obs->metrics.Set(admitted_id, static_cast<double>(as.admitted));
          obs->metrics.Set(deferred_id, static_cast<double>(as.deferred));
          obs->metrics.Set(rejected_id, static_cast<double>(as.rejected));
          obs->metrics.Set(flip_bytes_id, static_cast<double>(as.flip_bytes.value()));
          obs->metrics.Set(pingpong_id,
                           solution.migration()->history().MaxPingPongScore());
        }
      }
      obs->timeline.Snapshot(interval, clock.now(), obs->metrics);
    }
    if (options.record_intervals) {
      result.intervals.push_back(record);
    }
    if (injector != nullptr && solution.migration() != nullptr) {
      // Chaos runs audit transactional consistency after every interval.
      Status audit = solution.migration()->VerifyInvariants();
      if (!audit.ok()) {
        ++result.faults.invariant_violations;
        if (result.faults.first_violation.empty()) {
          result.faults.first_violation = audit.message();
        }
        MTM_LOG(Error) << "invariant violation after interval " << interval << ": "
                       << audit.ToString();
      }
    }
    solution.tracker().ResetEpoch();
  }
  apply_due_faults();  // events scheduled past the last interval still fire

  if (solution.migration() != nullptr) {
    solution.migration()->Flush();
    result.migration_stats = solution.migration()->stats();
    result.admission_stats = solution.migration()->admission_stats();
    if (solution.migration()->admission() != nullptr) {
      result.admission = solution.migration()->admission()->name();
      result.admission_active = admission_active;
    }
  }
  if (injector != nullptr) {
    result.faults.copy_failures = injector->injected(FaultSite::kMigrationCopy);
    result.faults.remap_failures = injector->injected(FaultSite::kMigrationRemap);
    result.faults.alloc_failures = injector->injected(FaultSite::kAllocation);
    result.faults.pebs_drops = injector->injected(FaultSite::kPebsDrop);
    if (solution.migration() != nullptr) {
      Status audit = solution.migration()->VerifyInvariants();
      if (!audit.ok()) {
        ++result.faults.invariant_violations;
        if (result.faults.first_violation.empty()) {
          result.faults.first_violation = audit.message();
        }
        MTM_LOG(Error) << "invariant violation after flush: " << audit.ToString();
      }
    }
  }
  result.app_ns = clock.app_ns();
  result.profiling_ns = clock.profiling_ns();
  result.migration_ns = clock.migration_ns();
  if (obs != nullptr) {
    obs->metrics.Add(accesses_id, result.total_accesses - obs->metrics.counter(accesses_id));
    obs->metrics.Set(app_ns_id, static_cast<double>(clock.app_ns().value()));
    obs->metrics.Set(profiling_ns_id, static_cast<double>(clock.profiling_ns().value()));
    obs->metrics.Set(migration_ns_id, static_cast<double>(clock.migration_ns().value()));
  }
  for (ComponentId c{0}; c < solution.machine().end_component(); ++c) {
    result.component_app_accesses.push_back(counters.app_accesses(c));
  }
  if (solution.profiler() != nullptr) {
    result.profiler_memory_bytes = solution.profiler()->MemoryOverheadBytes();
  }
  result.avg_hot_bytes = hot_bytes_stats.mean();
  result.avg_regions_merged = merged_stats.mean();
  result.avg_regions_split = split_stats.mean();
  result.avg_num_regions = regions_stats.mean();
  return result;
}

RunResult RunExperiment(const std::string& workload_name, SolutionKind kind,
                        const ExperimentConfig& config, const RunOptions& options) {
  std::unique_ptr<Workload> workload =
      MakeWorkload(workload_name, config.sim_scale, config.num_threads, config.seed);
  Solution solution(kind, config, *workload);
  if (solution.profiler() == nullptr && kind != SolutionKind::kFirstTouch &&
      kind != SolutionKind::kHmc) {
    MTM_CHECK(false) << "solution missing profiler";
  }
  return RunSimulation(*workload, solution, config, options);
}

}  // namespace mtm
