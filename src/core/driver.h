// The simulation driver: runs a workload under a solution for a number of
// profiling intervals, orchestrating the §8 daemon loop — profile at scan
// ticks, decide at interval end, migrate — and collecting everything the
// paper's tables and figures report.
#pragma once

#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"
#include "src/migration/admission/admission.h"
#include "src/migration/features.h"
#include "src/migration/migration_engine.h"
#include "src/obs/obs.h"
#include "src/profiling/oracle.h"
#include "src/workloads/workload.h"

namespace mtm {

struct IntervalRecord {
  SimNanos end_time_ns;
  ProfilingQuality quality;  // populated when the workload has ground truth
  Bytes hot_bytes;
  u64 fast_tier_accesses = 0;  // app accesses to tier 1 (socket-0 view)
  u64 regions_merged = 0;
  u64 regions_split = 0;
  u64 num_regions = 0;
};

// Chaos-run outcome: what was injected and whether the system stayed
// consistent. All-zero (active == false) for fault-free runs.
struct FaultSummary {
  bool active = false;           // a fault_spec was armed for this run
  u64 copy_failures = 0;         // injected at the migration copy site
  u64 remap_failures = 0;
  u64 alloc_failures = 0;
  u64 pebs_drops = 0;            // injected PEBS sample drops
  u64 tier_events = 0;           // scheduled degradations fired
  u64 invariant_violations = 0;  // post-interval VerifyInvariants failures
  std::string first_violation;   // message of the first failed audit
};

struct RunResult {
  std::string solution;
  std::string workload;

  SimNanos app_ns;
  SimNanos profiling_ns;
  SimNanos migration_ns;
  u64 total_accesses = 0;

  std::vector<u64> component_app_accesses;  // per component, app only
  MigrationStats migration_stats;
  // Admission-stage outcome. admission_active only when a controller other
  // than vanilla was armed; reports gate their admission sections on it so
  // vanilla output stays byte-identical to the pre-admission format.
  AdmissionStats admission_stats;
  std::string admission;  // controller name; empty when the run had no stage
  bool admission_active = false;
  // Tiering-policy identity. policy_overridden only when --policy swapped
  // the solution's default; reports gate their policy line on it so default
  // runs stay byte-identical to the pre-registry format.
  std::string policy;  // empty when the solution has no policy
  bool policy_overridden = false;
  FaultSummary faults;
  Bytes profiler_memory_bytes;
  Bytes footprint_bytes;

  double avg_hot_bytes = 0.0;
  double avg_regions_merged = 0.0;
  double avg_regions_split = 0.0;
  double avg_num_regions = 0.0;

  std::vector<IntervalRecord> intervals;  // populated when record_intervals

  SimNanos total_ns() const { return app_ns + profiling_ns + migration_ns; }
  double AccessesPerSecond() const {
    return total_ns().IsZero() ? 0.0
                               : static_cast<double>(total_accesses) /
                                     (static_cast<double>(total_ns().value()) / 1e9);
  }
};

struct RunOptions {
  bool record_intervals = false;
  bool evaluate_quality = false;  // per-interval oracle recall/accuracy
  // When non-null, the run records metrics, sim-time trace spans, and one
  // timeline snapshot per interval into the bundle (see src/obs/obs.h).
  Observability* obs = nullptr;
  // When non-null, each profiled interval streams per-region training rows
  // (--policy-features-out) / a hotness heatmap line (--heatmap-out) into
  // the exporter. Both read the decision before migration executes it.
  FeatureExporter* feature_export = nullptr;
  HeatmapExporter* heatmap_export = nullptr;
};

RunResult RunSimulation(Workload& workload, Solution& solution,
                        const ExperimentConfig& config, const RunOptions& options = {});

// Convenience: build the workload + solution and run.
RunResult RunExperiment(const std::string& workload_name, SolutionKind kind,
                        const ExperimentConfig& config, const RunOptions& options = {});

}  // namespace mtm
