// A Solution bundles one complete page-management system under test: the
// simulated machine, placement policy, profiler, tiering policy, and
// migration mechanism — everything §9's comparisons vary.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/fault_injection.h"
#include "src/core/experiment.h"
#include "src/mem/address_space.h"
#include "src/mem/frame_allocator.h"
#include "src/mem/placement.h"
#include "src/migration/admission/admission.h"
#include "src/migration/migration_engine.h"
#include "src/migration/policy.h"
#include "src/profiling/profiler.h"
#include "src/sim/access_engine.h"
#include "src/sim/access_tracker.h"
#include "src/sim/clock.h"
#include "src/sim/counters.h"
#include "src/sim/hmc_cache.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"
#include "src/sim/pebs.h"
#include "src/workloads/workload.h"

namespace mtm {

enum class SolutionKind {
  kFirstTouch,             // first-touch NUMA, no migration
  kHmc,                    // hardware-managed caching (Memory Mode)
  kVanillaTieredAutoNuma,  // two-touch, tier-by-tier
  kTieredAutoNuma,         // + hot-page-selection & auto-threshold patches
  kAutoTiering,
  kHemem,                  // two-tier PEBS-only
  kMtm,
  // §9.3 profiler-swap ablations: baseline profiler + MTM policy/migration.
  kThermostatProfilerMtmMigration,
  kAutoNumaProfilerMtmMigration,
};

const char* SolutionKindName(SolutionKind kind);
SolutionKind SolutionKindFromName(const std::string& name);
std::vector<SolutionKind> Figure4Solutions();

// Owns the full simulation stack for one run. Construction order matters:
// machine -> memory -> engine -> workload Build -> profiler/policy/migration.
class Solution {
 public:
  Solution(SolutionKind kind, const ExperimentConfig& config, Workload& workload);

  SolutionKind kind() const { return kind_; }
  std::string name() const { return SolutionKindName(kind_); }

  const Machine& machine() const { return *machine_; }
  // Health events mutate the machine at runtime (driver-applied tier faults).
  Machine& mutable_machine() { return *machine_; }
  SimClock& clock() { return clock_; }
  PageTable& page_table() { return page_table_; }
  FrameAllocator& frames() { return *frames_; }
  AddressSpace& address_space() { return address_space_; }
  MemCounters& counters() { return *counters_; }
  AccessEngine& engine() { return *engine_; }
  AccessTracker& tracker() { return tracker_; }
  PebsEngine* pebs() { return pebs_.get(); }

  Profiler* profiler() { return profiler_.get(); }          // may be null
  TieringPolicy* policy() { return policy_.get(); }          // may be null
  // True when config.policy_override swapped in a policy other than the
  // solution kind's default (reports surface the active policy then).
  bool policy_overridden() const { return policy_overridden_; }
  MigrationEngine* migration() { return migration_.get(); }  // may be null
  AdmissionController* admission() { return admission_.get(); }  // null with migration
  // Armed when the config carried a non-empty fault_spec; null otherwise.
  FaultInjector* fault_injector() { return injector_ != nullptr && injector_->armed()
                                               ? injector_.get()
                                               : nullptr; }

  u32 SocketOfThread(u32 thread) const {
    return config_.spread_threads ? thread % machine_->num_sockets() : 0;
  }

 private:
  SolutionKind kind_;
  ExperimentConfig config_;

  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<Machine> machine_;
  SimClock clock_;
  PageTable page_table_;
  AddressSpace address_space_;
  AccessTracker tracker_;
  std::unique_ptr<FrameAllocator> frames_;
  std::unique_ptr<MemCounters> counters_;
  std::unique_ptr<PebsEngine> pebs_;
  std::unique_ptr<AccessEngine> engine_;
  std::unique_ptr<PlacementFaultHandler> fault_handler_;
  std::vector<std::unique_ptr<HmcCache>> hmc_caches_;

  bool policy_overridden_ = false;
  std::unique_ptr<Profiler> profiler_;
  std::unique_ptr<TieringPolicy> policy_;
  std::unique_ptr<MigrationEngine> migration_;
  std::unique_ptr<AdmissionController> admission_;
};

}  // namespace mtm
