#include "src/core/report.h"

#include <fstream>
#include <sstream>

#include "src/common/units.h"
#include "src/migration/admission/admission.h"
#include "src/migration/migration_engine.h"

namespace mtm {
namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string CsvHeader() {
  return "workload,solution,app_s,profiling_s,migration_s,total_s,accesses,"
         "migrated_bytes,failed_bytes,sync_fallbacks,reclaim_demotions,"
         "profiler_memory_bytes,avg_regions,avg_hot_bytes,"
         "retries,rollbacks,orders_abandoned,drained_bytes,invariant_violations,"
         "async_copies,copy_shards,async_copy_bytes,fallback_copy_bytes,copy_checksum";
}

std::string CsvRow(const RunResult& r) {
  std::ostringstream os;
  os << r.workload << ',' << r.solution << ',' << ToSeconds(r.app_ns) << ','
     << ToSeconds(r.profiling_ns) << ',' << ToSeconds(r.migration_ns) << ','
     << ToSeconds(r.total_ns()) << ',' << r.total_accesses << ','
     << r.migration_stats.bytes_migrated << ',' << r.migration_stats.bytes_failed << ','
     << r.migration_stats.sync_fallbacks << ',' << r.migration_stats.reclaim_demotions << ','
     << r.profiler_memory_bytes << ',' << r.avg_num_regions << ',' << r.avg_hot_bytes << ','
     << r.migration_stats.retries << ',' << r.migration_stats.rollbacks << ','
     << r.migration_stats.orders_abandoned << ',' << r.migration_stats.drained_bytes << ','
     << r.faults.invariant_violations << ',' << r.migration_stats.async_copies << ','
     << r.migration_stats.copy_shards << ',' << r.migration_stats.async_copy_bytes << ','
     << r.migration_stats.fallback_copy_bytes << ',' << r.migration_stats.copy_checksum;
  return os.str();
}

std::string HumanReport(const RunResult& r) {
  std::ostringstream os;
  os << r.workload << " under " << r.solution << "\n";
  if (r.policy_overridden) {
    // Only when --policy swapped the default, so existing reports stay
    // byte-identical.
    os << "  policy: " << r.policy << " (overridden)\n";
  }
  os << "  time: app " << ToSeconds(r.app_ns) << "s, profiling " << ToSeconds(r.profiling_ns)
     << "s, migration " << ToSeconds(r.migration_ns) << "s, total " << ToSeconds(r.total_ns())
     << "s\n";
  os << "  work: " << r.total_accesses << " accesses ("
     << r.AccessesPerSecond() / 1e6 << "M/s simulated)\n";
  os << "  migration: " << ToMiB(r.migration_stats.bytes_migrated) << " MiB moved, "
     << r.migration_stats.regions_migrated << " region moves, "
     << r.migration_stats.sync_fallbacks << " sync fallbacks, "
     << r.migration_stats.reclaim_demotions << " reclaim demotions\n";
  if (r.migration_stats.async_copies > 0 || r.migration_stats.sync_fallbacks > 0) {
    // Helper-thread copy engine accounting (move_memory_regions only).
    os << "  async copy: " << r.migration_stats.async_copies << " staged commits ("
       << r.migration_stats.copy_shards << " shards, "
       << ToMiB(r.migration_stats.async_copy_bytes) << " MiB), "
       << ToMiB(r.migration_stats.fallback_copy_bytes) << " MiB re-copied sync, checksum "
       << r.migration_stats.copy_checksum << "\n";
  }
  os << "  per-component app accesses:";
  for (std::size_t c = 0; c < r.component_app_accesses.size(); ++c) {
    os << " c" << c << "=" << r.component_app_accesses[c];
  }
  os << "\n";
  if (r.admission_active) {
    const AdmissionStats& a = r.admission_stats;
    os << "  admission (" << r.admission << "): " << a.admitted << " admitted / " << a.deferred
       << " deferred / " << a.rejected << " rejected (" << ToMiB(a.admitted_bytes)
       << " MiB in, " << ToMiB(a.deferred_bytes + a.rejected_bytes) << " MiB shed), "
       << a.flip_moves << " flips (" << ToMiB(a.flip_bytes) << " MiB)\n";
    if (a.split_orders > 0) {
      os << "  partial admission: " << a.split_orders << " orders split at the budget ("
         << ToMiB(a.split_shed_bytes) << " MiB shed past the boundary)\n";
    }
  }
  if (r.faults.active) {
    const MigrationStats& m = r.migration_stats;
    os << "  resilience: " << r.faults.copy_failures << " copy / " << r.faults.remap_failures
       << " remap / " << r.faults.alloc_failures << " alloc faults injected, "
       << r.faults.pebs_drops << " pebs drops, " << m.rollbacks << " rollbacks, " << m.retries
       << " retries, " << m.orders_abandoned << " abandoned ("
       << m.thrash_aborts << " thrash)\n";
    if (r.faults.tier_events > 0) {
      os << "  degradation: " << r.faults.tier_events << " tier events, " << m.tier_drains
         << " drains, " << ToMiB(m.drained_bytes) << " MiB drained, "
         << ToMiB(m.drain_failed_bytes) << " MiB stranded\n";
    }
    os << "  audit: " << r.faults.invariant_violations << " invariant violations";
    if (!r.faults.first_violation.empty()) {
      os << " (first: " << r.faults.first_violation << ")";
    }
    os << "\n";
  }
  if (!r.profiler_memory_bytes.IsZero()) {
    os << "  profiler metadata: "
       << static_cast<double>(r.profiler_memory_bytes.value()) / 1024.0 << " KiB ("
       << 100.0 * static_cast<double>(r.profiler_memory_bytes.value()) /
              static_cast<double>(r.footprint_bytes.value())
       << "% of footprint)\n";
  }
  return os.str();
}

std::string JsonReport(const RunResult& r) {
  std::ostringstream os;
  os << "{";
  os << "\"workload\":\"" << EscapeJson(r.workload) << "\",";
  os << "\"solution\":\"" << EscapeJson(r.solution) << "\",";
  if (r.policy_overridden) {
    // Emitted only when --policy swapped the solution's default policy, so
    // existing JSON stays byte-identical.
    os << "\"policy\":\"" << EscapeJson(r.policy) << "\",";
  }
  os << "\"app_s\":" << ToSeconds(r.app_ns) << ",";
  os << "\"profiling_s\":" << ToSeconds(r.profiling_ns) << ",";
  os << "\"migration_s\":" << ToSeconds(r.migration_ns) << ",";
  os << "\"total_s\":" << ToSeconds(r.total_ns()) << ",";
  os << "\"accesses\":" << r.total_accesses << ",";
  os << "\"migrated_bytes\":" << r.migration_stats.bytes_migrated << ",";
  os << "\"sync_fallbacks\":" << r.migration_stats.sync_fallbacks << ",";
  os << "\"reclaim_demotions\":" << r.migration_stats.reclaim_demotions << ",";
  os << "\"profiler_memory_bytes\":" << r.profiler_memory_bytes << ",";
  os << "\"component_app_accesses\":[";
  for (std::size_t c = 0; c < r.component_app_accesses.size(); ++c) {
    os << (c == 0 ? "" : ",") << r.component_app_accesses[c];
  }
  os << "]";
  if (r.admission_active) {
    // Emitted only when a non-vanilla controller was armed, so existing
    // (and vanilla) JSON stays byte-identical.
    const AdmissionStats& a = r.admission_stats;
    os << ",\"admission\":{";
    os << "\"controller\":\"" << EscapeJson(r.admission) << "\",";
    os << "\"admitted\":" << a.admitted << ",";
    os << "\"deferred\":" << a.deferred << ",";
    os << "\"rejected\":" << a.rejected << ",";
    os << "\"admitted_bytes\":" << a.admitted_bytes << ",";
    os << "\"deferred_bytes\":" << a.deferred_bytes << ",";
    os << "\"rejected_bytes\":" << a.rejected_bytes << ",";
    os << "\"flip_moves\":" << a.flip_moves << ",";
    os << "\"flip_bytes\":" << a.flip_bytes << ",";
    os << "\"thrash_aborts\":" << r.migration_stats.thrash_aborts;
    if (a.split_orders > 0) {
      // Partial-admission fields appear only when a split happened, so the
      // ppt/vanilla goldens keep their exact bytes.
      os << ",\"split_orders\":" << a.split_orders;
      os << ",\"split_shed_bytes\":" << a.split_shed_bytes;
    }
    os << "}";
  }
  if (r.faults.active) {
    // Emitted only for chaos runs so fault-free JSON stays byte-identical
    // to builds without the fault framework.
    const MigrationStats& m = r.migration_stats;
    os << ",\"faults\":{";
    os << "\"copy_failures\":" << r.faults.copy_failures << ",";
    os << "\"remap_failures\":" << r.faults.remap_failures << ",";
    os << "\"alloc_failures\":" << r.faults.alloc_failures << ",";
    os << "\"pebs_drops\":" << r.faults.pebs_drops << ",";
    os << "\"tier_events\":" << r.faults.tier_events << ",";
    os << "\"rollbacks\":" << m.rollbacks << ",";
    os << "\"retries\":" << m.retries << ",";
    os << "\"orders_abandoned\":" << m.orders_abandoned << ",";
    os << "\"bytes_abandoned\":" << m.bytes_abandoned << ",";
    os << "\"thrash_aborts\":" << m.thrash_aborts << ",";
    os << "\"tier_drains\":" << m.tier_drains << ",";
    os << "\"drained_bytes\":" << m.drained_bytes << ",";
    os << "\"drain_failed_bytes\":" << m.drain_failed_bytes << ",";
    os << "\"invariant_violations\":" << r.faults.invariant_violations;
    if (!r.faults.first_violation.empty()) {
      os << ",\"first_violation\":\"" << EscapeJson(r.faults.first_violation) << "\"";
    }
    os << "}";
  }
  if (!r.intervals.empty()) {
    os << ",\"intervals\":[";
    for (std::size_t i = 0; i < r.intervals.size(); ++i) {
      const IntervalRecord& iv = r.intervals[i];
      os << (i == 0 ? "" : ",") << "{\"end_s\":" << ToSeconds(iv.end_time_ns)
         << ",\"fast_tier_accesses\":" << iv.fast_tier_accesses
         << ",\"hot_bytes\":" << iv.hot_bytes << ",\"regions\":" << iv.num_regions
         << ",\"recall\":" << iv.quality.recall << ",\"accuracy\":" << iv.quality.accuracy
         << "}";
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

Status WriteObservabilityFiles(const Observability& obs, const std::string& metrics_path,
                               const std::string& trace_path) {
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path, std::ios::trunc);
    if (!out) {
      return UnavailableError("cannot open metrics output: " + metrics_path);
    }
    obs.timeline.WriteJsonl(out, obs.metrics);
    if (!out) {
      return UnavailableError("short write to metrics output: " + metrics_path);
    }
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path, std::ios::trunc);
    if (!out) {
      return UnavailableError("cannot open trace output: " + trace_path);
    }
    obs.trace.WriteChromeTrace(out);
    if (!out) {
      return UnavailableError("short write to trace output: " + trace_path);
    }
  }
  return Status::Ok();
}

std::string Render(const RunResult& result, ReportFormat format) {
  switch (format) {
    case ReportFormat::kHuman:
      return HumanReport(result);
    case ReportFormat::kCsv:
      return CsvRow(result);
    case ReportFormat::kJson:
      return JsonReport(result);
  }
  return "";
}

}  // namespace mtm
