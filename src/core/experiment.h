// Experiment configuration: the paper's testbed constants, divided by a
// single simulation scale factor that shrinks capacities, footprints, the
// profiling interval, and the promotion batch together — preserving every
// ratio the evaluation depends on (§9 setup: 10 s interval, 5% overhead
// target, num_scans 3, N = 200 MB per interval, THP on, 8 threads).
#pragma once

#include <algorithm>
#include <string>

#include "src/common/types.h"
#include "src/common/units.h"
#include "src/mem/placement.h"
#include "src/migration/admission/admission.h"
#include "src/migration/mechanism.h"

namespace mtm {

// Knobs of the MTM system itself (paper defaults; the sensitivity studies
// in §9.3/§9.4 sweep them).
struct MtmKnobs {
  u32 num_scans = 3;
  double overhead_fraction = 0.05;
  double tau_m = -1.0;  // < 0: derive num_scans / 3
  double tau_s = -1.0;  // < 0: derive 2 * num_scans / 3
  double alpha = 0.5;
  bool adaptive_regions = true;   // AMR ablation
  bool adaptive_sampling = true;  // APS ablation
  bool overhead_control = true;   // OC ablation
  bool use_pebs = true;           // PEBS-assist ablation
  // Worker threads for the sharded PTE-scan engine. Purely a host-side
  // speedup: every value yields byte-identical simulation output.
  u32 scan_threads = 1;
  // Helper threads for the move_memory_regions copy stage (the engine of
  // src/migration/async_copy.h). Same discipline as scan_threads: purely a
  // host-side speedup, byte-identical simulation output for every value.
  u32 migrate_threads = 1;
  MechanismKind mechanism = MechanismKind::kMoveMemoryRegions;  // kMmrSync: w/o async
  // Admission controller gating migration orders (src/migration/admission).
  // vanilla admits everything and is byte-identical to the pre-admission
  // behavior; ppt throttles ping-ponging regions; bandwidth sheds the
  // lowest-value promotions once the per-interval budget is spent.
  AdmissionKind admission = AdmissionKind::kVanilla;
  // bandwidth controller's per-interval budget; 0: PromoteBatchBytes().
  Bytes admission_budget_bytes;
  // Initial placement: MTM allocates in the local slow tier first (§9.1);
  // Table 4 shows the choice converges with first-touch as promotion
  // catches up.
  PlacementPolicy placement = PlacementPolicy::kSlowTierFirst;

  double TauM() const { return tau_m >= 0 ? tau_m : static_cast<double>(num_scans) / 3.0; }
  double TauS() const {
    return tau_s >= 0 ? tau_s : 2.0 * static_cast<double>(num_scans) / 3.0;
  }
};

struct ExperimentConfig {
  u64 sim_scale = 512;
  bool two_tier = false;  // §9.6 single-socket DRAM+PM machine
  u32 num_threads = 8;
  // The paper pins the eight application threads to one processor (§9.2
  // places all VoltDB clients on one socket); set true to spread threads
  // round-robin across sockets and exercise the multi-view machinery.
  bool spread_threads = false;
  u32 num_intervals = 150;
  // When nonzero, the run completes after this many application accesses
  // (fixed work, the paper's execution-time methodology); num_intervals
  // then acts as a safety cap.
  u64 target_accesses = 0;
  SimNanos interval_ns;        // 0: Seconds(10) / sim_scale
  Bytes promote_batch_bytes;   // 0: max(200 MiB / sim_scale, one region)
  Bytes scan_window_bytes;     // 0: max(256 MiB / sim_scale, one region)
  u64 seed = 42;
  // Fault-injection spec for chaos runs (see FaultInjector::Parse), e.g.
  // "copy_fail:p=0.01;tier_offline:c=3,at=100ms". Empty: fault-free run with
  // behavior identical to a build without the fault framework.
  std::string fault_spec;
  // When non-empty, the tiering policy is constructed by this registry name
  // (src/migration/policy_registry.h) instead of the solution kind's
  // default — the knob behind --policy=<name>. Solutions without a policy
  // (first-touch, hmc) ignore it.
  std::string policy_override;
  MtmKnobs mtm;

  SimNanos IntervalNs() const {
    return !interval_ns.IsZero() ? interval_ns : Seconds(10) / sim_scale;
  }
  Bytes PromoteBatchBytes() const {
    // Scaled N with a floor of two regions: below that, region-granular
    // promotion cannot make progress (documented substitution in DESIGN.md).
    return !promote_batch_bytes.IsZero() ? promote_batch_bytes
                                         : std::max(MiB(200) / sim_scale, 4 * kHugePageBytes);
  }
  Bytes ScanWindowBytes() const {
    // Linux NUMA balancing arms up to 256 MB per ~1 s scan period, i.e.
    // ~2.5 GB per 10 s profiling interval on the testbed.
    return !scan_window_bytes.IsZero() ? scan_window_bytes
                                       : std::max(MiB(2560) / sim_scale, kHugePageBytes);
  }
};

}  // namespace mtm
