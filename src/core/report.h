// Result reporting: human-readable, CSV, and JSON renderings of RunResult,
// used by the mtmsim CLI and available to embedders.
#pragma once

#include <string>

#include "src/core/driver.h"

namespace mtm {

enum class ReportFormat { kHuman, kCsv, kJson };

// Header line for CSV output (matches CsvRow's columns).
std::string CsvHeader();
std::string CsvRow(const RunResult& result);

std::string HumanReport(const RunResult& result);

// One JSON object per run; per-interval records included when present.
std::string JsonReport(const RunResult& result);

std::string Render(const RunResult& result, ReportFormat format);

}  // namespace mtm
