// Result reporting: human-readable, CSV, and JSON renderings of RunResult,
// used by the mtmsim CLI and available to embedders.
#pragma once

#include <string>

#include "src/common/status.h"
#include "src/core/driver.h"
#include "src/obs/obs.h"

namespace mtm {

enum class ReportFormat { kHuman, kCsv, kJson };

// Header line for CSV output (matches CsvRow's columns).
std::string CsvHeader();
std::string CsvRow(const RunResult& result);

std::string HumanReport(const RunResult& result);

// One JSON object per run; per-interval records included when present.
std::string JsonReport(const RunResult& result);

std::string Render(const RunResult& result, ReportFormat format);

// Exports an observability bundle after a run. Either path may be empty to
// skip that file: `metrics_path` receives the per-interval timeline as JSONL
// (one snapshot object per line), `trace_path` the Chrome trace_event JSON
// loadable in Perfetto / chrome://tracing.
Status WriteObservabilityFiles(const Observability& obs, const std::string& metrics_path,
                               const std::string& trace_path);

}  // namespace mtm
