#include "src/common/rng.h"

namespace mtm {
namespace {

double Zeta(u64 n, double theta) {
  double sum = 0.0;
  for (u64 i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

// For large n, computing zeta exactly is O(n); use the standard incremental
// approximation used by YCSB for n above a threshold.
double ZetaApprox(u64 n, double theta) {
  constexpr u64 kExactLimit = 1'000'000;
  if (n <= kExactLimit) {
    return Zeta(n, theta);
  }
  double zeta = Zeta(kExactLimit, theta);
  // Integral approximation of the tail sum_{i=L+1}^{n} i^-theta.
  double a = 1.0 - theta;
  zeta += (std::pow(static_cast<double>(n), a) - std::pow(static_cast<double>(kExactLimit), a)) / a;
  return zeta;
}

}  // namespace

ZipfSampler::ZipfSampler(u64 n, double theta) : n_(n), theta_(theta) {
  MTM_CHECK_GT(n, 0ull);
  MTM_CHECK_GT(theta, 0.0);
  MTM_CHECK_LT(theta, 1.0);
  zetan_ = ZetaApprox(n, theta);
  zeta2_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2_ / zetan_);
}

u64 ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  u64 v = static_cast<u64>(static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace mtm
