// Bucketed histogram used by the MTM migration policy (§6.1 of the paper):
// "MTM builds a histogram to get the distribution of EMA of all regions. The
// histogram segments the range of EMA values into buckets, and tracks how
// many and what regions fall into each bucket."
//
// BucketedHistogram<T> keys arbitrary items by a double score into a fixed
// number of equal-width buckets over [min, max]; items can be updated
// incrementally as new scores arrive, and enumerated from the hottest bucket
// downward (promotion) or the coldest upward (demotion).
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/common/logging.h"
#include "src/common/types.h"

namespace mtm {

template <typename ItemId>
class BucketedHistogram {
 public:
  BucketedHistogram(double min_value, double max_value, u32 num_buckets)
      : min_(min_value), max_(max_value), buckets_(num_buckets) {
    MTM_CHECK_GT(num_buckets, 0u);
    MTM_CHECK_LT(min_value, max_value);
  }

  u32 num_buckets() const { return static_cast<u32>(buckets_.size()); }

  u32 BucketFor(double value) const {
    if (value <= min_) {
      return 0;
    }
    if (value >= max_) {
      return num_buckets() - 1;
    }
    double frac = (value - min_) / (max_ - min_);
    u32 b = static_cast<u32>(frac * num_buckets());
    return std::min(b, num_buckets() - 1);
  }

  // Inserts or moves `item` to the bucket for `value`. O(1) amortized plus
  // O(bucket) for removal from its previous bucket.
  void Update(ItemId item, double value) {
    auto it = position_.find(item);
    u32 target = BucketFor(value);
    if (it != position_.end()) {
      if (it->second == target) {
        return;
      }
      RemoveFromBucket(item, it->second);
      it->second = target;
    } else {
      position_.emplace(item, target);
    }
    buckets_[target].push_back(item);
  }

  void Remove(ItemId item) {
    auto it = position_.find(item);
    if (it == position_.end()) {
      return;
    }
    RemoveFromBucket(item, it->second);
    position_.erase(it);
  }

  bool Contains(ItemId item) const { return position_.count(item) > 0; }

  std::size_t size() const { return position_.size(); }

  const std::vector<ItemId>& bucket(u32 index) const {
    MTM_CHECK_LT(index, num_buckets());
    return buckets_[index];
  }

  // Items ordered from the hottest bucket down. Within a bucket, insertion
  // order is preserved.
  std::vector<ItemId> HottestFirst() const {
    std::vector<ItemId> out;
    out.reserve(position_.size());
    for (u32 b = num_buckets(); b-- > 0;) {
      for (const ItemId& item : buckets_[b]) {
        out.push_back(item);
      }
    }
    return out;
  }

  std::vector<ItemId> ColdestFirst() const {
    std::vector<ItemId> out;
    out.reserve(position_.size());
    for (u32 b = 0; b < num_buckets(); ++b) {
      for (const ItemId& item : buckets_[b]) {
        out.push_back(item);
      }
    }
    return out;
  }

  void Clear() {
    for (auto& bucket : buckets_) {
      bucket.clear();
    }
    position_.clear();
  }

 private:
  void RemoveFromBucket(const ItemId& item, u32 bucket) {
    auto& vec = buckets_[bucket];
    auto pos = std::find(vec.begin(), vec.end(), item);
    MTM_CHECK(pos != vec.end());
    vec.erase(pos);
  }

  double min_;
  double max_;
  std::vector<std::vector<ItemId>> buckets_;
  std::unordered_map<ItemId, u32> position_;
};

}  // namespace mtm
