#include "src/common/thread_pool.h"

#include "src/common/logging.h"

namespace mtm {

ThreadPool::ThreadPool(u32 num_threads) : num_threads_(num_threads == 0 ? 1 : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (u32 i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

// mtm-analyze: requires(mu_)
void ThreadPool::DrainTasks(std::unique_lock<std::mutex>& lock) {
  while (next_task_ < job_tasks_) {
    const std::size_t index = next_task_++;
    const std::function<void(std::size_t)>* fn = job_;
    lock.unlock();
    (*fn)(index);
    lock.lock();
    if (--remaining_ == 0) {
      done_cv_.notify_all();
    }
  }
}

// mtm-analyze: requires(mu_)
void ThreadPool::DrainAsyncJob(std::unique_lock<std::mutex>& lock, AsyncJob* job) {
  while (job->next < job->num_tasks) {
    const std::size_t index = job->next++;
    lock.unlock();
    job->fn(index);
    lock.lock();
    if (--job->remaining == 0) {
      done_cv_.notify_all();
    }
  }
}

ThreadPool::AsyncJob* ThreadPool::NextAsyncJob() {
  for (auto& [id, job] : async_jobs_) {
    if (job.next < job.num_tasks) {
      return &job;
    }
  }
  return nullptr;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  u64 seen_generation = 0;
  while (true) {
    job_cv_.wait(lock, [&] {
      return stop_ || job_generation_ != seen_generation || NextAsyncJob() != nullptr;
    });
    if (stop_) {
      return;
    }
    if (job_generation_ != seen_generation) {
      // ParallelFor batches take priority: a blocked caller is waiting.
      seen_generation = job_generation_;
      DrainTasks(lock);
    }
    for (AsyncJob* job = NextAsyncJob(); job != nullptr; job = NextAsyncJob()) {
      DrainAsyncJob(lock, job);
    }
  }
}

void ThreadPool::ParallelFor(std::size_t num_tasks,
                             const std::function<void(std::size_t)>& fn) {
  if (num_tasks == 0) {
    return;
  }
  if (workers_.empty() || num_tasks == 1) {
    for (std::size_t i = 0; i < num_tasks; ++i) {
      fn(i);
    }
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  MTM_CHECK(job_ == nullptr) << "ThreadPool::ParallelFor is not reentrant";
  job_ = &fn;
  job_tasks_ = num_tasks;
  next_task_ = 0;
  remaining_ = num_tasks;
  ++job_generation_;
  job_cv_.notify_all();
  DrainTasks(lock);  // the caller is one of the num_threads executors
  done_cv_.wait(lock, [&] { return remaining_ == 0; });
  job_ = nullptr;
  job_tasks_ = 0;
}

ThreadPool::JobId ThreadPool::StartJob(std::size_t num_tasks,
                                       std::function<void(std::size_t)> fn) {
  if (workers_.empty()) {
    // No helper threads exist: the batch runs inline, deterministically, and
    // WaitJob finds it already complete.
    for (std::size_t i = 0; i < num_tasks; ++i) {
      fn(i);
    }
    std::lock_guard<std::mutex> lock(mu_);
    const JobId id = next_job_id_++;
    AsyncJob& job = async_jobs_[id];
    job.num_tasks = num_tasks;
    job.next = num_tasks;
    job.remaining = 0;
    return id;
  }
  JobId id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_job_id_++;
    AsyncJob& job = async_jobs_[id];
    job.fn = std::move(fn);
    job.num_tasks = num_tasks;
    job.next = 0;
    job.remaining = num_tasks;
  }
  job_cv_.notify_all();
  return id;
}

void ThreadPool::WaitJob(JobId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = async_jobs_.find(id);
  MTM_CHECK(it != async_jobs_.end()) << "ThreadPool::WaitJob: unknown or already-waited job";
  AsyncJob* job = &it->second;
  DrainAsyncJob(lock, job);  // the caller helps finish the batch
  done_cv_.wait(lock, [&] { return job->remaining == 0; });
  async_jobs_.erase(it);
}

}  // namespace mtm
