// Core integer and address types shared by every mtm module.
//
// The domain quantities — simulated time, byte counts, virtual addresses,
// page/frame numbers, tier ranks — are strong types (see strong_types.h):
// mixing dimensions or swapping identifier kinds is a compile error, not a
// wrong benchmark number.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "src/common/strong_types.h"

namespace mtm {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

// Simulated time in nanoseconds.
class SimNanos : public strong_internal::Quantity<SimNanos, u64> {
  using Quantity::Quantity;
};

// A byte count (capacities, footprints, batch sizes).
class Bytes : public strong_internal::Quantity<Bytes, u64> {
  using Quantity::Quantity;
};

// A simulated virtual address. The simulator models a 48-bit canonical
// address space, matching the four-level/five-level x86-64 layout the paper
// profiles with PTE scans.
//
// An ordinal, not a quantity: two addresses never add, but an address
// offsets by a raw count or a Bytes length, and the difference of two
// addresses is a raw count of bytes. The shift/mask helpers keep address
// bit arithmetic on the type so call sites never unwrap just to align.
class VirtAddr : public strong_internal::Ordinal<VirtAddr, u64> {
 public:
  using Ordinal::Ordinal;

  constexpr bool IsZero() const { return value() == 0; }

  // Alignment helpers; `alignment` must be a power of two.
  constexpr VirtAddr AlignDown(u64 alignment) const {
    return VirtAddr(value() & ~(alignment - 1));
  }
  constexpr VirtAddr AlignUp(u64 alignment) const {
    return VirtAddr((value() + alignment - 1) & ~(alignment - 1));
  }
  constexpr bool IsAligned(u64 alignment) const { return (value() & (alignment - 1)) == 0; }
  // Offset of this address within its enclosing `alignment`-sized block.
  constexpr u64 OffsetIn(u64 alignment) const { return value() & (alignment - 1); }
  // The radix-tree index of this address at `shift` (e.g. kPageShift).
  constexpr u64 Shifted(u64 shift) const { return value() >> shift; }

  // An address offset by a byte length is an address.
  friend constexpr VirtAddr operator+(VirtAddr a, Bytes len) {
    return VirtAddr(a.value() + len.value());
  }
  friend constexpr VirtAddr operator-(VirtAddr a, Bytes len) {
    return VirtAddr(a.value() - len.value());
  }
  friend constexpr VirtAddr& operator+=(VirtAddr& a, Bytes len) {
    a = a + len;
    return a;
  }
};

// A virtual page number: VirtAddr >> kPageShift.
class Vpn : public strong_internal::Ordinal<Vpn, u64> {
  using Ordinal::Ordinal;
};

// A physical frame number within a memory component. Deliberately a
// different type from Vpn: translating between the two goes through the
// page table, never through an implicit conversion.
class Pfn : public strong_internal::Ordinal<Pfn, u64> {
  using Ordinal::Ordinal;
};

// Socket-relative tier rank: 0 is the fastest tier as seen from a socket
// (the paper's "tier 1"). Distinct from ComponentId — the same component
// has different tier ranks from different sockets (§6.2 multi-view).
class TierId : public strong_internal::Ordinal<TierId, u32> {
  using Ordinal::Ordinal;
};

// Index of a memory component within a Machine (a physical device: the DRAM
// on socket 0, the PM on socket 1, ...). An ordinal, not a quantity — and a
// different kind of id from TierId, because the same component has different
// tier ranks from different sockets (§6.2 multi-view). Dense per-component
// tables index by it through IdMap<ComponentId, T>.
class ComponentId : public strong_internal::Ordinal<ComponentId, u32> {
  using Ordinal::Ordinal;
};

inline constexpr ComponentId kInvalidComponent{~u32{0}};

inline constexpr u64 kPageShift = 12;
inline constexpr u64 kPageSize = u64{1} << kPageShift;  // 4 KiB base page.
inline constexpr u64 kHugePageShift = 21;
inline constexpr u64 kHugePageSize = u64{1} << kHugePageShift;  // 2 MiB huge page.
inline constexpr u64 kPagesPerHugePage = kHugePageSize / kPageSize;  // 512.

// Byte-typed views of the page sizes, for capacity/length arithmetic.
inline constexpr Bytes kPageBytes{kPageSize};
inline constexpr Bytes kHugePageBytes{kHugePageSize};

inline constexpr Vpn VpnOf(VirtAddr addr) { return Vpn(addr.Shifted(kPageShift)); }
inline constexpr VirtAddr AddrOfVpn(Vpn vpn) { return VirtAddr(vpn.value() << kPageShift); }
inline constexpr VirtAddr PageAlignDown(VirtAddr addr) { return addr.AlignDown(kPageSize); }
inline constexpr VirtAddr PageAlignUp(VirtAddr addr) { return addr.AlignUp(kPageSize); }
inline constexpr VirtAddr HugeAlignDown(VirtAddr addr) { return addr.AlignDown(kHugePageSize); }
inline constexpr VirtAddr HugeAlignUp(VirtAddr addr) { return addr.AlignUp(kHugePageSize); }
inline constexpr bool IsHugeAligned(VirtAddr addr) { return addr.IsAligned(kHugePageSize); }
inline constexpr bool IsPageAligned(VirtAddr addr) { return addr.IsAligned(kPageSize); }

// Length-rounding twins of the address alignment helpers.
inline constexpr Bytes PageAlignUp(Bytes len) {
  return Bytes((len.value() + kPageSize - 1) & ~(kPageSize - 1));
}
inline constexpr Bytes HugeAlignUp(Bytes len) {
  return Bytes((len.value() + kHugePageSize - 1) & ~(kHugePageSize - 1));
}
inline constexpr Bytes PageAlignDown(Bytes len) { return Bytes(len.value() & ~(kPageSize - 1)); }
inline constexpr Bytes HugeAlignDown(Bytes len) {
  return Bytes(len.value() & ~(kHugePageSize - 1));
}

// Page-count conversions; lengths in bytes round up, so a partial page
// still occupies a whole frame.
inline constexpr u64 NumPages(Bytes len) { return (len + kPageBytes - Bytes(1)) / kPageBytes; }
inline constexpr u64 NumHugePages(Bytes len) {
  return (len + kHugePageBytes - Bytes(1)) / kHugePageBytes;
}
inline constexpr Bytes PagesToBytes(u64 pages) { return Bytes(pages << kPageShift); }
inline constexpr Bytes HugePagesToBytes(u64 pages) { return Bytes(pages << kHugePageShift); }

}  // namespace mtm

template <>
struct std::hash<mtm::VirtAddr> : mtm::strong_internal::StrongHash<mtm::VirtAddr> {};
template <>
struct std::hash<mtm::Vpn> : mtm::strong_internal::StrongHash<mtm::Vpn> {};
template <>
struct std::hash<mtm::Pfn> : mtm::strong_internal::StrongHash<mtm::Pfn> {};
template <>
struct std::hash<mtm::TierId> : mtm::strong_internal::StrongHash<mtm::TierId> {};
template <>
struct std::hash<mtm::ComponentId> : mtm::strong_internal::StrongHash<mtm::ComponentId> {};
template <>
struct std::hash<mtm::SimNanos> : mtm::strong_internal::StrongHash<mtm::SimNanos> {};
template <>
struct std::hash<mtm::Bytes> : mtm::strong_internal::StrongHash<mtm::Bytes> {};
