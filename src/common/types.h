// Core integer and address types shared by every mtm module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mtm {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

// A simulated virtual address. The simulator models a 48-bit canonical
// address space, matching the four-level/five-level x86-64 layout the paper
// profiles with PTE scans.
using VirtAddr = u64;

// A virtual page number: VirtAddr >> kPageShift.
using Vpn = u64;

// Simulated time in nanoseconds.
using SimNanos = u64;

inline constexpr u64 kPageShift = 12;
inline constexpr u64 kPageSize = u64{1} << kPageShift;  // 4 KiB base page.
inline constexpr u64 kHugePageShift = 21;
inline constexpr u64 kHugePageSize = u64{1} << kHugePageShift;  // 2 MiB huge page.
inline constexpr u64 kPagesPerHugePage = kHugePageSize / kPageSize;  // 512.

inline constexpr Vpn VpnOf(VirtAddr addr) { return addr >> kPageShift; }
inline constexpr VirtAddr AddrOfVpn(Vpn vpn) { return vpn << kPageShift; }
inline constexpr VirtAddr PageAlignDown(VirtAddr addr) { return addr & ~(kPageSize - 1); }
inline constexpr VirtAddr PageAlignUp(VirtAddr addr) {
  return (addr + kPageSize - 1) & ~(kPageSize - 1);
}
inline constexpr VirtAddr HugeAlignDown(VirtAddr addr) { return addr & ~(kHugePageSize - 1); }
inline constexpr VirtAddr HugeAlignUp(VirtAddr addr) {
  return (addr + kHugePageSize - 1) & ~(kHugePageSize - 1);
}
inline constexpr bool IsHugeAligned(VirtAddr addr) { return (addr & (kHugePageSize - 1)) == 0; }
inline constexpr bool IsPageAligned(VirtAddr addr) { return (addr & (kPageSize - 1)) == 0; }

}  // namespace mtm
