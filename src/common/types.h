// Core integer and address types shared by every mtm module.
//
// The domain quantities — simulated time, byte counts, page/frame numbers,
// tier ranks — are strong types (see strong_types.h): mixing dimensions or
// swapping identifier kinds is a compile error, not a wrong benchmark
// number. Raw virtual addresses stay a bare u64 for now (address bit
// arithmetic is pervasive); see ROADMAP.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "src/common/strong_types.h"

namespace mtm {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

// A simulated virtual address. The simulator models a 48-bit canonical
// address space, matching the four-level/five-level x86-64 layout the paper
// profiles with PTE scans.
using VirtAddr = u64;

// A virtual page number: VirtAddr >> kPageShift.
class Vpn : public strong_internal::Ordinal<Vpn, u64> {
  using Ordinal::Ordinal;
};

// A physical frame number within a memory component. Deliberately a
// different type from Vpn: translating between the two goes through the
// page table, never through an implicit conversion.
class Pfn : public strong_internal::Ordinal<Pfn, u64> {
  using Ordinal::Ordinal;
};

// Socket-relative tier rank: 0 is the fastest tier as seen from a socket
// (the paper's "tier 1"). Distinct from ComponentId — the same component
// has different tier ranks from different sockets (§6.2 multi-view).
class TierId : public strong_internal::Ordinal<TierId, u32> {
  using Ordinal::Ordinal;
};

// Simulated time in nanoseconds.
class SimNanos : public strong_internal::Quantity<SimNanos, u64> {
  using Quantity::Quantity;
};

// A byte count (capacities, footprints, batch sizes).
class Bytes : public strong_internal::Quantity<Bytes, u64> {
  using Quantity::Quantity;
};

inline constexpr u64 kPageShift = 12;
inline constexpr u64 kPageSize = u64{1} << kPageShift;  // 4 KiB base page.
inline constexpr u64 kHugePageShift = 21;
inline constexpr u64 kHugePageSize = u64{1} << kHugePageShift;  // 2 MiB huge page.
inline constexpr u64 kPagesPerHugePage = kHugePageSize / kPageSize;  // 512.

// Byte-typed views of the page sizes, for capacity/length arithmetic.
inline constexpr Bytes kPageBytes{kPageSize};
inline constexpr Bytes kHugePageBytes{kHugePageSize};

inline constexpr Vpn VpnOf(VirtAddr addr) { return Vpn(addr >> kPageShift); }
inline constexpr VirtAddr AddrOfVpn(Vpn vpn) { return vpn.value() << kPageShift; }
inline constexpr VirtAddr PageAlignDown(VirtAddr addr) { return addr & ~(kPageSize - 1); }
inline constexpr VirtAddr PageAlignUp(VirtAddr addr) {
  return (addr + kPageSize - 1) & ~(kPageSize - 1);
}
inline constexpr VirtAddr HugeAlignDown(VirtAddr addr) { return addr & ~(kHugePageSize - 1); }
inline constexpr VirtAddr HugeAlignUp(VirtAddr addr) {
  return (addr + kHugePageSize - 1) & ~(kHugePageSize - 1);
}
inline constexpr bool IsHugeAligned(VirtAddr addr) { return (addr & (kHugePageSize - 1)) == 0; }
inline constexpr bool IsPageAligned(VirtAddr addr) { return (addr & (kPageSize - 1)) == 0; }

// Length-rounding twins of the address alignment helpers.
inline constexpr Bytes PageAlignUp(Bytes len) { return Bytes(PageAlignUp(len.value())); }
inline constexpr Bytes HugeAlignUp(Bytes len) { return Bytes(HugeAlignUp(len.value())); }
inline constexpr Bytes PageAlignDown(Bytes len) { return Bytes(PageAlignDown(len.value())); }
inline constexpr Bytes HugeAlignDown(Bytes len) { return Bytes(HugeAlignDown(len.value())); }

// Page-count conversions; lengths in bytes round up, so a partial page
// still occupies a whole frame.
inline constexpr u64 NumPages(Bytes len) { return (len + kPageBytes - Bytes(1)) / kPageBytes; }
inline constexpr u64 NumHugePages(Bytes len) {
  return (len + kHugePageBytes - Bytes(1)) / kHugePageBytes;
}
inline constexpr Bytes PagesToBytes(u64 pages) { return Bytes(pages << kPageShift); }
inline constexpr Bytes HugePagesToBytes(u64 pages) { return Bytes(pages << kHugePageShift); }

}  // namespace mtm

template <>
struct std::hash<mtm::Vpn> : mtm::strong_internal::StrongHash<mtm::Vpn> {};
template <>
struct std::hash<mtm::Pfn> : mtm::strong_internal::StrongHash<mtm::Pfn> {};
template <>
struct std::hash<mtm::TierId> : mtm::strong_internal::StrongHash<mtm::TierId> {};
template <>
struct std::hash<mtm::SimNanos> : mtm::strong_internal::StrongHash<mtm::SimNanos> {};
template <>
struct std::hash<mtm::Bytes> : mtm::strong_internal::StrongHash<mtm::Bytes> {};
