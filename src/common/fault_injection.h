// Deterministic fault injection for chaos runs.
//
// A FaultInjector owns one seeded RNG stream per named injection site, so a
// given (spec, seed) pair replays the exact same fault sequence run-to-run —
// the property every chaos test in tests/failure_injection_test.cc relies
// on. Sites cover the failure classes a production multi-tier system must
// survive (Nomad-style abortable migration, PEBS interrupt storms, transient
// allocation failure), plus a schedule of per-component tier degradation
// events: a bandwidth derate or a full offline at a fixed simulated time,
// modeling a CXL/PMEM device browning out or dropping off the bus mid-run.
//
// Specs are parsed from a compact command-line grammar
// (clauses separated by ';', parameters by ','):
//   copy_fail:p=0.01          migration copy fails, order rolls back
//   remap_fail:p=0.001        unmap/remap step fails after the copy
//   alloc_fail:p=0.02         transient destination-frame allocation failure
//   pebs_drop:p=0.05          PEBS handler drops a sample (buffer storm)
//   tier_derate:c=2,at=2s,f=0.25   component 2 at 25% bandwidth from t=2s
//   tier_offline:c=3,at=5s         component 3 offline (drained) at t=5s
// Times accept ns/us/ms/s suffixes (bare numbers are nanoseconds).
//
// A default-constructed injector is inert: no site ever fires and no RNG is
// consumed, so wiring one unconditionally costs nothing.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace mtm {

enum class FaultSite : u32 {
  kMigrationCopy = 0,  // the region copy fails mid-flight
  kMigrationRemap,     // the unmap/remap step fails after a successful copy
  kAllocation,         // transient destination-frame allocation failure
  kPebsDrop,           // PEBS interrupt handler drops a sample
};
inline constexpr u32 kNumFaultSites = 4;

const char* FaultSiteName(FaultSite site);

// One scheduled per-component degradation event. `component` indexes the
// Machine's component table.
struct TierFaultEvent {
  ComponentId component = kInvalidComponent;
  SimNanos at_ns;
  bool offline = false;           // full device loss: residents must drain
  double bandwidth_derate = 1.0;  // multiplier applied when not offline
};

class FaultInjector {
 public:
  FaultInjector() = default;  // inert
  explicit FaultInjector(u64 seed);

  // Parses `spec` (grammar above). An empty spec yields an inert injector.
  static Result<FaultInjector> Parse(const std::string& spec, u64 seed);

  // True when any site can fire or any tier event is scheduled. Callers use
  // this to skip wiring entirely so fault-free runs stay byte-identical.
  bool armed() const;

  // Draws from the site's dedicated stream. Sites with probability zero
  // return false without consuming randomness, so enabling one site never
  // perturbs another site's sequence.
  bool ShouldFail(FaultSite site);

  double probability(FaultSite site) const { return sites_[Index(site)].probability; }
  void set_probability(FaultSite site, double p) { sites_[Index(site)].probability = p; }

  u64 draws(FaultSite site) const { return sites_[Index(site)].draws; }
  u64 injected(FaultSite site) const { return sites_[Index(site)].injected; }
  u64 total_injected() const;

  // Tier degradation schedule, ordered by at_ns.
  void AddTierEvent(const TierFaultEvent& event);
  const std::vector<TierFaultEvent>& schedule() const { return schedule_; }

  // Returns (and marks fired) every scheduled event with at_ns <= now.
  std::vector<TierFaultEvent> TakeDue(SimNanos now);
  std::size_t events_fired() const { return next_event_; }
  std::size_t events_pending() const { return schedule_.size() - next_event_; }

  std::string DebugString() const;

 private:
  static std::size_t Index(FaultSite site) { return static_cast<std::size_t>(site); }

  struct SiteState {
    double probability = 0.0;
    u64 draws = 0;
    u64 injected = 0;
    Rng rng{0};
  };

  std::array<SiteState, kNumFaultSites> sites_;
  std::vector<TierFaultEvent> schedule_;  // sorted by at_ns
  std::size_t next_event_ = 0;
};

// Parses a duration like "5s", "250ms", "10us", "1500ns", or "1500" (ns).
Result<SimNanos> ParseDuration(const std::string& text);

}  // namespace mtm
