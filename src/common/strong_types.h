// Strong-type machinery for the simulator's core quantities and identifiers.
//
// The simulator's load-bearing numbers — simulated nanoseconds, byte counts,
// page/frame numbers, tier ranks — used to be bare u64/u32 aliases, so a
// swapped argument or a bytes-vs-pages mix-up compiled silently and surfaced
// only as a wrong benchmark number. The CRTP bases here make each such
// quantity a distinct type with only the arithmetic that is meaningful for
// its dimension; everything else is a compile error.
//
// Two families:
//   * Quantity — additive dimensions (time, byte counts). Closed under
//     + and -, scalable by dimensionless integers, and the quotient of two
//     same-dimension quantities is a dimensionless ratio. No cross-dimension
//     arithmetic (SimNanos + Bytes does not compile).
//   * Ordinal — identifiers with an order (page numbers, frame numbers,
//     tier ranks). Comparable, incrementable, offsettable by a count; the
//     difference of two ordinals is a count. No products or sums of ids.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace mtm {
namespace strong_internal {

template <typename Derived, typename Rep>
class Quantity {
 public:
  using rep = Rep;

  constexpr Quantity() = default;
  explicit constexpr Quantity(Rep value) : value_(value) {}

  constexpr Rep value() const { return value_; }
  constexpr bool IsZero() const { return value_ == Rep{0}; }
  explicit constexpr operator bool() const { return value_ != Rep{0}; }

  // Same-dimension additive arithmetic.
  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived(static_cast<Rep>(a.value_ + b.value_));
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived(static_cast<Rep>(a.value_ - b.value_));
  }
  friend constexpr Derived& operator+=(Derived& a, Derived b) {
    a.value_ = static_cast<Rep>(a.value_ + b.value_);
    return a;
  }
  friend constexpr Derived& operator-=(Derived& a, Derived b) {
    a.value_ = static_cast<Rep>(a.value_ - b.value_);
    return a;
  }

  // Scaling by a dimensionless count.
  friend constexpr Derived operator*(Derived a, Rep s) { return Derived(a.value_ * s); }
  friend constexpr Derived operator*(Rep s, Derived a) { return Derived(s * a.value_); }
  friend constexpr Derived operator/(Derived a, Rep s) { return Derived(a.value_ / s); }

  // Quotient of same-dimension quantities is a dimensionless ratio; the
  // remainder keeps the dimension.
  friend constexpr Rep operator/(Derived a, Derived b) { return a.value_ / b.value_; }
  friend constexpr Derived operator%(Derived a, Derived b) {
    return Derived(a.value_ % b.value_);
  }

  friend constexpr bool operator==(Derived a, Derived b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Derived a, Derived b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Derived a, Derived b) { return a.value_ < b.value_; }
  friend constexpr bool operator<=(Derived a, Derived b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>(Derived a, Derived b) { return a.value_ > b.value_; }
  friend constexpr bool operator>=(Derived a, Derived b) { return a.value_ >= b.value_; }

  friend std::ostream& operator<<(std::ostream& os, Derived v) { return os << v.value_; }

 private:
  Rep value_ = Rep{0};
};

template <typename Derived, typename Rep>
class Ordinal {
 public:
  using rep = Rep;

  constexpr Ordinal() = default;
  explicit constexpr Ordinal(Rep value) : value_(value) {}

  constexpr Rep value() const { return value_; }

  // Offset by a count; the difference of two ordinals is a count.
  friend constexpr Derived operator+(Derived a, Rep n) {
    return Derived(static_cast<Rep>(a.value_ + n));
  }
  friend constexpr Derived operator-(Derived a, Rep n) {
    return Derived(static_cast<Rep>(a.value_ - n));
  }
  friend constexpr Rep operator-(Derived a, Derived b) {
    return static_cast<Rep>(a.value_ - b.value_);
  }
  friend constexpr Derived& operator+=(Derived& a, Rep n) {
    a.value_ = static_cast<Rep>(a.value_ + n);
    return a;
  }
  friend constexpr Derived& operator-=(Derived& a, Rep n) {
    a.value_ = static_cast<Rep>(a.value_ - n);
    return a;
  }
  friend constexpr Derived& operator++(Derived& a) {
    ++a.value_;
    return a;
  }
  friend constexpr Derived operator++(Derived& a, int) {
    Derived old = a;
    ++a.value_;
    return old;
  }

  friend constexpr bool operator==(Derived a, Derived b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Derived a, Derived b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Derived a, Derived b) { return a.value_ < b.value_; }
  friend constexpr bool operator<=(Derived a, Derived b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>(Derived a, Derived b) { return a.value_ > b.value_; }
  friend constexpr bool operator>=(Derived a, Derived b) { return a.value_ >= b.value_; }

  friend std::ostream& operator<<(std::ostream& os, Derived v) { return os << v.value_; }

 private:
  Rep value_ = Rep{0};
};

// Hasher usable as the std::hash specialization body for any strong type.
template <typename Strong>
struct StrongHash {
  std::size_t operator()(Strong v) const {
    return std::hash<typename Strong::rep>{}(v.value());
  }
};

}  // namespace strong_internal
}  // namespace mtm
