// Strong-type machinery for the simulator's core quantities and identifiers.
//
// The simulator's load-bearing numbers — simulated nanoseconds, byte counts,
// page/frame numbers, tier ranks — used to be bare u64/u32 aliases, so a
// swapped argument or a bytes-vs-pages mix-up compiled silently and surfaced
// only as a wrong benchmark number. The CRTP bases here make each such
// quantity a distinct type with only the arithmetic that is meaningful for
// its dimension; everything else is a compile error.
//
// Two families:
//   * Quantity — additive dimensions (time, byte counts). Closed under
//     + and -, scalable by dimensionless integers, and the quotient of two
//     same-dimension quantities is a dimensionless ratio. No cross-dimension
//     arithmetic (SimNanos + Bytes does not compile).
//   * Ordinal — identifiers with an order (page numbers, frame numbers,
//     tier ranks). Comparable, incrementable, offsettable by a count; the
//     difference of two ordinals is a count. No products or sums of ids.
#pragma once

#include <cstddef>
#include <functional>
#include <ostream>
#include <vector>

namespace mtm {
namespace strong_internal {

template <typename Derived, typename Rep>
class Quantity {
 public:
  using rep = Rep;

  constexpr Quantity() = default;
  explicit constexpr Quantity(Rep value) : value_(value) {}

  constexpr Rep value() const { return value_; }
  constexpr bool IsZero() const { return value_ == Rep{0}; }
  explicit constexpr operator bool() const { return value_ != Rep{0}; }

  // Same-dimension additive arithmetic.
  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived(static_cast<Rep>(a.value_ + b.value_));
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived(static_cast<Rep>(a.value_ - b.value_));
  }
  friend constexpr Derived& operator+=(Derived& a, Derived b) {
    a.value_ = static_cast<Rep>(a.value_ + b.value_);
    return a;
  }
  friend constexpr Derived& operator-=(Derived& a, Derived b) {
    a.value_ = static_cast<Rep>(a.value_ - b.value_);
    return a;
  }

  // Scaling by a dimensionless count.
  friend constexpr Derived operator*(Derived a, Rep s) { return Derived(a.value_ * s); }
  friend constexpr Derived operator*(Rep s, Derived a) { return Derived(s * a.value_); }
  friend constexpr Derived operator/(Derived a, Rep s) { return Derived(a.value_ / s); }

  // Quotient of same-dimension quantities is a dimensionless ratio; the
  // remainder keeps the dimension.
  friend constexpr Rep operator/(Derived a, Derived b) { return a.value_ / b.value_; }
  friend constexpr Derived operator%(Derived a, Derived b) {
    return Derived(a.value_ % b.value_);
  }

  friend constexpr bool operator==(Derived a, Derived b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Derived a, Derived b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Derived a, Derived b) { return a.value_ < b.value_; }
  friend constexpr bool operator<=(Derived a, Derived b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>(Derived a, Derived b) { return a.value_ > b.value_; }
  friend constexpr bool operator>=(Derived a, Derived b) { return a.value_ >= b.value_; }

  friend std::ostream& operator<<(std::ostream& os, Derived v) { return os << v.value_; }

 private:
  Rep value_ = Rep{0};
};

template <typename Derived, typename Rep>
class Ordinal {
 public:
  using rep = Rep;

  constexpr Ordinal() = default;
  explicit constexpr Ordinal(Rep value) : value_(value) {}

  constexpr Rep value() const { return value_; }

  // Offset by a count; the difference of two ordinals is a count.
  friend constexpr Derived operator+(Derived a, Rep n) {
    return Derived(static_cast<Rep>(a.value_ + n));
  }
  friend constexpr Derived operator-(Derived a, Rep n) {
    return Derived(static_cast<Rep>(a.value_ - n));
  }
  friend constexpr Rep operator-(Derived a, Derived b) {
    return static_cast<Rep>(a.value_ - b.value_);
  }
  friend constexpr Derived& operator+=(Derived& a, Rep n) {
    a.value_ = static_cast<Rep>(a.value_ + n);
    return a;
  }
  friend constexpr Derived& operator-=(Derived& a, Rep n) {
    a.value_ = static_cast<Rep>(a.value_ - n);
    return a;
  }
  friend constexpr Derived& operator++(Derived& a) {
    ++a.value_;
    return a;
  }
  friend constexpr Derived operator++(Derived& a, int) {
    Derived old = a;
    ++a.value_;
    return old;
  }

  friend constexpr bool operator==(Derived a, Derived b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Derived a, Derived b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Derived a, Derived b) { return a.value_ < b.value_; }
  friend constexpr bool operator<=(Derived a, Derived b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>(Derived a, Derived b) { return a.value_ > b.value_; }
  friend constexpr bool operator>=(Derived a, Derived b) { return a.value_ >= b.value_; }

  friend std::ostream& operator<<(std::ostream& os, Derived v) { return os << v.value_; }

 private:
  Rep value_ = Rep{0};
};

// Hasher usable as the std::hash specialization body for any strong type.
template <typename Strong>
struct StrongHash {
  std::size_t operator()(Strong v) const {
    return std::hash<typename Strong::rep>{}(v.value());
  }
};

}  // namespace strong_internal

// A vector whose subscript is a strong ordinal Id instead of a raw integer.
//
// Dense id-indexed tables (per-component capacities, counters, link rows)
// used to be plain std::vector<T> indexed by a raw u32, so indexing one
// table with an id of the wrong kind compiled silently. IdMap keeps the
// contiguous-vector representation but only accepts the Id type at the
// subscript, making cross-id indexing a compile error. Deliberately
// minimal: size/iteration mirror std::vector, and ids() gives the
// half-open id range for indexed loops.
template <typename Id, typename T>
class IdMap {
 public:
  using value_type = T;

  IdMap() = default;
  explicit IdMap(std::size_t count) : items_(count) {}
  IdMap(std::size_t count, const T& init) : items_(count, init) {}
  explicit IdMap(std::vector<T> items) : items_(std::move(items)) {}

  T& operator[](Id id) { return items_[static_cast<std::size_t>(id.value())]; }
  const T& operator[](Id id) const { return items_[static_cast<std::size_t>(id.value())]; }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  void assign(std::size_t count, const T& value) { items_.assign(count, value); }
  void resize(std::size_t count) { items_.resize(count); }
  void push_back(T value) { items_.push_back(std::move(value)); }

  // Value iteration (ids are implicit; use ids() when the loop needs them).
  typename std::vector<T>::iterator begin() { return items_.begin(); }
  typename std::vector<T>::iterator end() { return items_.end(); }
  typename std::vector<T>::const_iterator begin() const { return items_.begin(); }
  typename std::vector<T>::const_iterator end() const { return items_.end(); }

  // One-past-the-last valid id, e.g. `for (Id c{0}; c < m.end_id(); ++c)`.
  Id end_id() const { return Id(static_cast<typename Id::rep>(items_.size())); }

 private:
  std::vector<T> items_;
};

}  // namespace mtm
