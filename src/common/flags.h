// Minimal command-line flag parsing for the tools: --key=value and --key
// boolean forms. No global registry; call sites query by name.
#pragma once

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace mtm {

class FlagSet {
 public:
  FlagSet(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(arg);
        continue;
      }
      arg = arg.substr(2);
      std::size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_.emplace_back(arg, "true");
      } else {
        flags_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
      }
    }
  }

  std::optional<std::string> Get(const std::string& name) const {
    for (const auto& [key, value] : flags_) {
      if (key == name) {
        return value;
      }
    }
    return std::nullopt;
  }

  std::string GetString(const std::string& name, const std::string& fallback) const {
    return Get(name).value_or(fallback);
  }

  u64 GetU64(const std::string& name, u64 fallback) const {
    auto v = Get(name);
    return v ? std::strtoull(v->c_str(), nullptr, 10) : fallback;
  }

  double GetDouble(const std::string& name, double fallback) const {
    auto v = Get(name);
    return v ? std::strtod(v->c_str(), nullptr) : fallback;
  }

  bool GetBool(const std::string& name, bool fallback) const {
    auto v = Get(name);
    if (!v) {
      return fallback;
    }
    return *v == "true" || *v == "1" || *v == "yes";
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::vector<std::pair<std::string, std::string>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace mtm
