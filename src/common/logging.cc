#include "src/common/logging.h"

#include <atomic>

namespace mtm {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

namespace log_internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (fatal_ || level_ >= GetLogLevel()) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (fatal_) {
    std::abort();
  }
}

}  // namespace log_internal
}  // namespace mtm
