// Deterministic pseudo-random number generation and the samplers the
// workload generators need (uniform, zipfian, gaussian).
//
// Every simulation component takes an explicit seed so experiments are
// reproducible run-to-run; nothing reads global entropy.
#pragma once

#include <cmath>

#include "src/common/logging.h"
#include "src/common/types.h"

namespace mtm {

// SplitMix64: used to seed and to hash seeds into streams.
inline u64 SplitMix64(u64& state) {
  u64 z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// xoshiro256**: fast, high-quality generator for the access-stream hot path.
class Rng {
 public:
  explicit Rng(u64 seed) {
    u64 sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  u64 Next() {
    const u64 result = Rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  u64 NextBounded(u64 bound) {
    MTM_CHECK_GT(bound, 0ull);
    // Multiply-shift rejection-free mapping (slightly biased for huge bounds;
    // fine for simulation workloads).
    return static_cast<u64>((static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  // Standard normal via Box-Muller (no cached second value for simplicity).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) {
      u1 = 1e-300;
    }
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

 private:
  static u64 Rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

  u64 state_[4];
};

// Zipfian sampler over [0, n) using the Gray/YCSB rejection-inversion-free
// approximation. theta in (0, 1); YCSB uses 0.99.
class ZipfSampler {
 public:
  ZipfSampler(u64 n, double theta);

  u64 Sample(Rng& rng) const;

  u64 n() const { return n_; }
  double theta() const { return theta_; }

 private:
  u64 n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

// Samples page indices from a (truncated, discretized) Gaussian centered at
// `mean_index` with standard deviation `stddev_indices` over [0, n).
// Used by GUPS ground truth ("hotness follows a Gaussian distribution").
class GaussianIndexSampler {
 public:
  GaussianIndexSampler(u64 n, double mean_index, double stddev_indices)
      : n_(n), mean_(mean_index), stddev_(stddev_indices) {
    MTM_CHECK_GT(n, 0ull);
  }

  u64 Sample(Rng& rng) const {
    // Rejection-sample until inside [0, n).
    for (int attempt = 0; attempt < 64; ++attempt) {
      double x = mean_ + rng.NextGaussian() * stddev_;
      if (x >= 0.0 && x < static_cast<double>(n_)) {
        return static_cast<u64>(x);
      }
    }
    return rng.NextBounded(n_);
  }

 private:
  u64 n_;
  double mean_;
  double stddev_;
};

}  // namespace mtm
