// Byte-size and time-unit helpers so configuration reads like the paper
// ("96GB DRAM", "10 second profiling interval", "90ns latency").
#pragma once

#include "src/common/types.h"

namespace mtm {

inline constexpr u64 KiB(u64 n) { return n << 10; }
inline constexpr u64 MiB(u64 n) { return n << 20; }
inline constexpr u64 GiB(u64 n) { return n << 30; }
inline constexpr u64 TiB(u64 n) { return n << 40; }

inline constexpr SimNanos Nanos(u64 n) { return n; }
inline constexpr SimNanos Micros(u64 n) { return n * 1000ull; }
inline constexpr SimNanos Millis(u64 n) { return n * 1000'000ull; }
inline constexpr SimNanos Seconds(u64 n) { return n * 1000'000'000ull; }

inline constexpr double ToSeconds(SimNanos ns) { return static_cast<double>(ns) / 1e9; }
inline constexpr double ToMillis(SimNanos ns) { return static_cast<double>(ns) / 1e6; }
inline constexpr double ToMicros(SimNanos ns) { return static_cast<double>(ns) / 1e3; }

inline constexpr double ToMiB(u64 bytes) { return static_cast<double>(bytes) / (1 << 20); }
inline constexpr double ToGiB(u64 bytes) { return static_cast<double>(bytes) / (1 << 30); }

}  // namespace mtm
