// Byte-size and time-unit helpers so configuration reads like the paper
// ("96GB DRAM", "10 second profiling interval", "90ns latency").
//
// These are the only blessed constructors for Bytes and SimNanos from
// literals: call sites say GiB(96) or Seconds(10), never a bare number.
#pragma once

#include "src/common/types.h"

namespace mtm {

inline constexpr Bytes KiB(u64 n) { return Bytes(n << 10); }
inline constexpr Bytes MiB(u64 n) { return Bytes(n << 20); }
inline constexpr Bytes GiB(u64 n) { return Bytes(n << 30); }
inline constexpr Bytes TiB(u64 n) { return Bytes(n << 40); }

inline constexpr SimNanos Nanos(u64 n) { return SimNanos(n); }
inline constexpr SimNanos Micros(u64 n) { return SimNanos(n * 1000ull); }
inline constexpr SimNanos Millis(u64 n) { return SimNanos(n * 1000'000ull); }
inline constexpr SimNanos Seconds(u64 n) { return SimNanos(n * 1000'000'000ull); }

inline constexpr double ToSeconds(SimNanos ns) { return static_cast<double>(ns.value()) / 1e9; }
inline constexpr double ToMillis(SimNanos ns) { return static_cast<double>(ns.value()) / 1e6; }
inline constexpr double ToMicros(SimNanos ns) { return static_cast<double>(ns.value()) / 1e3; }

inline constexpr double ToMiB(Bytes b) { return static_cast<double>(b.value()) / (1 << 20); }
inline constexpr double ToGiB(Bytes b) { return static_cast<double>(b.value()) / (1 << 30); }

// Rounding constructors from floating-point intermediate results (cost
// models, bandwidth division). Explicit by design: the truncation point is
// visible at the call site.
inline constexpr SimNanos NanosFromDouble(double ns) {
  return SimNanos(static_cast<u64>(ns < 0 ? 0 : ns));
}
inline constexpr Bytes BytesFromDouble(double b) {
  return Bytes(static_cast<u64>(b < 0 ? 0 : b));
}

}  // namespace mtm
