// A deterministic worker pool for sharded simulation work.
//
// The pool executes a fixed-size batch of independent tasks (shards) and
// blocks the caller until every task has finished. Determinism is by
// construction, not by scheduling: a task may run on any worker in any
// order, so callers must write results only into task-indexed slots and
// merge them afterwards in task order. Used by the sharded PTE-scan path
// (see DESIGN.md §9); any code that follows the same slot-merge discipline
// can reuse it.
//
// With num_threads <= 1 the pool spawns no threads at all and ParallelFor
// degenerates to an inline loop, so single-threaded configurations pay
// nothing and produce bitwise-identical results trivially.
//
// Besides the blocking ParallelFor, the pool offers detached batches for
// work that overlaps with the caller: StartJob dispatches a task batch to
// the workers and returns immediately; WaitJob joins it (the caller helps
// run any still-unclaimed tasks, exactly the ParallelFor discipline). Used
// by the asynchronous migration copy engine (DESIGN.md §14), whose staged
// shard copies run while the simulation loop keeps executing accesses.
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/types.h"

namespace mtm {

class ThreadPool {
 public:
  // Handle for a detached batch started with StartJob.
  using JobId = u64;

  // num_threads counts the caller too: ParallelFor runs tasks on the calling
  // thread plus (num_threads - 1) workers.
  explicit ThreadPool(u32 num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  u32 num_threads() const { return num_threads_; }

  // Runs fn(task_index) for every index in [0, num_tasks) and returns once
  // all calls have completed. fn must not call back into the same pool
  // (not reentrant) and must confine its writes to per-task state.
  void ParallelFor(std::size_t num_tasks, const std::function<void(std::size_t)>& fn);

  // Dispatches fn(task_index) for every index in [0, num_tasks) to the
  // workers and returns immediately. fn and everything it captures must stay
  // valid until WaitJob returns; the same slot-merge discipline as
  // ParallelFor applies. With no workers (num_threads <= 1) the batch runs
  // inline here, so single-threaded configurations stay deterministic and
  // thread-free.
  JobId StartJob(std::size_t num_tasks, std::function<void(std::size_t)> fn);

  // Joins a detached batch: helps run its unclaimed tasks, then blocks until
  // every task has completed. Each JobId must be waited exactly once.
  void WaitJob(JobId id);

 private:
  // A detached batch. Nodes live in async_jobs_ (node-based map, so worker
  // pointers into an entry stay valid while other entries come and go).
  struct AsyncJob {
    std::function<void(std::size_t)> fn;
    std::size_t num_tasks = 0;
    std::size_t next = 0;       // mtm-analyze: guarded_by(mu_)
    std::size_t remaining = 0;  // mtm-analyze: guarded_by(mu_)
  };

  void WorkerLoop();
  // Claims and runs tasks of the current job until none remain. Expects
  // `lock` held on entry; releases it around each task body.
  void DrainTasks(std::unique_lock<std::mutex>& lock);
  // Same for one detached batch; stops once its tasks are all claimed.
  void DrainAsyncJob(std::unique_lock<std::mutex>& lock, AsyncJob* job);
  // First detached batch with unclaimed tasks (lowest id), or null.
  AsyncJob* NextAsyncJob();

  const u32 num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable job_cv_;   // workers: new job or stop
  std::condition_variable done_cv_;  // caller: all tasks complete
  const std::function<void(std::size_t)>* job_ = nullptr;  // mtm-analyze: guarded_by(mu_)
  std::size_t job_tasks_ = 0;                              // mtm-analyze: guarded_by(mu_)
  std::size_t next_task_ = 0;                              // mtm-analyze: guarded_by(mu_)
  std::size_t remaining_ = 0;                              // mtm-analyze: guarded_by(mu_)
  u64 job_generation_ = 0;                                 // mtm-analyze: guarded_by(mu_)
  bool stop_ = false;                                      // mtm-analyze: guarded_by(mu_)
  std::map<JobId, AsyncJob> async_jobs_;                   // mtm-analyze: guarded_by(mu_)
  JobId next_job_id_ = 1;                                  // mtm-analyze: guarded_by(mu_)
};

}  // namespace mtm
