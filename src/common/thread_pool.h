// A deterministic worker pool for sharded simulation work.
//
// The pool executes a fixed-size batch of independent tasks (shards) and
// blocks the caller until every task has finished. Determinism is by
// construction, not by scheduling: a task may run on any worker in any
// order, so callers must write results only into task-indexed slots and
// merge them afterwards in task order. Used by the sharded PTE-scan path
// (see DESIGN.md §9); any code that follows the same slot-merge discipline
// can reuse it.
//
// With num_threads <= 1 the pool spawns no threads at all and ParallelFor
// degenerates to an inline loop, so single-threaded configurations pay
// nothing and produce bitwise-identical results trivially.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/types.h"

namespace mtm {

class ThreadPool {
 public:
  // num_threads counts the caller too: ParallelFor runs tasks on the calling
  // thread plus (num_threads - 1) workers.
  explicit ThreadPool(u32 num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  u32 num_threads() const { return num_threads_; }

  // Runs fn(task_index) for every index in [0, num_tasks) and returns once
  // all calls have completed. fn must not call back into the same pool
  // (not reentrant) and must confine its writes to per-task state.
  void ParallelFor(std::size_t num_tasks, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();
  // Claims and runs tasks of the current job until none remain. Expects
  // `lock` held on entry; releases it around each task body.
  void DrainTasks(std::unique_lock<std::mutex>& lock);

  const u32 num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable job_cv_;   // workers: new job or stop
  std::condition_variable done_cv_;  // caller: all tasks complete
  const std::function<void(std::size_t)>* job_ = nullptr;  // guarded by mu_
  std::size_t job_tasks_ = 0;                              // guarded by mu_
  std::size_t next_task_ = 0;                              // guarded by mu_
  std::size_t remaining_ = 0;                              // guarded by mu_
  u64 job_generation_ = 0;                                 // guarded by mu_
  bool stop_ = false;                                      // guarded by mu_
};

}  // namespace mtm
