// Minimal logging and invariant-checking facility.
//
// CHECK-style macros abort on violated invariants; they are used for
// programmer errors, never for recoverable conditions (those return Status).
#pragma once

#include <memory>
#include <sstream>
#include <string>

namespace mtm {

enum class LogLevel { kDebug, kInfo, kWarning, kError };

// Global minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the message is disabled.
struct Voidify {
  void operator&(LogMessage&) {}
};

// Builds the "expr (lhs vs rhs)" failure text for MTM_CHECK_* comparisons.
// Returning an owned string (null on success) lets the macros evaluate each
// operand exactly once: the captured values are streamed here, not
// re-evaluated at the failure site.
template <typename A, typename B>
std::unique_ptr<std::string> MakeCheckOpString(const A& a, const B& b, const char* expr) {
  std::ostringstream oss;
  oss << "CHECK failed: " << expr << " (" << a << " vs " << b << ") ";
  return std::make_unique<std::string>(oss.str());
}

#define MTM_DEFINE_CHECK_OP_IMPL(name, op)                                             \
  template <typename A, typename B>                                                    \
  std::unique_ptr<std::string> Check##name##Impl(const A& a, const B& b,               \
                                                 const char* expr) {                   \
    if (a op b) {                                                                      \
      return nullptr;                                                                  \
    }                                                                                  \
    return MakeCheckOpString(a, b, expr);                                              \
  }

MTM_DEFINE_CHECK_OP_IMPL(EQ, ==)
MTM_DEFINE_CHECK_OP_IMPL(NE, !=)
MTM_DEFINE_CHECK_OP_IMPL(LT, <)
MTM_DEFINE_CHECK_OP_IMPL(LE, <=)
MTM_DEFINE_CHECK_OP_IMPL(GT, >)
MTM_DEFINE_CHECK_OP_IMPL(GE, >=)

#undef MTM_DEFINE_CHECK_OP_IMPL

}  // namespace log_internal
}  // namespace mtm

#define MTM_LOG(level)                                                                 \
  ::mtm::log_internal::LogMessage(::mtm::LogLevel::k##level, __FILE__, __LINE__)

#define MTM_CHECK(cond)                                                                \
  (cond) ? (void)0                                                                     \
         : ::mtm::log_internal::Voidify() &                                            \
               ::mtm::log_internal::LogMessage(::mtm::LogLevel::kError, __FILE__,      \
                                               __LINE__, /*fatal=*/true)               \
                   << "CHECK failed: " #cond " "

// Comparison checks evaluate each operand exactly once (side-effecting
// arguments are safe). The `while` shape — borrowed from glog — keeps the
// macro usable as a statement with trailing `<< context`; the body aborts,
// so the loop never iterates twice.
#define MTM_CHECK_OP(name, op, a, b)                                                   \
  while (std::unique_ptr<std::string> mtm_check_msg =                                  \
             ::mtm::log_internal::Check##name##Impl((a), (b), #a " " #op " " #b))      \
  ::mtm::log_internal::LogMessage(::mtm::LogLevel::kError, __FILE__, __LINE__,         \
                                  /*fatal=*/true)                                      \
      << *mtm_check_msg

#define MTM_CHECK_EQ(a, b) MTM_CHECK_OP(EQ, ==, a, b)
#define MTM_CHECK_NE(a, b) MTM_CHECK_OP(NE, !=, a, b)
#define MTM_CHECK_LT(a, b) MTM_CHECK_OP(LT, <, a, b)
#define MTM_CHECK_LE(a, b) MTM_CHECK_OP(LE, <=, a, b)
#define MTM_CHECK_GT(a, b) MTM_CHECK_OP(GT, >, a, b)
#define MTM_CHECK_GE(a, b) MTM_CHECK_OP(GE, >=, a, b)
