// Minimal logging and invariant-checking facility.
//
// CHECK-style macros abort on violated invariants; they are used for
// programmer errors, never for recoverable conditions (those return Status).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace mtm {

enum class LogLevel { kDebug, kInfo, kWarning, kError };

// Global minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the message is disabled.
struct Voidify {
  void operator&(LogMessage&) {}
};

}  // namespace log_internal
}  // namespace mtm

#define MTM_LOG(level)                                                                 \
  ::mtm::log_internal::LogMessage(::mtm::LogLevel::k##level, __FILE__, __LINE__)

#define MTM_CHECK(cond)                                                                \
  (cond) ? (void)0                                                                     \
         : ::mtm::log_internal::Voidify() &                                            \
               ::mtm::log_internal::LogMessage(::mtm::LogLevel::kError, __FILE__,      \
                                               __LINE__, /*fatal=*/true)               \
                   << "CHECK failed: " #cond " "

#define MTM_CHECK_EQ(a, b) MTM_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define MTM_CHECK_NE(a, b) MTM_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define MTM_CHECK_LT(a, b) MTM_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define MTM_CHECK_LE(a, b) MTM_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define MTM_CHECK_GT(a, b) MTM_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define MTM_CHECK_GE(a, b) MTM_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
