// Lightweight Status / Result<T> types for recoverable errors.
//
// Modeled after absl::Status but self-contained: os-systems code in this
// repository never throws; fallible operations return Status or Result<T>.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "src/common/logging.h"

namespace mtm {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kUnavailable,        // transient: the operation may succeed if retried
  kDeadlineExceeded,   // the operation ran out of (simulated) time budget
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExistsError(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status ResourceExhaustedError(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status UnimplementedError(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status UnavailableError(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status DeadlineExceededError(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline bool IsUnavailable(const Status& s) { return s.code() == StatusCode::kUnavailable; }
inline bool IsDeadlineExceeded(const Status& s) {
  return s.code() == StatusCode::kDeadlineExceeded;
}

// Result<T> holds either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT: implicit by design
    MTM_CHECK(!status_.ok()) << "Result constructed from OK status without a value";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MTM_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    MTM_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    MTM_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace mtm

#define MTM_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::mtm::Status _status = (expr);          \
    if (!_status.ok()) {                     \
      return _status;                        \
    }                                        \
  } while (false)
