// Small statistics accumulators used by reports and tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/logging.h"
#include "src/common/types.h"

namespace mtm {

// Welford running mean/variance.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  u64 count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  void Reset() { *this = RunningStats(); }

 private:
  u64 n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

// Exponential moving average of a scalar, Equation 2 of the paper:
//   WHI_i = alpha * HI_i + (1 - alpha) * WHI_{i-1}
// The first observation initializes the average directly.
class Ema {
 public:
  explicit Ema(double alpha) : alpha_(alpha) {
    MTM_CHECK_GE(alpha, 0.0);
    MTM_CHECK_LE(alpha, 1.0);
  }

  double Update(double value) {
    if (!initialized_) {
      value_ = value;
      initialized_ = true;
    } else {
      value_ = alpha_ * value + (1.0 - alpha_) * value_;
    }
    return value_;
  }

  double value() const { return value_; }
  bool initialized() const { return initialized_; }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

// Exact percentile over a stored sample set (used in tests/benches only, not
// on hot paths).
inline double Percentile(std::vector<double> values, double p) {
  MTM_CHECK(!values.empty());
  MTM_CHECK_GE(p, 0.0);
  MTM_CHECK_LE(p, 100.0);
  std::sort(values.begin(), values.end());
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  std::size_t low = static_cast<std::size_t>(rank);
  std::size_t high = std::min(low + 1, values.size() - 1);
  double frac = rank - static_cast<double>(low);
  return values[low] * (1.0 - frac) + values[high] * frac;
}

}  // namespace mtm
