#include "src/common/fault_injection.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace mtm {
namespace {

// Splits `text` on `sep`, dropping empty pieces (trailing ';' is legal).
std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      end = text.size();
    }
    if (end > start) {
      out.push_back(text.substr(start, end - start));
    }
    start = end + 1;
  }
  return out;
}

struct Clause {
  std::string name;
  std::vector<std::pair<std::string, std::string>> params;

  const std::string* Find(const std::string& key) const {
    for (const auto& [k, v] : params) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

Result<Clause> ParseClause(const std::string& text) {
  Clause clause;
  std::size_t colon = text.find(':');
  if (colon == std::string::npos || colon == 0) {
    return InvalidArgumentError("fault spec clause missing ':': " + text);
  }
  clause.name = text.substr(0, colon);
  for (const std::string& param : Split(text.substr(colon + 1), ',')) {
    std::size_t eq = param.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == param.size()) {
      return InvalidArgumentError("fault spec parameter not key=value: " + param);
    }
    clause.params.emplace_back(param.substr(0, eq), param.substr(eq + 1));
  }
  return clause;
}

Result<double> ParseProbability(const Clause& clause) {
  const std::string* p = clause.Find("p");
  if (p == nullptr) {
    return InvalidArgumentError("fault site '" + clause.name + "' requires p=<prob>");
  }
  char* end = nullptr;
  double value = std::strtod(p->c_str(), &end);
  if (end == p->c_str() || *end != '\0' || value < 0.0 || value > 1.0) {
    return InvalidArgumentError("bad probability for '" + clause.name + "': " + *p);
  }
  return value;
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kMigrationCopy:
      return "copy_fail";
    case FaultSite::kMigrationRemap:
      return "remap_fail";
    case FaultSite::kAllocation:
      return "alloc_fail";
    case FaultSite::kPebsDrop:
      return "pebs_drop";
  }
  return "?";
}

Result<SimNanos> ParseDuration(const std::string& text) {
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || value < 0.0) {
    return InvalidArgumentError("bad duration: " + text);
  }
  std::string unit(end);
  double scale = 1.0;
  if (unit.empty() || unit == "ns") {
    scale = 1.0;
  } else if (unit == "us") {
    scale = 1e3;
  } else if (unit == "ms") {
    scale = 1e6;
  } else if (unit == "s") {
    scale = 1e9;
  } else {
    return InvalidArgumentError("bad duration unit: " + text);
  }
  return static_cast<SimNanos>(value * scale);
}

FaultInjector::FaultInjector(u64 seed) {
  // Each site gets an independent stream hashed from (seed, site index), so
  // the fault sequence at one site is invariant to activity at the others.
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    u64 sm = seed + 0x9e3779b97f4a7c15ull * (i + 1);
    sites_[i].rng = Rng(SplitMix64(sm));
  }
}

Result<FaultInjector> FaultInjector::Parse(const std::string& spec, u64 seed) {
  FaultInjector injector(seed);
  for (const std::string& text : Split(spec, ';')) {
    Result<Clause> clause = ParseClause(text);
    if (!clause.ok()) {
      return clause.status();
    }
    bool site_clause = false;
    for (u32 i = 0; i < kNumFaultSites; ++i) {
      FaultSite site = static_cast<FaultSite>(i);
      if (clause->name == FaultSiteName(site)) {
        Result<double> p = ParseProbability(*clause);
        if (!p.ok()) {
          return p.status();
        }
        injector.set_probability(site, *p);
        site_clause = true;
        break;
      }
    }
    if (site_clause) {
      continue;
    }
    if (clause->name == "tier_offline" || clause->name == "tier_derate") {
      TierFaultEvent event;
      const std::string* c = clause->Find("c");
      const std::string* at = clause->Find("at");
      if (c == nullptr || at == nullptr) {
        return InvalidArgumentError("'" + clause->name + "' requires c=<component>,at=<time>");
      }
      char* end = nullptr;
      event.component = ComponentId(static_cast<u32>(std::strtoul(c->c_str(), &end, 10)));
      if (end == c->c_str() || *end != '\0') {
        return InvalidArgumentError("bad component id: " + *c);
      }
      Result<SimNanos> when = ParseDuration(*at);
      if (!when.ok()) {
        return when.status();
      }
      event.at_ns = *when;
      if (clause->name == "tier_offline") {
        event.offline = true;
        event.bandwidth_derate = 0.0;
      } else {
        const std::string* f = clause->Find("f");
        if (f == nullptr) {
          return InvalidArgumentError("'tier_derate' requires f=<factor>");
        }
        double factor = std::strtod(f->c_str(), &end);
        if (end == f->c_str() || *end != '\0' || factor <= 0.0 || factor > 1.0) {
          return InvalidArgumentError("bad derate factor: " + *f);
        }
        event.bandwidth_derate = factor;
      }
      injector.AddTierEvent(event);
      continue;
    }
    return InvalidArgumentError("unknown fault spec clause: " + clause->name);
  }
  return injector;
}

bool FaultInjector::armed() const {
  for (const SiteState& site : sites_) {
    if (site.probability > 0.0) {
      return true;
    }
  }
  return !schedule_.empty();
}

bool FaultInjector::ShouldFail(FaultSite site) {
  SiteState& state = sites_[Index(site)];
  if (state.probability <= 0.0) {
    return false;  // inert sites never consume randomness
  }
  ++state.draws;
  if (!state.rng.NextBernoulli(state.probability)) {
    return false;
  }
  ++state.injected;
  return true;
}

u64 FaultInjector::total_injected() const {
  u64 total = 0;
  for (const SiteState& site : sites_) {
    total += site.injected;
  }
  return total;
}

void FaultInjector::AddTierEvent(const TierFaultEvent& event) {
  // Keep the unfired tail sorted; events already fired stay in place.
  schedule_.push_back(event);
  std::stable_sort(schedule_.begin() + static_cast<std::ptrdiff_t>(next_event_),
                   schedule_.end(),
                   [](const TierFaultEvent& a, const TierFaultEvent& b) {
                     return a.at_ns < b.at_ns;
                   });
}

std::vector<TierFaultEvent> FaultInjector::TakeDue(SimNanos now) {
  std::vector<TierFaultEvent> due;
  while (next_event_ < schedule_.size() && schedule_[next_event_].at_ns <= now) {
    due.push_back(schedule_[next_event_]);
    ++next_event_;
  }
  return due;
}

std::string FaultInjector::DebugString() const {
  std::ostringstream os;
  for (u32 i = 0; i < kNumFaultSites; ++i) {
    FaultSite site = static_cast<FaultSite>(i);
    if (probability(site) > 0.0) {
      os << FaultSiteName(site) << ":p=" << probability(site) << " (injected "
         << injected(site) << "/" << draws(site) << ") ";
    }
  }
  for (const TierFaultEvent& e : schedule_) {
    os << (e.offline ? "tier_offline" : "tier_derate") << ":c=" << e.component
       << ",at=" << e.at_ns << "ns ";
  }
  return os.str();
}

}  // namespace mtm
