// Dense per-page access counting over registered address ranges.
//
// Two consumers, carefully separated:
//  * the ground-truth oracle (Figure 1 recall/accuracy, Figure 6 heatmaps,
//    Table 3 hot-page volumes) — it may read exact counts because it is
//    measurement infrastructure, not part of any profiler under test;
//  * the Thermostat profiler model — Thermostat counts accesses to its
//    sampled 4 KiB pages exactly (via mprotect + protection faults), so its
//    model is allowed to read the exact count of *its sampled pages only*,
//    paying the paper-reported higher per-sample cost.
#pragma once

#include <vector>

#include "src/common/types.h"

namespace mtm {

class AccessTracker {
 public:
  struct Range {
    Vpn first_vpn;
    u64 num_pages = 0;
    std::vector<u32> reads;
    std::vector<u32> writes;
  };

  void Register(VirtAddr start, Bytes len) {
    Range r;
    r.first_vpn = VpnOf(start);
    r.num_pages = (PageAlignUp(start + len) - PageAlignDown(start)) / kPageSize;
    r.reads.assign(r.num_pages, 0);
    r.writes.assign(r.num_pages, 0);
    ranges_.push_back(std::move(r));
  }

  void OnAccess(VirtAddr addr, bool is_write) {
    Vpn vpn = VpnOf(addr);
    for (Range& r : ranges_) {
      if (vpn >= r.first_vpn && vpn < r.first_vpn + r.num_pages) {
        u64 index = vpn - r.first_vpn;
        if (is_write) {
          ++r.writes[index];
        } else {
          ++r.reads[index];
        }
        return;
      }
    }
  }

  u64 CountSince(Vpn vpn) const {
    for (const Range& r : ranges_) {
      if (vpn >= r.first_vpn && vpn < r.first_vpn + r.num_pages) {
        u64 i = vpn - r.first_vpn;
        return r.reads[i] + r.writes[i];
      }
    }
    return 0;
  }

  u64 WritesSince(Vpn vpn) const {
    for (const Range& r : ranges_) {
      if (vpn >= r.first_vpn && vpn < r.first_vpn + r.num_pages) {
        return r.writes[vpn - r.first_vpn];
      }
    }
    return 0;
  }

  // Visits (vpn, reads, writes) for every page with a nonzero count.
  template <typename Fn>
  void ForEachTouched(Fn&& fn) const {
    for (const Range& r : ranges_) {
      for (u64 i = 0; i < r.num_pages; ++i) {
        if (r.reads[i] + r.writes[i] > 0) {
          fn(r.first_vpn + i, r.reads[i], r.writes[i]);
        }
      }
    }
  }

  u64 TotalPages() const {
    u64 n = 0;
    for (const Range& r : ranges_) {
      n += r.num_pages;
    }
    return n;
  }

  // Clears the epoch counters (called at each profiling-interval boundary by
  // the measurement layer).
  void ResetEpoch() {
    for (Range& r : ranges_) {
      std::fill(r.reads.begin(), r.reads.end(), 0);
      std::fill(r.writes.begin(), r.writes.end(), 0);
    }
  }

 private:
  std::vector<Range> ranges_;
};

}  // namespace mtm
