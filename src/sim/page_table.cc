#include "src/sim/page_table.h"

namespace mtm {

PageTable::PageTable() : root_(new Node()) { node_count_ = 1; }

PageTable::~PageTable() { FreeNode(root_, kLevels - 1); }

void PageTable::FreeNode(Node* node, int level) {
  if (level > 0) {
    for (u64 i = 0; i < kEntriesPerNode; ++i) {
      if (node->slots[i] != nullptr) {
        FreeNode(static_cast<Node*>(node->slots[i]), level - 1);
      }
    }
  }
  delete node;
}

PageTable::Node* PageTable::EnsureChild(Node* node, u64 index) {
  if (node->slots[index] == nullptr) {
    node->slots[index] = new Node();
    // Scan shards only reach here via WalkTo(create=false), which never
    // takes this branch; Map/Split mutate serially under the simulator loop.
    // mtm-analyze: allow(task-member-write) unreachable from scans (create=false)
    ++node_count_;
  }
  return static_cast<Node*>(node->slots[index]);
}

PageTable::Node* PageTable::WalkTo(VirtAddr addr, int target_level, bool create) {
  Node* node = root_;
  for (int level = kLevels - 1; level > target_level; --level) {
    u64 index = IndexAt(addr, level);
    if (create) {
      node = EnsureChild(node, index);
    } else {
      node = static_cast<Node*>(node->slots[index]);
      if (node == nullptr) {
        return nullptr;
      }
    }
  }
  return node;
}

const PageTable::Node* PageTable::WalkToConst(VirtAddr addr, int target_level) const {
  const Node* node = root_;
  for (int level = kLevels - 1; level > target_level; --level) {
    node = static_cast<const Node*>(node->slots[IndexAt(addr, level)]);
    if (node == nullptr) {
      return nullptr;
    }
  }
  return node;
}

Status PageTable::MapOne(VirtAddr addr, ComponentId component, bool huge) {
  if (huge) {
    Node* node = WalkTo(addr, /*target_level=*/1, /*create=*/true);
    Pte& pte = node->entries[IndexAt(addr, 1)];
    if (pte.present()) {
      return AlreadyExistsError("huge page already mapped");
    }
    if (Node* leaf = static_cast<Node*>(node->slots[IndexAt(addr, 1)]); leaf != nullptr) {
      // A leaf table may linger after all its base pages were unmapped;
      // only live entries block a huge mapping.
      for (const Pte& entry : leaf->entries) {
        if (entry.present()) {
          return AlreadyExistsError("base pages already mapped under huge range");
        }
      }
      delete leaf;
      node->slots[IndexAt(addr, 1)] = nullptr;
      --node_count_;
    }
    pte = Pte{};
    pte.Set(Pte::kPresent);
    pte.Set(Pte::kHuge);
    pte.component = component;
    mapped_bytes_ += kHugePageBytes;
    ++mapped_huge_pages_;
    return OkStatus();
  }
  Node* dir = WalkTo(addr, /*target_level=*/1, /*create=*/true);
  Pte& dir_pte = dir->entries[IndexAt(addr, 1)];
  if (dir_pte.present() && dir_pte.huge()) {
    return AlreadyExistsError("huge page already mapped at this address");
  }
  Node* leaf = EnsureChild(dir, IndexAt(addr, 1));
  Pte& pte = leaf->entries[IndexAt(addr, 0)];
  if (pte.present()) {
    return AlreadyExistsError("page already mapped");
  }
  pte = Pte{};
  pte.Set(Pte::kPresent);
  pte.component = component;
  mapped_bytes_ += kPageBytes;
  ++mapped_base_pages_;
  return OkStatus();
}

Status PageTable::MapRange(VirtAddr start, Bytes len, ComponentId component, bool huge) {
  if (len.IsZero()) {
    return InvalidArgumentError("zero-length map");
  }
  const u64 page = huge ? kHugePageSize : kPageSize;
  if (!start.IsAligned(page) || (len.value() & (page - 1)) != 0) {
    return InvalidArgumentError("unaligned map range");
  }
  for (VirtAddr addr = start; addr < start + len; addr += page) {
    MTM_RETURN_IF_ERROR(MapOne(addr, component, huge));
  }
  ++generation_;
  return OkStatus();
}

Status PageTable::UnmapRange(VirtAddr start, Bytes len) {
  if (!start.IsAligned(kPageSize) || (len.value() & (kPageSize - 1)) != 0) {
    return InvalidArgumentError("unaligned unmap range");
  }
  VirtAddr addr = start;
  const VirtAddr end = start + len;
  while (addr < end) {
    Bytes size;
    Pte* pte = Find(addr, &size);
    if (pte == nullptr) {
      addr += kPageSize;
      continue;
    }
    VirtAddr mapping_start = addr.AlignDown(size.value());
    if (mapping_start < start || mapping_start + size > end) {
      return InvalidArgumentError("unmap range splits a mapping");
    }
    if (size == kHugePageBytes) {
      mapped_bytes_ -= kHugePageBytes;
      --mapped_huge_pages_;
    } else {
      mapped_bytes_ -= kPageBytes;
      --mapped_base_pages_;
    }
    *pte = Pte{};
    addr = mapping_start + size;
  }
  ++generation_;
  return OkStatus();
}

Status PageTable::SplitHuge(VirtAddr addr) {
  Node* dir = WalkTo(addr, 1, /*create=*/false);
  if (dir == nullptr) {
    return NotFoundError("no mapping");
  }
  u64 index = IndexAt(addr, 1);
  Pte& dir_pte = dir->entries[index];
  if (!dir_pte.present() || !dir_pte.huge()) {
    return FailedPreconditionError("not a huge mapping");
  }
  Pte copy = dir_pte;
  dir_pte = Pte{};
  Node* leaf = EnsureChild(dir, index);
  for (u64 i = 0; i < kPagesPerHugePage; ++i) {
    Pte& pte = leaf->entries[i];
    pte = copy;
    pte.Clear(Pte::kHuge);
  }
  --mapped_huge_pages_;
  mapped_base_pages_ += kPagesPerHugePage;
  ++generation_;
  return OkStatus();
}

Pte* PageTable::Find(VirtAddr addr, Bytes* mapping_size) {
  Node* dir = WalkTo(addr, 1, /*create=*/false);
  if (dir == nullptr) {
    return nullptr;
  }
  u64 index = IndexAt(addr, 1);
  Pte& dir_pte = dir->entries[index];
  if (dir_pte.present()) {
    if (mapping_size != nullptr) {
      *mapping_size = kHugePageBytes;
    }
    return &dir_pte;
  }
  Node* leaf = static_cast<Node*>(dir->slots[index]);
  if (leaf == nullptr) {
    return nullptr;
  }
  Pte& pte = leaf->entries[IndexAt(addr, 0)];
  if (!pte.present()) {
    return nullptr;
  }
  if (mapping_size != nullptr) {
    *mapping_size = kPageBytes;
  }
  return &pte;
}

const Pte* PageTable::Find(VirtAddr addr, Bytes* mapping_size) const {
  return const_cast<PageTable*>(this)->Find(addr, mapping_size);
}

PageTable::TouchResult PageTable::Touch(VirtAddr addr, bool is_write, Pte** entry_out) {
  Pte* pte = Find(addr);
  if (pte == nullptr) {
    return TouchResult::kNotPresent;
  }
  if (entry_out != nullptr) {
    *entry_out = pte;
  }
  if (is_write && pte->write_tracked()) {
    return TouchResult::kWriteTrackFault;
  }
  pte->Set(Pte::kAccessed);
  if (is_write) {
    pte->Set(Pte::kDirty);
  }
  return TouchResult::kOk;
}

bool PageTable::ScanAccessed(VirtAddr addr, bool* accessed_out) {
  Pte* pte = Find(addr);
  if (pte == nullptr) {
    return false;
  }
  *accessed_out = pte->accessed();
  pte->Clear(Pte::kAccessed);
  return true;
}

void PageTable::ForEachMapping(VirtAddr start, Bytes len,
                               const std::function<void(VirtAddr, Bytes, Pte&)>& fn) {
  VirtAddr addr = PageAlignDown(start);
  const VirtAddr end = start + len;
  while (addr < end) {
    Bytes size;
    Pte* pte = Find(addr, &size);
    if (pte == nullptr) {
      // Skip to the next base page; large sparse holes could be skipped at
      // directory granularity, but profilers only scan mapped VMAs.
      addr += kPageSize;
      continue;
    }
    VirtAddr mapping_start = addr.AlignDown(size.value());
    if (mapping_start >= start) {
      fn(mapping_start, size, *pte);
    }
    addr = mapping_start + size;
  }
}

void PageTable::ForEachMapping(
    VirtAddr start, Bytes len,
    const std::function<void(VirtAddr, Bytes, const Pte&)>& fn) const {
  const_cast<PageTable*>(this)->ForEachMapping(
      start, len, [&fn](VirtAddr a, Bytes s, Pte& p) { fn(a, s, p); });
}

u64 PageTable::ArmWriteTracking(VirtAddr start, Bytes len) {
  u64 armed = 0;
  ForEachMapping(start, len, [&armed](VirtAddr, Bytes, Pte& pte) {
    pte.Set(Pte::kWriteTracked);
    ++armed;
  });
  BumpGeneration();  // the one TLB flush the arming step pays (§7.2)
  return armed;
}

u64 PageTable::DisarmWriteTracking(VirtAddr start, Bytes len) {
  u64 disarmed = 0;
  ForEachMapping(start, len, [&disarmed](VirtAddr, Bytes, Pte& pte) {
    pte.Clear(Pte::kWriteTracked);
    ++disarmed;
  });
  BumpGeneration();
  return disarmed;
}

}  // namespace mtm
