// Simulated time. All costs in the simulator are charged to one of three
// attribution buckets — application execution, profiling, and migration —
// which is exactly the breakdown the paper reports in Figure 5.
#pragma once

#include "src/common/types.h"

namespace mtm {

class SimClock {
 public:
  SimNanos now() const { return app_ns_ + profiling_ns_ + migration_ns_; }

  SimNanos app_ns() const { return app_ns_; }
  SimNanos profiling_ns() const { return profiling_ns_; }
  SimNanos migration_ns() const { return migration_ns_; }

  void AdvanceApp(SimNanos ns) { app_ns_ += ns; }
  void AdvanceProfiling(SimNanos ns) { profiling_ns_ += ns; }
  void AdvanceMigration(SimNanos ns) { migration_ns_ += ns; }

  void Reset() { app_ns_ = profiling_ns_ = migration_ns_ = SimNanos{}; }

 private:
  SimNanos app_ns_;
  SimNanos profiling_ns_;
  SimNanos migration_ns_;
};

}  // namespace mtm
