#include "src/sim/machine.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/strong_types.h"
#include "src/common/units.h"

namespace mtm {

Machine::Machine(u32 num_sockets, std::vector<ComponentSpec> components,
                 std::vector<std::vector<LinkSpec>> links)
    : num_sockets_(num_sockets), components_(std::move(components)) {
  MTM_CHECK_GT(num_sockets_, 0u);
  MTM_CHECK_EQ(links.size(), num_sockets_);
  for (auto& row : links) {
    MTM_CHECK_EQ(row.size(), components_.size());
    links_.push_back(IdMap<ComponentId, LinkSpec>(std::move(row)));
  }
  base_links_ = links_;
  health_.assign(components_.size(), ComponentHealth{});
  tier_order_.resize(num_sockets_);
  tier_rank_.assign(num_sockets_, IdMap<ComponentId, TierId>(components_.size()));
  for (u32 s = 0; s < num_sockets_; ++s) {
    auto& order = tier_order_[s];
    order.resize(components_.size());
    std::iota(order.begin(), order.end(), ComponentId{0});
    std::stable_sort(order.begin(), order.end(), [&](ComponentId a, ComponentId b) {
      return links_[s][a].latency_ns < links_[s][b].latency_ns;
    });
    for (u32 rank = 0; rank < order.size(); ++rank) {
      tier_rank_[s][order[rank]] = TierId(rank);
    }
  }
}

Machine Machine::OptaneFourTier(u64 scale) {
  MTM_CHECK_GT(scale, 0ull);
  const Bytes dram = GiB(96) / scale;
  const Bytes pm = GiB(756) / scale;
  std::vector<ComponentSpec> comps = {
      {"DRAM0", MemClass::kDram, /*home_socket=*/0, dram},
      {"DRAM1", MemClass::kDram, /*home_socket=*/1, dram},
      {"PM0", MemClass::kPm, /*home_socket=*/0, pm},
      {"PM1", MemClass::kPm, /*home_socket=*/1, pm},
  };
  // Table 1 of the paper. Rows are sockets, columns are components.
  const LinkSpec dram_local{Nanos(90), 95.0};
  const LinkSpec dram_remote{Nanos(145), 35.0};
  const LinkSpec pm_local{Nanos(275), 35.0};
  const LinkSpec pm_remote{Nanos(340), 1.0};
  std::vector<std::vector<LinkSpec>> links = {
      {dram_local, dram_remote, pm_local, pm_remote},
      {dram_remote, dram_local, pm_remote, pm_local},
  };
  return Machine(2, std::move(comps), std::move(links));
}

Machine Machine::TwoTier(u64 scale) {
  MTM_CHECK_GT(scale, 0ull);
  std::vector<ComponentSpec> comps = {
      {"DRAM0", MemClass::kDram, 0, GiB(96) / scale},
      {"PM0", MemClass::kPm, 0, GiB(756) / scale},
  };
  std::vector<std::vector<LinkSpec>> links = {
      {{Nanos(90), 95.0}, {Nanos(275), 35.0}},
  };
  return Machine(1, std::move(comps), std::move(links));
}

bool Machine::IsSlowestTier(ComponentId id) const {
  // The slowest tier is the slowest memory *class* present: on the Optane
  // machine both PM components (tiers 3 and 4 from either view), and the PM
  // of the two-tier machine.
  MemClass slowest = MemClass::kDram;
  for (const auto& c : components_) {
    if (c.mem_class == MemClass::kPm) {
      slowest = MemClass::kPm;
    }
  }
  return component(id).mem_class == slowest;
}

void Machine::SetBandwidthDerate(ComponentId id, double factor) {
  MTM_CHECK_LT(id.value(), components_.size());
  MTM_CHECK(factor > 0.0 && factor <= 1.0) << "derate factor out of (0,1]: " << factor;
  health_[id].bandwidth_derate = factor;
  for (u32 s = 0; s < num_sockets_; ++s) {
    links_[s][id].bandwidth_gbps = base_links_[s][id].bandwidth_gbps * factor;
  }
}

void Machine::SetOffline(ComponentId id, bool offline) {
  MTM_CHECK_LT(id.value(), components_.size());
  health_[id].offline = offline;
}

bool Machine::AnyUnhealthy() const {
  for (const ComponentHealth& h : health_) {
    if (h.offline || h.bandwidth_derate < 1.0) {
      return true;
    }
  }
  return false;
}

std::vector<ComponentId> Machine::HealthyTierOrder(u32 socket) const {
  std::vector<ComponentId> order;
  for (ComponentId c : tier_order_[socket]) {
    if (!health_[c].offline) {
      order.push_back(c);
    }
  }
  return order;
}

Bytes Machine::TotalCapacity() const {
  Bytes total;
  for (const auto& c : components_) {
    total += c.capacity_bytes;
  }
  return total;
}

std::string Machine::DebugString() const {
  std::ostringstream os;
  os << num_sockets_ << " sockets, " << components_.size() << " components\n";
  for (u32 s = 0; s < num_sockets_; ++s) {
    os << "  socket " << s << " tier order:";
    for (u32 rank = 0; rank < tier_order_[s].size(); ++rank) {
      ComponentId c = tier_order_[s][rank];
      const LinkSpec& l = links_[s][c];
      os << " [t" << rank + 1 << " " << components_[c].name << " " << l.latency_ns << "ns "
         << l.bandwidth_gbps << "GB/s " << ToGiB(components_[c].capacity_bytes) << "GiB]";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace mtm
