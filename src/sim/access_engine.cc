#include "src/sim/access_engine.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/sim/tier.h"

namespace mtm {

AccessEngine::AccessEngine(const Machine& machine, PageTable& page_table, SimClock& clock,
                           MemCounters& counters, Config config)
    : machine_(machine),
      page_table_(page_table),
      clock_(clock),
      counters_(counters),
      config_(config),
      tlb_(kTlbSize) {
  MTM_CHECK_GT(config_.num_threads, 0u);
}

SimNanos AccessEngine::AccessCost(u32 socket, ComponentId component) const {
  const LinkSpec& link = machine_.link(socket, component);
  // Latency is overlapped across the application's threads; bandwidth at the
  // component is a hard floor that concurrency cannot hide.
  double latency_share =
      static_cast<double>(link.latency_ns.value()) / static_cast<double>(config_.num_threads);
  double bandwidth_floor =
      static_cast<double>(config_.access_bytes.value()) / link.BytesPerNano();
  double cpu = static_cast<double>(config_.cpu_ns_per_access.value()) /
               static_cast<double>(config_.num_threads);
  return NanosFromDouble(std::max(latency_share, bandwidth_floor) + cpu);
}

SimNanos AccessEngine::PageFillCost(u32 socket, ComponentId component) const {
  const LinkSpec& link = machine_.link(socket, component);
  double transfer = static_cast<double>(kPageSize) / link.BytesPerNano();
  return NanosFromDouble((static_cast<double>(link.latency_ns.value()) + transfer) /
                         static_cast<double>(config_.num_threads));
}

Pte* AccessEngine::Translate(VirtAddr addr) {
  Vpn vpn = VpnOf(addr);
  TlbEntry& slot = tlb_[vpn.value() & (kTlbSize - 1)];
  if (slot.vpn == vpn && slot.generation == page_table_.generation()) {
    return slot.pte;
  }
  Pte* pte = page_table_.Find(addr);
  if (pte != nullptr) {
    slot = TlbEntry{vpn, pte, page_table_.generation()};
  }
  return pte;
}

ComponentId AccessEngine::Apply(VirtAddr addr, bool is_write, u32 socket) {
  ++total_accesses_;
  Pte* pte = Translate(addr);
  if (pte == nullptr) {
    MTM_CHECK(fault_handler_ != nullptr) << "page fault with no handler, addr=" << addr;
    ++page_faults_;
    clock_.AdvanceApp(config_.page_fault_ns / config_.num_threads);
    ComponentId placed = fault_handler_->HandlePageFault(addr, socket, is_write);
    MTM_CHECK_NE(placed, kInvalidComponent) << "unserviceable page fault";
    pte = Translate(addr);
    MTM_CHECK(pte != nullptr) << "fault handler did not map the page";
  }

  // Hint fault (NUMA balancing): record the accessing socket, then proceed.
  if (pte->flags & Pte::kHintArmed) {
    pte->Clear(Pte::kHintArmed);
    page_table_.BumpGeneration();
    hint_fault_buffer_.push_back(HintFaultEvent{addr, socket, is_write});
    ++hint_faults_;
    clock_.AdvanceApp(config_.hint_fault_ns / config_.num_threads);
  }

  // Write-tracking fault (move_memory_regions dirtiness tracking). The
  // fault is serviced before the write's effect lands: the observer joins
  // any in-flight helper-thread copy of the page while the simulated
  // contents are still the ones it staged, which is what makes the copy
  // engine's fallback deterministic and race-free (DESIGN.md §14).
  if (is_write && pte->write_tracked()) {
    pte->Clear(Pte::kWriteTracked);
    page_table_.BumpGeneration();
    ++write_track_faults_;
    clock_.AdvanceApp(config_.write_track_fault_ns / config_.num_threads);
    if (write_observer_ != nullptr) {
      write_observer_->OnWriteTrackFault(addr, socket);
    }
  }

  // MMU: accessed/dirty bits; writes mutate the page's payload word (the
  // simulated contents the migration copy engine checksums).
  pte->Set(Pte::kAccessed);
  if (is_write) {
    pte->Set(Pte::kDirty);
    pte->payload = MixPayload(pte->payload, addr);
  }

  ComponentId component = pte->component;
  counters_.CountApp(component, is_write);
  if (tracker_ != nullptr) {
    tracker_->OnAccess(addr, is_write);
  }

  // Memory-mode caching intercepts the cost model: hits are served at local
  // DRAM speed, misses pay the PM access plus the line fill, and dirty
  // evictions pay the writeback (write amplification).
  if (!hmc_caches_.empty() && machine_.component(component).mem_class == MemClass::kPm) {
    u32 home = machine_.component(component).home_socket;
    HmcCache* cache = hmc_caches_[home];
    MTM_CHECK(cache != nullptr);
    HmcCache::AccessOutcome outcome = cache->Access(VpnOf(addr), is_write);
    ComponentId local_dram = machine_.TierOrder(home)[0];
    if (outcome.hit) {
      clock_.AdvanceApp(AccessCost(socket, local_dram) +
                        config_.hmc_hit_overhead_ns / config_.num_threads);
    } else {
      // Miss: the demand access goes to PM, and the 4 KiB line fill consumes
      // PM bandwidth (modeled as a handful of line transfers of overhead).
      SimNanos miss_cost = AccessCost(socket, component);
      SimNanos fill_cost = PageFillCost(home, component);
      SimNanos writeback_cost =
          outcome.dirty_writeback ? PageFillCost(home, component) : SimNanos{};
      clock_.AdvanceApp(miss_cost + fill_cost + writeback_cost);
      counters_.CountMigrationBytes(component, kPageBytes);
    }
    if (pebs_ != nullptr) {
      pebs_->Observe(addr, component, socket, is_write);
    }
    return component;
  }

  clock_.AdvanceApp(AccessCost(socket, component));
  if (pebs_ != nullptr) {
    pebs_->Observe(addr, component, socket, is_write);
  }
  return component;
}

std::vector<HintFaultEvent> AccessEngine::DrainHintFaults() {
  std::vector<HintFaultEvent> out;
  out.swap(hint_fault_buffer_);
  return out;
}

}  // namespace mtm
