// Memory components, tiers, and socket-relative views.
//
// A *component* is a physical memory device (e.g. the DRAM attached to
// socket 0, or the Optane PM attached to socket 1). A *tier* is a
// socket-relative concept: from a given socket, components are ordered by
// access latency — tier 1 is the fastest. This matches the paper's Table 1
// and its "multi-view of tiered memory" discussion (§6.2): the same DRAM is
// tier 1 for threads on its home socket and tier 2 for remote threads.
#pragma once

#include <string>

#include "src/common/types.h"

namespace mtm {

// ComponentId — the index of a memory component within a Machine — lives in
// src/common/types.h with the other strong ids, so common-layer code (e.g.
// the fault injector's tier-event schedule) can name it without depending
// on sim/.

// Technology class of a component; determines which PEBS event stream its
// accesses feed (MEM_LOAD_RETIRED.{LOCAL,REMOTE}_PMM in the paper).
enum class MemClass : u8 {
  kDram,
  kPm,  // persistent memory (Optane in the paper) / CXL-class slow memory
};

inline const char* MemClassName(MemClass mc) {
  return mc == MemClass::kDram ? "DRAM" : "PM";
}

// A physical memory device.
struct ComponentSpec {
  std::string name;
  MemClass mem_class = MemClass::kDram;
  u32 home_socket = 0;
  Bytes capacity_bytes;
};

// Performance of accessing a component from a socket.
struct LinkSpec {
  SimNanos latency_ns;
  double bandwidth_gbps = 0.0;  // GB/s (1e9 bytes per second)

  double BytesPerNano() const { return bandwidth_gbps; }  // GB/s == bytes/ns
};

}  // namespace mtm
