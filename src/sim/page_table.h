// Simulated five-level radix page table.
//
// This reproduces the part of the x86-64/Linux MMU that the paper's
// profiling mechanisms depend on:
//   * per-PTE accessed bit, set by the MMU on every access and cleared by
//     PTE-scan profilers (read-and-clear, no TLB flush — §5);
//   * per-PTE dirty bit, set on writes (used by move_memory_regions()'s
//     dirtiness tracking, §7.2);
//   * a reserved software bit (the paper uses PTE bit 11) that
//     move_memory_regions() uses to arm write-protect faults;
//   * 2 MiB huge-page leaf entries at the last-level page-directory level,
//     so a huge page has exactly one accessed/dirty bit (§5.4);
//   * the component (memory node) a page resides on, changed by migration.
//
// The radix has five levels of 9 bits each over a 57-bit virtual address
// space, matching the "five-level page table" sizing discussion in §5.
#pragma once

#include <array>
#include <functional>

#include "src/common/status.h"
#include "src/common/types.h"

namespace mtm {

// Page table entry. Plain aggregate so scans stay cheap.
struct Pte {
  enum Flags : u16 {
    kPresent = 1u << 0,
    kAccessed = 1u << 1,
    kDirty = 1u << 2,
    kHuge = 1u << 3,
    // Software write-protect armed by move_memory_regions() dirty tracking:
    // the next write faults instead of silently setting the dirty bit.
    kWriteTracked = 1u << 4,
    // The reserved bit (bit 11 in the paper) available to software.
    kReserved = 1u << 5,
    // NUMA-balancing hint-fault arming: the next access faults, letting the
    // kernel record which socket touched the page, then clears the flag.
    kHintArmed = 1u << 6,
  };

  u16 flags = 0;
  ComponentId component = kInvalidComponent;
  // Deterministic stand-in for the page's contents: every simulated write
  // folds the address into this word (see MixPayload). The migration copy
  // engine snapshots it when staging an asynchronous copy and checksums the
  // expanded contents, so "no lost update" is a testable property rather
  // than a modeling assumption. Placement and cost never read it.
  u64 payload = 0;

  bool present() const { return flags & kPresent; }
  bool accessed() const { return flags & kAccessed; }
  bool dirty() const { return flags & kDirty; }
  bool huge() const { return flags & kHuge; }
  bool write_tracked() const { return flags & kWriteTracked; }

  void Set(Flags f) { flags |= f; }
  void Clear(Flags f) { flags = static_cast<u16>(flags & ~f); }
};

// One simulated write's effect on a page payload: a splitmix64-style mix of
// the old payload and the written address. Non-commutative, so reordered or
// lost writes produce a different payload — exactly what the migration
// copy-checksum tests need to detect.
inline constexpr u64 MixPayload(u64 payload, VirtAddr addr) {
  u64 x = payload ^ (addr.value() + 0x9e3779b97f4a7c15ull);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

class PageTable {
 public:
  static constexpr int kLevels = 5;
  static constexpr int kBitsPerLevel = 9;
  static constexpr u64 kEntriesPerNode = 1ull << kBitsPerLevel;
  static constexpr u64 kVaBits = kPageShift + kLevels * kBitsPerLevel;  // 57

  PageTable();
  ~PageTable();

  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  // Maps [start, start+len) onto `component`. With huge=true, start and len
  // must be 2 MiB aligned and each 2 MiB chunk becomes one huge leaf.
  // Fails with kAlreadyExists if any page in the range is already mapped.
  Status MapRange(VirtAddr start, Bytes len, ComponentId component, bool huge);

  // Unmaps every mapping that starts within [start, start+len). Huge
  // mappings must be covered entirely.
  Status UnmapRange(VirtAddr start, Bytes len);

  // Converts the 2 MiB huge mapping covering addr into 512 base-page PTEs
  // (all inheriting the huge page's component and A/D bits).
  Status SplitHuge(VirtAddr addr);

  // Returns the leaf entry covering addr, or nullptr if not mapped.
  // mapping_size (if non-null) receives 4 KiB or 2 MiB.
  Pte* Find(VirtAddr addr, Bytes* mapping_size = nullptr);
  const Pte* Find(VirtAddr addr, Bytes* mapping_size = nullptr) const;

  // MMU behavior for one memory access: sets the accessed bit, and the
  // dirty bit on writes.
  enum class TouchResult {
    kOk,
    kNotPresent,      // page fault: no mapping
    kWriteTrackFault,  // write hit a write-tracked page (software fault)
  };
  TouchResult Touch(VirtAddr addr, bool is_write, Pte** entry_out = nullptr);

  // PTE-scan primitive (§5): reads the accessed bit of the mapping covering
  // addr and clears it. Returns false if unmapped; accessed_out receives the
  // bit value. No TLB flush is modeled, matching the paper.
  bool ScanAccessed(VirtAddr addr, bool* accessed_out);

  // Write-tracking arm for move_memory_regions (§7.2): sets (clears) the
  // reserved write-protect bit on every leaf mapping of [start, start+len)
  // and bumps the generation once — the single TLB flush the paper charges.
  // Returns the number of mappings touched. The next write to an armed page
  // reports TouchResult::kWriteTrackFault from Touch() before the write's
  // payload lands, which is what lets the copy engine join its in-flight
  // helper-thread copy before the simulated contents change.
  u64 ArmWriteTracking(VirtAddr start, Bytes len);
  u64 DisarmWriteTracking(VirtAddr start, Bytes len);

  // Visits every leaf mapping whose start lies in [start, start+len), in
  // address order. fn(addr, mapping_size, pte).
  void ForEachMapping(VirtAddr start, Bytes len,
                      const std::function<void(VirtAddr, Bytes, Pte&)>& fn);
  void ForEachMapping(VirtAddr start, Bytes len,
                      const std::function<void(VirtAddr, Bytes, const Pte&)>& fn) const;

  Bytes mapped_bytes() const { return mapped_bytes_; }
  u64 mapped_base_pages() const { return mapped_base_pages_; }
  u64 mapped_huge_pages() const { return mapped_huge_pages_; }

  // Number of 4 KiB pages occupied by the table itself (the "page table
  // pages" migrated by move_memory_regions in Figure 2/3).
  u64 page_table_pages() const { return node_count_; }

  // Bumped whenever any translation changes (map/unmap/split/remap). Caches
  // such as the access engine's software TLB key off this.
  u64 generation() const { return generation_; }
  void BumpGeneration() { ++generation_; }

 private:
  struct Node {
    std::array<void*, kEntriesPerNode> slots;  // child Node* or nullptr
    std::array<Pte, kEntriesPerNode> entries;  // leaf PTEs at levels 0/1
    Node() { slots.fill(nullptr); }
  };

  static u64 IndexAt(VirtAddr addr, int level) {
    return addr.Shifted(kPageShift + static_cast<u64>(level) * kBitsPerLevel) &
           (kEntriesPerNode - 1);
  }

  Node* EnsureChild(Node* node, u64 index);
  void FreeNode(Node* node, int level);

  // Walks to the node at `target_level` for addr, optionally creating
  // intermediate nodes.
  Node* WalkTo(VirtAddr addr, int target_level, bool create);
  const Node* WalkToConst(VirtAddr addr, int target_level) const;

  Status MapOne(VirtAddr addr, ComponentId component, bool huge);

  Node* root_;
  Bytes mapped_bytes_;
  u64 mapped_base_pages_ = 0;
  u64 mapped_huge_pages_ = 0;
  u64 node_count_ = 0;
  u64 generation_ = 0;
};

}  // namespace mtm
