// The access engine plays the role of the CPU + MMU: it applies the
// application's memory accesses to the simulated machine.
//
// For each access it:
//   1. translates through the page table (with a small software TLB for
//      simulation speed — invalidated by page-table generation bumps);
//   2. on a missing translation, invokes the fault handler (first-touch
//      allocation, THP fault, etc.);
//   3. sets the PTE accessed/dirty bits — the raw signal every PTE-scan
//      profiler in the paper consumes;
//   4. services hint faults (NUMA-balancing-style) and write-tracking
//      faults (move_memory_regions dirtiness tracking);
//   5. charges simulated time from the tier's latency/bandwidth (Table 1),
//      divided by the thread concurrency but floored by the component's
//      bandwidth;
//   6. feeds the PEBS engine and the per-tier counters.
#pragma once

#include <vector>

#include "src/common/types.h"
#include "src/common/units.h"
#include "src/sim/access_tracker.h"
#include "src/sim/clock.h"
#include "src/sim/counters.h"
#include "src/sim/hmc_cache.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"
#include "src/sim/pebs.h"

namespace mtm {

// Services page faults (missing translation). Implementations decide
// placement (first-touch NUMA, MTM's slow-tier-first, memory mode) and must
// map the page (base or huge) into the page table before returning.
class FaultHandler {
 public:
  virtual ~FaultHandler() = default;
  // Returns the component the faulting page was placed on, or
  // kInvalidComponent if the fault could not be serviced (treated fatal).
  virtual ComponentId HandlePageFault(VirtAddr addr, u32 socket, bool is_write) = 0;
};

// Notified when a write hits a write-tracked page (the reserved-PTE-bit
// write-protect fault used by move_memory_regions, §7.2/§8).
class WriteTrackObserver {
 public:
  virtual ~WriteTrackObserver() = default;
  virtual void OnWriteTrackFault(VirtAddr addr, u32 socket) = 0;
};

// A NUMA hint fault observed by the kernel: records which socket touched
// which address. MTM samples these 1-in-12 PTE scans to resolve the
// multi-view migration destination (§6.2); tiered-AutoNUMA profiles with
// them exclusively.
struct HintFaultEvent {
  VirtAddr addr;
  u32 socket = 0;
  bool is_write = false;
};

class AccessEngine {
 public:
  struct Config {
    u32 num_threads = 8;          // concurrency divisor for latency
    SimNanos cpu_ns_per_access = Nanos(8);  // non-memory work per access, per thread
    SimNanos page_fault_ns = Nanos(1500);   // minor fault service time
    SimNanos hint_fault_ns = Nanos(1200);   // NUMA hint fault service time
    SimNanos write_track_fault_ns = Nanos(40000);  // §9.5: ~40us per tracked fault
    SimNanos hmc_hit_overhead_ns = Nanos(40);      // Memory-Mode tag/directory check
    Bytes access_bytes = Bytes(64);  // one cache line per access
  };

  AccessEngine(const Machine& machine, PageTable& page_table, SimClock& clock,
               MemCounters& counters, Config config);

  void set_fault_handler(FaultHandler* handler) { fault_handler_ = handler; }
  void set_write_track_observer(WriteTrackObserver* observer) { write_observer_ = observer; }
  void set_pebs(PebsEngine* pebs) { pebs_ = pebs; }
  void set_tracker(AccessTracker* tracker) { tracker_ = tracker; }

  // Enables Memory-Mode caching: `caches[s]` fronts the PM of socket s.
  // In this mode the page's resident component is PM but hits are charged
  // at local-DRAM cost.
  void set_hmc_caches(std::vector<HmcCache*> caches) { hmc_caches_ = std::move(caches); }

  const Config& config() const { return config_; }

  // Applies one application access issued by a thread running on `socket`.
  // Advances the application clock. Returns the component that serviced the
  // access (after any fault handling).
  ComponentId Apply(VirtAddr addr, bool is_write, u32 socket);

  // Drains hint-fault events recorded since the last call.
  std::vector<HintFaultEvent> DrainHintFaults();

  u64 total_accesses() const { return total_accesses_; }
  u64 page_faults() const { return page_faults_; }
  u64 hint_faults() const { return hint_faults_; }
  u64 write_track_faults() const { return write_track_faults_; }

  // Cost (ns of application time) of one access to `component` from
  // `socket`, given the configured concurrency. Exposed for cost-model
  // tests and for the HMC fill model.
  SimNanos AccessCost(u32 socket, ComponentId component) const;

  // Cost of transferring one 4 KiB cache line between DRAM cache and PM in
  // Memory Mode (latency + full-page transfer, amortized over threads).
  SimNanos PageFillCost(u32 socket, ComponentId component) const;

 private:
  struct TlbEntry {
    Vpn vpn = Vpn(~u64{0});
    Pte* pte = nullptr;
    u64 generation = ~u64{0};
  };
  static constexpr u64 kTlbSize = 256;  // direct-mapped software TLB

  Pte* Translate(VirtAddr addr);

  const Machine& machine_;
  PageTable& page_table_;
  SimClock& clock_;
  MemCounters& counters_;
  Config config_;

  FaultHandler* fault_handler_ = nullptr;
  WriteTrackObserver* write_observer_ = nullptr;
  PebsEngine* pebs_ = nullptr;
  AccessTracker* tracker_ = nullptr;
  std::vector<HmcCache*> hmc_caches_;

  std::vector<TlbEntry> tlb_;
  std::vector<HintFaultEvent> hint_fault_buffer_;

  u64 total_accesses_ = 0;
  u64 page_faults_ = 0;
  u64 hint_faults_ = 0;
  u64 write_track_faults_ = 0;
};

}  // namespace mtm
