// Hardware-managed memory caching (Optane "Memory Mode") model.
//
// In Memory Mode the DRAM of each socket becomes a direct-mapped,
// 4 KiB-line, hardware-managed cache in front of that socket's PM; software
// sees only the PM capacity. The paper uses this as the HMC baseline and
// attributes its losses to (a) data duplication (DRAM capacity is invisible)
// and (b) write amplification on misses that evict dirty lines (§2.1, §9.1).
#pragma once

#include <vector>

#include "src/common/types.h"
#include "src/sim/machine.h"

namespace mtm {

class HmcCache {
 public:
  // One cache per socket: `dram_capacity` bytes of 4 KiB lines fronting the
  // socket's PM component.
  HmcCache(const Machine& machine, u32 socket, Bytes dram_capacity)
      : machine_(machine), socket_(socket) {
    num_sets_ = dram_capacity / kPageBytes;
    tags_.assign(num_sets_, kInvalidTag);
    dirty_.assign(num_sets_, 0);
  }

  struct AccessOutcome {
    bool hit = false;
    bool dirty_writeback = false;  // miss evicted a dirty line (write amplification)
  };

  AccessOutcome Access(Vpn vpn, bool is_write) {
    AccessOutcome outcome;
    u64 set = vpn.value() % num_sets_;
    if (tags_[set] == vpn.value()) {
      outcome.hit = true;
      ++hits_;
    } else {
      ++misses_;
      if (tags_[set] != kInvalidTag && dirty_[set]) {
        outcome.dirty_writeback = true;
        ++dirty_writebacks_;
      }
      tags_[set] = vpn.value();
      dirty_[set] = 0;
    }
    if (is_write) {
      dirty_[set] = 1;
    }
    return outcome;
  }

  u64 hits() const { return hits_; }
  u64 misses() const { return misses_; }
  u64 dirty_writebacks() const { return dirty_writebacks_; }
  double hit_rate() const {
    u64 total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

 private:
  static constexpr u64 kInvalidTag = ~u64{0};

  const Machine& machine_;
  u32 socket_;
  u64 num_sets_;
  std::vector<u64> tags_;
  std::vector<u8> dirty_;
  u64 hits_ = 0;
  u64 misses_ = 0;
  u64 dirty_writebacks_ = 0;
};

}  // namespace mtm
