// Per-component access counters, modeled on Intel Processor Counter Monitor
// as used for Table 6 of the paper: application accesses are counted
// separately from migration traffic so migrations don't pollute the
// application's tier-access statistics.
#pragma once

#include "src/common/strong_types.h"
#include "src/common/types.h"

namespace mtm {

class MemCounters {
 public:
  explicit MemCounters(u32 num_components)
      : app_reads_(num_components, 0),
        app_writes_(num_components, 0),
        migration_bytes_(num_components) {}

  void CountApp(ComponentId c, bool is_write) {
    if (is_write) {
      ++app_writes_[c];
    } else {
      ++app_reads_[c];
    }
  }

  void CountMigrationBytes(ComponentId c, Bytes bytes) { migration_bytes_[c] += bytes; }

  u64 app_reads(ComponentId c) const { return app_reads_[c]; }
  u64 app_writes(ComponentId c) const { return app_writes_[c]; }
  u64 app_accesses(ComponentId c) const { return app_reads_[c] + app_writes_[c]; }
  Bytes migration_bytes(ComponentId c) const { return migration_bytes_[c]; }

  u64 total_app_accesses() const {
    u64 total = 0;
    for (ComponentId c{0}; c < app_reads_.end_id(); ++c) {
      total += app_reads_[c] + app_writes_[c];
    }
    return total;
  }

  void Reset() {
    std::fill(app_reads_.begin(), app_reads_.end(), 0);
    std::fill(app_writes_.begin(), app_writes_.end(), 0);
    std::fill(migration_bytes_.begin(), migration_bytes_.end(), Bytes{});
  }

 private:
  IdMap<ComponentId, u64> app_reads_;
  IdMap<ComponentId, u64> app_writes_;
  IdMap<ComponentId, Bytes> migration_bytes_;
};

}  // namespace mtm
