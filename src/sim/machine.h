// Machine topology: sockets, memory components, and the latency/bandwidth
// matrix between them. Provides the two configurations evaluated in the
// paper: the two-socket four-tier Optane system (Table 1) and a
// single-socket two-tier DRAM+PM system (§9.6).
#pragma once

#include <string>
#include <vector>

#include "src/common/strong_types.h"
#include "src/common/types.h"
#include "src/sim/tier.h"

namespace mtm {

class Machine {
 public:
  Machine(u32 num_sockets, std::vector<ComponentSpec> components,
          std::vector<std::vector<LinkSpec>> links);

  // The paper's testbed (Table 1), capacities divided by `scale` (the
  // simulation also scales workload footprints and time constants by the
  // same factor, preserving every capacity ratio):
  //   tier 1 (local DRAM):   90 ns, 95 GB/s, 96 GB / scale
  //   tier 2 (remote DRAM): 145 ns, 35 GB/s, 96 GB / scale
  //   tier 3 (local PM):    275 ns, 35 GB/s, 756 GB / scale
  //   tier 4 (remote PM):   340 ns,  1 GB/s, 756 GB / scale
  static Machine OptaneFourTier(u64 scale);

  // Single socket with one DRAM (tier 1) and one PM (tier 2) component, as
  // used for the HeMem comparison in §9.6.
  static Machine TwoTier(u64 scale);

  u32 num_sockets() const { return num_sockets_; }
  u32 num_components() const { return static_cast<u32>(components_.size()); }
  // One-past-the-last valid ComponentId, for indexed loops:
  //   for (ComponentId c{0}; c < machine.end_component(); ++c)
  ComponentId end_component() const { return components_.end_id(); }

  const ComponentSpec& component(ComponentId id) const { return components_[id]; }
  const LinkSpec& link(u32 socket, ComponentId id) const { return links_[socket][id]; }

  // Components ordered fastest-to-slowest as seen from `socket` (the
  // socket's tier order). TierRank(socket, c) is the 0-based tier rank of
  // component c in that order (TierId(0) == the paper's tier 1).
  const std::vector<ComponentId>& TierOrder(u32 socket) const { return tier_order_[socket]; }
  TierId TierRank(u32 socket, ComponentId id) const { return tier_rank_[socket][id]; }

  // The slowest components from any view: every component whose rank is last
  // from its *best* socket. Used by MTM's PEBS-assisted profiling, which
  // treats the slowest tier specially (§5.5).
  bool IsSlowestTier(ComponentId id) const;

  // Latency of a component from its own home socket — its intrinsic speed
  // class. Demotion paths only ever step to a strictly slower class
  // (DRAM -> PM), mirroring the kernel's node-demotion targets; lateral
  // moves between same-class components are NUMA balancing, not demotion.
  SimNanos LocalLatency(ComponentId id) const {
    return links_[components_[id].home_socket][id].latency_ns;
  }
  bool IsSlowerClass(ComponentId from, ComponentId to) const {
    return LocalLatency(to) > LocalLatency(from);
  }

  // Total capacity across all components.
  Bytes TotalCapacity() const;

  // --- Device health (fault injection / chaos runs) ---
  //
  // A component can degrade at runtime: a bandwidth derate models a CXL or
  // PMEM device browning out (all links to it slow down proportionally); a
  // full offline models the device dropping off the bus. Offline components
  // take no new allocations or migrations, and the MigrationEngine drains
  // their residents. Latency and tier ordering are unchanged — a degraded
  // device is still the same distance away, it just moves data slower.
  void SetBandwidthDerate(ComponentId id, double factor);  // in (0, 1]
  void SetOffline(ComponentId id, bool offline);
  bool IsOffline(ComponentId id) const { return health_[id].offline; }
  double BandwidthDerate(ComponentId id) const { return health_[id].bandwidth_derate; }
  bool AnyUnhealthy() const;
  // Healthy components ordered fastest-to-slowest from `socket`; empty
  // result means every component is offline (the machine is dead).
  std::vector<ComponentId> HealthyTierOrder(u32 socket) const;

  std::string DebugString() const;

 private:
  struct ComponentHealth {
    bool offline = false;
    double bandwidth_derate = 1.0;
  };

  u32 num_sockets_;
  IdMap<ComponentId, ComponentSpec> components_;
  std::vector<IdMap<ComponentId, LinkSpec>> links_;       // [socket][component]
  std::vector<IdMap<ComponentId, LinkSpec>> base_links_;  // pristine copy for derates
  IdMap<ComponentId, ComponentHealth> health_;
  std::vector<std::vector<ComponentId>> tier_order_;  // [socket] -> ranked components
  std::vector<IdMap<ComponentId, TierId>> tier_rank_;  // [socket][component] -> rank
};

}  // namespace mtm
