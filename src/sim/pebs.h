// Processor-event-based-sampling (PEBS) model.
//
// The paper's MTM implementation uses Intel PEBS with the
// MEM_LOAD_RETIRED.LOCAL_PMM / REMOTE_PMM events at a 1-in-200 sampling
// period to (a) assist PTE-scan profiling on the slowest tier (§5.5) and
// (b) implement the HeMem baseline, which profiles with PEBS alone (§9.6).
//
// The model samples every `sample_period`-th access to a component whose
// MemClass is enabled, into a bounded buffer; samples past capacity are
// dropped until the buffer is drained (mirroring the preallocated PEBS
// buffer + interrupt-handler design in §8).
#pragma once

#include <vector>

#include "src/common/fault_injection.h"
#include "src/common/types.h"
#include "src/obs/metric_id.h"
#include "src/obs/metrics.h"
#include "src/sim/machine.h"
#include "src/sim/tier.h"

namespace mtm {

struct PebsSample {
  VirtAddr addr;
  ComponentId component = kInvalidComponent;
  u32 socket = 0;  // socket the sampled load issued from
  bool is_write = false;
};

class PebsEngine {
 public:
  struct Config {
    u32 sample_period = 200;  // 1 sample per 200 accesses, as in TPP/production
    std::size_t buffer_capacity = 65536;
    bool sample_dram = false;  // LOCAL/REMOTE_PMM only, by default
    bool sample_pm = true;
  };

  PebsEngine(const Machine& machine, Config config)
      : machine_(machine), config_(config) {
    buffer_.reserve(config_.buffer_capacity);
  }

  void SetEnabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Chaos wiring: when set, the kPebsDrop site can force sample drops even
  // with buffer room, modeling interrupt storms losing PEBS records.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  // Observability: ids are interned once here so the per-sample hot path
  // below pays a null test plus an array-indexed increment.
  void AttachMetrics(MetricsRegistry* metrics) {
    metrics_ = metrics;
    if (metrics_ != nullptr) {
      taken_id_ = metrics_->Counter("pebs/samples_taken");
      dropped_id_ = metrics_->Counter("pebs/samples_dropped");
    }
  }

  const Config& config() const { return config_; }

  // Called by the access engine on every application access.
  void Observe(VirtAddr addr, ComponentId component, u32 socket, bool is_write) {
    if (!enabled_) {
      return;
    }
    MemClass mc = machine_.component(component).mem_class;
    if ((mc == MemClass::kDram && !config_.sample_dram) ||
        (mc == MemClass::kPm && !config_.sample_pm)) {
      return;
    }
    if (++counter_ < config_.sample_period) {
      return;
    }
    counter_ = 0;
    if (buffer_.size() >= config_.buffer_capacity) {
      ++samples_dropped_;
      if (metrics_ != nullptr) {
        metrics_->Add(dropped_id_);
      }
      return;
    }
    if (injector_ != nullptr && injector_->ShouldFail(FaultSite::kPebsDrop)) {
      ++samples_dropped_;
      if (metrics_ != nullptr) {
        metrics_->Add(dropped_id_);
      }
      return;
    }
    buffer_.push_back(PebsSample{addr, component, socket, is_write});
    ++samples_taken_;
    if (metrics_ != nullptr) {
      metrics_->Add(taken_id_);
    }
  }

  std::vector<PebsSample> Drain() {
    std::vector<PebsSample> out;
    out.swap(buffer_);
    return out;
  }

  std::size_t pending() const { return buffer_.size(); }
  u64 samples_taken() const { return samples_taken_; }
  u64 samples_dropped() const { return samples_dropped_; }

 private:
  const Machine& machine_;
  Config config_;
  bool enabled_ = false;
  FaultInjector* injector_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  MetricId taken_id_ = kInvalidMetricId;
  MetricId dropped_id_ = kInvalidMetricId;
  u32 counter_ = 0;
  std::vector<PebsSample> buffer_;
  u64 samples_taken_ = 0;
  u64 samples_dropped_ = 0;
};

}  // namespace mtm
