// Page-migration mechanisms (§7).
//
// Three mechanisms are modeled, matching the paper's comparison set:
//   * kMovePages — Linux move_pages(): sequential, per-4 KiB-page
//     allocate → unmap → copy → remap, fully synchronous (huge pages are
//     split to base pages first);
//   * kNimble — parallel multi-threaded copy with native THP migration,
//     still synchronous;
//   * kMoveMemoryRegions — MTM's adaptive mechanism: helper threads run
//     allocation and copy asynchronously (off the critical path) while the
//     main thread pays only dirty-tracking arming, unmap/remap, and
//     page-table-page migration; a write caught by the reserved-bit
//     write-protect fault during the copy switches the region to
//     synchronous copy immediately (§7.2).
//   * kMmrSync — move_memory_regions with async copy disabled (the
//     "w/o async migration" ablation of §9.3: batched PTE work, sync copy).
#pragma once

#include "src/common/types.h"
#include "src/migration/cost_model.h"
#include "src/sim/machine.h"

namespace mtm {

enum class MechanismKind {
  kMovePages,
  kNimble,
  kMoveMemoryRegions,
  kMmrSync,
};

const char* MechanismKindName(MechanismKind kind);

// True for the mechanism whose copies are executed by helper threads off
// the critical path (kMoveMemoryRegions): the migration engine stages a
// real AsyncCopyEngine batch at submit for it (src/migration/async_copy.h)
// and falls back to synchronous copy when a tracked write lands in the
// copy window (§7.2). The synchronous mechanisms copy on the critical path
// and stage nothing.
constexpr bool MechanismUsesAsyncCopy(MechanismKind kind) {
  return kind == MechanismKind::kMoveMemoryRegions;
}

// Per-step time attribution for one migration (Figures 3 and 11).
struct MigrationStepBreakdown {
  SimNanos allocate_ns;
  SimNanos unmap_remap_ns;  // "page unmap and remap"
  SimNanos copy_ns;
  SimNanos dirty_tracking_ns;
  SimNanos page_table_ns;  // migrate page-table pages

  SimNanos Total() const {
    return allocate_ns + unmap_remap_ns + copy_ns + dirty_tracking_ns + page_table_ns;
  }

  MigrationStepBreakdown& operator+=(const MigrationStepBreakdown& o) {
    allocate_ns += o.allocate_ns;
    unmap_remap_ns += o.unmap_remap_ns;
    copy_ns += o.copy_ns;
    dirty_tracking_ns += o.dirty_tracking_ns;
    page_table_ns += o.page_table_ns;
    return *this;
  }
};

// Cost estimate for moving a run of pages.
struct MechanismCost {
  MigrationStepBreakdown critical;    // exposed on the application's critical path
  MigrationStepBreakdown background;  // overlapped with execution (async copy)

  SimNanos CriticalNs() const { return critical.Total(); }
  SimNanos BackgroundNs() const { return background.Total(); }
};

// Pure cost computation for one (src, dst) run of pages — the functional
// page move is performed by the MigrationEngine.
MechanismCost ComputeMechanismCost(MechanismKind kind, const MigrationCostModel& model,
                                   const Machine& machine, u32 socket, ComponentId src,
                                   ComponentId dst, u64 base_pages, u64 huge_pages);

}  // namespace mtm
