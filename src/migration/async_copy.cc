#include "src/migration/async_copy.h"

#include "src/common/logging.h"

namespace mtm {
namespace {

// splitmix64 step: the per-line expansion of a page payload.
constexpr u64 MixLine(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr u64 kCacheLineBytes = 64;

}  // namespace

u64 CopyPageContent(const PageCopyRecord& page) {
  // Expand the payload word into the page's cache lines and fold them: the
  // memcpy stand-in, so a helper thread does work proportional to the bytes
  // its shard copies and the checksum depends on every line.
  u64 stream = page.payload ^ page.addr.value() ^
               (static_cast<u64>(page.src.value()) << 56);
  u64 checksum = kCopyChecksumSeed;
  const u64 lines = page.size.value() / kCacheLineBytes;
  for (u64 line = 0; line < lines; ++line) {
    checksum = FoldCopyChecksum(checksum, MixLine(stream + line));
  }
  return checksum;
}

std::vector<CopyShard> PlanCopyShards(const std::vector<PageCopyRecord>& pages,
                                      Bytes target_shard_bytes) {
  std::vector<CopyShard> shards;
  if (pages.empty()) {
    return shards;
  }
  const Bytes target =
      target_shard_bytes.IsZero() ? kHugePageBytes : target_shard_bytes;
  CopyShard current{0, 0, Bytes{}};
  for (std::size_t i = 0; i < pages.size(); ++i) {
    // Clean break: a shard may end only where the next record starts a new
    // 2 MiB huge frame, so one huge page's base-page remnants never split.
    const bool new_huge_frame =
        i > 0 && HugeAlignDown(pages[i].addr) != HugeAlignDown(pages[i - 1].addr);
    if (current.count > 0 && current.bytes >= target && new_huge_frame) {
      shards.push_back(current);
      current = CopyShard{i, 0, Bytes{}};
    }
    ++current.count;
    current.bytes += pages[i].size;
  }
  shards.push_back(current);
  return shards;
}

AsyncCopyEngine::AsyncCopyEngine(u32 num_threads, Bytes target_shard_bytes)
    : num_threads_(num_threads == 0 ? 1 : num_threads),
      target_shard_bytes_(target_shard_bytes.IsZero() ? kHugePageBytes : target_shard_bytes),
      pool_(num_threads_ > 1 ? std::make_unique<ThreadPool>(num_threads_) : nullptr) {}

AsyncCopyEngine::Ticket AsyncCopyEngine::Begin(std::vector<PageCopyRecord> pages) {
  const Ticket ticket = next_ticket_++;
  Inflight& flight = inflight_[ticket];
  flight.pages = std::move(pages);
  flight.shards = PlanCopyShards(flight.pages, target_shard_bytes_);
  flight.shard_checksums.assign(flight.shards.size(), 0);
  // The worker reads only the immutable snapshot and writes only its own
  // task-indexed slot; the map node outlives the batch (erased after
  // WaitJob in Join/Cancel), so these pointers stay valid.
  const std::vector<PageCopyRecord>* records = &flight.pages;
  const std::vector<CopyShard>* shards = &flight.shards;
  std::vector<u64>* slots = &flight.shard_checksums;
  auto run_shard = [records, shards, slots](std::size_t s) {
    const CopyShard& shard = (*shards)[s];
    u64 checksum = kCopyChecksumSeed;
    for (std::size_t i = 0; i < shard.count; ++i) {
      checksum = FoldCopyChecksum(checksum, CopyPageContent((*records)[shard.first + i]));
    }
    (*slots)[s] = checksum;
  };
  if (pool_ != nullptr) {
    flight.job = pool_->StartJob(flight.shards.size(), run_shard);
  } else {
    // Single-threaded: the staged copy runs inline at submit time, which is
    // trivially deterministic and byte-identical to any parallel schedule.
    for (std::size_t s = 0; s < flight.shards.size(); ++s) {
      run_shard(s);
    }
  }
  return ticket;
}

RegionCopyResult AsyncCopyEngine::Join(Ticket ticket) {
  auto it = inflight_.find(ticket);
  MTM_CHECK(it != inflight_.end()) << "AsyncCopyEngine::Join: unknown ticket " << ticket;
  Inflight& flight = it->second;
  if (pool_ != nullptr) {
    pool_->WaitJob(flight.job);
  }
  RegionCopyResult out;
  out.checksum = kCopyChecksumSeed;
  for (std::size_t s = 0; s < flight.shards.size(); ++s) {
    // Shard-order merge: the region checksum is a pure function of the
    // snapshot, whatever worker ran which shard in whatever order.
    out.checksum = FoldCopyChecksum(out.checksum, flight.shard_checksums[s]);
    out.bytes += flight.shards[s].bytes;
  }
  out.shards = flight.shards.size();
  inflight_.erase(it);
  return out;
}

void AsyncCopyEngine::Cancel(Ticket ticket) {
  auto it = inflight_.find(ticket);
  MTM_CHECK(it != inflight_.end()) << "AsyncCopyEngine::Cancel: unknown ticket " << ticket;
  if (pool_ != nullptr) {
    pool_->WaitJob(it->second.job);
  }
  inflight_.erase(it);
}

}  // namespace mtm
