// Cost model for page-migration mechanisms (§7, Figures 3 and 11).
//
// move_pages() performs four sequential steps per 4 KiB page — allocate new
// page, unmap (PTE invalidate), copy, map (PTE update) — with copy the most
// time-consuming step. The per-step constants below are calibrated so that
// the modeled step shares and the ~4.4x critical-path advantage of
// move_memory_regions() match the paper's Figure 3 measurements on the
// Optane testbed; copy time itself comes from the Table 1 link bandwidths.
#pragma once

#include <algorithm>

#include "src/common/types.h"
#include "src/common/units.h"
#include "src/sim/machine.h"
#include "src/sim/tier.h"

namespace mtm {

struct MigrationCostModel {
  // Per-4 KiB-page kernel work in move_pages() (includes syscall share,
  // rmap/LRU bookkeeping, and TLB shootdown IPIs for unmap).
  SimNanos alloc_per_page_ns = Nanos(1500);
  SimNanos unmap_per_page_ns = Nanos(1600);
  SimNanos remap_per_page_ns = Nanos(1200);

  // Batched PTE operations in move_memory_regions(): the kernel module
  // walks the region once instead of taking per-page locks.
  double mmr_pte_batch_factor = 0.68;

  // Per-2 MiB-page work when a mechanism migrates THP as a unit (Nimble).
  SimNanos huge_op_per_page_ns = Nanos(6000);  // alloc+unmap+remap combined share

  // One-time costs per region operation.
  SimNanos tlb_flush_ns = Nanos(4000);          // single flush for dirty tracking (§7.2)
  SimNanos write_track_arm_per_page_ns = Nanos(60);
  SimNanos pt_page_move_ns = Nanos(2000);       // "move corresponding page table pages"

  // Parallel-copy thread count for Nimble and the MMR helper threads.
  double copy_parallelism = 4.0;

  // Bytes moved per copy transaction (one base page).
  Bytes copy_chunk_bytes = kPageBytes;

  // Time to copy `bytes` from src to dst as seen from `socket` (the
  // migrating thread's socket): limited by the slower of the two links.
  SimNanos CopyNs(const Machine& machine, u32 socket, ComponentId src, ComponentId dst,
                  Bytes bytes, double parallelism = 1.0) const {
    const LinkSpec& read = machine.link(socket, src);
    const LinkSpec& write = machine.link(socket, dst);
    double bw = std::min(read.BytesPerNano(), write.BytesPerNano());
    double chunks = static_cast<double>(bytes.value()) / static_cast<double>(copy_chunk_bytes.value());
    double latency = static_cast<double>((read.latency_ns + write.latency_ns).value()) * chunks;
    double transfer = static_cast<double>(bytes.value()) / bw;
    return NanosFromDouble((transfer + latency) / std::max(parallelism, 1.0));
  }
};

}  // namespace mtm
