#include "src/migration/features.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/logging.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"

namespace mtm {
namespace {

// Residency probe shared with the policies: the head mapping, falling back
// to the range midpoint (a merged region may start with an unmapped hole).
ComponentId ResidentComponent(const PolicyContext& ctx, const HotnessEntry& e) {
  const Pte* pte = ctx.page_table->Find(e.start);
  if (pte == nullptr) {
    pte = ctx.page_table->Find(e.start + (e.len / 2).value());
  }
  return pte == nullptr ? kInvalidComponent : pte->component;
}

// Sim-time distance from the region's most recent committed move,
// normalized by the profiling interval and capped at 32 intervals. Never
// migrated (or no history wired in) saturates to 1.0.
double MoveRecency(const PolicyContext& ctx, VirtAddr start) {
  if (ctx.history == nullptr || ctx.interval_ns.IsZero()) {
    return 1.0;
  }
  const RegionMigrationHistory* rec = ctx.history->Find(start);
  if (rec == nullptr) {
    return 1.0;
  }
  SimNanos last = std::max(rec->last_promote_at, rec->last_demote_at);
  if (last > ctx.now) {
    return 0.0;
  }
  double intervals = static_cast<double>((ctx.now - last).value()) /
                     static_cast<double>(ctx.interval_ns.value());
  return std::min(intervals, 32.0) / 32.0;
}

}  // namespace

const char* const kFeatureNames[kNumFeatures] = {
    "whi", "hi", "trend", "skew", "log_size", "tier_rank", "pingpong", "move_recency",
};

std::vector<FeatureVector> BuildFeatures(const ProfileOutput& profile, const PolicyContext& ctx) {
  MTM_CHECK(ctx.machine != nullptr);
  MTM_CHECK(ctx.page_table != nullptr);
  const Machine& machine = *ctx.machine;
  std::vector<FeatureVector> features;
  features.reserve(profile.entries.size());
  for (const HotnessEntry& e : profile.entries) {
    FeatureVector f;
    f.start = e.start;
    f.len = e.len;
    f.preferred_socket = e.preferred_socket;
    f.resident = ResidentComponent(ctx, e);
    const auto& tiers = machine.TierOrder(e.preferred_socket);
    // Unmapped regions rank below the slowest tier: nothing to promote.
    f.tier_rank = f.resident == kInvalidComponent
                      ? static_cast<u32>(tiers.size())
                      : machine.TierRank(e.preferred_socket, f.resident).value();
    f.x[kFeatWhi] = e.hotness;
    f.x[kFeatHi] = e.latest_hi;
    f.x[kFeatTrend] = e.latest_hi - e.prev_hi;
    f.x[kFeatSkew] = e.skew;
    u64 pages = std::max<u64>(1, e.len.value() / kPageBytes.value());
    f.x[kFeatLogSizePages] = std::log2(static_cast<double>(pages)) / 16.0;
    f.x[kFeatTierRank] = tiers.size() > 1 ? static_cast<double>(f.tier_rank) /
                                                static_cast<double>(tiers.size() - 1)
                                          : 0.0;
    if (ctx.history != nullptr) {
      const RegionMigrationHistory* rec = ctx.history->Find(e.start);
      f.x[kFeatPingPong] = rec == nullptr ? 0.0 : rec->pingpong_score;
    }
    f.x[kFeatMoveRecency] = MoveRecency(ctx, e.start);
    features.push_back(f);
  }
  return features;
}

void FeatureExporter::OnInterval(u64 interval, SimNanos now, const ProfileOutput& profile,
                                 const std::vector<FeatureVector>& features,
                                 const std::vector<MigrationOrder>& orders,
                                 const PolicyContext& ctx) {
  MTM_CHECK_EQ(features.size(), profile.entries.size());
  const Machine& machine = *ctx.machine;

  // Label the previous interval's rows with the hotness the region realized
  // this interval. Region boundaries drift (merge/split), so the lookup is
  // by containment of the old region start; vanished regions drop.
  std::map<VirtAddr, std::pair<VirtAddr, double>> by_start;  // start -> (end, hotness)
  for (const HotnessEntry& e : profile.entries) {
    by_start[e.start] = {e.end(), e.hotness};
  }
  for (const PendingRow& row : pending_) {
    auto it = by_start.upper_bound(row.start);
    if (it == by_start.begin()) {
      continue;
    }
    --it;
    if (row.start >= it->second.first) {
      continue;  // past that region's end: the old start is unprofiled now
    }
    sink_.Append(row.prefix + JsonlDouble(it->second.second) + "}");
  }
  pending_.clear();

  // Attach the policy's action to the region each order targets. First
  // matching order wins; MTM plans at most one order per region.
  std::map<VirtAddr, std::size_t> row_index;  // region start -> features index
  for (std::size_t i = 0; i < features.size(); ++i) {
    row_index[features[i].start] = i;
  }
  std::vector<const MigrationOrder*> row_order(features.size(), nullptr);
  for (const MigrationOrder& order : orders) {
    auto it = row_index.upper_bound(order.start);
    if (it == row_index.begin()) {
      continue;
    }
    --it;
    std::size_t i = it->second;
    if (order.start < features[i].start + features[i].len && row_order[i] == nullptr) {
      row_order[i] = &order;
    }
  }

  for (std::size_t i = 0; i < features.size(); ++i) {
    const FeatureVector& f = features[i];
    int action = 0;
    int dst_tier = -1;
    if (row_order[i] != nullptr) {
      const MigrationOrder& order = *row_order[i];
      dst_tier = static_cast<int>(machine.TierRank(order.socket, order.dst).value());
      action = static_cast<u32>(dst_tier) < f.tier_rank ? 1 : -1;
    }
    std::string line = "{\"interval\":" + std::to_string(interval) +
                       ",\"sim_ns\":" + std::to_string(now.value()) +
                       ",\"start\":" + std::to_string(f.start.value()) +
                       ",\"len\":" + std::to_string(f.len.value()) +
                       ",\"socket\":" + std::to_string(f.preferred_socket) +
                       ",\"tier\":" + std::to_string(f.tier_rank);
    for (u32 k = 0; k < kNumFeatures; ++k) {
      line += ",\"";
      line += kFeatureNames[k];
      line += "\":" + JsonlDouble(f.x[k]);
    }
    line += ",\"action\":" + std::to_string(action) +
            ",\"dst_tier\":" + std::to_string(dst_tier) + ",\"label\":";
    pending_.push_back(PendingRow{std::move(line), f.start});
  }
}

void HeatmapExporter::OnInterval(u64 interval, SimNanos now, const ProfileOutput& profile,
                                 const std::vector<FeatureVector>& features) {
  MTM_CHECK_EQ(features.size(), profile.entries.size());
  std::vector<std::size_t> order(features.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (features[a].start != features[b].start) {
      return features[a].start < features[b].start;
    }
    return a < b;
  });
  std::string line = "{\"interval\":" + std::to_string(interval) +
                     ",\"sim_ns\":" + std::to_string(now.value()) + ",\"regions\":[";
  bool first = true;
  for (std::size_t i : order) {
    const FeatureVector& f = features[i];
    const HotnessEntry& e = profile.entries[i];
    if (!first) {
      line += ',';
    }
    first = false;
    line += "{\"start\":" + std::to_string(f.start.value()) +
            ",\"len\":" + std::to_string(f.len.value()) + ",\"whi\":" + JsonlDouble(e.hotness) +
            ",\"hi\":" + JsonlDouble(e.latest_hi) + ",\"tier\":" + std::to_string(f.tier_rank) +
            ",\"pingpong\":" + JsonlDouble(f.x[kFeatPingPong]) + "}";
  }
  line += "]}";
  sink_.Append(line);
}

}  // namespace mtm
