// The migration engine executes migration orders: it performs the
// functional page moves (page-table remap + frame accounting) and charges
// the mechanism's modeled cost to the simulated clock.
//
// For move_memory_regions() it implements the paper's adaptive scheme
// (§7.2) faithfully in event time:
//   * on submit, write tracking is armed on the region (reserved PTE bit +
//     one TLB flush) and the asynchronous copy is scheduled to complete
//     after its modeled duration, during which the application keeps
//     executing against the source pages;
//   * if the application writes the region before the copy completes, the
//     write-protect fault (observed via WriteTrackObserver) switches the
//     region to synchronous copy: the remaining copy time is exposed on the
//     critical path and the move completes immediately;
//   * otherwise Poll() finalizes the move when the copy deadline passes,
//     paying only the unmap/remap and page-table-page migration.
//
// When a destination component lacks space, the engine reclaims: it demotes
// inactive (accessed-bit-clear) pages from the destination to the next
// lower tier with room, modeling kernel reclaim-based demotion.
#pragma once

#include <deque>
#include <vector>

#include "src/common/types.h"
#include "src/mem/address_space.h"
#include "src/mem/frame_allocator.h"
#include "src/migration/mechanism.h"
#include "src/sim/access_engine.h"
#include "src/sim/clock.h"
#include "src/sim/counters.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"

namespace mtm {

// One policy decision: move [start, start+len) to component dst, using the
// tier view of `socket` for any cascading demotions.
struct MigrationOrder {
  VirtAddr start = 0;
  u64 len = 0;
  ComponentId dst = kInvalidComponent;
  u32 socket = 0;
};

struct MigrationStats {
  u64 bytes_migrated = 0;
  u64 bytes_failed = 0;     // no space anywhere
  u64 regions_migrated = 0;
  u64 sync_fallbacks = 0;   // async copies switched to sync by a write
  u64 reclaim_demotions = 0;
  SimNanos critical_ns = 0;
  SimNanos background_ns = 0;
  MigrationStepBreakdown steps;
};

class MigrationEngine : public WriteTrackObserver {
 public:
  MigrationEngine(const Machine& machine, PageTable& page_table, FrameAllocator& frames,
                  const AddressSpace& address_space, MemCounters& counters, SimClock& clock,
                  MechanismKind kind, MigrationCostModel model = {});

  MechanismKind kind() const { return kind_; }

  // Executes (or schedules) one order. Overlaps with in-flight async moves
  // are dropped.
  void Submit(const MigrationOrder& order);

  // Completes async copies whose deadline has passed. Call frequently.
  void Poll();

  // Forces all in-flight migrations to complete (end of run).
  void Flush();

  // WriteTrackObserver: a tracked page was written mid-copy.
  void OnWriteTrackFault(VirtAddr addr, u32 socket) override;

  const MigrationStats& stats() const { return stats_; }
  std::size_t pending() const { return pending_.size(); }

 private:
  struct Pending {
    MigrationOrder order;
    SimNanos complete_at = 0;
    SimNanos submitted_at = 0;
    SimNanos background_ns = 0;
    MechanismCost cost;  // precomputed aggregate cost
  };

  // Gathers the pages of [start, len) grouped by source component and
  // returns the aggregate mechanism cost; out parameters receive totals.
  MechanismCost PlanCost(const MigrationOrder& order, MechanismKind kind, u64* bytes_out);

  // Remaps every page of the range to dst, reclaiming on pressure.
  void CommitMove(const MigrationOrder& order);

  // Demotes inactive pages from `component` until `bytes_needed` are free.
  // Returns true on success. `depth` guards cascade recursion.
  bool ReclaimFrom(ComponentId component, u64 bytes_needed, int depth);

  void ArmWriteTracking(const MigrationOrder& order);
  void DisarmWriteTracking(const MigrationOrder& order);
  void FinishPending(std::size_t index, bool forced_sync, double remaining_fraction);

  const Machine& machine_;
  PageTable& page_table_;
  FrameAllocator& frames_;
  const AddressSpace& address_space_;
  MemCounters& counters_;
  SimClock& clock_;
  MechanismKind kind_;
  MigrationCostModel model_;

  std::vector<Pending> pending_;
  MigrationStats stats_;
  // Per-component clock hand for reclaim victim scanning (kswapd-style
  // round-robin over the address space).
  std::vector<VirtAddr> reclaim_cursor_;
};

}  // namespace mtm
