// The migration engine executes migration orders: it performs the
// functional page moves (page-table remap + frame accounting) and charges
// the mechanism's modeled cost to the simulated clock.
//
// For move_memory_regions() it implements the paper's adaptive scheme
// (§7.2) faithfully in event time:
//   * on submit, write tracking is armed on the region (reserved PTE bit +
//     one TLB flush) and the asynchronous copy is scheduled to complete
//     after its modeled duration, during which the application keeps
//     executing against the source pages;
//   * if the application writes the region before the copy completes, the
//     write-protect fault (observed via WriteTrackObserver) switches the
//     region to synchronous copy: the remaining copy time is exposed on the
//     critical path and the move completes immediately;
//   * otherwise Poll() finalizes the move when the copy deadline passes,
//     paying only the unmap/remap and page-table-page migration.
//
// When a destination component lacks space, the engine reclaims: it demotes
// inactive (accessed-bit-clear) pages from the destination to the next
// lower tier with room, modeling kernel reclaim-based demotion.
//
// Migrations are transactional (Nomad-style): an order either commits or
// rolls back with source pages still mapped and frame accounting intact.
// With a FaultInjector attached, copy and remap failures abort the order,
// which is re-queued with capped exponential backoff in simulated time; a
// per-interval thrash guard abandons regions that abort repeatedly, and a
// tier that goes offline has its residents drained to the nearest healthy
// component while in-flight orders targeting it are rolled back.
// VerifyInvariants() audits the page-table/frame-accounting agreement and
// is run by the driver after every interval of a chaos run.
//
// An optional AdmissionController (src/migration/admission) gates every
// policy order before it is armed — see admission.h for the controller
// contracts. The engine maintains the per-region MigrationHistory the
// controllers read, recording every committed policy move and every reclaim
// demotion (the demote half of a ping-pong cycle). Reclaim demotions and
// offline drains are emergency traffic and bypass the admission gate
// itself; drains are also not recorded (evacuation is not hotness-driven).
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/fault_injection.h"
#include "src/common/status.h"
#include "src/common/strong_types.h"
#include "src/common/types.h"
#include "src/mem/address_space.h"
#include "src/mem/frame_allocator.h"
#include "src/migration/admission/admission.h"
#include "src/migration/async_copy.h"
#include "src/migration/cost_model.h"
#include "src/migration/mechanism.h"
#include "src/obs/metric_id.h"
#include "src/obs/obs.h"
#include "src/sim/access_engine.h"
#include "src/sim/clock.h"
#include "src/sim/counters.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"

namespace mtm {

// Retry/backoff/thrash-guard parameters for aborted orders. Backoff is
// exponential in simulated time: initial_backoff_ns << (attempt - 1),
// capped at max_backoff_ns.
struct MigrationRetryPolicy {
  u32 max_attempts = 6;                 // total tries per order, first included
  SimNanos initial_backoff_ns = Nanos(50'000);  // 50 us simulated
  SimNanos max_backoff_ns = Nanos(5'000'000);   // 5 ms simulated
  // Aborts of the same region within one profiling interval before the
  // thrash guard abandons it (write storms re-abort the same region).
  u32 thrash_abort_limit = 3;
};

struct MigrationStats {
  Bytes bytes_migrated;
  Bytes bytes_failed;       // no space anywhere
  u64 regions_migrated = 0;
  u64 sync_fallbacks = 0;   // async copies switched to sync by a write
  u64 reclaim_demotions = 0;
  SimNanos critical_ns;
  SimNanos background_ns;
  MigrationStepBreakdown steps;

  // Helper-thread copy engine (move_memory_regions only; see async_copy.h).
  // All deterministic functions of the simulation — identical for every
  // --migrate-threads value, which the differential tests assert.
  u64 async_copies = 0;       // regions committed from the staged async copy
  u64 copy_shards = 0;        // helper-thread work units dispatched for them
  Bytes async_copy_bytes;     // bytes committed from staged copies
  Bytes fallback_copy_bytes;  // bytes re-copied serially after a §7.2 fault
  u64 copy_checksum = 0;      // fold of every committed region's content checksum

  // Resilience layer — all zero unless faults are injected or tiers degrade.
  u64 injected_copy_failures = 0;
  u64 injected_remap_failures = 0;
  u64 injected_alloc_failures = 0;  // page-granular transient failures
  u64 rollbacks = 0;                // aborted orders rolled back cleanly
  u64 retries = 0;                  // re-submissions from the retry queue
  u64 orders_abandoned = 0;         // retry budget exhausted or thrash guard
  Bytes bytes_abandoned;
  u64 thrash_aborts = 0;            // regions dropped by the thrash guard
  u64 tier_drains = 0;              // offline-drain sweeps executed
  Bytes drained_bytes;              // bytes relocated off degraded tiers
  Bytes drain_failed_bytes;         // could not be relocated (machine full)
};

class MigrationEngine : public WriteTrackObserver {
 public:
  MigrationEngine(const Machine& machine, PageTable& page_table, FrameAllocator& frames,
                  const AddressSpace& address_space, MemCounters& counters, SimClock& clock,
                  MechanismKind kind, MigrationCostModel model = {});

  MechanismKind kind() const { return kind_; }

  // Executes (or schedules) one order. The engine self-heals — failed
  // attempts are re-queued internally — so the Status is informational:
  //   kOk                  committed (sync) or scheduled (async)
  //   kInvalidArgument     zero-length or out-of-range order
  //   kUnavailable         target offline, or an injected fault aborted the
  //                        attempt (a retry is queued)
  //   kAlreadyExists       overlaps an in-flight async move; dropped
  //   kFailedPrecondition  admission deferred the order (cooldown window)
  //   kResourceExhausted   admission rejected the order (over budget)
  Status Submit(const MigrationOrder& order);

  // Submits one interval's batch through the admission stage: the attached
  // controller may re-sequence the batch (e.g. hottest promotions first)
  // before each order goes through Submit's per-order gate. Without a
  // controller this degenerates to submitting in policy order.
  void SubmitAll(const std::vector<MigrationOrder>& orders);

  // Completes async copies whose deadline has passed and re-submits queued
  // retries whose backoff expired. Call frequently.
  void Poll();

  // Forces all in-flight migrations and queued retries to complete or be
  // abandoned (end of run).
  void Flush();

  // WriteTrackObserver: a tracked page was written mid-copy.
  void OnWriteTrackFault(VirtAddr addr, u32 socket) override;

  // Observability wiring: counters for transaction attempts/commits/aborts/
  // retries and per-component migrated bytes, plus simulated-time spans for
  // each charged migration step. Null (the default) records nothing.
  void AttachObservability(Observability* obs);

  // Host-side parallelism of the move_memory_regions copy stage: staged
  // copies are sharded across `num_threads` helper threads (the caller
  // participates; 1 = inline, the default). Purely a host-side speedup —
  // simulated time, reports, and traces are byte-identical for any value.
  // Must be called before the first Submit (no copies may be in flight).
  void set_migrate_threads(u32 num_threads);
  u32 migrate_threads() const { return migrate_threads_; }
  const AsyncCopyEngine* copy_engine() const { return copy_engine_.get(); }

  // Chaos wiring. The injector may be null (fault-free run).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  void set_retry_policy(const MigrationRetryPolicy& policy) { retry_policy_ = policy; }
  const MigrationRetryPolicy& retry_policy() const { return retry_policy_; }

  // Admission wiring: installs the controller consulted before every order
  // is armed and re-tunes the history table. The controller may be null
  // (admit everything, record history only); the engine does not own it.
  // Emergency moves — reclaim demotions and offline drains — bypass
  // admission: they relieve pressure rather than spend the policy's budget.
  void set_admission(AdmissionController* controller, const AdmissionTuning& tuning);
  AdmissionController* admission() const { return admission_; }
  const AdmissionStats& admission_stats() const { return admission_stats_; }
  const MigrationHistory& history() const { return history_; }
  const AdmissionBudget& admission_budget() const { return budget_; }

  // Driver hook at each profiling-interval boundary: opens a fresh
  // thrash-guard window, decays ping-pong scores, and resets the admission
  // budget.
  void BeginInterval();

  // Applies a degradation event to this engine (the Machine's health state
  // is flipped by the caller first). Offline events roll back in-flight
  // orders targeting the component, abandon queued retries for it, and
  // drain its residents to the nearest healthy component.
  void OnTierFault(const TierFaultEvent& event);

  // Moves every page resident on `component` to the nearest healthy
  // component with room (next lower tiers first, then faster ones).
  // Returns the number of bytes relocated.
  Bytes DrainComponent(ComponentId component);

  // Audits the transactional invariants: frame accounting matches the page
  // table globally and per component, no component is over capacity, no
  // page resides on an offline component (unless a drain already reported
  // failure), and in-flight orders do not overlap.
  Status VerifyInvariants() const;

  const MigrationStats& stats() const { return stats_; }
  std::size_t pending() const { return pending_.size(); }
  std::size_t retry_backlog() const { return retry_queue_.size(); }

 private:
  struct Pending {
    MigrationOrder order;
    SimNanos complete_at;
    SimNanos submitted_at;
    SimNanos background_ns;
    MechanismCost cost;  // precomputed aggregate cost
    u32 attempt = 1;     // 1-based try counter for backoff on abort
    // Staged helper-thread copy of this region (0 = none staged).
    AsyncCopyEngine::Ticket copy_ticket = 0;
    // Chrome trace flow id linking migrate_arm to the finish span (0 = flow
    // emission disabled).
    u64 flow_id = 0;
  };

  struct RetryEntry {
    MigrationOrder order;
    u32 attempt = 1;        // the attempt number this retry will be
    SimNanos ready_at;  // backoff deadline in simulated time
  };

  // Per-page commit outcome of one attempt.
  struct CommitOutcome {
    Bytes moved;
    Bytes failed_space;      // no capacity anywhere (permanent, as before)
    Bytes failed_transient;  // injected allocation failures (retryable)
  };

  Status SubmitAttempt(const MigrationOrder& submitted, u32 attempt);

  // Largest huge-page-aligned prefix length of `order` whose to-move bytes
  // (pages not already on order.dst) fit `admit_bytes`; zero when not even
  // the first huge region fits. Supports partial admission.
  Bytes SplitLenForBudget(const MigrationOrder& order, Bytes admit_bytes);

  // Gathers the pages of [start, len) grouped by source component and
  // returns the aggregate mechanism cost; out parameters receive totals.
  // `src_out` (optional) receives the first run's source component —
  // kInvalidComponent when nothing needs to move.
  MechanismCost PlanCost(const MigrationOrder& order, MechanismKind kind, Bytes* bytes_out,
                         ComponentId* src_out = nullptr);

  // True when the order moves its first still-to-move run toward a faster
  // tier of its socket view.
  bool IsPromotion(const MigrationOrder& order, ComponentId src) const;

  // Books a committed move into the per-region history and the flip
  // counters of AdmissionStats.
  void RecordHistory(const MigrationOrder& order, ComponentId src, Bytes moved);

  // Remaps every page of the range to dst, reclaiming on pressure. Pages
  // hit by an injected transient allocation failure are skipped and
  // reported for retry.
  CommitOutcome CommitMove(const MigrationOrder& order);

  // Demotes inactive pages from `component` until `bytes_needed` are free.
  // Returns true on success. `depth` guards cascade recursion.
  bool ReclaimFrom(ComponentId component, Bytes bytes_needed, int depth);

  void ArmWriteTracking(const MigrationOrder& order);
  void DisarmWriteTracking(const MigrationOrder& order);
  void FinishPending(std::size_t index, bool forced_sync, double remaining_fraction);

  // Snapshot of the order's still-to-move pages (address order, pages
  // already on order.dst skipped) for the copy engine.
  std::vector<PageCopyRecord> SnapshotCopyRecords(const MigrationOrder& order) const;

  // Joins and discards a staged copy, if any (fallback and abort paths).
  void DiscardStagedCopy(Pending& p);

  // Abort bookkeeping: rolls the attempt back (caller already restored all
  // state) and either queues a retry with exponential backoff or abandons
  // the order (retry budget exhausted / thrash guard tripped).
  void HandleAbort(const MigrationOrder& order, u32 attempt);
  void ProcessRetries();

  // Counts migration traffic into MemCounters and, when observability is
  // attached, the per-component byte counters.
  void RecordMigrationBytes(ComponentId component, Bytes bytes);
  void Bump(MetricId id, u64 delta = 1);
  void EmitSpan(const char* span_name, SimNanos start, SimNanos duration);

  const Machine& machine_;
  PageTable& page_table_;
  FrameAllocator& frames_;
  const AddressSpace& address_space_;
  MemCounters& counters_;
  SimClock& clock_;
  MechanismKind kind_;
  MigrationCostModel model_;

  FaultInjector* injector_ = nullptr;
  MigrationRetryPolicy retry_policy_;

  // Admission stage. The history is engine-owned bookkeeping and is kept
  // even with no controller attached; the controller is a borrowed
  // strategy object (Solution owns it).
  AdmissionController* admission_ = nullptr;
  MigrationHistory history_{AdmissionTuning{}};
  AdmissionBudget budget_;
  AdmissionStats admission_stats_;

  Observability* obs_ = nullptr;
  MetricId attempts_id_ = kInvalidMetricId;
  MetricId commits_id_ = kInvalidMetricId;
  MetricId aborts_id_ = kInvalidMetricId;
  MetricId retries_id_ = kInvalidMetricId;
  IdMap<ComponentId, MetricId> bytes_on_component_ids_;

  // Helper-thread copy engine, created only for mechanisms that stage real
  // copies (MechanismUsesAsyncCopy); rebuilt by set_migrate_threads.
  std::unique_ptr<AsyncCopyEngine> copy_engine_;
  u32 migrate_threads_ = 1;
  u64 next_flow_id_ = 1;

  std::vector<Pending> pending_;
  std::deque<RetryEntry> retry_queue_;
  // Aborts per region start address within the current interval window.
  std::unordered_map<VirtAddr, u32> interval_aborts_;
  MigrationStats stats_;
  // Per-component clock hand for reclaim victim scanning (kswapd-style
  // round-robin over the address space).
  IdMap<ComponentId, VirtAddr> reclaim_cursor_;
};

}  // namespace mtm
