#include "src/migration/policy.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/histogram.h"
#include "src/common/logging.h"
#include "src/common/strong_types.h"
#include "src/common/types.h"
#include "src/migration/admission/admission.h"
#include "src/sim/tier.h"

namespace mtm {
namespace {

i64 FramesCapacity(PolicyContext& ctx, ComponentId c) {
  return static_cast<i64>(ctx.frames->capacity(c).value());
}

ComponentId ComponentOf(PolicyContext& ctx, const HotnessEntry& e) {
  const Pte* pte = ctx.page_table->Find(e.start);
  if (pte == nullptr) {
    pte = ctx.page_table->Find(e.start + (e.len / 2).value());
  }
  return pte == nullptr ? kInvalidComponent : pte->component;
}

// Finds the first mapping in `e` residing on `component` and returns a
// slice of at most max_len from there; len 0 when none. Lets partial
// promotions/demotions of large merged regions progress across intervals
// instead of re-targeting already-moved pages.
std::pair<VirtAddr, Bytes> SliceOn(PolicyContext& ctx, const HotnessEntry& e,
                                   ComponentId component, Bytes max_len) {
  VirtAddr found;
  ctx.page_table->ForEachMapping(e.start, e.len, [&](VirtAddr addr, Bytes, Pte& pte) {
    if (found.IsZero() && pte.component == component) {
      found = addr;
    }
  });
  if (found.IsZero()) {
    return {VirtAddr{}, Bytes{}};
  }
  return {found, std::min(max_len, Bytes(e.end() - found))};
}

// Finds the first mapping in `e` whose tier rank (seen from `socket`)
// exceeds `min_rank`; returns {addr, component} or {0, kInvalidComponent}.
// A large merged region may straddle tiers after partial promotion, so
// residency must be probed per-mapping, not at the region head.
std::pair<VirtAddr, ComponentId> SlowestSliceStart(PolicyContext& ctx, const HotnessEntry& e,
                                                   u32 socket, TierId min_rank) {
  const Machine& machine = *ctx.machine;
  VirtAddr found;
  ComponentId comp = kInvalidComponent;
  ctx.page_table->ForEachMapping(e.start, e.len, [&](VirtAddr addr, Bytes, Pte& pte) {
    if (found.IsZero() && machine.TierRank(socket, pte.component) > min_rank) {
      found = addr;
      comp = pte.component;
    }
  });
  return {found, comp};
}

}  // namespace

std::vector<MigrationOrder> MtmPolicy::Decide(const ProfileOutput& profile,
                                              PolicyContext& ctx) {
  // The raw WHI is the score (§6): DecideByScore with scores == hotness is
  // the pre-refactor MtmPolicy, byte-for-byte.
  std::vector<double> scores;
  scores.reserve(profile.entries.size());
  for (const HotnessEntry& e : profile.entries) {
    scores.push_back(e.hotness);
  }
  return DecideByScore(profile, scores, ctx, config_);
}

std::vector<MigrationOrder> DecideByScore(const ProfileOutput& profile,
                                          const std::vector<double>& scores, PolicyContext& ctx,
                                          const MtmPolicy::Config& config) {
  MTM_CHECK_GT(config.promote_batch_bytes, Bytes{});
  MTM_CHECK_EQ(scores.size(), profile.entries.size());
  const Machine& machine = *ctx.machine;
  std::vector<MigrationOrder> orders;

  // Histogram of scores across all regions in all tiers — the global view.
  // A non-positive hotness_max adapts to the scorer's scale (used when
  // MTM's policy runs on a foreign profiler's output, §9.3, and by fitted
  // scorers whose range is not [0, num_scans]).
  double hotness_max = config.hotness_max;
  if (hotness_max <= 0.0) {
    for (double s : scores) {
      hotness_max = std::max(hotness_max, s);
    }
    if (hotness_max <= 0.0) {
      return {};
    }
  }
  BucketedHistogram<std::size_t> hist(0.0, hotness_max, config.num_buckets);
  for (std::size_t i = 0; i < profile.entries.size(); ++i) {
    hist.Update(i, scores[i]);
  }
  std::vector<std::size_t> hottest = hist.HottestFirst();

  // Planned free space per component, adjusted as orders accumulate.
  IdMap<ComponentId, i64> planned_free(machine.num_components());
  for (ComponentId c{0}; c < machine.end_component(); ++c) {
    planned_free[c] = static_cast<i64>(ctx.frames->free_bytes(c).value());
  }
  // Demotion candidates, coldest first.
  std::vector<std::size_t> coldest = hist.ColdestFirst();
  std::unordered_set<std::size_t> planned;  // entries already part of an order

  // Tries to free `need` bytes on dst by demoting colder-than-`score`
  // resident entries one tier down ("slow demotion"). Appends demotion
  // orders; returns true once planned_free[dst] >= need.
  const double hysteresis = hotness_max / static_cast<double>(config.num_buckets) * 2.0;
  auto make_room = [&](ComponentId dst, i64 need, double score, u32 /*socket*/) -> bool {
    if (planned_free[dst] >= need) {
      return true;
    }
    u32 home = machine.component(dst).home_socket;
    const auto& tiers = machine.TierOrder(home);
    u32 dst_rank = machine.TierRank(home, dst).value();
    for (std::size_t idx : coldest) {
      if (planned_free[dst] >= need) {
        break;
      }
      if (planned.count(idx) > 0) {
        continue;
      }
      const HotnessEntry& victim = profile.entries[idx];
      // Hysteresis: only displace victims meaningfully colder than the
      // incoming region, or near-ties ping-pong across intervals and the
      // migration budget burns on churn.
      if (scores[idx] >= score - hysteresis) {
        break;  // coldest-first order: everything beyond is hotter
      }
      // Demote only as much of the victim as the deficit requires; large
      // merged regions step down in huge-page-aligned slices.
      Bytes deficit(static_cast<u64>(need - planned_free[dst]));
      auto [slice_start, demote_len] =
          SliceOn(ctx, victim, dst, std::min(victim.len, HugeAlignUp(deficit)));
      if (demote_len.IsZero()) {
        continue;
      }
      // Next lower tier with planned space; demotion only steps to a
      // strictly slower class (§6.2 "next lower memory tier").
      for (u32 r = dst_rank + 1; r < tiers.size(); ++r) {
        ComponentId lower = tiers[r];
        if (!machine.IsSlowerClass(dst, lower)) {
          continue;
        }
        if (machine.IsOffline(lower)) {
          continue;  // never demote onto a dead device
        }
        if (planned_free[lower] >= static_cast<i64>(demote_len.value())) {
          orders.push_back(MigrationOrder{slice_start, demote_len, lower, home, scores[idx]});
          planned.insert(idx);
          planned_free[lower] -= static_cast<i64>(demote_len.value());
          planned_free[dst] += static_cast<i64>(demote_len.value());
          break;
        }
      }
    }
    return planned_free[dst] >= need;
  };

  i64 budget = static_cast<i64>(config.promote_batch_bytes.value());
  for (std::size_t idx : hottest) {
    if (budget <= 0) {
      break;
    }
    const HotnessEntry& e = profile.entries[idx];
    if (scores[idx] < config.min_hotness || planned.count(idx) > 0) {
      continue;
    }
    u32 socket = e.preferred_socket;
    const auto& tiers = machine.TierOrder(socket);
    // Probe per-mapping residency: after partial promotion a merged region
    // straddles tiers, and the remaining slow-resident slice is what needs
    // promoting.
    auto [slice_start, cur] = SlowestSliceStart(ctx, e, socket, /*min_rank=*/TierId(0));
    if (cur == kInvalidComponent) {
      continue;  // fully resident in the fastest tier
    }
    u32 cur_rank = machine.TierRank(socket, cur).value();
    // The accumulated size of migrated regions is capped at N (§6.1): a
    // merged region larger than the remaining budget promotes in a
    // huge-page-aligned slice and continues next interval.
    Bytes promote_len =
        std::min(Bytes(e.end() - slice_start),
                 std::max(HugeAlignDown(Bytes(static_cast<u64>(budget))), kHugePageBytes));
    // Fast promotion: aim for the fastest tier; if its residents are all
    // hotter (no room can be made), fall through to the next tier — the
    // paper's "2nd highest bucket to the 2nd-fastest tier" behavior.
    for (u32 target = 0; target < cur_rank; ++target) {
      ComponentId dst = tiers[target];
      if (machine.IsOffline(dst)) {
        continue;  // degraded device: fall through to the next tier
      }
      if (static_cast<u64>(FramesCapacity(ctx, dst)) < promote_len.value()) {
        continue;
      }
      if (!make_room(dst, static_cast<i64>(promote_len.value()), scores[idx], socket)) {
        continue;
      }
      orders.push_back(MigrationOrder{slice_start, promote_len, dst, socket, scores[idx]});
      planned.insert(idx);
      planned_free[dst] -= static_cast<i64>(promote_len.value());
      planned_free[cur] += static_cast<i64>(promote_len.value());
      budget -= static_cast<i64>(promote_len.value());
      break;
    }
  }
  return orders;
}

std::vector<MigrationOrder> AutoNumaPolicy::Decide(const ProfileOutput& profile,
                                                   PolicyContext& ctx) {
  MTM_CHECK_GT(config_.promote_batch_bytes, Bytes{});
  const Machine& machine = *ctx.machine;
  std::vector<const HotnessEntry*> candidates;
  for (const HotnessEntry& e : profile.entries) {
    if (e.hotness > 0.0) {
      candidates.push_back(&e);
    }
  }
  if (config_.patched) {
    // MFU with auto threshold: rank by fault count; the budget cut-off is
    // the automatically adjusted hot threshold.
    std::sort(candidates.begin(), candidates.end(),
              [](const HotnessEntry* a, const HotnessEntry* b) {
                return a->hotness > b->hotness;
              });
  }
  std::vector<MigrationOrder> orders;
  i64 budget = static_cast<i64>(config_.promote_batch_bytes.value());
  for (const HotnessEntry* e : candidates) {
    if (budget <= 0) {
      break;
    }
    ComponentId cur = ComponentOf(ctx, *e);
    if (cur == kInvalidComponent) {
      continue;
    }
    u32 socket = e->preferred_socket;
    // Kernel-faithful one-step moves — the traditional NUMA abstraction the
    // paper identifies as the latency problem for deep hierarchies:
    //  * a PM page promotes to the DRAM of its own socket;
    //  * a DRAM page on the wrong socket rebalances to the faulting
    //    socket's DRAM (classic NUMA balancing).
    // Reaching the application's top tier from remote PM therefore takes
    // two separate migration decisions across intervals.
    ComponentId dst = kInvalidComponent;
    u32 cur_home = machine.component(cur).home_socket;
    if (machine.component(cur).mem_class == MemClass::kPm) {
      dst = machine.TierOrder(cur_home)[0];  // local DRAM of the page's socket
    } else if (cur_home != socket) {
      dst = machine.TierOrder(socket)[0];  // NUMA-balance toward the tasks
    } else {
      continue;  // already in the task-local DRAM
    }
    orders.push_back(MigrationOrder{e->start, e->len, dst, socket, e->hotness});
    budget -= static_cast<i64>(e->len.value());
  }
  return orders;
}

std::vector<MigrationOrder> AutoTieringPolicy::Decide(const ProfileOutput& profile,
                                                      PolicyContext& ctx) {
  MTM_CHECK_GT(config_.promote_batch_bytes, Bytes{});
  const Machine& machine = *ctx.machine;
  std::vector<MigrationOrder> orders;
  IdMap<ComponentId, i64> planned_free(machine.num_components());
  for (ComponentId c{0}; c < machine.end_component(); ++c) {
    planned_free[c] = static_cast<i64>(ctx.frames->free_bytes(c).value());
  }
  i64 budget = static_cast<i64>(config_.promote_batch_bytes.value());
  for (const HotnessEntry& e : profile.entries) {
    if (budget <= 0) {
      break;
    }
    if (e.hotness <= 0.0) {
      continue;
    }
    ComponentId cur = ComponentOf(ctx, e);
    if (cur == kInvalidComponent) {
      continue;
    }
    u32 socket = e.preferred_socket;
    u32 cur_rank = machine.TierRank(socket, cur).value();
    // Opportunistic: the fastest tier that currently has room, regardless
    // of how hot the chunk is relative to anything else; when every faster
    // tier is full, promote to the fastest anyway and let opportunistic
    // (reclaim-based) demotion evict a victim.
    ComponentId dst = machine.TierOrder(socket)[0];
    for (u32 target = 0; target < cur_rank; ++target) {
      ComponentId candidate = machine.TierOrder(socket)[target];
      if (planned_free[candidate] >= static_cast<i64>(e.len.value())) {
        dst = candidate;
        break;
      }
    }
    orders.push_back(MigrationOrder{e.start, e.len, dst, socket, e.hotness});
    planned_free[dst] -= static_cast<i64>(e.len.value());
    planned_free[cur] += static_cast<i64>(e.len.value());
    budget -= static_cast<i64>(e.len.value());
  }
  return orders;
}

std::vector<MigrationOrder> HememPolicy::Decide(const ProfileOutput& profile,
                                                PolicyContext& ctx) {
  MTM_CHECK_GT(config_.promote_batch_bytes, Bytes{});
  const Machine& machine = *ctx.machine;
  ComponentId dram = machine.TierOrder(0)[0];
  std::vector<const HotnessEntry*> hot;
  for (const HotnessEntry& e : profile.entries) {
    if (e.hotness >= config_.hot_threshold) {
      hot.push_back(&e);
    }
  }
  std::sort(hot.begin(), hot.end(), [](const HotnessEntry* a, const HotnessEntry* b) {
    return a->hotness > b->hotness;
  });
  std::vector<MigrationOrder> orders;
  i64 budget = static_cast<i64>(config_.promote_batch_bytes.value());
  for (const HotnessEntry* e : hot) {
    if (budget <= 0) {
      break;
    }
    ComponentId cur = ComponentOf(ctx, *e);
    if (cur == kInvalidComponent || cur == dram) {
      continue;
    }
    orders.push_back(MigrationOrder{e->start, e->len, dram, 0, e->hotness});
    budget -= static_cast<i64>(e->len.value());
  }
  return orders;
}

}  // namespace mtm
