// String-keyed policy registry: every tiering policy — built-in heuristics
// and feature-driven plugins alike — is constructible by name through one
// factory, replacing the hand-wired switches in core/Solution and the
// tools. `--policy=<name>` anywhere resolves through this table, and
// out-of-tree code can RegisterPolicy its own plugin (examples/
// custom_policy.cpp) without touching the core.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/migration/policy.h"

namespace mtm {

// Construction knobs a factory may consume; unknown-to-a-policy fields are
// ignored. promote_batch_bytes is required by every shipped policy.
struct PolicyParams {
  Bytes promote_batch_bytes;
  // Score range for histogram-based policies; non-positive adapts to the
  // profiler's scale each interval (§9.3 ablations).
  double hotness_max = -1.0;
  u32 num_buckets = 16;
  double hot_threshold = 2.0;  // hemem
};

using PolicyFactory = std::function<std::unique_ptr<TieringPolicy>(const PolicyParams&)>;

// Registers `factory` under `name`, replacing any existing entry (latest
// wins, so tests and plugins can shadow built-ins).
void RegisterPolicy(const std::string& name, PolicyFactory factory);

// Constructs the policy registered under `name`; null for an unknown name.
std::unique_ptr<TieringPolicy> MakePolicy(const std::string& name, const PolicyParams& params);

bool IsKnownPolicy(const std::string& name);

// Every registered name (aliases included), sorted.
std::vector<std::string> KnownPolicyNames();

}  // namespace mtm
