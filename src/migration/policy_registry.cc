#include "src/migration/policy_registry.h"

#include <map>
#include <utility>

#include "src/migration/feature_policy.h"

namespace mtm {
namespace {

MtmPolicy::Config MtmConfigFrom(const PolicyParams& params) {
  MtmPolicy::Config config;
  config.promote_batch_bytes = params.promote_batch_bytes;
  config.num_buckets = params.num_buckets;
  config.hotness_max = params.hotness_max;
  return config;
}

// std::map keeps KnownPolicyNames() sorted without a second pass.
std::map<std::string, PolicyFactory>& Registry() {
  static auto* registry = [] {
    auto* r = new std::map<std::string, PolicyFactory>();
    auto mtm_factory = [](const PolicyParams& params) -> std::unique_ptr<TieringPolicy> {
      return std::make_unique<MtmPolicy>(MtmConfigFrom(params));
    };
    (*r)["mtm"] = mtm_factory;
    (*r)["mtm-policy"] = mtm_factory;  // alias: the policy's self-reported name
    auto autonuma_factory = [](const PolicyParams& params) -> std::unique_ptr<TieringPolicy> {
      return std::make_unique<AutoNumaPolicy>(
          AutoNumaPolicy::Config{params.promote_batch_bytes, /*patched=*/true});
    };
    (*r)["autonuma"] = autonuma_factory;
    (*r)["tiered-autonuma"] = autonuma_factory;
    auto vanilla_factory = [](const PolicyParams& params) -> std::unique_ptr<TieringPolicy> {
      return std::make_unique<AutoNumaPolicy>(
          AutoNumaPolicy::Config{params.promote_batch_bytes, /*patched=*/false});
    };
    (*r)["vanilla-autonuma"] = vanilla_factory;
    (*r)["vanilla-tiered-autonuma"] = vanilla_factory;
    (*r)["autotiering"] = [](const PolicyParams& params) -> std::unique_ptr<TieringPolicy> {
      return std::make_unique<AutoTieringPolicy>(
          AutoTieringPolicy::Config{params.promote_batch_bytes});
    };
    (*r)["hemem"] = [](const PolicyParams& params) -> std::unique_ptr<TieringPolicy> {
      return std::make_unique<HememPolicy>(
          HememPolicy::Config{params.promote_batch_bytes, params.hot_threshold});
    };
    (*r)["none"] = [](const PolicyParams&) -> std::unique_ptr<TieringPolicy> {
      return std::make_unique<NullPolicy>();
    };
    (*r)["mtm-feature"] = [](const PolicyParams& params) -> std::unique_ptr<TieringPolicy> {
      return std::make_unique<FeatureDrivenPolicy>(
          std::make_unique<MtmScorePolicy>(MtmConfigFrom(params)));
    };
    (*r)["logistic"] = [](const PolicyParams& params) -> std::unique_ptr<TieringPolicy> {
      // Logistic scores live in (0, 1): force the adaptive score range
      // regardless of the experiment's WHI-scale hotness_max.
      MtmPolicy::Config config = MtmConfigFrom(params);
      config.hotness_max = -1.0;
      return std::make_unique<FeatureDrivenPolicy>(std::make_unique<LogisticPolicy>(config));
    };
    return r;
  }();
  return *registry;
}

}  // namespace

void RegisterPolicy(const std::string& name, PolicyFactory factory) {
  Registry()[name] = std::move(factory);
}

std::unique_ptr<TieringPolicy> MakePolicy(const std::string& name, const PolicyParams& params) {
  auto& registry = Registry();
  auto it = registry.find(name);
  if (it == registry.end()) {
    return nullptr;
  }
  return it->second(params);
}

bool IsKnownPolicy(const std::string& name) { return Registry().count(name) > 0; }

std::vector<std::string> KnownPolicyNames() {
  std::vector<std::string> names;
  for (const auto& [name, factory] : Registry()) {
    names.push_back(name);
  }
  return names;
}

}  // namespace mtm
