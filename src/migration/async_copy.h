// Helper-thread copy engine for move_memory_regions (§7, DESIGN.md §14).
//
// The paper's mechanism wins because allocation and copy run on helper
// threads off the application's critical path. This engine makes that
// overlap real in the simulator instead of only modeling it analytically:
//
//   * when the migration engine arms a region, it snapshots one
//     PageCopyRecord per still-to-move page (address, size, source
//     component, payload word) and hands the snapshot to Begin();
//   * Begin() plans copy shards over the snapshot — contiguous record
//     slices that break only at 2 MiB huge-page boundaries — and dispatches
//     them to the shared ThreadPool as a detached batch, returning
//     immediately while the simulation loop keeps executing accesses;
//   * each shard worker performs the actual copy work: it expands every
//     page's payload into its cache lines and folds them into a per-shard
//     checksum slot (task-indexed, so any worker may run any shard);
//   * Join() blocks until the batch is done and merges the shard slots in
//     shard order, so the region checksum is a pure function of the
//     snapshot — independent of thread count and scheduling;
//   * Cancel() joins and discards, for the §7.2 write-fault fallback (the
//     staged pages are stale and "must be copied again") and for aborted
//     transactions.
//
// Determinism: workers read only the immutable snapshot and write only
// their own checksum slot. The live page table is never touched from a
// helper thread — the write-track fault in AccessEngine::Apply joins the
// batch *before* a simulated write can change page contents, so there is
// no host-side race by construction and every --migrate-threads value
// produces byte-identical simulation output.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/common/types.h"

namespace mtm {

// Snapshot of one still-to-move page, taken when the copy is staged.
struct PageCopyRecord {
  VirtAddr addr;
  Bytes size;                            // 4 KiB base or 2 MiB huge
  ComponentId src = kInvalidComponent;   // resident component at staging time
  u64 payload = 0;                       // simulated contents (Pte::payload)
};

// One helper-thread work unit: records [first, first + count) of a plan.
struct CopyShard {
  std::size_t first = 0;
  std::size_t count = 0;
  Bytes bytes;  // payload bytes covered by the shard
};

// Merged outcome of one region copy (shard-order fold of the shard slots).
struct RegionCopyResult {
  u64 checksum = 0;
  Bytes bytes;
  u64 shards = 0;
};

// Seed of every checksum fold (FNV-1a offset basis).
inline constexpr u64 kCopyChecksumSeed = 0xcbf29ce484222325ull;

// One non-commutative fold step: order changes the result, so a merge that
// ignores shard order (or drops a shard) is detectable.
inline constexpr u64 FoldCopyChecksum(u64 acc, u64 piece) {
  return (acc ^ piece) * 0x100000001b3ull;
}

// The actual per-page copy work: expands the page's payload word into its
// cache lines and returns their folded checksum. Pure function of the
// record, so any thread may execute it for any page.
u64 CopyPageContent(const PageCopyRecord& page);

// Plans shards over `pages` (which ForEachMapping produced in address
// order): contiguous slices of at least `target_shard_bytes`, with
// boundaries only where the next record starts a new 2 MiB huge frame —
// the clean-break rule that keeps a huge page's base-page remnants in one
// shard. Deterministic and independent of thread count.
std::vector<CopyShard> PlanCopyShards(const std::vector<PageCopyRecord>& pages,
                                      Bytes target_shard_bytes);

class AsyncCopyEngine {
 public:
  // Identifies one in-flight region copy between Begin and Join/Cancel.
  using Ticket = u64;

  // num_threads counts the caller (ThreadPool semantics): <= 1 runs every
  // copy inline at Begin() and spawns no threads. target_shard_bytes of
  // zero selects the default granularity (one huge frame per shard).
  explicit AsyncCopyEngine(u32 num_threads, Bytes target_shard_bytes = Bytes{});

  // Stages the copy of one region and dispatches its shards. The snapshot
  // is owned by the engine until Join/Cancel.
  Ticket Begin(std::vector<PageCopyRecord> pages);

  // Joins the batch and returns the merged result (shard-order fold).
  RegionCopyResult Join(Ticket ticket);

  // Joins the batch and discards the staged copy (write-fault fallback or
  // aborted transaction).
  void Cancel(Ticket ticket);

  u32 num_threads() const { return num_threads_; }
  Bytes target_shard_bytes() const { return target_shard_bytes_; }
  std::size_t in_flight() const { return inflight_.size(); }

 private:
  struct Inflight {
    std::vector<PageCopyRecord> pages;
    std::vector<CopyShard> shards;
    std::vector<u64> shard_checksums;  // task-indexed result slots
    ThreadPool::JobId job = 0;
  };

  const u32 num_threads_;
  const Bytes target_shard_bytes_;
  // Node-based map: worker lambdas hold pointers into their entry, which
  // stay valid while other tickets are inserted and erased.
  std::map<Ticket, Inflight> inflight_;
  Ticket next_ticket_ = 1;
  // Declared last so it is destroyed first: the pool's destructor joins the
  // workers before the snapshots they read are torn down.
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads <= 1
};

}  // namespace mtm
