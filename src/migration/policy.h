// Tiering policies: given a profiler's hotness view, decide which extents
// move where (§6).
#pragma once

#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/mem/frame_allocator.h"
#include "src/migration/admission/admission.h"
#include "src/migration/migration_engine.h"
#include "src/profiling/profiler.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"

namespace mtm {

struct PolicyContext {
  const Machine* machine = nullptr;
  PageTable* page_table = nullptr;
  FrameAllocator* frames = nullptr;
  // Decision-time signals for feature-driven policies (src/migration/
  // features.h). The driver fills them every interval; standalone callers
  // may leave them null/zero — feature builders degrade gracefully.
  const MigrationHistory* history = nullptr;  // per-region migration history
  SimNanos now;          // simulated time of this decision
  SimNanos interval_ns;  // profiling-interval length (recency normalization)
};

class TieringPolicy {
 public:
  virtual ~TieringPolicy() = default;
  virtual std::string name() const = 0;

  // Returns orders in execution sequence (demotions that make room come
  // before the promotions that need it).
  virtual std::vector<MigrationOrder> Decide(const ProfileOutput& profile,
                                             PolicyContext& ctx) = 0;
};

// No migration at all (first-touch NUMA, HMC).
class NullPolicy : public TieringPolicy {
 public:
  std::string name() const override { return "none"; }
  std::vector<MigrationOrder> Decide(const ProfileOutput&, PolicyContext&) override {
    return {};
  }
};

// MTM's policy (§6): histogram over the per-region WHI; fast promotion
// (hottest regions anywhere go straight to the fastest tier of their
// dominant socket's view, up to promote_batch_bytes per interval) and slow
// demotion (colder-than-incoming regions step down one tier with space).
class MtmPolicy : public TieringPolicy {
 public:
  struct Config {
    Bytes promote_batch_bytes;  // required: N in §6.1 (200 MB on testbed)
    u32 num_buckets = 16;
    double hotness_max = 3.0;  // WHI range is [0, num_scans]
    double min_hotness = 1e-9;  // never promote stone-cold regions
  };

  explicit MtmPolicy(Config config) : config_(config) {}
  std::string name() const override { return "mtm-policy"; }
  std::vector<MigrationOrder> Decide(const ProfileOutput& profile, PolicyContext& ctx) override;

 private:
  Config config_;
};

// The fast-promotion / slow-demotion core of MtmPolicy::Decide, driven by an
// explicit per-entry score vector (`scores[i]` ranks `profile.entries[i]`;
// higher promotes first, colder demotes first). MtmPolicy passes the raw WHI
// as the score; feature-driven policies (src/migration/feature_policy.h)
// substitute any fitted scorer and inherit the same histogram thresholds,
// make-room hysteresis, and huge-page slicing. With scores equal to the
// entry hotness this is byte-identical to the pre-refactor MtmPolicy.
// `scores.size()` must equal `profile.entries.size()`.
std::vector<MigrationOrder> DecideByScore(const ProfileOutput& profile,
                                          const std::vector<double>& scores, PolicyContext& ctx,
                                          const MtmPolicy::Config& config);

// Tiered-AutoNUMA policy: pages promote one tier at a time toward the
// faulting socket's faster memory. Vanilla uses the binary two-touch
// signal in arrival order; patched ranks by MFU fault count with the
// threshold auto-adjusted to the promotion budget.
class AutoNumaPolicy : public TieringPolicy {
 public:
  struct Config {
    Bytes promote_batch_bytes;  // required
    bool patched = true;
  };

  explicit AutoNumaPolicy(Config config) : config_(config) {}
  std::string name() const override {
    return config_.patched ? "tiered-autonuma" : "vanilla-tiered-autonuma";
  }
  std::vector<MigrationOrder> Decide(const ProfileOutput& profile, PolicyContext& ctx) override;

 private:
  Config config_;
};

// AutoTiering policy: opportunistic promotion of any sampled-hot chunk
// directly to the fastest tier with free space; no hotness ranking.
class AutoTieringPolicy : public TieringPolicy {
 public:
  struct Config {
    Bytes promote_batch_bytes;  // required
  };

  explicit AutoTieringPolicy(Config config) : config_(config) {}
  std::string name() const override { return "autotiering"; }
  std::vector<MigrationOrder> Decide(const ProfileOutput& profile, PolicyContext& ctx) override;

 private:
  Config config_;
};

// HeMem policy (two tiers): PEBS-hot pages promote to DRAM; eviction under
// pressure is reclaim-based demotion of inactive pages.
class HememPolicy : public TieringPolicy {
 public:
  struct Config {
    Bytes promote_batch_bytes;  // required
    double hot_threshold = 2.0;
  };

  explicit HememPolicy(Config config) : config_(config) {}
  std::string name() const override { return "hemem"; }
  std::vector<MigrationOrder> Decide(const ProfileOutput& profile, PolicyContext& ctx) override;

 private:
  Config config_;
};

}  // namespace mtm
