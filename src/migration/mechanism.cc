#include "src/migration/mechanism.h"

#include "src/common/units.h"
#include "src/sim/machine.h"

namespace mtm {

const char* MechanismKindName(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::kMovePages:
      return "move_pages";
    case MechanismKind::kNimble:
      return "nimble";
    case MechanismKind::kMoveMemoryRegions:
      return "move_memory_regions";
    case MechanismKind::kMmrSync:
      return "move_memory_regions(sync)";
  }
  return "?";
}

MechanismCost ComputeMechanismCost(MechanismKind kind, const MigrationCostModel& model,
                                   const Machine& machine, u32 socket, ComponentId src,
                                   ComponentId dst, u64 base_pages, u64 huge_pages) {
  MechanismCost cost;
  const Bytes bytes = PagesToBytes(base_pages) + HugePagesToBytes(huge_pages);

  switch (kind) {
    case MechanismKind::kMovePages: {
      // Huge pages are split and moved as base pages, sequentially.
      u64 pages = base_pages + huge_pages * kPagesPerHugePage;
      cost.critical.allocate_ns = pages * model.alloc_per_page_ns;
      cost.critical.unmap_remap_ns =
          pages * (model.unmap_per_page_ns + model.remap_per_page_ns);
      cost.critical.copy_ns = model.CopyNs(machine, socket, src, dst, bytes);
      break;
    }
    case MechanismKind::kNimble: {
      // THP migrated natively; copies parallelized across kernel threads.
      cost.critical.allocate_ns = base_pages * model.alloc_per_page_ns +
                                  huge_pages * model.huge_op_per_page_ns / 3;
      cost.critical.unmap_remap_ns =
          base_pages * (model.unmap_per_page_ns + model.remap_per_page_ns) +
          huge_pages * model.huge_op_per_page_ns * 2 / 3;
      cost.critical.copy_ns =
          model.CopyNs(machine, socket, src, dst, bytes, model.copy_parallelism);
      break;
    }
    case MechanismKind::kMoveMemoryRegions:
    case MechanismKind::kMmrSync: {
      u64 pte_pages = base_pages + huge_pages;  // one PTE/PDE per mapping
      double batch = model.mmr_pte_batch_factor;
      cost.critical.unmap_remap_ns = NanosFromDouble(
          static_cast<double>(pte_pages) *
          static_cast<double>((model.unmap_per_page_ns + model.remap_per_page_ns).value()) *
          batch);
      cost.critical.page_table_ns = model.pt_page_move_ns;
      cost.critical.dirty_tracking_ns =
          model.tlb_flush_ns + pte_pages * model.write_track_arm_per_page_ns;
      SimNanos alloc = NanosFromDouble(
          static_cast<double>(base_pages) * static_cast<double>(model.alloc_per_page_ns.value()) *
              batch +
          static_cast<double>(huge_pages) * static_cast<double>(model.huge_op_per_page_ns.value()) /
              3);
      SimNanos copy = model.CopyNs(machine, socket, src, dst, bytes, model.copy_parallelism);
      if (kind == MechanismKind::kMoveMemoryRegions) {
        cost.background.allocate_ns = alloc;
        cost.background.copy_ns = copy;
      } else {
        cost.critical.allocate_ns = alloc;
        cost.critical.copy_ns = copy;
        cost.critical.dirty_tracking_ns = SimNanos{};  // sync copy needs no tracking
      }
      break;
    }
  }
  return cost;
}

}  // namespace mtm
