#include "src/migration/migration_engine.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/strong_types.h"
#include "src/common/units.h"
#include "src/migration/cost_model.h"
#include "src/obs/metric_id.h"

namespace mtm {

MigrationEngine::MigrationEngine(const Machine& machine, PageTable& page_table,
                                 FrameAllocator& frames, const AddressSpace& address_space,
                                 MemCounters& counters, SimClock& clock, MechanismKind kind,
                                 MigrationCostModel model)
    : machine_(machine),
      page_table_(page_table),
      frames_(frames),
      address_space_(address_space),
      counters_(counters),
      clock_(clock),
      kind_(kind),
      model_(model) {
  if (MechanismUsesAsyncCopy(kind_)) {
    copy_engine_ = std::make_unique<AsyncCopyEngine>(migrate_threads_);
  }
}

void MigrationEngine::set_migrate_threads(u32 num_threads) {
  MTM_CHECK(pending_.empty()) << "set_migrate_threads with copies in flight";
  migrate_threads_ = num_threads == 0 ? 1 : num_threads;
  if (MechanismUsesAsyncCopy(kind_)) {
    copy_engine_ = std::make_unique<AsyncCopyEngine>(migrate_threads_);
  }
}

MechanismCost MigrationEngine::PlanCost(const MigrationOrder& order, MechanismKind kind,
                                        Bytes* bytes_out, ComponentId* src_out) {
  // Group the range's mappings by source component.
  struct Run {
    ComponentId src = kInvalidComponent;
    u64 base_pages = 0;
    u64 huge_pages = 0;
  };
  std::vector<Run> runs;
  Bytes bytes;
  page_table_.ForEachMapping(order.start, order.len, [&](VirtAddr, Bytes size, Pte& pte) {
    if (pte.component == order.dst) {
      return;  // already resident
    }
    auto it = std::find_if(runs.begin(), runs.end(),
                           [&](const Run& r) { return r.src == pte.component; });
    if (it == runs.end()) {
      runs.push_back(Run{pte.component, 0, 0});
      it = std::prev(runs.end());
    }
    if (size == kHugePageBytes) {
      ++it->huge_pages;
    } else {
      ++it->base_pages;
    }
    bytes += size;
  });
  MechanismCost total;
  for (const Run& r : runs) {
    MechanismCost c = ComputeMechanismCost(kind, model_, machine_, order.socket, r.src,
                                           order.dst, r.base_pages, r.huge_pages);
    total.critical += c.critical;
    total.background += c.background;
  }
  if (bytes_out != nullptr) {
    *bytes_out = bytes;
  }
  if (src_out != nullptr) {
    *src_out = runs.empty() ? kInvalidComponent : runs.front().src;
  }
  return total;
}

bool MigrationEngine::IsPromotion(const MigrationOrder& order, ComponentId src) const {
  if (src == kInvalidComponent || order.dst >= machine_.end_component()) {
    return false;
  }
  return machine_.TierRank(order.socket, order.dst) < machine_.TierRank(order.socket, src);
}

void MigrationEngine::RecordHistory(const MigrationOrder& order, ComponentId src, Bytes moved) {
  if (moved.IsZero() || src == kInvalidComponent) {
    return;
  }
  // Book every huge region the order covers, not just the first: reclaim
  // records demotions at region granularity, so the promote side must match
  // or re-promotions of the later regions in a span would escape the
  // ping-pong accounting (and the ppt gate that reads it).
  const bool is_promotion = IsPromotion(order, src);
  const VirtAddr end = order.start + order.len;
  for (VirtAddr r = HugeAlignDown(order.start); r < end; r += kHugePageBytes) {
    const VirtAddr seg_begin = std::max(r, order.start);
    const VirtAddr seg_end = std::min(r + kHugePageBytes, end);
    const Bytes seg(seg_end - seg_begin);
    MigrationHistory::Outcome out = history_.RecordMove(r, is_promotion, seg, clock_.now());
    if (out.flipped) {
      ++admission_stats_.flip_moves;
      admission_stats_.flip_bytes += seg;
    }
  }
}

bool MigrationEngine::ReclaimFrom(ComponentId component, Bytes bytes_needed, int depth) {
  if (depth > static_cast<int>(machine_.num_components())) {
    return false;
  }
  if (reclaim_cursor_.size() < machine_.num_components()) {
    reclaim_cursor_.assign(machine_.num_components(), VirtAddr{});
  }
  // Demotion target: the next lower tier with space, from the view of the
  // component's home socket (§6.2 "slow demotion").
  u32 home = machine_.component(component).home_socket;
  const auto& order = machine_.TierOrder(home);
  u32 rank = machine_.TierRank(home, component).value();

  // Like kswapd, free a batch beyond the immediate need so back-to-back
  // small promotions don't each pay a full victim scan.
  const Bytes target = std::max(bytes_needed, 2 * kHugePageBytes);

  // Two victim passes: inactive (accessed-bit clear) pages first, then any.
  // The per-component clock hand resumes where the last scan stopped, so
  // repeatedly reclaimed components rotate victims instead of always
  // evicting the lowest addresses.
  u32 hopeless_lower = 0;  // bitmask of lower tiers whose reclaim failed
  for (int pass = 0; pass < 2 && frames_.free_bytes(component) < target; ++pass) {
    const auto& vmas = address_space_.vmas();
    if (vmas.empty()) {
      break;
    }
    std::size_t start_vma = 0;
    for (std::size_t v = 0; v < vmas.size(); ++v) {
      if (vmas[v].Contains(reclaim_cursor_[component])) {
        start_vma = v;
        break;
      }
    }
    for (std::size_t step = 0; step <= vmas.size(); ++step) {
      if (frames_.free_bytes(component) >= target) {
        break;
      }
      const Vma& vma = vmas[(start_vma + step) % vmas.size()];
      VirtAddr begin = vma.start;
      Bytes len = vma.len;
      if (step == 0 && vma.Contains(reclaim_cursor_[component])) {
        begin = reclaim_cursor_[component];
        len = Bytes(vma.end() - begin);
      } else if (step == vmas.size()) {
        // Wrapped: rescan the head of the cursor VMA.
        len = reclaim_cursor_[component] > vma.start
                  ? Bytes(reclaim_cursor_[component] - vma.start)
                  : Bytes{};
        if (len.IsZero()) {
          break;
        }
      }
      page_table_.ForEachMapping(begin, len, [&](VirtAddr addr, Bytes size, Pte& pte) {
        if (frames_.free_bytes(component) >= target) {
          return;
        }
        if (pte.component != component) {
          return;
        }
        if (pass == 0 && pte.accessed()) {
          return;  // keep active pages in the first pass
        }
        // Find a lower tier with room, cascading reclaim once if needed.
        // Only strictly slower classes are demotion targets (DRAM -> PM).
        for (u32 r = rank + 1; r < order.size(); ++r) {
          ComponentId lower = order[r];
          if (!machine_.IsSlowerClass(component, lower)) {
            continue;
          }
          if (machine_.IsOffline(lower)) {
            continue;  // never demote onto a dead device
          }
          if (hopeless_lower & (1u << lower.value())) {
            continue;  // cascading reclaim already failed there this scan
          }
          if (frames_.free_bytes(lower) < size && !ReclaimFrom(lower, size, depth + 1)) {
            hopeless_lower |= 1u << lower.value();
            continue;
          }
          if (!frames_.Reserve(lower, size).ok()) {
            continue;
          }
          // Demotion is a synchronous kernel move; charge its cost.
          MechanismKind k =
              kind_ == MechanismKind::kMoveMemoryRegions ? MechanismKind::kMmrSync : kind_;
          u64 base = size == kHugePageBytes ? 0 : 1;
          u64 huge = size == kHugePageBytes ? 1 : 0;
          MechanismCost c =
              ComputeMechanismCost(k, model_, machine_, home, component, lower, base, huge);
          clock_.AdvanceMigration(c.CriticalNs());
          stats_.critical_ns += c.CriticalNs();
          stats_.steps += c.critical;
          frames_.Release(component, size);
          pte.component = lower;
          RecordMigrationBytes(component, size);
          RecordMigrationBytes(lower, size);
          ++stats_.reclaim_demotions;
          stats_.bytes_migrated += size;
          // Reclaim bypasses the admission gate (it relieves pressure), but
          // it IS the demote half of every ping-pong cycle, so it must be
          // booked into the history for re-promotion throttling to see it.
          MigrationHistory::Outcome hist =
              history_.RecordMove(addr, /*is_promotion=*/false, size, clock_.now());
          if (hist.flipped) {
            ++admission_stats_.flip_moves;
            admission_stats_.flip_bytes += size;
          }
          reclaim_cursor_[component] = addr + size;
          return;
        }
      });
    }
  }
  page_table_.BumpGeneration();
  return frames_.free_bytes(component) >= bytes_needed;
}

MigrationEngine::CommitOutcome MigrationEngine::CommitMove(const MigrationOrder& order) {
  CommitOutcome out;
  bool reclaim_hopeless = false;  // don't rescan for every page of the range
  page_table_.ForEachMapping(order.start, order.len, [&](VirtAddr, Bytes size, Pte& pte) {
    if (pte.component == order.dst) {
      return;
    }
    if (injector_ != nullptr && injector_->ShouldFail(FaultSite::kAllocation)) {
      // Transient destination-frame allocation failure: the page is skipped
      // this attempt and retried with the rest of the order.
      ++stats_.injected_alloc_failures;
      out.failed_transient += size;
      return;
    }
    if (frames_.free_bytes(order.dst) < size) {
      if (reclaim_hopeless || !ReclaimFrom(order.dst, size, /*depth=*/0)) {
        reclaim_hopeless = true;
        out.failed_space += size;
        return;
      }
    }
    if (!frames_.Reserve(order.dst, size).ok()) {
      out.failed_space += size;
      return;
    }
    ComponentId src = pte.component;
    frames_.Release(src, size);
    pte.component = order.dst;
    pte.Clear(Pte::kWriteTracked);
    RecordMigrationBytes(src, size);
    RecordMigrationBytes(order.dst, size);
    out.moved += size;
  });
  page_table_.BumpGeneration();
  stats_.bytes_migrated += out.moved;
  stats_.bytes_failed += out.failed_space;
  if (!out.moved.IsZero()) {
    ++stats_.regions_migrated;
  }
  return out;
}

void MigrationEngine::ArmWriteTracking(const MigrationOrder& order) {
  page_table_.ArmWriteTracking(order.start, order.len);
}

void MigrationEngine::DisarmWriteTracking(const MigrationOrder& order) {
  page_table_.DisarmWriteTracking(order.start, order.len);
}

std::vector<PageCopyRecord> MigrationEngine::SnapshotCopyRecords(
    const MigrationOrder& order) const {
  std::vector<PageCopyRecord> records;
  const PageTable& pt = page_table_;
  pt.ForEachMapping(order.start, order.len, [&](VirtAddr addr, Bytes size, const Pte& pte) {
    if (pte.component == order.dst) {
      return;  // already resident: nothing to copy
    }
    records.push_back(PageCopyRecord{addr, size, pte.component, pte.payload});
  });
  return records;
}

void MigrationEngine::DiscardStagedCopy(Pending& p) {
  if (copy_engine_ != nullptr && p.copy_ticket != 0) {
    copy_engine_->Cancel(p.copy_ticket);
    p.copy_ticket = 0;
  }
}

void MigrationEngine::AttachObservability(Observability* obs) {
  obs_ = obs;
  if (obs_ == nullptr) {
    return;
  }
  attempts_id_ = obs_->metrics.Counter("migration/attempts");
  commits_id_ = obs_->metrics.Counter("migration/commits");
  aborts_id_ = obs_->metrics.Counter("migration/aborts");
  retries_id_ = obs_->metrics.Counter("migration/retries");
  bytes_on_component_ids_ = IdMap<ComponentId, MetricId>();
  for (ComponentId c{0}; c < machine_.end_component(); ++c) {
    bytes_on_component_ids_.push_back(
        obs_->metrics.Counter("migration/bytes_on_c" + std::to_string(c.value())));
  }
}

void MigrationEngine::RecordMigrationBytes(ComponentId component, Bytes bytes) {
  counters_.CountMigrationBytes(component, bytes);
  if (obs_ != nullptr) {
    obs_->metrics.Add(bytes_on_component_ids_[component], bytes.value());
  }
}

void MigrationEngine::Bump(MetricId id, u64 delta) {
  if (obs_ != nullptr && delta != 0) {
    obs_->metrics.Add(id, delta);
  }
}

void MigrationEngine::EmitSpan(const char* span_name, SimNanos start, SimNanos duration) {
  if (obs_ != nullptr) {
    obs_->trace.AddSpan(span_name, "migration", start, duration);
  }
}

Status MigrationEngine::Submit(const MigrationOrder& order) {
  return SubmitAttempt(order, /*attempt=*/1);
}

void MigrationEngine::SubmitAll(const std::vector<MigrationOrder>& orders) {
  if (admission_ == nullptr) {
    for (const MigrationOrder& order : orders) {
      // mtm-analyze: allow(discarded-status) batch path; per-order outcomes land in stats_
      Submit(order);
    }
    return;
  }
  // Let the controller re-sequence the interval's batch before the
  // per-order gate; planning here is read-only (no cost charged, no
  // tracking armed), so a shed order leaves no trace.
  std::vector<AdmissionRequest> batch;
  batch.reserve(orders.size());
  for (const MigrationOrder& order : orders) {
    AdmissionRequest request;
    request.order = order;
    ComponentId src = kInvalidComponent;
    PlanCost(order, kind_, &request.bytes, &src);
    request.is_promotion = IsPromotion(order, src);
    request.now = clock_.now();
    batch.push_back(request);
  }
  admission_->Sequence(batch);
  for (const AdmissionRequest& request : batch) {
    // mtm-analyze: allow(discarded-status) batch path; per-order outcomes land in stats_
    Submit(request.order);
  }
}

void MigrationEngine::set_admission(AdmissionController* controller,
                                    const AdmissionTuning& tuning) {
  admission_ = controller;
  history_ = MigrationHistory(tuning);
  budget_ = AdmissionBudget{tuning.interval_budget_bytes, Bytes{}};
}

Bytes MigrationEngine::SplitLenForBudget(const MigrationOrder& order, Bytes admit_bytes) {
  // Per-huge-region to-move bytes, in address order (std::map).
  std::map<VirtAddr, Bytes> chunks;
  page_table_.ForEachMapping(order.start, order.len, [&](VirtAddr addr, Bytes size, Pte& pte) {
    if (pte.component == order.dst) {
      return;  // already resident: free to keep in the prefix
    }
    chunks[HugeAlignDown(addr)] += size;
  });
  VirtAddr split_end = order.start;
  Bytes moving;
  for (const auto& [chunk, bytes] : chunks) {
    if (moving + bytes > admit_bytes) {
      break;
    }
    moving += bytes;
    split_end = chunk + kHugePageBytes;
  }
  if (split_end <= order.start) {
    return Bytes{};
  }
  return std::min(order.len, Bytes(split_end - order.start));
}

Status MigrationEngine::SubmitAttempt(const MigrationOrder& submitted, u32 attempt) {
  MigrationOrder order = submitted;
  if (order.len.IsZero()) {
    return InvalidArgumentError("zero-length migration order");
  }
  if (order.dst >= machine_.end_component()) {
    return InvalidArgumentError("migration order targets unknown component");
  }
  if (machine_.IsOffline(order.dst)) {
    return UnavailableError("migration target offline: " + machine_.component(order.dst).name);
  }
  // Drop orders overlapping an in-flight async move.
  for (const Pending& p : pending_) {
    if (order.start < p.order.start + p.order.len.value() &&
        p.order.start < order.start + order.len) {
      return AlreadyExistsError("order overlaps an in-flight migration");
    }
  }
  Bytes bytes;
  ComponentId src = kInvalidComponent;
  MechanismCost cost = PlanCost(order, kind_, &bytes, &src);
  if (bytes.IsZero()) {
    return OkStatus();  // already fully resident on dst
  }
  const bool is_promotion = IsPromotion(order, src);
  if (admission_ != nullptr) {
    AdmissionRequest request{order, bytes, is_promotion, attempt, clock_.now()};
    AdmissionDecision decision = admission_->DecideOrder(request, history_, budget_);
    if (decision.verdict == AdmissionVerdict::kAdmit && !decision.admit_bytes.IsZero() &&
        decision.admit_bytes < bytes) {
      // Partial admission: truncate to the largest huge-aligned prefix that
      // fits the granted bytes and shed the rest as rejected. The truncated
      // order re-plans so every downstream cost and byte count matches what
      // actually moves.
      const Bytes split_len = SplitLenForBudget(order, decision.admit_bytes);
      if (split_len.IsZero()) {
        decision.verdict = AdmissionVerdict::kReject;
      } else {
        order.len = split_len;
        const Bytes whole = bytes;
        cost = PlanCost(order, kind_, &bytes, &src);
        ++admission_stats_.split_orders;
        admission_stats_.split_shed_bytes += whole - bytes;
        ++admission_stats_.rejected;
        admission_stats_.rejected_bytes += whole - bytes;
      }
    }
    switch (decision.verdict) {
      case AdmissionVerdict::kAdmit:
        ++admission_stats_.admitted;
        admission_stats_.admitted_bytes += bytes;
        // Only promotions draw on the budget: demotions relieve pressure
        // and blocking them would turn ping-pong into tier overflow.
        if (is_promotion) {
          budget_.admitted_bytes += bytes;
        }
        break;
      case AdmissionVerdict::kDefer:
        // Dropped, not queued: the next interval's policy decision re-derives
        // the order if the region is still worth moving.
        ++admission_stats_.deferred;
        admission_stats_.deferred_bytes += bytes;
        return FailedPreconditionError("admission deferred order");
      case AdmissionVerdict::kReject:
        ++admission_stats_.rejected;
        admission_stats_.rejected_bytes += bytes;
        return ResourceExhaustedError("admission rejected order");
    }
  }
  Bump(attempts_id_);

  if (kind_ != MechanismKind::kMoveMemoryRegions) {
    // Fully synchronous mechanisms: charge and commit now.
    const SimNanos span_start = clock_.now();
    clock_.AdvanceMigration(cost.CriticalNs());
    stats_.critical_ns += cost.CriticalNs();
    stats_.steps += cost.critical;
    if (injector_ != nullptr && injector_->ShouldFail(FaultSite::kMigrationCopy)) {
      // The copy failed after its cost was spent. Nothing was remapped yet,
      // so the rollback leaves sources mapped and frame accounting intact.
      ++stats_.injected_copy_failures;
      ++stats_.rollbacks;
      HandleAbort(order, attempt);
      return UnavailableError("injected copy failure");
    }
    if (injector_ != nullptr && injector_->ShouldFail(FaultSite::kMigrationRemap)) {
      ++stats_.injected_remap_failures;
      ++stats_.rollbacks;
      HandleAbort(order, attempt);
      return UnavailableError("injected remap failure");
    }
    CommitOutcome out = CommitMove(order);
    RecordHistory(order, src, out.moved);
    EmitSpan("migrate", span_start, cost.CriticalNs());
    if (!out.failed_transient.IsZero()) {
      HandleAbort(order, attempt);
      if (out.moved.IsZero()) {
        return UnavailableError("transient allocation failure; retry queued");
      }
    }
    Bump(commits_id_);
    return OkStatus();
  }

  // move_memory_regions: arm dirty tracking now (TLB flushed once), copy in
  // the background, finalize at the deadline.
  const SimNanos arm_start = clock_.now();
  clock_.AdvanceMigration(cost.critical.dirty_tracking_ns);
  stats_.critical_ns += cost.critical.dirty_tracking_ns;
  stats_.steps.dirty_tracking_ns += cost.critical.dirty_tracking_ns;
  ArmWriteTracking(order);
  EmitSpan("migrate_arm", arm_start, cost.critical.dirty_tracking_ns);

  Pending p;
  p.order = order;
  p.submitted_at = clock_.now();
  p.background_ns = cost.BackgroundNs();
  p.complete_at = clock_.now() + p.background_ns;
  p.cost = cost;
  p.attempt = attempt;
  if (copy_engine_ != nullptr) {
    // Stage the real copy: snapshot the still-to-move pages while the arming
    // TLB flush is fresh and dispatch the shards to the helper threads. The
    // write-track fault is the join point, so no simulated write can change
    // a page between this snapshot and the copy's commit.
    p.copy_ticket = copy_engine_->Begin(SnapshotCopyRecords(order));
  }
  if (obs_ != nullptr && obs_->async_flows) {
    p.flow_id = next_flow_id_++;
    obs_->trace.AddFlowStart("migrate_window", "migration", p.flow_id, arm_start);
  }
  pending_.push_back(p);
  return OkStatus();
}

void MigrationEngine::FinishPending(std::size_t index, bool forced_sync,
                                    double remaining_fraction) {
  Pending p = pending_[index];
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(index));

  SimNanos exposed = p.cost.critical.unmap_remap_ns + p.cost.critical.page_table_ns;
  stats_.steps.unmap_remap_ns += p.cost.critical.unmap_remap_ns;
  stats_.steps.page_table_ns += p.cost.critical.page_table_ns;
  if (forced_sync) {
    // The write-protect fault switched this region to synchronous copy.
    // Pages copied so far are stale and "must be copied again" (§7.2): the
    // full copy lands on the critical path, and the fallback goes through
    // the regular per-page kernel migration path, losing the batched-PTE
    // advantage — write-intensive migrations perform like move_pages().
    SimNanos unbatched_extra = NanosFromDouble(
        static_cast<double>(p.cost.critical.unmap_remap_ns.value()) *
        (1.0 / model_.mmr_pte_batch_factor - 1.0));
    exposed += p.background_ns + unbatched_extra;
    stats_.steps.copy_ns += p.background_ns;
    stats_.steps.unmap_remap_ns += unbatched_extra;
    ++stats_.sync_fallbacks;
    (void)remaining_fraction;
    // The staged pages are stale the moment the tracked write lands:
    // discard the helper-thread copy; the commit path below re-reads the
    // live contents serially.
    DiscardStagedCopy(p);
    DisarmWriteTracking(p.order);
  } else {
    stats_.background_ns += p.background_ns;
    stats_.steps.allocate_ns += SimNanos{};  // async allocation is off the critical path
    EmitSpan("migrate_copy_async", p.submitted_at, p.background_ns);
  }
  const SimNanos finish_start = clock_.now();
  clock_.AdvanceMigration(exposed);
  stats_.critical_ns += exposed;
  EmitSpan(forced_sync ? "migrate_finish_sync" : "migrate_finish", finish_start, exposed);
  if (p.flow_id != 0 && obs_ != nullptr) {
    // Close the async-flow arrow inside the finish span just emitted.
    obs_->trace.AddFlowEnd("migrate_window", "migration", p.flow_id, finish_start);
  }

  if (injector_ != nullptr) {
    // The finalize step is where an async attempt can die: the device lost
    // the copy, the remap failed, or the target went offline mid-flight.
    // All three roll back identically — staged copy discarded, tracking
    // disarmed, no page moved.
    if (machine_.IsOffline(p.order.dst)) {
      DiscardStagedCopy(p);
      DisarmWriteTracking(p.order);
      ++stats_.rollbacks;
      ++stats_.orders_abandoned;  // offline is permanent: no retry
      Bytes remaining;
      PlanCost(p.order, kind_, &remaining);
      stats_.bytes_abandoned += remaining;
      return;
    }
    if (injector_->ShouldFail(FaultSite::kMigrationCopy)) {
      DiscardStagedCopy(p);
      DisarmWriteTracking(p.order);
      ++stats_.injected_copy_failures;
      ++stats_.rollbacks;
      HandleAbort(p.order, p.attempt);
      return;
    }
    if (injector_->ShouldFail(FaultSite::kMigrationRemap)) {
      DiscardStagedCopy(p);
      DisarmWriteTracking(p.order);
      ++stats_.injected_remap_failures;
      ++stats_.rollbacks;
      HandleAbort(p.order, p.attempt);
      return;
    }
  }
  Bytes still_to_move;
  ComponentId src = kInvalidComponent;
  PlanCost(p.order, kind_, &still_to_move, &src);
  if (copy_engine_ != nullptr) {
    if (forced_sync) {
      // §7.2 synchronous re-copy: the committed contents are re-read from
      // the live payloads on the critical path (charged above), so the
      // post-write values land on the destination — no lost updates.
      u64 checksum = kCopyChecksumSeed;
      Bytes resynced;
      for (const PageCopyRecord& rec : SnapshotCopyRecords(p.order)) {
        checksum = FoldCopyChecksum(checksum, CopyPageContent(rec));
        resynced += rec.size;
      }
      stats_.copy_checksum = FoldCopyChecksum(stats_.copy_checksum, checksum);
      stats_.fallback_copy_bytes += resynced;
    } else if (p.copy_ticket != 0) {
      // Commit from the staged helper-thread copy: join the batch and fold
      // its region checksum. No write hit the window (the fault would have
      // forced sync), so the snapshot still matches the live contents.
      RegionCopyResult staged = copy_engine_->Join(p.copy_ticket);
      p.copy_ticket = 0;
      stats_.copy_checksum = FoldCopyChecksum(stats_.copy_checksum, staged.checksum);
      stats_.async_copy_bytes += staged.bytes;
      stats_.copy_shards += staged.shards;
      ++stats_.async_copies;
    }
  }
  CommitOutcome out = CommitMove(p.order);
  RecordHistory(p.order, src, out.moved);
  if (!out.failed_transient.IsZero()) {
    HandleAbort(p.order, p.attempt);
  } else {
    Bump(commits_id_);
  }
}

void MigrationEngine::HandleAbort(const MigrationOrder& order, u32 attempt) {
  Bump(aborts_id_);
  Bytes remaining;
  PlanCost(order, kind_, &remaining);  // bytes still off the target
  u32 aborts = ++interval_aborts_[order.start];
  if (aborts >= retry_policy_.thrash_abort_limit) {
    // Thrash guard: this region keeps aborting inside one interval window
    // (a write storm or a flapping device); stop burning migration
    // bandwidth on it until the next interval's policy decision.
    ++stats_.thrash_aborts;
    ++stats_.orders_abandoned;
    stats_.bytes_abandoned += remaining;
    return;
  }
  if (attempt >= retry_policy_.max_attempts) {
    ++stats_.orders_abandoned;
    stats_.bytes_abandoned += remaining;
    return;
  }
  // initial_backoff_ns << (attempt - 1), saturating at max_backoff_ns: the
  // shifted-out comparison detects overflow without a doubling loop.
  const u64 initial = retry_policy_.initial_backoff_ns.value();
  const u64 max = retry_policy_.max_backoff_ns.value();
  const u32 shift = attempt - 1;
  SimNanos backoff = SimNanos(max);
  if (initial != 0 && shift < 64 && initial <= (max >> shift)) {
    backoff = SimNanos(initial << shift);
  } else if (initial == 0) {
    backoff = SimNanos{};
  }
  retry_queue_.push_back(RetryEntry{order, attempt + 1, clock_.now() + backoff});
}

void MigrationEngine::ProcessRetries() {
  if (retry_queue_.empty()) {
    return;
  }
  // One pass over the entries present at entry; resubmitted orders that
  // abort again re-queue behind them with a later deadline and are seen
  // next Poll, so this cannot loop.
  std::size_t n = retry_queue_.size();
  for (std::size_t i = 0; i < n && !retry_queue_.empty(); ++i) {
    RetryEntry e = retry_queue_.front();
    retry_queue_.pop_front();
    if (e.ready_at > clock_.now()) {
      retry_queue_.push_back(e);  // still backing off; rotate past it
      continue;
    }
    ++stats_.retries;
    Bump(retries_id_);
    // mtm-analyze: allow(discarded-status) retry outcome is tracked via stats_/retry_queue_
    SubmitAttempt(e.order, e.attempt);
  }
}

void MigrationEngine::BeginInterval() {
  interval_aborts_.clear();
  history_.EndInterval();
  budget_.admitted_bytes = Bytes{};
  if (admission_ != nullptr) {
    admission_->BeginInterval(clock_.now(), budget_);
  }
}

void MigrationEngine::Poll() {
  for (std::size_t i = 0; i < pending_.size();) {
    if (pending_[i].complete_at <= clock_.now()) {
      FinishPending(i, /*forced_sync=*/false, 0.0);
      // FinishPending erased element i; stay at the same index.
    } else {
      ++i;
    }
  }
  ProcessRetries();
}

void MigrationEngine::Flush() {
  while (!pending_.empty()) {
    FinishPending(0, /*forced_sync=*/false, 0.0);
  }
  // Run down the retry backlog ignoring backoff deadlines: each attempt
  // either commits, re-queues with a higher attempt number (bounded by
  // max_attempts and the thrash guard), or is abandoned.
  while (!retry_queue_.empty()) {
    RetryEntry e = retry_queue_.front();
    retry_queue_.pop_front();
    ++stats_.retries;
    Bump(retries_id_);
    // mtm-analyze: allow(discarded-status) retry outcome is tracked via stats_/retry_queue_
    SubmitAttempt(e.order, e.attempt);
    while (!pending_.empty()) {
      FinishPending(0, /*forced_sync=*/false, 0.0);
    }
  }
}

void MigrationEngine::OnWriteTrackFault(VirtAddr addr, u32 /*socket*/) {
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const Pending& p = pending_[i];
    if (addr >= p.order.start && addr < p.order.start + p.order.len.value()) {
      double elapsed = static_cast<double>((clock_.now() - p.submitted_at).value());
      double remaining = p.background_ns.IsZero()
                             ? 0.0
                             : 1.0 - elapsed / static_cast<double>(p.background_ns.value());
      FinishPending(i, /*forced_sync=*/true, remaining);
      return;
    }
  }
}

void MigrationEngine::OnTierFault(const TierFaultEvent& event) {
  const ComponentId component = event.component;
  MTM_CHECK_LT(component.value(), machine_.num_components());
  if (!event.offline) {
    return;  // bandwidth derates only change costs; the Machine holds them
  }
  // Roll back in-flight orders targeting the dead component.
  for (std::size_t i = 0; i < pending_.size();) {
    if (pending_[i].order.dst == component) {
      Pending p = pending_[i];
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      DiscardStagedCopy(p);
      DisarmWriteTracking(p.order);
      ++stats_.rollbacks;
      ++stats_.orders_abandoned;  // offline is permanent: no retry
      Bytes remaining;
      PlanCost(p.order, kind_, &remaining);
      stats_.bytes_abandoned += remaining;
    } else {
      ++i;
    }
  }
  // Abandon queued retries for it.
  for (auto it = retry_queue_.begin(); it != retry_queue_.end();) {
    if (it->order.dst == component) {
      ++stats_.orders_abandoned;
      it = retry_queue_.erase(it);
    } else {
      ++it;
    }
  }
  DrainComponent(component);
}

Bytes MigrationEngine::DrainComponent(ComponentId component) {
  Bytes drained;
  Bytes failed;
  const u32 home = machine_.component(component).home_socket;
  const auto& order = machine_.TierOrder(home);
  const u32 rank = machine_.TierRank(home, component).value();
  // Candidate targets from the home-socket view: next lower tiers first (a
  // dead slow device's pages should not crowd the fast tiers), then faster
  // tiers as a last resort.
  std::vector<ComponentId> targets;
  for (u32 r = rank + 1; r < order.size(); ++r) {
    targets.push_back(order[r]);
  }
  for (u32 r = rank; r > 0; --r) {
    targets.push_back(order[r - 1]);
  }
  // The drain is a synchronous kernel sweep, like reclaim demotion.
  const MechanismKind k =
      kind_ == MechanismKind::kMoveMemoryRegions ? MechanismKind::kMmrSync : kind_;
  for (const Vma& vma : address_space_.vmas()) {
    page_table_.ForEachMapping(vma.start, vma.len, [&](VirtAddr, Bytes size, Pte& pte) {
      if (pte.component != component) {
        return;
      }
      for (ComponentId dst : targets) {
        if (machine_.IsOffline(dst)) {
          continue;
        }
        if (frames_.free_bytes(dst) < size && !ReclaimFrom(dst, size, /*depth=*/0)) {
          continue;
        }
        if (!frames_.Reserve(dst, size).ok()) {
          continue;
        }
        u64 base = size == kHugePageBytes ? 0 : 1;
        u64 huge = size == kHugePageBytes ? 1 : 0;
        MechanismCost c =
            ComputeMechanismCost(k, model_, machine_, home, component, dst, base, huge);
        clock_.AdvanceMigration(c.CriticalNs());
        stats_.critical_ns += c.CriticalNs();
        stats_.steps += c.critical;
        frames_.Release(component, size);
        pte.component = dst;
        pte.Clear(Pte::kWriteTracked);
        RecordMigrationBytes(component, size);
        RecordMigrationBytes(dst, size);
        drained += size;
        return;
      }
      failed += size;
    });
  }
  page_table_.BumpGeneration();
  ++stats_.tier_drains;
  stats_.drained_bytes += drained;
  stats_.drain_failed_bytes += failed;
  return drained;
}

Status MigrationEngine::VerifyInvariants() const {
  if (frames_.total_used() != page_table_.mapped_bytes()) {
    return InternalError("frame accounting diverged from page table: used=" +
                         std::to_string(frames_.total_used().value()) +
                         " mapped=" + std::to_string(page_table_.mapped_bytes().value()));
  }
  IdMap<ComponentId, Bytes> resident(machine_.num_components());
  bool bad_component = false;
  const PageTable& pt = page_table_;
  for (const Vma& vma : address_space_.vmas()) {
    pt.ForEachMapping(vma.start, vma.len, [&](VirtAddr, Bytes size, const Pte& pte) {
      if (pte.component < machine_.end_component()) {
        resident[pte.component] += size;
      } else {
        bad_component = true;
      }
    });
  }
  if (bad_component) {
    return InternalError("mapped page references an unknown component");
  }
  for (ComponentId c{0}; c < machine_.end_component(); ++c) {
    if (resident[c] != frames_.used(c)) {
      return InternalError("component " + machine_.component(c).name +
                           " accounting diverged: resident=" +
                           std::to_string(resident[c].value()) +
                           " reserved=" + std::to_string(frames_.used(c).value()));
    }
    if (frames_.used(c) > frames_.capacity(c)) {
      return InternalError("component " + machine_.component(c).name + " over capacity");
    }
    if (machine_.IsOffline(c) && !resident[c].IsZero() && stats_.drain_failed_bytes.IsZero()) {
      return InternalError("offline component " + machine_.component(c).name +
                           " still holds " + std::to_string(resident[c].value()) + " bytes");
    }
  }
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    for (std::size_t j = i + 1; j < pending_.size(); ++j) {
      const MigrationOrder& a = pending_[i].order;
      const MigrationOrder& b = pending_[j].order;
      if (a.start < b.start + b.len && b.start < a.start + a.len) {
        return InternalError("in-flight migrations overlap");
      }
    }
  }
  return OkStatus();
}

}  // namespace mtm
