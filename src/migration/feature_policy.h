// The plugin side of the policy API: a FeaturePolicy scores FeatureVectors
// (src/migration/features.h) and inherits MTM's fast-promotion /
// slow-demotion machinery (DecideByScore) for turning scores into orders.
// FeatureDrivenPolicy adapts any FeaturePolicy to the TieringPolicy
// interface the driver runs, so plugins slot into every experiment via the
// registry (src/migration/policy_registry.h) without touching the driver.
//
// Two scorers ship here:
//   * MtmScorePolicy  — the WHI passthrough; behind FeatureDrivenPolicy it
//     is byte-identical to MtmPolicy (differential-tested against
//     tests/golden/), the proof the feature path adds no decision drift;
//   * LogisticPolicy  — a fitted logistic scorer over the full feature
//     vector, coefficients produced offline by tools/fit_logistic_policy.py
//     from --policy-features-out dumps and checked in.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/migration/admission/admission.h"
#include "src/migration/features.h"
#include "src/migration/policy.h"
#include "src/profiling/profiler.h"

namespace mtm {

class FeaturePolicy {
 public:
  // `decide_config` parameterizes the shared DecideByScore machinery
  // (promotion budget, histogram buckets, score range; a non-positive
  // hotness_max adapts to the scorer's output scale each interval).
  explicit FeaturePolicy(const MtmPolicy::Config& decide_config)
      : decide_config_(decide_config) {}
  virtual ~FeaturePolicy() = default;

  virtual std::string name() const = 0;

  // Per-region score: higher promotes first, colder demotes first. Must be
  // a pure function of the features (determinism contract).
  virtual double Score(const FeatureVector& features) const = 0;

  // Batch decision. The default scores every region and runs DecideByScore;
  // override only to replace the order-construction machinery itself.
  virtual std::vector<MigrationOrder> Decide(const ProfileOutput& profile,
                                             const std::vector<FeatureVector>& features,
                                             PolicyContext& ctx);

 protected:
  MtmPolicy::Config decide_config_;
};

// TieringPolicy adapter: builds the feature vectors each interval and hands
// them to the wrapped FeaturePolicy.
class FeatureDrivenPolicy : public TieringPolicy {
 public:
  explicit FeatureDrivenPolicy(std::unique_ptr<FeaturePolicy> impl) : impl_(std::move(impl)) {}
  std::string name() const override { return impl_->name(); }
  std::vector<MigrationOrder> Decide(const ProfileOutput& profile, PolicyContext& ctx) override;

 private:
  std::unique_ptr<FeaturePolicy> impl_;
};

// WHI passthrough scorer: Score returns the raw hotness feature, so the
// decisions match MtmPolicy byte-for-byte under the same config.
class MtmScorePolicy : public FeaturePolicy {
 public:
  using FeaturePolicy::FeaturePolicy;
  std::string name() const override { return "mtm-feature"; }
  double Score(const FeatureVector& features) const override { return features.x[kFeatWhi]; }
};

// Fitted logistic scorer: sigmoid(w . x + b) estimates the probability the
// region is hot next interval. Scores live in (0, 1), so the decide config
// must use an adaptive hotness_max (the registry forces it). Stone-cold
// regions (zero WHI) score zero outright so the bias term alone can never
// promote them.
class LogisticPolicy : public FeaturePolicy {
 public:
  struct Coefficients {
    std::array<double, kNumFeatures> weights{};
    double bias = 0.0;
  };

  // Checked-in coefficients, fitted by tools/fit_logistic_policy.py on
  // --policy-features-out dumps of the Table-2 workloads under --policy=mtm.
  static Coefficients FittedCoefficients();

  LogisticPolicy(const MtmPolicy::Config& decide_config, Coefficients coef)
      : FeaturePolicy(decide_config), coef_(coef) {}
  explicit LogisticPolicy(const MtmPolicy::Config& decide_config)
      : LogisticPolicy(decide_config, FittedCoefficients()) {}

  std::string name() const override { return "logistic"; }
  double Score(const FeatureVector& features) const override;

 private:
  Coefficients coef_;
};

}  // namespace mtm
