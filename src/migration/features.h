// Feature-vector stage of the policy-as-plugin API: turns one interval's
// ProfileOutput plus decision-time context (migration history, residency,
// sim time) into a normalized per-region FeatureVector that any
// FeaturePolicy can score. Also hosts the two deterministic JSONL export
// surfaces built on the same vectors:
//   * FeatureExporter  — training rows (features + the heuristic's action +
//     the realized next-interval hotness label) for offline policy fitting;
//   * HeatmapExporter  — one line per interval with every region's hotness,
//     residency, and ping-pong score, for heatmap rendering.
// Both exporters emit keys in a fixed explicit order; two identical seeded
// runs produce byte-identical files.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/migration/admission/admission.h"
#include "src/migration/policy.h"
#include "src/obs/jsonl.h"
#include "src/profiling/profiler.h"

namespace mtm {

// Index of each feature in FeatureVector::x. kFeatureNames (the JSONL
// schema) must stay in sync.
enum FeatureIndex : u32 {
  kFeatWhi = 0,       // profiler hotness EMA (the WHI for MTM), raw scale
  kFeatHi,            // latest interval's hotness indication — the recency signal
  kFeatTrend,         // latest_hi - prev_hi: heating (+) vs cooling (-)
  kFeatSkew,          // intra-region sample disparity in [0, 1]
  kFeatLogSizePages,  // log2(len / base page) / 16, ~[0, 1] up to 256 GiB
  kFeatTierRank,      // resident tier rank / (tiers - 1); 1.0 when unmapped
  kFeatPingPong,      // MigrationHistory ping-pong score (flip EMA), raw scale
  kFeatMoveRecency,   // min(intervals since last move, 32) / 32; 1.0 = never moved
  kNumFeatures,
};

// JSONL field name of each feature, indexed by FeatureIndex.
extern const char* const kFeatureNames[kNumFeatures];

struct FeatureVector {
  VirtAddr start;
  Bytes len;
  u32 preferred_socket = 0;
  ComponentId resident = kInvalidComponent;  // probed residency, invalid when unmapped
  u32 tier_rank = 0;  // rank of `resident` in the preferred socket's view
  std::array<double, kNumFeatures> x{};
};

// Builds one FeatureVector per profile entry, index-aligned with
// profile.entries. Reads ctx.history / ctx.now / ctx.interval_ns when set;
// history-derived features are neutral (0 ping-pong, never-moved recency)
// when they are not.
std::vector<FeatureVector> BuildFeatures(const ProfileOutput& profile, const PolicyContext& ctx);

// Streams deterministic training rows (the --policy-features-out mode): one
// JSONL row per profiled region per interval, carrying the feature vector,
// the action the active policy took on the region, and — once the next
// interval's profile is known — the realized next-interval hotness label.
// Rows whose region disappears before the next interval, and rows from the
// final interval, never receive a label and are dropped.
class FeatureExporter {
 public:
  // Records one interval's decision. `features` must be BuildFeatures'
  // output for `profile` and `orders` the policy's decision on it; labels
  // and flushes the previous interval's rows against `profile` first.
  void OnInterval(u64 interval, SimNanos now, const ProfileOutput& profile,
                  const std::vector<FeatureVector>& features,
                  const std::vector<MigrationOrder>& orders, const PolicyContext& ctx);

  const JsonlSink& sink() const { return sink_; }
  Status WriteFile(const std::string& path) const { return sink_.WriteFile(path); }

 private:
  struct PendingRow {
    std::string prefix;  // serialized row up to (and excluding) the label
    VirtAddr start;      // label lookup key: region start at emission time
  };
  std::vector<PendingRow> pending_;
  JsonlSink sink_;
};

// Streams one JSONL line per interval with every region's hotness view,
// residency, and MigrationHistory ping-pong score (the --heatmap-out mode).
// Regions are emitted in address order regardless of profiler entry order.
class HeatmapExporter {
 public:
  void OnInterval(u64 interval, SimNanos now, const ProfileOutput& profile,
                  const std::vector<FeatureVector>& features);

  const JsonlSink& sink() const { return sink_; }
  Status WriteFile(const std::string& path) const { return sink_.WriteFile(path); }

 private:
  JsonlSink sink_;
};

}  // namespace mtm
