// Migration admission control: the pluggable stage between the tiering
// policy (which proposes orders) and the migration mechanism (which
// executes them). The engine consults an AdmissionController before every
// order is armed; the controller answers admit / defer / reject against a
// per-region MigrationHistory and a per-interval bandwidth budget.
//
// PR 1's thrash guard reacts only after aborts; admission control acts
// before bandwidth is spent. TierBPF casts admission as a swappable program
// between policy and mechanism, and Jenga shows that responsiveness without
// thrashing needs per-page migration history rather than global caps
// (PAPERS.md) — this module reproduces that layering:
//   * vanilla    admits everything (byte-identical to a build without the
//                admission stage — the determinism anchor);
//   * ppt        ping-pong throttling: a region's re-promotion backs off
//                exponentially with its demote->promote flip count, as a
//                cooldown window in simulated time;
//   * bandwidth  graceful degradation: orders are admitted against a
//                per-interval migration-byte budget, promotions ordered by
//                hotness so the lowest-value orders shed first instead of
//                the batch failing mid-interval.
//
// Determinism rules: controllers are pure functions of (request, history,
// budget) — no wall clock, no randomness, no host-pointer iteration. The
// history table is a std::map so every walk is address-ordered.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace mtm {

// One policy decision: move [start, start+len) to component dst, using the
// tier view of `socket` for any cascading demotions. `hotness` carries the
// policy's value estimate for the region (WHI units for MTM) so admission
// can rank orders; policies that do not rank leave it zero.
struct MigrationOrder {
  VirtAddr start;
  Bytes len;
  ComponentId dst = kInvalidComponent;
  u32 socket = 0;
  double hotness = 0.0;
};

enum class AdmissionVerdict {
  kAdmit,   // arm the order now
  kDefer,   // drop this interval; the policy re-decides next interval
  kReject,  // shed: over budget, not worth the bandwidth
};

enum class AdmissionKind {
  kVanilla,    // admit-all
  kPpt,        // ping-pong throttling with exponential re-promotion backoff
  kBandwidth,  // per-interval byte budget, hotness-ordered shedding
};

const char* AdmissionKindName(AdmissionKind kind);
// Returns false (and leaves *out untouched) for an unknown name.
bool AdmissionKindFromName(const std::string& name, AdmissionKind* out);

// Tuning shared by the history table and the shipped controllers. The
// sim-time windows default to zero, meaning "derive from the profiling
// interval" — Solution fills them in; standalone users set them explicitly.
struct AdmissionTuning {
  // History: a promote<->demote reversal within this window of the previous
  // move counts as a flip; per-region ping-pong scores decay by this factor
  // at every interval boundary.
  SimNanos flip_window_ns;      // 0: 5 profiling intervals
  double score_decay = 0.5;     // EMA decay per interval, in [0, 1)
  // ppt: a region's re-promotion cooldown after a demotion is
  //   base_cooldown << min(flips, flip_shift_cap), capped at max_cooldown.
  SimNanos ppt_base_cooldown_ns;  // 0: one profiling interval
  SimNanos ppt_max_cooldown_ns;   // 0: 32 profiling intervals
  u32 ppt_flip_shift_cap = 10;
  // bandwidth: migration bytes admitted per interval.
  Bytes interval_budget_bytes;  // 0: the experiment's promote batch (N)
};

// Per-region record of migration activity, keyed by the huge-aligned region
// start. Generation counts and timestamps are in simulated time.
struct RegionMigrationHistory {
  SimNanos last_promote_at;
  SimNanos last_demote_at;
  u32 promotions = 0;       // promote generation count
  u32 demotions = 0;        // demote generation count
  u32 flips = 0;            // lifetime direction reversals within the window
  double pingpong_score = 0.0;  // flip EMA: +1 per flip, decayed per interval
  // Direction of the last recorded move: +1 promote, -1 demote, 0 never.
  int last_direction = 0;
};

// The per-region table the engine maintains and controllers read. Pure
// bookkeeping: recording is unconditional (even under vanilla) and has no
// effect on behavior until a controller consults it.
class MigrationHistory {
 public:
  explicit MigrationHistory(const AdmissionTuning& tuning) : tuning_(tuning) {}

  struct Outcome {
    bool flipped = false;  // this move reversed a recent opposite move
  };

  // Records a committed move of `bytes` for the region containing `start`.
  Outcome RecordMove(VirtAddr start, bool is_promotion, Bytes bytes, SimNanos now);

  // Interval boundary: decays every region's ping-pong score.
  void EndInterval();

  // Entry for the region containing `addr`, or null if it never migrated.
  const RegionMigrationHistory* Find(VirtAddr addr) const;

  // Maximum ping-pong score across all regions (0 when empty). Iterates the
  // std::map, so the result is deterministic.
  double MaxPingPongScore() const;

  std::size_t size() const { return table_.size(); }
  const AdmissionTuning& tuning() const { return tuning_; }

 private:
  AdmissionTuning tuning_;
  std::map<VirtAddr, RegionMigrationHistory> table_;
};

// One order as seen by the admission stage. `bytes` is what actually still
// needs to move (already-resident pages excluded).
struct AdmissionRequest {
  MigrationOrder order;
  Bytes bytes;
  bool is_promotion = false;
  u32 attempt = 1;  // 1 = first submission; >1 = retry of an aborted order
  SimNanos now;
};

// Per-interval migration-byte budget. A zero limit means unlimited.
struct AdmissionBudget {
  Bytes interval_limit;
  Bytes admitted_bytes;  // admitted so far this interval

  Bytes remaining() const {
    if (interval_limit.IsZero()) {
      return Bytes(~u64{0});
    }
    return admitted_bytes >= interval_limit ? Bytes{} : interval_limit - admitted_bytes;
  }
};

// Verdict plus the optional partial-admission boundary. When the verdict is
// kAdmit and admit_bytes is nonzero and smaller than request.bytes, the
// engine splits the order at the largest huge-page-aligned prefix whose
// to-move bytes fit admit_bytes; the armed prefix migrates and the
// remainder is shed as rejected (per-order partial admission at the
// bandwidth-budget boundary). A zero admit_bytes admits the whole order.
struct AdmissionDecision {
  AdmissionVerdict verdict = AdmissionVerdict::kAdmit;
  Bytes admit_bytes;
};

class AdmissionController {
 public:
  virtual ~AdmissionController() = default;

  virtual AdmissionKind kind() const = 0;
  virtual std::string name() const = 0;

  // The per-order gate, consulted by the engine after an order passes its
  // validity checks and before any cost is charged or tracking armed.
  virtual AdmissionVerdict Admit(const AdmissionRequest& request,
                                 const MigrationHistory& history,
                                 const AdmissionBudget& budget) = 0;

  // Gate with partial-admission support; this is what the engine actually
  // calls. The default delegates to Admit() and never splits, so
  // controllers that think in whole orders stay byte-identical; controllers
  // that can split at a byte boundary (bandwidth) override it.
  virtual AdmissionDecision DecideOrder(const AdmissionRequest& request,
                                        const MigrationHistory& history,
                                        const AdmissionBudget& budget);

  // Reorders one interval's batch before per-order admission. The default
  // keeps the policy's execution sequence (demotions that make room come
  // before the promotions that need it); overrides must preserve that
  // property.
  virtual void Sequence(std::vector<AdmissionRequest>& batch);

  // Interval-boundary hook; the engine has already zeroed
  // budget.admitted_bytes when this runs.
  virtual void BeginInterval(SimNanos now, AdmissionBudget& budget);
};

std::unique_ptr<AdmissionController> MakeAdmissionController(AdmissionKind kind,
                                                             const AdmissionTuning& tuning);

// Outcome counters of the admission stage over a run.
struct AdmissionStats {
  u64 admitted = 0;
  u64 deferred = 0;
  u64 rejected = 0;
  Bytes admitted_bytes;
  Bytes deferred_bytes;
  Bytes rejected_bytes;
  u64 flip_moves = 0;  // committed moves that reversed a recent move
  Bytes flip_bytes;    // migrated bytes wasted on those reversals
  // Partial admission: orders split at the budget boundary instead of shed
  // whole, and the remainder bytes those splits dropped (a subset of
  // rejected_bytes).
  u64 split_orders = 0;
  Bytes split_shed_bytes;
};

}  // namespace mtm
