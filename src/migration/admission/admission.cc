#include "src/migration/admission/admission.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/types.h"

namespace mtm {

const char* AdmissionKindName(AdmissionKind kind) {
  switch (kind) {
    case AdmissionKind::kVanilla:
      return "vanilla";
    case AdmissionKind::kPpt:
      return "ppt";
    case AdmissionKind::kBandwidth:
      return "bandwidth";
  }
  return "?";
}

bool AdmissionKindFromName(const std::string& name, AdmissionKind* out) {
  for (AdmissionKind k :
       {AdmissionKind::kVanilla, AdmissionKind::kPpt, AdmissionKind::kBandwidth}) {
    if (name == AdmissionKindName(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

MigrationHistory::Outcome MigrationHistory::RecordMove(VirtAddr start, bool is_promotion,
                                                       Bytes bytes, SimNanos now) {
  MTM_CHECK_GT(bytes, Bytes{});
  RegionMigrationHistory& e = table_[HugeAlignDown(start)];
  Outcome out;
  const int direction = is_promotion ? 1 : -1;
  const SimNanos opposite_at = is_promotion ? e.last_demote_at : e.last_promote_at;
  // A reversal counts as a flip only when the opposite move is recent: a
  // promotion long after an old demotion is a genuine phase change, not
  // ping-pong.
  if (e.last_direction == -direction && !opposite_at.IsZero() &&
      now - opposite_at <= tuning_.flip_window_ns) {
    ++e.flips;
    e.pingpong_score += 1.0;
    out.flipped = true;
  }
  if (is_promotion) {
    ++e.promotions;
    e.last_promote_at = now;
  } else {
    ++e.demotions;
    e.last_demote_at = now;
  }
  e.last_direction = direction;
  return out;
}

void MigrationHistory::EndInterval() {
  for (auto& [start, e] : table_) {
    e.pingpong_score *= tuning_.score_decay;
  }
}

const RegionMigrationHistory* MigrationHistory::Find(VirtAddr addr) const {
  auto it = table_.find(HugeAlignDown(addr));
  return it == table_.end() ? nullptr : &it->second;
}

double MigrationHistory::MaxPingPongScore() const {
  double max_score = 0.0;
  for (const auto& [start, e] : table_) {
    max_score = std::max(max_score, e.pingpong_score);
  }
  return max_score;
}

AdmissionDecision AdmissionController::DecideOrder(const AdmissionRequest& request,
                                                   const MigrationHistory& history,
                                                   const AdmissionBudget& budget) {
  return AdmissionDecision{Admit(request, history, budget), Bytes{}};
}

void AdmissionController::Sequence(std::vector<AdmissionRequest>& batch) { (void)batch; }

void AdmissionController::BeginInterval(SimNanos now, AdmissionBudget& budget) {
  (void)now;
  (void)budget;
}

namespace {

// The determinism anchor: admits everything, reads nothing. A run with this
// controller is byte-identical to a build without the admission stage.
class VanillaAdmission : public AdmissionController {
 public:
  AdmissionKind kind() const override { return AdmissionKind::kVanilla; }
  std::string name() const override { return AdmissionKindName(kind()); }
  AdmissionVerdict Admit(const AdmissionRequest&, const MigrationHistory&,
                         const AdmissionBudget&) override {
    return AdmissionVerdict::kAdmit;
  }
};

// Ping-pong throttling: after a region is demoted, its re-promotion must
// wait out a cooldown that doubles with every recorded flip. Demotions are
// never throttled — slow demotion is what relieves pressure, and blocking
// it would turn ping-pong into tier overflow.
class PptAdmission : public AdmissionController {
 public:
  explicit PptAdmission(const AdmissionTuning& tuning) : tuning_(tuning) {}

  AdmissionKind kind() const override { return AdmissionKind::kPpt; }
  std::string name() const override { return AdmissionKindName(kind()); }

  AdmissionVerdict Admit(const AdmissionRequest& request, const MigrationHistory& history,
                         const AdmissionBudget&) override {
    if (!request.is_promotion) {
      return AdmissionVerdict::kAdmit;
    }
    // An order may span several huge regions; if ANY of them is still in
    // its cooldown the whole order waits, so a hot region cannot smuggle
    // recently demoted neighbors back up with it.
    const VirtAddr end = request.order.start + request.order.len;
    for (VirtAddr r = HugeAlignDown(request.order.start); r < end; r += kHugePageBytes) {
      const RegionMigrationHistory* e = history.Find(r);
      if (e == nullptr || e->last_demote_at.IsZero()) {
        continue;  // never demoted: nothing to throttle
      }
      if (request.now - e->last_demote_at < CooldownFor(e->flips)) {
        return AdmissionVerdict::kDefer;
      }
    }
    return AdmissionVerdict::kAdmit;
  }

  // base << min(flips, cap), saturating at max_cooldown on overflow.
  SimNanos CooldownFor(u32 flips) const {
    const u64 base = tuning_.ppt_base_cooldown_ns.value();
    const u64 max = tuning_.ppt_max_cooldown_ns.value();
    const u32 shift = std::min(flips, tuning_.ppt_flip_shift_cap);
    if (base != 0 && shift < 64 && base <= (max >> shift)) {
      return SimNanos(base << shift);
    }
    return SimNanos(max);
  }

 private:
  AdmissionTuning tuning_;
};

// Bandwidth-aware degradation: one interval may admit at most
// interval_budget_bytes of migration traffic. Promotions are re-sequenced
// hottest-first so that when the budget runs out, the lowest-value orders
// are the ones shed; demotions keep their original order ahead of all
// promotions (they make the room promotions need) and are not charged.
class BandwidthAdmission : public AdmissionController {
 public:
  AdmissionKind kind() const override { return AdmissionKind::kBandwidth; }
  std::string name() const override { return AdmissionKindName(kind()); }

  AdmissionVerdict Admit(const AdmissionRequest& request, const MigrationHistory&,
                         const AdmissionBudget& budget) override {
    if (!request.is_promotion) {
      return AdmissionVerdict::kAdmit;
    }
    if (request.bytes > budget.remaining()) {
      return AdmissionVerdict::kReject;
    }
    return AdmissionVerdict::kAdmit;
  }

  // Partial admission: instead of shedding a whole order that straddles the
  // budget boundary, admit the largest huge-page-aligned prefix that still
  // fits — the budget fills completely and the hottest region's head still
  // moves. Below one huge page nothing can split, so reject as before.
  AdmissionDecision DecideOrder(const AdmissionRequest& request, const MigrationHistory& history,
                                const AdmissionBudget& budget) override {
    if (!request.is_promotion || request.bytes <= budget.remaining()) {
      return AdmissionDecision{Admit(request, history, budget), Bytes{}};
    }
    const Bytes fit = HugeAlignDown(budget.remaining());
    if (fit < kHugePageBytes) {
      return AdmissionDecision{AdmissionVerdict::kReject, Bytes{}};
    }
    return AdmissionDecision{AdmissionVerdict::kAdmit, fit};
  }

  void Sequence(std::vector<AdmissionRequest>& batch) override {
    // Stable: demotions first in policy order, then promotions by
    // descending hotness (ties keep policy order).
    std::stable_sort(batch.begin(), batch.end(),
                     [](const AdmissionRequest& a, const AdmissionRequest& b) {
                       if (a.is_promotion != b.is_promotion) {
                         return !a.is_promotion;
                       }
                       if (!a.is_promotion) {
                         return false;  // demotions keep policy order
                       }
                       return a.order.hotness > b.order.hotness;
                     });
  }
};

}  // namespace

std::unique_ptr<AdmissionController> MakeAdmissionController(AdmissionKind kind,
                                                             const AdmissionTuning& tuning) {
  switch (kind) {
    case AdmissionKind::kVanilla:
      return std::make_unique<VanillaAdmission>();
    case AdmissionKind::kPpt:
      return std::make_unique<PptAdmission>(tuning);
    case AdmissionKind::kBandwidth:
      return std::make_unique<BandwidthAdmission>();
  }
  MTM_CHECK(false) << "unknown admission kind";
  return nullptr;
}

}  // namespace mtm
