#include "src/migration/feature_policy.h"

#include <cmath>
#include "src/migration/admission/admission.h"
#include "src/profiling/profiler.h"

namespace mtm {

std::vector<MigrationOrder> FeaturePolicy::Decide(const ProfileOutput& profile,
                                                  const std::vector<FeatureVector>& features,
                                                  PolicyContext& ctx) {
  std::vector<double> scores;
  scores.reserve(features.size());
  for (const FeatureVector& f : features) {
    scores.push_back(Score(f));
  }
  return DecideByScore(profile, scores, ctx, decide_config_);
}

std::vector<MigrationOrder> FeatureDrivenPolicy::Decide(const ProfileOutput& profile,
                                                        PolicyContext& ctx) {
  std::vector<FeatureVector> features = BuildFeatures(profile, ctx);
  return impl_->Decide(profile, features, ctx);
}

LogisticPolicy::Coefficients LogisticPolicy::FittedCoefficients() {
  // Fitted by tools/fit_logistic_policy.py (see DESIGN.md §13 for the
  // workflow) on gups+voltdb feature dumps (10454 rows, 9.4% positive,
  // 94.6% train accuracy); label = next-interval WHI >= 1.
  Coefficients coef;
  coef.weights[kFeatWhi] = 2.8036;
  coef.weights[kFeatHi] = -0.2972;
  coef.weights[kFeatTrend] = -0.0243;
  coef.weights[kFeatSkew] = 0.2623;
  coef.weights[kFeatLogSizePages] = 0.7217;
  coef.weights[kFeatTierRank] = -0.7993;
  coef.weights[kFeatPingPong] = 0.0000;
  coef.weights[kFeatMoveRecency] = -1.1062;
  coef.bias = -2.4947;
  return coef;
}

double LogisticPolicy::Score(const FeatureVector& features) const {
  if (features.x[kFeatWhi] <= 0.0) {
    return 0.0;
  }
  double z = coef_.bias;
  for (u32 k = 0; k < kNumFeatures; ++k) {
    z += coef_.weights[k] * features.x[k];
  }
  return 1.0 / (1.0 + std::exp(-z));
}

}  // namespace mtm
