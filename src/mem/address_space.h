// Virtual address space and VMAs for the simulated process.
//
// Workloads carve their data structures (tables, graphs, arrays) out of one
// simulated address space. A VMA carries the THP eligibility flag
// (madvise(MADV_HUGEPAGE)-style, the paper's default configuration).
#pragma once

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace mtm {

struct Vma {
  VirtAddr start;
  Bytes len;
  bool thp = false;       // eligible for transparent 2 MiB mappings
  bool prefault = true;   // touched by application initialization
  std::string name;

  VirtAddr end() const { return start + len; }
  bool Contains(VirtAddr addr) const { return addr >= start && addr < end(); }
};

class AddressSpace {
 public:
  // VMAs start above the typical ELF/brk area; gaps of one huge page are
  // left between VMAs so region formation never bridges two objects by
  // accident of adjacency.
  static constexpr VirtAddr kBase{0x5500'0000'0000ull};

  // Reserves a VMA of `len` bytes (rounded up to a huge-page multiple so the
  // whole object is THP-mappable). Returns its index.
  u32 Allocate(Bytes len, bool thp, std::string name, bool prefault = true) {
    Bytes rounded = HugeAlignUp(len);
    Vma vma;
    vma.start = next_;
    vma.len = rounded;
    vma.thp = thp;
    vma.prefault = prefault;
    vma.name = std::move(name);
    next_ += rounded + Bytes(kHugePageSize);  // guard gap
    vmas_.push_back(vma);
    total_bytes_ += rounded;
    return static_cast<u32>(vmas_.size() - 1);
  }

  const std::vector<Vma>& vmas() const { return vmas_; }
  const Vma& vma(u32 index) const { return vmas_[index]; }

  const Vma* FindVma(VirtAddr addr) const {
    for (const Vma& v : vmas_) {
      if (v.Contains(addr)) {
        return &v;
      }
    }
    return nullptr;
  }

  Bytes total_bytes() const { return total_bytes_; }

 private:
  VirtAddr next_ = kBase;
  std::vector<Vma> vmas_;
  Bytes total_bytes_;
};

}  // namespace mtm
