// Initial page placement policies (fault handlers).
//
// * kFirstTouch       — Linux default: allocate in the fastest tier with free
//                       space as seen from the faulting thread's socket.
// * kSlowTierFirst    — MTM's initial placement (§9.1, Table 4): allocate in
//                       the local slow tier first, relying on promotion to
//                       pull hot pages up.
// * kPmOnly           — Memory Mode: DRAM is a hardware cache, so pages only
//                       ever reside on PM components.
//
// The handler honors THP: on a fault inside a THP-eligible VMA, it maps the
// whole 2 MiB block as a huge page when the block fits the VMA and the
// target component has room, falling back to a base page otherwise.
#pragma once

#include "src/common/types.h"
#include "src/mem/address_space.h"
#include "src/mem/frame_allocator.h"
#include "src/sim/access_engine.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"

namespace mtm {

enum class PlacementPolicy {
  kFirstTouch,
  kSlowTierFirst,
  kPmOnly,
};

const char* PlacementPolicyName(PlacementPolicy policy);

class PlacementFaultHandler : public FaultHandler {
 public:
  PlacementFaultHandler(const Machine& machine, PageTable& page_table,
                        FrameAllocator& frames, const AddressSpace& address_space,
                        PlacementPolicy policy)
      : machine_(machine),
        page_table_(page_table),
        frames_(frames),
        address_space_(address_space),
        policy_(policy) {}

  ComponentId HandlePageFault(VirtAddr addr, u32 socket, bool is_write) override;

  u64 huge_faults() const { return huge_faults_; }
  u64 base_faults() const { return base_faults_; }

 private:
  // Candidate components in preference order for a fault from `socket`.
  void CandidateOrder(u32 socket, ComponentId out[], u32* count) const;

  const Machine& machine_;
  PageTable& page_table_;
  FrameAllocator& frames_;
  const AddressSpace& address_space_;
  PlacementPolicy policy_;
  u64 huge_faults_ = 0;
  u64 base_faults_ = 0;
};

}  // namespace mtm
