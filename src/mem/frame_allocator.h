// Physical-capacity accounting per memory component.
//
// The simulator does not track individual page frames (page identity lives
// in the page table); what matters for tiering decisions is how much free
// capacity each component has — this is what the paper's promotion/demotion
// logic queries ("the next lower memory tier with enough memory capacity",
// §6.2).
#pragma once

#include <vector>

#include "src/common/logging.h"
#include "src/common/types.h"
#include "src/sim/machine.h"

namespace mtm {

class FrameAllocator {
 public:
  explicit FrameAllocator(const Machine& machine) {
    capacity_.reserve(machine.num_components());
    for (u32 c = 0; c < machine.num_components(); ++c) {
      capacity_.push_back(machine.component(c).capacity_bytes);
    }
    used_.assign(machine.num_components(), 0);
  }

  u64 capacity(ComponentId c) const { return capacity_[c]; }
  u64 used(ComponentId c) const { return used_[c]; }
  u64 free_bytes(ComponentId c) const { return capacity_[c] - used_[c]; }

  // Attempts to reserve `bytes` on component c; returns false if it would
  // exceed capacity.
  bool Reserve(ComponentId c, u64 bytes) {
    if (used_[c] + bytes > capacity_[c]) {
      return false;
    }
    used_[c] += bytes;
    return true;
  }

  void Release(ComponentId c, u64 bytes) {
    MTM_CHECK_GE(used_[c], bytes);
    used_[c] -= bytes;
  }

  u64 total_used() const {
    u64 t = 0;
    for (u64 u : used_) {
      t += u;
    }
    return t;
  }

 private:
  std::vector<u64> capacity_;
  std::vector<u64> used_;
};

}  // namespace mtm
