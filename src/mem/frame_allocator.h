// Physical-capacity accounting per memory component.
//
// The simulator does not track individual page frames (page identity lives
// in the page table); what matters for tiering decisions is how much free
// capacity each component has — this is what the paper's promotion/demotion
// logic queries ("the next lower memory tier with enough memory capacity",
// §6.2).
#pragma once

#include "src/common/logging.h"
#include "src/common/status.h"
#include "src/common/strong_types.h"
#include "src/common/types.h"
#include "src/sim/machine.h"

namespace mtm {

class FrameAllocator {
 public:
  explicit FrameAllocator(const Machine& machine) {
    for (ComponentId c{0}; c < machine.end_component(); ++c) {
      capacity_.push_back(machine.component(c).capacity_bytes);
    }
    used_.assign(machine.num_components(), Bytes{});
  }

  Bytes capacity(ComponentId c) const { return capacity_[c]; }
  Bytes used(ComponentId c) const { return used_[c]; }
  Bytes free_bytes(ComponentId c) const { return capacity_[c] - used_[c]; }

  // Frame-granular views of the same accounting: capacities are whole
  // numbers of 4 KiB frames, and the next frame to be handed out on a
  // component is its high-water mark.
  u64 total_frames(ComponentId c) const { return NumPages(capacity_[c]); }
  u64 used_frames(ComponentId c) const { return NumPages(used_[c]); }
  Pfn high_water_frame(ComponentId c) const { return Pfn(NumPages(used_[c])); }

  // Attempts to reserve `bytes` on component c; kResourceExhausted if it
  // would exceed capacity (callers branch on ok() to fall through tiers).
  Status Reserve(ComponentId c, Bytes bytes) {
    if (used_[c] + bytes > capacity_[c]) {
      return ResourceExhaustedError("component capacity exceeded");
    }
    used_[c] += bytes;
    return OkStatus();
  }

  void Release(ComponentId c, Bytes bytes) {
    MTM_CHECK_GE(used_[c], bytes);
    used_[c] -= bytes;
  }

  Bytes total_used() const {
    Bytes t;
    for (Bytes u : used_) {
      t += u;
    }
    return t;
  }

 private:
  IdMap<ComponentId, Bytes> capacity_;
  IdMap<ComponentId, Bytes> used_;
};

}  // namespace mtm
