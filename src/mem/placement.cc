#include "src/mem/placement.h"

#include "src/common/logging.h"
#include "src/common/status.h"
#include "src/sim/tier.h"

namespace mtm {

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kFirstTouch:
      return "first-touch";
    case PlacementPolicy::kSlowTierFirst:
      return "slow-tier-first";
    case PlacementPolicy::kPmOnly:
      return "pm-only";
  }
  return "?";
}

void PlacementFaultHandler::CandidateOrder(u32 socket, ComponentId out[], u32* count) const {
  const auto& order = machine_.TierOrder(socket);
  u32 n = 0;
  switch (policy_) {
    case PlacementPolicy::kFirstTouch:
      for (ComponentId c : order) {
        out[n++] = c;
      }
      break;
    case PlacementPolicy::kSlowTierFirst:
      // Slow (PM) components first, nearest first; then DRAM, nearest first.
      for (ComponentId c : order) {
        if (machine_.component(c).mem_class == MemClass::kPm) {
          out[n++] = c;
        }
      }
      for (ComponentId c : order) {
        if (machine_.component(c).mem_class == MemClass::kDram) {
          out[n++] = c;
        }
      }
      break;
    case PlacementPolicy::kPmOnly:
      for (ComponentId c : order) {
        if (machine_.component(c).mem_class == MemClass::kPm) {
          out[n++] = c;
        }
      }
      break;
  }
  *count = n;
}

ComponentId PlacementFaultHandler::HandlePageFault(VirtAddr addr, u32 socket, bool /*is_write*/) {
  ComponentId candidates[16];
  u32 count = 0;
  CandidateOrder(socket, candidates, &count);
  // Offline components take no new allocations; compact them out of the
  // candidate list (preserving order) rather than in CandidateOrder so the
  // policy's tier preferences stay health-agnostic.
  u32 healthy = 0;
  for (u32 i = 0; i < count; ++i) {
    if (!machine_.IsOffline(candidates[i])) {
      candidates[healthy++] = candidates[i];
    }
  }
  count = healthy;
  MTM_CHECK_GT(count, 0u);

  const Vma* vma = address_space_.FindVma(addr);
  bool want_huge = vma != nullptr && vma->thp;
  VirtAddr huge_start = HugeAlignDown(addr);
  if (want_huge) {
    // The whole huge block must be inside the VMA and fully unmapped.
    if (huge_start < vma->start || huge_start + kHugePageSize > vma->end()) {
      want_huge = false;
    } else {
      bool any_mapped = false;
      page_table_.ForEachMapping(huge_start, kHugePageBytes,
                                 [&](VirtAddr, Bytes, const Pte&) { any_mapped = true; });
      if (any_mapped) {
        want_huge = false;
      }
    }
  }

  for (u32 i = 0; i < count; ++i) {
    ComponentId c = candidates[i];
    if (want_huge && frames_.Reserve(c, kHugePageBytes).ok()) {
      Status s = page_table_.MapRange(huge_start, kHugePageBytes, c, /*huge=*/true);
      MTM_CHECK(s.ok()) << s.ToString();
      ++huge_faults_;
      return c;
    }
    if (!want_huge && frames_.Reserve(c, kPageBytes).ok()) {
      Status s = page_table_.MapRange(PageAlignDown(addr), kPageBytes, c, /*huge=*/false);
      MTM_CHECK(s.ok()) << s.ToString();
      ++base_faults_;
      return c;
    }
  }
  // A huge reservation may fail everywhere while a base page still fits.
  if (want_huge) {
    for (u32 i = 0; i < count; ++i) {
      ComponentId c = candidates[i];
      if (frames_.Reserve(c, kPageBytes).ok()) {
        Status s = page_table_.MapRange(PageAlignDown(addr), kPageBytes, c, /*huge=*/false);
        MTM_CHECK(s.ok()) << s.ToString();
        ++base_faults_;
        return c;
      }
    }
  }
  return kInvalidComponent;
}

}  // namespace mtm
