#include "src/profiling/region.h"

#include "src/common/logging.h"

namespace mtm {

void RegionMap::SeedRange(VirtAddr start, VirtAddr end, Bytes region_bytes) {
  MTM_CHECK_LT(start, end);
  MTM_CHECK_GT(region_bytes, Bytes{});
  const u64 stride = region_bytes.value();
  VirtAddr cursor = start;
  while (cursor < end) {
    VirtAddr next = cursor - cursor.value() % stride + stride;
    if (next > end) {
      next = end;
    }
    Region r;
    r.id = next_id_++;
    r.start = cursor;
    r.end = next;
    regions_.emplace(cursor, std::move(r));
    ++total_seeded_;
    cursor = next;
  }
}

void RegionMap::SeedWhole(VirtAddr start, VirtAddr end) {
  MTM_CHECK_LT(start, end);
  Region r;
  r.id = next_id_++;
  r.start = start;
  r.end = end;
  regions_.emplace(start, std::move(r));
  ++total_seeded_;
}

RegionMap::iterator RegionMap::FindContaining(VirtAddr addr) {
  auto it = regions_.upper_bound(addr);
  if (it == regions_.begin()) {
    return regions_.end();
  }
  --it;
  if (addr >= it->second.start && addr < it->second.end) {
    return it;
  }
  return regions_.end();
}

RegionMap::iterator RegionMap::MergeWithNext(iterator it) {
  MTM_CHECK(it != regions_.end());
  auto next = std::next(it);
  if (next == regions_.end() || next->second.start != it->second.end) {
    return regions_.end();
  }
  it->second.end = next->second.end;
  regions_.erase(next);
  ++total_merges_;
  return it;
}

bool RegionMap::Split(iterator it, VirtAddr split_addr, iterator* first, iterator* second) {
  MTM_CHECK(it != regions_.end());
  Region& r = it->second;
  if (split_addr <= r.start || split_addr >= r.end) {
    return false;
  }
  Region right;
  right.id = next_id_++;
  right.start = split_addr;
  right.end = r.end;
  r.end = split_addr;
  auto [rit, inserted] = regions_.emplace(right.start, std::move(right));
  MTM_CHECK(inserted);
  if (first != nullptr) {
    *first = it;
  }
  if (second != nullptr) {
    *second = rit;
  }
  ++total_splits_;
  return true;
}

VirtAddr RegionMap::SplitPoint(const Region& region) {
  Bytes bytes = region.bytes();
  if (bytes <= kPageBytes) {
    return VirtAddr{};
  }
  VirtAddr mid = region.start + bytes / 2;
  if (bytes > kHugePageBytes) {
    // Round to the nearest huge-page boundary (§5.4). The halves may be
    // slightly unequal; the paper notes the difference is small relative to
    // MB-scale regions.
    VirtAddr down = HugeAlignDown(mid);
    VirtAddr up = HugeAlignUp(mid);
    VirtAddr candidate = (mid - down <= up - mid) ? down : up;
    if (candidate > region.start && candidate < region.end) {
      return candidate;
    }
    // Fall back to whichever huge boundary is interior.
    if (down > region.start) {
      return down;
    }
    if (up < region.end) {
      return up;
    }
  }
  return PageAlignDown(mid) > region.start ? PageAlignDown(mid)
                                         : region.start + kPageBytes;
}

}  // namespace mtm
