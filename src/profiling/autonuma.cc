#include "src/profiling/autonuma.h"

#include "src/common/logging.h"
#include "src/common/types.h"

namespace mtm {

void AutoNumaProfiler::OnIntervalStart() {
  // Arm hint faults over the next scan_window_bytes of mapped space,
  // walking VMAs cyclically.
  armed_this_interval_ = 0;
  const Bytes total = address_space_.total_bytes();
  MTM_CHECK_GT(total, Bytes{});
  MTM_CHECK_GT(config_.scan_window_bytes, Bytes{});
  Bytes remaining = std::min(config_.scan_window_bytes, total);
  while (remaining > Bytes{}) {
    // Translate the linear cursor into (vma, offset).
    Bytes offset = scan_cursor_ % total;
    const Vma* target = nullptr;
    Bytes within;
    Bytes walked;
    for (const Vma& vma : address_space_.vmas()) {
      if (offset < walked + vma.len) {
        target = &vma;
        within = offset - walked;
        break;
      }
      walked += vma.len;
    }
    MTM_CHECK(target != nullptr);
    Bytes chunk = std::min(remaining, target->len - within);
    page_table_.ForEachMapping(target->start + within, chunk,
                               [&](VirtAddr, Bytes, Pte& pte) {
                                 pte.Set(Pte::kHintArmed);
                                 ++armed_this_interval_;
                               });
    page_table_.BumpGeneration();
    scan_cursor_ = (scan_cursor_ + chunk) % total;
    remaining -= chunk;
  }
}

ProfileOutput AutoNumaProfiler::OnIntervalEnd() {
  ProfileOutput out;
  for (auto& [vpn, stat] : stats_) {
    stat.faults *= config_.decay;
  }
  for (const HintFaultEvent& e : engine_.DrainHintFaults()) {
    PageStat& stat = stats_[VpnOf(e.addr)];
    stat.faults += 1.0;
    stat.last_socket = e.socket;
  }

  // Emit per-page entries at the granularity of the underlying mapping
  // (base or huge page).
  for (auto it = stats_.begin(); it != stats_.end();) {
    const Vpn vpn = it->first;
    PageStat& stat = it->second;
    if (stat.faults < 0.05) {
      it = stats_.erase(it);  // fully decayed
      continue;
    }
    Bytes size = kPageBytes;
    const Pte* pte = page_table_.Find(AddrOfVpn(vpn), &size);
    if (pte != nullptr) {
      HotnessEntry e;
      e.start = AddrOfVpn(vpn).AlignDown(size.value());
      e.len = size;
      // Vanilla: binary two-touch signal. Patched: MFU fault count.
      e.hotness = config_.patched ? stat.faults
                                  : (stat.faults >= config_.hot_threshold ? 1.0 : 0.0);
      e.preferred_socket = stat.last_socket;
      out.entries.push_back(e);
      if (stat.faults >= config_.hot_threshold) {
        out.hot_bytes += size;
      }
    }
    ++it;
  }
  out.num_regions = stats_.size();
  out.pte_scans = armed_this_interval_;
  out.profiling_cost_ns = armed_this_interval_ * config_.arm_cost_ns;
  return out;
}

Bytes AutoNumaProfiler::MemoryOverheadBytes() const {
  return Bytes(stats_.size() * (sizeof(Vpn) + sizeof(PageStat) + sizeof(void*) * 2));
}

}  // namespace mtm
