#include "src/profiling/oracle.h"

#include <algorithm>

namespace mtm {

void Oracle::Normalize(std::vector<HotRange>& ranges) {
  std::sort(ranges.begin(), ranges.end(),
            [](const HotRange& a, const HotRange& b) { return a.start < b.start; });
  std::vector<HotRange> merged;
  for (const HotRange& r : ranges) {
    if (r.len.IsZero()) {
      continue;
    }
    if (!merged.empty() && r.start <= merged.back().end()) {
      VirtAddr new_end = std::max(merged.back().end(), r.end());
      merged.back().len = Bytes(new_end - merged.back().start);
    } else {
      merged.push_back(r);
    }
  }
  ranges.swap(merged);
}

Bytes Oracle::OverlapBytes(const std::vector<HotRange>& truth, VirtAddr start, Bytes len) {
  VirtAddr end = start + len;
  Bytes overlap;
  // First truth range whose end might exceed start.
  auto it = std::lower_bound(truth.begin(), truth.end(), start,
                             [](const HotRange& r, VirtAddr v) { return r.end() <= v; });
  for (; it != truth.end() && it->start < end; ++it) {
    VirtAddr lo = std::max(it->start, start);
    VirtAddr hi = std::min(it->end(), end);
    if (hi > lo) {
      overlap += Bytes(hi - lo);
    }
  }
  return overlap;
}

ProfilingQuality Oracle::Evaluate(std::vector<HotRange> truth, const ProfileOutput& output) {
  ProfilingQuality q;
  Normalize(truth);
  for (const HotRange& r : truth) {
    q.true_hot_bytes += r.len;
  }
  if (q.true_hot_bytes.IsZero()) {
    return q;
  }

  std::vector<const HotnessEntry*> ranked;
  ranked.reserve(output.entries.size());
  for (const HotnessEntry& e : output.entries) {
    if (e.hotness > 0.0) {
      ranked.push_back(&e);
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const HotnessEntry* a, const HotnessEntry* b) { return a->hotness > b->hotness; });

  for (const HotnessEntry* e : ranked) {
    if (q.claimed_hot_bytes >= q.true_hot_bytes) {
      break;
    }
    // The final entry is clipped to the remaining claim volume so a single
    // giant region cannot blow past the budget (a real system would promote
    // only that much of it).
    Bytes deficit = q.true_hot_bytes - q.claimed_hot_bytes;
    Bytes take = std::min(e->len, deficit);
    q.claimed_hot_bytes += take;
    q.correct_hot_bytes += OverlapBytes(truth, e->start, take);
  }
  q.recall = static_cast<double>(q.correct_hot_bytes.value()) /
             static_cast<double>(q.true_hot_bytes.value());
  q.accuracy = q.claimed_hot_bytes.IsZero()
                   ? 0.0
                   : static_cast<double>(q.correct_hot_bytes.value()) /
                         static_cast<double>(q.claimed_hot_bytes.value());
  return q;
}

}  // namespace mtm
