#include "src/profiling/mtm_profiler.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/common/types.h"

namespace mtm {

MtmProfiler::MtmProfiler(const Machine& machine, PageTable& page_table,
                         const AddressSpace& address_space, AccessEngine& engine,
                         PebsEngine* pebs, Config config)
    : machine_(machine),
      page_table_(page_table),
      address_space_(address_space),
      engine_(engine),
      pebs_(pebs),
      config_(config),
      rng_(config.seed),
      tau_m_current_(config.tau_m) {
  MTM_CHECK_GT(config_.interval_ns, SimNanos{});
  MTM_CHECK_GT(config_.num_scans, 0u);
  MTM_CHECK_GT(config_.hint_fault_period, 0u);
  if (!config_.use_pebs) {
    pebs_ = nullptr;
  }
  if (config_.scan_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.scan_threads);
  }
}

double MtmProfiler::EffectiveScanCost() const {
  // One hint fault (12x a scan) per hint_fault_period scans.
  double hint_extra = 12.0 / static_cast<double>(config_.hint_fault_period);
  return static_cast<double>(config_.one_scan_overhead_ns.value()) * (1.0 + hint_extra);
}

u64 MtmProfiler::NumPageSamples() const {
  double budget_ns = static_cast<double>(config_.interval_ns.value()) * config_.overhead_fraction;
  double per_sample = EffectiveScanCost() * static_cast<double>(config_.num_scans);
  u64 n = static_cast<u64>(budget_ns / per_sample);
  return n == 0 ? 1 : n;
}

void MtmProfiler::Initialize() {
  for (const Vma& vma : address_space_.vmas()) {
    regions_.SeedRange(vma.start, vma.end(), config_.default_region_bytes);
  }
  for (auto& [start, region] : regions_) {
    region.socket_hits.assign(machine_.num_sockets(), 0);
  }
}

ComponentId MtmProfiler::RegionComponent(const Region& r) const {
  const Pte* pte = page_table_.Find(r.start);
  if (pte == nullptr) {
    // Probe the middle as well; a region may have an unmapped head.
    pte = page_table_.Find(r.start + r.bytes() / 2);
  }
  return pte == nullptr ? kInvalidComponent : pte->component;
}

bool MtmProfiler::IsSlowTierRegion(const Region& r) const {
  ComponentId c = RegionComponent(r);
  return c != kInvalidComponent && machine_.IsSlowestTier(c);
}

void MtmProfiler::OnIntervalStart() {
  scans_this_interval_ = 0;
  pebs_nominations_.clear();
  if (pebs_ != nullptr) {
    // Brief counter window at the head of the interval (§5.5).
    pebs_->SetEnabled(true);
    pebs_window_open_ = true;
  }
  SelectSamples();
}

void MtmProfiler::SelectSamples() {
  // Distribute the Equation-1 budget over the regions profiled this
  // interval. Slow-tier regions wait for PEBS nominations (1 sample each);
  // all other regions receive their quota of random pages.
  const u64 num_ps = NumPageSamples();
  u64 used = 0;
  u64 region_index = 0;
  const u64 region_count = regions_.size();

  for (auto& [start, region] : regions_) {
    region.sampled_pages.clear();
    region.sample_hits.clear();
    ++region_index;
    if (pebs_ != nullptr && IsSlowTierRegion(region)) {
      continue;  // nominated lazily by the PEBS window
    }
    if (used >= num_ps) {
      continue;  // over budget: overhead control will merge regions down
    }
    u32 quota = region.sample_quota;
    if (!config_.adaptive_sampling) {
      quota = 1;  // w/o APS: flat random sampling, one page per region
    }
    quota = static_cast<u32>(std::min<u64>(quota, num_ps - used));
    if (quota == 0) {
      quota = 1;
    }
    u64 pages = region.bytes() / kPageBytes;
    quota = static_cast<u32>(std::min<u64>(quota, pages));
    // Distinct pages: re-scanning the same PTE within a tick would read the
    // bit it just cleared and destroy the hit count.
    std::unordered_set<u64> chosen;
    while (chosen.size() < quota) {
      chosen.insert(rng_.NextBounded(pages));
    }
    for (u64 page : chosen) {
      region.sampled_pages.push_back(region.start + PagesToBytes(page));
      region.sample_hits.push_back(0);
    }
    used += quota;
  }
  (void)region_count;
  (void)region_index;
  // Prime: clear any stale accessed bit so the first scan measures this
  // interval, not history. Runs sharded — priming only mutates the sampled
  // PTEs themselves, so it commutes with the serial RNG-driven selection.
  ScanSampledPages(ScanMode::kPrime);
}

void MtmProfiler::NominateFromPebs() {
  if (pebs_ == nullptr || !pebs_window_open_) {
    return;
  }
  pebs_->SetEnabled(false);
  pebs_window_open_ = false;
  std::vector<PebsSample> samples = pebs_->Drain();
  pebs_samples_drained_ += samples.size();
  std::unordered_set<u64> nominated;
  for (const PebsSample& s : samples) {
    auto it = regions_.FindContaining(s.addr);
    if (it == regions_.end()) {
      continue;
    }
    Region& region = it->second;
    if (!IsSlowTierRegion(region)) {
      continue;  // fast-tier regions are already sampled
    }
    if (!nominated.insert(region.id).second) {
      continue;  // one sample per slow region: the PEBS-captured page
    }
    // No priming here: the PEBS event itself proves this page was accessed
    // this interval, so the first scan's accessed bit is evidence.
    region.sampled_pages.push_back(PageAlignDown(s.addr));
    region.sample_hits.push_back(0);
    pebs_nominations_.push_back(s.addr);
  }
  if (metrics_ != nullptr) {
    metrics_->Add(metrics_->Counter("profiler/pebs_samples_drained"), samples.size());
    metrics_->Add(metrics_->Counter("profiler/pebs_nominations"), pebs_nominations_.size());
  }
}

void MtmProfiler::DoScan() { ScanSampledPages(ScanMode::kScan); }

std::vector<MtmProfiler::ScanShard> MtmProfiler::PlanShards(const std::vector<Region*>& list,
                                                            u64 total_pages) const {
  std::vector<ScanShard> shards;
  if (list.empty() || total_pages == 0) {
    return shards;
  }
  const u64 max_shards =
      pool_ != nullptr ? std::min<u64>(total_pages, u64{pool_->num_threads()} * 4) : 1;
  const u64 target = (total_pages + max_shards - 1) / max_shards;  // pages per shard
  ScanShard next;
  u64 pages = 0;
  for (std::size_t r = 0; r < list.size(); ++r) {
    ++next.num_regions;
    pages += list[r]->sampled_pages.size();
    const bool last = r + 1 == list.size();
    // A shard may only end where the successor cannot share a huge page with
    // this region: two adjacent sub-huge regions over one huge mapping share
    // a single accessed bit, and splitting them across workers would race
    // (and reorder the read-and-clear against the serial path).
    const bool clean_break =
        last || list[r]->end != list[r + 1]->start || IsHugeAligned(list[r + 1]->start);
    if (last || (pages >= target && clean_break)) {
      shards.push_back(next);
      next.first_region += next.num_regions;
      next.page_offset += pages;
      next.num_regions = 0;
      pages = 0;
    }
  }
  return shards;
}

void MtmProfiler::ScanSampledPages(ScanMode mode) {
  std::vector<Region*> list;
  list.reserve(regions_.size());
  u64 total_pages = 0;
  for (auto& [start, region] : regions_) {
    if (!region.sampled_pages.empty()) {
      list.push_back(&region);
      total_pages += region.sampled_pages.size();
    }
  }
  const u64 hint_base = scans_since_hint_;
  const u64 hint_period = config_.hint_fault_period;
  const std::vector<ScanShard> shards = PlanShards(list, total_pages);
  std::vector<ShardScanResult> results(shards.size());

  auto scan_shard = [&](std::size_t s) {
    const ScanShard& shard = shards[s];
    ShardScanResult& res = results[s];
    u64 scanned = shard.page_offset;  // global 1-based after each increment
    for (std::size_t r = shard.first_region; r < shard.first_region + shard.num_regions; ++r) {
      Region& region = *list[r];
      for (std::size_t i = 0; i < region.sampled_pages.size(); ++i) {
        bool accessed = false;
        const bool mapped = page_table_.ScanAccessed(region.sampled_pages[i], &accessed);
        ++scanned;
        if (mode == ScanMode::kPrime) {
          continue;  // clearing the stale bit is the whole job
        }
        if (mapped && accessed) {
          ++region.sample_hits[i];
        }
        // Every hint_fault_period-th scan (by global scan index, so the
        // armed set is shard-independent) arms a hint fault on the scanned
        // page so the next access reveals the accessing socket (§6.2).
        if ((hint_base + scanned) % hint_period == 0) {
          res.armed.push_back(region.sampled_pages[i]);
        }
      }
    }
    res.scans = scanned - shard.page_offset;
    if (mode == ScanMode::kScan && metrics_ != nullptr) {
      res.obs.AddCounter("profiler/pte_scans", res.scans);
    }
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(shards.size(), scan_shard);
  } else {
    for (std::size_t s = 0; s < shards.size(); ++s) {
      scan_shard(s);
    }
  }

  // Merge in shard order: scan counts, then deferred hint arming (workers
  // never touch the page-table generation counter), then buffered metrics.
  for (ShardScanResult& res : results) {
    scans_this_interval_ += res.scans;
    for (VirtAddr addr : res.armed) {
      Pte* pte = page_table_.Find(addr);
      if (pte != nullptr) {
        pte->Set(Pte::kHintArmed);
        page_table_.BumpGeneration();
      }
    }
    res.obs.FlushTo(metrics_, nullptr);
  }
  if (mode == ScanMode::kScan) {
    scans_since_hint_ = (hint_base + total_pages) % hint_period;
    if (shards.empty() && metrics_ != nullptr) {
      // Keep registry interning order identical to the serial path even for
      // a degenerate empty scan.
      metrics_->Add(metrics_->Counter("profiler/pte_scans"), 0);
    }
  }
}

void MtmProfiler::ForEachRegionSharded(const std::function<void(Region&)>& fn) {
  if (pool_ == nullptr) {
    for (auto& [start, region] : regions_) {
      fn(region);
    }
    return;
  }
  std::vector<Region*> all;
  all.reserve(regions_.size());
  for (auto& [start, region] : regions_) {
    all.push_back(&region);
  }
  const std::size_t chunks =
      std::min<std::size_t>(all.size(), std::size_t{pool_->num_threads()} * 4);
  if (chunks <= 1) {
    for (Region* region : all) {
      fn(*region);
    }
    return;
  }
  pool_->ParallelFor(chunks, [&](std::size_t c) {
    const std::size_t begin = all.size() * c / chunks;
    const std::size_t end = all.size() * (c + 1) / chunks;
    for (std::size_t i = begin; i < end; ++i) {
      fn(*all[i]);
    }
  });
}

void MtmProfiler::OnScanTick(u32 tick) {
  if (tick == 0) {
    // The PEBS window closes at the first scan tick; nominated slow-tier
    // regions join the scan set from here on.
    NominateFromPebs();
  }
  DoScan();
}

void MtmProfiler::UpdateSocketAttribution() {
  std::vector<HintFaultEvent> events = engine_.DrainHintFaults();
  for (const HintFaultEvent& e : events) {
    auto it = regions_.FindContaining(e.addr);
    if (it != regions_.end()) {
      if (it->second.socket_hits.size() != machine_.num_sockets()) {
        it->second.socket_hits.assign(machine_.num_sockets(), 0);
      }
      ++it->second.socket_hits[e.socket];
    }
  }
}

void MtmProfiler::MergePass(ProfileOutput& out) {
  auto it = regions_.begin();
  while (it != regions_.end()) {
    auto next = std::next(it);
    if (next == regions_.end()) {
      break;
    }
    Region& a = it->second;
    Region& b = next->second;
    bool adjacent = a.end == b.start;
    bool similar = std::abs(a.hi - b.hi) < tau_m_current_;
    bool both_profiled = !a.sampled_pages.empty() || !b.sampled_pages.empty();
    // Regions resident on different components never merge: a merged region
    // headed by fast-tier pages would hide its slow-tier tail from the
    // PEBS-assisted slow-tier profiling path and from residency probes.
    bool same_tier = RegionComponent(a) == RegionComponent(b);
    // Never merge a union whose combined sample disparity already exceeds
    // the split threshold: the merged region would immediately qualify for
    // splitting, and the merge/split churn would erase refinement.
    u32 min_hit = ~0u;
    u32 max_hit = 0;
    for (const Region* r : {&a, &b}) {
      for (u32 h : r->sample_hits) {
        min_hit = std::min(min_hit, h);
        max_hit = std::max(max_hit, h);
      }
    }
    bool split_worthy =
        min_hit != ~0u && static_cast<double>(max_hit - min_hit) > config_.tau_s;
    if (adjacent && similar && both_profiled && same_tier && !split_worthy) {
      // Combined sample total is halved, floor one (§5.2); the freed quota
      // goes to the redistribution pool.
      u32 combined = a.sample_quota + b.sample_quota;
      u32 new_quota = std::max<u32>(1, combined / 2);
      quota_pool_ += combined - new_quota;
      double merged_hi = (a.hi * static_cast<double>(a.bytes().value()) +
                          b.hi * static_cast<double>(b.bytes().value())) /
                         static_cast<double>((a.bytes() + b.bytes()).value());
      double merged_whi;
      bool whi_init = a.whi_initialized || b.whi_initialized;
      if (a.whi_initialized && b.whi_initialized) {
        merged_whi = (a.whi + b.whi) / 2.0;
      } else {
        merged_whi = a.whi_initialized ? a.whi : b.whi;
      }
      for (u32 s = 0; s < machine_.num_sockets(); ++s) {
        a.socket_hits[s] += s < b.socket_hits.size() ? b.socket_hits[s] : 0;
      }
      it = regions_.MergeWithNext(it);
      MTM_CHECK(it != regions_.end());
      it->second.sample_quota = new_quota;
      it->second.hi = merged_hi;
      it->second.whi = merged_whi;
      it->second.whi_initialized = whi_init;
      ++out.regions_merged;
      continue;  // try to extend the merge run
    }
    ++it;
  }
}

void MtmProfiler::SplitPass(ProfileOutput& out) {
  std::vector<VirtAddr> to_split;
  for (auto& [start, region] : regions_) {
    if (region.sample_hits.size() < 2) {
      continue;
    }
    auto [min_it, max_it] =
        std::minmax_element(region.sample_hits.begin(), region.sample_hits.end());
    if (static_cast<double>(*max_it - *min_it) > config_.tau_s) {
      to_split.push_back(start);
    }
  }
  for (VirtAddr start : to_split) {
    auto it = regions_.FindContaining(start);
    MTM_CHECK(it != regions_.end());
    VirtAddr split_at = RegionMap::SplitPoint(it->second);
    if (split_at.IsZero()) {
      continue;
    }
    RegionMap::iterator first;
    RegionMap::iterator second;
    if (!regions_.Split(it, split_at, &first, &second)) {
      continue;
    }
    // Quota splits evenly; total scans unchanged (§5.2). Both halves
    // inherit the parent's hotness history.
    Region& left = first->second;
    Region& right = second->second;
    u32 q = left.sample_quota;
    left.sample_quota = std::max<u32>(1, q / 2);
    right.sample_quota = std::max<u32>(1, q - q / 2);
    right.hi = left.hi;
    right.prev_hi = left.prev_hi;
    right.whi = left.whi;
    right.whi_initialized = left.whi_initialized;
    right.socket_hits = left.socket_hits;
    ++out.regions_split;
  }
}

void MtmProfiler::RedistributeQuota() {
  // Enforce sum(quota) == num_ps: the merge pool plus any imbalance goes to
  // the regions with the largest HI variance across the last two intervals
  // (top-five records, §5.2); excess is reclaimed from the least-varying.
  const u64 num_ps = NumPageSamples();
  u64 total = 0;
  std::vector<Region*> all;
  all.reserve(regions_.size());
  for (auto& [start, region] : regions_) {
    total += region.sample_quota;
    all.push_back(&region);
  }
  quota_pool_ = 0;  // consumed by the normalization below

  if (all.empty()) {
    return;
  }
  auto variance_desc = [](Region* a, Region* b) {
    return a->HotnessVariance() > b->HotnessVariance();
  };
  if (total < num_ps) {
    u64 extra = num_ps - total;
    if (config_.adaptive_sampling) {
      std::partial_sort(all.begin(),
                        all.begin() + std::min<std::size_t>(config_.top_variance_k, all.size()),
                        all.end(), variance_desc);
      std::size_t k = std::min<std::size_t>(config_.top_variance_k, all.size());
      for (u64 i = 0; i < extra; ++i) {
        ++all[i % k]->sample_quota;
      }
    } else {
      for (u64 i = 0; i < extra; ++i) {
        ++all[rng_.NextBounded(all.size())]->sample_quota;
      }
    }
  } else if (total > num_ps) {
    u64 excess = total - num_ps;
    std::sort(all.begin(), all.end(),
              [](Region* a, Region* b) { return a->HotnessVariance() < b->HotnessVariance(); });
    for (Region* r : all) {
      while (excess > 0 && r->sample_quota > 1) {
        --r->sample_quota;
        --excess;
      }
      if (excess == 0) {
        break;
      }
    }
  }
}

ProfileOutput MtmProfiler::OnIntervalEnd() {
  ProfileOutput out;
  UpdateSocketAttribution();

  // HI and WHI updates (§5.1, §6.1). Pure per-region math with identical
  // floating-point evaluation per region, so sharding across the pool
  // cannot change a single bit of the result.
  ForEachRegionSharded([this](Region& region) {
    region.prev_hi = region.hi;
    if (!region.sampled_pages.empty()) {
      double sum = 0.0;
      for (u32 hits : region.sample_hits) {
        sum += static_cast<double>(hits);
      }
      region.hi = sum / static_cast<double>(region.sampled_pages.size());
    } else {
      // Unprofiled slow-tier region with no PEBS activity: observed cold.
      region.hi = 0.0;
    }
    if (region.whi_initialized) {
      region.whi = config_.alpha * region.hi + (1.0 - config_.alpha) * region.whi;
    } else {
      region.whi = region.hi;
      region.whi_initialized = true;
    }
    // Socket-attribution decay so stale views age out.
    for (u32& hits : region.socket_hits) {
      hits /= 2;
    }
  });

  if (config_.adaptive_regions) {
    MergePass(out);
    SplitPass(out);
  }

  // Overhead control (§5.3): if the region count exceeds the sample budget,
  // escalate tau_m across intervals until merging catches up, then reset.
  if (config_.overhead_control) {
    const u64 num_ps = NumPageSamples();
    if (regions_.size() > num_ps) {
      tau_m_current_ = std::min(tau_m_current_ * 1.5 + 0.1,
                                static_cast<double>(config_.num_scans));
    } else {
      tau_m_current_ = config_.tau_m;
    }
    RedistributeQuota();
  }

  // Emit the policy view.
  out.entries.reserve(regions_.size());
  for (auto& [start, region] : regions_) {
    HotnessEntry e;
    e.start = region.start;
    e.len = region.bytes();
    e.hotness = region.whi;
    e.latest_hi = region.hi;
    e.prev_hi = region.prev_hi;
    // Intra-region disparity of this interval's sample hits, the same
    // signal the split pass thresholds with tau_s, normalized to [0, 1].
    if (region.sample_hits.size() >= 2) {
      u32 min_hits = region.sample_hits[0];
      u32 max_hits = region.sample_hits[0];
      for (u32 hits : region.sample_hits) {
        min_hits = std::min(min_hits, hits);
        max_hits = std::max(max_hits, hits);
      }
      e.skew = static_cast<double>(max_hits - min_hits) /
               static_cast<double>(std::max<u32>(1, config_.num_scans));
    }
    u32 best_socket = 0;
    u32 best_hits = 0;
    for (u32 s = 0; s < region.socket_hits.size(); ++s) {
      if (region.socket_hits[s] > best_hits) {
        best_hits = region.socket_hits[s];
        best_socket = s;
      }
    }
    e.preferred_socket = best_socket;
    out.entries.push_back(e);
    if (region.whi >= config_.hot_whi_threshold) {
      out.hot_bytes += region.bytes();
    }
  }

  out.pte_scans = scans_this_interval_;
  out.num_regions = regions_.size();
  if (metrics_ != nullptr) {
    metrics_->Add(metrics_->Counter("profiler/regions_merged"), out.regions_merged);
    metrics_->Add(metrics_->Counter("profiler/regions_split"), out.regions_split);
    metrics_->Set(metrics_->Gauge("profiler/num_regions"),
                  static_cast<double>(regions_.size()));
  }
  out.profiling_cost_ns =
      NanosFromDouble(static_cast<double>(scans_this_interval_) * EffectiveScanCost()) +
      pebs_samples_drained_ * config_.pebs_drain_per_sample_ns;
  last_scans_ = scans_this_interval_;
  pebs_samples_drained_ = 0;
  return out;
}

Bytes MtmProfiler::MemoryOverheadBytes() const {
  // Region metadata: begin address + offset, current and historical hotness
  // (two floats), quota, and the socket tallies — per §5.3's accounting.
  u64 per_region = sizeof(Region) + machine_.num_sockets() * sizeof(u32);
  u64 samples = 0;
  for (const auto& [start, region] : regions_) {
    samples += region.sampled_pages.capacity() * sizeof(VirtAddr) +
               region.sample_hits.capacity() * sizeof(u32);
  }
  // Hash-map index over address ranges (§9.1) modeled at ~1.5x node cost.
  u64 index = regions_.size() * (sizeof(void*) * 4 + sizeof(u64));
  return Bytes(regions_.size() * per_region + samples + index);
}

}  // namespace mtm
