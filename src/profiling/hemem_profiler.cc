#include "src/profiling/hemem_profiler.h"

#include "src/common/types.h"

namespace mtm {

ProfileOutput HememProfiler::OnIntervalEnd() {
  ProfileOutput out;
  for (auto& [vpn, count] : counts_) {
    count *= config_.cooling_factor;
  }
  std::vector<PebsSample> samples = pebs_.Drain();
  for (const PebsSample& s : samples) {
    counts_[VpnOf(s.addr)] += 1.0;
  }
  for (auto it = counts_.begin(); it != counts_.end();) {
    if (it->second < 0.05) {
      it = counts_.erase(it);
      continue;
    }
    Bytes size = kPageBytes;
    const Pte* pte = page_table_.Find(AddrOfVpn(it->first), &size);
    if (pte != nullptr) {
      HotnessEntry e;
      e.start = AddrOfVpn(it->first).AlignDown(size.value());
      e.len = size;
      e.hotness = it->second;
      out.entries.push_back(e);
      if (it->second >= config_.hot_threshold) {
        out.hot_bytes += size;
      }
    }
    ++it;
  }
  out.num_regions = counts_.size();
  out.profiling_cost_ns = samples.size() * config_.drain_per_sample_ns;
  return out;
}

Bytes HememProfiler::MemoryOverheadBytes() const {
  return Bytes(counts_.size() * (sizeof(Vpn) + sizeof(double) + sizeof(void*) * 2));
}

}  // namespace mtm
