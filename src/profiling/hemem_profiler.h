// HeMem baseline profiler (§2.1, §9.6).
//
// "HeMem only uses perf-counters for mem-profiling": PEBS runs continuously
// (DRAM and PM load events), per-page sample counts accumulate with periodic
// cooling, and a page is hot once its count crosses a threshold. The
// counters' 1-in-200 randomness misses hot pages — the weakness §5.5 calls
// out — and there is no region formation at all.
#pragma once

#include <map>

#include "src/common/types.h"
#include "src/common/units.h"
#include "src/profiling/profiler.h"
#include "src/sim/page_table.h"
#include "src/sim/pebs.h"

namespace mtm {

class HememProfiler : public Profiler {
 public:
  struct Config {
    double hot_threshold = 2.0;   // PEBS samples to classify hot
    double cooling_factor = 0.5;  // per-interval decay
    SimNanos drain_per_sample_ns = Nanos(40);
  };

  HememProfiler(PageTable& page_table, PebsEngine& pebs, Config config)
      : page_table_(page_table), pebs_(pebs), config_(config) {}

  std::string name() const override { return "hemem"; }

  void Initialize() override { pebs_.SetEnabled(true); }  // always-on PEBS

  ProfileOutput OnIntervalEnd() override;
  Bytes MemoryOverheadBytes() const override;

 private:
  PageTable& page_table_;
  PebsEngine& pebs_;
  Config config_;
  // Ordered by Vpn so the emitted entry list is independent of hash layout.
  std::map<Vpn, double> counts_;
};

}  // namespace mtm
