#include "src/profiling/damon.h"

#include <algorithm>
#include <vector>

#include "src/common/logging.h"
#include "src/common/types.h"

namespace mtm {

void DamonProfiler::Initialize() {
  // One region per VMA: DAMON seeds its regions from the virtual memory
  // area tree.
  for (const Vma& vma : address_space_.vmas()) {
    regions_.SeedWhole(vma.start, vma.end());
  }
}

void DamonProfiler::OnIntervalStart() {
  scans_this_interval_ = 0;
  for (auto& [start, region] : regions_) {
    state_[region.id].nr_accesses = 0;
  }
}

void DamonProfiler::OnScanTick(u32 /*tick*/) {
  // DAMON's access check: read the accessed bit of the page it mkold'ed at
  // the previous tick (so the bit reflects exactly one sampling window),
  // then pick a new random page and mkold it for the next tick.
  for (auto& [start, region] : regions_) {
    DamonState& st = state_[region.id];
    if (!st.sampled.IsZero() && st.sampled >= region.start && st.sampled < region.end) {
      bool accessed = false;
      if (page_table_.ScanAccessed(st.sampled, &accessed) && accessed) {
        ++st.nr_accesses;
      }
      ++scans_this_interval_;
    }
    u64 pages = region.bytes() / kPageBytes;
    VirtAddr addr = region.start + PagesToBytes(rng_.NextBounded(pages));
    bool ignored = false;
    page_table_.ScanAccessed(addr, &ignored);  // mkold: clear for the next check
    ++scans_this_interval_;
    st.sampled = addr;
  }
}

ProfileOutput DamonProfiler::OnIntervalEnd() {
  ProfileOutput out;

  // Update the age-smoothed estimates before structural changes.
  for (auto& [start, region] : regions_) {
    DamonState& st = state_[region.id];
    st.smoothed = 0.5 * st.smoothed + 0.5 * static_cast<double>(st.nr_accesses);
  }

  // Merge pass: adjacent regions with similar smoothed access estimates.
  auto it = regions_.begin();
  while (it != regions_.end()) {
    auto next = std::next(it);
    if (next == regions_.end()) {
      break;
    }
    Region& a = it->second;
    Region& b = next->second;
    u32 ca = state_[a.id].nr_accesses;
    u32 cb = state_[b.id].nr_accesses;
    double diff = std::abs(state_[a.id].smoothed - state_[b.id].smoothed);
    if (a.end == b.start && diff <= config_.merge_threshold &&
        regions_.size() > config_.min_regions) {
      u32 merged = std::max(ca, cb);
      double smoothed = std::max(state_[a.id].smoothed, state_[b.id].smoothed);
      state_.erase(b.id);
      it = regions_.MergeWithNext(it);
      MTM_CHECK(it != regions_.end());
      state_[it->second.id].nr_accesses = merged;
      state_[it->second.id].smoothed = smoothed;
      ++out.regions_merged;
      continue;
    }
    ++it;
  }

  // Split pass: if fewer than half the budget exists, split every region in
  // two at a random point (DAMON's ad-hoc split).
  if (regions_.size() < config_.max_regions / 2) {
    std::vector<VirtAddr> starts;
    starts.reserve(regions_.size());
    for (auto& [start, region] : regions_) {
      starts.push_back(start);
    }
    for (VirtAddr start : starts) {
      if (regions_.size() >= config_.max_regions) {
        break;
      }
      auto rit = regions_.FindContaining(start);
      MTM_CHECK(rit != regions_.end());
      Region& r = rit->second;
      u64 pages = r.bytes() / kPageBytes;
      if (pages < 2) {
        continue;
      }
      // Random split offset in [1, pages-1], page aligned, huge-unaware.
      VirtAddr split_at = r.start + PagesToBytes(1 + rng_.NextBounded(pages - 1));
      RegionMap::iterator first;
      RegionMap::iterator second;
      if (regions_.Split(rit, split_at, &first, &second)) {
        DamonState parent = state_[first->second.id];
        state_[second->second.id] = parent;
        ++out.regions_split;
      }
    }
  }

  for (auto& [start, region] : regions_) {
    DamonState& st = state_[region.id];
    HotnessEntry e;
    e.start = region.start;
    e.len = region.bytes();
    e.hotness = st.smoothed;
    out.entries.push_back(e);
    if (e.hotness >= config_.hot_threshold) {
      out.hot_bytes += e.len;
    }
  }
  out.pte_scans = scans_this_interval_;
  out.num_regions = regions_.size();
  out.profiling_cost_ns = scans_this_interval_ * config_.one_scan_overhead_ns;
  return out;
}

Bytes DamonProfiler::MemoryOverheadBytes() const {
  return Bytes(regions_.size() * (sizeof(Region) + sizeof(DamonState) + sizeof(void*) * 4));
}

}  // namespace mtm
