// DAMON baseline profiler (the Linux data-access monitor, §3).
//
// Faithful to the behaviors the paper critiques:
//  * regions are initially formed from the VMA tree (one region per VMA) —
//    "too coarse-grained to capture B even after splitting" (Figure 6);
//  * exactly one random page per region is checked per sampling tick;
//  * adjacent regions with similar access counts merge;
//  * when fewer than half of max_regions exist, every region is split into
//    two *randomly sized* regions — the "ad-hoc" splitting of §3;
//  * overhead is controlled by bounding the region count in
//    [min_regions, max_regions], not by counting PTE scans;
//  * no huge-page awareness in region formation.
#pragma once

#include <unordered_map>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/mem/address_space.h"
#include "src/profiling/profiler.h"
#include "src/profiling/region.h"
#include "src/sim/page_table.h"

namespace mtm {

class DamonProfiler : public Profiler {
 public:
  struct Config {
    u32 min_regions = 10;
    u32 max_regions = 1000;
    // Regions merge when their (age-smoothed) access estimates differ by
    // at most this value. Real DAMON compares counts aggregated over many
    // sampling intervals; comparing smoothed values models that.
    double merge_threshold = 0.35;
    SimNanos one_scan_overhead_ns = Nanos(120);
    double hot_threshold = 1.0;  // nr_accesses at/above which a region is hot
    u64 seed = 0xda3017;
  };

  DamonProfiler(PageTable& page_table, const AddressSpace& address_space, Config config)
      : page_table_(page_table), address_space_(address_space), config_(config),
        rng_(config.seed) {}

  std::string name() const override { return "damon"; }
  void Initialize() override;
  void OnIntervalStart() override;
  void OnScanTick(u32 tick) override;
  ProfileOutput OnIntervalEnd() override;
  Bytes MemoryOverheadBytes() const override;

  const RegionMap& regions() const { return regions_; }

 private:
  struct DamonState {
    u32 nr_accesses = 0;   // hits this aggregation interval
    double smoothed = 0.0;  // age-weighted access estimate across intervals
    VirtAddr sampled;
  };

  PageTable& page_table_;
  const AddressSpace& address_space_;
  Config config_;
  Rng rng_;
  RegionMap regions_;
  // Keyed by region id (region.sample_hits is unused by DAMON).
  std::unordered_map<u64, DamonState> state_;
  u64 scans_this_interval_ = 0;
};

}  // namespace mtm
