// MTM's adaptive memory profiler (§5 of the paper).
//
// Key properties, each mapping to a paper mechanism:
//  * Profiling overhead is controlled by the total number of PTE scans, not
//    the number of regions: the per-interval page-sample budget num_ps
//    follows Equation 1, with the 1-in-12 hint-fault cost amortized into
//    one_scan_overhead (§5.3, §6.2).
//  * Each sampled page is scanned num_scans (= 3) times per interval; a
//    region's hotness indication HI is the mean hit count of its sampled
//    pages, in [0, num_scans] (§5.1).
//  * Adjacent regions merge when their latest HIs differ by less than τm;
//    a region splits when the max-min disparity across its sampled pages
//    exceeds τs. Split points are huge-page aligned (§5.1, §5.4).
//  * Sample quota freed by merges is redistributed to the regions with the
//    top-5 hotness-indication variance over the last two intervals (§5.2).
//  * When the region count exceeds num_ps, τm escalates across intervals
//    until merging brings the count back under budget, then resets (§5.3).
//  * The slowest tier is profiled event-driven: PEBS nominates regions with
//    observed accesses and only those receive a PTE-scanned sample — the
//    page PEBS captured (§5.5).
//  * WHI (EMA of HI, Equation 2, α = 0.5) is maintained per region and is
//    the hotness the migration policy consumes (§6.1).
//
// Ablation switches (adaptive_regions, adaptive_sampling, overhead_control,
// use_pebs) reproduce the §9.3 "w/o AMR / APS / OC / PEBS" variants.
#pragma once

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/mem/address_space.h"
#include "src/obs/delta.h"
#include "src/profiling/profiler.h"
#include "src/profiling/region.h"
#include "src/sim/access_engine.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"
#include "src/sim/pebs.h"

namespace mtm {

class MtmProfiler : public Profiler {
 public:
  struct Config {
    u32 num_scans = 3;
    double overhead_fraction = 0.05;
    SimNanos interval_ns;            // required
    SimNanos one_scan_overhead_ns = Nanos(120);  // measured offline in the paper
    double tau_m = 1.0;                   // default num_scans / 3
    double tau_s = 2.0;                   // default 2 * num_scans / 3
    double alpha = 0.5;                   // Equation 2
    u32 hint_fault_period = 12;           // 1 hint fault per 12 PTE scans
    u32 top_variance_k = 5;               // "top-five" variance records
    Bytes default_region_bytes = kHugePageBytes;
    double hot_whi_threshold = 1.0;       // WHI above which a region is "hot"
    SimNanos pebs_drain_per_sample_ns = Nanos(40);

    // Ablations (§9.3).
    bool adaptive_regions = true;   // AMR
    bool adaptive_sampling = true;  // APS
    bool overhead_control = true;   // OC
    bool use_pebs = true;           // performance-counter assistance

    // Workers for the sharded PTE-scan path (DESIGN.md §9). Any value
    // produces byte-identical profiling results; 1 runs fully inline.
    u32 scan_threads = 1;

    u64 seed = 0x4d544d;  // deterministic page sampling
  };

  MtmProfiler(const Machine& machine, PageTable& page_table,
              const AddressSpace& address_space, AccessEngine& engine, PebsEngine* pebs,
              Config config);

  std::string name() const override { return "mtm"; }
  void Initialize() override;
  void OnIntervalStart() override;
  void OnScanTick(u32 tick) override;
  ProfileOutput OnIntervalEnd() override;
  Bytes MemoryOverheadBytes() const override;

  // Equation 1: the per-interval page-sample budget.
  u64 NumPageSamples() const;

  // Introspection for tests and Table 7.
  const RegionMap& regions() const { return regions_; }
  double current_tau_m() const { return tau_m_current_; }
  u64 last_interval_scans() const { return last_scans_; }

 private:
  // The two passes the sharded scan engine runs over sampled pages: the
  // interval-start priming pass (clear stale accessed bits, count scans) and
  // the per-tick hit-counting pass (count hits, arm hint faults).
  enum class ScanMode { kPrime, kScan };

  // One contiguous run of scan-list regions executed by one worker. Shards
  // never split two adjacent sub-huge regions sharing a huge mapping, so no
  // two workers ever touch the same PTE.
  struct ScanShard {
    std::size_t first_region = 0;
    std::size_t num_regions = 0;
    u64 page_offset = 0;  // global index of the shard's first sampled page
  };

  // Everything a shard produces; merged by the coordinator in shard order.
  struct ShardScanResult {
    u64 scans = 0;
    std::vector<VirtAddr> armed;  // hint-fault pages, in scan order
    ObsDelta obs;                 // buffered metric deltas (contention-free)
  };

  // Effective per-scan cost including the amortized hint fault (§6.2).
  double EffectiveScanCost() const;

  ComponentId RegionComponent(const Region& r) const;
  bool IsSlowTierRegion(const Region& r) const;

  void SelectSamples();
  void NominateFromPebs();
  void DoScan();

  // The sharded scan engine (DESIGN.md §9): flattens regions holding
  // sampled pages, partitions them into contiguous shards, scans each shard
  // (on the pool when scan_threads > 1), and merges per-shard results in
  // shard order. Byte-identical to the serial path for any thread count.
  void ScanSampledPages(ScanMode mode);
  std::vector<ScanShard> PlanShards(const std::vector<Region*>& list, u64 total_pages) const;

  // Applies fn to every region, sharded across the pool when available.
  // fn must confine its writes to the region it is given.
  void ForEachRegionSharded(const std::function<void(Region&)>& fn);
  void MergePass(ProfileOutput& out);
  void SplitPass(ProfileOutput& out);
  void RedistributeQuota();
  void UpdateSocketAttribution();

  const Machine& machine_;
  PageTable& page_table_;
  const AddressSpace& address_space_;
  AccessEngine& engine_;
  PebsEngine* pebs_;
  Config config_;
  Rng rng_;
  std::unique_ptr<ThreadPool> pool_;  // null when scan_threads <= 1

  RegionMap regions_;
  double tau_m_current_;
  u64 quota_pool_ = 0;  // samples freed by merges, pending redistribution

  // Per-interval working state.
  u64 scans_this_interval_ = 0;
  u64 last_scans_ = 0;
  u64 scans_since_hint_ = 0;
  u64 pebs_samples_drained_ = 0;
  bool pebs_window_open_ = false;
  std::vector<VirtAddr> pebs_nominations_;
};

}  // namespace mtm
