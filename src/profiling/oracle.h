// Ground-truth profiling-quality evaluation (Figure 1).
//
// The paper defines, for hot-page detection:
//   recall   = correctly-detected hot / true hot
//   accuracy = correctly-detected hot / total detected hot
// computed here byte-weighted against workload-declared true-hot ranges
// (GUPS knows its hot set a priori, exactly as in the paper's methodology).
//
// The claimed-hot set is built uniformly across profilers: entries ranked by
// hotness descending, claimed until the claimed volume reaches the true hot
// volume or hotness falls to zero. A coarse profiler that lumps hot and
// cold pages into one region claims many cold bytes and scores low accuracy
// — the DAMON behavior in Figure 1(b).
#pragma once

#include <vector>

#include "src/common/types.h"
#include "src/profiling/profiler.h"

namespace mtm {

struct HotRange {
  VirtAddr start;
  Bytes len;
  VirtAddr end() const { return start + len; }
};

struct ProfilingQuality {
  double recall = 0.0;
  double accuracy = 0.0;
  Bytes true_hot_bytes;
  Bytes claimed_hot_bytes;
  Bytes correct_hot_bytes;
};

class Oracle {
 public:
  // `truth` need not be sorted or disjoint; it is normalized internally.
  static ProfilingQuality Evaluate(std::vector<HotRange> truth, const ProfileOutput& output);

  // Bytes of overlap between [start, start+len) and the normalized truth.
  static Bytes OverlapBytes(const std::vector<HotRange>& sorted_truth, VirtAddr start, Bytes len);

  // Sorts and merges ranges in place.
  static void Normalize(std::vector<HotRange>& ranges);
};

}  // namespace mtm
