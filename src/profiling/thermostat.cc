#include "src/profiling/thermostat.h"

#include "src/common/logging.h"
#include "src/common/types.h"

namespace mtm {

ThermostatProfiler::ThermostatProfiler(const AddressSpace& address_space,
                                       const AccessTracker& tracker, Config config)
    : address_space_(address_space), tracker_(tracker), config_(config), rng_(config.seed) {
  MTM_CHECK_GT(config_.interval_ns, SimNanos{});
}

u64 ThermostatProfiler::SampleBudget() const {
  double budget_ns = static_cast<double>(config_.interval_ns.value()) * config_.overhead_fraction;
  double per_sample = static_cast<double>(config_.one_scan_overhead_ns.value()) *
                      config_.cost_multiplier * static_cast<double>(config_.scans_equivalent);
  u64 n = static_cast<u64>(budget_ns / per_sample);
  return n == 0 ? 1 : n;
}

void ThermostatProfiler::Initialize() {
  for (const Vma& vma : address_space_.vmas()) {
    for (VirtAddr a = vma.start; a < vma.end(); a += config_.region_bytes.value()) {
      FixedRegion r;
      r.start = a;
      r.len = std::min(config_.region_bytes, Bytes(vma.end() - a));
      regions_.push_back(r);
    }
  }
}

void ThermostatProfiler::OnIntervalStart() {
  // Sample one random 4 KiB page in each region of a rotating window sized
  // by the overhead budget.
  u64 budget = std::min<u64>(SampleBudget(), regions_.size());
  sampled_this_interval_ = budget;
  for (auto& r : regions_) {
    r.sampled = VirtAddr{};
  }
  for (u64 i = 0; i < budget; ++i) {
    FixedRegion& r = regions_[(rotation_ + i) % regions_.size()];
    u64 pages = NumPages(r.len);
    r.sampled = r.start + PagesToBytes(rng_.NextBounded(pages));
  }
  rotation_ = (rotation_ + budget) % regions_.size();
}

ProfileOutput ThermostatProfiler::OnIntervalEnd() {
  ProfileOutput out;
  for (auto& r : regions_) {
    if (!r.sampled.IsZero()) {
      // Exact count of the sampled 4 KiB page (protection-fault counting).
      // Inside a huge page this still measures a single sub-page — the
      // quality loss the paper calls out.
      r.hotness = static_cast<double>(tracker_.CountSince(VpnOf(r.sampled)));
    } else {
      r.hotness *= 0.5;  // decay stale estimates of unsampled regions
    }
    HotnessEntry e;
    e.start = r.start;
    e.len = r.len;
    e.hotness = r.hotness;
    out.entries.push_back(e);
    if (r.hotness >= config_.hot_threshold) {
      out.hot_bytes += r.len;
    }
  }
  out.num_regions = regions_.size();
  out.pte_scans = sampled_this_interval_;
  out.profiling_cost_ns = NanosFromDouble(
      static_cast<double>(sampled_this_interval_) *
      static_cast<double>(config_.one_scan_overhead_ns.value()) * config_.cost_multiplier *
      static_cast<double>(config_.scans_equivalent));
  return out;
}

Bytes ThermostatProfiler::MemoryOverheadBytes() const {
  return Bytes(regions_.size() * sizeof(FixedRegion));
}

}  // namespace mtm
