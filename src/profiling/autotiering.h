// AutoTiering baseline profiler (§3, §9.1).
//
// AutoTiering "randomly chooses 256MB pages for profiling to detect hot
// pages" each interval and has no systematic, hotness-ranked strategy. The
// model: each interval pick random 2 MiB chunks totaling the scan window,
// scan a handful of PTE access bits per chunk once, and report the accessed
// fraction as the chunk's hotness. Randomness in both chunk choice and page
// choice makes profiling quality uncontrolled — the behavior Figure 1
// demonstrates (slow ramp to high recall).
#pragma once

#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/mem/address_space.h"
#include "src/profiling/profiler.h"
#include "src/sim/page_table.h"

namespace mtm {

class AutoTieringProfiler : public Profiler {
 public:
  struct Config {
    Bytes scan_window_bytes;    // required: 256MB / sim scale
    Bytes chunk_bytes = kHugePageBytes;
    u32 pages_per_chunk = 4;   // PTEs sampled per chunk, single scan each
    double decay = 0.98;        // accumulated hotness decay per interval
    SimNanos one_scan_overhead_ns = Nanos(120);
    u64 seed = 0xa0707;
  };

  AutoTieringProfiler(PageTable& page_table, const AddressSpace& address_space, Config config)
      : page_table_(page_table), address_space_(address_space), config_(config),
        rng_(config.seed) {}

  std::string name() const override { return "autotiering"; }
  void OnIntervalStart() override;
  ProfileOutput OnIntervalEnd() override;
  Bytes MemoryOverheadBytes() const override;

 private:
  struct Chunk {
    VirtAddr start;
    Bytes len;
    double hotness = 0.0;
  };

  PageTable& page_table_;
  const AddressSpace& address_space_;
  Config config_;
  Rng rng_;
  std::vector<Chunk> sampled_chunks_;
  // Hot chunks identified so far (start -> decayed hotness): random
  // sampling is slow, but what it finds is remembered. Ordered by address
  // so the emitted entry list is independent of hash layout.
  std::map<VirtAddr, double> accumulated_;
  u64 scans_this_interval_ = 0;
};

}  // namespace mtm
