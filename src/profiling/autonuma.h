// Tiered-AutoNUMA profiler (vanilla and patched), §3/§9.
//
// Linux NUMA balancing profiles by unmapping ("hint-arming") a window of
// virtual address space each scan period; the next access to an armed page
// takes a hint fault that tells the kernel which task touched which page.
//
//  * Vanilla tiered-AutoNUMA promotes a page once it has faulted twice
//    (two-touch filter); hotness is effectively binary.
//  * Patched tiered-AutoNUMA ("hot page selection with hint page fault
//    latency" + "adjust hot threshold automatically") implements MFU:
//    hotness is the accumulated, decayed fault count, and the policy's
//    threshold adapts to hit the promotion budget.
//
// The profiler arms a fixed-size window (256 MB on the paper's testbed,
// scaled with the simulation) per interval, walking the address space
// cyclically as task_numa_work does.
#pragma once

#include <map>

#include "src/common/types.h"
#include "src/mem/address_space.h"
#include "src/profiling/profiler.h"
#include "src/sim/access_engine.h"
#include "src/sim/page_table.h"

namespace mtm {

class AutoNumaProfiler : public Profiler {
 public:
  struct Config {
    Bytes scan_window_bytes;    // required: 256MB / sim scale
    bool patched = true;        // MFU + auto threshold (the default baseline)
    SimNanos arm_cost_ns = Nanos(120);  // cost to arm one PTE (a PTE write)
    double decay = 0.85;         // per-interval decay of fault counts
    double hot_threshold = 1.5;  // vanilla two-touch rule (with decay)
  };

  AutoNumaProfiler(PageTable& page_table, const AddressSpace& address_space,
                   AccessEngine& engine, Config config)
      : page_table_(page_table), address_space_(address_space), engine_(engine),
        config_(config) {}

  std::string name() const override {
    return config_.patched ? "tiered-autonuma" : "vanilla-tiered-autonuma";
  }
  void OnIntervalStart() override;
  ProfileOutput OnIntervalEnd() override;
  Bytes MemoryOverheadBytes() const override;

 private:
  struct PageStat {
    double faults = 0.0;  // decayed fault count
    u32 last_socket = 0;
  };

  PageTable& page_table_;
  const AddressSpace& address_space_;
  AccessEngine& engine_;
  Config config_;

  Bytes scan_cursor_;    // byte offset into the concatenated VMA space
  u64 armed_this_interval_ = 0;
  // Ordered by Vpn so the emitted entry list is independent of hash layout.
  std::map<Vpn, PageStat> stats_;
};

}  // namespace mtm
