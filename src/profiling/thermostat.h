// Thermostat baseline profiler (§3, §9.3).
//
// Thermostat keeps fixed-size (2 MiB) regions and samples one random 4 KiB
// page per region, counting its accesses exactly by write-protecting it and
// taking protection faults. Modeled consequences, per the paper:
//  * exact counts for the sampled page (we read them from the access
//    tracker, standing in for fault counting);
//  * a per-sample cost ~2.5x MTM's PTE-scan cost — so under the same
//    overhead budget Thermostat profiles proportionally fewer pages;
//  * inside a huge page it still samples a single 4 KiB sub-page, losing
//    profiling quality (§5.4).
#pragma once

#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/mem/address_space.h"
#include "src/profiling/profiler.h"
#include "src/sim/access_tracker.h"

namespace mtm {

class ThermostatProfiler : public Profiler {
 public:
  struct Config {
    Bytes region_bytes = kHugePageBytes;  // fixed-size regions
    double cost_multiplier = 2.5;       // vs one PTE scan (paper §9.3)
    u32 scans_equivalent = 3;           // budget parity with MTM's num_scans
    SimNanos one_scan_overhead_ns = Nanos(120);
    double overhead_fraction = 0.05;
    SimNanos interval_ns;  // required
    double hot_threshold = 8.0;  // exact accesses/interval to call a page hot
    u64 seed = 0x7e7a0;
  };

  ThermostatProfiler(const AddressSpace& address_space, const AccessTracker& tracker,
                     Config config);

  std::string name() const override { return "thermostat"; }
  void Initialize() override;
  void OnIntervalStart() override;
  ProfileOutput OnIntervalEnd() override;
  Bytes MemoryOverheadBytes() const override;

  // Number of regions the overhead budget lets Thermostat sample per
  // interval.
  u64 SampleBudget() const;

 private:
  struct FixedRegion {
    VirtAddr start;
    Bytes len;
    VirtAddr sampled;   // page sampled this interval (0 = unsampled)
    u64 baseline = 0;       // tracker count when sampling started
    double hotness = 0.0;
  };

  const AddressSpace& address_space_;
  const AccessTracker& tracker_;
  Config config_;
  Rng rng_;
  std::vector<FixedRegion> regions_;
  u64 rotation_ = 0;  // rotating window over regions when budget < regions
  u64 sampled_this_interval_ = 0;
};

}  // namespace mtm
