#include "src/profiling/autotiering.h"

#include "src/common/types.h"

namespace mtm {

void AutoTieringProfiler::OnIntervalStart() {
  sampled_chunks_.clear();
  scans_this_interval_ = 0;
  Bytes budget = config_.scan_window_bytes;
  const auto& vmas = address_space_.vmas();
  const Bytes total = address_space_.total_bytes();
  if (vmas.empty() || total < config_.chunk_bytes) {
    return;
  }
  while (budget >= config_.chunk_bytes) {
    // Byte-weighted random chunk over the whole mapped space.
    Bytes offset = Bytes(rng_.NextBounded(total.value()));
    budget -= config_.chunk_bytes;
    Bytes walked;
    for (const Vma& vma : vmas) {
      if (offset < walked + vma.len) {
        Bytes within = (offset - walked) / config_.chunk_bytes * config_.chunk_bytes;
        if (within + config_.chunk_bytes <= vma.len) {
          sampled_chunks_.push_back(Chunk{vma.start + within, config_.chunk_bytes, 0.0});
        }
        break;
      }
      walked += vma.len;
    }
  }
}

ProfileOutput AutoTieringProfiler::OnIntervalEnd() {
  ProfileOutput out;
  for (auto it = accumulated_.begin(); it != accumulated_.end();) {
    it->second *= config_.decay;
    it = it->second < 0.05 ? accumulated_.erase(it) : std::next(it);
  }
  for (Chunk& c : sampled_chunks_) {
    u32 hits = 0;
    u64 pages = c.len / kPageBytes;
    for (u32 i = 0; i < config_.pages_per_chunk; ++i) {
      VirtAddr addr = c.start + PagesToBytes(rng_.NextBounded(pages));
      bool accessed = false;
      if (page_table_.ScanAccessed(addr, &accessed) && accessed) {
        ++hits;
      }
      ++scans_this_interval_;
    }
    c.hotness = static_cast<double>(hits) / static_cast<double>(config_.pages_per_chunk);
    if (c.hotness > 0.0) {
      double& acc = accumulated_[c.start];
      acc = std::max(acc, c.hotness);
    } else {
      accumulated_.erase(c.start);  // freshly observed cold
    }
  }
  for (const auto& [start, hotness] : accumulated_) {
    HotnessEntry e;
    e.start = start;
    e.len = config_.chunk_bytes;
    e.hotness = hotness;
    out.entries.push_back(e);
    out.hot_bytes += e.len;
  }
  out.num_regions = accumulated_.size();
  out.pte_scans = scans_this_interval_;
  out.profiling_cost_ns = scans_this_interval_ * config_.one_scan_overhead_ns;
  return out;
}

Bytes AutoTieringProfiler::MemoryOverheadBytes() const {
  return Bytes(sampled_chunks_.capacity() * sizeof(Chunk));
}

}  // namespace mtm
