// Memory regions and the region map used by MTM's adaptive profiler (§5.1).
//
// A region is a contiguous virtual address range inside one VMA. Regions
// default to the span of a last-level page directory entry (2 MiB). The map
// supports the paper's two structural operations:
//   * merge of two adjacent regions whose hotness differs by less than τm;
//   * split of one region into two halves when the intra-region sample
//     disparity exceeds τs — with the split point adjusted to a huge-page
//     boundary so a huge page is never profiled in two regions (§5.4).
// Merging and splitting act on *logical* regions only; no PTE changes.
#pragma once

#include <map>
#include <vector>

#include "src/common/types.h"

namespace mtm {

struct Region {
  u64 id = 0;  // stable identity across merges/splits (new ids for products)
  VirtAddr start;
  VirtAddr end;

  // Profiling state (§5.2): number of page samples this region receives per
  // interval, and the PTE-scan hit counts of the current interval's samples.
  u32 sample_quota = 1;
  std::vector<VirtAddr> sampled_pages;
  std::vector<u32> sample_hits;  // per sampled page, 0..num_scans

  // Hotness indication (§6.1): HI of the last two intervals and the EMA WHI.
  double hi = 0.0;
  double prev_hi = 0.0;
  double whi = 0.0;
  bool whi_initialized = false;

  // Multi-view support: per-socket hint-fault tallies (decayed), §6.2.
  std::vector<u32> socket_hits;

  Bytes bytes() const { return Bytes(end - start); }
  double HotnessVariance() const {
    double d = hi - prev_hi;
    return d < 0 ? -d : d;
  }
};

// Ordered, non-overlapping regions keyed by start address.
class RegionMap {
 public:
  using Map = std::map<VirtAddr, Region>;
  using iterator = Map::iterator;
  using const_iterator = Map::const_iterator;

  // Carves [start, end) into regions of at most `region_bytes`, aligned so
  // every boundary except the ends is a multiple of region_bytes.
  void SeedRange(VirtAddr start, VirtAddr end, Bytes region_bytes);

  // Inserts [start, end) as one region (DAMON-style one-region-per-VMA
  // seeding).
  void SeedWhole(VirtAddr start, VirtAddr end);

  std::size_t size() const { return regions_.size(); }
  bool empty() const { return regions_.empty(); }

  iterator begin() { return regions_.begin(); }
  iterator end() { return regions_.end(); }
  const_iterator begin() const { return regions_.begin(); }
  const_iterator end() const { return regions_.end(); }

  // Region containing addr, or end().
  iterator FindContaining(VirtAddr addr);

  // Merges the region at `it` with its successor if they are adjacent.
  // The merged region keeps `it`'s id; sample quotas are combined by the
  // caller. Returns an iterator to the merged region; invalid if the
  // successor is missing or not adjacent (returns end()).
  iterator MergeWithNext(iterator it);

  // Splits the region at `it` at `split_addr` (exclusive end of the first
  // half). Returns iterators to both halves via out parameters. The first
  // half keeps the region id; the second gets a fresh id.
  bool Split(iterator it, VirtAddr split_addr, iterator* first, iterator* second);

  // The huge-page-aligned midpoint for splitting `region`, per §5.4: the
  // middle of the region rounded to the nearest huge-page boundary if the
  // region spans more than one huge page; otherwise the page-aligned middle.
  // Returns 0 if the region cannot be split (single page).
  static VirtAddr SplitPoint(const Region& region);

  u64 next_id() const { return next_id_; }

  // Cumulative structural-operation counts over the map's lifetime, for
  // observability: regions created by seeding, successful merges, and
  // successful splits. Never reset.
  u64 total_seeded() const { return total_seeded_; }
  u64 total_merges() const { return total_merges_; }
  u64 total_splits() const { return total_splits_; }

 private:
  Map regions_;
  u64 next_id_ = 1;
  u64 total_seeded_ = 0;
  u64 total_merges_ = 0;
  u64 total_splits_ = 0;
};

}  // namespace mtm
