// Common interface for all memory profilers (MTM, DAMON, Thermostat,
// AutoTiering's random sampler, tiered-AutoNUMA's hint faults, HeMem's
// PEBS-only profiler).
//
// The simulation driver runs each profiling interval in `num_scan_ticks`
// equal slices of application work; after each slice it calls OnScanTick so
// multi-scan profilers (MTM, §5.1) can re-scan their sampled PTEs within the
// interval. At the end of the interval, OnIntervalEnd returns the hotness
// view the migration policy consumes, plus the profiling cost to charge.
#pragma once

#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/obs/metrics.h"
#include "src/sim/tier.h"

namespace mtm {

// One profiled extent with its hotness estimate. For region-based profilers
// an entry is a region; for page-based profilers (AutoNUMA, HeMem) an entry
// is a page or a small run of pages.
struct HotnessEntry {
  VirtAddr start;
  Bytes len;
  double hotness = 0.0;       // profiler-specific scale; higher is hotter
  u32 preferred_socket = 0;   // multi-view destination (§6.2)

  // Recency/trend signals for the feature-vector policy API
  // (src/migration/features.h). MTM's profiler fills them from region
  // state: latest_hi is the most recent interval's hotness indication (the
  // recency signal), prev_hi the one before it, and skew the normalized
  // intra-region sample disparity (max-min hit count over num_scans).
  // Profilers without per-interval structure leave them zero; consumers
  // must degrade gracefully.
  double latest_hi = 0.0;
  double prev_hi = 0.0;
  double skew = 0.0;

  VirtAddr end() const { return start + len; }
};

struct ProfileOutput {
  std::vector<HotnessEntry> entries;
  SimNanos profiling_cost_ns;  // charged to the profiling time bucket

  // Statistics for Tables 5 and 7.
  u64 pte_scans = 0;
  u64 regions_merged = 0;
  u64 regions_split = 0;
  u64 num_regions = 0;

  // Bytes this profiler currently classifies as hot (Table 3's "volume of
  // hot pages identified").
  Bytes hot_bytes;
};

class Profiler {
 public:
  virtual ~Profiler() = default;

  virtual std::string name() const = 0;

  // Called once when the address space layout is final (after workload
  // Build) so region-based profilers can seed their region lists.
  virtual void Initialize() {}

  virtual void OnIntervalStart() {}

  // tick runs 0..num_scan_ticks-1 within each interval.
  virtual void OnScanTick(u32 /*tick*/) {}

  virtual ProfileOutput OnIntervalEnd() = 0;

  // Metadata footprint (Table 5).
  virtual Bytes MemoryOverheadBytes() const = 0;

  // Optional observability: when attached, profilers record counters
  // (PTE scans, structural region operations, PEBS nominations) into the
  // registry. Null (the default) disables all recording.
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

 protected:
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace mtm
