#include "src/obs/jsonl.h"

#include <cstdio>
#include <fstream>

namespace mtm {

std::string JsonlDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void JsonlSink::Append(const std::string& line) {
  buffer_ += line;
  buffer_ += '\n';
  ++lines_;
}

void JsonlSink::WriteTo(std::ostream& os) const { os << buffer_; }

Status JsonlSink::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) {
    return UnavailableError("cannot open jsonl output: " + path);
  }
  WriteTo(out);
  if (!out) {
    return UnavailableError("short write to jsonl output: " + path);
  }
  return Status::Ok();
}

}  // namespace mtm
