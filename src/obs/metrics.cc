#include "src/obs/metrics.h"

#include "src/common/logging.h"

namespace mtm {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

MetricId MetricsRegistry::Intern(const std::string& name, MetricKind kind) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    MTM_CHECK(slot(it->second).metric_kind == kind)
        << "metric '" << name << "' re-interned as " << MetricKindName(kind) << ", was "
        << MetricKindName(slot(it->second).metric_kind);
    return it->second;
  }
  MetricId id{static_cast<u32>(slots_.size())};
  Slot s;
  s.name = name;
  s.metric_kind = kind;
  slots_.push_back(std::move(s));
  by_name_.emplace(name, id);
  return id;
}

MetricId MetricsRegistry::Counter(const std::string& name) {
  return Intern(name, MetricKind::kCounter);
}

MetricId MetricsRegistry::Gauge(const std::string& name) {
  return Intern(name, MetricKind::kGauge);
}

MetricId MetricsRegistry::Histogram(const std::string& name) {
  return Intern(name, MetricKind::kHistogram);
}

MetricId MetricsRegistry::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidMetricId : it->second;
}

const MetricsRegistry::Slot& MetricsRegistry::slot(MetricId id) const {
  MTM_CHECK_LT(static_cast<std::size_t>(id.value()), slots_.size());
  return slots_[id.value()];
}

void MetricsRegistry::Add(MetricId id, u64 delta) {
  MTM_CHECK(slot(id).metric_kind == MetricKind::kCounter);
  slots_[id.value()].count += delta;
}

void MetricsRegistry::Set(MetricId id, double value) {
  MTM_CHECK(slot(id).metric_kind == MetricKind::kGauge);
  slots_[id.value()].value = value;
}

void MetricsRegistry::Observe(MetricId id, double value) {
  MTM_CHECK(slot(id).metric_kind == MetricKind::kHistogram);
  slots_[id.value()].stats.Add(value);
}

u64 MetricsRegistry::counter(MetricId id) const { return slot(id).count; }

double MetricsRegistry::gauge(MetricId id) const { return slot(id).value; }

const RunningStats& MetricsRegistry::histogram(MetricId id) const { return slot(id).stats; }

const std::string& MetricsRegistry::name(MetricId id) const { return slot(id).name; }

MetricKind MetricsRegistry::kind(MetricId id) const { return slot(id).metric_kind; }

}  // namespace mtm
