// A buffered batch of observability updates, for code that runs on worker
// threads. MetricsRegistry and TraceLog are deliberately unsynchronized (the
// hot recording path is an array index); parallel shards therefore record
// into a private ObsDelta and the coordinator flushes the per-shard deltas
// serially, in shard order, after the fan-in barrier. Flushing in a fixed
// order keeps registry interning order — and therefore the metrics JSONL and
// Chrome-trace bytes — independent of worker scheduling (DESIGN.md §9).
//
// Counters are keyed by name, not MetricId, so a worker never touches the
// registry's intern table; FlushTo interns on the (serial) flush path.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "src/common/types.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace mtm {

class ObsDelta {
 public:
  // Accumulates `delta` against the named counter. Repeated names are
  // coalesced so a flush performs one registry Add per distinct counter.
  void AddCounter(const std::string& name, u64 delta);

  // Buffers a simulated-time span for the trace log.
  void AddSpan(const std::string& name, const std::string& category, SimNanos start,
               SimNanos duration);

  bool empty() const { return counters_.empty() && spans_.empty(); }

  // Applies every buffered update in recording order. Null destinations are
  // skipped (matching the nullable-pointer convention of src/obs). Clears
  // the delta so it can be reused for the next shard pass.
  void FlushTo(MetricsRegistry* metrics, TraceLog* trace);

 private:
  std::vector<std::pair<std::string, u64>> counters_;  // insertion order
  std::vector<TraceSpan> spans_;
};

}  // namespace mtm
