// The interval timeline: one snapshot of the metrics registry per profiling
// interval, exported as JSONL (one JSON object per line).
//
// Snapshots copy cumulative values — a consumer diffing successive lines
// recovers per-interval rates. Metrics under the "wall/" prefix (host-clock
// histograms) are skipped so the timeline is a pure function of the seeded
// simulation and byte-stable across identical runs.
#pragma once

#include <ostream>
#include <vector>

#include "src/common/types.h"
#include "src/obs/metric_id.h"
#include "src/obs/metrics.h"

namespace mtm {

struct TimelineSample {
  MetricId id;
  MetricKind metric_kind = MetricKind::kCounter;
  u64 count = 0;       // counters
  double value = 0.0;  // gauges
  // Histogram summary (count/mean/min/max), flattened for snapshotting.
  u64 observations = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct TimelineSnapshot {
  u64 interval = 0;
  SimNanos sim_now;
  std::vector<TimelineSample> samples;  // registry order, "wall/" excluded
};

class IntervalTimeline {
 public:
  // Captures the current value of every non-"wall/" metric.
  void Snapshot(u64 interval, SimNanos sim_now, const MetricsRegistry& registry);

  bool empty() const { return snapshots_.empty(); }
  const std::vector<TimelineSnapshot>& snapshots() const { return snapshots_; }

  // One line per snapshot:
  //   {"interval":N,"sim_ns":T,"metrics":{"name":value,...}}
  // Counters are integers, gauges numbers, histograms
  // {"count":..,"mean":..,"min":..,"max":..} objects.
  void WriteJsonl(std::ostream& os, const MetricsRegistry& registry) const;

 private:
  std::vector<TimelineSnapshot> snapshots_;
};

}  // namespace mtm
