#include "src/obs/delta.h"

namespace mtm {

void ObsDelta::AddCounter(const std::string& name, u64 delta) {
  for (auto& [existing, total] : counters_) {
    if (existing == name) {
      total += delta;
      return;
    }
  }
  counters_.emplace_back(name, delta);
}

void ObsDelta::AddSpan(const std::string& name, const std::string& category, SimNanos start,
                       SimNanos duration) {
  spans_.push_back(TraceSpan{name, category, start, duration});
}

void ObsDelta::FlushTo(MetricsRegistry* metrics, TraceLog* trace) {
  if (metrics != nullptr) {
    for (const auto& [name, total] : counters_) {
      metrics->Add(metrics->Counter(name), total);
    }
  }
  if (trace != nullptr) {
    for (const TraceSpan& span : spans_) {
      trace->AddSpan(span.name, span.category, span.start, span.duration);
    }
  }
  counters_.clear();
  spans_.clear();
}

}  // namespace mtm
