// Deterministic JSONL sink shared by the export surfaces that stream one
// JSON object per line (feature export, heatmap export). Writers build each
// line with explicit key order — never by iterating a hash container — so
// two identical seeded runs produce identical bytes, the property every
// golden-dump test and CI byte-compare relies on.
#pragma once

#include <ostream>
#include <string>

#include "src/common/status.h"

namespace mtm {

// Formats a double exactly like the interval timeline does ("%.6g"), so all
// JSONL artifacts share one float syntax and one determinism contract.
std::string JsonlDouble(double v);

// An append-only buffer of JSONL lines. Lines are composed by the caller
// (explicit key order); the sink owns completion ('\n') and file output.
class JsonlSink {
 public:
  // Appends one object line. `line` must be a complete JSON object without
  // the trailing newline.
  void Append(const std::string& line);

  std::size_t lines() const { return lines_; }
  const std::string& contents() const { return buffer_; }

  void WriteTo(std::ostream& os) const;
  // Truncates `path` and writes every buffered line.
  Status WriteFile(const std::string& path) const;

 private:
  std::string buffer_;
  std::size_t lines_ = 0;
};

}  // namespace mtm
