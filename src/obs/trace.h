// Tracing: simulated-time spans exported as Chrome trace_event JSON, plus a
// host-clock scope timer for measuring the simulator's own overhead.
//
// The two clocks are deliberately separate:
//   * TraceLog spans carry *simulated* timestamps and modeled durations
//     (interval boundaries, PTE-scan cost, migration critical time). Two
//     runs with the same seed produce byte-identical traces, which is what
//     the determinism tests and golden files rely on. The JSON loads in
//     Perfetto / chrome://tracing.
//   * ScopedTimer (MTM_TRACE_SCOPE) measures *host* wall time of a C++
//     scope into a "wall/<name>" histogram. Host timings are inherently
//     nondeterministic, so they never enter the trace or the interval
//     timeline — only the histogram summary. With a null registry the timer
//     body is a pointer test; no clock syscall is made.
#pragma once

#include <chrono>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/obs/metrics.h"

namespace mtm {

// One complete ("X") trace event in simulated time.
struct TraceSpan {
  std::string name;
  std::string category;  // maps to the track (tid) in the rendered trace
  SimNanos start;
  SimNanos duration;
};

// One counter ("C") sample in simulated time.
struct TraceCounter {
  std::string name;
  SimNanos at;
  double value = 0.0;
};

// One flow-event endpoint ("s" start / "f" finish) in simulated time. A
// start/finish pair with the same name, category, and id renders as an
// arrow linking the spans enclosing the two timestamps (Perfetto binds each
// endpoint to the slice it lands inside) — used to connect migrate_arm to
// the matching migrate_finish across the async copy window.
struct TraceFlow {
  std::string name;
  std::string category;
  u64 id = 0;
  SimNanos at;
  bool start = true;
};

class TraceLog {
 public:
  void AddSpan(const std::string& name, const std::string& category, SimNanos start,
               SimNanos duration);
  void AddCounter(const std::string& name, SimNanos at, double value);
  void AddFlowStart(const std::string& name, const std::string& category, u64 id, SimNanos at);
  void AddFlowEnd(const std::string& name, const std::string& category, u64 id, SimNanos at);

  bool empty() const { return spans_.empty() && counters_.empty() && flows_.empty(); }
  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<TraceCounter>& counters() const { return counters_; }
  const std::vector<TraceFlow>& flows() const { return flows_; }

  // Chrome trace_event JSON (one process; one thread track per category,
  // in first-use order). Deterministic: depends only on recorded events.
  void WriteChromeTrace(std::ostream& os) const;

 private:
  std::vector<TraceSpan> spans_;
  std::vector<TraceCounter> counters_;
  std::vector<TraceFlow> flows_;
};

// RAII host-clock timer recording into a "wall/<name>" histogram in
// microseconds. Near-zero cost when the registry pointer is null.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, const char* name) : registry_(registry) {
    if (registry_ != nullptr) {
      name_ = name;
      start_ = std::chrono::steady_clock::now();
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (registry_ != nullptr) {
      auto elapsed = std::chrono::steady_clock::now() - start_;
      double us =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
          1e3;
      registry_->Observe(registry_->Histogram(std::string("wall/") + name_), us);
    }
  }

 private:
  MetricsRegistry* registry_;
  const char* name_ = "";
  std::chrono::steady_clock::time_point start_;
};

#define MTM_TRACE_CONCAT_INNER(a, b) a##b
#define MTM_TRACE_CONCAT(a, b) MTM_TRACE_CONCAT_INNER(a, b)

// Times the enclosing scope on the host clock into "wall/<name>" when
// `registry` (MetricsRegistry*) is non-null; a pointer test when null.
#define MTM_TRACE_SCOPE(registry, scope_name) \
  ::mtm::ScopedTimer MTM_TRACE_CONCAT(mtm_trace_scope_, __LINE__)((registry), (scope_name))

}  // namespace mtm
