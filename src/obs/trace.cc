#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

namespace mtm {
namespace {

// Chrome trace timestamps are microseconds; print the exact decimal form of
// the nanosecond value so output never depends on floating-point rounding.
std::string FormatMicros(SimNanos ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns.value() / 1000),
                static_cast<unsigned long long>(ns.value() % 1000));
  return buf;
}

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

void TraceLog::AddSpan(const std::string& name, const std::string& category, SimNanos start,
                       SimNanos duration) {
  spans_.push_back(TraceSpan{name, category, start, duration});
}

void TraceLog::AddCounter(const std::string& name, SimNanos at, double value) {
  counters_.push_back(TraceCounter{name, at, value});
}

void TraceLog::AddFlowStart(const std::string& name, const std::string& category, u64 id,
                            SimNanos at) {
  flows_.push_back(TraceFlow{name, category, id, at, /*start=*/true});
}

void TraceLog::AddFlowEnd(const std::string& name, const std::string& category, u64 id,
                          SimNanos at) {
  flows_.push_back(TraceFlow{name, category, id, at, /*start=*/false});
}

void TraceLog::WriteChromeTrace(std::ostream& os) const {
  // One tid per category, numbered in first-use order, so each category
  // renders as its own track.
  std::map<std::string, u32> tids;
  u32 next_tid = 1;
  auto tid_of = [&](const std::string& category) {
    auto [it, inserted] = tids.emplace(category, next_tid);
    if (inserted) {
      ++next_tid;
    }
    return it->second;
  };

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&]() {
    if (!first) {
      os << ",\n";
    }
    first = false;
  };
  sep();
  os << R"({"ph":"M","pid":1,"name":"process_name","args":{"name":"mtmsim"}})";
  for (const TraceSpan& span : spans_) {
    sep();
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid_of(span.category) << ",\"name\":\""
       << EscapeJson(span.name) << "\",\"cat\":\"" << EscapeJson(span.category)
       << "\",\"ts\":" << FormatMicros(span.start) << ",\"dur\":" << FormatMicros(span.duration)
       << "}";
  }
  for (const TraceFlow& flow : flows_) {
    sep();
    // Finish events bind to the enclosing slice ("bp":"e"), matching how
    // the engine timestamps them inside the migrate_finish span.
    os << "{\"ph\":\"" << (flow.start ? 's' : 'f') << "\"";
    if (!flow.start) {
      os << ",\"bp\":\"e\"";
    }
    os << ",\"pid\":1,\"tid\":" << tid_of(flow.category) << ",\"name\":\""
       << EscapeJson(flow.name) << "\",\"cat\":\"" << EscapeJson(flow.category)
       << "\",\"id\":" << flow.id << ",\"ts\":" << FormatMicros(flow.at) << "}";
  }
  for (const TraceCounter& counter : counters_) {
    sep();
    os << "{\"ph\":\"C\",\"pid\":1,\"name\":\"" << EscapeJson(counter.name)
       << "\",\"ts\":" << FormatMicros(counter.at) << ",\"args\":{\"value\":"
       << FormatDouble(counter.value) << "}}";
  }
  // Name the category tracks, in tid (first-use) order.
  std::vector<std::pair<u32, std::string>> tracks;
  for (const auto& [category, tid] : tids) {
    tracks.emplace_back(tid, category);
  }
  std::sort(tracks.begin(), tracks.end());
  for (const auto& [tid, category] : tracks) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << EscapeJson(category) << "\"}}";
  }
  os << "\n]}\n";
}

}  // namespace mtm
