// The observability bundle handed to a simulation run: a metrics registry,
// a simulated-time trace log, and the per-interval timeline. Everything is
// opt-in — components take a nullable pointer and skip all recording when
// it is null, so runs without observability pay only pointer tests.
#pragma once

#include "src/obs/metrics.h"
#include "src/obs/timeline.h"
#include "src/obs/trace.h"

namespace mtm {

struct Observability {
  MetricsRegistry metrics;
  TraceLog trace;
  IntervalTimeline timeline;

  // Host-clock scope timers ("wall/" histograms) are off by default: they
  // are nondeterministic and cost a clock read per scope. The deterministic
  // sim-time spans/counters above are unaffected by this switch.
  bool wall_timers = false;

  // Chrome async-flow arrows linking migrate_arm to the matching finish
  // span. Off by default so existing golden traces stay byte-identical;
  // deterministic (sim-time) when enabled (mtmsim --trace-flows).
  bool async_flows = false;

  // Registry for MTM_TRACE_SCOPE sites: null (free) unless wall timers on.
  MetricsRegistry* wall_registry() { return wall_timers ? &metrics : nullptr; }
};

}  // namespace mtm
