// The metrics registry: named counters, gauges, and histograms.
//
// Components intern a metric name once (Counter/Gauge/Histogram return a
// stable MetricId; re-interning the same name returns the same id) and
// record against the id afterwards. Recording is an array index plus an
// integer or Welford update — cheap enough for per-access hot paths when
// guarded by a null registry pointer.
//
// Naming scheme (see DESIGN.md §8): lowercase `component/metric` paths,
// e.g. "profiler/pte_scans", "migration/bytes_moved_c0". Units are spelled
// in the metric name suffix (_ns, _bytes) rather than carried at runtime.
// The reserved "wall/" prefix holds host-clock timings (ScopedTimer); those
// are excluded from the deterministic interval timeline.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/obs/metric_id.h"

namespace mtm {

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* MetricKindName(MetricKind kind);

class MetricsRegistry {
 public:
  // Interning. Idempotent per name; interning an existing name with a
  // different kind is a programming error (checked).
  MetricId Counter(const std::string& name);
  MetricId Gauge(const std::string& name);
  MetricId Histogram(const std::string& name);

  // Lookup without creating: returns kInvalidMetricId when absent.
  MetricId Find(const std::string& name) const;

  // Recording.
  void Add(MetricId id, u64 delta = 1);
  void Set(MetricId id, double value);
  void Observe(MetricId id, double value);

  // Reading.
  u64 counter(MetricId id) const;
  double gauge(MetricId id) const;
  const RunningStats& histogram(MetricId id) const;

  // Iteration in registration order (the canonical export order).
  std::size_t size() const { return slots_.size(); }
  const std::string& name(MetricId id) const;
  MetricKind kind(MetricId id) const;

 private:
  struct Slot {
    std::string name;
    MetricKind metric_kind = MetricKind::kCounter;
    u64 count = 0;
    double value = 0.0;
    RunningStats stats;
  };

  MetricId Intern(const std::string& name, MetricKind kind);
  const Slot& slot(MetricId id) const;

  std::vector<Slot> slots_;
  std::unordered_map<std::string, MetricId> by_name_;
};

}  // namespace mtm
