#include "src/obs/timeline.h"

#include <cstdio>

#include "src/common/stats.h"
#include "src/obs/metric_id.h"

namespace mtm {
namespace {

bool IsWallMetric(const std::string& name) { return name.rfind("wall/", 0) == 0; }

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void IntervalTimeline::Snapshot(u64 interval, SimNanos sim_now,
                                const MetricsRegistry& registry) {
  TimelineSnapshot snap;
  snap.interval = interval;
  snap.sim_now = sim_now;
  snap.samples.reserve(registry.size());
  for (u32 i = 0; i < registry.size(); ++i) {
    MetricId id{i};
    if (IsWallMetric(registry.name(id))) {
      continue;
    }
    TimelineSample sample;
    sample.id = id;
    sample.metric_kind = registry.kind(id);
    switch (sample.metric_kind) {
      case MetricKind::kCounter:
        sample.count = registry.counter(id);
        break;
      case MetricKind::kGauge:
        sample.value = registry.gauge(id);
        break;
      case MetricKind::kHistogram: {
        const RunningStats& stats = registry.histogram(id);
        sample.observations = stats.count();
        sample.mean = stats.mean();
        sample.min = stats.min();
        sample.max = stats.max();
        break;
      }
    }
    snap.samples.push_back(sample);
  }
  snapshots_.push_back(std::move(snap));
}

void IntervalTimeline::WriteJsonl(std::ostream& os, const MetricsRegistry& registry) const {
  for (const TimelineSnapshot& snap : snapshots_) {
    os << "{\"interval\":" << snap.interval << ",\"sim_ns\":" << snap.sim_now
       << ",\"metrics\":{";
    bool first = true;
    for (const TimelineSample& sample : snap.samples) {
      if (!first) {
        os << ",";
      }
      first = false;
      os << "\"" << registry.name(sample.id) << "\":";
      switch (sample.metric_kind) {
        case MetricKind::kCounter:
          os << sample.count;
          break;
        case MetricKind::kGauge:
          os << FormatDouble(sample.value);
          break;
        case MetricKind::kHistogram:
          os << "{\"count\":" << sample.observations << ",\"mean\":"
             << FormatDouble(sample.mean) << ",\"min\":" << FormatDouble(sample.min)
             << ",\"max\":" << FormatDouble(sample.max) << "}";
          break;
      }
    }
    os << "}}\n";
  }
}

}  // namespace mtm
