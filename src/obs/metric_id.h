// Interned metric identity.
//
// A MetricId is an index into a MetricsRegistry's slot table, produced by
// interning a metric name once (at attach/setup time). Hot paths then carry
// the id, never the string: recording a counter increment is an array
// index, not a hash lookup. The id is an Ordinal strong type so a metric id
// can never be confused with a plain count or another identifier.
#pragma once

#include "src/common/strong_types.h"
#include "src/common/types.h"

namespace mtm {

class MetricId : public strong_internal::Ordinal<MetricId, u32> {
  using Ordinal::Ordinal;
};

inline constexpr MetricId kInvalidMetricId{~u32{0}};

}  // namespace mtm

template <>
struct std::hash<mtm::MetricId> : mtm::strong_internal::StrongHash<mtm::MetricId> {};
