// Example: tiering an in-memory database (the paper's VoltDB/TPC-C
// scenario).
//
// Demonstrates the introspection API: run MTM against the TPC-C-style
// workload, watch per-interval fast-tier hit growth and hot-volume
// identification, then compare against the Linux tiered-AutoNUMA baseline.
//
//   ./build/examples/database_tiering
#include <cstdio>

#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"

namespace {

void PrintIntervalTrace(const mtm::RunResult& r) {
  std::printf("  interval trace (every 20th):\n");
  std::printf("    %-10s %-16s %-18s %-12s\n", "interval", "fast-tier acc", "hot volume (MiB)",
              "regions");
  for (std::size_t i = 0; i < r.intervals.size(); i += 20) {
    const mtm::IntervalRecord& iv = r.intervals[i];
    std::printf("    %-10zu %-16llu %-18.1f %-12llu\n", i,
                static_cast<unsigned long long>(iv.fast_tier_accesses),
                mtm::ToMiB(iv.hot_bytes), static_cast<unsigned long long>(iv.num_regions));
  }
}

void PrintSummary(const mtm::RunResult& r) {
  std::printf("  app %.3fs | profiling %.3fs | migration %.3fs | total %.3fs\n",
              mtm::ToSeconds(r.app_ns), mtm::ToSeconds(r.profiling_ns),
              mtm::ToSeconds(r.migration_ns), mtm::ToSeconds(r.total_ns()));
  std::printf("  migrated %.1f MiB in %llu region moves (%llu sync fallbacks, "
              "%llu reclaim demotions)\n\n",
              mtm::ToMiB(r.migration_stats.bytes_migrated),
              static_cast<unsigned long long>(r.migration_stats.regions_migrated),
              static_cast<unsigned long long>(r.migration_stats.sync_fallbacks),
              static_cast<unsigned long long>(r.migration_stats.reclaim_demotions));
}

}  // namespace

int main() {
  mtm::ExperimentConfig config;
  config.sim_scale = 512;
  config.num_intervals = 400;
  config.target_accesses = 25'000'000;

  std::printf("In-memory database tiering example (TPC-C on the 4-tier machine)\n\n");

  mtm::RunOptions options;
  options.record_intervals = true;

  std::printf("[1/2] MTM\n");
  mtm::RunResult with_mtm =
      mtm::RunExperiment("voltdb", mtm::SolutionKind::kMtm, config, options);
  PrintIntervalTrace(with_mtm);
  PrintSummary(with_mtm);

  std::printf("[2/2] tiered-AutoNUMA (Linux baseline)\n");
  mtm::RunResult with_autonuma =
      mtm::RunExperiment("voltdb", mtm::SolutionKind::kTieredAutoNuma, config, options);
  PrintSummary(with_autonuma);

  double gain = (mtm::ToSeconds(with_autonuma.total_ns()) -
                 mtm::ToSeconds(with_mtm.total_ns())) /
                mtm::ToSeconds(with_autonuma.total_ns()) * 100.0;
  std::printf("MTM is %.1f%% faster than tiered-AutoNUMA on this database workload.\n", gain);
  return 0;
}
