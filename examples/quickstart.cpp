// Quickstart: run GUPS on the simulated four-tier Optane machine under MTM
// and under first-touch NUMA, and compare execution time.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"

namespace {

void PrintResult(const mtm::RunResult& r) {
  std::printf("%-24s app %7.2fs  profiling %6.3fs  migration %6.3fs  total %7.2fs"
              "  (%.1fM accesses, %.1fM acc/s)\n",
              r.solution.c_str(), mtm::ToSeconds(r.app_ns), mtm::ToSeconds(r.profiling_ns),
              mtm::ToSeconds(r.migration_ns), mtm::ToSeconds(r.total_ns()),
              static_cast<double>(r.total_accesses) / 1e6, r.AccessesPerSecond() / 1e6);
}

}  // namespace

int main() {
  mtm::ExperimentConfig config;
  config.sim_scale = 512;               // GUPS at 1 GiB footprint
  config.num_intervals = 400;           // capped by the fixed work below
  config.target_accesses = 40'000'000;  // both runs complete the same work

  std::printf("MTM quickstart — GUPS on the simulated 4-tier machine "
              "(scale 1:%llu)\n\n",
              static_cast<unsigned long long>(config.sim_scale));

  mtm::RunResult first_touch =
      mtm::RunExperiment("gups", mtm::SolutionKind::kFirstTouch, config);
  PrintResult(first_touch);

  mtm::RunResult with_mtm = mtm::RunExperiment("gups", mtm::SolutionKind::kMtm, config);
  PrintResult(with_mtm);

  double speedup = static_cast<double>(first_touch.total_ns().value()) /
                   static_cast<double>(with_mtm.total_ns().value());
  std::printf("\nMTM speedup over first-touch: %.2fx\n", speedup);
  return 0;
}
