// Example: terabyte-scale graph analytics on tiered memory (the paper's
// BFS/SSSP scenario, §1's motivating use case).
//
// Runs BFS and SSSP over a skewed CSR graph whose hot structure (hub
// adjacency lists, frontier state) MTM promotes into DRAM, and reports how
// the traversal's effective memory latency drops as placement converges.
//
//   ./build/examples/graph_analytics
#include <cstdio>

#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"
#include "src/workloads/workload_factory.h"

namespace {

void RunAlgorithm(const char* name) {
  mtm::ExperimentConfig config;
  config.sim_scale = 512;
  config.num_intervals = 400;
  config.target_accesses = 20'000'000;

  std::printf("%s on a %0.f MiB CSR graph:\n", name,
              mtm::ToMiB(mtm::kGraphFootprint / config.sim_scale));

  mtm::RunOptions options;
  options.record_intervals = true;
  mtm::RunResult first_touch =
      mtm::RunExperiment(name, mtm::SolutionKind::kFirstTouch, config);
  mtm::RunResult with_mtm = mtm::RunExperiment(name, mtm::SolutionKind::kMtm, config, options);

  // Effective ns per access = app time / accesses: placement quality.
  double ft_ns = static_cast<double>(first_touch.app_ns.value()) /
                 static_cast<double>(first_touch.total_accesses);
  double mtm_early = 0.0;
  double mtm_late = 0.0;
  if (with_mtm.intervals.size() >= 8) {
    // Compare fast-tier hits early vs late in the run.
    std::size_t n = with_mtm.intervals.size();
    for (std::size_t i = 0; i < n / 4; ++i) {
      mtm_early += static_cast<double>(with_mtm.intervals[i].fast_tier_accesses);
    }
    for (std::size_t i = n - n / 4; i < n; ++i) {
      mtm_late += static_cast<double>(with_mtm.intervals[i].fast_tier_accesses);
    }
  }
  double mtm_ns = static_cast<double>(with_mtm.app_ns.value()) /
                  static_cast<double>(with_mtm.total_accesses);

  std::printf("  first-touch: %.1f ns/access, total %.3fs\n", ft_ns,
              mtm::ToSeconds(first_touch.total_ns()));
  std::printf("  MTM:         %.1f ns/access, total %.3fs (fast-tier hits grew %.1fx "
              "from first to last quarter)\n",
              mtm_ns, mtm::ToSeconds(with_mtm.total_ns()),
              mtm_early > 0 ? mtm_late / mtm_early : 0.0);
  std::printf("  speedup: %.2fx\n\n",
              mtm::ToSeconds(first_touch.total_ns()) / mtm::ToSeconds(with_mtm.total_ns()));
}

}  // namespace

int main() {
  std::printf("Graph analytics on multi-tiered large memory\n\n");
  RunAlgorithm("bfs");
  RunAlgorithm("sssp");
  return 0;
}
