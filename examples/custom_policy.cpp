// Example: plugging a custom tiering policy and a custom workload into the
// framework — the extension points a downstream user would touch.
//
// The custom policy is a deliberately simple "hot-threshold" policy:
// promote any region above a fixed WHI threshold to the fastest tier with
// space, demote nothing explicitly (reclaim handles pressure). The example
// runs it head-to-head against MTM's histogram policy on the same workload
// to show why the paper's global-ranking design matters.
//
//   ./build/examples/custom_policy
#include <cstdio>

#include "src/common/types.h"
#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"
#include "src/migration/admission/admission.h"
#include "src/migration/migration_engine.h"
#include "src/migration/policy.h"
#include "src/profiling/profiler.h"
#include "src/sim/page_table.h"
#include "src/workloads/gups.h"
#include "src/workloads/workload.h"
#include "src/workloads/workload_factory.h"

namespace {

using namespace mtm;

// A minimal user-defined policy: fixed threshold, no ranking, no planned
// demotion.
class ThresholdPolicy : public TieringPolicy {
 public:
  ThresholdPolicy(double threshold, Bytes budget) : threshold_(threshold), budget_(budget) {}

  std::string name() const override { return "threshold-policy"; }

  std::vector<MigrationOrder> Decide(const ProfileOutput& profile,
                                     PolicyContext& ctx) override {
    std::vector<MigrationOrder> orders;
    i64 budget = static_cast<i64>(budget_.value());
    for (const HotnessEntry& e : profile.entries) {
      if (budget <= 0) {
        break;
      }
      if (e.hotness < threshold_) {
        continue;
      }
      const Pte* pte = ctx.page_table->Find(e.start);
      if (pte == nullptr) {
        continue;
      }
      u32 rank = ctx.machine->TierRank(e.preferred_socket, pte->component).value();
      if (rank == 0) {
        continue;
      }
      // Fastest tier with free space right now.
      for (u32 target = 0; target < rank; ++target) {
        ComponentId dst = ctx.machine->TierOrder(e.preferred_socket)[target];
        if (ctx.frames->free_bytes(dst) >= e.len) {
          orders.push_back(MigrationOrder{e.start, e.len, dst, e.preferred_socket});
          budget -= static_cast<i64>(e.len.value());
          break;
        }
      }
    }
    return orders;
  }

 private:
  double threshold_;
  Bytes budget_;
};

// Runs GUPS under a Solution whose policy we overwrite after construction
// is not supported by the public API by design (policies are part of the
// solution definition); instead we drive the loop ourselves — which is also
// how embedders integrate MTM's components into their own runtimes.
double RunWithPolicy(TieringPolicy* policy, const ExperimentConfig& config) {
  Workload::Params params;
  params.footprint_bytes = kGupsFootprint / config.sim_scale;
  params.num_threads = config.num_threads;
  params.seed = config.seed;
  GupsWorkload gups(params);
  Solution solution(SolutionKind::kMtm, config, gups);

  PolicyContext ctx;
  ctx.machine = &solution.machine();
  ctx.page_table = &solution.page_table();
  ctx.frames = &solution.frames();

  std::vector<MemAccess> buf(2048);
  const SimNanos interval_ns = config.IntervalNs();
  u64 accesses = 0;
  for (u32 interval = 0; interval < config.num_intervals; ++interval) {
    if (accesses >= config.target_accesses) {
      break;
    }
    solution.profiler()->OnIntervalStart();
    SimNanos start = solution.clock().now();
    for (u32 tick = 0; tick < 3; ++tick) {
      SimNanos tick_end = start + (tick + 1) * interval_ns / 3;
      while (solution.clock().now() < tick_end) {
        u32 n = gups.NextBatch(buf.data(), buf.size());
        for (u32 i = 0; i < n; ++i) {
          solution.engine().Apply(buf[i].addr, buf[i].is_write,
                                  solution.SocketOfThread(buf[i].thread));
        }
        accesses += n;
        solution.migration()->Poll();
      }
      solution.profiler()->OnScanTick(tick);
    }
    ProfileOutput out = solution.profiler()->OnIntervalEnd();
    solution.clock().AdvanceProfiling(out.profiling_cost_ns);
    TieringPolicy* active = policy != nullptr ? policy : solution.policy();
    for (const MigrationOrder& order : active->Decide(out, ctx)) {
      (void)solution.migration()->Submit(order);
    }
  }
  solution.migration()->Flush();
  return ToSeconds(solution.clock().now());
}

}  // namespace

int main() {
  ExperimentConfig config;
  config.sim_scale = 512;
  config.num_intervals = 400;
  config.target_accesses = 20'000'000;

  std::printf("Custom-policy example: fixed-threshold policy vs MTM's histogram policy\n\n");

  ThresholdPolicy threshold(/*threshold=*/1.5, config.PromoteBatchBytes());
  double custom_s = RunWithPolicy(&threshold, config);
  std::printf("threshold-policy : %.3fs\n", custom_s);

  double mtm_s = RunWithPolicy(nullptr, config);
  std::printf("mtm-policy       : %.3fs\n", mtm_s);

  std::printf("\nThe histogram policy ranks *all* regions globally and demotes the\n"
              "coldest to make room, so it keeps winning once the fast tier fills —\n"
              "the fixed threshold stalls when tier 1 has no free space.\n");
  std::printf("mtm vs custom: %.1f%% faster\n", (custom_s - mtm_s) / custom_s * 100.0);
  return 0;
}
