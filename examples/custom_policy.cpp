// Example: plugging a custom tiering policy into the framework through the
// policy registry (DESIGN.md §13) — the extension point a downstream user
// touches. No driver loop, no Solution surgery: register a factory under a
// name, set `policy_override`, and every experiment (and `mtmsim
// --policy=<name>`) can run it.
//
// Two custom policies are shown:
//   * threshold-policy  — a TieringPolicy written from scratch: promote any
//     region above a fixed WHI threshold to the fastest tier with space;
//   * trend-policy      — a FeaturePolicy: score = WHI + the heating trend,
//     inheriting MTM's fast-promotion/slow-demotion machinery and feature
//     pipeline in ~10 lines.
//
// Both run head-to-head against MTM's histogram policy on the same workload
// to show why the paper's global-ranking design matters.
//
//   ./build/examples/custom_policy
#include <cstdio>
#include <memory>

#include "src/common/types.h"
#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"
#include "src/migration/admission/admission.h"
#include "src/migration/feature_policy.h"
#include "src/migration/features.h"
#include "src/migration/policy.h"
#include "src/migration/policy_registry.h"
#include "src/profiling/profiler.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"

namespace {

using namespace mtm;

// A minimal user-defined policy: fixed threshold, no ranking, no planned
// demotion.
class ThresholdPolicy : public TieringPolicy {
 public:
  ThresholdPolicy(double threshold, Bytes budget) : threshold_(threshold), budget_(budget) {}

  std::string name() const override { return "threshold-policy"; }

  std::vector<MigrationOrder> Decide(const ProfileOutput& profile,
                                     PolicyContext& ctx) override {
    std::vector<MigrationOrder> orders;
    i64 budget = static_cast<i64>(budget_.value());
    for (const HotnessEntry& e : profile.entries) {
      if (budget <= 0) {
        break;
      }
      if (e.hotness < threshold_) {
        continue;
      }
      const Pte* pte = ctx.page_table->Find(e.start);
      if (pte == nullptr) {
        continue;
      }
      u32 rank = ctx.machine->TierRank(e.preferred_socket, pte->component).value();
      if (rank == 0) {
        continue;
      }
      // Fastest tier with free space right now.
      for (u32 target = 0; target < rank; ++target) {
        ComponentId dst = ctx.machine->TierOrder(e.preferred_socket)[target];
        if (ctx.frames->free_bytes(dst) >= e.len) {
          orders.push_back(MigrationOrder{e.start, e.len, dst, e.preferred_socket});
          budget -= static_cast<i64>(e.len.value());
          break;
        }
      }
    }
    return orders;
  }

 private:
  double threshold_;
  Bytes budget_;
};

// A user-defined FeaturePolicy: one Score function, everything else —
// feature construction, global ranking, budget, demotion-to-make-room —
// inherited from the plugin API.
class TrendPolicy : public FeaturePolicy {
 public:
  using FeaturePolicy::FeaturePolicy;
  std::string name() const override { return "trend-policy"; }
  double Score(const FeatureVector& f) const override {
    // Favor regions that are hot *and* heating; a cooling region has to be
    // much hotter to outrank a heating one.
    return f.x[kFeatWhi] + f.x[kFeatTrend];
  }
};

double RunWithPolicy(const std::string& policy_override, const ExperimentConfig& base) {
  ExperimentConfig config = base;
  config.policy_override = policy_override;
  RunResult r = RunExperiment("gups", SolutionKind::kMtm, config);
  return ToSeconds(r.total_ns());
}

}  // namespace

int main() {
  ExperimentConfig config;
  config.sim_scale = 512;
  config.num_intervals = 400;
  config.target_accesses = 20'000'000;

  // The registration is the whole integration: after this, the names work
  // anywhere a policy name does (mtmsim --policy=..., policy_override, ...).
  const Bytes batch = config.PromoteBatchBytes();
  RegisterPolicy("threshold", [batch](const PolicyParams&) -> std::unique_ptr<TieringPolicy> {
    return std::make_unique<ThresholdPolicy>(/*threshold=*/1.5, batch);
  });
  RegisterPolicy("trend", [](const PolicyParams& params) -> std::unique_ptr<TieringPolicy> {
    MtmPolicy::Config decide;
    decide.promote_batch_bytes = params.promote_batch_bytes;
    decide.hotness_max = -1.0;  // adaptive: trend scores leave the WHI scale
    return std::make_unique<FeatureDrivenPolicy>(std::make_unique<TrendPolicy>(decide));
  });

  std::printf("Custom-policy example: registry plugins vs MTM's histogram policy\n\n");

  double custom_s = RunWithPolicy("threshold", config);
  std::printf("threshold-policy : %.3fs\n", custom_s);

  double trend_s = RunWithPolicy("trend", config);
  std::printf("trend-policy     : %.3fs\n", trend_s);

  double mtm_s = RunWithPolicy("", config);
  std::printf("mtm-policy       : %.3fs\n", mtm_s);

  std::printf("\nThe histogram machinery ranks *all* regions globally and demotes the\n"
              "coldest to make room — the FeaturePolicy plugin inherits that, so the\n"
              "trend scorer stays competitive, while the from-scratch fixed threshold\n"
              "stalls when tier 1 has no free space.\n");
  std::printf("mtm vs threshold: %.1f%% faster\n", (custom_s - mtm_s) / custom_s * 100.0);
  return 0;
}
