// Figure 9: sensitivity to the merge/split thresholds (tau_m, tau_s), at
// num_scans = 3 and num_scans = 6 (VoltDB).
//
// Expected shape: the defaults tau_m = num_scans/3, tau_s = 2*num_scans/3
// — i.e. (1,2) and (2,4) — are the best configurations; aggressive merging
// (large tau_m) degrades profiling quality, aggressive splitting (small
// tau_s) inflates profiling time.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"

int main() {
  using namespace mtm;
  benchutil::PrintHeader("Figure 9", "sensitivity to (tau_m, tau_s) on VoltDB");

  struct Case {
    u32 num_scans;
    double tau_m;
    double tau_s;
  };
  const Case cases[] = {
      {3, 0, 3}, {3, 1, 1}, {3, 1, 2}, {3, 2, 0}, {3, 2, 1}, {3, 3, 0},
      {6, 0, 6}, {6, 2, 2}, {6, 2, 4}, {6, 4, 0}, {6, 4, 2}, {6, 6, 0},
  };

  benchutil::Table table({"num_scans", "(tau_m,tau_s)", "app(s)", "profiling(s)",
                          "migration(s)", "total(s)"});
  for (const Case& c : cases) {
    ExperimentConfig config = benchutil::DefaultConfig();
    config.target_accesses = 20'000'000;
    config.mtm.num_scans = c.num_scans;
    config.mtm.tau_m = c.tau_m;
    config.mtm.tau_s = c.tau_s;
    RunResult r = RunExperiment("voltdb", SolutionKind::kMtm, config);
    char pair[32];
    std::snprintf(pair, sizeof(pair), "(%g,%g)", c.tau_m, c.tau_s);
    table.AddRow({benchutil::FmtU(c.num_scans), pair,
                  benchutil::Fmt("%.3f", ToSeconds(r.app_ns)),
                  benchutil::Fmt("%.3f", ToSeconds(r.profiling_ns)),
                  benchutil::Fmt("%.3f", ToSeconds(r.migration_ns)),
                  benchutil::Fmt("%.3f", ToSeconds(r.total_ns()))});
    std::printf("[scans=%u %s done]\n", c.num_scans, pair);
  }
  std::printf("\n");
  table.Print();
  std::printf("expected shape: defaults (1,2) at num_scans=3 and (2,4) at num_scans=6 "
              "are best or near-best (paper: (1,2) wins by >=7%%)\n");
  return 0;
}
