// Figure 11: migration microbenchmark — migrate a 1 GiB array between tier
// pairs under three access patterns (sequential read-only R, 50% read R/W,
// 100% write W), comparing move_pages(), Nimble, and move_memory_regions().
//
// The array is allocated, touched with the given pattern (so dirty bits and
// write behavior are realistic), then migrated region by region while the
// pattern keeps running — writes hitting an in-flight region trigger MTM's
// sync fallback exactly as in §7.2.
//
// Expected shape: for reads MTM wins big (~40% over move_pages, ~23% over
// Nimble in the paper); for writes the fallback makes MTM perform like the
// synchronous mechanisms.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/mem/address_space.h"
#include "src/mem/frame_allocator.h"
#include "src/migration/admission/admission.h"
#include "src/migration/mechanism.h"
#include "src/migration/migration_engine.h"
#include "src/sim/access_engine.h"
#include "src/sim/clock.h"
#include "src/sim/counters.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"

namespace mtm {
namespace {

struct Pattern {
  const char* name;
  double write_fraction;
};

// Migrates `total` bytes in 2 MiB regions from src to dst while an access
// pattern runs; returns exposed migration nanoseconds.
SimNanos RunCase(MechanismKind kind, ComponentId src, ComponentId dst, double write_fraction,
                 u64 scale, u32 migrate_threads = 1) {
  Machine machine = Machine::OptaneFourTier(scale);
  SimClock clock;
  PageTable page_table;
  AddressSpace address_space;
  FrameAllocator frames(machine);
  MemCounters counters(machine.num_components());
  AccessEngine engine(machine, page_table, clock, counters, AccessEngine::Config{});
  const Bytes total = GiB(1) / scale;
  // Base pages: move_pages() operates on 4 KiB pages, and the paper's
  // microbenchmark migrates the array page by page.
  u32 vma = address_space.Allocate(total, /*thp=*/false, "array");
  VirtAddr start = address_space.vma(vma).start;
  MTM_CHECK(page_table.MapRange(start, total, src, false).ok());
  MTM_CHECK(frames.Reserve(src, total).ok());

  MigrationEngine migration(machine, page_table, frames, address_space, counters, clock, kind);
  migration.set_migrate_threads(migrate_threads);
  engine.set_write_track_observer(&migration);

  Rng rng(7);
  u64 cursor = 0;
  for (VirtAddr region = start; region < start + total; region += kHugePageSize) {
    (void)migration.Submit(MigrationOrder{region, kHugePageBytes, dst, 0});
    // The application keeps streaming over the array during the migration
    // window (sequential, with the pattern's write share).
    for (int i = 0; i < 2048; ++i) {
      VirtAddr addr = start + (cursor % total.value());
      cursor += 64;
      engine.Apply(addr, rng.NextBernoulli(write_fraction), 0);
    }
    migration.Poll();
  }
  migration.Flush();
  return clock.migration_ns();
}

}  // namespace
}  // namespace mtm

int main() {
  using namespace mtm;
  const u64 scale = 512;
  benchutil::PrintHeader("Figure 11",
                         "migration microbenchmark: 1 GiB array, R / R:W / W patterns");

  Machine machine = Machine::OptaneFourTier(scale);
  ComponentId t1 = machine.TierOrder(0)[0];
  const Pattern patterns[] = {{"R", 0.0}, {"R/W", 0.5}, {"W", 1.0}};
  const struct {
    const char* name;
    u32 rank;
  } targets[] = {{"tier1->tier2", 1}, {"tier1->tier3", 2}, {"tier1->tier4", 3}};

  for (const auto& target : targets) {
    ComponentId dst = machine.TierOrder(0)[target.rank];
    std::printf("%s\n", target.name);
    benchutil::Table table({"pattern", "move_pages (ms)", "nimble (ms)",
                            "move_memory_regions (ms)", "mmr vs move_pages", "mmr vs nimble"});
    for (const Pattern& p : patterns) {
      SimNanos mp = RunCase(MechanismKind::kMovePages, t1, dst, p.write_fraction, scale);
      SimNanos nb = RunCase(MechanismKind::kNimble, t1, dst, p.write_fraction, scale);
      SimNanos mmr =
          RunCase(MechanismKind::kMoveMemoryRegions, t1, dst, p.write_fraction, scale);
      table.AddRow({p.name, benchutil::Fmt("%.2f", ToMillis(mp)),
                    benchutil::Fmt("%.2f", ToMillis(nb)), benchutil::Fmt("%.2f", ToMillis(mmr)),
                    benchutil::Fmt("%+.0f%%", (1.0 - static_cast<double>(mmr.value()) /
                                                         static_cast<double>(mp.value())) *
                                                  100.0),
                    benchutil::Fmt("%+.0f%%", (1.0 - static_cast<double>(mmr.value()) /
                                                         static_cast<double>(nb.value())) *
                                                  100.0)});
    }
    table.Print();
  }
  std::printf("expected shape: MTM ~40%%/~23%% better than move_pages/Nimble for reads;\n"
              "write-heavy patterns trigger the sync fallback and MTM performs like the "
              "synchronous mechanisms.\n");

  // Async-copy overlap: the --migrate-threads sweep. Helper threads only
  // accelerate the host (the staged shard copies run while the simulation
  // loop keeps executing accesses); simulated time is a deterministic
  // function of the workload and must not move by a nanosecond.
  std::printf("\nasync copy overlap (move_memory_regions, tier1->tier4, 10%% writes)\n");
  {
    ComponentId t4 = machine.TierOrder(0)[3];
    const u64 sweep_scale = 16;  // 64 MiB array: enough copy work to time
    benchutil::Table table({"migrate_threads", "host wall (ms)", "sim migration (ms)"});
    SimNanos serial_sim{};
    bool sim_identical = true;
    for (u32 threads : {1u, 2u, 4u, 8u}) {
      double best_wall = 1e300;
      SimNanos sim{};
      for (int rep = 0; rep < 3; ++rep) {
        // mtm-analyze: allow(wall-clock) the sweep measures host overlap by design
        auto wall_start = std::chrono::steady_clock::now();
        sim = RunCase(MechanismKind::kMoveMemoryRegions, t1, t4, 0.1, sweep_scale, threads);
        std::chrono::duration<double, std::milli> wall =
            // mtm-analyze: allow(wall-clock) host-side timing of the same sweep
            std::chrono::steady_clock::now() - wall_start;
        best_wall = std::min(best_wall, wall.count());
      }
      if (threads == 1) {
        serial_sim = sim;
      }
      sim_identical = sim_identical && sim == serial_sim;
      table.AddRow({benchutil::FmtU(threads), benchutil::Fmt("%.2f", best_wall),
                    benchutil::Fmt("%.3f", ToMillis(sim))});
    }
    table.Print();
    std::printf("sim migration ns across the sweep: %s\n",
                sim_identical ? "identical (deterministic)" : "MISMATCH — determinism bug!");
  }
  return 0;
}
