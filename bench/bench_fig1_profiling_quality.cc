// Figure 1: effectiveness of profiling methods at identifying hot pages.
//
// GUPS selects 20% of its footprint as the hot set; we run DAMON, MTM,
// Thermostat, and AutoTiering *profilers* side by side over identical
// access streams (no migration, same 5% overhead budget) and report recall
// and accuracy over time, as the paper defines them (§3).
//
// Expected shape: MTM reaches high recall quickly and holds the highest
// accuracy; DAMON ramps fast but lumps cold pages into its hot regions
// (accuracy ~0.5); Thermostat and AutoTiering ramp slowly because of their
// random sampling.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/mem/address_space.h"
#include "src/mem/frame_allocator.h"
#include "src/mem/placement.h"
#include "src/profiling/autotiering.h"
#include "src/profiling/damon.h"
#include "src/profiling/mtm_profiler.h"
#include "src/profiling/oracle.h"
#include "src/profiling/profiler.h"
#include "src/profiling/thermostat.h"
#include "src/sim/access_engine.h"
#include "src/sim/access_tracker.h"
#include "src/sim/clock.h"
#include "src/sim/counters.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"
#include "src/sim/pebs.h"
#include "src/workloads/gups.h"
#include "src/workloads/workload.h"

namespace mtm {
namespace {

struct Harness {
  explicit Harness(u64 scale)
      : machine(Machine::OptaneFourTier(scale)),
        frames(machine),
        counters(machine.num_components()),
        engine(machine, page_table, clock, counters, AccessEngine::Config{}),
        pebs(machine, PebsEngine::Config{}) {
    engine.set_pebs(&pebs);
    engine.set_tracker(&tracker);
  }

  Machine machine;
  SimClock clock;
  PageTable page_table;
  AddressSpace address_space;
  FrameAllocator frames;
  MemCounters counters;
  AccessEngine engine;
  PebsEngine pebs;
  AccessTracker tracker;
};

// Runs `profiler` against a fresh GUPS instance and prints its quality
// series. Returns the final quality.
ProfilingQuality RunProfiler(const char* name, u64 scale, u32 intervals,
                             const std::function<std::unique_ptr<Profiler>(Harness&)>& make) {
  Harness h(scale);
  Workload::Params params;
  params.footprint_bytes = GiB(512) / scale;
  params.seed = 42;
  GupsWorkload::Options options;
  options.phase_ops = 8'000'000;
  GupsWorkload gups(params, options);
  gups.Build(h.address_space);
  for (const Vma& vma : h.address_space.vmas()) {
    h.tracker.Register(vma.start, vma.len);
  }
  PlacementFaultHandler handler(h.machine, h.page_table, h.frames, h.address_space,
                                PlacementPolicy::kFirstTouch);
  h.engine.set_fault_handler(&handler);

  std::unique_ptr<Profiler> profiler = make(h);
  profiler->Initialize();

  const SimNanos interval_ns = Seconds(10) / scale;
  std::vector<MemAccess> buf(2048);
  std::printf("%-12s", name);
  ProfilingQuality last;
  for (u32 interval = 0; interval < intervals; ++interval) {
    profiler->OnIntervalStart();
    SimNanos start = h.clock.now();
    for (u32 tick = 0; tick < 3; ++tick) {
      SimNanos tick_end = start + (tick + 1) * interval_ns / 3;
      while (h.clock.now() < tick_end) {
        u32 n = gups.NextBatch(buf.data(), buf.size());
        for (u32 i = 0; i < n; ++i) {
          h.engine.Apply(buf[i].addr, buf[i].is_write, 0);
        }
      }
      profiler->OnScanTick(tick);
    }
    ProfileOutput out = profiler->OnIntervalEnd();
    last = Oracle::Evaluate(gups.TrueHotRanges(), out);
    h.tracker.ResetEpoch();
    if ((interval + 1) % (intervals / 8) == 0) {
      std::printf("  %4.2f/%4.2f", last.recall, last.accuracy);
    }
  }
  std::printf("\n");
  return last;
}

}  // namespace
}  // namespace mtm

int main() {
  using namespace mtm;
  const u64 scale = 512;
  const u32 intervals = 48;
  const SimNanos interval_ns = Seconds(10) / scale;

  benchutil::PrintHeader("Figure 1", "profiling recall/accuracy over time (GUPS, 20% hot set)");
  std::printf("columns: recall/accuracy at each eighth of the run (%.0f paper-seconds apart)\n\n",
              ToSeconds(interval_ns) * intervals / 8 * static_cast<double>(scale));

  ProfilingQuality mtm_q = RunProfiler("MTM", scale, intervals, [&](Harness& h) {
    MtmProfiler::Config config;
    config.interval_ns = interval_ns;
    return std::make_unique<MtmProfiler>(h.machine, h.page_table, h.address_space, h.engine,
                                         &h.pebs, config);
  });
  ProfilingQuality damon_q = RunProfiler("DAMON", scale, intervals, [&](Harness& h) {
    DamonProfiler::Config config;
    // Equal overhead: DAMON's scan budget (one page per region per tick)
    // matches MTM's Equation-1 sample count.
    config.max_regions =
        static_cast<u32>(static_cast<double>(interval_ns.value()) * 0.05 / (240.0 * 3));
    return std::make_unique<DamonProfiler>(h.page_table, h.address_space, config);
  });
  ProfilingQuality thermostat_q =
      RunProfiler("Thermostat", scale, intervals, [&](Harness& h) {
        ThermostatProfiler::Config config;
        config.interval_ns = interval_ns;
        return std::make_unique<ThermostatProfiler>(h.address_space, h.tracker, config);
      });
  ProfilingQuality autotiering_q =
      RunProfiler("AutoTiering", scale, intervals, [&](Harness& h) {
        AutoTieringProfiler::Config config;
        config.scan_window_bytes = GiB(512) / scale / 32;  // random-sampled slice per interval
        return std::make_unique<AutoTieringProfiler>(h.page_table, h.address_space, config);
      });

  std::printf("\nfinal: MTM %.2f/%.2f | DAMON %.2f/%.2f | Thermostat %.2f/%.2f | "
              "AutoTiering %.2f/%.2f\n",
              mtm_q.recall, mtm_q.accuracy, damon_q.recall, damon_q.accuracy,
              thermostat_q.recall, thermostat_q.accuracy, autotiering_q.recall,
              autotiering_q.accuracy);
  std::printf("expected shape: MTM highest accuracy at high recall; DAMON fast ramp but "
              "~0.5 accuracy;\nThermostat/AutoTiering slower ramp (random sampling).\n");
  return 0;
}
