// Google-benchmark microbenchmarks of the substrate's hot primitives: page
// table walks, PTE scans, access application, histogram updates, and
// workload generation. These quantify the §3 motivation numbers (e.g. what
// a full PTE scan of a large table costs) on the simulator itself.
#include <benchmark/benchmark.h>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/mem/placement.h"
#include "src/sim/access_engine.h"
#include "src/workloads/gups.h"

namespace mtm {
namespace {

constexpr VirtAddr kBase{0x5500'0000'0000ull};

void BM_PageTableWalk(benchmark::State& state) {
  PageTable pt;
  const u64 pages = 1 << 16;
  MTM_CHECK(pt.MapRange(kBase, PagesToBytes(pages), 0, false).ok());
  Rng rng(1);
  for (auto _ : state) {
    VirtAddr addr = kBase + PagesToBytes(rng.NextBounded(pages));
    benchmark::DoNotOptimize(pt.Find(addr));
  }
}
BENCHMARK(BM_PageTableWalk);

void BM_PteScan(benchmark::State& state) {
  PageTable pt;
  const u64 pages = 1 << 16;
  MTM_CHECK(pt.MapRange(kBase, PagesToBytes(pages), 0, false).ok());
  Rng rng(1);
  bool accessed = false;
  for (auto _ : state) {
    VirtAddr addr = kBase + PagesToBytes(rng.NextBounded(pages));
    benchmark::DoNotOptimize(pt.ScanAccessed(addr, &accessed));
  }
}
BENCHMARK(BM_PteScan);

void BM_FullTableScan(benchmark::State& state) {
  // The §3 motivation: scanning every PTE of a large mapping.
  PageTable pt;
  const Bytes bytes = MiB(static_cast<u64>(state.range(0)));
  MTM_CHECK(pt.MapRange(kBase, bytes, 0, false).ok());
  for (auto _ : state) {
    u64 visited = 0;
    pt.ForEachMapping(kBase, bytes, [&](VirtAddr, Bytes, Pte&) { ++visited; });
    benchmark::DoNotOptimize(visited);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(NumPages(bytes)));
}
BENCHMARK(BM_FullTableScan)->Arg(64)->Arg(256);

void BM_AccessEngineApply(benchmark::State& state) {
  Machine machine = Machine::OptaneFourTier(512);
  SimClock clock;
  PageTable pt;
  AddressSpace as;
  FrameAllocator frames(machine);
  MemCounters counters(machine.num_components());
  AccessEngine engine(machine, pt, clock, counters, AccessEngine::Config{});
  u32 vma = as.Allocate(MiB(64), true, "bench");
  PlacementFaultHandler handler(machine, pt, frames, as, PlacementPolicy::kFirstTouch);
  engine.set_fault_handler(&handler);
  VirtAddr start = as.vma(vma).start;
  Rng rng(1);
  for (auto _ : state) {
    engine.Apply(start + (rng.Next() & (MiB(64).value() - 1) & ~u64{7}), false, 0);
  }
}
BENCHMARK(BM_AccessEngineApply);

void BM_HistogramUpdate(benchmark::State& state) {
  BucketedHistogram<u64> hist(0.0, 3.0, 16);
  Rng rng(1);
  u64 id = 0;
  for (auto _ : state) {
    hist.Update(id++ % 4096, rng.NextDouble() * 3.0);
  }
}
BENCHMARK(BM_HistogramUpdate);

void BM_GupsBatch(benchmark::State& state) {
  Workload::Params params;
  params.footprint_bytes = MiB(256);
  params.seed = 1;
  GupsWorkload gups(params);
  AddressSpace as;
  gups.Build(as);
  std::vector<MemAccess> buf(2048);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gups.NextBatch(buf.data(), 2048));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 2048);
}
BENCHMARK(BM_GupsBatch);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(1'000'000, 0.99);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

}  // namespace
}  // namespace mtm

BENCHMARK_MAIN();
