// Google-benchmark microbenchmarks of the substrate's hot primitives: page
// table walks, PTE scans, access application, histogram updates, and
// workload generation. These quantify the §3 motivation numbers (e.g. what
// a full PTE scan of a large table costs) on the simulator itself.
#include <benchmark/benchmark.h>

#include "src/common/histogram.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/mem/address_space.h"
#include "src/mem/frame_allocator.h"
#include "src/mem/placement.h"
#include "src/migration/async_copy.h"
#include "src/sim/access_engine.h"
#include "src/sim/clock.h"
#include "src/sim/counters.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"
#include "src/workloads/gups.h"
#include "src/workloads/workload.h"

namespace mtm {
namespace {

constexpr VirtAddr kBase{0x5500'0000'0000ull};

void BM_PageTableWalk(benchmark::State& state) {
  PageTable pt;
  const u64 pages = 1 << 16;
  MTM_CHECK(pt.MapRange(kBase, PagesToBytes(pages), ComponentId(0), false).ok());
  Rng rng(1);
  for (auto _ : state) {
    VirtAddr addr = kBase + PagesToBytes(rng.NextBounded(pages));
    benchmark::DoNotOptimize(pt.Find(addr));
  }
}
BENCHMARK(BM_PageTableWalk);

void BM_PteScan(benchmark::State& state) {
  PageTable pt;
  const u64 pages = 1 << 16;
  MTM_CHECK(pt.MapRange(kBase, PagesToBytes(pages), ComponentId(0), false).ok());
  Rng rng(1);
  bool accessed = false;
  for (auto _ : state) {
    VirtAddr addr = kBase + PagesToBytes(rng.NextBounded(pages));
    benchmark::DoNotOptimize(pt.ScanAccessed(addr, &accessed));
  }
}
BENCHMARK(BM_PteScan);

void BM_FullTableScan(benchmark::State& state) {
  // The §3 motivation: scanning every PTE of a large mapping.
  PageTable pt;
  const Bytes bytes = MiB(static_cast<u64>(state.range(0)));
  MTM_CHECK(pt.MapRange(kBase, bytes, ComponentId(0), false).ok());
  for (auto _ : state) {
    u64 visited = 0;
    pt.ForEachMapping(kBase, bytes, [&](VirtAddr, Bytes, Pte&) { ++visited; });
    benchmark::DoNotOptimize(visited);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(NumPages(bytes)));
}
BENCHMARK(BM_FullTableScan)->Arg(64)->Arg(256);

void BM_ShardedPteScanThroughput(benchmark::State& state) {
  // Bench analogue of MtmProfiler::ScanSampledPages: a sampled-page list
  // partitioned into num_threads*4 contiguous shards, each scanned on a
  // worker, hit counts merged afterwards. Compare Arg(1) against Arg(8)
  // for the parallel-engine speedup on a multi-core runner.
  PageTable pt;
  const u64 pages = 1 << 18;
  MTM_CHECK(pt.MapRange(kBase, PagesToBytes(pages), ComponentId(0), false).ok());
  // Every 4th page sampled, like an Equation-1 budget over a warm region set.
  std::vector<VirtAddr> sampled;
  for (u64 page = 0; page < pages; page += 4) {
    sampled.push_back(kBase + PagesToBytes(page));
  }
  const u32 threads = static_cast<u32>(state.range(0));
  ThreadPool pool(threads);
  const std::size_t shards = static_cast<std::size_t>(threads) * 4;
  std::vector<u64> shard_hits(shards, 0);
  for (auto _ : state) {
    pool.ParallelFor(shards, [&](std::size_t s) {
      const std::size_t begin = sampled.size() * s / shards;
      const std::size_t end = sampled.size() * (s + 1) / shards;
      u64 hits = 0;
      bool accessed = false;
      for (std::size_t i = begin; i < end; ++i) {
        if (pt.ScanAccessed(sampled[i], &accessed) && accessed) {
          ++hits;
        }
      }
      shard_hits[s] = hits;
    });
    u64 total = 0;
    for (u64 h : shard_hits) {
      total += h;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(sampled.size()));
}
BENCHMARK(BM_ShardedPteScanThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_AsyncCopyStage(benchmark::State& state) {
  // Bench analogue of one move_memory_regions staging window (DESIGN.md
  // §14): snapshot a 64 MiB region of huge pages, Begin dispatches the copy
  // shards to helper threads, Join merges the task-indexed checksums in
  // shard order. Arg is the AsyncCopyEngine thread count; compare Arg(1)
  // (inline copy at Begin) against Arg(8) for the overlap win.
  const u64 huge_pages = 32;
  std::vector<PageCopyRecord> pages;
  Rng rng(9);
  for (u64 h = 0; h < huge_pages; ++h) {
    pages.push_back(PageCopyRecord{kBase + h * kHugePageSize, kHugePageBytes, ComponentId(2),
                                   rng.Next()});
  }
  AsyncCopyEngine engine(static_cast<u32>(state.range(0)));
  for (auto _ : state) {
    AsyncCopyEngine::Ticket ticket = engine.Begin(pages);
    RegionCopyResult result = engine.Join(ticket);
    benchmark::DoNotOptimize(result.checksum);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(huge_pages * kHugePageSize));
}
BENCHMARK(BM_AsyncCopyStage)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// ROADMAP question: do the VirtAddr/Bytes strong-type wrappers inhibit
// vectorization of the scan hot loop's address arithmetic? The two loops
// below are element-type-identical otherwise; matching throughput means
// the wrappers compile away entirely.
void BM_StrongTypeAddressArithmetic(benchmark::State& state) {
  std::vector<VirtAddr> addrs(1 << 16);
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    addrs[i] = kBase + PagesToBytes(i);
  }
  for (auto _ : state) {
    u64 acc = 0;
    for (VirtAddr addr : addrs) {
      acc += addr.Shifted(kPageShift) ^ addr.OffsetIn(kHugePageSize);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(addrs.size()));
}
BENCHMARK(BM_StrongTypeAddressArithmetic);

void BM_RawU64AddressArithmetic(benchmark::State& state) {
  std::vector<u64> addrs(1 << 16);
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    addrs[i] = kBase.value() + (i << kPageShift);
  }
  for (auto _ : state) {
    u64 acc = 0;
    for (u64 addr : addrs) {
      acc += (addr >> kPageShift) ^ (addr & (kHugePageSize - 1));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(addrs.size()));
}
BENCHMARK(BM_RawU64AddressArithmetic);

void BM_AccessEngineApply(benchmark::State& state) {
  Machine machine = Machine::OptaneFourTier(512);
  SimClock clock;
  PageTable pt;
  AddressSpace as;
  FrameAllocator frames(machine);
  MemCounters counters(machine.num_components());
  AccessEngine engine(machine, pt, clock, counters, AccessEngine::Config{});
  u32 vma = as.Allocate(MiB(64), true, "bench");
  PlacementFaultHandler handler(machine, pt, frames, as, PlacementPolicy::kFirstTouch);
  engine.set_fault_handler(&handler);
  VirtAddr start = as.vma(vma).start;
  Rng rng(1);
  for (auto _ : state) {
    engine.Apply(start + (rng.Next() & (MiB(64).value() - 1) & ~u64{7}), false, 0);
  }
}
BENCHMARK(BM_AccessEngineApply);

void BM_HistogramUpdate(benchmark::State& state) {
  BucketedHistogram<u64> hist(0.0, 3.0, 16);
  Rng rng(1);
  u64 id = 0;
  for (auto _ : state) {
    hist.Update(id++ % 4096, rng.NextDouble() * 3.0);
  }
}
BENCHMARK(BM_HistogramUpdate);

void BM_GupsBatch(benchmark::State& state) {
  Workload::Params params;
  params.footprint_bytes = MiB(256);
  params.seed = 1;
  GupsWorkload gups(params);
  AddressSpace as;
  gups.Build(as);
  std::vector<MemAccess> buf(2048);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gups.NextBatch(buf.data(), 2048));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 2048);
}
BENCHMARK(BM_GupsBatch);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(1'000'000, 0.99);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

}  // namespace
}  // namespace mtm

BENCHMARK_MAIN();
