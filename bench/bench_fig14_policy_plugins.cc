// Figure 14 (extension): the policy-as-plugin registry on a Table-2
// workload. Every row swaps only the tiering policy — profiling and
// migration stay MTM's — via --policy-style overrides, plus the standalone
// baseline solutions for reference:
//
//  * mtm (full)       the default heuristic (WHI histogram policy);
//  * mtm-feature      the same heuristic expressed as a FeaturePolicy
//                     (the plugin path; must match mtm exactly);
//  * logistic         the fitted logistic scorer over the full feature
//                     vector (tools/fit_logistic_policy.py);
//  * autonuma/autotiering swapped into the MTM stack via the registry;
//  * tiered-autonuma / autotiering as whole solutions (Figure 4 baselines).
//
// Expected shape: mtm and mtm-feature are identical; logistic lands close
// to the heuristic and ahead of the swapped-in and standalone baselines.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"

int main() {
  using namespace mtm;
  ExperimentConfig base = benchutil::DefaultConfig();
  benchutil::PrintHeader("Figure 14", "pluggable tiering policies on VoltDB (seconds)");
  benchutil::PrintConfig(base);

  benchutil::Table table({"policy", "app(s)", "total(s)", "fast-tier %", "moved(MiB)",
                          "vs mtm"});
  double mtm_total = 0.0;

  auto run = [&](const char* name, SolutionKind kind, const std::string& policy) {
    ExperimentConfig config = base;
    config.policy_override = policy;
    RunResult r = RunExperiment("voltdb", kind, config);
    double total = ToSeconds(r.total_ns());
    if (mtm_total == 0.0) {
      mtm_total = total;
    }
    double fast_share = 0.0;
    if (!r.component_app_accesses.empty() && r.total_accesses > 0) {
      fast_share = static_cast<double>(r.component_app_accesses[0]) /
                   static_cast<double>(r.total_accesses) * 100.0;
    }
    table.AddRow({name, benchutil::Fmt("%.3f", ToSeconds(r.app_ns)),
                  benchutil::Fmt("%.3f", total), benchutil::Fmt("%.1f", fast_share),
                  benchutil::Fmt("%.1f", ToMiB(r.migration_stats.bytes_migrated)),
                  benchutil::Fmt("%+.1f%%", (total - mtm_total) / mtm_total * 100.0)});
    std::printf("[%s done]\n", name);
  };

  run("mtm (full)", SolutionKind::kMtm, "");
  run("mtm-feature (plugin path)", SolutionKind::kMtm, "mtm-feature");
  run("logistic (fitted)", SolutionKind::kMtm, "logistic");
  run("autonuma policy in mtm stack", SolutionKind::kMtm, "autonuma");
  run("autotiering policy in mtm stack", SolutionKind::kMtm, "autotiering");
  run("tiered-autonuma (solution)", SolutionKind::kTieredAutoNuma, "");
  run("autotiering (solution)", SolutionKind::kAutoTiering, "");

  std::printf("\n");
  table.Print();
  return 0;
}
