// Figure 8: execution time vs the profiling-overhead target (VoltDB, 5 s
// profiling interval).
//
// Expected shape: performance improves as the target grows from 1% toward
// 5% (more samples, better placement), then degrades toward 10% (profiling
// itself eats the gains) — 5% is the sweet spot the paper adopts.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/report.h"
#include "src/workloads/workload_factory.h"

namespace {

double PhaseSeconds(const mtm::Observability& obs, const std::string& gauge) {
  mtm::MetricId id = obs.metrics.Find(gauge);
  MTM_CHECK(id != mtm::kInvalidMetricId);
  return mtm::ToSeconds(mtm::SimNanos(static_cast<mtm::u64>(obs.metrics.gauge(id))));
}

}  // namespace

int main() {
  using namespace mtm;
  benchutil::PrintHeader("Figure 8", "execution time vs profiling-overhead target (VoltDB)");

  benchutil::Table table({"target", "app(s)", "profiling(s)", "migration(s)", "total(s)"});
  for (double target : {0.01, 0.02, 0.03, 0.05, 0.10}) {
    ExperimentConfig config = benchutil::DefaultConfig();
    config.interval_ns = Seconds(5) / config.sim_scale;  // the figure's 5 s interval
    config.mtm.overhead_fraction = target;
    Observability obs;
    RunOptions options;
    options.obs = &obs;
    RunResult r = RunExperiment("voltdb", SolutionKind::kMtm, config, options);
    table.AddRow({benchutil::Fmt("%.0f%%", target * 100.0),
                  benchutil::Fmt("%.3f", PhaseSeconds(obs, "time/app_ns")),
                  benchutil::Fmt("%.3f", PhaseSeconds(obs, "time/profiling_ns")),
                  benchutil::Fmt("%.3f", PhaseSeconds(obs, "time/migration_ns")),
                  benchutil::Fmt("%.3f", ToSeconds(r.total_ns()))});
    std::printf("[%.0f%% done]\n", target * 100.0);
  }
  std::printf("\n");
  table.Print();
  std::printf("expected shape: best total around the 5%% target; 10%% pays more profiling "
              "than it recovers (paper: +7%% from 5%% to 10%%)\n");
  return 0;
}
