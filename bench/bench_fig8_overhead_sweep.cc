// Figure 8: execution time vs the profiling-overhead target (VoltDB, 5 s
// profiling interval).
//
// Expected shape: performance improves as the target grows from 1% toward
// 5% (more samples, better placement), then degrades toward 10% (profiling
// itself eats the gains) — 5% is the sweet spot the paper adopts.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"
#include "src/obs/metric_id.h"
#include "src/obs/obs.h"

namespace {

double PhaseSeconds(const mtm::Observability& obs, const std::string& gauge) {
  mtm::MetricId id = obs.metrics.Find(gauge);
  MTM_CHECK(id != mtm::kInvalidMetricId);
  return mtm::ToSeconds(mtm::SimNanos(static_cast<mtm::u64>(obs.metrics.gauge(id))));
}

// Host wall-clock histogram recorded by an MTM_TRACE_SCOPE site (µs/call).
const mtm::RunningStats& WallHist(const mtm::Observability& obs, const std::string& name) {
  mtm::MetricId id = obs.metrics.Find(name);
  MTM_CHECK(id != mtm::kInvalidMetricId) << "wall timer not recorded: " << name;
  return obs.metrics.histogram(id);
}

}  // namespace

int main() {
  using namespace mtm;
  benchutil::PrintHeader("Figure 8", "execution time vs profiling-overhead target (VoltDB)");

  // Wall columns: host µs/call of the MTM_TRACE_SCOPE sites around the PTE
  // scan tick and the interval-end bookkeeping — the simulator's own cost
  // of profiling, alongside the simulated-time overhead the figure sweeps.
  benchutil::Table table({"target", "app(s)", "profiling(s)", "migration(s)", "total(s)",
                          "scan wall(µs)", "intvl wall(µs)"});
  for (double target : {0.01, 0.02, 0.03, 0.05, 0.10}) {
    ExperimentConfig config = benchutil::DefaultConfig();
    config.interval_ns = Seconds(5) / config.sim_scale;  // the figure's 5 s interval
    config.mtm.overhead_fraction = target;
    Observability obs;
    obs.wall_timers = true;
    RunOptions options;
    options.obs = &obs;
    RunResult r = RunExperiment("voltdb", SolutionKind::kMtm, config, options);
    const RunningStats& scan = WallHist(obs, "wall/scan_tick");
    const RunningStats& intvl = WallHist(obs, "wall/interval_end");
    table.AddRow({benchutil::Fmt("%.0f%%", target * 100.0),
                  benchutil::Fmt("%.3f", PhaseSeconds(obs, "time/app_ns")),
                  benchutil::Fmt("%.3f", PhaseSeconds(obs, "time/profiling_ns")),
                  benchutil::Fmt("%.3f", PhaseSeconds(obs, "time/migration_ns")),
                  benchutil::Fmt("%.3f", ToSeconds(r.total_ns())),
                  benchutil::Fmt("%.1f", scan.mean()) + " x" + benchutil::FmtU(scan.count()),
                  benchutil::Fmt("%.1f", intvl.mean()) + " x" +
                      benchutil::FmtU(intvl.count())});
    std::printf("[%.0f%% done]\n", target * 100.0);
  }
  std::printf("\n");
  table.Print();
  std::printf("expected shape: best total around the 5%% target; 10%% pays more profiling "
              "than it recovers (paper: +7%% from 5%% to 10%%)\n");

  // Host-side cost of the sharded scan engine at the paper's 5%% target:
  // identical simulated results (byte-determinism), different wall time.
  std::printf("\n");
  benchutil::Table wall_table({"scan-threads", "scan wall mean(µs)", "scan wall max(µs)"});
  for (u32 threads : {1u, 8u}) {
    ExperimentConfig config = benchutil::DefaultConfig();
    config.interval_ns = Seconds(5) / config.sim_scale;
    config.mtm.overhead_fraction = 0.05;
    config.mtm.scan_threads = threads;
    Observability obs;
    obs.wall_timers = true;
    RunOptions options;
    options.obs = &obs;
    RunExperiment("voltdb", SolutionKind::kMtm, config, options);
    const RunningStats& scan = WallHist(obs, "wall/scan_tick");
    wall_table.AddRow({benchutil::FmtU(threads), benchutil::Fmt("%.1f", scan.mean()),
                       benchutil::Fmt("%.1f", scan.max())});
  }
  wall_table.Print();
  std::printf("wall timers are host-clock (MTM_TRACE_SCOPE); simulated output is "
              "byte-identical across scan-thread counts\n");
  return 0;
}
