// Shared helpers for the paper-reproduction benches: consistent headers,
// simple aligned tables, and the default experiment configuration used
// across figures.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/core/experiment.h"

namespace mtm {
namespace benchutil {

inline void PrintHeader(const char* experiment, const char* description) {
  std::printf("==============================================================================\n");
  std::printf("%s — %s\n", experiment, description);
  std::printf("==============================================================================\n");
}

inline void PrintConfig(const ExperimentConfig& config) {
  std::printf("config: scale 1:%llu | interval %.1f ms | overhead target %.0f%% | "
              "N %.1f MiB/interval | threads %u%s\n\n",
              static_cast<unsigned long long>(config.sim_scale),
              ToMillis(config.IntervalNs()), config.mtm.overhead_fraction * 100.0,
              ToMiB(config.PromoteBatchBytes()), config.num_threads,
              config.two_tier ? " | two-tier" : "");
}

// Fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print() const {
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = columns_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(columns_);
    std::string sep;
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      sep += std::string(widths[c], '-') + "  ";
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) {
      print_row(row);
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

inline std::string FmtU(unsigned long long value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu", value);
  return buf;
}

// The §9 testbed configuration, scaled.
inline ExperimentConfig DefaultConfig() {
  ExperimentConfig config;
  config.sim_scale = 512;
  config.num_intervals = 400;        // safety cap; fixed work governs
  config.target_accesses = 45'000'000;
  config.seed = 42;
  return config;
}

}  // namespace benchutil
}  // namespace mtm
