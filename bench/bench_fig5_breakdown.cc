// Figure 5: breakdown of end-to-end time into application execution,
// profiling, and migration for the four solutions that drive all tiers.
//
// Expected shape: profiling stays within the 5% constraint everywhere; MTM
// spends far less in migration than tiered-AutoNUMA (~3.5x less in the
// paper) and ~25% less than AutoTiering, with the lowest application time.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"
#include "src/obs/metric_id.h"
#include "src/obs/obs.h"
#include "src/workloads/workload_factory.h"

namespace {

// Reads one of the time/{app,profiling,migration}_ns gauges the driver
// publishes each interval, in seconds.
double PhaseSeconds(const mtm::Observability& obs, const std::string& gauge) {
  mtm::MetricId id = obs.metrics.Find(gauge);
  MTM_CHECK(id != mtm::kInvalidMetricId);
  return mtm::ToSeconds(mtm::SimNanos(static_cast<mtm::u64>(obs.metrics.gauge(id))));
}

}  // namespace

int main() {
  using namespace mtm;
  ExperimentConfig config = benchutil::DefaultConfig();
  benchutil::PrintHeader("Figure 5", "execution-time breakdown (app / profiling / migration), seconds");
  benchutil::PrintConfig(config);

  std::vector<SolutionKind> solutions = {
      SolutionKind::kFirstTouch, SolutionKind::kTieredAutoNuma, SolutionKind::kAutoTiering,
      SolutionKind::kMtm};

  benchutil::Table table(
      {"workload", "solution", "app(s)", "profiling(s)", "migration(s)", "total(s)"});
  for (const std::string& workload : AllWorkloadNames()) {
    for (SolutionKind kind : solutions) {
      Observability obs;
      RunOptions options;
      options.obs = &obs;
      RunResult r = RunExperiment(workload, kind, config, options);
      const double app_s = PhaseSeconds(obs, "time/app_ns");
      const double profiling_s = PhaseSeconds(obs, "time/profiling_ns");
      const double migration_s = PhaseSeconds(obs, "time/migration_ns");
      table.AddRow({workload, SolutionKindName(kind), benchutil::Fmt("%.3f", app_s),
                    benchutil::Fmt("%.3f", profiling_s), benchutil::Fmt("%.3f", migration_s),
                    benchutil::Fmt("%.3f", ToSeconds(r.total_ns()))});
    }
    std::printf("[%s done]\n", workload.c_str());
  }
  std::printf("\n");
  table.Print();
  return 0;
}
