// Figure 5: breakdown of end-to-end time into application execution,
// profiling, and migration for the four solutions that drive all tiers.
//
// Expected shape: profiling stays within the 5% constraint everywhere; MTM
// spends far less in migration than tiered-AutoNUMA (~3.5x less in the
// paper) and ~25% less than AutoTiering, with the lowest application time.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workloads/workload_factory.h"

int main() {
  using namespace mtm;
  ExperimentConfig config = benchutil::DefaultConfig();
  benchutil::PrintHeader("Figure 5", "execution-time breakdown (app / profiling / migration), seconds");
  benchutil::PrintConfig(config);

  std::vector<SolutionKind> solutions = {
      SolutionKind::kFirstTouch, SolutionKind::kTieredAutoNuma, SolutionKind::kAutoTiering,
      SolutionKind::kMtm};

  benchutil::Table table(
      {"workload", "solution", "app(s)", "profiling(s)", "migration(s)", "total(s)"});
  for (const std::string& workload : AllWorkloadNames()) {
    for (SolutionKind kind : solutions) {
      RunResult r = RunExperiment(workload, kind, config);
      table.AddRow({workload, SolutionKindName(kind),
                    benchutil::Fmt("%.3f", ToSeconds(r.app_ns)),
                    benchutil::Fmt("%.3f", ToSeconds(r.profiling_ns)),
                    benchutil::Fmt("%.3f", ToSeconds(r.migration_ns)),
                    benchutil::Fmt("%.3f", ToSeconds(r.total_ns()))});
    }
    std::printf("[%s done]\n", workload.c_str());
  }
  std::printf("\n");
  table.Print();
  return 0;
}
