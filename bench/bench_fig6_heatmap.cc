// Figure 6: heatmap of detected memory-access hotness over the GUPS address
// space, DAMON vs MTM under the same 5% profiling overhead.
//
// GUPS has three hot objects: A (the indexes), B (the hot-set information),
// and C (the hot set inside the table). Expected shape: MTM finds A, B, and
// C with tight extents; DAMON finds A but misses B (its VMA-tree regions
// are too coarse) and is slow to pin down C.
#include <cstdio>
#include <functional>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/mem/address_space.h"
#include "src/mem/frame_allocator.h"
#include "src/mem/placement.h"
#include "src/profiling/damon.h"
#include "src/profiling/mtm_profiler.h"
#include "src/profiling/oracle.h"
#include "src/profiling/profiler.h"
#include "src/sim/access_engine.h"
#include "src/sim/access_tracker.h"
#include "src/sim/clock.h"
#include "src/sim/counters.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"
#include "src/sim/pebs.h"
#include "src/workloads/gups.h"
#include "src/workloads/workload.h"

namespace mtm {
namespace {

constexpr int kColumns = 100;

// Renders per-column hotness of `out` over the address-space span.
std::string Render(const AddressSpace& as, const ProfileOutput& out) {
  VirtAddr lo = as.vmas().front().start;
  VirtAddr hi = as.vmas().back().end();
  std::vector<double> columns(kColumns, 0.0);
  double max_hot = 1e-9;
  for (const HotnessEntry& e : out.entries) {
    max_hot = std::max(max_hot, e.hotness);
  }
  for (const HotnessEntry& e : out.entries) {
    int c0 = static_cast<int>((e.start - lo) * kColumns / (hi - lo));
    int c1 = static_cast<int>((e.end() - 1 - lo) * kColumns / (hi - lo));
    for (int c = c0; c <= c1 && c < kColumns; ++c) {
      columns[c] = std::max(columns[c], e.hotness / max_hot);
    }
  }
  const char* shades = " .:-=+*#%@";
  std::string line;
  for (double v : columns) {
    line += shades[std::min(9, static_cast<int>(v * 9.999))];
  }
  return line;
}

std::string TruthLine(const AddressSpace& as, const GupsWorkload& gups) {
  VirtAddr lo = as.vmas().front().start;
  VirtAddr hi = as.vmas().back().end();
  std::string line(kColumns, ' ');
  auto mark = [&](HotRange r, char label) {
    int c0 = static_cast<int>((r.start - lo) * kColumns / (hi - lo));
    int c1 = static_cast<int>((r.end() - 1 - lo) * kColumns / (hi - lo));
    for (int c = c0; c <= c1 && c < kColumns; ++c) {
      line[static_cast<std::size_t>(c)] = label;
    }
    return line;
  };
  mark(gups.object_c(), 'C');
  mark(gups.object_a(), 'A');
  mark(gups.object_b(), 'B');
  return line;
}

std::string RunAndRender(u64 scale, u32 intervals,
                         const std::function<std::unique_ptr<Profiler>(
                             Machine&, PageTable&, AddressSpace&, AccessEngine&, PebsEngine&,
                             AccessTracker&)>& make,
                         std::string* truth_out) {
  Machine machine = Machine::OptaneFourTier(scale);
  SimClock clock;
  PageTable page_table;
  AddressSpace address_space;
  FrameAllocator frames(machine);
  MemCounters counters(machine.num_components());
  AccessEngine engine(machine, page_table, clock, counters, AccessEngine::Config{});
  PebsEngine pebs(machine, PebsEngine::Config{});
  AccessTracker tracker;
  engine.set_pebs(&pebs);

  Workload::Params params;
  params.footprint_bytes = GiB(512) / scale;
  params.seed = 42;
  GupsWorkload gups(params);
  gups.Build(address_space);
  PlacementFaultHandler handler(machine, page_table, frames, address_space,
                                PlacementPolicy::kFirstTouch);
  engine.set_fault_handler(&handler);

  std::unique_ptr<Profiler> profiler =
      make(machine, page_table, address_space, engine, pebs, tracker);
  profiler->Initialize();

  const SimNanos interval_ns = Seconds(10) / scale;
  std::vector<MemAccess> buf(2048);
  ProfileOutput out;
  for (u32 interval = 0; interval < intervals; ++interval) {
    profiler->OnIntervalStart();
    SimNanos start = clock.now();
    for (u32 tick = 0; tick < 3; ++tick) {
      SimNanos tick_end = start + (tick + 1) * interval_ns / 3;
      while (clock.now() < tick_end) {
        u32 n = gups.NextBatch(buf.data(), buf.size());
        for (u32 i = 0; i < n; ++i) {
          engine.Apply(buf[i].addr, buf[i].is_write, 0);
        }
      }
      profiler->OnScanTick(tick);
    }
    out = profiler->OnIntervalEnd();
  }
  if (truth_out != nullptr) {
    *truth_out = TruthLine(address_space, gups);
  }
  return Render(address_space, out);
}

}  // namespace
}  // namespace mtm

int main() {
  using namespace mtm;
  const u64 scale = 512;
  const u32 intervals = 24;
  benchutil::PrintHeader("Figure 6", "detected-hotness heatmap over the GUPS address space");

  std::string truth;
  std::string mtm_line = RunAndRender(
      scale, intervals,
      [&](Machine& m, PageTable& pt, AddressSpace& as, AccessEngine& e, PebsEngine& pebs,
          AccessTracker&) -> std::unique_ptr<Profiler> {
        MtmProfiler::Config config;
        config.interval_ns = Seconds(10) / scale;
        return std::make_unique<MtmProfiler>(m, pt, as, e, &pebs, config);
      },
      &truth);
  std::string damon_line = RunAndRender(
      scale, intervals,
      [&](Machine&, PageTable& pt, AddressSpace& as, AccessEngine&, PebsEngine&,
          AccessTracker&) -> std::unique_ptr<Profiler> {
        DamonProfiler::Config config;
        config.max_regions = static_cast<u32>(
            static_cast<double>((Seconds(10) / scale).value()) * 0.05 / (240.0 * 3));
        return std::make_unique<DamonProfiler>(pt, as, config);
      },
      nullptr);

  std::printf("address space (left = table with hot set C, right = index A, info B):\n\n");
  std::printf("truth  |%s|\n", truth.c_str());
  std::printf("MTM    |%s|\n", mtm_line.c_str());
  std::printf("DAMON  |%s|\n", damon_line.c_str());
  std::printf("\nexpected shape: MTM shades exactly under C, A, and B; DAMON shades A but\n"
              "smears or misses B and C (coarse VMA-tree regions, ad-hoc splitting).\n");
  return 0;
}
