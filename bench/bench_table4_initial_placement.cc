// Table 4: GUPS execution time under MTM with two initial placements —
// slow-tier-first (MTM's default) vs first-touch — across increasing
// amounts of work.
//
// Expected shape: a small difference at the start of execution (~5% in the
// paper) that becomes negligible as the run progresses, because MTM
// promotes the hot set regardless of where it started.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"
#include "src/mem/placement.h"

int main() {
  using namespace mtm;
  benchutil::PrintHeader("Table 4", "GUPS time vs initial page placement (MTM)");

  benchutil::Table table({"work (M accesses)", "slow-tier-first (s)", "first-touch (s)",
                          "difference"});
  for (u64 work : {6'000'000ull, 12'000'000ull, 18'000'000ull, 24'000'000ull, 30'000'000ull}) {
    ExperimentConfig config = benchutil::DefaultConfig();
    config.target_accesses = work;

    config.mtm.placement = PlacementPolicy::kSlowTierFirst;
    RunResult slow = RunExperiment("gups", SolutionKind::kMtm, config);

    config.mtm.placement = PlacementPolicy::kFirstTouch;
    RunResult ft = RunExperiment("gups", SolutionKind::kMtm, config);

    double s = ToSeconds(slow.total_ns());
    double f = ToSeconds(ft.total_ns());
    table.AddRow({benchutil::FmtU(work / 1'000'000), benchutil::Fmt("%.3f", s),
                  benchutil::Fmt("%.3f", f),
                  benchutil::Fmt("%+.1f%%", (s - f) / f * 100.0)});
  }
  table.Print();
  std::printf("expected shape: small early difference, converging as GUPS progresses "
              "(paper: 4.9%% at 1000 GUp, 0%% beyond 3000 GUp)\n");
  return 0;
}
