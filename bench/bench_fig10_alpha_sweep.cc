// Figure 10: sensitivity to the EMA weight alpha (Equation 2), normalized
// to the default alpha = 1/2, for all six workloads.
//
// Expected shape: combining current and historical profiling (alpha between
// the extremes) is best for most workloads; alpha = 0 (history only) and
// alpha = 1 (no history) both lose on workloads with drifting hot sets.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"
#include "src/workloads/workload_factory.h"

int main() {
  using namespace mtm;
  benchutil::PrintHeader("Figure 10", "performance vs EMA weight alpha (normalized to alpha=1/2)");

  const double alphas[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  benchutil::Table table({"workload", "a=0", "a=1/4", "a=1/2", "a=3/4", "a=1"});
  for (const std::string& workload : AllWorkloadNames()) {
    double totals[5] = {};
    for (int i = 0; i < 5; ++i) {
      ExperimentConfig config = benchutil::DefaultConfig();
      config.target_accesses = 20'000'000;
      config.mtm.alpha = alphas[i];
      RunResult r = RunExperiment(workload, SolutionKind::kMtm, config);
      totals[i] = ToSeconds(r.total_ns());
    }
    double base = totals[2];  // alpha = 1/2
    table.AddRow({workload, benchutil::Fmt("%.3f", base / totals[0]),
                  benchutil::Fmt("%.3f", base / totals[1]),
                  benchutil::Fmt("%.3f", base / totals[2]),
                  benchutil::Fmt("%.3f", base / totals[3]),
                  benchutil::Fmt("%.3f", base / totals[4])});
    std::printf("[%s done]\n", workload.c_str());
  }
  std::printf("\n");
  table.Print();
  std::printf("values are speedups relative to alpha=1/2 (1.000 = default; <1 = slower)\n");
  return 0;
}
