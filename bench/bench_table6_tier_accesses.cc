// Table 6: number of application memory accesses per tier when running
// VoltDB, for the three solutions that can use all four tiers.
//
// Expected shape: MTM serves the most accesses from tier 1 (12-14% more
// than tiered-AutoNUMA / AutoTiering in the paper) and nearly starves
// tier 4.

#include "bench/bench_util.h"
#include "src/common/types.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"
#include "src/sim/machine.h"

int main() {
  using namespace mtm;
  ExperimentConfig config = benchutil::DefaultConfig();
  benchutil::PrintHeader("Table 6", "per-tier application accesses, VoltDB (PCM-style counting)");
  benchutil::PrintConfig(config);

  std::vector<SolutionKind> solutions = {SolutionKind::kTieredAutoNuma,
                                         SolutionKind::kAutoTiering, SolutionKind::kMtm};
  benchutil::Table table(
      {"solution", "tier1 (M)", "tier2 (M)", "tier3 (M)", "tier4 (M)"});
  for (SolutionKind kind : solutions) {
    RunResult r = RunExperiment("voltdb", kind, config);
    // Components reported in socket-0 tier order (the clients' view, as in
    // the paper's Table 6 setup).
    Machine machine = Machine::OptaneFourTier(config.sim_scale);
    std::vector<std::string> row = {SolutionKindName(kind)};
    for (u32 rank = 0; rank < 4; ++rank) {
      ComponentId c = machine.TierOrder(0)[rank];
      row.push_back(benchutil::Fmt(
          "%.2f", static_cast<double>(r.component_app_accesses[c.value()]) / 1e6));
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
