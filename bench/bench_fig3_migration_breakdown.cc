// Figure 3: step breakdown of migrating a 2 MiB region from the fastest to
// the slowest tier with Linux move_pages() vs MTM's move_memory_regions().
//
// Expected shape: copying is the most time-consuming step of move_pages();
// move_memory_regions() takes copy and allocation off the critical path and
// is ~4.4x faster on the exposed path.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/migration/cost_model.h"
#include "src/migration/mechanism.h"
#include "src/sim/machine.h"

int main() {
  using namespace mtm;
  benchutil::PrintHeader("Figure 3", "migration-mechanism step breakdown (2 MiB, tier 1 -> tier 4)");

  Machine machine = Machine::OptaneFourTier(1);  // costs don't depend on scale
  MigrationCostModel model;
  ComponentId t1 = machine.TierOrder(0)[0];
  ComponentId t4 = machine.TierOrder(0)[3];

  auto report = [&](const char* name, MechanismKind kind) {
    MechanismCost cost =
        ComputeMechanismCost(kind, model, machine, 0, t1, t4, kPagesPerHugePage, 0);
    const MigrationStepBreakdown& c = cost.critical;
    SimNanos total = cost.CriticalNs();
    std::printf("%-24s critical %8.1f us  [alloc %5.1f%% | unmap/remap %5.1f%% | copy %5.1f%% |"
                " dirty-track %4.1f%% | pt-pages %4.1f%%]  background %8.1f us\n",
                name, ToMicros(total),
                100.0 * static_cast<double>(c.allocate_ns.value()) / static_cast<double>(total.value()),
                100.0 * static_cast<double>(c.unmap_remap_ns.value()) / static_cast<double>(total.value()),
                100.0 * static_cast<double>(c.copy_ns.value()) / static_cast<double>(total.value()),
                100.0 * static_cast<double>(c.dirty_tracking_ns.value()) / static_cast<double>(total.value()),
                100.0 * static_cast<double>(c.page_table_ns.value()) / static_cast<double>(total.value()),
                ToMicros(cost.BackgroundNs()));
    return total;
  };

  SimNanos mp = report("move_pages()", MechanismKind::kMovePages);
  SimNanos nimble = report("Nimble", MechanismKind::kNimble);
  SimNanos mmr = report("move_memory_regions()", MechanismKind::kMoveMemoryRegions);

  std::printf("\nmove_memory_regions() critical-path speedup over move_pages(): %.2fx"
              " (paper: 4.37x)\n",
              static_cast<double>(mp.value()) / static_cast<double>(mmr.value()));
  std::printf("Nimble speedup over move_pages(): %.2fx\n",
              static_cast<double>(mp.value()) / static_cast<double>(nimble.value()));
  return 0;
}
