// Figure 12: MTM vs HeMem on a two-tiered machine (single socket, DRAM +
// PM), running GUPS with 16 and 24 threads while the working-set size
// sweeps across the fast-memory capacity.
//
// Expected shape: below ratio 1.0 (working set fits in DRAM) the two are
// close; past 1.0 HeMem fails to sustain throughput at 24 threads while
// MTM keeps 24 > 16 threads — MTM's profiling adapts faster and finds more
// hot pages than HeMem's PEBS-only sampling.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"
#include "src/mem/placement.h"
#include "src/sim/machine.h"
#include "src/workloads/gups.h"

namespace mtm {
namespace {

double RunGups(SolutionKind kind, Bytes footprint, u32 threads, u64 scale) {
  ExperimentConfig config;
  config.sim_scale = scale;
  config.two_tier = true;
  config.num_threads = threads;
  config.num_intervals = 400;
  config.target_accesses = 12'000'000;
  config.seed = 42;
  // Both systems allocate first-touch here so the comparison isolates the
  // profiling and migration designs, not the initial placement.
  config.mtm.placement = PlacementPolicy::kFirstTouch;

  Workload::Params params;
  params.footprint_bytes = footprint;
  params.num_threads = threads;
  params.seed = 42;
  GupsWorkload gups(params);
  Solution solution(kind, config, gups);
  RunResult r = RunSimulation(gups, solution, config);
  // GUPS throughput: giga-updates/s scaled; report accesses/sim-second.
  return r.AccessesPerSecond() / 1e6;
}

}  // namespace
}  // namespace mtm

int main() {
  using namespace mtm;
  const u64 scale = 512;
  benchutil::PrintHeader("Figure 12", "two-tier GUPS throughput vs working-set/DRAM ratio");

  Machine machine = Machine::TwoTier(scale);
  const Bytes dram = machine.component(machine.TierOrder(0)[0]).capacity_bytes;
  std::printf("DRAM tier: %.0f MiB (scaled 96 GB)\n\n", ToMiB(dram));

  benchutil::Table table({"ws/dram", "hemem-16t", "hemem-24t", "mtm-16t", "mtm-24t"});
  for (double ratio : {0.5, 0.8, 1.2, 1.6, 2.4, 3.2}) {
    Bytes footprint = HugeAlignUp(BytesFromDouble(static_cast<double>(dram.value()) * ratio));
    double h16 = RunGups(SolutionKind::kHemem, footprint, 16, scale);
    double h24 = RunGups(SolutionKind::kHemem, footprint, 24, scale);
    double m16 = RunGups(SolutionKind::kMtm, footprint, 16, scale);
    double m24 = RunGups(SolutionKind::kMtm, footprint, 24, scale);
    table.AddRow({benchutil::Fmt("%.1f", ratio), benchutil::Fmt("%.1f", h16),
                  benchutil::Fmt("%.1f", h24), benchutil::Fmt("%.1f", m16),
                  benchutil::Fmt("%.1f", m24)});
    std::printf("[ratio %.1f done]\n", ratio);
  }
  std::printf("\nthroughput in M accesses per simulated second (higher is better)\n\n");
  table.Print();
  std::printf("expected shape: near parity while the working set fits DRAM; past 1.0 MTM "
              "sustains 24t > 16t\nwhile HeMem degrades at 24t (PEBS-only profiling misses "
              "hot pages).\n");
  return 0;
}
