// Figure 7: contribution of each MTM technique, evaluated on VoltDB.
//
//  * Thermostat / tiered-AutoNUMA profilers paired with MTM's policy and
//    migration (isolating profiling quality);
//  * MTM without adaptive memory regions (AMR), without PEBS assistance,
//    without adaptive page sampling (APS), without overhead control (OC),
//    and without asynchronous migration.
//
// Expected shape: full MTM is fastest; each removed technique costs
// performance (paper: 22% w/o AMR, 21% w/o APS, ~11% w/o PEBS, 3x the
// profiling time w/o OC, +60% exposed migration w/o async).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"
#include "src/migration/mechanism.h"

int main() {
  using namespace mtm;
  ExperimentConfig base = benchutil::DefaultConfig();
  benchutil::PrintHeader("Figure 7", "MTM technique ablations on VoltDB (seconds)");
  benchutil::PrintConfig(base);

  benchutil::Table table({"variant", "app(s)", "profiling(s)", "migration(s)", "total(s)",
                          "vs mtm"});
  double mtm_total = 0.0;

  auto run = [&](const char* name, SolutionKind kind, ExperimentConfig config) {
    RunResult r = RunExperiment("voltdb", kind, config);
    double total = ToSeconds(r.total_ns());
    if (mtm_total == 0.0) {
      mtm_total = total;
    }
    table.AddRow({name, benchutil::Fmt("%.3f", ToSeconds(r.app_ns)),
                  benchutil::Fmt("%.3f", ToSeconds(r.profiling_ns)),
                  benchutil::Fmt("%.3f", ToSeconds(r.migration_ns)),
                  benchutil::Fmt("%.3f", total),
                  benchutil::Fmt("%+.1f%%", (total - mtm_total) / mtm_total * 100.0)});
    std::printf("[%s done]\n", name);
  };

  run("mtm (full)", SolutionKind::kMtm, base);
  run("thermostat-prof + mtm-mig", SolutionKind::kThermostatProfilerMtmMigration, base);
  run("autonuma-prof + mtm-mig", SolutionKind::kAutoNumaProfilerMtmMigration, base);

  ExperimentConfig config = base;
  config.mtm.adaptive_regions = false;
  run("mtm w/o AMR", SolutionKind::kMtm, config);

  config = base;
  config.mtm.use_pebs = false;
  run("mtm w/o PEBS", SolutionKind::kMtm, config);

  config = base;
  config.mtm.adaptive_sampling = false;
  run("mtm w/o APS", SolutionKind::kMtm, config);

  config = base;
  config.mtm.overhead_control = false;
  config.mtm.tau_m = 0.0;  // §9.3: tau_m = tau_s = 0, no merging/splitting control
  config.mtm.tau_s = 0.0;
  run("mtm w/o OC", SolutionKind::kMtm, config);

  config = base;
  config.mtm.mechanism = MechanismKind::kMmrSync;
  run("mtm w/o async migration", SolutionKind::kMtm, config);

  std::printf("\n");
  table.Print();
  return 0;
}
