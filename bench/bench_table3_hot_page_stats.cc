// Table 3: average volume of hot pages identified, and application accesses
// to the fast tier, for vanilla tiered-AutoNUMA, patched tiered-AutoNUMA,
// and MTM.
//
// Expected shape: the patched kernel and MTM identify far more hot volume
// than the vanilla two-touch filter; MTM converts identification into the
// most fast-tier accesses (identified-hot volume alone is not sufficient —
// the paper's tiered-AutoNUMA observation).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"
#include "src/workloads/workload_factory.h"

int main() {
  using namespace mtm;
  ExperimentConfig config = benchutil::DefaultConfig();
  benchutil::PrintHeader("Table 3", "hot volume identified & fast-tier accesses");
  benchutil::PrintConfig(config);

  std::vector<SolutionKind> solutions = {SolutionKind::kVanillaTieredAutoNuma,
                                         SolutionKind::kTieredAutoNuma, SolutionKind::kMtm};
  benchutil::Table table(
      {"workload", "solution", "avg hot volume (MiB)", "fast-tier accesses (M)"});
  for (const std::string& workload : AllWorkloadNames()) {
    for (SolutionKind kind : solutions) {
      RunResult r = RunExperiment(workload, kind, config);
      double fast = r.component_app_accesses.empty()
                        ? 0.0
                        : static_cast<double>(r.component_app_accesses[0]) / 1e6;
      table.AddRow({workload, SolutionKindName(kind),
                    benchutil::Fmt("%.1f", ToMiB(BytesFromDouble(r.avg_hot_bytes))),
                    benchutil::Fmt("%.1f", fast)});
    }
    std::printf("[%s done]\n", workload.c_str());
  }
  std::printf("\n");
  table.Print();
  return 0;
}
