// Figure 4: overall performance of the six Table-2 workloads under
// first-touch NUMA, HMC (Memory Mode), vanilla and patched tiered-AutoNUMA,
// AutoTiering, and MTM — execution time normalized to first-touch.
//
// Expected shape: MTM is the best (or tied-best) bar on every workload,
// outperforming the baselines by roughly 15-25% on average; tiered-AutoNUMA
// is often *worse* than first-touch (profiling + migration overheads exceed
// the placement gains).
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"
#include "src/workloads/workload_factory.h"

int main() {
  using namespace mtm;
  ExperimentConfig config = benchutil::DefaultConfig();
  benchutil::PrintHeader("Figure 4", "overall execution time, normalized to first-touch NUMA");
  benchutil::PrintConfig(config);

  std::vector<SolutionKind> solutions = Figure4Solutions();
  benchutil::Table table({"workload", "first-touch", "hmc", "vanilla-tANUMA", "tiered-ANUMA",
                          "autotiering", "mtm"});

  double gain_ft = 0.0;
  double gain_tanuma = 0.0;
  double gain_at = 0.0;
  int workload_count = 0;
  for (const std::string& workload : AllWorkloadNames()) {
    std::map<SolutionKind, double> seconds;
    for (SolutionKind kind : solutions) {
      RunResult r = RunExperiment(workload, kind, config);
      seconds[kind] = ToSeconds(r.total_ns());
    }
    double base = seconds[SolutionKind::kFirstTouch];
    double mtm = seconds[SolutionKind::kMtm];
    gain_ft += (base - mtm) / base * 100.0;
    gain_tanuma += (seconds[SolutionKind::kTieredAutoNuma] - mtm) /
                   seconds[SolutionKind::kTieredAutoNuma] * 100.0;
    gain_at += (seconds[SolutionKind::kAutoTiering] - mtm) /
               seconds[SolutionKind::kAutoTiering] * 100.0;
    ++workload_count;
    table.AddRow({workload, benchutil::Fmt("%.2fs", base),
                  benchutil::Fmt("%.3f", seconds[SolutionKind::kHmc] / base),
                  benchutil::Fmt("%.3f", seconds[SolutionKind::kVanillaTieredAutoNuma] / base),
                  benchutil::Fmt("%.3f", seconds[SolutionKind::kTieredAutoNuma] / base),
                  benchutil::Fmt("%.3f", seconds[SolutionKind::kAutoTiering] / base),
                  benchutil::Fmt("%.3f", seconds[SolutionKind::kMtm] / base)});
    std::printf("[%s done]\n", workload.c_str());
  }
  std::printf("\n");
  table.Print();
  std::printf("MTM average gain: vs first-touch %+.1f%%, vs tiered-AutoNUMA %+.1f%%, "
              "vs AutoTiering %+.1f%%\n(paper: 22%%, 20%%, 17%% respectively)\n",
              gain_ft / workload_count, gain_tanuma / workload_count,
              gain_at / workload_count);
  return 0;
}
