// Table 5: extra memory used by MTM for memory management, per workload.
//
// Expected shape: region metadata plus the address-range index stays a
// vanishing fraction (<0.01% in the paper) of the workload footprint.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"
#include "src/workloads/workload_factory.h"

int main() {
  using namespace mtm;
  ExperimentConfig config = benchutil::DefaultConfig();
  config.target_accesses = 10'000'000;  // overhead stabilizes quickly
  benchutil::PrintHeader("Table 5", "MTM memory-management metadata overhead");
  benchutil::PrintConfig(config);

  benchutil::Table table(
      {"workload", "workload memory", "mtm overhead", "fraction"});
  for (const std::string& workload : AllWorkloadNames()) {
    RunResult r = RunExperiment(workload, SolutionKind::kMtm, config);
    table.AddRow({workload, benchutil::Fmt("%.0f MiB", ToMiB(r.footprint_bytes)),
                  benchutil::Fmt("%.1f KiB", static_cast<double>(r.profiler_memory_bytes.value()) / 1024.0),
                  benchutil::Fmt("%.4f%%", 100.0 * static_cast<double>(r.profiler_memory_bytes.value()) /
                                               static_cast<double>(r.footprint_bytes.value()))});
  }
  table.Print();
  std::printf("expected shape: overhead well below 0.01%% of workload memory "
              "(paper: 100-250 MB against 300-525 GB)\n");
  return 0;
}
