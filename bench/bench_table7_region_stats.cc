// Table 7: statistics of MTM's memory-region formation — average regions
// merged and split per profiling interval, and average region count.
//
// Expected shape: merge/split churn is a small share of all regions per
// interval (~3.4% on average in the paper).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"
#include "src/workloads/workload_factory.h"

int main() {
  using namespace mtm;
  ExperimentConfig config = benchutil::DefaultConfig();
  benchutil::PrintHeader("Table 7", "MTM region-formation statistics per profiling interval");
  benchutil::PrintConfig(config);

  benchutil::Table table({"workload", "intervals", "avg merged/PI", "avg split/PI",
                          "avg regions/PI", "churn (%)"});
  for (const std::string& workload : AllWorkloadNames()) {
    RunOptions options;
    options.record_intervals = true;
    RunResult r = RunExperiment(workload, SolutionKind::kMtm, config, options);
    double churn = r.avg_num_regions == 0.0
                       ? 0.0
                       : 100.0 * (r.avg_regions_merged + r.avg_regions_split) /
                             r.avg_num_regions;
    table.AddRow({workload, benchutil::FmtU(r.intervals.size()),
                  benchutil::Fmt("%.1f", r.avg_regions_merged),
                  benchutil::Fmt("%.1f", r.avg_regions_split),
                  benchutil::Fmt("%.0f", r.avg_num_regions),
                  benchutil::Fmt("%.1f", churn)});
  }
  table.Print();
  std::printf("expected shape: churn a few percent of the region count per interval "
              "(paper: 3.4%% average)\n");
  return 0;
}
