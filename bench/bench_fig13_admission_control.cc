// Figure 13 (extension): migration admission control on the adversarial
// ping-pong workload. Runs MTM with each admission controller — vanilla
// (admit everything), ppt (re-promotion backoff scaled by flip count), and
// bandwidth (per-interval migration byte budget, hottest-first shedding) —
// both fault-free and under injected copy failures.
//
// Expected shape: vanilla re-migrates each set on every epoch flip and,
// under faults, trips the thrash guard; ppt defers re-promotions inside
// their cooldown, cutting flip-wasted bytes and thrash aborts; bandwidth
// sheds the coldest promotions so admitted bytes never exceed the budget.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"
#include "src/migration/admission/admission.h"
#include "src/workloads/workload_factory.h"

namespace mtm {
namespace {

RunResult RunPingPong(AdmissionKind admission, const std::string& fault_spec) {
  ExperimentConfig config;
  // MTM places slow-tier-first, so the scaled 192 MiB fast tier only fills
  // after ~24 intervals of promotion; ping-pong dynamics (reclaim demotions
  // vs re-promotions) need the run to go well past that.
  config.num_intervals = 60;
  config.target_accesses = 0;  // run all intervals
  config.seed = 42;
  config.mtm.admission = admission;
  if (admission == AdmissionKind::kBandwidth) {
    // One promote batch per interval. The policy already sizes its batch to
    // this, so fault-free demand only exceeds it when orders fragment; under
    // injected faults, retry resubmissions re-charge the budget and the cap
    // bites hard.
    config.mtm.admission_budget_bytes = config.PromoteBatchBytes();
  }
  config.fault_spec = fault_spec;
  std::unique_ptr<Workload> workload =
      MakeWorkload("pingpong", config.sim_scale, config.num_threads, config.seed);
  Solution solution(SolutionKind::kMtm, config, *workload);
  return RunSimulation(*workload, solution, config);
}

void RunScenario(const char* title, const std::string& fault_spec) {
  std::printf("--- %s ---\n", title);
  benchutil::Table table({"admission", "migrated-mib", "flip-mib", "thrash-aborts", "admitted",
                          "deferred", "rejected", "shed-mib"});
  for (AdmissionKind kind :
       {AdmissionKind::kVanilla, AdmissionKind::kPpt, AdmissionKind::kBandwidth}) {
    RunResult r = RunPingPong(kind, fault_spec);
    const Bytes shed = r.admission_stats.deferred_bytes + r.admission_stats.rejected_bytes;
    table.AddRow({AdmissionKindName(kind),
                  benchutil::Fmt("%.1f", ToMiB(r.migration_stats.bytes_migrated)),
                  benchutil::Fmt("%.1f", ToMiB(r.admission_stats.flip_bytes)),
                  benchutil::FmtU(r.migration_stats.thrash_aborts),
                  benchutil::FmtU(r.admission_stats.admitted),
                  benchutil::FmtU(r.admission_stats.deferred),
                  benchutil::FmtU(r.admission_stats.rejected),
                  benchutil::Fmt("%.1f", ToMiB(shed))});
  }
  table.Print();
}

}  // namespace
}  // namespace mtm

int main() {
  using namespace mtm;
  benchutil::PrintHeader("Figure 13", "admission control on the ping-pong workload");
  {
    ExperimentConfig config;
    config.num_intervals = 60;
    benchutil::PrintConfig(config);
  }

  RunScenario("fault-free", "");
  RunScenario("chaos: copy_fail p=0.3", "copy_fail:p=0.3");

  std::printf("expected shape: ppt cuts flip-wasted MiB and (under faults) thrash aborts via\n"
              "deferrals; bandwidth holds admitted promotion bytes at one promote batch per\n"
              "interval, shedding the coldest orders when retries would exceed it.\n");
  return 0;
}
