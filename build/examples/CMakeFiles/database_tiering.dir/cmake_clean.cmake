file(REMOVE_RECURSE
  "CMakeFiles/database_tiering.dir/database_tiering.cpp.o"
  "CMakeFiles/database_tiering.dir/database_tiering.cpp.o.d"
  "database_tiering"
  "database_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
