# Empty compiler generated dependencies file for mtmsim.
# This may be replaced when dependencies are built.
