file(REMOVE_RECURSE
  "CMakeFiles/mtmsim.dir/mtmsim.cc.o"
  "CMakeFiles/mtmsim.dir/mtmsim.cc.o.d"
  "mtmsim"
  "mtmsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtmsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
