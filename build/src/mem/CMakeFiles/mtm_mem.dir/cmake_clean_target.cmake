file(REMOVE_RECURSE
  "libmtm_mem.a"
)
