# Empty compiler generated dependencies file for mtm_mem.
# This may be replaced when dependencies are built.
