file(REMOVE_RECURSE
  "CMakeFiles/mtm_mem.dir/placement.cc.o"
  "CMakeFiles/mtm_mem.dir/placement.cc.o.d"
  "libmtm_mem.a"
  "libmtm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
