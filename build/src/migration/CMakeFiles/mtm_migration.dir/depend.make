# Empty dependencies file for mtm_migration.
# This may be replaced when dependencies are built.
