file(REMOVE_RECURSE
  "libmtm_migration.a"
)
