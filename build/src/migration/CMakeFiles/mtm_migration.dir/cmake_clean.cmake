file(REMOVE_RECURSE
  "CMakeFiles/mtm_migration.dir/mechanism.cc.o"
  "CMakeFiles/mtm_migration.dir/mechanism.cc.o.d"
  "CMakeFiles/mtm_migration.dir/migration_engine.cc.o"
  "CMakeFiles/mtm_migration.dir/migration_engine.cc.o.d"
  "CMakeFiles/mtm_migration.dir/policy.cc.o"
  "CMakeFiles/mtm_migration.dir/policy.cc.o.d"
  "libmtm_migration.a"
  "libmtm_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtm_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
