# Empty compiler generated dependencies file for mtm_workloads.
# This may be replaced when dependencies are built.
