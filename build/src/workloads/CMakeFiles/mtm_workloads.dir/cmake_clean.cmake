file(REMOVE_RECURSE
  "CMakeFiles/mtm_workloads.dir/cassandra.cc.o"
  "CMakeFiles/mtm_workloads.dir/cassandra.cc.o.d"
  "CMakeFiles/mtm_workloads.dir/graph.cc.o"
  "CMakeFiles/mtm_workloads.dir/graph.cc.o.d"
  "CMakeFiles/mtm_workloads.dir/gups.cc.o"
  "CMakeFiles/mtm_workloads.dir/gups.cc.o.d"
  "CMakeFiles/mtm_workloads.dir/spark.cc.o"
  "CMakeFiles/mtm_workloads.dir/spark.cc.o.d"
  "CMakeFiles/mtm_workloads.dir/trace.cc.o"
  "CMakeFiles/mtm_workloads.dir/trace.cc.o.d"
  "CMakeFiles/mtm_workloads.dir/voltdb.cc.o"
  "CMakeFiles/mtm_workloads.dir/voltdb.cc.o.d"
  "CMakeFiles/mtm_workloads.dir/workload_factory.cc.o"
  "CMakeFiles/mtm_workloads.dir/workload_factory.cc.o.d"
  "libmtm_workloads.a"
  "libmtm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
