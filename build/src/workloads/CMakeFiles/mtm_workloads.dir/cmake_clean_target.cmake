file(REMOVE_RECURSE
  "libmtm_workloads.a"
)
