
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/cassandra.cc" "src/workloads/CMakeFiles/mtm_workloads.dir/cassandra.cc.o" "gcc" "src/workloads/CMakeFiles/mtm_workloads.dir/cassandra.cc.o.d"
  "/root/repo/src/workloads/graph.cc" "src/workloads/CMakeFiles/mtm_workloads.dir/graph.cc.o" "gcc" "src/workloads/CMakeFiles/mtm_workloads.dir/graph.cc.o.d"
  "/root/repo/src/workloads/gups.cc" "src/workloads/CMakeFiles/mtm_workloads.dir/gups.cc.o" "gcc" "src/workloads/CMakeFiles/mtm_workloads.dir/gups.cc.o.d"
  "/root/repo/src/workloads/spark.cc" "src/workloads/CMakeFiles/mtm_workloads.dir/spark.cc.o" "gcc" "src/workloads/CMakeFiles/mtm_workloads.dir/spark.cc.o.d"
  "/root/repo/src/workloads/trace.cc" "src/workloads/CMakeFiles/mtm_workloads.dir/trace.cc.o" "gcc" "src/workloads/CMakeFiles/mtm_workloads.dir/trace.cc.o.d"
  "/root/repo/src/workloads/voltdb.cc" "src/workloads/CMakeFiles/mtm_workloads.dir/voltdb.cc.o" "gcc" "src/workloads/CMakeFiles/mtm_workloads.dir/voltdb.cc.o.d"
  "/root/repo/src/workloads/workload_factory.cc" "src/workloads/CMakeFiles/mtm_workloads.dir/workload_factory.cc.o" "gcc" "src/workloads/CMakeFiles/mtm_workloads.dir/workload_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mtm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mtm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/mtm_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mtm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
