file(REMOVE_RECURSE
  "CMakeFiles/mtm_common.dir/logging.cc.o"
  "CMakeFiles/mtm_common.dir/logging.cc.o.d"
  "CMakeFiles/mtm_common.dir/rng.cc.o"
  "CMakeFiles/mtm_common.dir/rng.cc.o.d"
  "CMakeFiles/mtm_common.dir/status.cc.o"
  "CMakeFiles/mtm_common.dir/status.cc.o.d"
  "libmtm_common.a"
  "libmtm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
