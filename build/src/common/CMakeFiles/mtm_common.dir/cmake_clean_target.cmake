file(REMOVE_RECURSE
  "libmtm_common.a"
)
