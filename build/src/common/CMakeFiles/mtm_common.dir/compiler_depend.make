# Empty compiler generated dependencies file for mtm_common.
# This may be replaced when dependencies are built.
