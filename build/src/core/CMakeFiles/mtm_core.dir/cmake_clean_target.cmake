file(REMOVE_RECURSE
  "libmtm_core.a"
)
