file(REMOVE_RECURSE
  "CMakeFiles/mtm_core.dir/driver.cc.o"
  "CMakeFiles/mtm_core.dir/driver.cc.o.d"
  "CMakeFiles/mtm_core.dir/report.cc.o"
  "CMakeFiles/mtm_core.dir/report.cc.o.d"
  "CMakeFiles/mtm_core.dir/solution.cc.o"
  "CMakeFiles/mtm_core.dir/solution.cc.o.d"
  "libmtm_core.a"
  "libmtm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
