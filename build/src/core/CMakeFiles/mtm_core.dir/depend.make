# Empty dependencies file for mtm_core.
# This may be replaced when dependencies are built.
