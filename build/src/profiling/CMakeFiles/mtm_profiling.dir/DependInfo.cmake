
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiling/autonuma.cc" "src/profiling/CMakeFiles/mtm_profiling.dir/autonuma.cc.o" "gcc" "src/profiling/CMakeFiles/mtm_profiling.dir/autonuma.cc.o.d"
  "/root/repo/src/profiling/autotiering.cc" "src/profiling/CMakeFiles/mtm_profiling.dir/autotiering.cc.o" "gcc" "src/profiling/CMakeFiles/mtm_profiling.dir/autotiering.cc.o.d"
  "/root/repo/src/profiling/damon.cc" "src/profiling/CMakeFiles/mtm_profiling.dir/damon.cc.o" "gcc" "src/profiling/CMakeFiles/mtm_profiling.dir/damon.cc.o.d"
  "/root/repo/src/profiling/hemem_profiler.cc" "src/profiling/CMakeFiles/mtm_profiling.dir/hemem_profiler.cc.o" "gcc" "src/profiling/CMakeFiles/mtm_profiling.dir/hemem_profiler.cc.o.d"
  "/root/repo/src/profiling/mtm_profiler.cc" "src/profiling/CMakeFiles/mtm_profiling.dir/mtm_profiler.cc.o" "gcc" "src/profiling/CMakeFiles/mtm_profiling.dir/mtm_profiler.cc.o.d"
  "/root/repo/src/profiling/oracle.cc" "src/profiling/CMakeFiles/mtm_profiling.dir/oracle.cc.o" "gcc" "src/profiling/CMakeFiles/mtm_profiling.dir/oracle.cc.o.d"
  "/root/repo/src/profiling/region.cc" "src/profiling/CMakeFiles/mtm_profiling.dir/region.cc.o" "gcc" "src/profiling/CMakeFiles/mtm_profiling.dir/region.cc.o.d"
  "/root/repo/src/profiling/thermostat.cc" "src/profiling/CMakeFiles/mtm_profiling.dir/thermostat.cc.o" "gcc" "src/profiling/CMakeFiles/mtm_profiling.dir/thermostat.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mtm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mtm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mtm_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
