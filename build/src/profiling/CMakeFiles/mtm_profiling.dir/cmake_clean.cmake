file(REMOVE_RECURSE
  "CMakeFiles/mtm_profiling.dir/autonuma.cc.o"
  "CMakeFiles/mtm_profiling.dir/autonuma.cc.o.d"
  "CMakeFiles/mtm_profiling.dir/autotiering.cc.o"
  "CMakeFiles/mtm_profiling.dir/autotiering.cc.o.d"
  "CMakeFiles/mtm_profiling.dir/damon.cc.o"
  "CMakeFiles/mtm_profiling.dir/damon.cc.o.d"
  "CMakeFiles/mtm_profiling.dir/hemem_profiler.cc.o"
  "CMakeFiles/mtm_profiling.dir/hemem_profiler.cc.o.d"
  "CMakeFiles/mtm_profiling.dir/mtm_profiler.cc.o"
  "CMakeFiles/mtm_profiling.dir/mtm_profiler.cc.o.d"
  "CMakeFiles/mtm_profiling.dir/oracle.cc.o"
  "CMakeFiles/mtm_profiling.dir/oracle.cc.o.d"
  "CMakeFiles/mtm_profiling.dir/region.cc.o"
  "CMakeFiles/mtm_profiling.dir/region.cc.o.d"
  "CMakeFiles/mtm_profiling.dir/thermostat.cc.o"
  "CMakeFiles/mtm_profiling.dir/thermostat.cc.o.d"
  "libmtm_profiling.a"
  "libmtm_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtm_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
