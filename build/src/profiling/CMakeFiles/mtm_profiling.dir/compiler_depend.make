# Empty compiler generated dependencies file for mtm_profiling.
# This may be replaced when dependencies are built.
