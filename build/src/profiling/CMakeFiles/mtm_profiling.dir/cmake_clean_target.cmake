file(REMOVE_RECURSE
  "libmtm_profiling.a"
)
