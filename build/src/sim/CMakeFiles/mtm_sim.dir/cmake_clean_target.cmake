file(REMOVE_RECURSE
  "libmtm_sim.a"
)
