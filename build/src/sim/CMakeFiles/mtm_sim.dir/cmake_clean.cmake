file(REMOVE_RECURSE
  "CMakeFiles/mtm_sim.dir/access_engine.cc.o"
  "CMakeFiles/mtm_sim.dir/access_engine.cc.o.d"
  "CMakeFiles/mtm_sim.dir/machine.cc.o"
  "CMakeFiles/mtm_sim.dir/machine.cc.o.d"
  "CMakeFiles/mtm_sim.dir/page_table.cc.o"
  "CMakeFiles/mtm_sim.dir/page_table.cc.o.d"
  "libmtm_sim.a"
  "libmtm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
