# Empty compiler generated dependencies file for mtm_sim.
# This may be replaced when dependencies are built.
