
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/access_engine.cc" "src/sim/CMakeFiles/mtm_sim.dir/access_engine.cc.o" "gcc" "src/sim/CMakeFiles/mtm_sim.dir/access_engine.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/mtm_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/mtm_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/page_table.cc" "src/sim/CMakeFiles/mtm_sim.dir/page_table.cc.o" "gcc" "src/sim/CMakeFiles/mtm_sim.dir/page_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mtm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
