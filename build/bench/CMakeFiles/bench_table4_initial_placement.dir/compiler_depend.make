# Empty compiler generated dependencies file for bench_table4_initial_placement.
# This may be replaced when dependencies are built.
