# Empty dependencies file for bench_fig3_migration_breakdown.
# This may be replaced when dependencies are built.
