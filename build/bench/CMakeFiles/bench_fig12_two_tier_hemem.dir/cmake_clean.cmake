file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_two_tier_hemem.dir/bench_fig12_two_tier_hemem.cc.o"
  "CMakeFiles/bench_fig12_two_tier_hemem.dir/bench_fig12_two_tier_hemem.cc.o.d"
  "bench_fig12_two_tier_hemem"
  "bench_fig12_two_tier_hemem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_two_tier_hemem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
