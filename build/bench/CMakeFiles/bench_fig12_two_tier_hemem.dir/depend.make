# Empty dependencies file for bench_fig12_two_tier_hemem.
# This may be replaced when dependencies are built.
