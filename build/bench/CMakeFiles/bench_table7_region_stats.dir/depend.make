# Empty dependencies file for bench_table7_region_stats.
# This may be replaced when dependencies are built.
