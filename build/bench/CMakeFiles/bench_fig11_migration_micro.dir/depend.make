# Empty dependencies file for bench_fig11_migration_micro.
# This may be replaced when dependencies are built.
