# Empty compiler generated dependencies file for bench_table6_tier_accesses.
# This may be replaced when dependencies are built.
