file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_tier_accesses.dir/bench_table6_tier_accesses.cc.o"
  "CMakeFiles/bench_table6_tier_accesses.dir/bench_table6_tier_accesses.cc.o.d"
  "bench_table6_tier_accesses"
  "bench_table6_tier_accesses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_tier_accesses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
