# Empty compiler generated dependencies file for bench_fig1_profiling_quality.
# This may be replaced when dependencies are built.
