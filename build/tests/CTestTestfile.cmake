# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/page_table_test[1]_include.cmake")
include("/root/repo/build/tests/access_engine_test[1]_include.cmake")
include("/root/repo/build/tests/placement_test[1]_include.cmake")
include("/root/repo/build/tests/region_test[1]_include.cmake")
include("/root/repo/build/tests/mtm_profiler_test[1]_include.cmake")
include("/root/repo/build/tests/profilers_test[1]_include.cmake")
include("/root/repo/build/tests/oracle_test[1]_include.cmake")
include("/root/repo/build/tests/migration_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
