# Empty compiler generated dependencies file for access_engine_test.
# This may be replaced when dependencies are built.
