file(REMOVE_RECURSE
  "CMakeFiles/access_engine_test.dir/access_engine_test.cc.o"
  "CMakeFiles/access_engine_test.dir/access_engine_test.cc.o.d"
  "access_engine_test"
  "access_engine_test.pdb"
  "access_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
