# Empty dependencies file for mtm_profiler_test.
# This may be replaced when dependencies are built.
