file(REMOVE_RECURSE
  "CMakeFiles/mtm_profiler_test.dir/mtm_profiler_test.cc.o"
  "CMakeFiles/mtm_profiler_test.dir/mtm_profiler_test.cc.o.d"
  "mtm_profiler_test"
  "mtm_profiler_test.pdb"
  "mtm_profiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtm_profiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
