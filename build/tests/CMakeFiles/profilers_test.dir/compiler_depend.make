# Empty compiler generated dependencies file for profilers_test.
# This may be replaced when dependencies are built.
