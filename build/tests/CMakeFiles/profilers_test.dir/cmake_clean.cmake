file(REMOVE_RECURSE
  "CMakeFiles/profilers_test.dir/profilers_test.cc.o"
  "CMakeFiles/profilers_test.dir/profilers_test.cc.o.d"
  "profilers_test"
  "profilers_test.pdb"
  "profilers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profilers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
