#!/usr/bin/env python3
"""Fit the LogisticPolicy coefficients from feature-export dumps.

Input: one or more JSONL files produced by `mtmsim --policy-features-out=...`
(one row per region per interval: features, the heuristic's action, and the
realized next-interval hotness label). The fit is plain batch gradient
descent on logistic loss — no third-party dependencies — with the binary
target label >= HOT_THRESHOLD (the region stayed/became hot next interval).

Output: the C++ initializer for LogisticPolicy::FittedCoefficients() in
src/migration/feature_policy.cc; paste it in and rebuild. Keep the feature
order in sync with FeatureIndex (src/migration/features.h).

Usage:
  tools/fit_logistic_policy.py dump1.jsonl [dump2.jsonl ...]
"""

import json
import math
import sys

# (JSONL field, FeatureIndex enumerator) in FeatureIndex order.
FEATURE_INDEX = [
    ("whi", "kFeatWhi"),
    ("hi", "kFeatHi"),
    ("trend", "kFeatTrend"),
    ("skew", "kFeatSkew"),
    ("log_size", "kFeatLogSizePages"),
    ("tier_rank", "kFeatTierRank"),
    ("pingpong", "kFeatPingPong"),
    ("move_recency", "kFeatMoveRecency"),
]
FEATURES = [name for name, _ in FEATURE_INDEX]
HOT_THRESHOLD = 1.0
EPOCHS = 4000
LEARNING_RATE = 0.5
L2 = 1e-4


def load_rows(paths):
    xs, ys = [], []
    for path in paths:
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                xs.append([float(row[name]) for name in FEATURES])
                ys.append(1.0 if float(row["label"]) >= HOT_THRESHOLD else 0.0)
    return xs, ys


def sigmoid(z):
    if z >= 0:
        return 1.0 / (1.0 + math.exp(-z))
    ez = math.exp(z)
    return ez / (1.0 + ez)


def fit(xs, ys):
    n, d = len(xs), len(FEATURES)
    w = [0.0] * d
    b = 0.0
    for _ in range(EPOCHS):
        grad_w = [L2 * wi for wi in w]
        grad_b = 0.0
        for x, y in zip(xs, ys):
            err = sigmoid(b + sum(wi * xi for wi, xi in zip(w, x))) - y
            for j in range(d):
                grad_w[j] += err * x[j] / n
            grad_b += err / n
        w = [wi - LEARNING_RATE * gi for wi, gi in zip(w, grad_w)]
        b -= LEARNING_RATE * grad_b
    return w, b


def accuracy(xs, ys, w, b):
    hits = sum(
        1
        for x, y in zip(xs, ys)
        if (sigmoid(b + sum(wi * xi for wi, xi in zip(w, x))) >= 0.5) == (y >= 0.5)
    )
    return hits / max(1, len(xs))


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    xs, ys = load_rows(argv[1:])
    if not xs:
        print("no rows loaded", file=sys.stderr)
        return 1
    w, b = fit(xs, ys)
    pos = sum(ys) / len(ys)
    print(f"// {len(xs)} rows, {pos:.1%} positive, "
          f"train accuracy {accuracy(xs, ys, w, b):.1%}")
    for (_, index), wi in zip(FEATURE_INDEX, w):
        print(f"  coef.weights[{index}] = {wi:.4f};")
    print(f"  coef.bias = {b:.4f};")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
