// mtmsim — command-line runner for the MTM simulation framework.
//
// Runs one workload under one page-management solution and reports the
// result in human, CSV, or JSON form.
//
// Usage:
//   mtmsim --workload=gups --solution=mtm
//   mtmsim --workload=voltdb --solution=tiered-autonuma --format=csv
//   mtmsim --workload=gups --solution=mtm --two-tier --threads=16
//
// Flags (defaults in brackets):
//   --workload=NAME     gups|voltdb|cassandra|bfs|sssp|spark|
//                       pingpong (adversarial admission microbench)  [gups]
//   --solution=NAME     first-touch|hmc|vanilla-tiered-autonuma|
//                       tiered-autonuma|autotiering|hemem|mtm|
//                       thermostat+mtm-migration|autonuma+mtm-migration [mtm]
//   --scale=N           capacity/interval scale divisor              [512]
//   --threads=N         application threads                          [8]
//   --intervals=N       max profiling intervals                      [400]
//   --accesses=N        fixed work (0 = run all intervals)           [30000000]
//   --overhead=F        profiling overhead target                    [0.05]
//   --alpha=F           EMA weight (Equation 2)                      [0.5]
//   --num-scans=N       PTE scans per sample per interval            [3]
//   --scan-threads=N    workers for the sharded PTE-scan engine;
//                       output is byte-identical for any value       [1]
//   --migrate-threads=N helper threads for the move_memory_regions
//                       copy stage; output is byte-identical for any
//                       value                                        [1]
//   --two-tier          use the single-socket DRAM+PM machine        [false]
//   --spread-threads    spread threads over both sockets             [false]
//   --no-pebs           disable performance-counter assistance       [false]
//   --sync-migration    disable asynchronous page copy               [false]
//   --admission=NAME    migration admission controller               [vanilla]
//                       vanilla: admit-all (byte-identical to no stage)
//                       ppt: ping-pong throttling, exponential
//                       re-promotion backoff; bandwidth: per-interval
//                       byte budget, hottest promotions first
//   --admission-budget-mb=N  bandwidth budget per interval
//                       (0 = the promote batch N)                     [0]
//   --policy=NAME       override the solution's tiering policy with any
//                       registered one: none|mtm|mtm-feature|logistic|
//                       autonuma|vanilla-autonuma|autotiering|hemem  [default]
//   --policy-features-out=PATH  per-region training rows (JSONL):
//                       features + policy action + next-interval label [off]
//   --heatmap-out=PATH  per-interval region hotness heatmap (JSONL)   [off]
//   --seed=N            deterministic seed                           [42]
//   --fault_spec=S      chaos spec, ';'-separated clauses            [none]
//                       copy_fail:p=P | remap_fail:p=P | alloc_fail:p=P |
//                       pebs_drop:p=P | tier_derate:c=C,at=T,f=F |
//                       tier_offline:c=C,at=T   (T accepts ns/us/ms/s)
//                       e.g. "copy_fail:p=0.01;tier_offline:c=3,at=100ms"
//   --format=F          human|csv|json                               [human]
//   --record-intervals  include per-interval records (json)          [false]
//   --metrics-out=PATH  write per-interval metrics timeline (JSONL)  [off]
//   --trace-out=PATH    write Chrome trace_event JSON (Perfetto)     [off]
//   --trace-flows       add async-flow arrows linking migrate_arm to
//                       the matching finish span (needs --trace-out) [false]
#include <cstdio>
#include <string>

#include "src/common/fault_injection.h"
#include "src/common/flags.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/core/solution.h"
#include "src/migration/admission/admission.h"
#include "src/migration/features.h"
#include "src/migration/mechanism.h"
#include "src/migration/policy_registry.h"
#include "src/obs/obs.h"

int main(int argc, char** argv) {
  mtm::FlagSet flags(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf("see the header of tools/mtmsim.cc for flag documentation\n");
    return 0;
  }

  mtm::ExperimentConfig config;
  config.sim_scale = flags.GetU64("scale", 512);
  config.num_threads = static_cast<mtm::u32>(flags.GetU64("threads", 8));
  config.num_intervals = static_cast<mtm::u32>(flags.GetU64("intervals", 400));
  config.target_accesses = flags.GetU64("accesses", 30'000'000);
  config.seed = flags.GetU64("seed", 42);
  config.two_tier = flags.GetBool("two-tier", false);
  config.spread_threads = flags.GetBool("spread-threads", false);
  config.mtm.overhead_fraction = flags.GetDouble("overhead", 0.05);
  config.mtm.alpha = flags.GetDouble("alpha", 0.5);
  config.mtm.num_scans = static_cast<mtm::u32>(flags.GetU64("num-scans", 3));
  config.mtm.scan_threads = static_cast<mtm::u32>(
      flags.GetU64("scan-threads", flags.GetU64("scan_threads", 1)));
  config.mtm.migrate_threads = static_cast<mtm::u32>(
      flags.GetU64("migrate-threads", flags.GetU64("migrate_threads", 1)));
  config.mtm.use_pebs = !flags.GetBool("no-pebs", false);
  if (flags.GetBool("sync-migration", false)) {
    config.mtm.mechanism = mtm::MechanismKind::kMmrSync;
  }
  std::string admission_name = flags.GetString("admission", "vanilla");
  if (!mtm::AdmissionKindFromName(admission_name, &config.mtm.admission)) {
    std::fprintf(stderr, "bad --admission: %s (want vanilla|ppt|bandwidth)\n",
                 admission_name.c_str());
    return 1;
  }
  config.mtm.admission_budget_bytes = mtm::MiB(flags.GetU64("admission-budget-mb", 0));
  config.policy_override = flags.GetString("policy", "");
  if (!config.policy_override.empty() && !mtm::IsKnownPolicy(config.policy_override)) {
    std::string known;
    for (const std::string& name : mtm::KnownPolicyNames()) {
      known += known.empty() ? name : "|" + name;
    }
    std::fprintf(stderr, "bad --policy: %s (want %s)\n", config.policy_override.c_str(),
                 known.c_str());
    return 1;
  }
  config.fault_spec = flags.GetString("fault_spec", flags.GetString("fault-spec", ""));
  if (!config.fault_spec.empty()) {
    // Validate up front for a friendly error instead of a mid-run check.
    mtm::Result<mtm::FaultInjector> parsed =
        mtm::FaultInjector::Parse(config.fault_spec, config.seed);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad --fault_spec: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
  }

  std::string workload = flags.GetString("workload", "gups");
  std::string solution = flags.GetString("solution", "mtm");
  std::string format_name = flags.GetString("format", "human");
  mtm::ReportFormat format = mtm::ReportFormat::kHuman;
  if (format_name == "csv") {
    format = mtm::ReportFormat::kCsv;
  } else if (format_name == "json") {
    format = mtm::ReportFormat::kJson;
  }

  mtm::RunOptions options;
  options.record_intervals = flags.GetBool("record-intervals", false);
  options.evaluate_quality = options.record_intervals;

  std::string metrics_out = flags.GetString("metrics-out", flags.GetString("metrics_out", ""));
  std::string trace_out = flags.GetString("trace-out", flags.GetString("trace_out", ""));
  mtm::Observability obs;
  obs.async_flows = flags.GetBool("trace-flows", flags.GetBool("trace_flows", false));
  if (!metrics_out.empty() || !trace_out.empty()) {
    options.obs = &obs;
  }
  std::string features_out =
      flags.GetString("policy-features-out", flags.GetString("policy_features_out", ""));
  std::string heatmap_out = flags.GetString("heatmap-out", flags.GetString("heatmap_out", ""));
  mtm::FeatureExporter feature_export;
  mtm::HeatmapExporter heatmap_export;
  if (!features_out.empty()) {
    options.feature_export = &feature_export;
  }
  if (!heatmap_out.empty()) {
    options.heatmap_export = &heatmap_export;
  }

  mtm::RunResult result = mtm::RunExperiment(
      workload, mtm::SolutionKindFromName(solution), config, options);

  if (options.obs != nullptr) {
    mtm::Status status = mtm::WriteObservabilityFiles(obs, metrics_out, trace_out);
    if (!status.ok()) {
      std::fprintf(stderr, "observability export failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (!features_out.empty()) {
    mtm::Status status = feature_export.WriteFile(features_out);
    if (!status.ok()) {
      std::fprintf(stderr, "feature export failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (!heatmap_out.empty()) {
    mtm::Status status = heatmap_export.WriteFile(heatmap_out);
    if (!status.ok()) {
      std::fprintf(stderr, "heatmap export failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  if (format == mtm::ReportFormat::kCsv) {
    std::printf("%s\n", mtm::CsvHeader().c_str());
  }
  std::printf("%s\n", mtm::Render(result, format).c_str());
  return 0;
}
