// mtm_analyze: compile_commands-driven static analysis for the MTM tree.
//
// A deliberately small, dependency-free analyzer (no libclang): a lexer
// that strips comments/strings, an include-graph builder seeded from
// build/compile_commands.json, a per-file function model (functions,
// lambdas, call sites, write sites), and five passes over the result:
//
//   include-graph    unused direct project includes (IWYU-lite), reliance
//                    on transitive includes for symbols a file uses,
//                    include cycles, and (behind --check-system-includes)
//                    dead angle-bracket system includes.
//   layering         the module DAG declared in tools/mtm_analyze/layers.toml
//                    is enforced: a module may only include modules listed
//                    as its allowed dependencies.
//   determinism      iteration over unordered containers whose loop body
//                    reaches an output sink, wall-clock reads outside
//                    sanctioned sites, and rand()/random_device outside the
//                    project RNG.
//   error-discipline fallible operations return Status/Result<T> and every
//                    return is consumed: discarded whole-statement calls to
//                    Status/Result-returning functions, raw bool/int error
//                    codes on fallible paths, and Result unwraps not
//                    dominated by an ok() check.
//   concurrency      code reachable from sharded task entries (ThreadPool::
//                    ParallelFor lambdas, ForEachRegionSharded callbacks —
//                    declared in tools/mtm_analyze/concurrency.toml) may only
//                    mutate state through the slot-merge/ObsDelta discipline:
//                    member writes, namespace-scope-mutable writes, and
//                    mutable static locals outside the allowlist are flagged.
//
// Findings can be suppressed inline with
//   // mtm-analyze: allow(<check-or-pass>) <justification>
// on the finding line or the line above; a suppression without a
// justification is itself reported.
//
// --fix rewrites machine-applicable include-graph findings in place (delete
// dead includes, promote transitive includes to direct, reorder include
// blocks per the mtm_lint include-order rule); --fix --check verifies the
// tree is already fix-clean without writing.
//
// The tool exits 0 when the tree is clean and 1 otherwise; --json writes a
// machine-readable report in the same schema as tools/mtm_lint.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace mtm::analyze {

// ------------------------------------------------------------------ lexer --

// Returns `text` with comments and string/char literals blanked out
// (newlines preserved, so line numbers survive). Raw strings are handled
// for the common R"(...)" delimiter-free form.
std::string StripCommentsAndStrings(const std::string& text);

// Splits stripped text into lines.
std::vector<std::string> SplitLines(const std::string& text);

// True if `line` contains identifier `word` with word boundaries.
bool ContainsWord(const std::string& line, const std::string& word);

// A stripped-code token: an identifier or a single punctuation character.
// Numeric literals and preprocessor directive lines are omitted.
struct Token {
  std::string text;
  int line = 0;
};

// Tokenizes stripped code lines into Tokens.
std::vector<Token> TokenizeCode(const std::vector<std::string>& code);

// ------------------------------------------------------------------ model --

struct IncludeEdge {
  std::string target;  // repo-relative path when resolved, raw text otherwise
  int line = 0;
  bool resolved = false;  // target exists inside the project root
  bool angle = false;     // spelled <...> rather than "..."
};

// A function call site inside a function body.
struct CallSite {
  std::string name;  // unqualified callee name
  int line = 0;
  // Identifier tokens appearing anywhere inside the call's argument list;
  // used to seed task entries from named lambdas passed by identifier.
  std::vector<std::string> arg_idents;
};

// A mutation site inside a function body.
struct WriteSite {
  enum class Kind {
    kMember,           // bare or this-> write/mutating call on a foo_ member
    kPlain,            // write to an unqualified identifier (local or global)
    kStaticLocalDecl,  // declaration of a mutable function-local static
  };
  std::string name;  // written lvalue root identifier
  int line = 0;
  Kind kind = Kind::kPlain;
};

// Status/Result flow events inside a function body, in source order. The
// error-discipline pass replays them per variable.
struct VarEvent {
  enum class Kind {
    kResultDecl,    // Result<...> var
    kAutoCallDecl,  // auto var = Callee(...)
    kOkCheck,       // var.ok()
    kUnwrap,        // var.value() / *var / var-> (var empty: Callee(...).value())
  };
  Kind kind = Kind::kOkCheck;
  std::string var;     // variable name; empty for chained temporary unwraps
  std::string callee;  // for kAutoCallDecl and chained kUnwrap
  int line = 0;
};

struct FunctionInfo {
  std::string name;         // unqualified name ("Run", "scan_shard", "<lambda>")
  std::string qualified;    // "Class::Run", "Outer::scan_shard", ...
  int line = 0;             // declaration line
  std::string return_type;  // specifier-stripped tokens, space-joined; empty for
                            // constructors/destructors/lambdas
  bool has_body = false;
  bool is_lambda = false;
  // For a lambda appearing directly in a call's argument list: the callee
  // name of that call (e.g. "ParallelFor"); empty otherwise.
  std::string callback_of;
  std::vector<CallSite> calls;
  std::vector<WriteSite> writes;
  std::vector<VarEvent> var_events;
  // Whole-statement call chains whose final return value is discarded
  // (`Foo(x);`, `obj.Submit(o);`): the final callee of each.
  std::vector<CallSite> discarded_calls;
};

struct SourceFile {
  std::string path;               // repo-relative, forward slashes
  std::vector<std::string> raw;   // raw lines (suppression comments live here)
  std::vector<std::string> code;  // comment/string-stripped lines
  std::vector<IncludeEdge> includes;

  // Identifier tokens used in stripped code (excluding include directives),
  // mapped to the first line they appear on.
  std::map<std::string, int> tokens;

  // Symbols this file declares at namespace/class scope: macros, type
  // names, using-aliases, enumerators, functions, variables/constants.
  std::set<std::string> exported;

  // The subset of `exported` declared at namespace scope (plus macros).
  // Only these anchor transitive-include attribution: class members and
  // methods are reached through an object whose type carries its own
  // attribution, so counting them would misattribute usage.
  std::set<std::string> attributable;

  // Functions and lambdas defined or declared in this file, in source order
  // (lambdas follow their enclosing function).
  std::vector<FunctionInfo> functions;

  // Namespace-scope variables declared here without const/constexpr.
  std::set<std::string> mutable_globals;
};

// Builds `functions` and `mutable_globals` for a parsed file. Exposed for
// unit tests; Project::Load calls it for every file.
void BuildFunctionModel(SourceFile* file);

// A set of source files closed under project-include resolution.
class Project {
 public:
  // `root` is the absolute project root; `seeds` are root-relative paths.
  // `include_dirs` are root-relative -I/-isystem directories used to resolve
  // angle-bracket includes into the tree ("" means the root itself). Files
  // named by unresolvable includes are silently treated as external.
  static Project Load(const std::string& root, const std::vector<std::string>& seeds,
                      const std::vector<std::string>& include_dirs = {});

  const std::map<std::string, SourceFile>& files() const { return files_; }
  const SourceFile* Find(const std::string& path) const;

  // Transitive closure of resolved includes, excluding `path` itself.
  std::set<std::string> IncludeClosure(const std::string& path) const;

 private:
  std::map<std::string, SourceFile> files_;
};

// ----------------------------------------------------------------- config --

struct Config {
  // Module prefix -> allowed dependency prefixes. The entry "*" in the
  // value list means the module may include anything.
  std::map<std::string, std::vector<std::string>> layers;
  // Path prefixes where wall-clock reads / raw randomness are sanctioned.
  std::vector<std::string> wallclock_allow;
  std::vector<std::string> random_allow;

  // [error_discipline] — path prefixes where bool/int-returning functions
  // named with a fallible verb must return Status instead, and the verbs.
  std::vector<std::string> status_paths;
  std::vector<std::string> fallible_verbs;

  // [concurrency] — functions whose callable arguments run on pool workers,
  // explicitly-seeded task entry functions, and sanctioned mutation points
  // ("Class::Method", "Class::*", or a bare name).
  std::vector<std::string> task_callbacks;
  std::vector<std::string> task_entries;
  std::vector<std::string> mutation_allow;

  // Enables the dead-system-include check (--check-system-includes).
  bool check_system_includes = false;
};

// Parses the TOML subset used by layers.toml / concurrency.toml
// ([section], key = ["a", "b"]). Merges into `config` so multiple files can
// feed one Config. Returns false and fills `error` on malformed input.
bool ParseConfig(const std::string& text, Config* config, std::string* error);

// Extracts the "file" entries of a compile_commands.json database.
std::vector<std::string> ParseCompileCommands(const std::string& text);

// "file" entries plus every -I / -isystem directory mentioned in "command"
// entries (absolute, as written in the database).
struct CompileDb {
  std::vector<std::string> files;
  std::vector<std::string> include_dirs;
};
CompileDb ParseCompileDb(const std::string& text);

// ----------------------------------------------------------------- passes --

struct Finding {
  std::string check;
  std::string file;
  int line = 0;
  std::string message;
  // Machine-applicable payload for the fix engine (e.g. the include path to
  // delete or insert); not serialized into reports.
  std::string subject;
};

std::vector<Finding> RunIncludeGraphPass(const Project& project, const Config& config);
std::vector<Finding> RunLayeringPass(const Project& project, const Config& config);
std::vector<Finding> RunDeterminismPass(const Project& project, const Config& config);
std::vector<Finding> RunErrorDisciplinePass(const Project& project, const Config& config);
std::vector<Finding> RunConcurrencyPass(const Project& project, const Config& config);

// Every check name the tool can emit, plus the pass names (both are valid
// suppression targets). Keep tools/mtm_lint/mtm_lint.py's
// VALID_SUPPRESSION_TARGETS in sync with this list.
const std::set<std::string>& KnownChecks();

// Runs all passes, applies inline suppressions, and returns the surviving
// findings sorted by (file, line, check).
std::vector<Finding> Analyze(const Project& project, const Config& config);

// ------------------------------------------------------------------- fix --

// Computes the machine-applicable rewrites for the given findings (delete
// unused/dead includes, insert directly-included headers for transitive
// reliance) plus include-block reordering per the mtm_lint include-order
// rule. Returns new file contents keyed by repo-relative path, only for
// files that change. Running the result through Analyze+ComputeFixedContents
// again yields an empty map (idempotence; covered by tests).
std::map<std::string, std::string> ComputeFixedContents(const Project& project,
                                                        const std::vector<Finding>& findings);

// ----------------------------------------------------------------- report --

// One finding per line, mtm_lint style: "file:line: [check] message".
std::string FormatText(const std::vector<Finding>& findings);

// JSON report matching the mtm_lint schema:
//   {"files_checked": N, "findings": [...], "ok": bool}
std::string FormatJson(const std::vector<Finding>& findings, std::size_t files_checked);

}  // namespace mtm::analyze
