// mtm_analyze: compile_commands-driven static analysis for the MTM tree.
//
// A deliberately small, dependency-free analyzer (no libclang): a lexer
// that strips comments/strings, an include-graph builder seeded from
// build/compile_commands.json, and three passes over the result:
//
//   include-graph   unused direct project includes (IWYU-lite), reliance
//                   on transitive includes for symbols a file uses, and
//                   include cycles.
//   layering        the module DAG declared in tools/mtm_analyze/layers.toml
//                   is enforced: a module may only include modules listed
//                   as its allowed dependencies.
//   determinism     iteration over unordered containers whose loop body
//                   reaches an output sink, wall-clock reads outside
//                   sanctioned sites, and rand()/random_device outside the
//                   project RNG.
//
// Findings can be suppressed inline with
//   // mtm-analyze: allow(<check-or-pass>) <justification>
// on the finding line or the line above; a suppression without a
// justification is itself reported.
//
// The tool exits 0 when the tree is clean and 1 otherwise; --json writes a
// machine-readable report in the same schema as tools/mtm_lint.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace mtm::analyze {

// ------------------------------------------------------------------ lexer --

// Returns `text` with comments and string/char literals blanked out
// (newlines preserved, so line numbers survive). Raw strings are handled
// for the common R"(...)" delimiter-free form.
std::string StripCommentsAndStrings(const std::string& text);

// Splits stripped text into lines.
std::vector<std::string> SplitLines(const std::string& text);

// True if `line` contains identifier `word` with word boundaries.
bool ContainsWord(const std::string& line, const std::string& word);

// ------------------------------------------------------------------ model --

struct IncludeEdge {
  std::string target;  // repo-relative path when resolved, raw text otherwise
  int line = 0;
  bool resolved = false;  // target exists inside the project root
};

struct SourceFile {
  std::string path;               // repo-relative, forward slashes
  std::vector<std::string> raw;   // raw lines (suppression comments live here)
  std::vector<std::string> code;  // comment/string-stripped lines
  std::vector<IncludeEdge> includes;

  // Identifier tokens used in stripped code (excluding include directives),
  // mapped to the first line they appear on.
  std::map<std::string, int> tokens;

  // Symbols this file declares at namespace/class scope: macros, type
  // names, using-aliases, enumerators, functions, variables/constants.
  std::set<std::string> exported;

  // The subset of `exported` declared at namespace scope (plus macros).
  // Only these anchor transitive-include attribution: class members and
  // methods are reached through an object whose type carries its own
  // attribution, so counting them would misattribute usage.
  std::set<std::string> attributable;
};

// A set of source files closed under project-include resolution.
class Project {
 public:
  // `root` is the absolute project root; `seeds` are root-relative paths.
  // Files named by unresolvable includes are silently treated as external.
  static Project Load(const std::string& root, const std::vector<std::string>& seeds);

  const std::map<std::string, SourceFile>& files() const { return files_; }
  const SourceFile* Find(const std::string& path) const;

  // Transitive closure of resolved includes, excluding `path` itself.
  std::set<std::string> IncludeClosure(const std::string& path) const;

 private:
  std::map<std::string, SourceFile> files_;
};

// ----------------------------------------------------------------- config --

struct Config {
  // Module prefix -> allowed dependency prefixes. The entry "*" in the
  // value list means the module may include anything.
  std::map<std::string, std::vector<std::string>> layers;
  // Path prefixes where wall-clock reads / raw randomness are sanctioned.
  std::vector<std::string> wallclock_allow;
  std::vector<std::string> random_allow;
};

// Parses the TOML subset used by layers.toml ([section], key = ["a", "b"]).
// Returns false and fills `error` on malformed input.
bool ParseConfig(const std::string& text, Config* config, std::string* error);

// Extracts the "file" entries of a compile_commands.json database.
std::vector<std::string> ParseCompileCommands(const std::string& text);

// ----------------------------------------------------------------- passes --

struct Finding {
  std::string check;
  std::string file;
  int line = 0;
  std::string message;
};

std::vector<Finding> RunIncludeGraphPass(const Project& project);
std::vector<Finding> RunLayeringPass(const Project& project, const Config& config);
std::vector<Finding> RunDeterminismPass(const Project& project, const Config& config);

// Runs all passes, applies inline suppressions, and returns the surviving
// findings sorted by (file, line, check).
std::vector<Finding> Analyze(const Project& project, const Config& config);

// ----------------------------------------------------------------- report --

// One finding per line, mtm_lint style: "file:line: [check] message".
std::string FormatText(const std::vector<Finding>& findings);

// JSON report matching the mtm_lint schema:
//   {"files_checked": N, "findings": [...], "ok": bool}
std::string FormatJson(const std::vector<Finding>& findings, std::size_t files_checked);

}  // namespace mtm::analyze
