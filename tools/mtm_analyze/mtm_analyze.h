// mtm_analyze: compile_commands-driven static analysis for the MTM tree.
//
// A deliberately small, dependency-free analyzer (no libclang): a lexer
// that strips comments/strings, an include-graph builder seeded from
// build/compile_commands.json, a per-file function model (functions,
// lambdas, call sites, write sites), and five passes over the result:
//
//   include-graph    unused direct project includes (IWYU-lite), reliance
//                    on transitive includes for symbols a file uses,
//                    include cycles, and (behind --check-system-includes)
//                    dead angle-bracket system includes.
//   layering         the module DAG declared in tools/mtm_analyze/layers.toml
//                    is enforced: a module may only include modules listed
//                    as its allowed dependencies.
//   determinism      iteration over unordered containers whose loop body
//                    reaches an output sink, wall-clock reads outside
//                    sanctioned sites, and rand()/random_device outside the
//                    project RNG.
//   error-discipline fallible operations return Status/Result<T> and every
//                    return is consumed: discarded whole-statement calls to
//                    Status/Result-returning functions, raw bool/int error
//                    codes on fallible paths, and Result unwraps not
//                    dominated by an ok() check.
//   concurrency      code reachable from sharded task entries (ThreadPool::
//                    ParallelFor lambdas, ForEachRegionSharded callbacks —
//                    declared in tools/mtm_analyze/concurrency.toml) may only
//                    mutate state through the slot-merge/ObsDelta discipline:
//                    member writes, namespace-scope-mutable writes, mutable
//                    static locals, and writes through reference/pointer
//                    captures outside the allowlist are flagged. The walk is
//                    whole-program: calls resolve across translation units
//                    through the linked model, and an ambiguous name becomes
//                    a conservative multi-target edge instead of ending the
//                    walk.
//   lock-discipline  members annotated `mtm-analyze: guarded_by(mu)` must be
//                    written under a std::lock_guard/unique_lock/scoped_lock
//                    scope on that mutex (or inside a function annotated
//                    `mtm-analyze: requires(mu)`), and no two mutexes may be
//                    acquired in inconsistent orders anywhere in the linked
//                    call graph.
//
// Findings can be suppressed inline with
//   // mtm-analyze: allow(<check-or-pass>) <justification>
// on the finding line or the line above; a suppression without a
// justification is itself reported.
//
// --fix rewrites machine-applicable include-graph findings in place (delete
// dead includes, promote transitive includes to direct, reorder include
// blocks per the mtm_lint include-order rule); --fix --check verifies the
// tree is already fix-clean without writing.
//
// The tool exits 0 when the tree is clean and 1 otherwise; --json writes a
// machine-readable report in the same schema as tools/mtm_lint.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace mtm::analyze {

// ------------------------------------------------------------------ lexer --

// Returns `text` with comments and string/char literals blanked out
// (newlines preserved, so line numbers survive). Raw strings are handled
// for any delimiter (R"(...)" as well as R"x(...)x"), and backslash line
// continuations inside literals and // comments keep the newline count
// intact so token line numbers never desync.
std::string StripCommentsAndStrings(const std::string& text);

// Splits stripped text into lines.
std::vector<std::string> SplitLines(const std::string& text);

// True if `line` contains identifier `word` with word boundaries.
bool ContainsWord(const std::string& line, const std::string& word);

// A stripped-code token: an identifier or a single punctuation character.
// Numeric literals and preprocessor directive lines are omitted.
struct Token {
  std::string text;
  int line = 0;
};

// Tokenizes stripped code lines into Tokens.
std::vector<Token> TokenizeCode(const std::vector<std::string>& code);

// ------------------------------------------------------------------ model --

struct IncludeEdge {
  std::string target;  // repo-relative path when resolved, raw text otherwise
  int line = 0;
  bool resolved = false;  // target exists inside the project root
  bool angle = false;     // spelled <...> rather than "..."
};

// A function call site inside a function body.
struct CallSite {
  std::string name;  // unqualified callee name
  int line = 0;
  // Explicit scope qualifier at the call site ("Q" in Q::Name(...)), used
  // by the linked resolver; empty for unqualified and member calls.
  std::string qualifier;
  // Top-level argument count, or -1 when the argument list contains tokens
  // the comma counter cannot segment reliably (template angles).
  int arg_count = -1;
  // Identifier tokens appearing anywhere inside the call's argument list;
  // used to seed task entries from named lambdas passed by identifier.
  std::vector<std::string> arg_idents;
};

// A mutation site inside a function body.
struct WriteSite {
  enum class Kind {
    kMember,           // bare or this-> write/mutating call on a foo_ member
    kPlain,            // write to an unqualified identifier (local or global)
    kStaticLocalDecl,  // declaration of a mutable function-local static
  };
  std::string name;  // written lvalue root identifier
  int line = 0;
  Kind kind = Kind::kPlain;
  bool via_arrow = false;   // first chain hop is `->`: write lands on the pointee
  bool subscripted = false; // some chain hop is `[...]`: task-indexed slot write
  // Final member of a mutating-method chain ("push_back", "fetch_add", ...);
  // empty for operator writes. Atomic RMW names exempt the capture check.
  std::string last_method;
};

// A std::lock_guard/unique_lock/scoped_lock acquisition inside a body.
struct LockSite {
  std::string mutex;  // dotted path of the guarded expression ("mu_", "s.mu")
  int line = 0;       // acquisition line
  int end_line = 0;   // last line of the enclosing scope (guard lifetime)
  // Mutexes already held (in acquisition order) when this one was taken.
  std::vector<std::string> held;
  // Sites from one multi-mutex std::scoped_lock share a group id: they are
  // acquired atomically, so no ordering pair is recorded between them.
  int group = -1;
};

// Status/Result flow events inside a function body, in source order. The
// error-discipline pass replays them per variable.
struct VarEvent {
  enum class Kind {
    kResultDecl,    // Result<...> var
    kAutoCallDecl,  // auto var = Callee(...)
    kOkCheck,       // var.ok()
    kUnwrap,        // var.value() / *var / var-> (var empty: Callee(...).value())
  };
  Kind kind = Kind::kOkCheck;
  std::string var;     // variable name; empty for chained temporary unwraps
  std::string callee;  // for kAutoCallDecl and chained kUnwrap
  int line = 0;
};

struct FunctionInfo {
  std::string name;         // unqualified name ("Run", "scan_shard", "<lambda>")
  std::string qualified;    // "Class::Run", "Outer::scan_shard", ...
  int line = 0;             // declaration line
  std::string return_type;  // specifier-stripped tokens, space-joined; empty for
                            // constructors/destructors/lambdas
  bool has_body = false;
  bool is_lambda = false;
  // Top-level parameter count of the declarator, used by the linked
  // resolver's arity filter.
  int param_count = 0;
  // For a lambda appearing directly in a call's argument list: the callee
  // name of that call (e.g. "ParallelFor"); empty otherwise.
  std::string callback_of;
  // Lambda capture model: [&] / [=] defaults, explicit by-reference and
  // by-value capture names (init-captures count by their introduced name),
  // and whether `this` is captured.
  bool capture_default_ref = false;
  bool capture_default_val = false;
  bool captures_this = false;
  std::vector<std::string> capture_refs;
  std::vector<std::string> capture_vals;
  // Names provably local to this body: declared locals, static locals,
  // range-for bindings, and (for lambdas) parameters. Writes to these are
  // shard-private and never capture findings.
  std::set<std::string> locals;
  std::vector<CallSite> calls;
  std::vector<WriteSite> writes;
  std::vector<VarEvent> var_events;
  std::vector<LockSite> locks;
  // Whole-statement call chains whose final return value is discarded
  // (`Foo(x);`, `obj.Submit(o);`): the final callee of each.
  std::vector<CallSite> discarded_calls;
};

struct SourceFile {
  std::string path;               // repo-relative, forward slashes
  std::vector<std::string> raw;   // raw lines (suppression comments live here)
  std::vector<std::string> code;  // comment/string-stripped lines
  std::vector<IncludeEdge> includes;

  // Identifier tokens used in stripped code (excluding include directives),
  // mapped to the first line they appear on.
  std::map<std::string, int> tokens;

  // Symbols this file declares at namespace/class scope: macros, type
  // names, using-aliases, enumerators, functions, variables/constants.
  std::set<std::string> exported;

  // The subset of `exported` declared at namespace scope (plus macros).
  // Only these anchor transitive-include attribution: class members and
  // methods are reached through an object whose type carries its own
  // attribution, so counting them would misattribute usage.
  std::set<std::string> attributable;

  // Functions and lambdas defined or declared in this file, in source order
  // (lambdas follow their enclosing function).
  std::vector<FunctionInfo> functions;

  // Namespace-scope variables declared here without const/constexpr.
  std::set<std::string> mutable_globals;
};

// Builds `functions` and `mutable_globals` for a parsed file. Exposed for
// unit tests; Project::Load calls it for every file.
void BuildFunctionModel(SourceFile* file);

// A set of source files closed under project-include resolution.
class Project {
 public:
  // `root` is the absolute project root; `seeds` are root-relative paths.
  // `include_dirs` are root-relative -I/-isystem directories used to resolve
  // angle-bracket includes into the tree ("" means the root itself). Files
  // named by unresolvable includes are silently treated as external.
  static Project Load(const std::string& root, const std::vector<std::string>& seeds,
                      const std::vector<std::string>& include_dirs = {});

  const std::map<std::string, SourceFile>& files() const { return files_; }
  const SourceFile* Find(const std::string& path) const;

  // Transitive closure of resolved includes, excluding `path` itself.
  std::set<std::string> IncludeClosure(const std::string& path) const;

 private:
  std::map<std::string, SourceFile> files_;
};

// ----------------------------------------------------------------- config --

struct Config {
  // Module prefix -> allowed dependency prefixes. The entry "*" in the
  // value list means the module may include anything.
  std::map<std::string, std::vector<std::string>> layers;
  // Path prefixes where wall-clock reads / raw randomness are sanctioned.
  std::vector<std::string> wallclock_allow;
  std::vector<std::string> random_allow;

  // [error_discipline] — path prefixes where bool/int-returning functions
  // named with a fallible verb must return Status instead, and the verbs.
  std::vector<std::string> status_paths;
  std::vector<std::string> fallible_verbs;

  // [concurrency] — functions whose callable arguments run on pool workers,
  // explicitly-seeded task entry functions, and sanctioned mutation points
  // ("Class::Method", "Class::*", or a bare name).
  std::vector<std::string> task_callbacks;
  std::vector<std::string> task_entries;
  std::vector<std::string> mutation_allow;

  // Enables the dead-system-include check (--check-system-includes).
  bool check_system_includes = false;
};

// Parses the TOML subset used by layers.toml / concurrency.toml
// ([section], key = ["a", "b"]). Merges into `config` so multiple files can
// feed one Config. Returns false and fills `error` on malformed input.
bool ParseConfig(const std::string& text, Config* config, std::string* error);

// Extracts the "file" entries of a compile_commands.json database.
std::vector<std::string> ParseCompileCommands(const std::string& text);

// "file" entries plus every -I / -isystem directory mentioned in "command"
// entries (absolute, as written in the database).
struct CompileDb {
  std::vector<std::string> files;
  std::vector<std::string> include_dirs;
};
CompileDb ParseCompileDb(const std::string& text);

// ----------------------------------------------------------------- passes --

struct Finding {
  std::string check;
  std::string file;
  int line = 0;
  std::string message;
  // Machine-applicable payload for the fix engine (e.g. the include path to
  // delete or insert); not serialized into reports.
  std::string subject;
};

// ----------------------------------------------------------- linked model --

// A function identified by (file path, index into that file's functions
// vector). Stable across the whole-program walk.
struct FnRef {
  std::string file;
  int index = 0;
  bool operator<(const FnRef& other) const {
    return file != other.file ? file < other.file : index < other.index;
  }
  bool operator==(const FnRef& other) const {
    return file == other.file && index == other.index;
  }
};

// Edge-resolution counters for the whole-program walk (reported by --stats).
struct CallEdgeStats {
  std::size_t resolved_edges = 0;      // exactly one target body
  std::size_t multi_target_edges = 0;  // ambiguous: every candidate walked
  std::size_t external_edges = 0;      // no project body visible
};

// The per-TU function models of every file in the project, merged into one
// linked call graph. Calls resolve by qualified name with include-graph
// visibility and argument-arity disambiguation; ambiguity yields a
// conservative multi-target edge (all candidates), never a truncated walk.
class LinkedModel {
 public:
  explicit LinkedModel(const Project& project);

  const FunctionInfo& Fn(const FnRef& ref) const;
  const SourceFile& File(const FnRef& ref) const;

  // Targets of `call` made from `caller`. Resolution order: explicit
  // qualifier match, enclosing-class member match, same-file definition,
  // include-visibility filter, then the arity filter; survivors of size one
  // count as resolved, more as a multi-target edge, zero as external.
  // STL-like names short-circuit to empty without touching `stats`.
  std::vector<FnRef> Resolve(const FnRef& caller, const CallSite& call,
                             CallEdgeStats* stats) const;

  // Traversal seeds per [concurrency]: callback lambdas of task_callbacks
  // (inline or passed by identifier) and task_entries matched by qualified
  // or plain name.
  std::vector<FnRef> TaskSeeds(const Config& config) const;

  // BFS closure of TaskSeeds over Resolve, stopping at mutation_allow
  // matches. `stats` (optional) accumulates edge counters.
  std::set<FnRef> TaskReachable(const Config& config, CallEdgeStats* stats) const;

  // Union of every file's namespace-scope mutable globals.
  const std::set<std::string>& mutable_globals() const { return mutable_globals_; }

 private:
  const Project& project_;
  // Definitions (has_body) by unqualified and by qualified name.
  std::map<std::string, std::vector<FnRef>> by_name_;
  std::map<std::string, std::vector<FnRef>> by_qualified_;
  // Files holding a bodyless declaration of each name (visibility widening:
  // a declaration in a visible header makes every definition a candidate).
  std::map<std::string, std::set<std::string>> decl_files_;
  // Per-file include closure, including the file itself.
  std::map<std::string, std::set<std::string>> closures_;
  std::set<std::string> mutable_globals_;
};

// --------------------------------------------------------- lock discipline --

// Member names annotated `// mtm-analyze: guarded_by(mu)` (on the member's
// declaration line or the line above), mapped to the named mutex.
std::map<std::string, std::string> CollectGuardedMembers(const Project& project);

// The mutex named by `// mtm-analyze: requires(mu)` on the line above (or
// two above) `fn`'s definition; empty when unannotated.
std::string RequiredMutex(const SourceFile& file, const FunctionInfo& fn);

std::vector<Finding> RunIncludeGraphPass(const Project& project, const Config& config);
std::vector<Finding> RunLayeringPass(const Project& project, const Config& config);
std::vector<Finding> RunDeterminismPass(const Project& project, const Config& config);
std::vector<Finding> RunErrorDisciplinePass(const Project& project, const Config& config);
std::vector<Finding> RunConcurrencyPass(const Project& project, const Config& config);
// Overload used by --stats: accumulates edge-resolution counters.
std::vector<Finding> RunConcurrencyPass(const Project& project, const Config& config,
                                        CallEdgeStats* stats);
std::vector<Finding> RunLockDisciplinePass(const Project& project, const Config& config);

// Every check name the tool can emit, plus the pass names (both are valid
// suppression targets). Keep tools/mtm_lint/mtm_lint.py's
// VALID_SUPPRESSION_TARGETS in sync with this list.
const std::set<std::string>& KnownChecks();

// Aggregate counters for --stats.
struct AnalyzeStats {
  std::size_t files_checked = 0;
  CallEdgeStats edges;
  // Post-suppression finding counts keyed by check name (zero-count checks
  // are omitted).
  std::map<std::string, std::size_t> findings_by_check;
};

// Runs all passes, applies inline suppressions, and returns the surviving
// findings sorted by (file, line, check).
std::vector<Finding> Analyze(const Project& project, const Config& config);
// Overload used by --stats.
std::vector<Finding> Analyze(const Project& project, const Config& config,
                             AnalyzeStats* stats);

// ------------------------------------------------------------------- fix --

// Computes the machine-applicable rewrites for the given findings (delete
// unused/dead includes, insert directly-included headers for transitive
// reliance) plus include-block reordering per the mtm_lint include-order
// rule. Returns new file contents keyed by repo-relative path, only for
// files that change. Running the result through Analyze+ComputeFixedContents
// again yields an empty map (idempotence; covered by tests).
std::map<std::string, std::string> ComputeFixedContents(const Project& project,
                                                        const std::vector<Finding>& findings);

// ----------------------------------------------------------------- report --

// One finding per line, mtm_lint style: "file:line: [check] message".
std::string FormatText(const std::vector<Finding>& findings);

// JSON report matching the mtm_lint schema:
//   {"files_checked": N, "findings": [...], "ok": bool}
std::string FormatJson(const std::vector<Finding>& findings, std::size_t files_checked);

// Human-readable --stats block: files analyzed, resolved vs. ambiguous vs.
// external call edges, and per-check finding counts.
std::string FormatStats(const AnalyzeStats& stats);

}  // namespace mtm::analyze
