#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/mtm_analyze/mtm_analyze.h"

namespace mtm::analyze {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsHeader(const std::string& path) {
  return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

// The associated header of "src/x/y.cc" is "src/x/y.h".
std::string OwnHeader(const std::string& path) {
  std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || IsHeader(path)) {
    return "";
  }
  return path.substr(0, dot) + ".h";
}

// Distinctive symbols anchor the transitive-include check: type-like
// CamelCase names, MACRO_NAMES, and kConstants. Lowercase identifiers
// (members, locals, parameters) are too ambiguous to attribute.
bool IsDistinctive(const std::string& symbol) {
  if (symbol.empty()) {
    return false;
  }
  if (std::isupper(static_cast<unsigned char>(symbol[0])) != 0) {
    return true;
  }
  return symbol.size() >= 2 && symbol[0] == 'k' &&
         std::isupper(static_cast<unsigned char>(symbol[1])) != 0;
}

bool HasPathPrefix(const std::string& path, const std::string& prefix) {
  if (prefix.empty() || path.size() < prefix.size() ||
      path.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}

bool InAllowlist(const std::string& path, const std::vector<std::string>& prefixes) {
  for (const std::string& prefix : prefixes) {
    if (HasPathPrefix(path, prefix)) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------- include graph --

void FindCycles(const Project& project, std::vector<Finding>* findings) {
  // Iterative DFS with tri-color marking; a back edge to a gray node closes
  // a cycle. Each cycle is reported once, keyed by its member set.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::set<std::string> reported;
  for (const auto& [start, unused] : project.files()) {
    if (color[start] != 0) {
      continue;
    }
    std::vector<std::pair<std::string, std::size_t>> stack;  // (node, next edge)
    std::vector<std::string> path;
    stack.emplace_back(start, 0);
    while (!stack.empty()) {
      auto& [node, edge_index] = stack.back();
      const SourceFile* file = project.Find(node);
      if (edge_index == 0) {
        color[node] = 1;
        path.push_back(node);
      }
      bool descended = false;
      while (file != nullptr && edge_index < file->includes.size()) {
        const IncludeEdge& edge = file->includes[edge_index++];
        if (!edge.resolved) {
          continue;
        }
        int target_color = color[edge.target];
        if (target_color == 1) {
          auto cycle_start = std::find(path.begin(), path.end(), edge.target);
          std::vector<std::string> cycle(cycle_start, path.end());
          std::vector<std::string> key = cycle;
          std::sort(key.begin(), key.end());
          std::string key_text;
          for (const std::string& k : key) {
            key_text += k + "|";
          }
          if (reported.insert(key_text).second) {
            std::string chain;
            for (const std::string& c : cycle) {
              chain += c + " -> ";
            }
            chain += edge.target;
            findings->push_back({"include-cycle", node, edge.line, "include cycle: " + chain, ""});
          }
        } else if (target_color == 0) {
          stack.emplace_back(edge.target, 0);
          descended = true;
          break;
        }
      }
      if (!descended && (file == nullptr || edge_index >= file->includes.size())) {
        color[node] = 2;
        path.pop_back();
        stack.pop_back();
      }
    }
  }
}

// Marker symbols for common standard headers: a file whose tokens contain
// none of a header's markers does not use that header. The table is
// deliberately conservative — headers not listed are never flagged, and a
// single marker hit keeps the include.
const std::map<std::string, std::vector<std::string>>& SystemHeaderMarkers() {
  static const std::map<std::string, std::vector<std::string>> kMarkers = {
      {"algorithm",
       {"sort", "stable_sort", "find", "find_if", "min", "max", "min_element", "max_element",
        "lower_bound", "upper_bound", "count", "count_if", "any_of", "all_of", "none_of", "copy",
        "transform", "remove", "remove_if", "unique", "reverse", "fill", "accumulate", "clamp",
        "shuffle", "partition", "nth_element", "binary_search", "equal", "swap", "for_each"}},
      {"array", {"array"}},
      {"atomic", {"atomic", "atomic_flag", "memory_order_relaxed", "memory_order_seq_cst"}},
      {"cctype", {"isalnum", "isalpha", "isdigit", "isspace", "isupper", "islower", "toupper",
                  "tolower", "ispunct", "isxdigit"}},
      {"chrono", {"chrono", "steady_clock", "system_clock", "high_resolution_clock",
                  "milliseconds", "nanoseconds", "microseconds", "seconds", "duration_cast"}},
      {"cmath", {"sqrt", "pow", "fabs", "abs", "ceil", "floor", "round", "log", "log2", "log10",
                 "exp", "isnan", "isinf", "fmod", "lround", "llround"}},
      {"condition_variable", {"condition_variable", "cv_status"}},
      {"cstdint", {"uint8_t", "uint16_t", "uint32_t", "uint64_t", "int8_t", "int16_t", "int32_t",
                   "int64_t", "uintptr_t", "intptr_t", "size_t", "UINT64_MAX", "INT64_MAX",
                   "UINT32_MAX", "UINT64_C"}},
      {"cstdio", {"printf", "fprintf", "snprintf", "sprintf", "fopen", "fclose", "fread",
                  "fwrite", "stderr", "stdout", "FILE", "fgets", "puts", "remove", "rename"}},
      {"cstdlib", {"malloc", "free", "calloc", "realloc", "exit", "abort", "getenv", "atoi",
                   "atol", "strtol", "strtoul", "strtoull", "strtod", "EXIT_FAILURE",
                   "EXIT_SUCCESS", "rand", "srand"}},
      {"cstring", {"memcpy", "memset", "memmove", "memcmp", "strlen", "strcmp", "strncmp",
                   "strcpy", "strncpy", "strchr", "strstr", "strerror"}},
      {"deque", {"deque"}},
      {"filesystem", {"filesystem"}},
      {"fstream", {"ifstream", "ofstream", "fstream"}},
      {"functional", {"function", "bind", "ref", "cref", "hash", "reference_wrapper"}},
      {"iomanip", {"setw", "setprecision", "setfill", "fixed", "hex", "dec", "quoted"}},
      {"iostream", {"cout", "cerr", "cin", "clog", "endl"}},
      {"iterator", {"back_inserter", "inserter", "distance", "advance", "next", "prev",
                    "make_move_iterator", "begin", "end"}},
      {"limits", {"numeric_limits"}},
      {"map", {"map", "multimap"}},
      {"memory", {"unique_ptr", "shared_ptr", "weak_ptr", "make_unique", "make_shared",
                  "enable_shared_from_this", "allocator", "addressof"}},
      {"mutex", {"mutex", "lock_guard", "unique_lock", "scoped_lock", "once_flag", "call_once"}},
      {"numeric", {"accumulate", "iota", "reduce", "inner_product", "partial_sum", "gcd", "lcm"}},
      {"optional", {"optional", "nullopt", "make_optional"}},
      {"queue", {"queue", "priority_queue"}},
      {"random", {"mt19937", "mt19937_64", "random_device", "uniform_int_distribution",
                  "uniform_real_distribution", "normal_distribution", "bernoulli_distribution",
                  "discrete_distribution", "seed_seq"}},
      {"set", {"set", "multiset"}},
      {"sstream", {"stringstream", "istringstream", "ostringstream"}},
      {"string", {"string", "to_string", "stoi", "stol", "stoul", "stoull", "stod", "getline",
                  "char_traits"}},
      {"string_view", {"string_view"}},
      {"thread", {"thread", "this_thread", "hardware_concurrency"}},
      {"tuple", {"tuple", "make_tuple", "tie", "get", "tuple_size", "apply"}},
      {"type_traits", {"enable_if", "is_same", "decay", "remove_reference", "is_integral",
                       "is_floating_point", "conditional", "underlying_type", "declval",
                       "is_trivially_copyable", "invoke_result"}},
      {"unordered_map", {"unordered_map", "unordered_multimap"}},
      {"unordered_set", {"unordered_set", "unordered_multiset"}},
      {"utility", {"move", "forward", "pair", "make_pair", "swap", "exchange", "in_place"}},
      {"variant", {"variant", "visit", "holds_alternative", "get_if", "monostate"}},
      {"vector", {"vector"}},
  };
  return kMarkers;
}

}  // namespace

std::vector<Finding> RunIncludeGraphPass(const Project& project, const Config& config) {
  std::vector<Finding> findings;

  // Map each distinctive symbol to the headers that declare it; symbols
  // owned by exactly one header can be attributed for the transitive check.
  std::map<std::string, std::vector<std::string>> owners;
  for (const auto& [path, file] : project.files()) {
    if (!IsHeader(path)) {
      continue;
    }
    for (const std::string& symbol : file.attributable) {
      if (IsDistinctive(symbol)) {
        owners[symbol].push_back(path);
      }
    }
  }

  for (const auto& [path, file] : project.files()) {
    std::string own = OwnHeader(path);
    std::set<std::string> direct;
    for (const IncludeEdge& edge : file.includes) {
      if (edge.resolved) {
        direct.insert(edge.target);
      }
    }
    // A .cc may rely on its associated header's includes (they are part of
    // its interface); fold them into the effective direct set.
    std::set<std::string> effective = direct;
    if (!own.empty() && project.Find(own) != nullptr) {
      effective.insert(own);
      for (const IncludeEdge& edge : project.Find(own)->includes) {
        if (edge.resolved) {
          effective.insert(edge.target);
        }
      }
    }

    // unused-include: a direct project include none of whose exported
    // symbols the file references.
    for (const IncludeEdge& edge : file.includes) {
      if (!edge.resolved || edge.target == own) {
        continue;
      }
      const SourceFile* header = project.Find(edge.target);
      if (header == nullptr || header->exported.empty()) {
        continue;  // nothing attributable: stay silent, not wrong
      }
      bool used = false;
      for (const std::string& symbol : header->exported) {
        if (file.tokens.count(symbol) > 0) {
          used = true;
          break;
        }
      }
      if (!used) {
        findings.push_back({"unused-include", path, edge.line,
                            "include \"" + edge.target +
                                "\" is unused: no symbol it declares is referenced here",
                            edge.target});
      }
    }

    // dead-system-include: an angle-bracket include of a known standard
    // header none of whose marker symbols appears in the file. Opt-in
    // (--check-system-includes): the marker table is a heuristic.
    if (config.check_system_includes) {
      for (const IncludeEdge& edge : file.includes) {
        if (!edge.angle || edge.resolved) {
          continue;
        }
        auto it = SystemHeaderMarkers().find(edge.target);
        if (it == SystemHeaderMarkers().end()) {
          continue;
        }
        bool used = false;
        for (const std::string& marker : it->second) {
          if (file.tokens.count(marker) > 0) {
            used = true;
            break;
          }
        }
        if (!used) {
          findings.push_back({"dead-system-include", path, edge.line,
                              "include <" + edge.target +
                                  "> appears dead: none of its marker symbols is used here",
                              edge.target});
        }
      }
    }

    // transitive-include: a symbol used here whose only declaring header is
    // reachable transitively but not included directly.
    std::set<std::string> closure = project.IncludeClosure(path);
    for (const auto& [token, first_line] : file.tokens) {
      if (!IsDistinctive(token) || file.exported.count(token) > 0) {
        continue;
      }
      auto it = owners.find(token);
      if (it == owners.end() || it->second.size() != 1) {
        continue;
      }
      const std::string& owner = it->second.front();
      if (owner == path || owner == own || effective.count(owner) > 0 ||
          closure.count(owner) == 0) {
        continue;
      }
      bool provided_directly = false;
      for (const std::string& dep : effective) {
        const SourceFile* dep_file = project.Find(dep);
        if (dep_file != nullptr && dep_file->exported.count(token) > 0) {
          provided_directly = true;
          break;
        }
      }
      if (!provided_directly) {
        findings.push_back({"transitive-include", path, first_line,
                            "'" + token + "' is declared in \"" + owner +
                                "\", which is only included transitively; include it directly",
                            owner});
      }
    }
  }

  FindCycles(project, &findings);
  return findings;
}

// --------------------------------------------------------------- layering --

namespace {

// Longest declared prefix containing `path`, or "" if none.
std::string ModuleOf(const std::string& path, const Config& config) {
  std::string best;
  for (const auto& [prefix, unused] : config.layers) {
    if (HasPathPrefix(path, prefix) && prefix.size() > best.size()) {
      best = prefix;
    }
  }
  return best;
}

}  // namespace

std::vector<Finding> RunLayeringPass(const Project& project, const Config& config) {
  std::vector<Finding> findings;
  for (const auto& [path, file] : project.files()) {
    std::string module = ModuleOf(path, config);
    if (module.empty()) {
      continue;
    }
    const std::vector<std::string>& allowed = config.layers.at(module);
    if (std::find(allowed.begin(), allowed.end(), "*") != allowed.end()) {
      continue;
    }
    for (const IncludeEdge& edge : file.includes) {
      if (!edge.resolved) {
        continue;
      }
      std::string target_module = ModuleOf(edge.target, config);
      if (target_module.empty() || target_module == module) {
        continue;
      }
      if (std::find(allowed.begin(), allowed.end(), target_module) == allowed.end()) {
        std::string allowed_text;
        for (const std::string& a : allowed) {
          allowed_text += (allowed_text.empty() ? "" : ", ") + a;
        }
        findings.push_back({"layering", path, edge.line,
                            module + " may not include " + target_module + " (allowed: " +
                                (allowed_text.empty() ? "none" : allowed_text) + ")",
                            ""});
      }
    }
  }
  return findings;
}

// ------------------------------------------------------------ determinism --

namespace {

// Matches balanced '<...>' starting at text[open] == '<'; returns the index
// one past the closing '>' or npos.
std::size_t SkipAngles(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '<') {
      ++depth;
    } else if (text[i] == '>') {
      if (--depth == 0) {
        return i + 1;
      }
    } else if (text[i] == ';' || text[i] == '{') {
      return std::string::npos;  // ran off the declaration
    }
  }
  return std::string::npos;
}

std::size_t SkipBalanced(const std::string& text, std::size_t open, char open_ch, char close_ch) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == open_ch) {
      ++depth;
    } else if (text[i] == close_ch) {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return std::string::npos;
}

int LineOfOffset(const std::string& text, std::size_t offset) {
  return 1 + static_cast<int>(std::count(text.begin(), text.begin() + static_cast<long>(offset), '\n'));
}

// Variables declared with an unordered container type, project-wide. The
// declaring file is irrelevant: members are declared in headers and
// iterated in .cc files.
std::set<std::string> CollectUnorderedNames(const Project& project) {
  static const char* kTypes[] = {"unordered_map", "unordered_set", "unordered_multimap",
                                 "unordered_multiset"};
  std::set<std::string> names;
  for (const auto& [path, file] : project.files()) {
    std::string text;
    for (const std::string& line : file.code) {
      text += line;
      text += '\n';
    }
    for (const char* type : kTypes) {
      std::size_t pos = 0;
      std::string needle = type;
      while ((pos = text.find(needle, pos)) != std::string::npos) {
        std::size_t after = pos + needle.size();
        if ((pos > 0 && IsIdentChar(text[pos - 1])) ||
            (after < text.size() && IsIdentChar(text[after]))) {
          pos = after;
          continue;
        }
        std::size_t open = text.find_first_not_of(" \t\n", after);
        if (open == std::string::npos || text[open] != '<') {
          pos = after;
          continue;
        }
        std::size_t end = SkipAngles(text, open);
        if (end == std::string::npos) {
          pos = after;
          continue;
        }
        // Skip refs/pointers, then take the declared name (a following '('
        // means a constructor call or function return type, not a variable).
        std::size_t name_start = end;
        while (name_start < text.size() &&
               (std::isspace(static_cast<unsigned char>(text[name_start])) != 0 ||
                text[name_start] == '&' || text[name_start] == '*')) {
          ++name_start;
        }
        std::size_t name_end = name_start;
        while (name_end < text.size() && IsIdentChar(text[name_end])) {
          ++name_end;
        }
        if (name_end > name_start) {
          names.insert(text.substr(name_start, name_end - name_start));
        }
        pos = after;
      }
    }
  }
  return names;
}

// The trailing identifier of an expression like "profiler_->counts_".
std::string TrailingName(const std::string& expr) {
  std::size_t end = expr.size();
  while (end > 0 && std::isspace(static_cast<unsigned char>(expr[end - 1])) != 0) {
    --end;
  }
  // Tolerate a trailing call: "Foo(x).items()" has no name to attribute.
  std::size_t start = end;
  while (start > 0 && IsIdentChar(expr[start - 1])) {
    --start;
  }
  return expr.substr(start, end - start);
}

// True if the loop body writes to something another run could observe:
// an `out`/`output` object, a stream, an Emit/Write/Print-style call, or
// the metrics registry.
bool ReachesOutputSink(const std::string& body) {
  static const char* kDotSinks[] = {"out", "output"};
  static const char* kStreamSinks[] = {"os", "oss", "ofs", "cout", "cerr", "stream", "out"};
  static const char* kCallPrefixes[] = {"Emit", "Write", "Print", "Append", "Record", "Report"};
  static const char* kWordSinks[] = {"metrics", "registry", "entries"};

  for (std::size_t i = 0; i < body.size(); ++i) {
    if (!IsIdentChar(body[i]) || (i > 0 && IsIdentChar(body[i - 1]))) {
      continue;
    }
    std::size_t j = i;
    while (j < body.size() && IsIdentChar(body[j])) {
      ++j;
    }
    std::string word = body.substr(i, j - i);
    std::size_t next = body.find_first_not_of(" \t\n", j);
    char next_ch = next == std::string::npos ? '\0' : body[next];
    for (const char* sink : kDotSinks) {
      if (word == sink && next_ch == '.') {
        return true;
      }
    }
    for (const char* sink : kStreamSinks) {
      if (word == sink && next_ch == '<' && next + 1 < body.size() && body[next + 1] == '<') {
        return true;
      }
    }
    for (const char* prefix : kCallPrefixes) {
      if (word.rfind(prefix, 0) == 0 && next_ch == '(') {
        return true;
      }
    }
    for (const char* sink : kWordSinks) {
      if (word == sink) {
        return true;
      }
    }
    i = j - 1;
  }
  return false;
}

void CheckUnorderedIteration(const SourceFile& file, const std::set<std::string>& unordered,
                             std::vector<Finding>* findings) {
  std::string text;
  for (const std::string& line : file.code) {
    text += line;
    text += '\n';
  }
  std::size_t pos = 0;
  while ((pos = text.find("for", pos)) != std::string::npos) {
    std::size_t start = pos;
    pos += 3;
    if ((start > 0 && IsIdentChar(text[start - 1])) ||
        (start + 3 < text.size() && IsIdentChar(text[start + 3]))) {
      continue;
    }
    std::size_t open = text.find_first_not_of(" \t\n", start + 3);
    if (open == std::string::npos || text[open] != '(') {
      continue;
    }
    std::size_t close = SkipBalanced(text, open, '(', ')');
    if (close == std::string::npos) {
      continue;
    }
    std::string head = text.substr(open + 1, close - open - 2);

    std::string container;
    // Ranged-for: the range expression follows the top-level ':' (skip
    // '::' scope separators).
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t i = 0; i < head.size(); ++i) {
      char c = head[i];
      if (c == '(' || c == '<' || c == '[') {
        ++depth;
      } else if (c == ')' || c == '>' || c == ']') {
        --depth;
      } else if (c == ':' && depth == 0) {
        if ((i + 1 < head.size() && head[i + 1] == ':') || (i > 0 && head[i - 1] == ':')) {
          continue;
        }
        colon = i;
        break;
      }
    }
    if (colon != std::string::npos) {
      container = TrailingName(head.substr(colon + 1));
    } else {
      // Iterator loop: for (auto it = X.begin(); ...).
      std::size_t begin_call = head.find(".begin");
      if (begin_call != std::string::npos) {
        container = TrailingName(head.substr(0, begin_call));
      }
    }
    if (container.empty() || unordered.count(container) == 0) {
      continue;
    }

    std::size_t body_start = text.find_first_not_of(" \t\n", close);
    if (body_start == std::string::npos) {
      continue;
    }
    std::size_t body_end;
    if (text[body_start] == '{') {
      body_end = SkipBalanced(text, body_start, '{', '}');
    } else {
      body_end = text.find(';', body_start);
    }
    if (body_end == std::string::npos) {
      continue;
    }
    if (ReachesOutputSink(text.substr(body_start, body_end - body_start))) {
      findings->push_back(
          {"unordered-iteration", file.path, LineOfOffset(text, start),
           "iteration over unordered container '" + container +
               "' reaches an output sink; hash order leaks into output — use an ordered "
               "container or emit in sorted order",
           ""});
    }
  }
}

}  // namespace

std::vector<Finding> RunDeterminismPass(const Project& project, const Config& config) {
  std::vector<Finding> findings;
  std::set<std::string> unordered = CollectUnorderedNames(project);

  static const char* kWallClock[] = {"steady_clock",  "system_clock",       "high_resolution_clock",
                                     "gettimeofday",  "clock_gettime",      "mach_absolute_time"};
  static const char* kRandom[] = {"rand", "srand", "random_device"};

  for (const auto& [path, file] : project.files()) {
    CheckUnorderedIteration(file, unordered, &findings);

    if (!InAllowlist(path, config.wallclock_allow)) {
      for (std::size_t i = 0; i < file.code.size(); ++i) {
        for (const char* token : kWallClock) {
          if (ContainsWord(file.code[i], token)) {
            findings.push_back({"wall-clock", path, static_cast<int>(i + 1),
                                std::string("wall-clock read ('") + token +
                                    "') outside sanctioned sites; simulation code must use "
                                    "SimNanos virtual time",
                                ""});
            break;
          }
        }
      }
    }

    if (!InAllowlist(path, config.random_allow)) {
      for (std::size_t i = 0; i < file.code.size(); ++i) {
        const std::string& line = file.code[i];
        for (const char* token : kRandom) {
          if (!ContainsWord(line, token)) {
            continue;
          }
          // rand/srand must be calls; random_device matches as a word.
          if (token != std::string("random_device")) {
            std::size_t at = line.find(token);
            std::size_t after = line.find_first_not_of(" \t", at + std::string(token).size());
            if (after == std::string::npos || line[after] != '(') {
              continue;
            }
          }
          findings.push_back({"raw-random", path, static_cast<int>(i + 1),
                              std::string("'") + token +
                                  "' outside src/common/rng; use the seeded project Rng for "
                                  "reproducible runs",
                              ""});
          break;
        }
      }
    }
  }
  return findings;
}

// ----------------------------------------------- suppression + dispatcher --

namespace {

std::string PassOf(const std::string& check) {
  if (check == "unused-include" || check == "transitive-include" || check == "include-cycle" ||
      check == "dead-system-include") {
    return "include-graph";
  }
  if (check == "layering") {
    return "layering";
  }
  if (check == "discarded-status" || check == "raw-error-return" ||
      check == "unchecked-result-unwrap") {
    return "error-discipline";
  }
  if (check == "task-member-write" || check == "task-static-write" ||
      check == "task-capture-write") {
    return "concurrency";
  }
  if (check == "unguarded-member-write" || check == "lock-order") {
    return "lock-discipline";
  }
  return "determinism";
}

// Applies `// mtm-analyze: allow(<name>) <justification>` suppressions on
// the finding line or the line above. A matching suppression without a
// justification converts the finding instead of hiding it.
void ApplySuppressions(const Project& project, std::vector<Finding>* findings) {
  static const std::string kMarker = "mtm-analyze: allow(";
  std::vector<Finding> kept;
  for (const Finding& finding : *findings) {
    const SourceFile* file = project.Find(finding.file);
    bool suppressed = false;
    bool needs_justification = false;
    if (file != nullptr) {
      for (int line : {finding.line, finding.line - 1}) {
        if (line < 1 || line > static_cast<int>(file->raw.size())) {
          continue;
        }
        const std::string& raw = file->raw[static_cast<std::size_t>(line - 1)];
        std::size_t at = raw.find(kMarker);
        if (at == std::string::npos) {
          continue;
        }
        std::size_t name_start = at + kMarker.size();
        std::size_t close = raw.find(')', name_start);
        if (close == std::string::npos) {
          continue;
        }
        std::string name = raw.substr(name_start, close - name_start);
        if (name != finding.check && name != PassOf(finding.check)) {
          continue;
        }
        std::string justification = raw.substr(close + 1);
        std::size_t first = justification.find_first_not_of(" \t");
        if (first == std::string::npos) {
          needs_justification = true;
        } else {
          suppressed = true;
        }
        break;
      }
    }
    if (needs_justification) {
      kept.push_back({"suppression", finding.file, finding.line,
                      "suppression for '" + finding.check + "' is missing a justification",
                      ""});
    } else if (!suppressed) {
      kept.push_back(finding);
    }
  }
  *findings = std::move(kept);
}

}  // namespace

const std::set<std::string>& KnownChecks() {
  static const std::set<std::string> kChecks = {
      // include-graph
      "unused-include", "transitive-include", "include-cycle", "dead-system-include",
      // layering
      "layering",
      // determinism
      "unordered-iteration", "wall-clock", "raw-random",
      // error-discipline
      "discarded-status", "raw-error-return", "unchecked-result-unwrap",
      // concurrency
      "task-member-write", "task-static-write", "task-capture-write",
      // lock-discipline
      "unguarded-member-write", "lock-order",
      // pass names double as suppression targets
      "include-graph", "determinism", "error-discipline", "concurrency", "lock-discipline",
      // emitted for a suppression missing its justification
      "suppression"};
  return kChecks;
}

std::vector<Finding> Analyze(const Project& project, const Config& config) {
  return Analyze(project, config, nullptr);
}

std::vector<Finding> Analyze(const Project& project, const Config& config, AnalyzeStats* stats) {
  std::vector<Finding> findings = RunIncludeGraphPass(project, config);
  for (auto* pass : {RunLayeringPass, RunDeterminismPass, RunErrorDisciplinePass,
                     RunLockDisciplinePass}) {
    std::vector<Finding> more = pass(project, config);
    findings.insert(findings.end(), more.begin(), more.end());
  }
  {
    std::vector<Finding> more =
        RunConcurrencyPass(project, config, stats != nullptr ? &stats->edges : nullptr);
    findings.insert(findings.end(), more.begin(), more.end());
  }
  ApplySuppressions(project, &findings);
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) {
      return a.file < b.file;
    }
    if (a.line != b.line) {
      return a.line < b.line;
    }
    return a.check < b.check;
  });
  if (stats != nullptr) {
    stats->files_checked = project.files().size();
    for (const Finding& finding : findings) {
      ++stats->findings_by_check[finding.check];
    }
  }
  return findings;
}

}  // namespace mtm::analyze
