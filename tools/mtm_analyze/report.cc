#include <sstream>
#include <string>
#include <vector>

#include "tools/mtm_analyze/mtm_analyze.h"

namespace mtm::analyze {
namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatText(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << f.file << ":" << f.line << ": [" << f.check << "] " << f.message << "\n";
  }
  return os.str();
}

std::string FormatJson(const std::vector<Finding>& findings, std::size_t files_checked) {
  std::ostringstream os;
  os << "{\n  \"files_checked\": " << files_checked << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\n"
       << "      \"check\": \"" << JsonEscape(f.check) << "\",\n"
       << "      \"file\": \"" << JsonEscape(f.file) << "\",\n"
       << "      \"line\": " << f.line << ",\n"
       << "      \"message\": \"" << JsonEscape(f.message) << "\"\n"
       << "    }";
  }
  os << (findings.empty() ? "" : "\n  ") << "],\n";
  os << "  \"ok\": " << (findings.empty() ? "true" : "false") << "\n}\n";
  return os.str();
}

std::string FormatStats(const AnalyzeStats& stats) {
  std::ostringstream os;
  os << "mtm_analyze stats:\n";
  os << "  files analyzed:     " << stats.files_checked << "\n";
  os << "  call edges:         " << stats.edges.resolved_edges << " resolved, "
     << stats.edges.multi_target_edges << " multi-target, " << stats.edges.external_edges
     << " external\n";
  if (stats.findings_by_check.empty()) {
    os << "  findings:           none\n";
  } else {
    os << "  findings by check:\n";
    for (const auto& [check, count] : stats.findings_by_check) {
      os << "    " << check << ": " << count << "\n";
    }
  }
  return os.str();
}

}  // namespace mtm::analyze
