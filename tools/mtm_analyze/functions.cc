// Per-file function model and the error-discipline pass.
//
// The model is built from the stripped token stream: function definitions
// and declarations at namespace/class scope (name, qualified name, return
// type), lambdas nested in bodies (attributed to their enclosing function,
// with the callee recorded when the lambda sits in a call's argument list),
// call sites, mutation sites, and Status/Result flow events. It is a
// syntactic approximation — no overload resolution, no type inference —
// and every consumer documents the resulting false-negative envelope in
// DESIGN.md §12.
#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/mtm_analyze/mtm_analyze.h"

namespace mtm::analyze {
namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "if",        "for",       "while",     "switch",   "return",    "sizeof",
      "decltype",  "alignof",   "alignas",   "catch",    "throw",     "new",
      "delete",    "template",  "typename",  "public",   "private",   "protected",
      "virtual",   "explicit",  "inline",    "static",   "constexpr", "friend",
      "auto",      "void",      "bool",      "char",     "int",       "unsigned",
      "long",      "short",     "float",     "double",   "default",   "case",
      "else",      "do",        "try",       "operator", "const",     "noexcept",
      "override",  "final",     "mutable",   "this",     "nullptr",   "true",
      "false",     "static_assert",          "static_cast",           "const_cast",
      "dynamic_cast",           "reinterpret_cast",      "co_await",  "co_return",
      "goto",      "break",     "continue",  "using",    "namespace", "class",
      "struct",    "union",     "enum",      "typedef",  "extern",    "thread_local"};
  return kKeywords;
}

bool IsControlKeyword(const std::string& t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" || t == "catch";
}

// Specifier tokens stripped when canonicalizing a return type.
bool IsSpecifier(const std::string& t) {
  return t == "static" || t == "inline" || t == "constexpr" || t == "virtual" ||
         t == "explicit" || t == "friend" || t == "extern" || t == "nodiscard" ||
         t == "maybe_unused" || t == "[" || t == "]";
}

// Member calls that mutate the receiver (containers, smart pointers,
// atomics). Chains rooted at a this-member ending in one of these count as
// member mutation.
const std::set<std::string>& MutatingMethods() {
  static const std::set<std::string> kMethods = {
      "push_back", "emplace_back", "pop_back",  "push_front", "pop_front", "insert",
      "emplace",   "erase",        "clear",     "resize",     "assign",    "push",
      "pop",       "reset",        "store",     "fetch_add",  "fetch_sub", "exchange"};
  return kMethods;
}

bool EndsWithUnderscore(const std::string& s) { return !s.empty() && s.back() == '_'; }

// Index one past the token matching `open_tok` at tokens[i]; npos on bail.
std::size_t MatchForward(const std::vector<Token>& toks, std::size_t i, const char* open_tok,
                         const char* close_tok) {
  int depth = 0;
  for (std::size_t k = i; k < toks.size(); ++k) {
    if (toks[k].text == open_tok) {
      ++depth;
    } else if (toks[k].text == close_tok) {
      if (--depth == 0) {
        return k + 1;
      }
    }
  }
  return std::string::npos;
}

// Matches a '<...>' template-argument group starting at tokens[i] == "<";
// bails (npos) on tokens that cannot appear inside one.
std::size_t MatchAngles(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (std::size_t k = i; k < toks.size(); ++k) {
    const std::string& t = toks[k].text;
    if (t == "<") {
      ++depth;
    } else if (t == ">") {
      if (--depth == 0) {
        return k + 1;
      }
    } else if (t == ";" || t == "{" || t == "}") {
      return std::string::npos;
    }
  }
  return std::string::npos;
}

class ModelBuilder {
 public:
  explicit ModelBuilder(SourceFile* file) : file_(file), toks_(TokenizeCode(file->code)) {}

  void Build() {
    WalkScope(0, toks_.size(), /*class_name=*/"", /*at_namespace=*/true);
    file_->functions = std::move(fns_);
  }

 private:
  const std::string& Text(std::size_t i) const {
    static const std::string kEnd = "";
    return i < toks_.size() ? toks_[i].text : kEnd;
  }
  int Line(std::size_t i) const { return i < toks_.size() ? toks_[i].line : 0; }

  // ---- declarative scopes (namespace / class bodies) ----

  // Walks tokens[begin, end) as a declarative scope; `class_name` qualifies
  // member functions, `at_namespace` enables mutable-global collection.
  void WalkScope(std::size_t begin, std::size_t end, const std::string& class_name,
                 bool at_namespace) {
    std::size_t decl_start = begin;
    std::size_t i = begin;
    while (i < end) {
      const std::string& t = Text(i);
      if (t == ";") {
        if (at_namespace) {
          MaybeRecordMutableGlobal(decl_start, i);
        }
        decl_start = ++i;
        continue;
      }
      if (t == ":" && Text(i + 1) != ":" && Text(i - 1) != ":") {
        // Access specifier label (public:/private:/...) restarts the decl.
        decl_start = ++i;
        continue;
      }
      if (t == "namespace") {
        std::size_t k = i + 1;
        while (k < end && Text(k) != "{" && Text(k) != ";" && Text(k) != "=") {
          ++k;
        }
        if (Text(k) == "{") {
          std::size_t close = MatchForward(toks_, k, "{", "}");
          if (close == std::string::npos) {
            return;
          }
          WalkScope(k + 1, close - 1, "", true);
          i = decl_start = close;
          continue;
        }
        i = decl_start = k + 1;  // namespace alias or malformed
        continue;
      }
      if (t == "class" || t == "struct" || t == "union" || t == "enum") {
        bool is_enum = t == "enum";
        std::size_t k = i + 1;
        if (is_enum && (Text(k) == "class" || Text(k) == "struct")) {
          ++k;
        }
        std::string name;
        while (k < end && Text(k) != "{" && Text(k) != ";" && Text(k) != ":" && Text(k) != "(") {
          if (std::isalpha(static_cast<unsigned char>(Text(k)[0])) != 0 || Text(k)[0] == '_') {
            name = Text(k);
          }
          ++k;
        }
        if (Text(k) == ":") {  // base-class list / enum underlying type
          while (k < end && Text(k) != "{" && Text(k) != ";") {
            ++k;
          }
        }
        if (Text(k) == "{") {
          std::size_t close = MatchForward(toks_, k, "{", "}");
          if (close == std::string::npos) {
            return;
          }
          if (!is_enum) {
            WalkScope(k + 1, close - 1, name, false);
          }
          i = close;
          // The decl may continue ("} g_instance;"): keep decl_start so a
          // trailing variable of an anonymous struct is still seen.
          continue;
        }
        i = decl_start = (Text(k) == ";" ? k + 1 : k);
        continue;
      }
      if (t == "template" && Text(i + 1) == "<") {
        std::size_t after = MatchAngles(toks_, i + 1);
        if (after == std::string::npos) {
          return;
        }
        i = after;
        continue;
      }
      if (t == "{") {
        // Brace not owned by a recognized construct: either a brace-init of
        // a namespace-scope variable or something we skip wholesale.
        if (at_namespace) {
          MaybeRecordMutableGlobal(decl_start, i);
        }
        std::size_t close = MatchForward(toks_, i, "{", "}");
        if (close == std::string::npos) {
          return;
        }
        i = decl_start = close;
        continue;
      }
      if (t == "using" || t == "typedef") {
        while (i < end && Text(i) != ";") {
          ++i;
        }
        decl_start = ++i;
        continue;
      }
      // Function candidate: identifier (possibly A::B-qualified) followed
      // by '(' — unless an '=' already appeared in this declaration
      // (then it is an initializer call, not a declarator).
      if ((std::isalpha(static_cast<unsigned char>(t[0])) != 0 || t[0] == '_') &&
          Keywords().count(t) == 0 && Text(i - 1) != "~") {
        bool saw_eq = false;
        for (std::size_t k = decl_start; k < i; ++k) {
          if (Text(k) == "=") {
            saw_eq = true;
            break;
          }
        }
        std::size_t chain_end = i;  // last ident of the qualified chain
        std::vector<std::string> chain = {t};
        while (Text(chain_end + 1) == ":" && Text(chain_end + 2) == ":") {
          const std::string& next = Text(chain_end + 3);
          if (next.empty() ||
              (std::isalpha(static_cast<unsigned char>(next[0])) == 0 && next[0] != '_') ||
              Keywords().count(next) > 0) {
            break;
          }
          chain.push_back(next);
          chain_end += 3;
        }
        if (!saw_eq && Text(chain_end + 1) == "(") {
          std::size_t resume;
          if (TryParseFunction(decl_start, i, chain, chain_end + 1, class_name, &resume)) {
            i = decl_start = resume;
            continue;
          }
        }
      }
      ++i;
    }
  }

  // Parses a function declarator whose parameter list opens at `paren`.
  // On success records a FunctionInfo (and parses the body when present)
  // and sets *resume to the first token after the declaration.
  bool TryParseFunction(std::size_t decl_start, std::size_t name_start,
                        const std::vector<std::string>& chain, std::size_t paren,
                        const std::string& class_name, std::size_t* resume) {
    std::size_t after_params = MatchForward(toks_, paren, "(", ")");
    if (after_params == std::string::npos) {
      return false;
    }
    // Scan declarator suffix: qualifiers, trailing return, init list.
    std::size_t k = after_params;
    bool has_body = false;
    std::size_t body_open = 0;
    for (int guard = 0; guard < 64 && k < toks_.size(); ++guard) {
      const std::string& t = Text(k);
      if (t == "{") {
        has_body = true;
        body_open = k;
        break;
      }
      if (t == ";") {
        break;
      }
      if (t == "=") {
        // "= default;", "= delete;", or "= 0;" (number tokens are dropped,
        // leaving "= ;"): all declarations without a body.
        if (Text(k + 1) == "default" || Text(k + 1) == "delete" || Text(k + 1) == ";") {
          k += 1;
          continue;
        }
        return false;
      }
      if (t == ":" && Text(k + 1) != ":") {
        // Constructor initializer list: ident followed by (...) or {...}
        // groups, comma-separated, until the body brace.
        ++k;
        while (k < toks_.size()) {
          if (Text(k) == "{" && !(k > 0 && (std::isalpha(static_cast<unsigned char>(
                                                Text(k - 1)[0])) != 0 ||
                                            Text(k - 1)[0] == '_'))) {
            break;
          }
          if (Text(k) == "(") {
            k = MatchForward(toks_, k, "(", ")");
          } else if (Text(k) == "{") {
            k = MatchForward(toks_, k, "{", "}");
          } else {
            ++k;
          }
          if (k == std::string::npos) {
            return false;
          }
        }
        continue;
      }
      if (t == "<") {
        std::size_t after = MatchAngles(toks_, k);
        if (after == std::string::npos) {
          return false;
        }
        k = after;
        continue;
      }
      if (t == "const" || t == "noexcept" || t == "override" || t == "final" || t == "&" ||
          t == "*" || t == "-" || t == ">" || t == "(" || t == ")" ||
          (std::isalpha(static_cast<unsigned char>(t[0])) != 0 || t[0] == '_')) {
        if (t == "(") {
          k = MatchForward(toks_, k, "(", ")");
          if (k == std::string::npos) {
            return false;
          }
          continue;
        }
        ++k;
        continue;
      }
      return false;
    }
    if (!has_body && Text(k) != ";") {
      return false;
    }

    FunctionInfo fn;
    fn.name = chain.back();
    if (chain.size() > 1) {
      std::string q;
      for (const std::string& part : chain) {
        q += (q.empty() ? "" : "::") + part;
      }
      fn.qualified = q;
    } else if (!class_name.empty()) {
      fn.qualified = class_name + "::" + fn.name;
    } else {
      fn.qualified = fn.name;
    }
    fn.line = Line(name_start);
    fn.has_body = has_body;
    fn.param_count = CountParams(paren, after_params);
    // Canonical return type: declaration tokens before the name, minus
    // template heads, specifiers, and attributes. Constructors (name ==
    // enclosing class, empty prefix) end up with an empty return type.
    std::size_t rt = decl_start;
    std::string return_type;
    while (rt < name_start) {
      if (Text(rt) == "template" && Text(rt + 1) == "<") {
        std::size_t after = MatchAngles(toks_, rt + 1);
        if (after == std::string::npos) {
          break;
        }
        rt = after;
        continue;
      }
      if (!IsSpecifier(Text(rt))) {
        return_type += (return_type.empty() ? "" : " ") + Text(rt);
      }
      ++rt;
    }
    fn.return_type = return_type;

    fns_.push_back(std::move(fn));
    std::size_t fn_index = fns_.size() - 1;
    if (has_body) {
      *resume = ParseBody(body_open, fn_index);
    } else {
      *resume = (Text(k) == ";") ? k + 1 : k;
    }
    return true;
  }

  // Top-level parameter count of the list spanning tokens[paren] == "(" to
  // tokens[after_params - 1] == ")". Template-argument commas are skipped;
  // a lone "void" counts as zero.
  int CountParams(std::size_t paren, std::size_t after_params) const {
    std::size_t last = after_params - 1;  // index of ")"
    if (last <= paren + 1) {
      return 0;
    }
    if (last == paren + 2 && Text(paren + 1) == "void") {
      return 0;
    }
    int depth = 0;
    int commas = 0;
    for (std::size_t q = paren + 1; q < last; ++q) {
      const std::string& t = Text(q);
      if (t == "(" || t == "[" || t == "{") {
        ++depth;
      } else if (t == ")" || t == "]" || t == "}") {
        --depth;
      } else if (t == "<") {
        std::size_t after = MatchAngles(toks_, q);
        if (after != std::string::npos && after <= last) {
          q = after - 1;
        }
      } else if (t == "," && depth == 0) {
        ++commas;
      }
    }
    return commas + 1;
  }

  // Namespace-scope variable without const/constexpr in [begin, end):
  // records the declared name into mutable_globals. Declarations containing
  // '(' (functions, function pointers) or type-introducing keywords are
  // skipped; the name is the last identifier before '=', '{', '[' or end.
  void MaybeRecordMutableGlobal(std::size_t begin, std::size_t end) {
    std::string name;
    for (std::size_t k = begin; k < end; ++k) {
      const std::string& t = Text(k);
      if (t == "const" || t == "constexpr" || t == "(" || t == "using" || t == "typedef" ||
          t == "operator" || t == "friend" || t == "template" || t == "class" || t == "struct" ||
          t == "enum" || t == "union" || t == "namespace") {
        return;
      }
      if (t == "=" || t == "{" || t == "[") {
        break;
      }
      if (std::isalpha(static_cast<unsigned char>(t[0])) != 0 || t[0] == '_') {
        if (Keywords().count(t) == 0 || t == "auto") {
          name = t;
        }
      }
    }
    if (!name.empty() && name != "auto") {
      file_->mutable_globals.insert(name);
    }
  }

  // ---- function bodies ----

  struct ParenCtx {
    std::string callee;  // non-empty when the '(' follows a callable ident
    bool control = false;
  };

  // Walks a body starting at tokens[open] == "{" attributing calls, writes
  // and var events to fns_[fn_index]; returns the index past the matching
  // closing brace.
  std::size_t ParseBody(std::size_t open, std::size_t fn_index) {
    int depth = 0;
    bool stmt_start = true;
    std::vector<ParenCtx> parens;
    // Guard objects alive in enclosing scopes: (declaration depth, index
    // into fn.locks). Each ParseBody invocation — including a nested
    // lambda's — tracks its own stack: a guard held where a lambda is
    // *defined* does not cover the lambda's later execution.
    std::vector<std::pair<int, std::size_t>> lock_stack;
    std::vector<std::string> held_now;
    std::size_t i = open + 1;
    ++depth;
    while (i < toks_.size()) {
      const std::string& t = Text(i);
      const std::string& prev = Text(i - 1);

      if (t == "{") {
        ++depth;
        stmt_start = true;
        ++i;
        continue;
      }
      if (t == "}") {
        --depth;
        while (!lock_stack.empty() && lock_stack.back().first > depth) {
          fns_[fn_index].locks[lock_stack.back().second].end_line = Line(i);
          lock_stack.pop_back();
          held_now.pop_back();
        }
        if (depth == 0) {
          return i + 1;
        }
        stmt_start = true;
        ++i;
        continue;
      }
      if (t == ";") {
        stmt_start = parens.empty();
        ++i;
        continue;
      }
      if (t == "else" || t == "do") {
        stmt_start = true;
        ++i;
        continue;
      }
      if (t == "(") {
        ParenCtx ctx;
        if (IsControlKeyword(prev)) {
          ctx.control = true;
        } else if (!prev.empty() &&
                   (std::isalpha(static_cast<unsigned char>(prev[0])) != 0 || prev[0] == '_') &&
                   Keywords().count(prev) == 0) {
          ctx.callee = prev;
        }
        parens.push_back(ctx);
        stmt_start = false;
        ++i;
        continue;
      }
      if (t == ")") {
        bool was_control = false;
        if (!parens.empty()) {
          was_control = parens.back().control;
          parens.pop_back();
        }
        stmt_start = was_control;
        ++i;
        continue;
      }
      if (t == "[") {
        std::size_t resume;
        if (Text(i + 1) != "[" && IsLambdaPosition(prev) &&
            TryParseLambda(i, fn_index, parens, &resume)) {
          i = resume;
          stmt_start = false;
          continue;
        }
        ++i;
        stmt_start = false;
        continue;
      }
      if (t == "*") {
        // Prefix dereference of a Result variable: *res at an expression
        // start position.
        if (prev == "(" || prev == "=" || prev == "," || prev == "return" || prev == ";" ||
            prev == "{" || prev == "<") {
          const std::string& v = Text(i + 1);
          if (!v.empty() && (std::isalpha(static_cast<unsigned char>(v[0])) != 0 || v[0] == '_') &&
              Keywords().count(v) == 0) {
            fns_[fn_index].var_events.push_back(
                {VarEvent::Kind::kUnwrap, v, "", Line(i + 1)});
          }
        }
        ++i;
        stmt_start = false;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(t[0])) != 0 || t[0] == '_') {
        if (t == "static") {
          RecordStaticLocal(i, fn_index);
        } else if (t == "lock_guard" || t == "unique_lock" || t == "scoped_lock") {
          std::size_t resume;
          if (TryParseLockSite(i, fn_index, depth, &lock_stack, &held_now, &resume)) {
            i = resume;
            stmt_start = false;
            continue;
          }
        } else if (t == "Result" && Text(i + 1) == "<") {
          std::size_t after = MatchAngles(toks_, i + 1);
          if (after != std::string::npos) {
            const std::string& v = Text(after);
            if (!v.empty() &&
                (std::isalpha(static_cast<unsigned char>(v[0])) != 0 || v[0] == '_')) {
              fns_[fn_index].var_events.push_back(
                  {VarEvent::Kind::kResultDecl, v, "", Line(after)});
              fns_[fn_index].locals.insert(v);
            }
          }
        } else if (t == "auto") {
          RecordAutoCallDecl(i, fn_index);
        } else if (Keywords().count(t) == 0) {
          HandleIdent(i, fn_index, parens, stmt_start);
        }
        stmt_start = false;
        ++i;
        continue;
      }
      stmt_start = false;
      ++i;
    }
    return toks_.size();
  }

  static bool IsLambdaPosition(const std::string& prev) {
    return prev.empty() || prev == "(" || prev == "," || prev == "=" || prev == "{" ||
           prev == ";" || prev == "return" || prev == ":" || prev == "?" || prev == "&" ||
           prev == "|" || prev == "!" || prev == "<" || prev == ">";
  }

  // A std::lock_guard/unique_lock/scoped_lock declaration whose type token
  // is at tokens[i]: records one LockSite per mutex argument (tag arguments
  // dropped, defer_lock skips the whole site) and pushes them onto the
  // active stack at the current depth. The guard is modeled as held until
  // its declaring scope closes — early unlock()/cv wait releases are inside
  // the documented false-negative envelope.
  bool TryParseLockSite(std::size_t i, std::size_t fn_index, int depth,
                        std::vector<std::pair<int, std::size_t>>* lock_stack,
                        std::vector<std::string>* held_now, std::size_t* resume) {
    std::size_t k = i + 1;
    if (Text(k) == "<") {
      k = MatchAngles(toks_, k);
      if (k == std::string::npos) {
        return false;
      }
    }
    const std::string& var = Text(k);
    if (var.empty() || (std::isalpha(static_cast<unsigned char>(var[0])) == 0 && var[0] != '_') ||
        Keywords().count(var) > 0) {
      return false;
    }
    ++k;
    if (Text(k) != "(") {
      return false;
    }
    std::size_t close = MatchForward(toks_, k, "(", ")");
    if (close == std::string::npos) {
      return false;
    }
    // Split the argument list on top-level commas; each argument becomes
    // the dotted path of its identifier tokens ("engine_->mu_" -> stripped
    // tokens "engine_ - > mu_" -> "engine_.mu_").
    std::vector<std::string> mutexes;
    std::string current;
    bool deferred = false;
    int d = 0;
    auto flush = [&]() {
      if (current.empty()) {
        return;
      }
      std::size_t dot = current.rfind('.');
      std::string last = (dot == std::string::npos) ? current : current.substr(dot + 1);
      if (last == "defer_lock") {
        deferred = true;
      } else if (last != "adopt_lock" && last != "try_to_lock") {
        mutexes.push_back(current);
      }
      current.clear();
    };
    for (std::size_t q = k + 1; q + 1 < close; ++q) {
      const std::string& at = Text(q);
      if (at == "(" || at == "[" || at == "{") {
        ++d;
      } else if (at == ")" || at == "]" || at == "}") {
        --d;
      } else if (at == "," && d == 0) {
        flush();
      } else if (d == 0 &&
                 (std::isalpha(static_cast<unsigned char>(at[0])) != 0 || at[0] == '_')) {
        current += (current.empty() ? "" : ".") + at;
      }
    }
    flush();
    FunctionInfo& fn = fns_[fn_index];
    fn.locals.insert(var);
    if (deferred || mutexes.empty()) {
      *resume = close;  // consumed the declaration; nothing acquired
      return true;
    }
    // Siblings of one scoped_lock share a group id (acquired atomically: no
    // ordering pair between them) and snapshot the held list from before
    // the site, so they do not appear in each other's held vectors.
    std::vector<std::string> base_held = *held_now;
    int group = lock_group_counter_++;
    for (const std::string& m : mutexes) {
      if (std::find(held_now->begin(), held_now->end(), m) != held_now->end()) {
        continue;  // re-acquisition of a held mutex: keep the outer site
      }
      LockSite site;
      site.mutex = m;
      site.line = Line(i);
      site.held = base_held;
      site.group = group;
      fn.locks.push_back(std::move(site));
      lock_stack->push_back({depth, fn.locks.size() - 1});
      held_now->push_back(m);
    }
    *resume = close;
    return true;
  }

  // Declaration of a function-local static without const/constexpr.
  void RecordStaticLocal(std::size_t i, std::size_t fn_index) {
    std::string name;
    for (std::size_t k = i + 1; k < toks_.size() && k < i + 16; ++k) {
      const std::string& t = Text(k);
      if (t == "const" || t == "constexpr") {
        return;
      }
      if (t == "=" || t == "{" || t == ";" || t == "(") {
        break;
      }
      if (t == "<") {
        std::size_t after = MatchAngles(toks_, k);
        if (after == std::string::npos) {
          return;
        }
        k = after - 1;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(t[0])) != 0 || t[0] == '_') {
        if (Keywords().count(t) == 0) {
          name = t;
        }
      }
    }
    if (!name.empty()) {
      WriteSite site;
      site.name = name;
      site.line = Line(i);
      site.kind = WriteSite::Kind::kStaticLocalDecl;
      fns_[fn_index].writes.push_back(std::move(site));
      fns_[fn_index].locals.insert(name);
    }
  }

  // auto v = [chain.]Callee(...) — records a kAutoCallDecl event so the
  // pass can mark v as a Result variable when Callee returns Result.
  void RecordAutoCallDecl(std::size_t i, std::size_t fn_index) {
    const std::string& var = Text(i + 1);
    if (var.empty() || (std::isalpha(static_cast<unsigned char>(var[0])) == 0 && var[0] != '_') ||
        Keywords().count(var) > 0) {
      return;
    }
    fns_[fn_index].locals.insert(var);
    if (Text(i + 2) != "=") {
      return;
    }
    std::string callee;
    for (std::size_t k = i + 3; k < toks_.size() && k < i + 24; ++k) {
      const std::string& t = Text(k);
      if (t == ";" || t == "[") {
        break;
      }
      if (t == "(") {
        if (!callee.empty()) {
          fns_[fn_index].var_events.push_back(
              {VarEvent::Kind::kAutoCallDecl, var, callee, Line(i + 1)});
        }
        return;
      }
      if (std::isalpha(static_cast<unsigned char>(t[0])) != 0 || t[0] == '_') {
        callee = t;
      } else if (t != "." && t != "-" && t != ">" && t != ":" && t != "&" && t != "*") {
        break;
      }
    }
  }

  // Parses a lambda whose intro bracket is at tokens[i]; returns false when
  // the bracket turns out to be a subscript.
  bool TryParseLambda(std::size_t i, std::size_t enclosing, const std::vector<ParenCtx>& parens,
                      std::size_t* resume) {
    std::size_t after_capture = MatchForward(toks_, i, "[", "]");
    if (after_capture == std::string::npos) {
      return false;
    }
    std::size_t k = after_capture;
    std::size_t param_open = std::string::npos;
    if (Text(k) == "(") {
      param_open = k;
      k = MatchForward(toks_, k, "(", ")");
      if (k == std::string::npos) {
        return false;
      }
    }
    for (int guard = 0; guard < 24; ++guard) {
      const std::string& t = Text(k);
      if (t == "{") {
        break;
      }
      if (t == "mutable" || t == "noexcept" || t == "-" || t == ">" || t == ":" || t == "*" ||
          t == "&" ||
          (!t.empty() && (std::isalpha(static_cast<unsigned char>(t[0])) != 0 || t[0] == '_'))) {
        ++k;
        continue;
      }
      if (t == "<") {
        std::size_t after = MatchAngles(toks_, k);
        if (after == std::string::npos) {
          return false;
        }
        k = after;
        continue;
      }
      return false;
    }
    if (Text(k) != "{") {
      return false;
    }

    FunctionInfo lambda;
    lambda.is_lambda = true;
    lambda.has_body = true;
    lambda.line = Line(i);
    // `auto name = [...]` names the lambda; otherwise it stays anonymous.
    if (Text(i - 1) == "=" && !Text(i - 2).empty() &&
        (std::isalpha(static_cast<unsigned char>(Text(i - 2)[0])) != 0 || Text(i - 2)[0] == '_')) {
      lambda.name = Text(i - 2);
    } else {
      lambda.name = "<lambda>";
    }
    lambda.qualified = fns_[enclosing].qualified + "::" + lambda.name;
    if (!parens.empty() && !parens.back().callee.empty()) {
      lambda.callback_of = parens.back().callee;
    }
    // Parse the capture list only now: a structured binding (`auto& [id,
    // job] : map`) bails above and must not leave capture state behind.
    ParseCaptures(i + 1, after_capture - 1, &lambda);
    if (param_open != std::string::npos) {
      RecordLambdaParams(param_open, &lambda);
    }
    fns_.push_back(std::move(lambda));
    std::size_t lambda_index = fns_.size() - 1;
    *resume = ParseBody(k, lambda_index);
    return true;
  }

  // tokens[begin, end) are the contents of a confirmed lambda's capture
  // brackets. Init-captures count by their introduced name; their
  // initializer expressions are skipped to the next top-level comma.
  void ParseCaptures(std::size_t begin, std::size_t end, FunctionInfo* lambda) {
    auto is_ident = [](const std::string& s) {
      return !s.empty() && (std::isalpha(static_cast<unsigned char>(s[0])) != 0 || s[0] == '_');
    };
    // Advances past an `= init` to the next top-level comma (or `end`).
    auto skip_init = [&](std::size_t c) {
      int d = 0;
      while (c < end) {
        const std::string& t = Text(c);
        if (t == "(" || t == "[" || t == "{") {
          ++d;
        } else if (t == ")" || t == "]" || t == "}") {
          --d;
        } else if (t == "," && d == 0) {
          break;
        }
        ++c;
      }
      return c;
    };
    std::size_t c = begin;
    while (c < end) {
      const std::string& t = Text(c);
      if (t == ",") {
        ++c;
      } else if (t == "&") {
        const std::string& next = Text(c + 1);
        if (c + 1 >= end || next == ",") {
          lambda->capture_default_ref = true;
          ++c;
        } else if (is_ident(next) && next != "this") {
          lambda->capture_refs.push_back(next);
          c += 2;
          if (c < end && Text(c) == "=") {
            c = skip_init(c);
          }
        } else {
          ++c;
        }
      } else if (t == "=") {
        lambda->capture_default_val = true;
        ++c;
      } else if (t == "this") {
        lambda->captures_this = true;
        ++c;
      } else if (t == "*" && Text(c + 1) == "this") {
        lambda->captures_this = true;
        c += 2;
      } else if (is_ident(t)) {
        lambda->capture_vals.push_back(t);
        ++c;
        if (c < end && Text(c) == "=") {
          c = skip_init(c);
        }
      } else {
        ++c;
      }
    }
  }

  // tokens[param_open] == "(" of a confirmed lambda: the last non-keyword
  // identifier of each top-level comma segment is a parameter name.
  void RecordLambdaParams(std::size_t param_open, FunctionInfo* lambda) {
    std::size_t close = MatchForward(toks_, param_open, "(", ")");
    if (close == std::string::npos) {
      return;
    }
    int d = 0;
    std::string name;
    for (std::size_t q = param_open + 1; q + 1 < close; ++q) {
      const std::string& t = Text(q);
      if (t == "(" || t == "[" || t == "{") {
        ++d;
      } else if (t == ")" || t == "]" || t == "}") {
        --d;
      } else if (t == "<") {
        std::size_t after = MatchAngles(toks_, q);
        if (after != std::string::npos && after <= close - 1) {
          q = after - 1;
        }
      } else if (t == "," && d == 0) {
        if (!name.empty()) {
          lambda->locals.insert(name);
        }
        name.clear();
      } else if (d == 0 && (std::isalpha(static_cast<unsigned char>(t[0])) != 0 || t[0] == '_') &&
                 Keywords().count(t) == 0) {
        name = t;
      } else if (t == "=" && d == 0) {
        // Default argument: the name seen so far is the parameter.
        if (!name.empty()) {
          lambda->locals.insert(name);
        }
        name.clear();
        while (q + 1 < close - 1 && !(Text(q + 1) == "," && d == 0)) {
          ++q;
        }
      }
    }
    if (!name.empty()) {
      lambda->locals.insert(name);
    }
  }

  // A non-keyword identifier inside a body: call sites, ok()/value()
  // events, whole-statement discards, and mutation sites.
  void HandleIdent(std::size_t i, std::size_t fn_index, const std::vector<ParenCtx>& parens,
                   bool stmt_start) {
    const std::string& t = Text(i);
    const std::string& prev = Text(i - 1);
    FunctionInfo& fn = fns_[fn_index];

    if (stmt_start && parens.empty()) {
      RecordDiscardedChain(i, fn_index);
    }

    if (Text(i + 1) == "(") {
      CallSite call;
      call.name = t;
      call.line = Line(i);
      // Explicit scope qualifier: the "Q" of Q::Name(...). Member-access
      // prefixes (., ->) leave it empty.
      if (prev == ":" && Text(i - 2) == ":") {
        const std::string& q = Text(i - 3);
        if (!q.empty() && (std::isalpha(static_cast<unsigned char>(q[0])) != 0 || q[0] == '_') &&
            Keywords().count(q) == 0) {
          call.qualifier = q;
        }
      }
      std::size_t close = MatchForward(toks_, i + 1, "(", ")");
      if (close != std::string::npos) {
        int depth = 0;
        int commas = 0;
        bool any_tok = false;
        bool uncertain = false;
        for (std::size_t k = i + 2; k + 1 < close; ++k) {
          const std::string& a = Text(k);
          any_tok = true;
          if (a == "(" || a == "[" || a == "{") {
            ++depth;
          } else if (a == ")" || a == "]" || a == "}") {
            --depth;
          } else if (a == "<" || a == ">") {
            // Template angles (or comparisons) make comma segmentation
            // unreliable; leave arg_count at "unknown".
            uncertain = true;
          } else if (a == "," && depth == 0) {
            ++commas;
          }
          if ((std::isalpha(static_cast<unsigned char>(a[0])) != 0 || a[0] == '_') &&
              Keywords().count(a) == 0) {
            call.arg_idents.push_back(a);
          }
        }
        if (!uncertain) {
          call.arg_count = any_tok ? commas + 1 : 0;
        }
        // Chained unwrap of a temporary: Callee(...).value().
        if (Text(close) == "." && Text(close + 1) == "value" && Text(close + 2) == "(") {
          fn.var_events.push_back({VarEvent::Kind::kUnwrap, "", t, Line(close + 1)});
        }
      }
      fn.calls.push_back(std::move(call));
    }

    if (Text(i + 1) == "." && Text(i + 2) == "ok" && Text(i + 3) == "(") {
      fn.var_events.push_back({VarEvent::Kind::kOkCheck, t, "", Line(i)});
    } else if (Text(i + 1) == "." && Text(i + 2) == "value" && Text(i + 3) == "(") {
      fn.var_events.push_back({VarEvent::Kind::kUnwrap, t, "", Line(i)});
    }

    // Mutation detection: a chain rooted at a *bare* identifier (or
    // this->member) ending in an assignment operator, ++/--, or a
    // mutating member call. Chains with an explicit object root other
    // than `this` are skipped: the root may be shard-local, and a
    // syntactic pass cannot tell (DESIGN.md §12 envelope).
    bool rooted_at_this = prev == ">" && Text(i - 2) == "-" && Text(i - 3) == "this";
    bool bare = prev != "." && !(prev == ">" && Text(i - 2) == "-") && prev != ":";
    if (!bare && !rooted_at_this) {
      return;
    }
    // Prefix increment/decrement. `++hits[i]` targets a subscripted slot.
    if ((prev == "+" && Text(i - 2) == "+") || (prev == "-" && Text(i - 2) == "-")) {
      RecordWrite(t, Line(i), rooted_at_this, /*via_arrow=*/false,
                  /*subscripted=*/Text(i + 1) == "[", /*last_method=*/"", fn_index);
      return;
    }
    // Walk the access chain: subscripts and member selections.
    std::size_t k = i + 1;
    bool chained = false;
    bool first_hop = true;
    bool via_arrow = false;
    bool subscripted = false;
    std::string last = t;
    for (int guard = 0; guard < 64; ++guard) {
      if (Text(k) == "[") {
        std::size_t after = MatchForward(toks_, k, "[", "]");
        if (after == std::string::npos) {
          return;
        }
        subscripted = true;
        first_hop = false;
        k = after;
        continue;
      }
      if (Text(k) == "." ||
          (Text(k) == "-" && Text(k + 1) == ">" &&
           (std::isalpha(static_cast<unsigned char>(Text(k + 2)[0])) != 0 ||
            Text(k + 2)[0] == '_'))) {
        bool arrow = Text(k) != ".";
        k += arrow ? 2 : 1;
        if (Text(k).empty() ||
            (std::isalpha(static_cast<unsigned char>(Text(k)[0])) == 0 && Text(k)[0] != '_')) {
          return;
        }
        if (first_hop && arrow) {
          via_arrow = true;
        }
        first_hop = false;
        chained = true;
        last = Text(k);
        ++k;
        continue;
      }
      break;
    }
    bool is_write = false;
    bool mutating_call = false;
    const std::string& op = Text(k);
    if (op == "=" && Text(k + 1) != "=" && prev != "<" && prev != ">" && prev != "!" &&
        prev != "=") {
      // Exclude declarations ("int x = ...", "Region& r = ...", "Foo<T>* p
      // = ..."): the previous tokens then spell a type, not an expression.
      bool decl_like = !chained && IsTypeLikePrev(i);
      is_write = !decl_like;
    } else if ((op == "+" || op == "-" || op == "*" || op == "/" || op == "%" || op == "&" ||
                op == "|" || op == "^") &&
               Text(k + 1) == "=") {
      is_write = true;
    } else if ((op == "<" && Text(k + 1) == "<" && Text(k + 2) == "=") ||
               (op == ">" && Text(k + 1) == ">" && Text(k + 2) == "=")) {
      is_write = true;
    } else if ((op == "+" && Text(k + 1) == "+") || (op == "-" && Text(k + 1) == "-")) {
      is_write = true;
    } else if (chained && MutatingMethods().count(last) > 0 && Text(k) == "(") {
      is_write = true;
      mutating_call = true;
    }
    // Local declarations feed the locals set: `Type x = ...;`, `Type x;`,
    // `Region& r : list` (range-for). Writes to these names are
    // shard-private for the capture heuristic.
    if (!chained && IsTypeLikePrev(i) &&
        (op == ";" || op == "{" || op == ":" || (op == "=" && Text(k + 1) != "="))) {
      fn.locals.insert(t);
    }
    if (is_write) {
      RecordWrite(t, Line(i), rooted_at_this, via_arrow, subscripted,
                  mutating_call ? last : "", fn_index);
    }
  }

  // True when the tokens before tokens[i] read like a type: an identifier
  // (a type name or type keyword, not a control/expression keyword), a
  // closing template angle, or &/* preceded by either.
  bool IsTypeLikePrev(std::size_t i) const {
    auto ident_like = [](const std::string& s) {
      return !s.empty() && (std::isalpha(static_cast<unsigned char>(s[0])) != 0 || s[0] == '_');
    };
    static const std::set<std::string> kTypeKeywords = {
        "auto", "bool", "char",  "int",    "unsigned", "long",
        "short", "float", "double", "const", "signed"};
    const std::string& prev = Text(i - 1);
    if (ident_like(prev)) {
      return Keywords().count(prev) == 0 || kTypeKeywords.count(prev) > 0;
    }
    if (prev == ">") {
      return true;
    }
    if (prev == "&" || prev == "*") {
      const std::string& p2 = Text(i - 2);
      return (ident_like(p2) && (Keywords().count(p2) == 0 || kTypeKeywords.count(p2) > 0)) ||
             p2 == ">";
    }
    return false;
  }

  void RecordWrite(const std::string& root, int line, bool rooted_at_this, bool via_arrow,
                   bool subscripted, const std::string& last_method, std::size_t fn_index) {
    WriteSite site;
    site.name = root;
    site.line = line;
    site.kind = (rooted_at_this || EndsWithUnderscore(root)) ? WriteSite::Kind::kMember
                                                             : WriteSite::Kind::kPlain;
    // A mutating chain rooted at a plain local object (res.x.push_back) is
    // recorded as kPlain so the pass can still catch mutable globals.
    site.via_arrow = via_arrow;
    site.subscripted = subscripted;
    site.last_method = last_method;
    fns_[fn_index].writes.push_back(std::move(site));
  }

  // `A::B.c->Submit(x);` as a whole statement: records the final callee
  // whose call result is discarded.
  void RecordDiscardedChain(std::size_t i, std::size_t fn_index) {
    std::size_t k = i;
    for (int guard = 0; guard < 64; ++guard) {
      const std::string& t = Text(k);
      if (t.empty() || (std::isalpha(static_cast<unsigned char>(t[0])) == 0 && t[0] != '_') ||
          Keywords().count(t) > 0) {
        return;
      }
      std::string name = t;
      ++k;
      while (Text(k) == ":" && Text(k + 1) == ":") {
        if (Text(k + 2).empty()) {
          return;
        }
        name = Text(k + 2);
        k += 3;
      }
      if (Text(k) == "(") {
        std::size_t after = MatchForward(toks_, k, "(", ")");
        if (after == std::string::npos) {
          return;
        }
        if (Text(after) == ";") {
          CallSite discarded;
          discarded.name = name;
          discarded.line = Line(i);
          fns_[fn_index].discarded_calls.push_back(std::move(discarded));
          return;
        }
        k = after;
      }
      if (Text(k) == ".") {
        ++k;
        continue;
      }
      if (Text(k) == "-" && Text(k + 1) == ">") {
        k += 2;
        continue;
      }
      return;
    }
  }

  SourceFile* file_;
  std::vector<Token> toks_;
  std::vector<FunctionInfo> fns_;
  int lock_group_counter_ = 0;
};

// ---------------------------------------------------- error-discipline ----

struct ReturnKinds {
  bool any_status = false;  // some decl/def with this name returns Status
  bool any_result = false;  // ... returns Result<T>
  bool any_other = false;   // ... returns something else
};

bool TypeMentions(const std::string& return_type, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = return_type.find(word, pos)) != std::string::npos) {
    bool left = pos == 0 || return_type[pos - 1] == ' ';
    std::size_t after = pos + word.size();
    bool right = after == return_type.size() || return_type[after] == ' ';
    if (left && right) {
      return true;
    }
    pos = after;
  }
  return false;
}

std::map<std::string, ReturnKinds> BuildReturnTable(const Project& project) {
  std::map<std::string, ReturnKinds> table;
  for (const auto& [path, file] : project.files()) {
    for (const FunctionInfo& fn : file.functions) {
      if (fn.is_lambda || fn.return_type.empty()) {
        continue;
      }
      ReturnKinds& kinds = table[fn.name];
      if (TypeMentions(fn.return_type, "Status")) {
        kinds.any_status = true;
      } else if (TypeMentions(fn.return_type, "Result")) {
        kinds.any_result = true;
      } else {
        kinds.any_other = true;
      }
    }
  }
  return table;
}

bool HasPathPrefix(const std::string& path, const std::string& prefix) {
  if (prefix.empty() || path.size() < prefix.size() ||
      path.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}

bool UnderAny(const std::string& path, const std::vector<std::string>& prefixes) {
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&](const std::string& p) { return HasPathPrefix(path, p); });
}

// "Try" matches "TryLock" and "Try" but not "Trying": the character after
// the verb must not be lowercase.
bool StartsWithVerb(const std::string& name, const std::string& verb) {
  if (name.size() < verb.size() || name.compare(0, verb.size(), verb) != 0) {
    return false;
  }
  if (name.size() == verb.size()) {
    return true;
  }
  return std::islower(static_cast<unsigned char>(name[verb.size()])) == 0;
}

}  // namespace

void BuildFunctionModel(SourceFile* file) { ModelBuilder(file).Build(); }

std::vector<Finding> RunErrorDisciplinePass(const Project& project, const Config& config) {
  std::vector<Finding> findings;
  const std::map<std::string, ReturnKinds> table = BuildReturnTable(project);

  auto status_only = [&](const std::string& name) {
    auto it = table.find(name);
    return it != table.end() && (it->second.any_status || it->second.any_result) &&
           !it->second.any_other;
  };
  auto result_only = [&](const std::string& name) {
    auto it = table.find(name);
    return it != table.end() && it->second.any_result && !it->second.any_other &&
           !it->second.any_status;
  };

  for (const auto& [path, file] : project.files()) {
    for (const FunctionInfo& fn : file.functions) {
      // discarded-status: a whole-statement call to a function every
      // declaration of which returns Status/Result.
      for (const CallSite& call : fn.discarded_calls) {
        if (status_only(call.name)) {
          findings.push_back(
              {"discarded-status", path, call.line,
               "result of '" + call.name +
                   "' (returns Status/Result) is discarded; check it, or cast to (void) / "
                   "suppress for intentional fire-and-forget",
               call.name});
        }
      }

      // unchecked-result-unwrap: replay the Status/Result flow events.
      std::set<std::string> result_vars;
      std::set<std::string> checked;
      for (const VarEvent& ev : fn.var_events) {
        switch (ev.kind) {
          case VarEvent::Kind::kResultDecl:
            result_vars.insert(ev.var);
            checked.erase(ev.var);
            break;
          case VarEvent::Kind::kAutoCallDecl:
            if (result_only(ev.callee)) {
              result_vars.insert(ev.var);
              checked.erase(ev.var);
            }
            break;
          case VarEvent::Kind::kOkCheck:
            checked.insert(ev.var);
            break;
          case VarEvent::Kind::kUnwrap:
            if (ev.var.empty()) {
              if (result_only(ev.callee)) {
                findings.push_back({"unchecked-result-unwrap", path, ev.line,
                                    "unwrap of temporary Result from '" + ev.callee +
                                        "()' without an ok() check",
                                    ev.callee});
              }
            } else if (result_vars.count(ev.var) > 0 && checked.count(ev.var) == 0) {
              findings.push_back({"unchecked-result-unwrap", path, ev.line,
                                  "unwrap of Result '" + ev.var +
                                      "' is not dominated by an ok() check on the same variable",
                                  ev.var});
            }
            break;
        }
      }

      // raw-error-return: fallible-verb functions on status-discipline
      // paths must not signal failure through bool/int.
      if (fn.has_body && !fn.is_lambda && UnderAny(path, config.status_paths) &&
          (fn.return_type == "bool" || fn.return_type == "int")) {
        for (const std::string& verb : config.fallible_verbs) {
          if (StartsWithVerb(fn.name, verb)) {
            findings.push_back({"raw-error-return", path, fn.line,
                                "'" + fn.qualified + "' returns raw " + fn.return_type +
                                    " on a fallible path; return Status (or Result<T>) so "
                                    "callers can propagate and retry",
                                fn.qualified});
            break;
          }
        }
      }
    }
  }
  return findings;
}

}  // namespace mtm::analyze
