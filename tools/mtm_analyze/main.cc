// mtm_analyze command-line driver. See mtm_analyze.h for the pass
// catalogue and suppression syntax.
//
// Usage:
//   mtm_analyze --root DIR [--compdb build/compile_commands.json]
//               [--config tools/mtm_analyze/layers.toml]
//               [--concurrency tools/mtm_analyze/concurrency.toml]
//               [--json PATH] [--check-system-includes] [--stats]
//               [--fix [--check]] [extra-root-relative-files...]
//
// Seeds the project from the compilation database (plus any positional
// files), closes over project includes, runs all passes, and prints
// findings in mtm_lint format. Exit status 0 iff the tree is clean.
//
// --fix rewrites machine-applicable include-graph findings in place and
// exits 0 when edits were applied cleanly; --fix --check writes nothing and
// exits 1 iff the autofixer would change any file (CI uses this to prove
// the tree is fix-clean).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "tools/mtm_analyze/mtm_analyze.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

std::string ArgValue(const std::string& arg, const std::string& name) {
  std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) == 0) {
    return arg.substr(prefix.size());
  }
  return "";
}

// Merges a TOML config file into `config`; returns false after printing a
// diagnostic on failure.
bool LoadConfigFile(const std::string& path, mtm::analyze::Config* config) {
  std::string text;
  std::string error;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "mtm_analyze: cannot read %s\n", path.c_str());
    return false;
  }
  if (!mtm::analyze::ParseConfig(text, config, &error)) {
    std::fprintf(stderr, "mtm_analyze: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string compdb;
  std::string config_path;
  std::string concurrency_path;
  std::string json_path;
  bool fix = false;
  bool check = false;
  bool check_system_includes = false;
  bool stats = false;
  std::vector<std::string> seeds;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (!(value = ArgValue(arg, "root")).empty()) {
      root = value;
    } else if (!(value = ArgValue(arg, "compdb")).empty()) {
      compdb = value;
    } else if (!(value = ArgValue(arg, "config")).empty()) {
      config_path = value;
    } else if (!(value = ArgValue(arg, "concurrency")).empty()) {
      concurrency_path = value;
    } else if (!(value = ArgValue(arg, "json")).empty()) {
      json_path = value;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--check-system-includes") {
      check_system_includes = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--help") {
      std::printf("usage: mtm_analyze --root=DIR [--compdb=PATH] [--config=PATH] "
                  "[--concurrency=PATH] [--json=PATH] [--check-system-includes] "
                  "[--stats] [--fix [--check]] [files...]\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "mtm_analyze: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      seeds.push_back(arg);
    }
  }
  if (check && !fix) {
    std::fprintf(stderr, "mtm_analyze: --check requires --fix\n");
    return 2;
  }
  while (!root.empty() && root.back() == '/') {
    root.pop_back();
  }
  // Database entries are absolute, so `--root=.` must become absolute too
  // before the prefix match below can relativize them.
  std::error_code ec;
  std::string abs_root = std::filesystem::canonical(root, ec).string();
  if (ec) {
    std::fprintf(stderr, "mtm_analyze: cannot resolve root %s\n", root.c_str());
    return 2;
  }
  root = abs_root;

  std::vector<std::string> include_dirs;
  if (!compdb.empty()) {
    std::string text;
    if (!ReadFile(compdb, &text)) {
      std::fprintf(stderr, "mtm_analyze: cannot read %s\n", compdb.c_str());
      return 2;
    }
    mtm::analyze::CompileDb db = mtm::analyze::ParseCompileDb(text);
    for (std::string file : db.files) {
      // Database entries are usually absolute; make them root-relative and
      // drop anything outside the tree (system or generated sources).
      if (file.rfind(root + "/", 0) == 0) {
        file = file.substr(root.size() + 1);
      } else if (!file.empty() && file[0] == '/') {
        continue;
      }
      seeds.push_back(file);
    }
    // -I/-isystem directories inside the tree resolve angle includes into
    // project files; external directories are dropped (their headers stay
    // opaque system includes).
    for (std::string dir : db.include_dirs) {
      if (dir == root) {
        include_dirs.push_back("");
      } else if (dir.rfind(root + "/", 0) == 0) {
        include_dirs.push_back(dir.substr(root.size() + 1));
      }
    }
  }
  if (seeds.empty()) {
    std::fprintf(stderr, "mtm_analyze: no input files (use --compdb or list files)\n");
    return 2;
  }

  mtm::analyze::Config config;
  if (config_path.empty()) {
    std::ifstream probe(root + "/tools/mtm_analyze/layers.toml");
    if (probe) {
      config_path = root + "/tools/mtm_analyze/layers.toml";
    }
  }
  if (concurrency_path.empty()) {
    std::ifstream probe(root + "/tools/mtm_analyze/concurrency.toml");
    if (probe) {
      concurrency_path = root + "/tools/mtm_analyze/concurrency.toml";
    }
  }
  if (!config_path.empty() && !LoadConfigFile(config_path, &config)) {
    return 2;
  }
  if (!concurrency_path.empty() && !LoadConfigFile(concurrency_path, &config)) {
    return 2;
  }
  config.check_system_includes = check_system_includes;

  mtm::analyze::Project project = mtm::analyze::Project::Load(root, seeds, include_dirs);
  mtm::analyze::AnalyzeStats analyze_stats;
  std::vector<mtm::analyze::Finding> findings =
      mtm::analyze::Analyze(project, config, stats ? &analyze_stats : nullptr);

  if (fix) {
    std::map<std::string, std::string> fixed =
        mtm::analyze::ComputeFixedContents(project, findings);
    if (check) {
      for (const auto& [path, unused] : fixed) {
        std::printf("%s: would be rewritten by --fix\n", path.c_str());
      }
      std::printf("mtm_analyze: --fix --check: %zu file(s) would change\n", fixed.size());
      return fixed.empty() ? 0 : 1;
    }
    for (const auto& [path, contents] : fixed) {
      std::ofstream out(root + "/" + path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "mtm_analyze: cannot write %s\n", path.c_str());
        return 2;
      }
      out << contents;
      std::printf("%s: fixed\n", path.c_str());
    }
    std::printf("mtm_analyze: --fix: %zu file(s) rewritten\n", fixed.size());
    return 0;
  }

  std::fputs(mtm::analyze::FormatText(findings).c_str(), stdout);
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    out << mtm::analyze::FormatJson(findings, project.files().size());
  }
  if (stats) {
    std::fputs(mtm::analyze::FormatStats(analyze_stats).c_str(), stdout);
  }
  std::printf("mtm_analyze: %zu files checked, %zu finding(s)\n", project.files().size(),
              findings.size());
  return findings.empty() ? 0 : 1;
}
