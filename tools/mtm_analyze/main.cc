// mtm_analyze command-line driver. See mtm_analyze.h for the pass
// catalogue and suppression syntax.
//
// Usage:
//   mtm_analyze --root DIR [--compdb build/compile_commands.json]
//               [--config tools/mtm_analyze/layers.toml] [--json PATH]
//               [extra-root-relative-files...]
//
// Seeds the project from the compilation database (plus any positional
// files), closes over project includes, runs all passes, and prints
// findings in mtm_lint format. Exit status 0 iff the tree is clean.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/mtm_analyze/mtm_analyze.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

std::string ArgValue(const std::string& arg, const std::string& name) {
  std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) == 0) {
    return arg.substr(prefix.size());
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string compdb;
  std::string config_path;
  std::string json_path;
  std::vector<std::string> seeds;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (!(value = ArgValue(arg, "root")).empty()) {
      root = value;
    } else if (!(value = ArgValue(arg, "compdb")).empty()) {
      compdb = value;
    } else if (!(value = ArgValue(arg, "config")).empty()) {
      config_path = value;
    } else if (!(value = ArgValue(arg, "json")).empty()) {
      json_path = value;
    } else if (arg == "--help") {
      std::printf("usage: mtm_analyze --root=DIR [--compdb=PATH] [--config=PATH] "
                  "[--json=PATH] [files...]\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "mtm_analyze: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      seeds.push_back(arg);
    }
  }
  while (!root.empty() && root.back() == '/') {
    root.pop_back();
  }
  // Database entries are absolute, so `--root=.` must become absolute too
  // before the prefix match below can relativize them.
  std::error_code ec;
  std::string abs_root = std::filesystem::canonical(root, ec).string();
  if (ec) {
    std::fprintf(stderr, "mtm_analyze: cannot resolve root %s\n", root.c_str());
    return 2;
  }
  root = abs_root;

  if (!compdb.empty()) {
    std::string text;
    if (!ReadFile(compdb, &text)) {
      std::fprintf(stderr, "mtm_analyze: cannot read %s\n", compdb.c_str());
      return 2;
    }
    for (std::string file : mtm::analyze::ParseCompileCommands(text)) {
      // Database entries are usually absolute; make them root-relative and
      // drop anything outside the tree (system or generated sources).
      if (file.rfind(root + "/", 0) == 0) {
        file = file.substr(root.size() + 1);
      } else if (!file.empty() && file[0] == '/') {
        continue;
      }
      seeds.push_back(file);
    }
  }
  if (seeds.empty()) {
    std::fprintf(stderr, "mtm_analyze: no input files (use --compdb or list files)\n");
    return 2;
  }

  mtm::analyze::Config config;
  if (config_path.empty()) {
    std::ifstream probe(root + "/tools/mtm_analyze/layers.toml");
    if (probe) {
      config_path = root + "/tools/mtm_analyze/layers.toml";
    }
  }
  if (!config_path.empty()) {
    std::string text;
    std::string error;
    if (!ReadFile(config_path, &text)) {
      std::fprintf(stderr, "mtm_analyze: cannot read %s\n", config_path.c_str());
      return 2;
    }
    if (!mtm::analyze::ParseConfig(text, &config, &error)) {
      std::fprintf(stderr, "mtm_analyze: %s\n", error.c_str());
      return 2;
    }
  }

  mtm::analyze::Project project = mtm::analyze::Project::Load(root, seeds);
  std::vector<mtm::analyze::Finding> findings = mtm::analyze::Analyze(project, config);

  std::fputs(mtm::analyze::FormatText(findings).c_str(), stdout);
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    out << mtm::analyze::FormatJson(findings, project.files().size());
  }
  std::printf("mtm_analyze: %zu files checked, %zu finding(s)\n", project.files().size(),
              findings.size());
  return findings.empty() ? 0 : 1;
}
