#include <cctype>
#include <deque>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/mtm_analyze/mtm_analyze.h"

namespace mtm::analyze {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string Trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) {
    return "";
  }
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// Lexical path normalization: collapses "." and ".." components.
std::string NormalizePath(const std::string& path) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t end = path.find('/', start);
    if (end == std::string::npos) {
      end = path.size();
    }
    std::string part = path.substr(start, end - start);
    if (part == "..") {
      if (!parts.empty()) {
        parts.pop_back();
      }
    } else if (!part.empty() && part != ".") {
      parts.push_back(part);
    }
    start = end + 1;
  }
  std::string out;
  for (const std::string& part : parts) {
    if (!out.empty()) {
      out += '/';
    }
    out += part;
  }
  return out;
}

std::string DirName(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? "" : path.substr(0, slash);
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

const std::set<std::string>& ExportBlocklist() {
  static const std::set<std::string> kBlock = {"std", "mtm", "override", "final",
                                              "const", "noexcept", "operator"};
  return kBlock;
}

bool IsKeyword(const std::string& t) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",      "while",    "switch",  "return",   "sizeof",  "decltype",
      "alignof",  "alignas",  "catch",    "throw",   "new",      "delete",  "static_assert",
      "template", "typename", "public",   "private", "protected", "virtual", "explicit",
      "inline",   "static",   "constexpr", "friend",  "auto",     "void",    "bool",
      "char",     "int",      "unsigned", "long",    "short",    "float",   "double",
      "default",  "case",     "else",     "do",      "try",      "operator"};
  return kKeywords.count(t) > 0;
}

// Extracts declared symbols from the token stream: macros are handled by
// the caller (from directive lines); this walks declarative scopes
// (namespace / class bodies), skipping function bodies and initializers.
// Namespace-scope declarations additionally land in `attributable`.
void ExtractDeclarations(const std::vector<Token>& tokens, std::set<std::string>* exported,
                         std::set<std::string>* attributable) {
  enum class Scope { kNamespace, kClass, kEnum, kSkip };
  std::vector<Scope> stack;
  int skip_depth = 0;
  int class_depth = 0;

  enum class Pending { kNone, kNamespace, kClass, kEnum, kTypedef };
  Pending pending = Pending::kNone;
  bool pending_named = false;   // the pending decl's name was captured
  std::string typedef_last;     // last identifier seen in a typedef
  std::string prev;             // previous significant token

  auto extracting = [&] {
    return skip_depth == 0 &&
           (stack.empty() || stack.back() == Scope::kNamespace || stack.back() == Scope::kClass);
  };
  auto declare = [&](const std::string& name) {
    exported->insert(name);
    if (class_depth == 0) {
      attributable->insert(name);
    }
  };

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    const std::string* next = i + 1 < tokens.size() ? &tokens[i + 1].text : nullptr;

    if (t == "{") {
      Scope kind;
      if (pending == Pending::kEnum) {
        kind = Scope::kEnum;
      } else if (pending == Pending::kNamespace) {
        kind = Scope::kNamespace;
      } else if (pending == Pending::kClass) {
        kind = Scope::kClass;
      } else {
        // Function body, initializer, or brace-init: nothing declarative.
        kind = Scope::kSkip;
      }
      stack.push_back(kind);
      if (kind == Scope::kSkip) {
        ++skip_depth;
      } else if (kind == Scope::kClass) {
        ++class_depth;
      }
      pending = Pending::kNone;
      pending_named = false;
      prev = t;
      continue;
    }
    if (t == "}") {
      if (!stack.empty()) {
        if (stack.back() == Scope::kSkip) {
          --skip_depth;
        } else if (stack.back() == Scope::kClass) {
          --class_depth;
        }
        stack.pop_back();
      }
      prev = t;
      continue;
    }

    if (!extracting() && !(skip_depth == 0 && !stack.empty() && stack.back() == Scope::kEnum)) {
      prev = t;
      continue;
    }

    // Enumerator names: identifiers at enum-body depth following '{' or ','.
    if (skip_depth == 0 && !stack.empty() && stack.back() == Scope::kEnum) {
      if (IsIdentStart(t[0]) && (prev == "{" || prev == ",")) {
        declare(t);
      }
      prev = t;
      continue;
    }

    if (t == ";") {
      if (pending == Pending::kTypedef && !typedef_last.empty()) {
        declare(typedef_last);
      }
      pending = Pending::kNone;
      pending_named = false;
      typedef_last.clear();
      prev = t;
      continue;
    }

    if (t == "namespace") {
      pending = Pending::kNamespace;
      pending_named = false;
    } else if (t == "class" || t == "struct" || t == "union") {
      if (pending != Pending::kEnum) {  // "enum class" keeps its enum pending
        pending = Pending::kClass;
        pending_named = false;
      }
    } else if (t == "enum") {
      pending = Pending::kEnum;
      pending_named = false;
    } else if (t == "typedef") {
      pending = Pending::kTypedef;
      typedef_last.clear();
    } else if (t == "using") {
      // `using X = ...;` exports X; using-declarations/directives don't.
      if (next != nullptr && IsIdentStart((*next)[0]) && i + 2 < tokens.size() &&
          tokens[i + 2].text == "=") {
        declare(*next);
      }
      // Consume to ';' so alias right-hand sides aren't misparsed.
      while (i + 1 < tokens.size() && tokens[i + 1].text != ";" && tokens[i + 1].text != "}") {
        ++i;
      }
    } else if (IsIdentStart(t[0])) {
      if (pending == Pending::kTypedef) {
        typedef_last = t;
      } else if ((pending == Pending::kClass || pending == Pending::kEnum) && !pending_named) {
        if (ExportBlocklist().count(t) == 0 && !IsKeyword(t)) {
          declare(t);
          pending_named = true;
        }
      } else if (pending == Pending::kNamespace) {
        // namespace names are not symbols
      } else if (next != nullptr && !IsKeyword(t) && ExportBlocklist().count(t) == 0) {
        // Function names (ident followed by '(') and variables/constants
        // (ident followed by ';', '=', '{', or '[') at declarative scope.
        if (*next == "(" || *next == ";" || *next == "=" || *next == "{" || *next == "[") {
          declare(t);
        }
      }
    }
    prev = t;
  }
}

void ParseFile(const std::string& rel, const std::string& contents, SourceFile* file) {
  file->path = rel;
  file->raw = SplitLines(contents);
  std::string stripped = StripCommentsAndStrings(contents);
  file->code = SplitLines(stripped);

  // Includes come from raw lines (string contents are blanked in the
  // stripped view). Quoted includes are project candidates; angle-bracket
  // includes are kept so they can be resolved against the database's
  // include directories and classified by the system-include check.
  for (std::size_t i = 0; i < file->raw.size(); ++i) {
    std::string line = Trim(file->raw[i]);
    if (line.rfind("#", 0) != 0) {
      continue;
    }
    std::string after = Trim(line.substr(1));
    if (after.rfind("include", 0) != 0) {
      continue;
    }
    std::string spec = Trim(after.substr(7));
    if (spec.size() >= 2 && (spec[0] == '"' || spec[0] == '<')) {
      char close_ch = spec[0] == '"' ? '"' : '>';
      std::size_t close = spec.find(close_ch, 1);
      if (close != std::string::npos) {
        IncludeEdge edge;
        edge.target = spec.substr(1, close - 1);
        edge.line = static_cast<int>(i + 1);
        edge.angle = spec[0] == '<';
        file->includes.push_back(edge);
      }
    }
  }

  // Usage tokens: identifiers anywhere in stripped code except include
  // directives; macro bodies count as usage. Macro names are exported.
  bool in_define = false;
  for (std::size_t li = 0; li < file->code.size(); ++li) {
    const std::string& line = file->code[li];
    std::string trimmed = Trim(line);
    bool is_directive = !in_define && !trimmed.empty() && trimmed[0] == '#';
    std::string scan = line;
    if (is_directive) {
      std::string after = Trim(trimmed.substr(1));
      if (after.rfind("include", 0) == 0) {
        scan.clear();  // include targets are not usage
      } else if (after.rfind("define", 0) == 0) {
        std::string rest = Trim(after.substr(6));
        std::size_t j = 0;
        while (j < rest.size() && IsIdentChar(rest[j])) {
          ++j;
        }
        if (j > 0) {
          file->exported.insert(rest.substr(0, j));
          file->attributable.insert(rest.substr(0, j));
        }
      }
    }
    in_define = !line.empty() && line.back() == '\\' && (is_directive || in_define);
    std::size_t i = 0;
    while (i < scan.size()) {
      if (IsIdentStart(scan[i])) {
        std::size_t j = i;
        while (j < scan.size() && IsIdentChar(scan[j])) {
          ++j;
        }
        file->tokens.emplace(scan.substr(i, j - i), static_cast<int>(li + 1));
        i = j;
      } else {
        ++i;
      }
    }
  }

  ExtractDeclarations(TokenizeCode(file->code), &file->exported, &file->attributable);
  BuildFunctionModel(file);
}

}  // namespace

Project Project::Load(const std::string& root, const std::vector<std::string>& seeds,
                      const std::vector<std::string>& include_dirs) {
  Project project;
  std::deque<std::string> queue(seeds.begin(), seeds.end());
  while (!queue.empty()) {
    std::string rel = NormalizePath(queue.front());
    queue.pop_front();
    if (rel.empty() || project.files_.count(rel) > 0) {
      continue;
    }
    std::string contents;
    if (!ReadFile(root + "/" + rel, &contents)) {
      continue;
    }
    SourceFile file;
    ParseFile(rel, contents, &file);
    for (IncludeEdge& edge : file.includes) {
      // Quoted project includes are root-relative by convention, with an
      // includer-relative fallback for trees that use local includes.
      // Angle includes resolve only through the database's include dirs:
      // a <...> include that lands inside the tree is a project include.
      std::vector<std::string> candidates;
      if (!edge.angle) {
        candidates.push_back(NormalizePath(edge.target));
        candidates.push_back(NormalizePath(DirName(rel) + "/" + edge.target));
      }
      for (const std::string& dir : include_dirs) {
        candidates.push_back(NormalizePath(dir.empty() ? edge.target : dir + "/" + edge.target));
      }
      std::string probe;
      for (const std::string& c : candidates) {
        std::ifstream in(root + "/" + c);
        if (in) {
          probe = c;
          break;
        }
      }
      if (!probe.empty()) {
        edge.target = probe;
        edge.resolved = true;
        queue.push_back(probe);
      }
    }
    project.files_.emplace(rel, std::move(file));
  }
  return project;
}

const SourceFile* Project::Find(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

std::set<std::string> Project::IncludeClosure(const std::string& path) const {
  std::set<std::string> closure;
  std::deque<std::string> queue;
  queue.push_back(path);
  while (!queue.empty()) {
    const SourceFile* file = Find(queue.front());
    queue.pop_front();
    if (file == nullptr) {
      continue;
    }
    for (const IncludeEdge& edge : file->includes) {
      if (edge.resolved && closure.insert(edge.target).second) {
        queue.push_back(edge.target);
      }
    }
  }
  closure.erase(path);
  return closure;
}

bool ParseConfig(const std::string& text, Config* config, std::string* error) {
  std::string section;
  int line_no = 0;
  for (const std::string& raw_line : SplitLines(text)) {
    ++line_no;
    std::string line = raw_line;
    // Strip full-line and trailing comments (no '#' inside our values).
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = Trim(line);
    if (line.empty()) {
      continue;
    }
    if (line.front() == '[' && line.back() == ']') {
      section = Trim(line.substr(1, line.size() - 2));
      continue;
    }
    std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      *error = "layers.toml:" + std::to_string(line_no) + ": expected key = value";
      return false;
    }
    std::string key = Trim(line.substr(0, eq));
    if (key.size() >= 2 && key.front() == '"' && key.back() == '"') {
      key = key.substr(1, key.size() - 2);
    }
    std::string value = Trim(line.substr(eq + 1));
    if (value.empty() || value.front() != '[' || value.back() != ']') {
      *error = "layers.toml:" + std::to_string(line_no) + ": value must be a [\"...\"] array";
      return false;
    }
    std::vector<std::string> items;
    std::string inner = value.substr(1, value.size() - 2);
    std::size_t pos = 0;
    while ((pos = inner.find('"', pos)) != std::string::npos) {
      std::size_t close = inner.find('"', pos + 1);
      if (close == std::string::npos) {
        *error = "layers.toml:" + std::to_string(line_no) + ": unterminated string";
        return false;
      }
      items.push_back(inner.substr(pos + 1, close - pos - 1));
      pos = close + 1;
    }
    if (section == "layers") {
      config->layers[key] = items;
    } else if (section == "determinism") {
      if (key == "wallclock_allow") {
        config->wallclock_allow = items;
      } else if (key == "random_allow") {
        config->random_allow = items;
      } else {
        *error = "layers.toml:" + std::to_string(line_no) + ": unknown determinism key " + key;
        return false;
      }
    } else if (section == "error_discipline") {
      if (key == "status_paths") {
        config->status_paths = items;
      } else if (key == "fallible_verbs") {
        config->fallible_verbs = items;
      } else {
        *error = "config:" + std::to_string(line_no) + ": unknown error_discipline key " + key;
        return false;
      }
    } else if (section == "concurrency") {
      if (key == "task_callbacks") {
        config->task_callbacks = items;
      } else if (key == "task_entries") {
        config->task_entries = items;
      } else if (key == "mutation_allow") {
        config->mutation_allow = items;
      } else {
        *error = "config:" + std::to_string(line_no) + ": unknown concurrency key " + key;
        return false;
      }
    } else {
      *error = "layers.toml:" + std::to_string(line_no) + ": unknown section [" + section + "]";
      return false;
    }
  }
  return true;
}

namespace {

// Collects every JSON string value keyed `key` ("file", "command", ...).
std::vector<std::string> JsonStringValues(const std::string& text, const std::string& key) {
  std::vector<std::string> values;
  const std::string needle = "\"" + key + "\"";
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    while (pos < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[pos])) != 0 || text[pos] == ':')) {
      ++pos;
    }
    if (pos >= text.size() || text[pos] != '"') {
      continue;
    }
    std::string value;
    ++pos;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) {
        ++pos;
      }
      value.push_back(text[pos]);
      ++pos;
    }
    values.push_back(value);
  }
  return values;
}

}  // namespace

std::vector<std::string> ParseCompileCommands(const std::string& text) {
  return ParseCompileDb(text).files;
}

CompileDb ParseCompileDb(const std::string& text) {
  CompileDb db;
  db.files = JsonStringValues(text, "file");
  std::set<std::string> seen;
  for (const std::string& command : JsonStringValues(text, "command")) {
    std::size_t i = 0;
    while (i < command.size()) {
      std::size_t end = command.find(' ', i);
      if (end == std::string::npos) {
        end = command.size();
      }
      std::string word = command.substr(i, end - i);
      std::string dir;
      if (word.rfind("-I", 0) == 0 && word.size() > 2) {
        dir = word.substr(2);
      } else if (word == "-I" || word == "-isystem") {
        std::size_t next = command.find_first_not_of(' ', end);
        if (next != std::string::npos) {
          std::size_t next_end = command.find(' ', next);
          dir = command.substr(next, (next_end == std::string::npos ? command.size() : next_end) -
                                         next);
          end = next_end == std::string::npos ? command.size() : next_end;
        }
      } else if (word.rfind("-isystem", 0) == 0 && word.size() > 8) {
        dir = word.substr(8);
      }
      if (!dir.empty() && seen.insert(dir).second) {
        db.include_dirs.push_back(dir);
      }
      i = end + 1;
    }
  }
  return db;
}

}  // namespace mtm::analyze
