// Autofix engine for machine-applicable include-graph findings.
//
// Three rewrites, all line-based splices on the raw file text:
//   * unused-include / dead-system-include  -> delete the include line
//   * transitive-include                    -> insert a direct include of the
//     owning header, alphabetically within the quoted-include block
//   * include-order (mtm_lint's rule: own header, <system>, "project") ->
//     permute the include lines in place, but only when the file actually
//     violates the rule, so a clean tree is a fixed point.
//
// Files with preprocessor conditionals between their first and last include
// are left alone for insertion/reorder (the fix cannot know which branch an
// include belongs to); deletions still apply since they target the exact
// line the analysis flagged.
//
// ComputeFixedContents is idempotent by construction: running the analysis
// on its output produces no machine-fixable findings, so a second call
// returns an empty map (covered by tests).
#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/mtm_analyze/mtm_analyze.h"

namespace mtm::analyze {
namespace {

struct IncludeLine {
  std::size_t index = 0;  // 0-based into the line vector
  bool angle = false;
  std::string target;
};

std::string Trimmed(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) {
    return "";
  }
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// Parses `#include <x>` / `#include "x"`; returns false otherwise.
bool ParseIncludeLine(const std::string& line, bool* angle, std::string* target) {
  std::string t = Trimmed(line);
  if (t.empty() || t[0] != '#') {
    return false;
  }
  t = Trimmed(t.substr(1));
  const std::string kWord = "include";
  if (t.compare(0, kWord.size(), kWord) != 0) {
    return false;
  }
  t = Trimmed(t.substr(kWord.size()));
  if (t.size() < 2) {
    return false;
  }
  char open = t[0];
  char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
  if (close == '\0') {
    return false;
  }
  std::size_t end = t.find(close, 1);
  if (end == std::string::npos) {
    return false;
  }
  *angle = open == '<';
  *target = t.substr(1, end - 1);
  return true;
}

bool IsConditionalDirective(const std::string& line) {
  std::string t = Trimmed(line);
  if (t.empty() || t[0] != '#') {
    return false;
  }
  t = Trimmed(t.substr(1));
  for (const char* d : {"if", "ifdef", "ifndef", "elif", "else", "endif"}) {
    std::string word = d;
    if (t.compare(0, word.size(), word) == 0 &&
        (t.size() == word.size() || std::isalnum(static_cast<unsigned char>(t[word.size()])) == 0)) {
      return true;
    }
  }
  return false;
}

std::vector<IncludeLine> CollectIncludes(const std::vector<std::string>& lines) {
  std::vector<IncludeLine> includes;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    bool angle = false;
    std::string target;
    if (ParseIncludeLine(lines[i], &angle, &target)) {
      includes.push_back({i, angle, target});
    }
  }
  return includes;
}

bool HasConditionalInsideIncludeSpan(const std::vector<std::string>& lines,
                                     const std::vector<IncludeLine>& includes) {
  if (includes.empty()) {
    return false;
  }
  for (std::size_t i = includes.front().index; i <= includes.back().index; ++i) {
    if (IsConditionalDirective(lines[i])) {
      return true;
    }
  }
  return false;
}

// True when includes[0] is the file's own header (".cc"/".cpp" path only).
bool FirstIsOwnHeader(const std::string& path, const std::vector<IncludeLine>& includes) {
  if (includes.empty() || includes.front().angle) {
    return false;
  }
  std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || path.compare(dot, std::string::npos, ".h") == 0) {
    return false;
  }
  std::string own = path.substr(0, dot) + ".h";
  std::size_t slash = own.find_last_of('/');
  std::string base = slash == std::string::npos ? own : own.substr(slash + 1);
  const std::string& t = includes.front().target;
  return t == base || (t.size() > base.size() + 1 &&
                       t.compare(t.size() - base.size() - 1, base.size() + 1, "/" + base) == 0);
}

// mtm_lint include-order violation: an angle include after a quoted one,
// ignoring a leading own-header include.
bool ViolatesIncludeOrder(const std::string& path, const std::vector<IncludeLine>& includes) {
  std::size_t start = FirstIsOwnHeader(path, includes) ? 1 : 0;
  bool seen_quoted = false;
  for (std::size_t i = start; i < includes.size(); ++i) {
    if (!includes[i].angle) {
      seen_quoted = true;
    } else if (seen_quoted) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::map<std::string, std::string> ComputeFixedContents(const Project& project,
                                                        const std::vector<Finding>& findings) {
  // Per file: include lines to delete (1-based) and headers to add.
  std::map<std::string, std::set<int>> deletions;
  std::map<std::string, std::set<std::string>> insertions;
  for (const Finding& finding : findings) {
    if (finding.subject.empty()) {
      continue;
    }
    if (finding.check == "unused-include" || finding.check == "dead-system-include") {
      deletions[finding.file].insert(finding.line);
    } else if (finding.check == "transitive-include") {
      insertions[finding.file].insert(finding.subject);
    }
  }

  std::map<std::string, std::string> fixed;
  for (const auto& [path, file] : project.files()) {
    auto del_it = deletions.find(path);
    auto ins_it = insertions.find(path);
    std::vector<IncludeLine> original_includes = CollectIncludes(file.raw);
    bool needs_reorder = ViolatesIncludeOrder(path, original_includes);
    if (del_it == deletions.end() && ins_it == insertions.end() && !needs_reorder) {
      continue;
    }

    std::vector<std::string> lines = file.raw;

    // 1. Deletions: drop the flagged include lines, verifying each still
    // parses as an include (stale line numbers must not eat code). When a
    // deletion removes a whole include group, collapse the blank line it
    // leaves behind — clang-format (MaxEmptyLinesToKeep: 1) would reject a
    // double blank.
    if (del_it != deletions.end()) {
      std::vector<std::string> kept;
      kept.reserve(lines.size());
      for (std::size_t i = 0; i < lines.size(); ++i) {
        bool angle = false;
        std::string target;
        if (del_it->second.count(static_cast<int>(i + 1)) > 0 &&
            ParseIncludeLine(lines[i], &angle, &target)) {
          if (!kept.empty() && Trimmed(kept.back()).empty() && i + 1 < lines.size() &&
              Trimmed(lines[i + 1]).empty()) {
            kept.pop_back();
          }
          continue;
        }
        kept.push_back(lines[i]);
      }
      lines = std::move(kept);
    }

    std::vector<IncludeLine> includes = CollectIncludes(lines);
    bool guarded = HasConditionalInsideIncludeSpan(lines, includes);

    // 2. Reorder on violation: permute the include-line *contents* across
    // the existing include-line slots — own header stays first, then angle
    // includes, then quoted, each group keeping its original relative order.
    if (!guarded && ViolatesIncludeOrder(path, includes)) {
      std::size_t start = FirstIsOwnHeader(path, includes) ? 1 : 0;
      std::vector<std::string> angle_lines;
      std::vector<std::string> quoted_lines;
      for (std::size_t i = start; i < includes.size(); ++i) {
        (includes[i].angle ? angle_lines : quoted_lines).push_back(lines[includes[i].index]);
      }
      std::size_t slot = start;
      for (const std::string& text : angle_lines) {
        lines[includes[slot++].index] = text;
      }
      for (const std::string& text : quoted_lines) {
        lines[includes[slot++].index] = text;
      }
      includes = CollectIncludes(lines);
    }

    // 3. Insertions: add a direct quoted include, alphabetically within the
    // quoted block (after own header / angle includes when the block is
    // empty). Skipped for conditional-guarded spans.
    if (!guarded && ins_it != insertions.end()) {
      for (const std::string& header : ins_it->second) {
        includes = CollectIncludes(lines);
        bool already = false;
        for (const IncludeLine& inc : includes) {
          if (!inc.angle && inc.target == header) {
            already = true;
            break;
          }
        }
        if (already || includes.empty()) {
          continue;
        }
        std::size_t start = FirstIsOwnHeader(path, includes) ? 1 : 0;
        // Insert before the first quoted include whose target sorts after
        // `header`; otherwise after the last include line.
        std::size_t insert_at = includes.back().index + 1;
        for (std::size_t i = start; i < includes.size(); ++i) {
          if (!includes[i].angle && header < includes[i].target) {
            insert_at = includes[i].index;
            break;
          }
        }
        lines.insert(lines.begin() + static_cast<long>(insert_at),
                     "#include \"" + header + "\"");
      }
    }

    std::string original;
    for (std::size_t i = 0; i < file.raw.size(); ++i) {
      original += file.raw[i];
      if (i + 1 < file.raw.size()) {
        original += '\n';
      }
    }
    std::string updated;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      updated += lines[i];
      if (i + 1 < lines.size()) {
        updated += '\n';
      }
    }
    if (updated != original) {
      fixed[path] = updated;
    }
  }
  return fixed;
}

}  // namespace mtm::analyze
