#include <cctype>
#include <string>
#include <vector>

#include "tools/mtm_analyze/mtm_analyze.h"

namespace mtm::analyze {

namespace {

bool StripIsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      // A backslash immediately before the newline continues the comment
      // onto the next physical line; keep consuming, emitting each newline
      // so line numbers stay aligned.
      while (true) {
        while (i < n && text[i] != '\n') {
          ++i;
        }
        if (i >= n || text[i - 1] != '\\') {
          break;
        }
        out.push_back('\n');
        ++i;
      }
    } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      std::size_t j = text.find("*/", i + 2);
      std::size_t end = (j == std::string::npos) ? n : j + 2;
      for (std::size_t k = i; k < end; ++k) {
        if (text[k] == '\n') {
          out.push_back('\n');
        }
      }
      i = end;
    } else if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
               (i == 0 || !StripIsIdentChar(text[i - 1]))) {
      // Raw string with any delimiter: R"delim( ... )delim". The delimiter
      // is the (possibly empty) run of chars between the quote and '('.
      std::size_t open = text.find('(', i + 2);
      std::string delim =
          (open == std::string::npos) ? "" : text.substr(i + 2, open - (i + 2));
      if (open == std::string::npos || delim.size() > 16 ||
          delim.find_first_of(" \t\n\\)\"") != std::string::npos) {
        // Not actually a raw-string introducer; emit the R and rescan from
        // the quote so the ordinary string branch handles it.
        out.push_back(c);
        ++i;
        continue;
      }
      std::string closer = ")" + delim + "\"";
      std::size_t j = text.find(closer, open + 1);
      std::size_t end = (j == std::string::npos) ? n : j + closer.size();
      out.append("\"\"");
      for (std::size_t k = i; k < end; ++k) {
        if (text[k] == '\n') {
          out.push_back('\n');
        }
      }
      i = end;
    } else if (c == '"' || c == '\'') {
      // Don't treat digit separators (1'000) or apostrophes after
      // identifiers as character literals.
      if (c == '\'' && i > 0 && (std::isalnum(static_cast<unsigned char>(text[i - 1])) != 0 ||
                                 text[i - 1] == '_')) {
        out.push_back(c);
        ++i;
        continue;
      }
      std::size_t j = i + 1;
      int swallowed_newlines = 0;
      while (j < n && text[j] != c && text[j] != '\n') {
        if (text[j] == '\\' && j + 1 < n) {
          // A backslash-newline continuation inside the literal spans a
          // physical line; count it so the newline can be re-emitted after
          // the blanked literal and token lines never desync.
          if (text[j + 1] == '\n') {
            ++swallowed_newlines;
          }
          j += 2;
        } else {
          ++j;
        }
      }
      out.push_back(c);
      out.push_back(c);
      for (int k = 0; k < swallowed_newlines; ++k) {
        out.push_back('\n');
      }
      i = (j < n) ? j + 1 : n;
    } else {
      out.push_back(c);
      ++i;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

bool ContainsWord(const std::string& line, const std::string& word) {
  std::size_t pos = 0;
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  };
  while ((pos = line.find(word, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !is_ident(line[pos - 1]);
    std::size_t after = pos + word.size();
    bool right_ok = after >= line.size() || !is_ident(line[after]);
    if (left_ok && right_ok) {
      return true;
    }
    pos = after;
  }
  return false;
}

namespace {

bool TokIsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool TokIsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string TokTrim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) {
    return "";
  }
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::vector<Token> TokenizeCode(const std::vector<std::string>& code) {
  std::vector<Token> tokens;
  bool in_directive = false;
  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& line = code[li];
    bool continued = !line.empty() && line.back() == '\\';
    if (in_directive) {
      in_directive = continued;
      continue;
    }
    std::string trimmed = TokTrim(line);
    if (!trimmed.empty() && trimmed[0] == '#') {
      in_directive = continued;
      continue;
    }
    std::size_t i = 0;
    while (i < line.size()) {
      char c = line[i];
      if (TokIsIdentStart(c)) {
        std::size_t j = i;
        while (j < line.size() && TokIsIdentChar(line[j])) {
          ++j;
        }
        tokens.push_back({line.substr(i, j - i), static_cast<int>(li + 1)});
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        while (i < line.size() && (TokIsIdentChar(line[i]) || line[i] == '\'')) {
          ++i;
        }
      } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
      } else {
        tokens.push_back({std::string(1, c), static_cast<int>(li + 1)});
        ++i;
      }
    }
  }
  return tokens;
}

}  // namespace mtm::analyze
