// Linked whole-program model and the shared-state concurrency pass.
//
// LinkedModel merges the per-TU function models of every file reached from
// compile_commands.json into one call graph. Calls resolve in order:
//   1. explicit qualifier (Q::Name) against qualified definition names,
//   2. member lookup through the caller's enclosing scope chain
//      (ThreadPool::WorkerLoop calling DrainTasks finds
//      ThreadPool::DrainTasks in any TU),
//   3. same-file definitions (shadow cross-TU resolution),
//   4. include-visibility: definitions in the caller's include closure,
//      widened to *all* definitions of the name when a bodyless declaration
//      of it is visible in the closure (the normal header/impl split),
// then an argument-arity filter disambiguates overloads when the call's
// argument count is known. Survivors: one target is a resolved edge, many
// are a conservative multi-target edge (every candidate is walked), zero is
// an external edge.
//
// The concurrency pass walks this graph from sharded task entries
// (tools/mtm_analyze/concurrency.toml) and flags mutation of cross-task
// state:
//   task-member-write   bare/this-> writes or mutating calls on foo_ members
//                       (members annotated `mtm-analyze: guarded_by(mu)` are
//                       owned by the lock-discipline pass instead)
//   task-static-write   writes to namespace-scope mutable variables, and
//                       declarations of mutable function-local statics
//   task-capture-write  writes in task lambdas through by-reference captures
//                       (or pointer-valued by-value captures, `p->field =`),
//                       the points-to-free heuristic: shard-indexed slot
//                       writes (`out[shard] = ...`) and atomic RMW calls are
//                       exempt
// Functions matching mutation_allow ("Class::Method", "Class::*", or a bare
// name) are sanctioned merge points: their writes are not examined and
// their callees are not traversed.
#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/mtm_analyze/mtm_analyze.h"

namespace mtm::analyze {
namespace {

bool MatchesAllow(const FunctionInfo& fn, const std::vector<std::string>& allow) {
  for (const std::string& entry : allow) {
    if (entry == fn.qualified || entry == fn.name) {
      return true;
    }
    if (entry.size() > 3 && entry.compare(entry.size() - 3, 3, "::*") == 0) {
      const std::string prefix = entry.substr(0, entry.size() - 2);  // "Class::"
      if (fn.qualified.compare(0, prefix.size(), prefix) == 0) {
        return true;
      }
    }
  }
  return false;
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  for (const std::string& e : v) {
    if (e == s) {
      return true;
    }
  }
  return false;
}

// Call-site names that mirror the STL container interface are never
// resolved: `res.armed.push_back(x)` on a std::vector would otherwise
// resolve to whichever project class happens to define the only push_back
// (e.g. IdMap) and import its writes. Mutation through such calls is still
// caught at the call site itself when the receiver is a member or global.
bool IsStlLikeName(const std::string& name) {
  static const std::set<std::string> kStlLike = {
      "push_back", "emplace_back", "pop_back", "push_front", "pop_front", "insert", "emplace",
      "erase",     "clear",        "resize",   "assign",     "push",      "pop",    "reset",
      "store",     "fetch_add",    "fetch_sub", "exchange",  "swap",      "begin",  "end",
      "size",      "empty",        "front",    "back",       "at",        "find",   "count"};
  return kStlLike.count(name) > 0;
}

// Atomic read-modify-write members: a `counter.fetch_add(1)` through a
// captured reference is already a sanctioned cross-shard primitive.
bool IsAtomicRmw(const std::string& method) {
  static const std::set<std::string> kRmw = {"fetch_add", "fetch_sub", "store", "exchange",
                                             "compare_exchange_weak", "compare_exchange_strong"};
  return kRmw.count(method) > 0;
}

std::vector<std::string> SplitQualified(const std::string& qualified) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= qualified.size()) {
    std::size_t pos = qualified.find("::", start);
    if (pos == std::string::npos) {
      parts.push_back(qualified.substr(start));
      break;
    }
    parts.push_back(qualified.substr(start, pos - start));
    start = pos + 2;
  }
  return parts;
}

}  // namespace

LinkedModel::LinkedModel(const Project& project) : project_(project) {
  for (const auto& [path, file] : project.files()) {
    for (std::size_t idx = 0; idx < file.functions.size(); ++idx) {
      const FunctionInfo& fn = file.functions[idx];
      FnRef ref{path, static_cast<int>(idx)};
      if (fn.has_body) {
        by_name_[fn.name].push_back(ref);
        by_qualified_[fn.qualified].push_back(ref);
      } else {
        decl_files_[fn.name].insert(path);
      }
    }
    mutable_globals_.insert(file.mutable_globals.begin(), file.mutable_globals.end());
    std::set<std::string> closure = project.IncludeClosure(path);
    closure.insert(path);
    closures_[path] = std::move(closure);
  }
}

const FunctionInfo& LinkedModel::Fn(const FnRef& ref) const {
  return project_.Find(ref.file)->functions[static_cast<std::size_t>(ref.index)];
}

const SourceFile& LinkedModel::File(const FnRef& ref) const { return *project_.Find(ref.file); }

std::vector<FnRef> LinkedModel::Resolve(const FnRef& caller, const CallSite& call,
                                        CallEdgeStats* stats) const {
  if (IsStlLikeName(call.name)) {
    return {};
  }
  std::vector<FnRef> candidates;
  auto append_unique = [&](const std::vector<FnRef>& refs) {
    for (const FnRef& r : refs) {
      if (std::find(candidates.begin(), candidates.end(), r) == candidates.end()) {
        candidates.push_back(r);
      }
    }
  };

  // 1. Explicit qualifier: Q::Name matches "Q::Name" exactly or any
  //    qualified name ending in "::Q::Name" (nested namespaces).
  if (!call.qualifier.empty()) {
    const std::string qname = call.qualifier + "::" + call.name;
    auto it = by_qualified_.find(qname);
    if (it != by_qualified_.end()) {
      append_unique(it->second);
    } else {
      const std::string suffix = "::" + qname;
      for (const auto& [qualified, refs] : by_qualified_) {
        if (qualified.size() > suffix.size() &&
            qualified.compare(qualified.size() - suffix.size(), suffix.size(), suffix) == 0) {
          append_unique(refs);
        }
      }
    }
  }

  // 2. Member call: look the name up under each enclosing scope component
  //    of the caller (class, then outer scopes for nested lambdas).
  if (candidates.empty()) {
    for (const std::string& part : SplitQualified(Fn(caller).qualified)) {
      auto it = by_qualified_.find(part + "::" + call.name);
      if (it != by_qualified_.end()) {
        append_unique(it->second);
      }
    }
  }

  // 3. Same-file definitions shadow cross-TU resolution.
  auto name_it = by_name_.find(call.name);
  if (candidates.empty() && name_it != by_name_.end()) {
    for (const FnRef& ref : name_it->second) {
      if (ref.file == caller.file) {
        candidates.push_back(ref);
      }
    }
  }

  // 4. Include visibility: definitions inside the caller's include closure;
  //    a visible bodyless declaration widens to every definition (the
  //    declaration promises an out-of-closure body at link time).
  if (candidates.empty() && name_it != by_name_.end()) {
    const std::set<std::string>& closure = closures_.at(caller.file);
    bool decl_visible = false;
    auto decl_it = decl_files_.find(call.name);
    if (decl_it != decl_files_.end()) {
      for (const std::string& decl_file : decl_it->second) {
        if (closure.count(decl_file) > 0) {
          decl_visible = true;
          break;
        }
      }
    }
    for (const FnRef& ref : name_it->second) {
      if (decl_visible || closure.count(ref.file) > 0) {
        candidates.push_back(ref);
      }
    }
  }

  // Arity filter: keep exact-arity overloads when the call's argument count
  // is known; an empty exact set keeps every candidate (default arguments,
  // miscounted packs) — conservative, never truncating.
  if (call.arg_count >= 0 && candidates.size() > 1) {
    std::vector<FnRef> exact;
    for (const FnRef& ref : candidates) {
      if (Fn(ref).param_count == call.arg_count) {
        exact.push_back(ref);
      }
    }
    if (!exact.empty()) {
      candidates = std::move(exact);
    }
  }

  if (stats != nullptr) {
    if (candidates.empty()) {
      ++stats->external_edges;
    } else if (candidates.size() == 1) {
      ++stats->resolved_edges;
    } else {
      ++stats->multi_target_edges;
    }
  }
  return candidates;
}

std::vector<FnRef> LinkedModel::TaskSeeds(const Config& config) const {
  std::vector<FnRef> seeds;
  std::set<FnRef> seen;
  auto add = [&](const FnRef& ref) {
    if (seen.insert(ref).second) {
      seeds.push_back(ref);
    }
  };
  for (const auto& [path, file] : project_.files()) {
    for (std::size_t idx = 0; idx < file.functions.size(); ++idx) {
      const FunctionInfo& fn = file.functions[idx];
      if (!fn.has_body) {
        continue;
      }
      FnRef ref{path, static_cast<int>(idx)};
      if (fn.is_lambda && Contains(config.task_callbacks, fn.callback_of)) {
        add(ref);
      }
      if (Contains(config.task_entries, fn.qualified) || Contains(config.task_entries, fn.name)) {
        add(ref);
      }
      // Named local lambdas passed by identifier: ParallelFor(n, scan_shard).
      for (const CallSite& call : fn.calls) {
        if (!Contains(config.task_callbacks, call.name)) {
          continue;
        }
        for (const std::string& arg : call.arg_idents) {
          for (std::size_t cand = 0; cand < file.functions.size(); ++cand) {
            const FunctionInfo& cfn = file.functions[cand];
            if (cfn.is_lambda && cfn.has_body && cfn.name == arg) {
              add({path, static_cast<int>(cand)});
            }
          }
        }
      }
    }
  }
  return seeds;
}

std::set<FnRef> LinkedModel::TaskReachable(const Config& config, CallEdgeStats* stats) const {
  std::set<FnRef> reachable;
  std::deque<FnRef> queue;
  auto enqueue = [&](const FnRef& ref) {
    if (MatchesAllow(Fn(ref), config.mutation_allow)) {
      return;  // sanctioned merge point: writes and callees are off-limits
    }
    if (reachable.insert(ref).second) {
      queue.push_back(ref);
    }
  };
  for (const FnRef& seed : TaskSeeds(config)) {
    enqueue(seed);
  }
  while (!queue.empty()) {
    FnRef ref = queue.front();
    queue.pop_front();
    for (const CallSite& call : Fn(ref).calls) {
      for (const FnRef& target : Resolve(ref, call, stats)) {
        enqueue(target);
      }
    }
  }
  return reachable;
}

std::vector<Finding> RunConcurrencyPass(const Project& project, const Config& config) {
  return RunConcurrencyPass(project, config, nullptr);
}

std::vector<Finding> RunConcurrencyPass(const Project& project, const Config& config,
                                        CallEdgeStats* stats) {
  std::vector<Finding> findings;
  if (config.task_callbacks.empty() && config.task_entries.empty()) {
    return findings;
  }

  const LinkedModel model(project);
  const std::map<std::string, std::string> guarded = CollectGuardedMembers(project);

  for (const FnRef& ref : model.TaskReachable(config, stats)) {
    const FunctionInfo& fn = model.Fn(ref);
    const std::string& path = model.File(ref).path;

    for (const WriteSite& write : fn.writes) {
      switch (write.kind) {
        case WriteSite::Kind::kMember:
          if (guarded.count(write.name) > 0) {
            break;  // the lock-discipline pass owns annotated members
          }
          findings.push_back(
              {"task-member-write", path, write.line,
               "'" + fn.qualified + "' runs on pool workers but mutates member '" + write.name +
                   "' outside the slot-merge/ObsDelta discipline; buffer into a per-shard "
                   "delta or allowlist the merge point in concurrency.toml",
               write.name});
          break;
        case WriteSite::Kind::kPlain: {
          if (guarded.count(write.name) > 0) {
            break;
          }
          if (model.mutable_globals().count(write.name) > 0) {
            findings.push_back(
                {"task-static-write", path, write.line,
                 "'" + fn.qualified + "' runs on pool workers but writes namespace-scope "
                 "mutable '" + write.name + "'; shard the state or allowlist the merge point",
                 write.name});
            break;
          }
          // task-capture-write: points-to-free capture heuristic, lambdas
          // only. Locals are shard-private; shard-indexed slot writes and
          // atomic RMW calls are the sanctioned disciplines.
          if (!fn.is_lambda || fn.locals.count(write.name) > 0 || write.subscripted ||
              IsAtomicRmw(write.last_method)) {
            break;
          }
          bool by_val =
              Contains(fn.capture_vals, write.name) || fn.capture_default_val;
          bool by_ref = Contains(fn.capture_refs, write.name) ||
                        (fn.capture_default_ref && !Contains(fn.capture_vals, write.name));
          if (by_ref) {
            findings.push_back(
                {"task-capture-write", path, write.line,
                 "'" + fn.qualified + "' runs on pool workers but writes '" + write.name +
                     "' through a by-reference capture shared across shards; buffer into "
                     "per-shard state, index by shard, or allowlist the merge point",
                 write.name});
          } else if (by_val && write.via_arrow) {
            findings.push_back(
                {"task-capture-write", path, write.line,
                 "'" + fn.qualified + "' runs on pool workers and writes through pointer '" +
                     write.name + "' captured by value; the pointee is shared across shards — "
                     "buffer into per-shard state or index by shard",
                 write.name});
          }
          break;
        }
        case WriteSite::Kind::kStaticLocalDecl:
          findings.push_back(
              {"task-static-write", path, write.line,
               "'" + fn.qualified + "' runs on pool workers but declares mutable static "
               "local '" + write.name + "'; statics are shared across shards",
               write.name});
          break;
      }
    }
  }
  return findings;
}

}  // namespace mtm::analyze
