// Shared-state concurrency pass: walks the intra-project call graph from
// sharded task entries and flags mutation of cross-task state.
//
// Seeds (tools/mtm_analyze/concurrency.toml):
//   * lambdas passed directly to a [concurrency] task_callbacks call
//     (ThreadPool::ParallelFor, ForEachRegionSharded, ...),
//   * named local lambdas passed to such a call by identifier,
//   * functions listed explicitly in task_entries.
//
// From each seed the pass walks CallSites: a callee resolves to a same-file
// definition first, else to a globally-unique definition by name; ambiguous
// or external names are skipped (documented false-negative envelope,
// DESIGN.md §12). Functions matching mutation_allow ("Class::Method",
// "Class::*", or a bare name) are sanctioned merge points: their writes are
// not examined and their callees are not traversed.
//
// Inside reachable functions three mutation shapes are findings:
//   task-member-write   bare/this-> writes or mutating calls on foo_ members
//   task-static-write   writes to namespace-scope mutable variables, and
//                       declarations of mutable function-local statics
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/mtm_analyze/mtm_analyze.h"

namespace mtm::analyze {
namespace {

struct FnRef {
  const SourceFile* file = nullptr;
  const FunctionInfo* fn = nullptr;
};

bool MatchesAllow(const FunctionInfo& fn, const std::vector<std::string>& allow) {
  for (const std::string& entry : allow) {
    if (entry == fn.qualified || entry == fn.name) {
      return true;
    }
    if (entry.size() > 3 && entry.compare(entry.size() - 3, 3, "::*") == 0) {
      const std::string prefix = entry.substr(0, entry.size() - 2);  // "Class::"
      if (fn.qualified.compare(0, prefix.size(), prefix) == 0) {
        return true;
      }
    }
  }
  return false;
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  for (const std::string& e : v) {
    if (e == s) {
      return true;
    }
  }
  return false;
}

// Call-site names that mirror the STL container interface are never
// resolved: `res.armed.push_back(x)` on a std::vector would otherwise
// resolve to whichever project class happens to define the only push_back
// (e.g. IdMap) and import its writes. Mutation through such calls is still
// caught at the call site itself when the receiver is a member or global.
bool IsStlLikeName(const std::string& name) {
  static const std::set<std::string> kStlLike = {
      "push_back", "emplace_back", "pop_back", "push_front", "pop_front", "insert", "emplace",
      "erase",     "clear",        "resize",   "assign",     "push",      "pop",    "reset",
      "store",     "fetch_add",    "fetch_sub", "exchange",  "swap",      "begin",  "end",
      "size",      "empty",        "front",    "back",       "at",        "find",   "count"};
  return kStlLike.count(name) > 0;
}

}  // namespace

std::vector<Finding> RunConcurrencyPass(const Project& project, const Config& config) {
  std::vector<Finding> findings;
  if (config.task_callbacks.empty() && config.task_entries.empty()) {
    return findings;
  }

  // Indexes: definitions by unqualified name, globally and per file.
  std::map<std::string, std::vector<FnRef>> by_name;
  std::map<const SourceFile*, std::map<std::string, std::vector<FnRef>>> by_file;
  std::set<std::string> mutable_globals;
  for (const auto& [path, file] : project.files()) {
    for (const FunctionInfo& fn : file.functions) {
      if (!fn.has_body) {
        continue;
      }
      FnRef ref{&file, &fn};
      by_name[fn.name].push_back(ref);
      by_file[&file][fn.name].push_back(ref);
    }
    mutable_globals.insert(file.mutable_globals.begin(), file.mutable_globals.end());
  }

  // Seed collection.
  std::deque<FnRef> queue;
  std::set<const FunctionInfo*> visited;
  auto enqueue = [&](const FnRef& ref) {
    if (visited.insert(ref.fn).second) {
      queue.push_back(ref);
    }
  };
  for (const auto& [path, file] : project.files()) {
    for (const FunctionInfo& fn : file.functions) {
      if (!fn.has_body) {
        continue;
      }
      if (fn.is_lambda && Contains(config.task_callbacks, fn.callback_of)) {
        enqueue({&file, &fn});
      }
      if (Contains(config.task_entries, fn.qualified) ||
          Contains(config.task_entries, fn.name)) {
        enqueue({&file, &fn});
      }
      // Named local lambdas passed by identifier: ParallelFor(n, scan_shard).
      for (const CallSite& call : fn.calls) {
        if (!Contains(config.task_callbacks, call.name)) {
          continue;
        }
        for (const std::string& arg : call.arg_idents) {
          for (const FunctionInfo& cand : file.functions) {
            if (cand.is_lambda && cand.has_body && cand.name == arg) {
              enqueue({&file, &cand});
            }
          }
        }
      }
    }
  }

  // BFS over the call graph.
  while (!queue.empty()) {
    FnRef ref = queue.front();
    queue.pop_front();
    const FunctionInfo& fn = *ref.fn;

    if (MatchesAllow(fn, config.mutation_allow)) {
      continue;  // sanctioned merge point: writes and callees are off-limits
    }

    for (const WriteSite& write : fn.writes) {
      switch (write.kind) {
        case WriteSite::Kind::kMember:
          findings.push_back(
              {"task-member-write", ref.file->path, write.line,
               "'" + fn.qualified + "' runs on pool workers but mutates member '" + write.name +
                   "' outside the slot-merge/ObsDelta discipline; buffer into a per-shard "
                   "delta or allowlist the merge point in concurrency.toml",
               write.name});
          break;
        case WriteSite::Kind::kPlain:
          if (mutable_globals.count(write.name) > 0) {
            findings.push_back(
                {"task-static-write", ref.file->path, write.line,
                 "'" + fn.qualified + "' runs on pool workers but writes namespace-scope "
                 "mutable '" + write.name + "'; shard the state or allowlist the merge point",
                 write.name});
          }
          break;
        case WriteSite::Kind::kStaticLocalDecl:
          findings.push_back(
              {"task-static-write", ref.file->path, write.line,
               "'" + fn.qualified + "' runs on pool workers but declares mutable static "
               "local '" + write.name + "'; statics are shared across shards",
               write.name});
          break;
      }
    }

    for (const CallSite& call : fn.calls) {
      if (IsStlLikeName(call.name)) {
        continue;
      }
      auto file_it = by_file.find(ref.file);
      if (file_it != by_file.end()) {
        auto it = file_it->second.find(call.name);
        if (it != file_it->second.end()) {
          for (const FnRef& cand : it->second) {
            enqueue(cand);
          }
          continue;  // same-file definitions shadow global resolution
        }
      }
      auto global_it = by_name.find(call.name);
      if (global_it != by_name.end() && global_it->second.size() == 1) {
        enqueue(global_it->second.front());
      }
      // Ambiguous (overloaded across files) or external names are skipped.
    }
  }
  return findings;
}

}  // namespace mtm::analyze
