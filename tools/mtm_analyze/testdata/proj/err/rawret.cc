// True positive: TryReserve carries a fallible verb on a status path but
// signals failure through bool. Near-misses: the Status-returning variant,
// a name where "Try" is only a prefix fragment (Trylock), and a bool
// accessor with no fallible verb at all.
#include "proj/err/api.h"

namespace err {

bool TryReserve(int frames) { return frames > 0; }

Status TryReserveChecked(int frames) { return SubmitOrder(frames); }

bool Trylock(int frames) { return frames != 0; }

bool IsReady() { return true; }

}  // namespace err
