// Declarations shared by the error-discipline fixtures. Status and
// Result mirror the src/common/status.h shapes closely enough for the
// analyzer's return-kind table.
#pragma once

namespace err {

struct Status {
  bool ok() const { return true; }
};

template <typename T>
struct Result {
  bool ok() const { return true; }
  T value() const { return T{}; }
};

Status SubmitOrder(int order);
Result<int> LookupSlot(int key);

}  // namespace err
