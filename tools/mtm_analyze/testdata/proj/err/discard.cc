// True positive: the Status returned by SubmitOrder is dropped on the
// floor. Near-miss: naming the Status and branching on it is the
// sanctioned shape and must stay silent.
#include "proj/err/api.h"

namespace err {

void FireAndForget() {
  SubmitOrder(1);
}

int CountSubmitted() {
  Status status = SubmitOrder(2);
  if (!status.ok()) {
    return 0;
  }
  return 1;
}

}  // namespace err
