// True positives: value() on a Result variable that was never
// ok()-checked, and an unwrap of the temporary Result returned by
// LookupSlot. Near-miss: an ok() check dominating the unwrap silences it.
#include "proj/err/api.h"

namespace err {

int UncheckedUnwrap() {
  Result<int> slot = LookupSlot(3);
  return slot.value();
}

int TemporaryUnwrap() { return LookupSlot(4).value(); }

int CheckedUnwrap() {
  Result<int> slot = LookupSlot(5);
  if (!slot.ok()) {
    return 0;
  }
  return slot.value();
}

}  // namespace err
