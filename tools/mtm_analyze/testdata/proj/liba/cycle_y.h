// Half of an include cycle with cycle_x.h.
#pragma once

#include "proj/liba/cycle_x.h"

struct CycleY {
  CycleX* peer = nullptr;
};
