// Half of an include cycle with cycle_y.h.
#pragma once

#include "proj/liba/cycle_y.h"

struct CycleX {
  CycleY* peer = nullptr;
};
