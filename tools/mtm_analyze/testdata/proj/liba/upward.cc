// True positive: liba may not include libb (upward edge in the DAG).
#include "proj/libb/top.h"

int TopOf() {
  TopThing top;
  return top.base.weight;
}
