// True positive: BaseThing is used but only reachable through extra.h's
// include of base.h. ExtraThing itself is a legitimate direct use, so
// extra.h must not be flagged as unused (near-miss).
#include "proj/liba/extra.h"

int TotalWeight() {
  ExtraThing extra;
  BaseThing solo;
  return extra.inner.weight + solo.weight;
}
