// Base layer: the one declaring header for BaseThing and kBaseLimit.
#pragma once

struct BaseThing {
  int weight = 0;
};

inline constexpr int kBaseLimit = 16;
