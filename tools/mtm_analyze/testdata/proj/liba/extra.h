// Re-exports base.h: files that include extra.h can (wrongly) reach
// BaseThing without a direct include.
#pragma once

#include "proj/liba/base.h"

struct ExtraThing {
  BaseThing inner;
};
