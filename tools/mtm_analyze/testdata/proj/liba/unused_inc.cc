// True positive: extra.h is included but nothing it declares is used.
// Near-miss: base.h IS used (BaseThing), so it must not be flagged.
#include "proj/liba/base.h"
#include "proj/liba/extra.h"

int WeightOf() {
  BaseThing thing;
  return thing.weight;
}
