// A suppression with no justification is itself reported.
#include <ostream>
#include <unordered_map>

void EmitUnjustified(std::ostream& os) {
  std::unordered_map<int, int> counts;
  counts[3] = 1;
  // mtm-analyze: allow(determinism)
  for (const auto& [key, value] : counts) {
    os << key << "=" << value << "\n";
  }
}
