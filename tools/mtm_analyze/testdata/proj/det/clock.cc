// True positive: a wall-clock read outside the sanctioned sites.
#include <chrono>

long NowNanos() {
  auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count();
}
