// True positive: hash-order iteration feeds an output stream, so the
// emitted bytes depend on the container's hash layout.
#include <ostream>
#include <unordered_map>

void EmitCounts(std::ostream& os) {
  std::unordered_map<int, int> counts;
  counts[3] = 1;
  for (const auto& [key, value] : counts) {
    os << key << "=" << value << "\n";
  }
}
