// True positive: random_device yields an unreproducible seed.
#include <random>

unsigned NondeterministicSeed() {
  std::random_device device;
  return device();
}
