// A justified suppression silences the unordered-iteration finding.
#include <ostream>
#include <unordered_map>

void EmitUnordered(std::ostream& os) {
  std::unordered_map<int, int> counts;
  counts[3] = 1;
  // mtm-analyze: allow(determinism) fixture: demonstrates a justified suppression
  for (const auto& [key, value] : counts) {
    os << key << "=" << value << "\n";
  }
}
