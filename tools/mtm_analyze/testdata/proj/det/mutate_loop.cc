// Near-miss: iterating an unordered container is fine when the body only
// mutates internal state — no bytes escape, order cannot be observed.
#include <unordered_map>

void Decay() {
  std::unordered_map<int, double> weights;
  weights[3] = 1.0;
  for (auto& [key, value] : weights) {
    value *= 0.5;
  }
}
