// Near-miss: this file is listed in wallclock_allow, so the identical
// clock read is sanctioned.
#include <chrono>

long SanctionedNowNanos() {
  auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count();
}
