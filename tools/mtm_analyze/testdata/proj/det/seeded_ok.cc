// Near-miss: 'randomize' and 'rands' contain "rand" as a substring but are
// not the banned calls; word-boundary matching must not fire here.
int randomize(int x) { return x * 2654435761; }

int UseRandomize() {
  int rands = randomize(7);
  return rands;
}
