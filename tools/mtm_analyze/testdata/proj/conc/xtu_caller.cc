// True positive across translation units: the shard lambda calls
// CrossBump, declared in xtu.h but defined in xtu_impl.cc. The linked
// model follows the edge and flags the global write in the other TU.
#include "proj/conc/xtu.h"

#include "proj/conc/pool.h"

namespace conc {

void RunCross() {
  ParallelFor(2, [&](int shard) { CrossBump(shard); });
}

}  // namespace conc
