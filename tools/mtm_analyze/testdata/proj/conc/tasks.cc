// True positives: shard bodies reached from ParallelFor mutate shared
// state — a namespace-scope counter and a member directly from the lambda,
// a member through a helper reached via the call graph, and a mutable
// static local inside the task_entries-seeded ShardEntry.
#include "proj/conc/worker.h"

#include "proj/conc/pool.h"

namespace conc {

int g_ticks = 0;

void Worker::BumpHits() { hits_ += 1; }

void Worker::RunShards() {
  ParallelFor(4, [&](int shard) {
    g_ticks += shard;
    hits_ += shard;
  });
}

void Worker::RunIndirect() {
  ParallelFor(2, [&](int shard) {
    if (shard > 0) {
      BumpHits();
    }
  });
}

void ShardEntry(int shard) {
  static int calls = 0;
  calls += shard;
}

}  // namespace conc
