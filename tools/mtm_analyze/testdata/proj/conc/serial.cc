// Near-miss: the same member mutation outside any ParallelFor body is the
// serial simulator loop's business; the concurrency pass must stay silent.
#include "proj/conc/worker.h"

namespace conc {

void Worker::RunSerial() { hits_ += 1; }

}  // namespace conc
