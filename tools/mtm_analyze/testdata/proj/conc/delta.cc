// Near-miss: Delta::Add mutates its member, but Delta::* is the sanctioned
// merge point in the fixture config — the call-graph walk stops at the
// allowlist boundary and reports nothing.
#include "proj/conc/worker.h"

#include "proj/conc/pool.h"

namespace conc {

void Delta::Add(int v) { total_ += v; }

void Worker::RunDelta() {
  ParallelFor(2, [&](int shard) { delta_.Add(shard); });
}

}  // namespace conc
