// True positives for task-capture-write: a shard lambda mutates an
// enclosing local through a by-reference capture, and mutates a pointee
// through a pointer captured by value — both are shared across shards.
#include "proj/conc/pool.h"

namespace conc {

struct Tally {
  int value = 0;
};

int SumByReference() {
  int total = 0;
  ParallelFor(4, [&](int shard) { total += shard; });
  return total;
}

void SumThroughPointer(Tally* tally) {
  ParallelFor(4, [tally](int shard) { tally->value += shard; });
}

}  // namespace conc
