// The ambiguous call site: AmbigBump(shard) matches the one-argument
// definitions in both ambig_one.cc and ambig_two.cc — the walk must visit
// both (two findings), while the two-argument overload stays unvisited.
#include "proj/conc/ambig.h"

#include "proj/conc/pool.h"

namespace conc {

void RunAmbig() {
  ParallelFor(2, [&](int shard) { AmbigBump(shard); });
}

}  // namespace conc
