// Near-misses for task-capture-write: a by-reference capture written only
// through a shard-indexed subscript, a lambda-local scratch variable, and
// a mutable by-value copy — none is shared mutation.
#include "proj/conc/pool.h"

namespace conc {

int ShardIndexedWrites() {
  int slots[4] = {0, 0, 0, 0};
  ParallelFor(4, [&](int shard) { slots[shard] = shard; });
  return slots[0];
}

void LambdaLocalScratch() {
  ParallelFor(4, [](int shard) {
    int scratch = 0;
    scratch += shard;
  });
}

void MutableValueCopy(int base) {
  ParallelFor(4, [base](int shard) mutable { base += shard; });
}

}  // namespace conc
