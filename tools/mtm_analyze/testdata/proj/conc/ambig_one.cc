// First candidate TU for the ambiguous AmbigBump call.
#include "proj/conc/ambig.h"

namespace conc {

int g_one = 0;

void AmbigBump(int shard) { g_one += shard; }

}  // namespace conc
