// Worker under test: its shard bodies run through ParallelFor, so writes
// reachable from them are cross-task mutations.
#pragma once

#include "proj/conc/pool.h"

namespace conc {

class Worker {
 public:
  void RunShards();
  void RunIndirect();
  void RunDelta();
  void RunSerial();
  int hits() const { return hits_; }

 private:
  void BumpHits();
  Delta delta_;
  int hits_ = 0;
};

void ShardEntry(int shard);

}  // namespace conc
