// Second candidate TU for the ambiguous AmbigBump call, plus a
// two-argument overload that argument-count disambiguation must exclude
// from the one-argument call in ambig_caller.cc.
#include "proj/conc/ambig.h"

namespace conc {

int g_two = 0;
int g_three = 0;

void AmbigBump(int shard) { g_two += shard; }

void AmbigBump(int shard, int weight) { g_three += shard * weight; }

}  // namespace conc
