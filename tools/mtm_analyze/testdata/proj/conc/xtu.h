// Cross-TU surface: CrossBump is declared here and defined in
// xtu_impl.cc. A caller that sees this declaration in its include closure
// links the call to the out-of-TU definition.
#pragma once

namespace conc {

void CrossBump(int shard);

}  // namespace conc
