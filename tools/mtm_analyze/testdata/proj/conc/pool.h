// Minimal pool surface for the concurrency fixtures. ParallelFor is the
// sharded task-callback listed in the fixture config; Delta is the
// sanctioned merge point (mutation_allow = ["Delta::*"]).
#pragma once

namespace conc {

template <typename Fn>
void ParallelFor(int shards, Fn&& fn) {
  for (int s = 0; s < shards; ++s) {
    fn(s);
  }
}

class Delta {
 public:
  void Add(int v);
  int total() const { return total_; }

 private:
  int total_ = 0;
};

}  // namespace conc
