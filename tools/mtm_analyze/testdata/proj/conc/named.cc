// True positive: a named local lambda handed to ParallelFor by identifier
// is a task seed too, so its write to the namespace-scope counter is
// flagged.
#include "proj/conc/pool.h"

namespace conc {

int g_named = 0;

void RunNamed() {
  auto shard_body = [&](int shard) { g_named += shard; };
  ParallelFor(2, shard_body);
}

}  // namespace conc
