// Ambiguous-call surface: two one-argument AmbigBump definitions live in
// different TUs (ambig_one.cc and ambig_two.cc). Resolution keeps both as
// a multi-target edge and walks both bodies; the two-argument overload is
// excluded by argument-count disambiguation.
#pragma once

namespace conc {

void AmbigBump(int shard);

}  // namespace conc
