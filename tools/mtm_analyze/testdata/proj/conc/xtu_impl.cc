// Definition TU for CrossBump: the body writes a namespace-scope mutable
// counter, which the whole-program walk reaches from xtu_caller.cc.
#include "proj/conc/xtu.h"

namespace conc {

int g_xtu = 0;

void CrossBump(int shard) { g_xtu += shard; }

}  // namespace conc
