// Near-miss for the layering pass: libb -> liba is a declared, allowed
// downward dependency.
#pragma once

#include "proj/liba/base.h"

struct TopThing {
  BaseThing base;
};
