// Near-misses for unguarded-member-write: the same member written inside
// a lock_guard scope, and through a helper annotated requires(mu_) that
// callers invoke with the lock held — both clean.
#include "proj/lock/state.h"

#include "proj/conc/pool.h"

namespace lockfix {

void Counter::RunGuarded() {
  conc::ParallelFor(2, [this](int shard) {
    std::lock_guard<std::mutex> lock(mu_);
    value_ += shard;
  });
}

// mtm-analyze: requires(mu_)
void Counter::BumpLocked() { value_ += 1; }

void Counter::RunThroughHelper() {
  conc::ParallelFor(2, [this](int shard) {
    std::lock_guard<std::mutex> lock(mu_);
    if (shard > 0) {
      BumpLocked();
    }
  });
}

}  // namespace lockfix
