// Near-misses for lock-order: sequential non-nested scopes impose no
// ordering, and a multi-mutex scoped_lock acquires its group atomically —
// neither records an ordered pair.
#include "proj/lock/order.h"

namespace lockfix {

void Ordered::Sequential() {
  {
    std::lock_guard<std::mutex> a(mu_a_);
    touches_ += 1;
  }
  {
    std::lock_guard<std::mutex> b(mu_b_);
    touches_ += 1;
  }
}

void Ordered::Both() {
  std::scoped_lock both(mu_a_, mu_b_);
  touches_ += 1;
}

}  // namespace lockfix
