// Guarded-member fixture surface: Counter::value_ may only be written
// while mu_ is held, or from a function annotated
// `mtm-analyze: requires(mu_)`.
#pragma once

#include <mutex>

namespace lockfix {

class Counter {
 public:
  void RunUnguarded();
  void RunGuarded();
  void RunThroughHelper();

 private:
  void BumpLocked();

  std::mutex mu_;
  int value_ = 0;  // mtm-analyze: guarded_by(mu_)
};

}  // namespace lockfix
