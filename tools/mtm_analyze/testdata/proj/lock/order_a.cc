// One half of the inconsistent order: mu_a_ first, then mu_b_ through the
// cross-TU call to AcquireB (defined in order_b.cc).
#include "proj/lock/order.h"

namespace lockfix {

void Ordered::LockBoth() {
  std::lock_guard<std::mutex> lock(mu_a_);
  AcquireB();
}

}  // namespace lockfix
