// The other half: AcquireB takes mu_b_ on its own, and ReverseOrder nests
// mu_a_ inside mu_b_ — the opposite of LockBoth's mu_a_-then-mu_b_ order.
#include "proj/lock/order.h"

namespace lockfix {

void Ordered::AcquireB() {
  std::lock_guard<std::mutex> lock(mu_b_);
  touches_ += 1;
}

void Ordered::ReverseOrder() {
  std::lock_guard<std::mutex> outer(mu_b_);
  std::lock_guard<std::mutex> inner(mu_a_);
  touches_ += 1;
}

}  // namespace lockfix
