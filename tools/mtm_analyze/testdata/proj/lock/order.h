// Lock-order fixture surface: two mutexes acquired in conflicting orders
// across order_a.cc and order_b.cc, plus clean sequential and scoped_lock
// shapes in order_ok.cc.
#pragma once

#include <mutex>

namespace lockfix {

class Ordered {
 public:
  void LockBoth();
  void AcquireB();
  void ReverseOrder();
  void Sequential();
  void Both();

 private:
  std::mutex mu_a_;
  std::mutex mu_b_;
  int touches_ = 0;
};

}  // namespace lockfix
