// True positive for unguarded-member-write: the shard lambda writes the
// guarded member with no lock held anywhere on the path.
#include "proj/lock/state.h"

#include "proj/conc/pool.h"

namespace lockfix {

void Counter::RunUnguarded() {
  conc::ParallelFor(2, [this](int shard) { value_ += shard; });
}

}  // namespace lockfix
