// Declares BaseUnit (used by dep.h, so dep.h's include is legitimate) and
// BaseFn, which order.cc uses while only including this header
// transitively — the autofix promotes it to a direct include.
#pragma once

namespace fixproj {

struct BaseUnit {
  int v = 0;
};

int BaseFn(int weight);

}  // namespace fixproj
