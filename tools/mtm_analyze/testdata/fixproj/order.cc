// Deliberately messy translation unit for the --fix engine: <vector> is
// dead, <cstring> sits after the quoted includes (include-order
// violation), and BaseFn is used via dep.h's transitive include of
// base.h. ComputeFixedContents must repair all three in one shot.
#include "fixproj/order.h"
#include "fixproj/dep.h"
#include <cstring>
#include <vector>

namespace fixproj {

int OrderThing::Weigh(const char* name) {
  DepThing dep;
  return static_cast<int>(strlen(name)) + BaseFn(dep.weight);
}

}  // namespace fixproj
