// Own header for the --fix fixture translation unit.
#pragma once

namespace fixproj {

struct OrderThing {
  int Weigh(const char* name);
};

}  // namespace fixproj
