// Direct dependency of order.cc; needs base.h for BaseUnit and thereby
// drags BaseFn's declaration in transitively.
#pragma once

#include "fixproj/base.h"

namespace fixproj {

struct DepThing {
  BaseUnit unit;
  int weight = 1;
};

}  // namespace fixproj
