// Lock-discipline pass: guarded-member annotations and acquisition orders
// over the linked whole-program model.
//
// Annotation grammar (comments, so the compiler never sees them):
//   // mtm-analyze: guarded_by(mu_)   on a member's declaration line (or
//                                     the line above): every task-reachable
//                                     write to that member must hold mu_
//   // mtm-analyze: requires(mu_)     on the line above a function
//                                     definition: callers pass the lock in;
//                                     the body counts as holding mu_
//
// Two checks:
//   unguarded-member-write  a task-reachable write to a guarded_by member
//                           outside a std::lock_guard/unique_lock/
//                           scoped_lock scope on the named mutex (and not
//                           inside a requires(mu) function)
//   lock-order              two mutexes acquired in opposite orders
//                           anywhere in the linked call graph (intra- and
//                           cross-TU: the held set at a call site is paired
//                           against every mutex the callee transitively
//                           acquires); multi-mutex std::scoped_lock siblings
//                           are order-free by construction
//
// Mutex identity is compared by the last dotted component ("engine_->mu_"
// and "mu_" both compare as "mu_"): one shared-suffix alias is accepted in
// exchange for not modeling points-to. Early unlock() and condition-variable
// waits are modeled as still-held (scope lifetime), both inside the
// documented envelope (DESIGN.md §15).
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tools/mtm_analyze/mtm_analyze.h"

namespace mtm::analyze {
namespace {

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
}

// Last dotted component of a mutex path: "engine_.mu_" -> "mu_".
std::string LastComponent(const std::string& path) {
  std::size_t dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(dot + 1);
}

// The declared member name on stripped-code line `li` (0-based): the last
// identifier before the first '=', ';' or '{'. Lines carrying a '(' are
// declarators of functions, not data members — rejected.
std::string MemberNameOn(const SourceFile& file, std::size_t li) {
  if (li >= file.code.size()) {
    return "";
  }
  const std::string& line = file.code[li];
  std::string name;
  for (std::size_t i = 0; i < line.size();) {
    char c = line[i];
    if (c == '=' || c == ';' || c == '{') {
      break;
    }
    if (c == '(') {
      return "";
    }
    if (IsIdentChar(c)) {
      std::size_t j = i;
      while (j < line.size() && IsIdentChar(line[j])) {
        ++j;
      }
      std::string word = line.substr(i, j - i);
      if (word.empty() || (word[0] >= '0' && word[0] <= '9')) {
        i = j;
        continue;
      }
      name = word;
      i = j;
      continue;
    }
    ++i;
  }
  return name;
}

// The argument of `marker(...)` when it appears in raw line `li`; empty
// otherwise.
std::string MarkerArgOn(const SourceFile& file, std::size_t li, const std::string& marker) {
  if (li >= file.raw.size()) {
    return "";
  }
  const std::string& line = file.raw[li];
  std::size_t pos = line.find(marker);
  if (pos == std::string::npos) {
    return "";
  }
  std::size_t open = pos + marker.size();
  std::size_t close = line.find(')', open);
  if (close == std::string::npos) {
    return "";
  }
  std::string arg = line.substr(open, close - open);
  // Normalize member-access spellings to the dotted form locks use.
  std::string out;
  for (std::size_t i = 0; i < arg.size(); ++i) {
    if (arg[i] == ' ' || arg[i] == '\t') {
      continue;
    }
    if (arg[i] == '-' && i + 1 < arg.size() && arg[i + 1] == '>') {
      out.push_back('.');
      ++i;
      continue;
    }
    out.push_back(arg[i]);
  }
  return out;
}

// An observed "acquired b while holding a" direction, anchored at its first
// occurrence.
struct OrderSite {
  std::string file;
  int line = 0;
  std::string context;  // qualified function name
};

}  // namespace

std::map<std::string, std::string> CollectGuardedMembers(const Project& project) {
  static const std::string kMarker = "mtm-analyze: guarded_by(";
  std::map<std::string, std::string> guarded;
  for (const auto& [path, file] : project.files()) {
    for (std::size_t li = 0; li < file.raw.size(); ++li) {
      std::string mutex = MarkerArgOn(file, li, kMarker);
      if (mutex.empty()) {
        continue;
      }
      // The member lives on the marker's own line (trailing comment) or on
      // the next line (comment above the declaration).
      std::string member = MemberNameOn(file, li);
      if (member.empty()) {
        member = MemberNameOn(file, li + 1);
      }
      if (!member.empty()) {
        guarded[member] = mutex;
      }
    }
  }
  return guarded;
}

std::string RequiredMutex(const SourceFile& file, const FunctionInfo& fn) {
  static const std::string kMarker = "mtm-analyze: requires(";
  if (fn.line <= 0) {
    return "";
  }
  // fn.line is 1-based: check the declaration's own line, then up to two
  // lines above it (the comment usually sits directly above).
  std::size_t decl = static_cast<std::size_t>(fn.line - 1);
  std::string arg = MarkerArgOn(file, decl, kMarker);
  if (arg.empty() && decl >= 1) {
    arg = MarkerArgOn(file, decl - 1, kMarker);
  }
  if (arg.empty() && decl >= 2) {
    arg = MarkerArgOn(file, decl - 2, kMarker);
  }
  return arg;
}

std::vector<Finding> RunLockDisciplinePass(const Project& project, const Config& config) {
  std::vector<Finding> findings;
  const LinkedModel model(project);
  const std::map<std::string, std::string> guarded = CollectGuardedMembers(project);

  // ---- unguarded-member-write over the task-reachable set ----
  for (const FnRef& ref : model.TaskReachable(config, nullptr)) {
    const FunctionInfo& fn = model.Fn(ref);
    const SourceFile& file = model.File(ref);
    const std::string required = LastComponent(RequiredMutex(file, fn));
    for (const WriteSite& write : fn.writes) {
      auto it = guarded.find(write.name);
      if (it == guarded.end()) {
        continue;
      }
      const std::string mutex = LastComponent(it->second);
      if (!required.empty() && required == mutex) {
        continue;
      }
      bool covered = false;
      for (const LockSite& lock : fn.locks) {
        if (LastComponent(lock.mutex) == mutex && lock.line <= write.line &&
            write.line <= lock.end_line) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        findings.push_back(
            {"unguarded-member-write", file.path, write.line,
             "'" + fn.qualified + "' writes '" + write.name + "' (guarded_by " + it->second +
                 ") without holding '" + it->second +
                 "'; take a std::lock_guard on it or annotate the function "
                 "`mtm-analyze: requires(" + it->second + ")`",
             write.name});
      }
    }
  }

  // ---- lock-order over every function body in the linked graph ----
  // Ordered pairs (a, b) = "acquired b while holding a", anchored at their
  // first observed site. A pair plus its reverse is an inconsistency.
  std::map<std::pair<std::string, std::string>, OrderSite> observed;
  auto record = [&](const std::string& held, const std::string& acquired, const std::string& path,
                    int line, const std::string& context) {
    if (held == acquired) {
      return;
    }
    observed.emplace(std::make_pair(held, acquired), OrderSite{path, line, context});
  };

  // Memoized transitive set of mutexes a function acquires (by last
  // component). Cycles see the in-progress entry (empty) and terminate.
  std::map<FnRef, std::set<std::string>> closure_memo;
  std::function<const std::set<std::string>&(const FnRef&)> acquired_closure =
      [&](const FnRef& ref) -> const std::set<std::string>& {
    auto it = closure_memo.find(ref);
    if (it != closure_memo.end()) {
      return it->second;
    }
    auto& entry = closure_memo[ref];  // inserted empty first: cycle-safe
    const FunctionInfo& fn = model.Fn(ref);
    std::set<std::string> acc;
    for (const LockSite& lock : fn.locks) {
      acc.insert(LastComponent(lock.mutex));
    }
    for (const CallSite& call : fn.calls) {
      for (const FnRef& target : model.Resolve(ref, call, nullptr)) {
        const std::set<std::string>& sub = acquired_closure(target);
        acc.insert(sub.begin(), sub.end());
      }
    }
    entry = std::move(acc);
    return closure_memo[ref];
  };

  for (const auto& [path, file] : project.files()) {
    for (std::size_t idx = 0; idx < file.functions.size(); ++idx) {
      const FunctionInfo& fn = file.functions[idx];
      if (!fn.has_body) {
        continue;
      }
      FnRef ref{path, static_cast<int>(idx)};
      // Intra-function: each site against the mutexes already held at it.
      for (const LockSite& lock : fn.locks) {
        for (const std::string& held : lock.held) {
          record(LastComponent(held), LastComponent(lock.mutex), path, lock.line, fn.qualified);
        }
      }
      // Cross-function: the held set at a call site against everything the
      // callee transitively acquires.
      for (const CallSite& call : fn.calls) {
        std::set<std::string> held_here;
        for (const LockSite& lock : fn.locks) {
          if (lock.line <= call.line && call.line <= lock.end_line) {
            held_here.insert(LastComponent(lock.mutex));
          }
        }
        if (held_here.empty()) {
          continue;
        }
        for (const FnRef& target : model.Resolve(ref, call, nullptr)) {
          for (const std::string& acquired : acquired_closure(target)) {
            for (const std::string& held : held_here) {
              record(held, acquired, path, call.line, fn.qualified);
            }
          }
        }
      }
    }
  }

  for (const auto& [pair, site] : observed) {
    auto reverse = observed.find({pair.second, pair.first});
    if (reverse == observed.end()) {
      continue;
    }
    const OrderSite& other = reverse->second;
    findings.push_back(
        {"lock-order", site.file, site.line,
         "'" + site.context + "' acquires '" + pair.second + "' while holding '" + pair.first +
             "', but " + other.file + ":" + std::to_string(other.line) + " ('" + other.context +
             "') acquires them in the opposite order; pick one global order",
         pair.first + "<" + pair.second});
  }

  return findings;
}

}  // namespace mtm::analyze
