#!/usr/bin/env python3
"""mtm_lint: project-specific static checks for the MTM simulator.

Enforces conventions the compiler cannot (or that clang-tidy has no check
for):

  raw-unit-param   public headers must not declare function parameters of
                   raw integer type named *_ns / *_bytes — use SimNanos /
                   Bytes from src/common/types.h instead.
  raw-unit-field   same rule for struct/class fields declared in headers.
  strong-leak      headers must not spell strong_internal:: outside the
                   strong-type definition sites (src/common/types.h,
                   src/common/strong_types.h, src/obs/metric_id.h); the
                   CRTP base is an implementation detail. Deriving a new
                   strong type (`public strong_internal::...`) and std::hash
                   specializations via strong_internal::StrongHash are the
                   two sanctioned uses and stay allowed everywhere.
  assert-use       use MTM_CHECK (src/common/logging.h), never <cassert>'s
                   assert(): MTM_CHECK stays on in release builds and
                   streams context.
  naked-new        no naked `new` — use std::make_unique / containers.
                   Allowlisted sites (private ctors, arena-style nodes) are
                   listed in ALLOW_NAKED_NEW with a justification.
  pragma-once      every header uses `#pragma once` (not #ifndef guards).
  include-order    within a file, angle-bracket includes come before quoted
                   project includes; the only quoted include allowed ahead
                   of them is a .cc file's own header on the first line.
  flag-style       command-line flag names are kebab-case ([a-z0-9-]).
  endl-use         no std::endl — it forces a flush on every use; write
                   '\\n' and let the stream decide when to flush.
  unknown-suppression
                   every `// mtm-analyze: allow(<target>)` suppression names
                   a check or pass that mtm_analyze can actually emit;
                   anything else is a typo that silently suppresses nothing.
  suppression-sync VALID_SUPPRESSION_TARGETS below must match KnownChecks()
                   in tools/mtm_analyze/passes.cc; this check parses that
                   file and fails when the two lists drift.

Usage:
  tools/mtm_lint/mtm_lint.py [--root DIR] [--json PATH]

Exit status is 0 when no findings, 1 otherwise; --json writes a
machine-readable report either way.
"""

import argparse
import json
import re
import sys
from pathlib import Path

# (file, substring) pairs exempt from the naked-new check, with reasons:
#   page_table.cc — radix-tree nodes are arena-owned and freed in ~Node.
#   trace.cc      — ctor is private, make_unique cannot reach it; the raw
#                   pointer is wrapped in a unique_ptr on the same line.
ALLOW_NAKED_NEW = {
    ("src/sim/page_table.cc", "new Node()"),
    ("src/workloads/trace.cc", "new TraceReplayWorkload("),
}

# Legacy flag spellings kept for script compatibility.
ALLOW_FLAG_NAMES = {"fault_spec", "metrics_out", "trace_out"}

# Headers that define the strong-type machinery itself.
STRONG_TYPE_HOMES = {
    "src/common/strong_types.h",
    "src/common/types.h",
    "src/obs/metric_id.h",
}

RAW_INT_TYPES = r"(?:u8|u16|u32|u64|i8|i16|i32|i64|int|long|unsigned|size_t|std::size_t)"
RAW_UNIT_PARAM = re.compile(
    r"[(,]\s*(?:const\s+)?" + RAW_INT_TYPES + r"\s+(\w*_(?:ns|bytes))\b"
)
RAW_UNIT_FIELD = re.compile(
    r"^\s*(?:const\s+|static\s+|constexpr\s+|mutable\s+)*"
    + RAW_INT_TYPES
    + r"\s+(\w*_(?:ns|bytes)_?)\s*[;={]"
)
STRONG_LEAK = re.compile(r"strong_internal::")
STRONG_LEAK_ALLOWED = re.compile(
    r"public\s+(?:\w+::)*strong_internal::|strong_internal::StrongHash"
)
ASSERT_CALL = re.compile(r"(?<![_\w])assert\s*\(")
NAKED_NEW = re.compile(r"(?<![_\w.])new\s+[A-Za-z_:][\w:]*\s*[({\[]")
FLAG_GET = re.compile(r"flags\.Get(?:String|U64|Bool|Double)\s*\(\s*\"([^\"]+)\"")
ENDL_USE = re.compile(r"\bendl\b")
INCLUDE = re.compile(r'^\s*#\s*include\s+([<"])([^>"]+)[>"]')
GUARD = re.compile(r"^\s*#\s*ifndef\s+\w+_H_?\b")
SUPPRESSION = re.compile(r"mtm-analyze:\s*allow\(([^)]*)\)")

# Valid targets for `// mtm-analyze: allow(<target>)` suppressions: every
# check name mtm_analyze can emit plus the pass names. Must match
# KnownChecks() in tools/mtm_analyze/passes.cc — the suppression-sync check
# parses that file and fails when the two lists drift.
VALID_SUPPRESSION_TARGETS = {
    "unused-include", "transitive-include", "include-cycle", "dead-system-include",
    "layering",
    "unordered-iteration", "wall-clock", "raw-random",
    "discarded-status", "raw-error-return", "unchecked-result-unwrap",
    "task-member-write", "task-static-write", "task-capture-write",
    "unguarded-member-write", "lock-order",
    "include-graph", "determinism", "error-discipline", "concurrency",
    "lock-discipline", "suppression",
}


def strip_comments(text):
    """Remove // and /* */ comments and string literals, preserving newlines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            nl = text.count("\n", i, n if j < 0 else j)
            out.append("\n" * nl)
            i = n if j < 0 else j + 2
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            out.append(c + " " * max(0, j - i - 1) + c)
            i = min(j + 1, n)
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Linter:
    def __init__(self, root):
        self.root = Path(root)
        self.findings = []

    def report(self, check, path, line, message):
        self.findings.append(
            {"check": check, "file": str(path), "line": line, "message": message}
        )

    def lint_file(self, path):
        rel = path.relative_to(self.root).as_posix()
        raw = path.read_text()
        raw_lines = raw.splitlines()
        # Comment/string-stripped view for code checks; raw view for checks
        # that need literal contents (includes, flag names).
        lines = strip_comments(raw).splitlines()
        is_header = path.suffix == ".h"

        if is_header:
            if "#pragma once" not in raw:
                self.report("pragma-once", rel, 1, "header is missing '#pragma once'")
            for i, line in enumerate(lines, 1):
                if GUARD.match(line):
                    self.report(
                        "pragma-once", rel, i,
                        "use '#pragma once' instead of #ifndef include guards",
                    )
            for i, line in enumerate(lines, 1):
                m = RAW_UNIT_PARAM.search(line)
                if m:
                    unit = "SimNanos" if m.group(1).endswith("_ns") else "Bytes"
                    self.report(
                        "raw-unit-param", rel, i,
                        f"parameter '{m.group(1)}' has a raw integer type; use {unit}",
                    )
                m = RAW_UNIT_FIELD.match(line)
                if m:
                    unit = "SimNanos" if m.group(1).rstrip("_").endswith("_ns") else "Bytes"
                    self.report(
                        "raw-unit-field", rel, i,
                        f"field '{m.group(1)}' has a raw integer type; use {unit}",
                    )
            if rel not in STRONG_TYPE_HOMES:
                for i, line in enumerate(lines, 1):
                    if STRONG_LEAK.search(line) and not STRONG_LEAK_ALLOWED.search(line):
                        self.report(
                            "strong-leak", rel, i,
                            "strong_internal:: is an implementation namespace; public "
                            "signatures must use the concrete strong types",
                        )

        for i, line in enumerate(lines, 1):
            if ASSERT_CALL.search(line):
                self.report(
                    "assert-use", rel, i,
                    "use MTM_CHECK (stays on in release, streams context) instead of assert()",
                )
            if ENDL_USE.search(line):
                self.report(
                    "endl-use", rel, i,
                    "std::endl flushes the stream on every use; write '\\n' instead",
                )
            m = NAKED_NEW.search(line)
            if m and not any(
                rel == f and allow in raw for f, allow in ALLOW_NAKED_NEW
            ):
                self.report(
                    "naked-new", rel, i,
                    "naked 'new'; use std::make_unique or add an allowlist entry with a reason",
                )
        for i, line in enumerate(raw_lines, 1):
            m = FLAG_GET.search(line)
            if m and m.group(1) not in ALLOW_FLAG_NAMES:
                if not re.fullmatch(r"[a-z][a-z0-9-]*", m.group(1)):
                    self.report(
                        "flag-style", rel, i,
                        f"flag '--{m.group(1)}' is not kebab-case",
                    )
            m = SUPPRESSION.search(line)
            if m:
                target = m.group(1).strip()
                # Placeholders like allow(<check>) in docs/tool sources and
                # string-literal fragments are not real suppressions.
                if re.fullmatch(r"[a-z][a-z-]*", target):
                    if target not in VALID_SUPPRESSION_TARGETS:
                        self.report(
                            "unknown-suppression", rel, i,
                            f"suppression target '{target}' is not a check or pass "
                            "mtm_analyze can emit; it silently suppresses nothing",
                        )

        self.lint_include_order(rel, path, raw_lines)

    def lint_include_order(self, rel, path, lines):
        includes = []
        for i, line in enumerate(lines, 1):
            m = INCLUDE.match(line)
            if m:
                includes.append((i, m.group(1) == "<", m.group(2)))
        if not includes:
            return
        start = 0
        if path.suffix != ".h" and not includes[0][1]:
            own = path.with_suffix(".h").name
            if includes[0][2].endswith("/" + own) or includes[0][2] == own:
                start = 1  # a .cc file's own header comes first
        seen_quoted = False
        for line_no, is_angle, name in includes[start:]:
            if not is_angle:
                seen_quoted = True
            elif seen_quoted:
                self.report(
                    "include-order", rel, line_no,
                    f"system include <{name}> after project includes; "
                    "order is: own header, <system>, \"project\"",
                )
                return  # one finding per file is enough to fix ordering

    def check_suppression_sync(self):
        passes = self.root / "tools" / "mtm_analyze" / "passes.cc"
        if not passes.exists():
            return
        rel = "tools/mtm_analyze/passes.cc"
        m = re.search(r"KnownChecks\(\)\s*\{(.*?)return kChecks;", passes.read_text(), re.S)
        if not m:
            self.report(
                "suppression-sync", rel, 1,
                "cannot locate the KnownChecks() literal; update mtm_lint's parser",
            )
            return
        found = set(re.findall(r'"([^"]+)"', m.group(1)))
        if found != VALID_SUPPRESSION_TARGETS:
            drift = ", ".join(sorted(found ^ VALID_SUPPRESSION_TARGETS))
            self.report(
                "suppression-sync", rel, 1,
                f"KnownChecks() and mtm_lint's VALID_SUPPRESSION_TARGETS drifted: {drift}",
            )

    def run(self, subdirs):
        files = []
        for sub in subdirs:
            files += sorted((self.root / sub).rglob("*.h"))
            files += sorted((self.root / sub).rglob("*.cc"))
            files += sorted((self.root / sub).rglob("*.cpp"))
        # mtm_analyze's testdata fixtures deliberately violate the rules the
        # analyzer (and this linter) enforce; they are inputs, not code.
        files = [f for f in files if f.name != "mtm_lint.py" and "testdata" not in f.parts]
        for f in files:
            self.lint_file(f)
        self.check_suppression_sync()
        return files


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=str(Path(__file__).resolve().parents[2]))
    parser.add_argument("--json", help="write a machine-readable findings report")
    parser.add_argument(
        "--subdirs", nargs="*", default=["src", "tools", "tests", "bench", "examples"]
    )
    args = parser.parse_args()

    linter = Linter(args.root)
    files = linter.run(args.subdirs)

    for f in linter.findings:
        print(f"{f['file']}:{f['line']}: [{f['check']}] {f['message']}")
    summary = {
        "files_checked": len(files),
        "findings": linter.findings,
        "ok": not linter.findings,
    }
    if args.json:
        Path(args.json).write_text(json.dumps(summary, indent=2) + "\n")
    print(f"mtm_lint: {len(files)} files checked, {len(linter.findings)} finding(s)")
    return 0 if not linter.findings else 1


if __name__ == "__main__":
    sys.exit(main())
