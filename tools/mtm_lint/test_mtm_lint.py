#!/usr/bin/env python3
"""Self-test for mtm_lint: every check must fire on a bad fixture and stay
quiet on a good one."""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

LINT = Path(__file__).resolve().parent / "mtm_lint.py"

BAD_HEADER = """\
#ifndef BAD_H_
#define BAD_H_
void Sleep(u64 duration_ns);
void Copy(const u64 chunk_bytes);
struct Stats {
  u64 total_ns = 0;
  std::size_t copied_bytes;
};
strong_internal::Quantity<Foo, u64> Leak();
#endif
"""

BAD_SOURCE = """\
#include "src/other.h"
#include <vector>
void F() {
  assert(1 == 1);
  auto* p = new Widget();
  FlagSet flags(argc, argv);
  flags.GetU64("Not_Kebab", 0);
  std::cout << "done" << std::endl;
  // mtm-analyze: allow(wall-clcok) typo'd target suppresses nothing
}
"""

# A KnownChecks() literal that omits most targets: suppression-sync drift.
BAD_PASSES_CC = """\
const std::set<std::string>& KnownChecks() {
  static const std::set<std::string> kChecks = {"unused-include", "layering"};
  return kChecks;
}
"""

GOOD_HEADER = """\
#pragma once
#include <vector>
#include "src/common/types.h"
// assert(in a comment), "new Thing(" in a string, and std::endl in either
// are fine; so is an identifier merely containing endl:
inline const char* kMsg = "never assert(x), new Foo(, or std::endl";
void AppendLine(int appendline_count);
void Sleep(SimNanos duration);
struct GoodStats {
  SimNanos total;
  Bytes copied;
};
class Token : public strong_internal::Ordinal<Token, u32> {};
template <>
struct std::hash<Token> : mtm::strong_internal::StrongHash<Token> {};
// mtm-analyze: allow(determinism) a real target with a justification is fine
// and a doc placeholder like `mtm-analyze: allow(<check>) reason` is ignored.
"""


def run_lint(root):
    out = subprocess.run(
        [sys.executable, str(LINT), "--root", str(root), "--subdirs", "src",
         "--json", str(root / "report.json")],
        capture_output=True, text=True,
    )
    report = json.loads((root / "report.json").read_text())
    return out.returncode, report


def main():
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        (root / "src").mkdir()
        (root / "src" / "bad.h").write_text(BAD_HEADER)
        (root / "src" / "bad.cc").write_text(BAD_SOURCE)
        (root / "tools" / "mtm_analyze").mkdir(parents=True)
        (root / "tools" / "mtm_analyze" / "passes.cc").write_text(BAD_PASSES_CC)
        # Fixture trees named testdata are exempt from every check.
        (root / "src" / "testdata").mkdir()
        (root / "src" / "testdata" / "fixture.h").write_text("#ifndef FIXTURE_H_\n#endif\n")
        rc, report = run_lint(root)
        checks = {f["check"] for f in report["findings"]}
        expected = {"pragma-once", "raw-unit-param", "raw-unit-field",
                    "strong-leak", "assert-use", "naked-new",
                    "include-order", "flag-style", "endl-use",
                    "unknown-suppression", "suppression-sync"}
        missing = expected - checks
        assert rc == 1, f"expected exit 1 on bad fixtures, got {rc}"
        assert not missing, f"checks failed to fire: {missing}"
        assert not any(f["file"].startswith("src/testdata") for f in report["findings"]), \
            "testdata fixtures must be exempt from linting"

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        (root / "src").mkdir()
        (root / "src" / "good.h").write_text(GOOD_HEADER)
        rc, report = run_lint(root)
        assert rc == 0, f"false positives on good fixture: {report['findings']}"

    print("mtm_lint self-test passed")


if __name__ == "__main__":
    main()
