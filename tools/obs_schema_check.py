#!/usr/bin/env python3
"""Validates mtmsim observability artifacts.

Checks the structural contract the exporters promise (DESIGN.md §8):

  metrics JSONL  one JSON object per line with integer `interval` (strictly
                 increasing from 0), integer `sim_ns` (non-decreasing), and a
                 `metrics` object whose values are numbers or histogram
                 summaries {count, mean, min, max}. No "wall/" keys — host
                 timings must not leak into the deterministic timeline.
  Chrome trace   a JSON object with `traceEvents`; every event has a valid
                 `ph` (X/C/M, or the s/f flow pair), X events carry
                 name/cat/ts/dur, C events carry name/ts/args.value, flow
                 events carry name/cat/id/ts with every `f` closing a prior
                 `s` of the same name/cat/id (and `f` carrying bp="e"), and
                 at least one pte_scan span and one migration-category span
                 exist.

  features JSONL one training row per region per interval
                 (--policy-features-out): the fixed key order
                 interval/sim_ns/start/len/socket/tier, the eight features of
                 FeatureIndex (src/migration/features.h), then
                 action/dst_tier/label. Intervals are non-decreasing, action
                 is -1/0/+1 and carries a destination tier iff nonzero.
  heatmap JSONL  one line per interval (--heatmap-out): strictly increasing
                 `interval`, non-decreasing `sim_ns`, and a `regions` array
                 sorted by `start` whose entries carry
                 start/len/whi/hi/tier/pingpong.

Usage:
  tools/obs_schema_check.py --metrics run.jsonl --trace trace.json \
      --features features.jsonl --heatmap heatmap.jsonl

Exit status 0 when every passed artifact validates (each may be omitted).
"""

import argparse
import json
import sys

NUMBER = (int, float)
HISTOGRAM_KEYS = {"count", "mean", "min", "max"}


def fail(msg):
    print(f"obs_schema_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_metric_value(name, value):
    if isinstance(value, bool):
        fail(f"metric '{name}' is a bool, expected a number or histogram")
    if isinstance(value, NUMBER):
        return
    if isinstance(value, dict):
        if set(value) != HISTOGRAM_KEYS:
            fail(f"metric '{name}' histogram keys {sorted(value)} != "
                 f"{sorted(HISTOGRAM_KEYS)}")
        for k, v in value.items():
            if isinstance(v, bool) or not isinstance(v, NUMBER):
                fail(f"metric '{name}' histogram field '{k}' is not a number")
        return
    fail(f"metric '{name}' has unsupported type {type(value).__name__}")


def check_metrics(path):
    prev_interval = -1
    prev_sim_ns = -1
    lines = 0
    with open(path) as f:
        for i, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            lines += 1
            try:
                snap = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{i}: not valid JSON: {e}")
            for key in ("interval", "sim_ns", "metrics"):
                if key not in snap:
                    fail(f"{path}:{i}: missing key '{key}'")
            if snap["interval"] != prev_interval + 1:
                fail(f"{path}:{i}: interval {snap['interval']} after "
                     f"{prev_interval}; expected {prev_interval + 1}")
            prev_interval = snap["interval"]
            if snap["sim_ns"] < prev_sim_ns:
                fail(f"{path}:{i}: sim_ns went backwards")
            prev_sim_ns = snap["sim_ns"]
            if not isinstance(snap["metrics"], dict) or not snap["metrics"]:
                fail(f"{path}:{i}: 'metrics' must be a non-empty object")
            for name, value in snap["metrics"].items():
                if name.startswith("wall/"):
                    fail(f"{path}:{i}: host-clock metric '{name}' leaked "
                         "into the deterministic timeline")
                check_metric_value(name, value)
    if lines == 0:
        fail(f"{path}: no snapshots")
    print(f"obs_schema_check: {path}: {lines} snapshot(s) OK")


def check_trace(path):
    with open(path) as f:
        try:
            trace = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: not valid JSON: {e}")
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        fail(f"{path}: missing 'traceEvents'")
    events = trace["traceEvents"]
    pte_scans = 0
    migration_spans = 0
    flow_pairs = 0
    open_flows = {}  # (name, cat, id) -> count of unmatched starts
    for n, ev in enumerate(events):
        where = f"{path}: traceEvents[{n}]"
        ph = ev.get("ph")
        if ph not in ("X", "C", "M", "s", "f"):
            fail(f"{where}: bad ph {ph!r}")
        if ph in ("s", "f"):
            for key in ("name", "cat", "id", "ts"):
                if key not in ev:
                    fail(f"{where}: flow event missing '{key}'")
            flow_key = (ev["name"], ev["cat"], ev["id"])
            if ph == "s":
                open_flows[flow_key] = open_flows.get(flow_key, 0) + 1
            else:
                if ev.get("bp") != "e":
                    fail(f"{where}: flow finish must bind to the enclosing "
                         'slice (bp="e")')
                if open_flows.get(flow_key, 0) == 0:
                    fail(f"{where}: flow finish {flow_key} has no matching "
                         "start")
                open_flows[flow_key] -= 1
                flow_pairs += 1
        if ph == "X":
            for key in ("name", "cat", "ts", "dur"):
                if key not in ev:
                    fail(f"{where}: X event missing '{key}'")
            if ev["dur"] < 0:
                fail(f"{where}: negative duration")
            if ev["name"] == "pte_scan":
                pte_scans += 1
            if ev["cat"] == "migration":
                migration_spans += 1
        elif ph == "C":
            for key in ("name", "ts", "args"):
                if key not in ev:
                    fail(f"{where}: C event missing '{key}'")
            if "value" not in ev["args"]:
                fail(f"{where}: C event args missing 'value'")
    if pte_scans == 0:
        fail(f"{path}: no pte_scan spans")
    if migration_spans == 0:
        fail(f"{path}: no migration spans")
    print(f"obs_schema_check: {path}: {len(events)} event(s), "
          f"{pte_scans} pte_scan span(s), {migration_spans} migration "
          f"span(s), {flow_pairs} flow pair(s) OK")


# Keep in sync with kFeatureNames (src/migration/features.h).
FEATURE_NAMES = ["whi", "hi", "trend", "skew", "log_size", "tier_rank",
                 "pingpong", "move_recency"]
FEATURE_ROW_KEYS = (["interval", "sim_ns", "start", "len", "socket", "tier"]
                    + FEATURE_NAMES + ["action", "dst_tier", "label"])
HEATMAP_REGION_KEYS = ["start", "len", "whi", "hi", "tier", "pingpong"]


def check_number(where, name, value):
    if isinstance(value, bool) or not isinstance(value, NUMBER):
        fail(f"{where}: '{name}' is not a number")


def check_features(path):
    prev_interval = -1
    prev_sim_ns = -1
    rows = 0
    with open(path) as f:
        for i, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            rows += 1
            where = f"{path}:{i}"
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{where}: not valid JSON: {e}")
            if list(row) != FEATURE_ROW_KEYS:
                fail(f"{where}: keys {list(row)} != {FEATURE_ROW_KEYS}")
            for name in ("interval", "sim_ns", "start", "len", "socket",
                         "tier", "action", "dst_tier"):
                if isinstance(row[name], bool) or not isinstance(row[name], int):
                    fail(f"{where}: '{name}' is not an integer")
            for name in FEATURE_NAMES + ["label"]:
                check_number(where, name, row[name])
            # Rows are labeled one interval late, so several rows share an
            # interval and intervals only need to be non-decreasing.
            if row["interval"] < prev_interval:
                fail(f"{where}: interval went backwards")
            prev_interval = row["interval"]
            if row["sim_ns"] < prev_sim_ns:
                fail(f"{where}: sim_ns went backwards")
            prev_sim_ns = row["sim_ns"]
            if row["action"] not in (-1, 0, 1):
                fail(f"{where}: action {row['action']} not in -1/0/+1")
            if (row["dst_tier"] == -1) != (row["action"] == 0):
                fail(f"{where}: dst_tier {row['dst_tier']} inconsistent "
                     f"with action {row['action']}")
            if not 0.0 <= row["skew"] <= 1.0:
                fail(f"{where}: skew {row['skew']} outside [0, 1]")
    if rows == 0:
        fail(f"{path}: no feature rows")
    print(f"obs_schema_check: {path}: {rows} feature row(s) OK")


def check_heatmap(path):
    prev_interval = -1
    prev_sim_ns = -1
    lines = 0
    with open(path) as f:
        for i, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            lines += 1
            where = f"{path}:{i}"
            try:
                snap = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{where}: not valid JSON: {e}")
            if list(snap) != ["interval", "sim_ns", "regions"]:
                fail(f"{where}: keys {list(snap)} != "
                     "['interval', 'sim_ns', 'regions']")
            if snap["interval"] != prev_interval + 1:
                fail(f"{where}: interval {snap['interval']} after "
                     f"{prev_interval}; expected {prev_interval + 1}")
            prev_interval = snap["interval"]
            if snap["sim_ns"] < prev_sim_ns:
                fail(f"{where}: sim_ns went backwards")
            prev_sim_ns = snap["sim_ns"]
            if not isinstance(snap["regions"], list):
                fail(f"{where}: 'regions' must be an array")
            prev_start = -1
            for n, region in enumerate(snap["regions"]):
                rwhere = f"{where}: regions[{n}]"
                if list(region) != HEATMAP_REGION_KEYS:
                    fail(f"{rwhere}: keys {list(region)} != "
                         f"{HEATMAP_REGION_KEYS}")
                for name in HEATMAP_REGION_KEYS:
                    check_number(rwhere, name, region[name])
                if region["start"] <= prev_start:
                    fail(f"{rwhere}: starts not strictly increasing")
                prev_start = region["start"]
    if lines == 0:
        fail(f"{path}: no heatmap lines")
    print(f"obs_schema_check: {path}: {lines} heatmap line(s) OK")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics", help="metrics timeline JSONL to validate")
    parser.add_argument("--trace", help="Chrome trace JSON to validate")
    parser.add_argument("--features",
                        help="feature-export training-row JSONL to validate")
    parser.add_argument("--heatmap", help="heatmap JSONL to validate")
    args = parser.parse_args()
    if not (args.metrics or args.trace or args.features or args.heatmap):
        fail("nothing to check: pass --metrics, --trace, --features, "
             "and/or --heatmap")
    if args.metrics:
        check_metrics(args.metrics)
    if args.trace:
        check_trace(args.trace)
    if args.features:
        check_features(args.features)
    if args.heatmap:
        check_heatmap(args.heatmap)


if __name__ == "__main__":
    main()
