// Tests for the baseline profilers: DAMON, Thermostat, tiered-AutoNUMA,
// AutoTiering, HeMem.
#include <gtest/gtest.h>

#include "src/common/types.h"
#include "src/common/units.h"
#include "src/mem/address_space.h"
#include "src/profiling/autonuma.h"
#include "src/profiling/autotiering.h"
#include "src/profiling/damon.h"
#include "src/profiling/hemem_profiler.h"
#include "src/profiling/profiler.h"
#include "src/profiling/thermostat.h"
#include "src/sim/access_engine.h"
#include "src/sim/access_tracker.h"
#include "src/sim/clock.h"
#include "src/sim/counters.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"
#include "src/sim/pebs.h"

namespace mtm {
namespace {

class ProfilersTest : public ::testing::Test {
 protected:
  ProfilersTest()
      : machine_(Machine::OptaneFourTier(512)),
        counters_(machine_.num_components()),
        engine_(machine_, page_table_, clock_, counters_, AccessEngine::Config{}),
        pebs_(machine_, PebsEngine::Config{.sample_period = 20, .sample_dram = true}) {
    engine_.set_pebs(&pebs_);
    engine_.set_tracker(&tracker_);
  }

  VirtAddr BuildMapped(Bytes bytes, ComponentId component, bool huge = false) {
    u32 vma = address_space_.Allocate(bytes, huge, "w");
    VirtAddr start = address_space_.vma(vma).start;
    EXPECT_TRUE(page_table_.MapRange(start, address_space_.vma(vma).len, component, huge).ok());
    tracker_.Register(start, address_space_.vma(vma).len);
    return start;
  }

  void TouchRange(VirtAddr start, Bytes len, int repeat = 1, u32 socket = 0) {
    for (int r = 0; r < repeat; ++r) {
      for (VirtAddr a = start; a < start + len; a += kPageSize) {
        engine_.Apply(a, false, socket);
      }
    }
  }

  Machine machine_;
  SimClock clock_;
  PageTable page_table_;
  AddressSpace address_space_;
  MemCounters counters_;
  AccessTracker tracker_;
  AccessEngine engine_;
  PebsEngine pebs_;
};

// ---------------------------------------------------------------- DAMON --

TEST_F(ProfilersTest, DamonSeedsOneRegionPerVma) {
  BuildMapped(MiB(8), ComponentId(0));
  BuildMapped(MiB(4), ComponentId(0));
  DamonProfiler damon(page_table_, address_space_, DamonProfiler::Config{});
  damon.Initialize();
  EXPECT_EQ(damon.regions().size(), 2u);
}

TEST_F(ProfilersTest, DamonSplitsWhenUnderBudget) {
  BuildMapped(MiB(8), ComponentId(0));
  DamonProfiler::Config config;
  config.max_regions = 64;
  DamonProfiler damon(page_table_, address_space_, config);
  damon.Initialize();
  damon.OnIntervalStart();
  damon.OnScanTick(0);
  ProfileOutput out = damon.OnIntervalEnd();
  EXPECT_GT(out.regions_split, 0u);
  EXPECT_GT(damon.regions().size(), 1u);
  EXPECT_LE(damon.regions().size(), 64u);
}

TEST_F(ProfilersTest, DamonRegionCountStaysBounded) {
  BuildMapped(MiB(32), ComponentId(0));
  DamonProfiler::Config config;
  config.max_regions = 32;
  config.min_regions = 4;
  DamonProfiler damon(page_table_, address_space_, config);
  damon.Initialize();
  VirtAddr start = address_space_.vmas()[0].start;
  for (int i = 0; i < 20; ++i) {
    damon.OnIntervalStart();
    for (u32 t = 0; t < 3; ++t) {
      TouchRange(start + MiB(8).value(), MiB(4));
      damon.OnScanTick(t);
    }
    damon.OnIntervalEnd();
    EXPECT_LE(damon.regions().size(), 32u);
    EXPECT_GE(damon.regions().size(), 1u);
  }
}

TEST_F(ProfilersTest, DamonDetectsHotVmaEventually) {
  VirtAddr start = BuildMapped(MiB(16), ComponentId(0));
  DamonProfiler::Config config;
  config.max_regions = 128;
  DamonProfiler damon(page_table_, address_space_, config);
  damon.Initialize();
  double best_hot = 0;
  for (int i = 0; i < 15; ++i) {
    damon.OnIntervalStart();
    for (u32 t = 0; t < 3; ++t) {
      TouchRange(start, MiB(2), 1);
      damon.OnScanTick(t);
    }
    ProfileOutput out = damon.OnIntervalEnd();
    for (const HotnessEntry& e : out.entries) {
      if (e.start < start + MiB(2).value()) {
        best_hot = std::max(best_hot, e.hotness);
      }
    }
  }
  EXPECT_GT(best_hot, 0.0);
}

// ----------------------------------------------------------- Thermostat --

TEST_F(ProfilersTest, ThermostatFixedRegions) {
  BuildMapped(MiB(8), ComponentId(0));
  ThermostatProfiler::Config config;
  config.interval_ns = Millis(20);
  ThermostatProfiler thermo(address_space_, tracker_, config);
  thermo.Initialize();
  thermo.OnIntervalStart();
  ProfileOutput out = thermo.OnIntervalEnd();
  EXPECT_EQ(out.num_regions, MiB(8) / kHugePageBytes);
}

TEST_F(ProfilersTest, ThermostatBudgetReflectsCostMultiplier) {
  BuildMapped(MiB(8), ComponentId(0));
  ThermostatProfiler::Config config;
  config.interval_ns = Millis(20);
  ThermostatProfiler thermo(address_space_, tracker_, config);
  // 2.5x the per-sample cost => 1/2.5 the samples of an equal-overhead
  // PTE-scan profiler at the same num_scans.
  u64 scan_budget = static_cast<u64>(20e6 * 0.05 / (120.0 * 3));
  EXPECT_NEAR(static_cast<double>(thermo.SampleBudget()),
              static_cast<double>(scan_budget) / 2.5, 2.0);
}

TEST_F(ProfilersTest, ThermostatCountsExactAccesses) {
  VirtAddr start = BuildMapped(MiB(2), ComponentId(0));
  ThermostatProfiler::Config config;
  config.interval_ns = Seconds(1);  // budget covers every region
  ThermostatProfiler thermo(address_space_, tracker_, config);
  thermo.Initialize();
  thermo.OnIntervalStart();
  TouchRange(start, MiB(2), /*repeat=*/7);
  ProfileOutput out = thermo.OnIntervalEnd();
  ASSERT_EQ(out.entries.size(), 1u);
  EXPECT_DOUBLE_EQ(out.entries[0].hotness, 7.0);  // exact fault counting
}

TEST_F(ProfilersTest, ThermostatHugePageSampling4KOnly) {
  // Inside a huge page Thermostat still samples one 4 KiB sub-page; traffic
  // to the other 511 sub-pages is invisible to it (§5.4's critique).
  VirtAddr start = BuildMapped(MiB(2), ComponentId(0), /*huge=*/true);
  ThermostatProfiler::Config config;
  config.interval_ns = Seconds(1);
  config.seed = 7;
  ThermostatProfiler thermo(address_space_, tracker_, config);
  thermo.Initialize();
  thermo.OnIntervalStart();
  // Touch exactly one page far from everything; the chance the sampler
  // picked that page is 1/512, so hotness is almost surely 0 or tiny vs the
  // 100 touches a whole-huge-page profiler would see.
  for (int i = 0; i < 100; ++i) {
    engine_.Apply(start + 17 * kPageSize, false, 0);
  }
  ProfileOutput out = thermo.OnIntervalEnd();
  ASSERT_EQ(out.entries.size(), 1u);
  EXPECT_LE(out.entries[0].hotness, 100.0);
}

// -------------------------------------------------------- tiered-AutoNUMA --

TEST_F(ProfilersTest, AutoNumaArmsAndObservesFaults) {
  VirtAddr start = BuildMapped(MiB(8), ComponentId(0));
  AutoNumaProfiler::Config config;
  config.scan_window_bytes = MiB(8);
  AutoNumaProfiler profiler(page_table_, address_space_, engine_, config);
  profiler.OnIntervalStart();
  TouchRange(start, MiB(1));
  ProfileOutput out = profiler.OnIntervalEnd();
  EXPECT_GT(out.entries.size(), 0u);
  EXPECT_EQ(out.entries.size(), MiB(1) / kPageBytes);
  for (const HotnessEntry& e : out.entries) {
    EXPECT_GE(e.hotness, 0.9);
  }
}

TEST_F(ProfilersTest, AutoNumaWindowLimitsArming) {
  BuildMapped(MiB(8), ComponentId(0));
  AutoNumaProfiler::Config config;
  config.scan_window_bytes = MiB(1);
  AutoNumaProfiler profiler(page_table_, address_space_, engine_, config);
  profiler.OnIntervalStart();
  ProfileOutput out = profiler.OnIntervalEnd();
  EXPECT_EQ(out.pte_scans, MiB(1) / kPageBytes);  // pages armed
}

TEST_F(ProfilersTest, AutoNumaVanillaTwoTouch) {
  VirtAddr start = BuildMapped(MiB(2), ComponentId(0));
  AutoNumaProfiler::Config config;
  config.scan_window_bytes = MiB(2);
  config.patched = false;
  config.decay = 1.0;
  AutoNumaProfiler profiler(page_table_, address_space_, engine_, config);
  // First interval: one fault each — below the two-touch threshold.
  profiler.OnIntervalStart();
  TouchRange(start, MiB(1));
  ProfileOutput out1 = profiler.OnIntervalEnd();
  for (const HotnessEntry& e : out1.entries) {
    EXPECT_EQ(e.hotness, 0.0);
  }
  // Second interval re-arms (window wraps): second fault crosses it.
  profiler.OnIntervalStart();
  TouchRange(start, MiB(1));
  ProfileOutput out2 = profiler.OnIntervalEnd();
  int hot = 0;
  for (const HotnessEntry& e : out2.entries) {
    hot += e.hotness > 0;
  }
  EXPECT_GT(hot, 0);
}

TEST_F(ProfilersTest, AutoNumaRecordsFaultingSocket) {
  VirtAddr start = BuildMapped(MiB(2), ComponentId(0));
  AutoNumaProfiler::Config config;
  config.scan_window_bytes = MiB(2);
  AutoNumaProfiler profiler(page_table_, address_space_, engine_, config);
  profiler.OnIntervalStart();
  TouchRange(start, MiB(1), 1, /*socket=*/1);
  ProfileOutput out = profiler.OnIntervalEnd();
  ASSERT_GT(out.entries.size(), 0u);
  for (const HotnessEntry& e : out.entries) {
    EXPECT_EQ(e.preferred_socket, 1u);
  }
}

// ------------------------------------------------------------ AutoTiering --

TEST_F(ProfilersTest, AutoTieringSamplesWindow) {
  BuildMapped(MiB(32), ComponentId(0));
  AutoTieringProfiler::Config config;
  config.scan_window_bytes = MiB(8);
  AutoTieringProfiler profiler(page_table_, address_space_, config);
  profiler.OnIntervalStart();
  ProfileOutput out = profiler.OnIntervalEnd();
  // The scan touches pages_per_chunk PTEs per sampled chunk; nothing was
  // accessed, so no chunk enters the accumulated hot set.
  EXPECT_EQ(out.pte_scans, (MiB(8) / kHugePageBytes) * config.pages_per_chunk);
  EXPECT_EQ(out.num_regions, 0u);
}

TEST_F(ProfilersTest, AutoTieringDetectsTouchedChunks) {
  VirtAddr start = BuildMapped(MiB(8), ComponentId(0));
  AutoTieringProfiler::Config config;
  config.scan_window_bytes = MiB(8);  // samples roughly everything
  AutoTieringProfiler profiler(page_table_, address_space_, config);
  profiler.OnIntervalStart();
  TouchRange(start, MiB(8));
  ProfileOutput out = profiler.OnIntervalEnd();
  EXPECT_GT(out.hot_bytes, Bytes{});
}

// ----------------------------------------------------------------- HeMem --

TEST_F(ProfilersTest, HememAccumulatesPebsCounts) {
  VirtAddr start = BuildMapped(MiB(4), ComponentId(0));
  HememProfiler profiler(page_table_, pebs_, HememProfiler::Config{});
  profiler.Initialize();
  EXPECT_TRUE(pebs_.enabled());
  TouchRange(start, MiB(4), /*repeat=*/4);
  ProfileOutput out = profiler.OnIntervalEnd();
  EXPECT_GT(out.entries.size(), 0u);
  EXPECT_GT(out.num_regions, 0u);
}

TEST_F(ProfilersTest, HememCoolsCounts) {
  VirtAddr start = BuildMapped(MiB(4), ComponentId(0));
  HememProfiler::Config config;
  config.cooling_factor = 0.5;
  HememProfiler profiler(page_table_, pebs_, config);
  profiler.Initialize();
  TouchRange(start, MiB(4), 8);
  ProfileOutput out1 = profiler.OnIntervalEnd();
  double max1 = 0;
  for (const auto& e : out1.entries) {
    max1 = std::max(max1, e.hotness);
  }
  // No traffic: counts decay.
  ProfileOutput out2 = profiler.OnIntervalEnd();
  double max2 = 0;
  for (const auto& e : out2.entries) {
    max2 = std::max(max2, e.hotness);
  }
  EXPECT_LT(max2, max1);
}

TEST_F(ProfilersTest, HememSamplingMissesRarePages) {
  // The §5.5 critique: 1-in-N counter sampling misses pages with few
  // accesses. One touch of one page is almost never sampled at period 20.
  VirtAddr start = BuildMapped(MiB(4), ComponentId(0));
  HememProfiler profiler(page_table_, pebs_, HememProfiler::Config{});
  profiler.Initialize();
  engine_.Apply(start, false, 0);
  ProfileOutput out = profiler.OnIntervalEnd();
  EXPECT_LE(out.entries.size(), 1u);
}

}  // namespace
}  // namespace mtm
