// Tests for the access engine: fault handling, cost model, bit setting,
// PEBS feed, hint faults, write tracking, HMC interception.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/types.h"
#include "src/common/units.h"
#include "src/mem/address_space.h"
#include "src/mem/frame_allocator.h"
#include "src/mem/placement.h"
#include "src/sim/access_engine.h"
#include "src/sim/access_tracker.h"
#include "src/sim/clock.h"
#include "src/sim/counters.h"
#include "src/sim/hmc_cache.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"
#include "src/sim/pebs.h"

namespace mtm {
namespace {

class AccessEngineTest : public ::testing::Test {
 protected:
  AccessEngineTest()
      : machine_(Machine::OptaneFourTier(512)),
        frames_(machine_),
        counters_(machine_.num_components()),
        engine_(machine_, page_table_, clock_, counters_, AccessEngine::Config{}) {}

  void BuildVma(Bytes bytes, bool thp) {
    vma_ = address_space_.Allocate(bytes, thp, "test");
    handler_ = std::make_unique<PlacementFaultHandler>(machine_, page_table_, frames_,
                                                       address_space_,
                                                       PlacementPolicy::kFirstTouch);
    engine_.set_fault_handler(handler_.get());
  }

  VirtAddr base() const { return address_space_.vma(vma_).start; }

  Machine machine_;
  SimClock clock_;
  PageTable page_table_;
  AddressSpace address_space_;
  FrameAllocator frames_;
  MemCounters counters_;
  AccessEngine engine_;
  std::unique_ptr<PlacementFaultHandler> handler_;
  u32 vma_ = 0;
};

TEST_F(AccessEngineTest, FaultAllocatesAndMaps) {
  BuildVma(MiB(4), /*thp=*/false);
  ComponentId c = engine_.Apply(base(), /*is_write=*/false, /*socket=*/0);
  EXPECT_EQ(c, machine_.TierOrder(0)[0]);  // first-touch: local DRAM
  EXPECT_EQ(engine_.page_faults(), 1u);
  EXPECT_NE(page_table_.Find(base()), nullptr);
  // Second access: no new fault.
  engine_.Apply(base() + 8, false, 0);
  EXPECT_EQ(engine_.page_faults(), 1u);
}

TEST_F(AccessEngineTest, ThpFaultMapsHugePage) {
  BuildVma(MiB(4), /*thp=*/true);
  engine_.Apply(base() + 12345, false, 0);
  Bytes size;
  ASSERT_NE(page_table_.Find(base(), &size), nullptr);
  EXPECT_EQ(size, kHugePageBytes);
  EXPECT_EQ(frames_.used(machine_.TierOrder(0)[0]), kHugePageBytes);
}

TEST_F(AccessEngineTest, AccessSetsBits) {
  BuildVma(MiB(2), false);
  engine_.Apply(base(), /*is_write=*/true, 0);
  Pte* pte = page_table_.Find(base());
  ASSERT_NE(pte, nullptr);
  EXPECT_TRUE(pte->accessed());
  EXPECT_TRUE(pte->dirty());
}

TEST_F(AccessEngineTest, CostModelLatencyVsBandwidth) {
  // Tier 1 (90ns, 95GB/s) is latency-bound at 8 threads; tier 4 (340ns,
  // 1GB/s) is bandwidth-bound: 64B / 1GB/s = 64ns > 340/8.
  ComponentId t1 = machine_.TierOrder(0)[0];
  ComponentId t4 = machine_.TierOrder(0)[3];
  SimNanos c1 = engine_.AccessCost(0, t1);
  SimNanos c4 = engine_.AccessCost(0, t4);
  EXPECT_LT(c1, c4);
  EXPECT_GE(c4, Nanos(64));
  EXPECT_LE(c1, Nanos(90 / 8) + engine_.config().cpu_ns_per_access);
}

TEST_F(AccessEngineTest, ClockAdvancesPerAccess) {
  BuildVma(MiB(2), false);
  SimNanos before = clock_.app_ns();
  engine_.Apply(base(), false, 0);
  EXPECT_GT(clock_.app_ns(), before);
  EXPECT_EQ(clock_.profiling_ns(), SimNanos{});
  EXPECT_EQ(clock_.migration_ns(), SimNanos{});
}

TEST_F(AccessEngineTest, CountersTrackAppAccesses) {
  BuildVma(MiB(2), false);
  engine_.Apply(base(), false, 0);
  engine_.Apply(base(), true, 0);
  ComponentId t1 = machine_.TierOrder(0)[0];
  EXPECT_EQ(counters_.app_reads(t1), 1u);
  EXPECT_EQ(counters_.app_writes(t1), 1u);
  EXPECT_EQ(counters_.total_app_accesses(), 2u);
}

TEST_F(AccessEngineTest, TrackerCounts) {
  BuildVma(MiB(2), false);
  AccessTracker tracker;
  tracker.Register(base(), MiB(2));
  engine_.set_tracker(&tracker);
  for (int i = 0; i < 5; ++i) {
    engine_.Apply(base() + 100, i % 2 == 0, 0);
  }
  EXPECT_EQ(tracker.CountSince(VpnOf(base())), 5u);
  EXPECT_EQ(tracker.WritesSince(VpnOf(base())), 3u);
  tracker.ResetEpoch();
  EXPECT_EQ(tracker.CountSince(VpnOf(base())), 0u);
}

TEST_F(AccessEngineTest, PebsSamplesAtPeriod) {
  BuildVma(MiB(8), false);
  PebsEngine::Config config;
  config.sample_period = 10;
  config.sample_pm = true;
  config.sample_dram = true;
  PebsEngine pebs(machine_, config);
  pebs.SetEnabled(true);
  engine_.set_pebs(&pebs);
  for (int i = 0; i < 100; ++i) {
    engine_.Apply(base() + static_cast<u64>(i) * kPageSize, false, 0);
  }
  EXPECT_EQ(pebs.samples_taken(), 10u);
  std::vector<PebsSample> samples = pebs.Drain();
  EXPECT_EQ(samples.size(), 10u);
  EXPECT_EQ(pebs.pending(), 0u);
}

TEST_F(AccessEngineTest, PebsFiltersDramWhenPmOnly) {
  BuildVma(MiB(8), false);
  PebsEngine::Config config;
  config.sample_period = 1;
  config.sample_pm = true;
  config.sample_dram = false;  // LOCAL/REMOTE_PMM events only
  PebsEngine pebs(machine_, config);
  pebs.SetEnabled(true);
  engine_.set_pebs(&pebs);
  engine_.Apply(base(), false, 0);  // lands in DRAM via first-touch
  EXPECT_EQ(pebs.samples_taken(), 0u);
}

TEST_F(AccessEngineTest, HintFaultRecordsSocketAndCost) {
  BuildVma(MiB(2), false);
  engine_.Apply(base(), false, 0);  // map it
  page_table_.Find(base())->Set(Pte::kHintArmed);
  page_table_.BumpGeneration();
  SimNanos before = clock_.app_ns();
  engine_.Apply(base(), false, /*socket=*/1);
  EXPECT_EQ(engine_.hint_faults(), 1u);
  EXPECT_GT(clock_.app_ns() - before, engine_.AccessCost(1, machine_.TierOrder(0)[0]));
  std::vector<HintFaultEvent> events = engine_.DrainHintFaults();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].socket, 1u);
  EXPECT_EQ(events[0].addr, base());
  // Drained: second drain is empty; no re-fault on next access.
  EXPECT_TRUE(engine_.DrainHintFaults().empty());
  engine_.Apply(base(), false, 1);
  EXPECT_EQ(engine_.hint_faults(), 1u);
}

class RecordingObserver : public WriteTrackObserver {
 public:
  void OnWriteTrackFault(VirtAddr addr, u32 /*socket*/) override {
    ++faults;
    last_addr = addr;
  }
  int faults = 0;
  VirtAddr last_addr;
};

TEST_F(AccessEngineTest, WriteTrackFaultFiresOnceAndOnlyOnWrite) {
  BuildVma(MiB(2), false);
  engine_.Apply(base(), false, 0);
  page_table_.Find(base())->Set(Pte::kWriteTracked);
  page_table_.BumpGeneration();
  RecordingObserver observer;
  engine_.set_write_track_observer(&observer);
  engine_.Apply(base(), /*is_write=*/false, 0);  // reads don't trip it
  EXPECT_EQ(observer.faults, 0);
  engine_.Apply(base(), /*is_write=*/true, 0);
  EXPECT_EQ(observer.faults, 1);
  EXPECT_EQ(observer.last_addr, base());
  engine_.Apply(base(), true, 0);  // tracking disarmed after first write
  EXPECT_EQ(observer.faults, 1);
}

TEST_F(AccessEngineTest, TlbInvalidatedOnRemap) {
  // After migration changes a PTE, cached translations must not serve the
  // stale component.
  BuildVma(MiB(2), false);
  engine_.Apply(base(), false, 0);
  Pte* pte = page_table_.Find(base());
  ComponentId before = pte->component;
  ComponentId other = machine_.TierOrder(0)[2];
  ASSERT_NE(before, other);
  pte->component = other;
  page_table_.BumpGeneration();
  EXPECT_EQ(engine_.Apply(base(), false, 0), other);
}

TEST_F(AccessEngineTest, HmcModeChargesCacheCosts) {
  // Build a PM-only placement with an HMC cache: first access misses, the
  // second hits and is cheaper.
  vma_ = address_space_.Allocate(MiB(4), false, "hmc");
  handler_ = std::make_unique<PlacementFaultHandler>(machine_, page_table_, frames_,
                                                     address_space_, PlacementPolicy::kPmOnly);
  engine_.set_fault_handler(handler_.get());
  HmcCache cache(machine_, 0, MiB(1));
  engine_.set_hmc_caches({&cache, &cache});

  engine_.Apply(base(), false, 0);
  SimNanos after_miss = clock_.app_ns();
  engine_.Apply(base(), false, 0);
  SimNanos hit_cost = clock_.app_ns() - after_miss;
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_LT(hit_cost, after_miss);
}

TEST(HmcCacheTest, ConflictEvictionAndWriteback) {
  Machine machine = Machine::OptaneFourTier(512);
  HmcCache cache(machine, 0, MiB(1));  // 256 sets
  u64 sets = NumPages(MiB(1));
  EXPECT_FALSE(cache.Access(Vpn(0), /*is_write=*/true).hit);
  EXPECT_TRUE(cache.Access(Vpn(0), false).hit);
  // Same set, different tag: evicts the dirty line.
  HmcCache::AccessOutcome out = cache.Access(Vpn(sets), false);
  EXPECT_FALSE(out.hit);
  EXPECT_TRUE(out.dirty_writeback);
  EXPECT_EQ(cache.dirty_writebacks(), 1u);
  EXPECT_NEAR(cache.hit_rate(), 1.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace mtm
