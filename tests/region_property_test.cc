// Property-based tests: seeded-random structural-operation sequences driven
// through RegionMap (and whole profiling intervals driven through
// MtmProfiler) must preserve the §5 invariants at every step —
// huge-page-aligned split boundaries, full address-space coverage with no
// overlap, sample-quota conservation under the Equation-1 budget, and τm
// escalation/reset monotonicity of the overhead controller.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/mem/address_space.h"
#include "src/profiling/mtm_profiler.h"
#include "src/profiling/region.h"
#include "src/sim/access_engine.h"
#include "src/sim/clock.h"
#include "src/sim/counters.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"
#include "src/sim/pebs.h"

namespace mtm {
namespace {

constexpr VirtAddr kBase{0x5500'0000'0000ull};

// Asserts the structural invariants over a map seeded as one contiguous
// range [start, end): sorted, non-overlapping, gap-free coverage, page
// alignment, unique ids.
void CheckMapInvariants(const RegionMap& map, VirtAddr start, VirtAddr end) {
  ASSERT_FALSE(map.empty());
  std::set<u64> ids;
  VirtAddr cursor = start;
  for (const auto& [key, region] : map) {
    ASSERT_EQ(key, region.start);
    ASSERT_LT(region.start, region.end);
    ASSERT_EQ(region.start, cursor) << "gap or overlap before " << region.start.value();
    ASSERT_TRUE(IsPageAligned(region.start));
    ASSERT_TRUE(ids.insert(region.id).second) << "duplicate region id " << region.id;
    cursor = region.end;
  }
  ASSERT_EQ(cursor, end) << "coverage does not reach the range end";
}

TEST(RegionPropertyTest, RandomSplitMergeSequencesPreserveInvariants) {
  for (u64 seed : {1ull, 7ull, 0xdeadull, 0x4d544dull}) {
    Rng rng(seed);
    RegionMap map;
    // An intentionally unaligned tail exercises the non-huge-boundary ends.
    const VirtAddr start = kBase;
    const VirtAddr end = kBase + MiB(32) + KiB(16);
    map.SeedRange(start, end, kHugePageBytes);

    // Quota model mirroring the profiler's merge/split arithmetic; the
    // conserved quantity is sum(quota) + pool.
    for (auto& [key, region] : map) {
      region.sample_quota = 1 + static_cast<u32>(rng.NextBounded(4));
    }
    u64 pool = 0;
    u64 conserved = pool;
    for (const auto& [key, region] : map) {
      conserved += region.sample_quota;
    }

    for (int step = 0; step < 400; ++step) {
      const bool do_split = rng.NextBernoulli(0.5);
      auto it = map.begin();
      std::advance(it, static_cast<long>(rng.NextBounded(map.size())));
      if (do_split) {
        Region& region = it->second;
        const VirtAddr split_at = RegionMap::SplitPoint(region);
        if (split_at.IsZero()) {
          continue;  // single page: unsplittable
        }
        // §5.4: split points are interior, page-aligned, and huge-page
        // aligned whenever the region spans more than one huge page.
        ASSERT_GT(split_at, region.start);
        ASSERT_LT(split_at, region.end);
        ASSERT_TRUE(IsPageAligned(split_at));
        if (region.bytes() > kHugePageBytes) {
          ASSERT_TRUE(IsHugeAligned(split_at));
        }
        RegionMap::iterator first;
        RegionMap::iterator second;
        ASSERT_TRUE(map.Split(it, split_at, &first, &second));
        const u32 q = first->second.sample_quota;
        first->second.sample_quota = std::max<u32>(1, q / 2);
        second->second.sample_quota = std::max<u32>(1, q - q / 2);
        // Splitting conserves quota except for the documented floor: a
        // quota-1 region yields two quota-1 halves, creating exactly one
        // unit that RedistributeQuota later reclaims against num_ps.
        const u32 created = first->second.sample_quota + second->second.sample_quota - q;
        ASSERT_EQ(created, q == 1 ? 1u : 0u);
        conserved += created;
      } else {
        auto next = std::next(it);
        if (next == map.end()) {
          continue;
        }
        const u32 combined = it->second.sample_quota + next->second.sample_quota;
        auto merged = map.MergeWithNext(it);
        ASSERT_TRUE(merged != map.end());
        const u32 new_quota = std::max<u32>(1, combined / 2);
        merged->second.sample_quota = new_quota;
        pool += combined - new_quota;  // freed samples join the pool (§5.2)
      }
      CheckMapInvariants(map, start, end);
      u64 total = pool;
      for (const auto& [key, region] : map) {
        ASSERT_GE(region.sample_quota, 1u);
        total += region.sample_quota;
      }
      ASSERT_EQ(total, conserved) << "quota leak at step " << step << " seed " << seed;
    }
  }
}

TEST(RegionPropertyTest, SplitPointPropertiesOnRandomRegions) {
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    Region region;
    region.start = kBase + PagesToBytes(rng.NextBounded(1 << 20));
    const u64 pages = 1 + rng.NextBounded(4 * kPagesPerHugePage);
    region.end = region.start + PagesToBytes(pages);
    const VirtAddr split = RegionMap::SplitPoint(region);
    if (pages == 1) {
      EXPECT_TRUE(split.IsZero());
      continue;
    }
    ASSERT_FALSE(split.IsZero());
    EXPECT_GT(split, region.start);
    EXPECT_LT(split, region.end);
    EXPECT_TRUE(IsPageAligned(split));
    if (region.bytes() > kHugePageBytes && IsHugeAligned(region.start)) {
      EXPECT_TRUE(IsHugeAligned(split));
    }
  }
}

// Profiler-level properties need the full simulation substrate.
class ProfilerPropertyTest : public ::testing::Test {
 protected:
  ProfilerPropertyTest()
      : machine_(Machine::OptaneFourTier(512)),
        counters_(machine_.num_components()),
        engine_(machine_, page_table_, clock_, counters_, AccessEngine::Config{}),
        pebs_(machine_, PebsEngine::Config{}) {
    engine_.set_pebs(&pebs_);
  }

  VirtAddr BuildMapped(Bytes bytes) {
    u32 vma = address_space_.Allocate(bytes, false, "w");
    VirtAddr start = address_space_.vma(vma).start;
    EXPECT_TRUE(page_table_.MapRange(start, address_space_.vma(vma).len, ComponentId(0), false).ok());
    return start;
  }

  std::unique_ptr<MtmProfiler> MakeProfiler(MtmProfiler::Config config) {
    auto p = std::make_unique<MtmProfiler>(machine_, page_table_, address_space_, engine_,
                                           &pebs_, config);
    p->Initialize();
    return p;
  }

  void RunRandomInterval(MtmProfiler& profiler, VirtAddr start, Rng& rng) {
    profiler.OnIntervalStart();
    for (u32 tick = 0; tick < 3; ++tick) {
      const u64 hot_pages = 1 + rng.NextBounded(NumPages(MiB(4)));
      for (int i = 0; i < 2000; ++i) {
        page_table_.Touch(start + PagesToBytes(rng.NextBounded(hot_pages)),
                          rng.NextBernoulli(0.25));
      }
      profiler.OnScanTick(tick);
    }
    profiler.OnIntervalEnd();
  }

  Machine machine_;
  SimClock clock_;
  PageTable page_table_;
  AddressSpace address_space_;
  MemCounters counters_;
  AccessEngine engine_;
  PebsEngine pebs_;
};

TEST_F(ProfilerPropertyTest, QuotaConservedUnderEquation1AcrossRandomIntervals) {
  VirtAddr start = BuildMapped(MiB(64));
  MtmProfiler::Config config;
  config.interval_ns = Millis(20);
  auto profiler = MakeProfiler(config);
  Rng rng(0xabcdef);
  for (int interval = 0; interval < 12; ++interval) {
    RunRandomInterval(*profiler, start, rng);
    // Overhead control re-normalizes every interval: sum(quota) == num_ps.
    u64 total = 0;
    for (const auto& [key, region] : profiler->regions()) {
      ASSERT_GE(region.sample_quota, 1u);
      total += region.sample_quota;
    }
    ASSERT_EQ(total, profiler->NumPageSamples()) << "interval " << interval;
  }
}

TEST_F(ProfilerPropertyTest, TauMEscalationAndResetAreMonotone) {
  VirtAddr start = BuildMapped(MiB(64));
  MtmProfiler::Config config;
  config.interval_ns = Millis(20);
  // Tiny budget: region count exceeds num_ps, so the controller escalates.
  config.overhead_fraction = 0.0001;
  config.adaptive_regions = false;  // freeze structure; isolate the controller
  auto profiler = MakeProfiler(config);
  ASSERT_LT(profiler->NumPageSamples(), profiler->regions().size());
  Rng rng(0x7a7a);
  double prev_tau = profiler->current_tau_m();
  for (int interval = 0; interval < 10; ++interval) {
    RunRandomInterval(*profiler, start, rng);
    const double tau = profiler->current_tau_m();
    const bool over_budget = profiler->regions().size() > profiler->NumPageSamples();
    if (over_budget) {
      // Escalation is monotone non-decreasing and capped at num_scans.
      ASSERT_GE(tau, prev_tau) << "interval " << interval;
      ASSERT_LE(tau, std::max(prev_tau, static_cast<double>(config.num_scans)));
    } else {
      ASSERT_EQ(tau, config.tau_m) << "reset must restore the configured τm";
    }
    prev_tau = tau;
  }
  // With the structure frozen over budget, escalation must actually fire.
  ASSERT_GT(profiler->current_tau_m(), config.tau_m);
}

TEST_F(ProfilerPropertyTest, TauMResetsOnceBackUnderBudget) {
  VirtAddr start = BuildMapped(MiB(8));
  MtmProfiler::Config config;
  config.interval_ns = Millis(20);
  auto profiler = MakeProfiler(config);
  // Generous budget for a small mapping: merging drives the region count
  // under num_ps quickly and τm must sit at its configured value.
  Rng rng(0x1111);
  for (int interval = 0; interval < 8; ++interval) {
    RunRandomInterval(*profiler, start, rng);
    if (profiler->regions().size() <= profiler->NumPageSamples()) {
      ASSERT_EQ(profiler->current_tau_m(), config.tau_m);
    }
  }
  ASSERT_LE(profiler->regions().size(), profiler->NumPageSamples());
}

}  // namespace
}  // namespace mtm
