// Unit tests for tools/mtm_analyze: each pass has at least one true
// positive and one rejected near-miss in the fixture tree under
// tools/mtm_analyze/testdata/, plus a golden --json report.
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/mtm_analyze/mtm_analyze.h"

namespace mtm::analyze {
namespace {

std::string TestdataRoot() { return MTM_ANALYZE_TESTDATA; }

std::vector<std::string> FixtureSeeds() {
  return {
      "proj/liba/unused_inc.cc", "proj/liba/transitive.cc", "proj/liba/upward.cc",
      "proj/liba/cycle_x.h",     "proj/det/sink_loop.cc",   "proj/det/mutate_loop.cc",
      "proj/det/clock.cc",       "proj/det/sim_clock.cc",   "proj/det/seed.cc",
      "proj/det/seeded_ok.cc",   "proj/det/suppressed.cc",  "proj/det/nojust.cc",
  };
}

class AnalyzeFixtureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::ifstream in(TestdataRoot() + "/layers.toml");
    ASSERT_TRUE(in.good()) << "missing fixture layers.toml";
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string error;
    ASSERT_TRUE(ParseConfig(ss.str(), &config_, &error)) << error;
    project_ = Project::Load(TestdataRoot(), FixtureSeeds());
    findings_ = Analyze(project_, config_);
  }

  bool HasFinding(const std::string& check, const std::string& file) const {
    for (const Finding& f : findings_) {
      if (f.check == check && f.file == file) {
        return true;
      }
    }
    return false;
  }

  bool AnyFindingIn(const std::string& file) const {
    for (const Finding& f : findings_) {
      if (f.file == file) {
        return true;
      }
    }
    return false;
  }

  Config config_;
  Project project_;
  std::vector<Finding> findings_;
};

// ------------------------------------------------------ include-graph pass

TEST_F(AnalyzeFixtureTest, FlagsUnusedDirectInclude) {
  EXPECT_TRUE(HasFinding("unused-include", "proj/liba/unused_inc.cc"));
}

TEST_F(AnalyzeFixtureTest, DoesNotFlagUsedInclude) {
  // unused_inc.cc's only finding is the unused extra.h; the used base.h
  // include stays silent.
  int count = 0;
  for (const Finding& f : findings_) {
    if (f.file == "proj/liba/unused_inc.cc") {
      ++count;
      EXPECT_EQ(f.check, "unused-include");
      EXPECT_NE(f.message.find("extra.h"), std::string::npos);
    }
  }
  EXPECT_EQ(count, 1);
}

TEST_F(AnalyzeFixtureTest, FlagsTransitiveIncludeReliance) {
  EXPECT_TRUE(HasFinding("transitive-include", "proj/liba/transitive.cc"));
}

TEST_F(AnalyzeFixtureTest, DoesNotFlagDirectUseAsUnusedOrTransitive) {
  // transitive.cc uses ExtraThing directly: extra.h is neither unused nor
  // a transitive-reliance target.
  for (const Finding& f : findings_) {
    if (f.file == "proj/liba/transitive.cc") {
      EXPECT_EQ(f.check, "transitive-include");
      EXPECT_NE(f.message.find("BaseThing"), std::string::npos);
    }
  }
  EXPECT_FALSE(HasFinding("unused-include", "proj/liba/transitive.cc"));
}

TEST_F(AnalyzeFixtureTest, FlagsIncludeCycleOnce) {
  int cycles = 0;
  for (const Finding& f : findings_) {
    if (f.check == "include-cycle") {
      ++cycles;
      EXPECT_NE(f.message.find("cycle_x.h"), std::string::npos);
      EXPECT_NE(f.message.find("cycle_y.h"), std::string::npos);
    }
  }
  EXPECT_EQ(cycles, 1);
}

// ----------------------------------------------------------- layering pass

TEST_F(AnalyzeFixtureTest, FlagsUpwardLayerEdge) {
  EXPECT_TRUE(HasFinding("layering", "proj/liba/upward.cc"));
}

TEST_F(AnalyzeFixtureTest, AllowsDeclaredDownwardEdge) {
  EXPECT_FALSE(AnyFindingIn("proj/libb/top.h"));
}

// -------------------------------------------------------- determinism pass

TEST_F(AnalyzeFixtureTest, FlagsUnorderedIterationReachingSink) {
  EXPECT_TRUE(HasFinding("unordered-iteration", "proj/det/sink_loop.cc"));
}

TEST_F(AnalyzeFixtureTest, DoesNotFlagMutateOnlyUnorderedLoop) {
  EXPECT_FALSE(AnyFindingIn("proj/det/mutate_loop.cc"));
}

TEST_F(AnalyzeFixtureTest, FlagsWallClockOutsideSanctionedSites) {
  EXPECT_TRUE(HasFinding("wall-clock", "proj/det/clock.cc"));
}

TEST_F(AnalyzeFixtureTest, AllowsSanctionedWallClockSite) {
  EXPECT_FALSE(AnyFindingIn("proj/det/sim_clock.cc"));
}

TEST_F(AnalyzeFixtureTest, FlagsRandomDevice) {
  EXPECT_TRUE(HasFinding("raw-random", "proj/det/seed.cc"));
}

TEST_F(AnalyzeFixtureTest, DoesNotFlagRandSubstrings) {
  EXPECT_FALSE(AnyFindingIn("proj/det/seeded_ok.cc"));
}

// ----------------------------------------------------------- suppressions

TEST_F(AnalyzeFixtureTest, JustifiedSuppressionSilencesFinding) {
  EXPECT_FALSE(AnyFindingIn("proj/det/suppressed.cc"));
}

TEST_F(AnalyzeFixtureTest, UnjustifiedSuppressionIsReported) {
  EXPECT_TRUE(HasFinding("suppression", "proj/det/nojust.cc"));
  EXPECT_FALSE(HasFinding("unordered-iteration", "proj/det/nojust.cc"));
}

// ----------------------------------------------------------------- report

TEST_F(AnalyzeFixtureTest, JsonReportMatchesGolden) {
  std::ifstream in(TestdataRoot() + "/golden_report.json");
  ASSERT_TRUE(in.good()) << "missing golden_report.json";
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(FormatJson(findings_, project_.files().size()), ss.str());
}

TEST_F(AnalyzeFixtureTest, TextReportUsesLintFormat) {
  std::string text = FormatText(findings_);
  EXPECT_NE(text.find("proj/liba/upward.cc:2: [layering]"), std::string::npos);
}

// ------------------------------------------------------------- lexer unit

TEST(StripTest, RemovesCommentsAndStringsPreservingLines) {
  std::string stripped = StripCommentsAndStrings("a /* x\n y */ b // tail\n\"s\" 'c'\n");
  std::vector<std::string> lines = SplitLines(stripped);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a ");
  EXPECT_EQ(lines[1], " b ");
  EXPECT_EQ(lines[2], "\"\" ''");
}

TEST(StripTest, DigitSeparatorIsNotACharLiteral) {
  std::string stripped = StripCommentsAndStrings("u64 x = 1'000'000; int y = 2;");
  EXPECT_NE(stripped.find("y = 2"), std::string::npos);
}

TEST(ContainsWordTest, RespectsBoundaries) {
  EXPECT_TRUE(ContainsWord("x = rand();", "rand"));
  EXPECT_FALSE(ContainsWord("x = randomize();", "rand"));
  EXPECT_FALSE(ContainsWord("x = my_rand;", "rand"));
}

TEST(ConfigTest, RejectsMalformedInput) {
  Config config;
  std::string error;
  EXPECT_FALSE(ParseConfig("[layers]\nbroken line\n", &config, &error));
  EXPECT_NE(error.find("expected key = value"), std::string::npos);
}

TEST(ConfigTest, ParsesLayersAndAllowlists) {
  Config config;
  std::string error;
  ASSERT_TRUE(ParseConfig("[layers]\n\"a\" = [\"b\", \"c\"]\n\n[determinism]\n"
                          "wallclock_allow = [\"x.cc\"]\nrandom_allow = []\n",
                          &config, &error))
      << error;
  ASSERT_EQ(config.layers.count("a"), 1u);
  EXPECT_EQ(config.layers["a"], (std::vector<std::string>{"b", "c"}));
  EXPECT_EQ(config.wallclock_allow, std::vector<std::string>{"x.cc"});
  EXPECT_TRUE(config.random_allow.empty());
}

TEST(CompileCommandsTest, ExtractsFileEntries) {
  std::vector<std::string> files = ParseCompileCommands(
      "[{\"directory\": \"/b\", \"command\": \"g++ -c a.cc\", \"file\": \"/r/a.cc\"},\n"
      " {\"file\": \"/r/b.cc\", \"output\": \"b.o\"}]\n");
  EXPECT_EQ(files, (std::vector<std::string>{"/r/a.cc", "/r/b.cc"}));
}

}  // namespace
}  // namespace mtm::analyze
