// Unit tests for tools/mtm_analyze: each pass has at least one true
// positive and one rejected near-miss in the fixture tree under
// tools/mtm_analyze/testdata/, plus a golden --json report and a --fix
// before/after golden with an idempotence round-trip.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/mtm_analyze/mtm_analyze.h"

namespace mtm::analyze {
namespace {

std::string TestdataRoot() { return MTM_ANALYZE_TESTDATA; }

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> FixtureSeeds() {
  return {
      "proj/liba/unused_inc.cc", "proj/liba/transitive.cc", "proj/liba/upward.cc",
      "proj/liba/cycle_x.h",     "proj/det/sink_loop.cc",   "proj/det/mutate_loop.cc",
      "proj/det/clock.cc",       "proj/det/sim_clock.cc",   "proj/det/seed.cc",
      "proj/det/seeded_ok.cc",   "proj/det/suppressed.cc",  "proj/det/nojust.cc",
      "proj/err/discard.cc",     "proj/err/unwrap.cc",      "proj/err/rawret.cc",
      "proj/conc/tasks.cc",      "proj/conc/named.cc",      "proj/conc/serial.cc",
      "proj/conc/delta.cc",      "proj/conc/capture.cc",    "proj/conc/capture_ok.cc",
      "proj/conc/xtu_impl.cc",   "proj/conc/xtu_caller.cc", "proj/conc/ambig_one.cc",
      "proj/conc/ambig_two.cc",  "proj/conc/ambig_caller.cc", "proj/lock/guarded.cc",
      "proj/lock/guarded_ok.cc", "proj/lock/order_a.cc",    "proj/lock/order_b.cc",
      "proj/lock/order_ok.cc",
  };
}

class AnalyzeFixtureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string error;
    ASSERT_TRUE(ParseConfig(ReadFileOrDie(TestdataRoot() + "/layers.toml"), &config_, &error))
        << error;
    project_ = Project::Load(TestdataRoot(), FixtureSeeds());
    findings_ = Analyze(project_, config_);
  }

  bool HasFinding(const std::string& check, const std::string& file) const {
    for (const Finding& f : findings_) {
      if (f.check == check && f.file == file) {
        return true;
      }
    }
    return false;
  }

  bool AnyFindingIn(const std::string& file) const {
    for (const Finding& f : findings_) {
      if (f.file == file) {
        return true;
      }
    }
    return false;
  }

  // Lines of every `check` finding in `file`, in report order.
  std::vector<int> FindingLines(const std::string& check, const std::string& file) const {
    std::vector<int> lines;
    for (const Finding& f : findings_) {
      if (f.check == check && f.file == file) {
        lines.push_back(f.line);
      }
    }
    return lines;
  }

  Config config_;
  Project project_;
  std::vector<Finding> findings_;
};

// ------------------------------------------------------ include-graph pass

TEST_F(AnalyzeFixtureTest, FlagsUnusedDirectInclude) {
  EXPECT_TRUE(HasFinding("unused-include", "proj/liba/unused_inc.cc"));
}

TEST_F(AnalyzeFixtureTest, DoesNotFlagUsedInclude) {
  // unused_inc.cc's only finding is the unused extra.h; the used base.h
  // include stays silent.
  int count = 0;
  for (const Finding& f : findings_) {
    if (f.file == "proj/liba/unused_inc.cc") {
      ++count;
      EXPECT_EQ(f.check, "unused-include");
      EXPECT_NE(f.message.find("extra.h"), std::string::npos);
    }
  }
  EXPECT_EQ(count, 1);
}

TEST_F(AnalyzeFixtureTest, FlagsTransitiveIncludeReliance) {
  EXPECT_TRUE(HasFinding("transitive-include", "proj/liba/transitive.cc"));
}

TEST_F(AnalyzeFixtureTest, DoesNotFlagDirectUseAsUnusedOrTransitive) {
  // transitive.cc uses ExtraThing directly: extra.h is neither unused nor
  // a transitive-reliance target.
  for (const Finding& f : findings_) {
    if (f.file == "proj/liba/transitive.cc") {
      EXPECT_EQ(f.check, "transitive-include");
      EXPECT_NE(f.message.find("BaseThing"), std::string::npos);
    }
  }
  EXPECT_FALSE(HasFinding("unused-include", "proj/liba/transitive.cc"));
}

TEST_F(AnalyzeFixtureTest, FlagsIncludeCycleOnce) {
  int cycles = 0;
  for (const Finding& f : findings_) {
    if (f.check == "include-cycle") {
      ++cycles;
      EXPECT_NE(f.message.find("cycle_x.h"), std::string::npos);
      EXPECT_NE(f.message.find("cycle_y.h"), std::string::npos);
    }
  }
  EXPECT_EQ(cycles, 1);
}

// ----------------------------------------------------------- layering pass

TEST_F(AnalyzeFixtureTest, FlagsUpwardLayerEdge) {
  EXPECT_TRUE(HasFinding("layering", "proj/liba/upward.cc"));
}

TEST_F(AnalyzeFixtureTest, AllowsDeclaredDownwardEdge) {
  EXPECT_FALSE(AnyFindingIn("proj/libb/top.h"));
}

// -------------------------------------------------------- determinism pass

TEST_F(AnalyzeFixtureTest, FlagsUnorderedIterationReachingSink) {
  EXPECT_TRUE(HasFinding("unordered-iteration", "proj/det/sink_loop.cc"));
}

TEST_F(AnalyzeFixtureTest, DoesNotFlagMutateOnlyUnorderedLoop) {
  EXPECT_FALSE(AnyFindingIn("proj/det/mutate_loop.cc"));
}

TEST_F(AnalyzeFixtureTest, FlagsWallClockOutsideSanctionedSites) {
  EXPECT_TRUE(HasFinding("wall-clock", "proj/det/clock.cc"));
}

TEST_F(AnalyzeFixtureTest, AllowsSanctionedWallClockSite) {
  EXPECT_FALSE(AnyFindingIn("proj/det/sim_clock.cc"));
}

TEST_F(AnalyzeFixtureTest, FlagsRandomDevice) {
  EXPECT_TRUE(HasFinding("raw-random", "proj/det/seed.cc"));
}

TEST_F(AnalyzeFixtureTest, DoesNotFlagRandSubstrings) {
  EXPECT_FALSE(AnyFindingIn("proj/det/seeded_ok.cc"));
}

// --------------------------------------------------- error-discipline pass

TEST_F(AnalyzeFixtureTest, FlagsDiscardedStatusCall) {
  // FireAndForget drops SubmitOrder's Status; the ok()-checked call in
  // SubmitAndCount stays silent.
  EXPECT_EQ(FindingLines("discarded-status", "proj/err/discard.cc"), (std::vector<int>{9}));
}

TEST_F(AnalyzeFixtureTest, FlagsUncheckedResultUnwraps) {
  // Both the never-checked variable unwrap and the temporary unwrap are
  // flagged; CheckedUnwrap's ok()-dominated unwrap is not.
  EXPECT_EQ(FindingLines("unchecked-result-unwrap", "proj/err/unwrap.cc"),
            (std::vector<int>{10, 13}));
}

TEST_F(AnalyzeFixtureTest, FlagsRawErrorReturnOnFallibleVerb) {
  // Only bool TryReserve trips: the Status variant, Trylock (verb is a
  // prefix fragment only), and IsReady (no verb) are near-misses.
  EXPECT_EQ(FindingLines("raw-error-return", "proj/err/rawret.cc"), (std::vector<int>{9}));
  int total = 0;
  for (const Finding& f : findings_) {
    if (f.file == "proj/err/rawret.cc") {
      ++total;
    }
  }
  EXPECT_EQ(total, 1);
}

// -------------------------------------------------------- concurrency pass

TEST_F(AnalyzeFixtureTest, FlagsTaskWritesToGlobalAndMember) {
  // The RunShards lambda writes a namespace-scope counter and a member.
  EXPECT_EQ(FindingLines("task-static-write", "proj/conc/tasks.cc"),
            (std::vector<int>{17, 31}));
  EXPECT_EQ(FindingLines("task-member-write", "proj/conc/tasks.cc"),
            (std::vector<int>{13, 18}));
}

TEST_F(AnalyzeFixtureTest, FlagsMemberWriteReachedThroughCallGraph) {
  // Line 13 is Worker::BumpHits, reached only via RunIndirect's lambda.
  std::vector<int> lines = FindingLines("task-member-write", "proj/conc/tasks.cc");
  EXPECT_NE(std::find(lines.begin(), lines.end(), 13), lines.end());
}

TEST_F(AnalyzeFixtureTest, FlagsStaticLocalInTaskEntry) {
  // ShardEntry is seeded by task_entries; its mutable static local at
  // line 31 is shared across shards.
  std::vector<int> lines = FindingLines("task-static-write", "proj/conc/tasks.cc");
  EXPECT_NE(std::find(lines.begin(), lines.end(), 31), lines.end());
}

TEST_F(AnalyzeFixtureTest, FlagsNamedLambdaPassedByIdentifier) {
  EXPECT_EQ(FindingLines("task-static-write", "proj/conc/named.cc"), (std::vector<int>{11}));
}

TEST_F(AnalyzeFixtureTest, DoesNotFlagSerialMutation) {
  EXPECT_FALSE(AnyFindingIn("proj/conc/serial.cc"));
}

TEST_F(AnalyzeFixtureTest, AllowlistedMergePointStopsTheWalk) {
  EXPECT_FALSE(AnyFindingIn("proj/conc/delta.cc"));
}

TEST_F(AnalyzeFixtureTest, FlagsCaptureWrites) {
  // Line 14 writes an enclosing local through a by-reference capture;
  // line 19 writes a pointee through a pointer captured by value.
  EXPECT_EQ(FindingLines("task-capture-write", "proj/conc/capture.cc"),
            (std::vector<int>{14, 19}));
}

TEST_F(AnalyzeFixtureTest, DoesNotFlagShardLocalCapturePatterns) {
  // Shard-indexed subscripts, lambda-local scratch, and mutable by-value
  // copies are all private to a shard.
  EXPECT_FALSE(AnyFindingIn("proj/conc/capture_ok.cc"));
}

TEST_F(AnalyzeFixtureTest, WalksAcrossTranslationUnits) {
  // xtu_caller.cc's lambda calls CrossBump, whose body (and the flagged
  // global write) lives in a different TU.
  EXPECT_EQ(FindingLines("task-static-write", "proj/conc/xtu_impl.cc"), (std::vector<int>{9}));
  EXPECT_FALSE(AnyFindingIn("proj/conc/xtu_caller.cc"));
}

TEST_F(AnalyzeFixtureTest, AmbiguousCallWalksEveryCandidate) {
  // AmbigBump(shard) matches one-argument definitions in two TUs: both
  // bodies are walked (conservative multi-target edge), while the
  // two-argument overload at ambig_two.cc:13 is arity-filtered out.
  EXPECT_EQ(FindingLines("task-static-write", "proj/conc/ambig_one.cc"), (std::vector<int>{8}));
  EXPECT_EQ(FindingLines("task-static-write", "proj/conc/ambig_two.cc"),
            (std::vector<int>{11}));
}

// ---------------------------------------------------- lock-discipline pass

TEST_F(AnalyzeFixtureTest, FlagsUnguardedMemberWrite) {
  // The shard lambda writes the guarded_by(mu_) member with no lock held;
  // the guarded-member interplay keeps task-member-write out of the way.
  EXPECT_EQ(FindingLines("unguarded-member-write", "proj/lock/guarded.cc"),
            (std::vector<int>{10}));
  EXPECT_FALSE(HasFinding("task-member-write", "proj/lock/guarded.cc"));
}

TEST_F(AnalyzeFixtureTest, LockScopeAndRequiresAnnotationAreClean) {
  EXPECT_FALSE(AnyFindingIn("proj/lock/guarded_ok.cc"));
}

TEST_F(AnalyzeFixtureTest, FlagsInconsistentLockOrderAcrossTUs) {
  // LockBoth holds mu_a_ while the cross-TU call to AcquireB takes mu_b_;
  // ReverseOrder nests them the other way round — one finding per
  // direction, at each direction's first acquisition site.
  EXPECT_TRUE(HasFinding("lock-order", "proj/lock/order_a.cc"));
  EXPECT_TRUE(HasFinding("lock-order", "proj/lock/order_b.cc"));
}

TEST_F(AnalyzeFixtureTest, SequentialAndScopedLockImposeNoOrder) {
  EXPECT_FALSE(AnyFindingIn("proj/lock/order_ok.cc"));
}

// ------------------------------------------------------------------ stats

TEST_F(AnalyzeFixtureTest, StatsCountFilesAndCallEdges) {
  AnalyzeStats stats;
  Analyze(project_, config_, &stats);
  EXPECT_EQ(stats.files_checked, project_.files().size());
  EXPECT_GT(stats.edges.resolved_edges, 0u);
  // The AmbigBump call is the fixture tree's multi-target edge.
  EXPECT_GT(stats.edges.multi_target_edges, 0u);
  EXPECT_EQ(stats.findings_by_check.count("task-capture-write"), 1u);
  std::string text = FormatStats(stats);
  EXPECT_NE(text.find("call edges:"), std::string::npos);
  EXPECT_NE(text.find("files analyzed:"), std::string::npos);
}

// ----------------------------------------------------------- suppressions

TEST_F(AnalyzeFixtureTest, JustifiedSuppressionSilencesFinding) {
  EXPECT_FALSE(AnyFindingIn("proj/det/suppressed.cc"));
}

TEST_F(AnalyzeFixtureTest, UnjustifiedSuppressionIsReported) {
  EXPECT_TRUE(HasFinding("suppression", "proj/det/nojust.cc"));
  EXPECT_FALSE(HasFinding("unordered-iteration", "proj/det/nojust.cc"));
}

// ----------------------------------------------------------------- report

TEST_F(AnalyzeFixtureTest, JsonReportMatchesGolden) {
  EXPECT_EQ(FormatJson(findings_, project_.files().size()),
            ReadFileOrDie(TestdataRoot() + "/golden_report.json"));
}

TEST_F(AnalyzeFixtureTest, TextReportUsesLintFormat) {
  std::string text = FormatText(findings_);
  EXPECT_NE(text.find("proj/liba/upward.cc:2: [layering]"), std::string::npos);
}

// ------------------------------------------------------------- fix engine

class FixProjTest : public ::testing::Test {
 protected:
  void SetUp() override {
    project_ = Project::Load(TestdataRoot(), {"fixproj/order.cc"});
    config_.check_system_includes = true;
    findings_ = RunIncludeGraphPass(project_, config_);
  }

  Config config_;
  Project project_;
  std::vector<Finding> findings_;
};

TEST_F(FixProjTest, DeadSystemIncludeIsOptInAndSpecific) {
  // <vector> is dead, <cstring> is alive through strlen; the check only
  // exists behind check_system_includes.
  int dead = 0;
  for (const Finding& f : findings_) {
    if (f.check == "dead-system-include") {
      ++dead;
      EXPECT_EQ(f.subject, "vector");
    }
  }
  EXPECT_EQ(dead, 1);

  Config off;
  for (const Finding& f : RunIncludeGraphPass(project_, off)) {
    EXPECT_NE(f.check, "dead-system-include");
  }
}

TEST_F(FixProjTest, FixOutputMatchesGolden) {
  // One pass repairs all three defects: dead <vector> deleted, <cstring>
  // hoisted above the quoted block, base.h promoted to a direct include.
  std::map<std::string, std::string> fixed = ComputeFixedContents(project_, findings_);
  ASSERT_EQ(fixed.size(), 1u);
  ASSERT_EQ(fixed.begin()->first, "fixproj/order.cc");
  EXPECT_EQ(fixed.begin()->second, ReadFileOrDie(TestdataRoot() + "/fixproj/order.cc.golden"));
}

TEST_F(FixProjTest, FixIsIdempotent) {
  // Applying the fixed contents and re-running the analysis+fixer yields
  // no further edits: --fix twice == --fix once.
  std::map<std::string, std::string> fixed = ComputeFixedContents(project_, findings_);
  ASSERT_EQ(fixed.size(), 1u);

  namespace fs = std::filesystem;
  fs::path tmp = fs::path(::testing::TempDir()) / "mtm_analyze_fixproj";
  fs::create_directories(tmp / "fixproj");
  for (const char* header : {"fixproj/order.h", "fixproj/dep.h", "fixproj/base.h"}) {
    fs::copy_file(fs::path(TestdataRoot()) / header, tmp / header,
                  fs::copy_options::overwrite_existing);
  }
  std::ofstream out(tmp / "fixproj/order.cc", std::ios::binary);
  out << fixed.begin()->second;
  out.close();

  Project reloaded = Project::Load(tmp.string(), {"fixproj/order.cc"});
  std::vector<Finding> refindings = RunIncludeGraphPass(reloaded, config_);
  EXPECT_TRUE(ComputeFixedContents(reloaded, refindings).empty());
}

// ----------------------------------------------------- function model unit

SourceFile ParseSnippet(const std::string& text) {
  SourceFile f;
  f.path = "snippet.cc";
  f.raw = SplitLines(text);
  f.code = SplitLines(StripCommentsAndStrings(text));
  BuildFunctionModel(&f);
  return f;
}

TEST(FunctionModelTest, QualifiesMembersAndRecordsReturnTypes) {
  SourceFile f = ParseSnippet("Status Engine::Submit(Order o) { return OkStatus(); }\n");
  ASSERT_EQ(f.functions.size(), 1u);
  EXPECT_EQ(f.functions[0].qualified, "Engine::Submit");
  EXPECT_EQ(f.functions[0].return_type, "Status");
  EXPECT_TRUE(f.functions[0].has_body);
}

TEST(FunctionModelTest, AttributesLambdaToCallbackCallee) {
  SourceFile f = ParseSnippet(
      "void Engine::Run() {\n"
      "  ParallelFor(2, [&](int s) { hits_ += s; });\n"
      "}\n");
  ASSERT_EQ(f.functions.size(), 2u);
  const FunctionInfo& lambda = f.functions[1];
  EXPECT_TRUE(lambda.is_lambda);
  EXPECT_EQ(lambda.callback_of, "ParallelFor");
  ASSERT_EQ(lambda.writes.size(), 1u);
  EXPECT_EQ(lambda.writes[0].name, "hits_");
  EXPECT_EQ(lambda.writes[0].kind, WriteSite::Kind::kMember);
}

TEST(FunctionModelTest, RecordsDiscardedWholeStatementCallsOnly) {
  SourceFile f = ParseSnippet(
      "void F() {\n"
      "  Submit(o);\n"
      "  Status s = Submit(o);\n"
      "  if (Submit(o).ok()) {\n"
      "  }\n"
      "}\n");
  ASSERT_EQ(f.functions.size(), 1u);
  ASSERT_EQ(f.functions[0].discarded_calls.size(), 1u);
  EXPECT_EQ(f.functions[0].discarded_calls[0].name, "Submit");
  EXPECT_EQ(f.functions[0].discarded_calls[0].line, 2);
}

TEST(FunctionModelTest, ReplaysResultFlowEvents) {
  SourceFile f = ParseSnippet(
      "int F() {\n"
      "  Result<int> r = Look(1);\n"
      "  if (!r.ok()) { return 0; }\n"
      "  return r.value();\n"
      "}\n");
  ASSERT_EQ(f.functions.size(), 1u);
  std::vector<VarEvent::Kind> kinds;
  for (const VarEvent& ev : f.functions[0].var_events) {
    kinds.push_back(ev.kind);
  }
  EXPECT_EQ(kinds, (std::vector<VarEvent::Kind>{VarEvent::Kind::kResultDecl,
                                                VarEvent::Kind::kOkCheck,
                                                VarEvent::Kind::kUnwrap}));
}

TEST(FunctionModelTest, RecordsMutableStaticLocalButNotConst) {
  SourceFile f = ParseSnippet(
      "void F() {\n"
      "  static int counter = 0;\n"
      "  static const int kLimit = 8;\n"
      "  counter += kLimit;\n"
      "}\n");
  ASSERT_EQ(f.functions.size(), 1u);
  int static_decls = 0;
  for (const WriteSite& w : f.functions[0].writes) {
    if (w.kind == WriteSite::Kind::kStaticLocalDecl) {
      ++static_decls;
      EXPECT_EQ(w.name, "counter");
    }
  }
  EXPECT_EQ(static_decls, 1);
}

TEST(FunctionModelTest, RecordsLambdaCapturesParamsAndLocals) {
  SourceFile f = ParseSnippet(
      "void F() {\n"
      "  int total = 0;\n"
      "  ParallelFor(2, [&total, this](int s) { total += s; });\n"
      "}\n");
  ASSERT_EQ(f.functions.size(), 2u);
  const FunctionInfo& lambda = f.functions[1];
  EXPECT_EQ(lambda.capture_refs, std::vector<std::string>{"total"});
  EXPECT_TRUE(lambda.captures_this);
  EXPECT_EQ(lambda.locals.count("s"), 1u);
  EXPECT_EQ(lambda.locals.count("total"), 0u);
  EXPECT_EQ(f.functions[0].locals.count("total"), 1u);
}

TEST(FunctionModelTest, RecordsLockGuardScopes) {
  SourceFile f = ParseSnippet(
      "void Engine::Tick() {\n"
      "  std::lock_guard<std::mutex> lock(mu_);\n"
      "  count_ += 1;\n"
      "}\n");
  ASSERT_EQ(f.functions.size(), 1u);
  ASSERT_EQ(f.functions[0].locks.size(), 1u);
  EXPECT_EQ(f.functions[0].locks[0].mutex, "mu_");
  EXPECT_EQ(f.functions[0].locks[0].line, 2);
  EXPECT_GE(f.functions[0].locks[0].end_line, 3);
}

// ------------------------------------------------------------- lexer unit

TEST(StripTest, RemovesCommentsAndStringsPreservingLines) {
  std::string stripped = StripCommentsAndStrings("a /* x\n y */ b // tail\n\"s\" 'c'\n");
  std::vector<std::string> lines = SplitLines(stripped);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a ");
  EXPECT_EQ(lines[1], " b ");
  EXPECT_EQ(lines[2], "\"\" ''");
}

TEST(StripTest, DigitSeparatorIsNotACharLiteral) {
  std::string stripped = StripCommentsAndStrings("u64 x = 1'000'000; int y = 2;");
  EXPECT_NE(stripped.find("y = 2"), std::string::npos);
}

TEST(StripTest, RawStringWithCustomDelimiterKeepsLineNumbers) {
  // R"x(...)x" must close on )x", not on the first )" inside the body, and
  // the newline inside the literal must survive so lines stay aligned.
  std::string stripped =
      StripCommentsAndStrings("auto s = R\"x(one \"two\" )\"\nthree)x\";\nint z = 3;\n");
  std::vector<std::string> lines = SplitLines(stripped);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[2], "int z = 3;");
  EXPECT_EQ(stripped.find("two"), std::string::npos);
  EXPECT_EQ(stripped.find("three"), std::string::npos);
}

TEST(StripTest, BackslashContinuedStringKeepsLineNumbers) {
  std::string stripped = StripCommentsAndStrings("const char* s = \"ab\\\ncd\";\nint q = 7;\n");
  std::vector<std::string> lines = SplitLines(stripped);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[2], "int q = 7;");
  EXPECT_EQ(stripped.find("cd"), std::string::npos);
}

TEST(StripTest, BackslashContinuedLineCommentKeepsLineNumbers) {
  std::string stripped = StripCommentsAndStrings("// first \\\nstill comment\nint w = 9;\n");
  std::vector<std::string> lines = SplitLines(stripped);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[2], "int w = 9;");
  EXPECT_EQ(stripped.find("still"), std::string::npos);
}

TEST(ContainsWordTest, RespectsBoundaries) {
  EXPECT_TRUE(ContainsWord("x = rand();", "rand"));
  EXPECT_FALSE(ContainsWord("x = randomize();", "rand"));
  EXPECT_FALSE(ContainsWord("x = my_rand;", "rand"));
}

TEST(ConfigTest, RejectsMalformedInput) {
  Config config;
  std::string error;
  EXPECT_FALSE(ParseConfig("[layers]\nbroken line\n", &config, &error));
  EXPECT_NE(error.find("expected key = value"), std::string::npos);
}

TEST(ConfigTest, ParsesLayersAndAllowlists) {
  Config config;
  std::string error;
  ASSERT_TRUE(ParseConfig("[layers]\n\"a\" = [\"b\", \"c\"]\n\n[determinism]\n"
                          "wallclock_allow = [\"x.cc\"]\nrandom_allow = []\n",
                          &config, &error))
      << error;
  ASSERT_EQ(config.layers.count("a"), 1u);
  EXPECT_EQ(config.layers["a"], (std::vector<std::string>{"b", "c"}));
  EXPECT_EQ(config.wallclock_allow, std::vector<std::string>{"x.cc"});
  EXPECT_TRUE(config.random_allow.empty());
}

TEST(ConfigTest, ParsesErrorDisciplineAndConcurrencySections) {
  Config config;
  std::string error;
  ASSERT_TRUE(ParseConfig("[error_discipline]\nstatus_paths = [\"src/migration\"]\n"
                          "fallible_verbs = [\"Try\"]\n\n[concurrency]\n"
                          "task_callbacks = [\"ParallelFor\"]\ntask_entries = []\n"
                          "mutation_allow = [\"ObsDelta::*\"]\n",
                          &config, &error))
      << error;
  EXPECT_EQ(config.status_paths, std::vector<std::string>{"src/migration"});
  EXPECT_EQ(config.fallible_verbs, std::vector<std::string>{"Try"});
  EXPECT_EQ(config.task_callbacks, std::vector<std::string>{"ParallelFor"});
  EXPECT_TRUE(config.task_entries.empty());
  EXPECT_EQ(config.mutation_allow, std::vector<std::string>{"ObsDelta::*"});
}

TEST(CompileCommandsTest, ExtractsFileEntries) {
  std::vector<std::string> files = ParseCompileCommands(
      "[{\"directory\": \"/b\", \"command\": \"g++ -c a.cc\", \"file\": \"/r/a.cc\"},\n"
      " {\"file\": \"/r/b.cc\", \"output\": \"b.o\"}]\n");
  EXPECT_EQ(files, (std::vector<std::string>{"/r/a.cc", "/r/b.cc"}));
}

TEST(CompileCommandsTest, ExtractsIncludeDirs) {
  CompileDb db = ParseCompileDb(
      "[{\"directory\": \"/b\", \"command\": \"g++ -I/r/include -isystem /r/sys -I /r/alt "
      "-c a.cc\", \"file\": \"/r/a.cc\"}]\n");
  EXPECT_EQ(db.files, std::vector<std::string>{"/r/a.cc"});
  EXPECT_EQ(db.include_dirs, (std::vector<std::string>{"/r/include", "/r/sys", "/r/alt"}));
}

// ------------------------------------------------------------ known checks

TEST(KnownChecksTest, CoversEveryCheckAndPassName) {
  // mtm_lint's unknown-suppression check hardcodes this list; its
  // suppression-targets sync check parses passes.cc to keep them aligned.
  for (const char* check :
       {"unused-include", "transitive-include", "include-cycle", "dead-system-include",
        "layering", "unordered-iteration", "wall-clock", "raw-random", "discarded-status",
        "raw-error-return", "unchecked-result-unwrap", "task-member-write", "task-static-write",
        "task-capture-write", "unguarded-member-write", "lock-order", "include-graph",
        "determinism", "error-discipline", "concurrency", "lock-discipline", "suppression"}) {
    EXPECT_EQ(KnownChecks().count(check), 1u) << check;
  }
  EXPECT_EQ(KnownChecks().size(), 22u);
}

}  // namespace
}  // namespace mtm::analyze
