// Tests for initial page placement policies (first-touch, slow-tier-first,
// PM-only) and their THP behavior.
#include <gtest/gtest.h>

#include "src/common/types.h"
#include "src/common/units.h"
#include "src/mem/address_space.h"
#include "src/mem/frame_allocator.h"
#include "src/mem/placement.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"
#include "src/sim/tier.h"

namespace mtm {
namespace {

class PlacementTest : public ::testing::Test {
 protected:
  PlacementTest() : machine_(Machine::OptaneFourTier(512)), frames_(machine_) {}

  PlacementFaultHandler MakeHandler(PlacementPolicy policy) {
    return PlacementFaultHandler(machine_, page_table_, frames_, address_space_, policy);
  }

  Machine machine_;
  PageTable page_table_;
  AddressSpace address_space_;
  FrameAllocator frames_;
};

TEST_F(PlacementTest, FirstTouchPrefersLocalDram) {
  u32 vma = address_space_.Allocate(MiB(4), false, "x");
  auto handler = MakeHandler(PlacementPolicy::kFirstTouch);
  VirtAddr addr = address_space_.vma(vma).start;
  EXPECT_EQ(handler.HandlePageFault(addr, /*socket=*/0, false), machine_.TierOrder(0)[0]);
  EXPECT_EQ(handler.HandlePageFault(addr + kPageSize, /*socket=*/1, false),
            machine_.TierOrder(1)[0]);
}

TEST_F(PlacementTest, FirstTouchSpillsWhenFull) {
  u32 vma = address_space_.Allocate(MiB(16), false, "x");
  auto handler = MakeHandler(PlacementPolicy::kFirstTouch);
  // Fill local DRAM completely.
  ComponentId t1 = machine_.TierOrder(0)[0];
  ASSERT_TRUE(frames_.Reserve(t1, frames_.free_bytes(t1)).ok());
  VirtAddr addr = address_space_.vma(vma).start;
  EXPECT_EQ(handler.HandlePageFault(addr, 0, false), machine_.TierOrder(0)[1]);
}

TEST_F(PlacementTest, SlowTierFirstPrefersLocalPm) {
  // MTM's initial placement (§9.1 Table 4): local slow tier first.
  u32 vma = address_space_.Allocate(MiB(4), false, "x");
  auto handler = MakeHandler(PlacementPolicy::kSlowTierFirst);
  VirtAddr addr = address_space_.vma(vma).start;
  ComponentId placed = handler.HandlePageFault(addr, 0, false);
  EXPECT_EQ(machine_.component(placed).mem_class, MemClass::kPm);
  EXPECT_EQ(machine_.component(placed).home_socket, 0u);
}

TEST_F(PlacementTest, SlowTierFirstFallsBackToDram) {
  u32 vma = address_space_.Allocate(MiB(4), false, "x");
  auto handler = MakeHandler(PlacementPolicy::kSlowTierFirst);
  for (ComponentId c{0}; c < machine_.end_component(); ++c) {
    if (machine_.component(c).mem_class == MemClass::kPm) {
      ASSERT_TRUE(frames_.Reserve(c, frames_.free_bytes(c)).ok());
    }
  }
  VirtAddr addr = address_space_.vma(vma).start;
  ComponentId placed = handler.HandlePageFault(addr, 0, false);
  EXPECT_EQ(machine_.component(placed).mem_class, MemClass::kDram);
}

TEST_F(PlacementTest, PmOnlyNeverUsesDram) {
  u32 vma = address_space_.Allocate(MiB(4), false, "x");
  auto handler = MakeHandler(PlacementPolicy::kPmOnly);
  for (int i = 0; i < 32; ++i) {
    VirtAddr addr = address_space_.vma(vma).start + static_cast<u64>(i) * kPageSize;
    ComponentId placed = handler.HandlePageFault(addr, static_cast<u32>(i % 2), false);
    EXPECT_EQ(machine_.component(placed).mem_class, MemClass::kPm);
  }
}

TEST_F(PlacementTest, ThpVmaGetsHugeMapping) {
  u32 vma = address_space_.Allocate(MiB(4), /*thp=*/true, "x");
  auto handler = MakeHandler(PlacementPolicy::kFirstTouch);
  VirtAddr addr = address_space_.vma(vma).start + 123456;
  handler.HandlePageFault(addr, 0, false);
  Bytes size;
  ASSERT_NE(page_table_.Find(addr, &size), nullptr);
  EXPECT_EQ(size, kHugePageBytes);
  EXPECT_EQ(handler.huge_faults(), 1u);
}

TEST_F(PlacementTest, HugeFallsBackToBasePageUnderPressure) {
  u32 vma = address_space_.Allocate(MiB(4), /*thp=*/true, "x");
  auto handler = MakeHandler(PlacementPolicy::kFirstTouch);
  // Leave less than one huge page free everywhere.
  for (ComponentId c{0}; c < machine_.end_component(); ++c) {
    Bytes keep = c == machine_.TierOrder(0)[0] ? 3 * kPageBytes : Bytes{};
    ASSERT_TRUE(frames_.Reserve(c, frames_.free_bytes(c) - keep).ok());
  }
  VirtAddr addr = address_space_.vma(vma).start;
  ComponentId placed = handler.HandlePageFault(addr, 0, false);
  EXPECT_NE(placed, kInvalidComponent);
  Bytes size;
  ASSERT_NE(page_table_.Find(addr, &size), nullptr);
  EXPECT_EQ(size, kPageBytes);
  EXPECT_EQ(handler.base_faults(), 1u);
}

TEST_F(PlacementTest, NonThpVmaUsesBasePages) {
  u32 vma = address_space_.Allocate(MiB(4), /*thp=*/false, "x");
  auto handler = MakeHandler(PlacementPolicy::kFirstTouch);
  VirtAddr addr = address_space_.vma(vma).start;
  handler.HandlePageFault(addr, 0, false);
  Bytes size;
  ASSERT_NE(page_table_.Find(addr, &size), nullptr);
  EXPECT_EQ(size, kPageBytes);
}

TEST_F(PlacementTest, FrameAccountingMatchesMappings) {
  u32 vma = address_space_.Allocate(MiB(4), true, "x");
  auto handler = MakeHandler(PlacementPolicy::kFirstTouch);
  for (u64 off = 0; off < MiB(4).value(); off += kHugePageSize) {
    handler.HandlePageFault(address_space_.vma(vma).start + off, 0, false);
  }
  EXPECT_EQ(frames_.total_used(), MiB(4));
  EXPECT_EQ(page_table_.mapped_bytes(), MiB(4));
}

TEST(FrameAllocatorTest, ReserveRelease) {
  Machine machine = Machine::OptaneFourTier(512);
  FrameAllocator frames(machine);
  ComponentId c{0};
  Bytes cap = frames.capacity(c);
  EXPECT_TRUE(frames.Reserve(c, cap).ok());
  EXPECT_FALSE(frames.Reserve(c, Bytes(1)).ok());
  EXPECT_EQ(frames.free_bytes(c), Bytes{});
  frames.Release(c, cap / 2);
  EXPECT_EQ(frames.free_bytes(c), cap / 2);
}

TEST(AddressSpaceTest, AllocateWithGuardGaps) {
  AddressSpace as;
  u32 a = as.Allocate(MiB(3), true, "a");
  u32 b = as.Allocate(MiB(1), false, "b");
  const Vma& va = as.vma(a);
  const Vma& vb = as.vma(b);
  EXPECT_EQ(va.len, MiB(4));  // rounded to huge multiple
  EXPECT_GE(vb.start, va.end() + kHugePageSize);
  EXPECT_TRUE(IsHugeAligned(va.start));
  EXPECT_EQ(as.FindVma(va.start + 5), &va);
  EXPECT_EQ(as.FindVma(va.end()), nullptr);  // guard gap unmapped
  EXPECT_EQ(vb.len, MiB(2));                 // also rounded up
  EXPECT_EQ(as.total_bytes(), MiB(4) + MiB(2));
}

}  // namespace
}  // namespace mtm
