// Tests for the machine topology (Table 1 of the paper).
#include <gtest/gtest.h>

#include "src/common/types.h"
#include "src/common/units.h"
#include "src/sim/machine.h"
#include "src/sim/tier.h"

namespace mtm {
namespace {

TEST(MachineTest, OptaneFourTierMatchesTable1) {
  Machine m = Machine::OptaneFourTier(1);
  ASSERT_EQ(m.num_sockets(), 2u);
  ASSERT_EQ(m.num_components(), 4u);

  // Socket 0's tier order: local DRAM, remote DRAM, local PM, remote PM.
  const auto& order = m.TierOrder(0);
  EXPECT_EQ(m.component(order[0]).name, "DRAM0");
  EXPECT_EQ(m.component(order[1]).name, "DRAM1");
  EXPECT_EQ(m.component(order[2]).name, "PM0");
  EXPECT_EQ(m.component(order[3]).name, "PM1");

  // Table 1 latencies and bandwidths from socket 0.
  EXPECT_EQ(m.link(0, order[0]).latency_ns, Nanos(90));
  EXPECT_DOUBLE_EQ(m.link(0, order[0]).bandwidth_gbps, 95.0);
  EXPECT_EQ(m.link(0, order[1]).latency_ns, Nanos(145));
  EXPECT_DOUBLE_EQ(m.link(0, order[1]).bandwidth_gbps, 35.0);
  EXPECT_EQ(m.link(0, order[2]).latency_ns, Nanos(275));
  EXPECT_DOUBLE_EQ(m.link(0, order[2]).bandwidth_gbps, 35.0);
  EXPECT_EQ(m.link(0, order[3]).latency_ns, Nanos(340));
  EXPECT_DOUBLE_EQ(m.link(0, order[3]).bandwidth_gbps, 1.0);

  // Capacities: 96 GB DRAM, 756 GB PM per socket.
  EXPECT_EQ(m.component(order[0]).capacity_bytes, GiB(96));
  EXPECT_EQ(m.component(order[2]).capacity_bytes, GiB(756));
}

TEST(MachineTest, MultiViewSymmetry) {
  // The multi-view of tiered memory (§6.2): socket 1 sees the mirror order.
  Machine m = Machine::OptaneFourTier(1);
  const auto& order1 = m.TierOrder(1);
  EXPECT_EQ(m.component(order1[0]).name, "DRAM1");
  EXPECT_EQ(m.component(order1[1]).name, "DRAM0");
  EXPECT_EQ(m.component(order1[2]).name, "PM1");
  EXPECT_EQ(m.component(order1[3]).name, "PM0");
  // The same DRAM is tier 1 for its home socket and tier 2 remotely.
  ComponentId dram0 = m.TierOrder(0)[0];
  EXPECT_EQ(m.TierRank(0, dram0), TierId(0));
  EXPECT_EQ(m.TierRank(1, dram0), TierId(1));
}

TEST(MachineTest, ScaleDividesCapacity) {
  Machine m = Machine::OptaneFourTier(512);
  EXPECT_EQ(m.component(m.TierOrder(0)[0]).capacity_bytes, GiB(96) / 512);
  EXPECT_EQ(m.component(m.TierOrder(0)[2]).capacity_bytes, GiB(756) / 512);
  // Latency unchanged by scale.
  EXPECT_EQ(m.link(0, m.TierOrder(0)[0]).latency_ns, Nanos(90));
}

TEST(MachineTest, TierRankInverse) {
  Machine m = Machine::OptaneFourTier(64);
  for (u32 s = 0; s < m.num_sockets(); ++s) {
    const auto& order = m.TierOrder(s);
    for (u32 rank = 0; rank < order.size(); ++rank) {
      EXPECT_EQ(m.TierRank(s, order[rank]), TierId(rank));
    }
  }
}

TEST(MachineTest, SlowestTierIsPm) {
  Machine m = Machine::OptaneFourTier(64);
  int slowest = 0;
  for (ComponentId c{0}; c < m.end_component(); ++c) {
    if (m.IsSlowestTier(c)) {
      ++slowest;
      EXPECT_EQ(m.component(c).mem_class, MemClass::kPm);
    }
  }
  EXPECT_EQ(slowest, 2);
}

TEST(MachineTest, SlowerClass) {
  Machine m = Machine::OptaneFourTier(64);
  ComponentId dram0 = m.TierOrder(0)[0];
  ComponentId dram1 = m.TierOrder(0)[1];
  ComponentId pm0 = m.TierOrder(0)[2];
  EXPECT_TRUE(m.IsSlowerClass(dram0, pm0));
  EXPECT_FALSE(m.IsSlowerClass(pm0, dram0));
  // Lateral DRAM<->DRAM is not a demotion relationship.
  EXPECT_FALSE(m.IsSlowerClass(dram0, dram1));
  EXPECT_FALSE(m.IsSlowerClass(dram1, dram0));
}

TEST(MachineTest, TwoTier) {
  Machine m = Machine::TwoTier(1);
  EXPECT_EQ(m.num_sockets(), 1u);
  ASSERT_EQ(m.num_components(), 2u);
  const auto& order = m.TierOrder(0);
  EXPECT_EQ(m.component(order[0]).mem_class, MemClass::kDram);
  EXPECT_EQ(m.component(order[1]).mem_class, MemClass::kPm);
  EXPECT_TRUE(m.IsSlowestTier(order[1]));
  EXPECT_FALSE(m.IsSlowestTier(order[0]));
}

TEST(MachineTest, TotalCapacity) {
  Machine m = Machine::OptaneFourTier(1);
  EXPECT_EQ(m.TotalCapacity(), 2 * GiB(96) + 2 * GiB(756));
}

TEST(MachineTest, DebugStringMentionsTiers) {
  Machine m = Machine::OptaneFourTier(1);
  std::string s = m.DebugString();
  EXPECT_NE(s.find("DRAM0"), std::string::npos);
  EXPECT_NE(s.find("PM1"), std::string::npos);
}

}  // namespace
}  // namespace mtm
