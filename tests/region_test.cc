// Tests for the region map: seeding, merge, split, huge-page alignment.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/profiling/region.h"

namespace mtm {
namespace {

constexpr VirtAddr kBase{0x5500'0000'0000ull};

TEST(RegionMapTest, SeedRangeDefaultSize) {
  RegionMap map;
  map.SeedRange(kBase, kBase + 8 * kHugePageSize, kHugePageBytes);
  EXPECT_EQ(map.size(), 8u);
  VirtAddr expected = kBase;
  for (const auto& [start, region] : map) {
    EXPECT_EQ(region.start, expected);
    EXPECT_EQ(region.bytes(), kHugePageBytes);
    expected = region.end;
  }
  EXPECT_EQ(expected, kBase + 8 * kHugePageSize);
}

TEST(RegionMapTest, SeedRangeUnevenTail) {
  RegionMap map;
  map.SeedRange(kBase, kBase + kHugePageSize + 3 * kPageSize, kHugePageBytes);
  EXPECT_EQ(map.size(), 2u);
  auto last = std::prev(map.end());
  EXPECT_EQ(last->second.bytes(), 3 * kPageBytes);
}

TEST(RegionMapTest, SeedUnalignedStartAlignsBoundaries) {
  RegionMap map;
  map.SeedRange(kBase + 3 * kPageSize, kBase + 2 * kHugePageSize, kHugePageBytes);
  // First region ends at the next huge boundary so later regions align.
  auto it = map.begin();
  EXPECT_EQ(it->second.end.OffsetIn(kHugePageSize), 0u);
}

TEST(RegionMapTest, FindContaining) {
  RegionMap map;
  map.SeedRange(kBase, kBase + 4 * kHugePageSize, kHugePageBytes);
  auto it = map.FindContaining(kBase + kHugePageSize + 7);
  ASSERT_NE(it, map.end());
  EXPECT_EQ(it->second.start, kBase + kHugePageSize);
  EXPECT_EQ(map.FindContaining(kBase - 1), map.end());
  EXPECT_EQ(map.FindContaining(kBase + 4 * kHugePageSize), map.end());
}

TEST(RegionMapTest, MergeWithNext) {
  RegionMap map;
  map.SeedRange(kBase, kBase + 2 * kHugePageSize, kHugePageBytes);
  u64 id = map.begin()->second.id;
  auto merged = map.MergeWithNext(map.begin());
  ASSERT_NE(merged, map.end());
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(merged->second.id, id);  // keeps the left id
  EXPECT_EQ(merged->second.bytes(), 2 * kHugePageBytes);
}

TEST(RegionMapTest, MergeNonAdjacentFails) {
  RegionMap map;
  map.SeedRange(kBase, kBase + kHugePageSize, kHugePageBytes);
  map.SeedRange(kBase + 4 * kHugePageSize, kBase + 5 * kHugePageSize, kHugePageBytes);
  EXPECT_EQ(map.MergeWithNext(map.begin()), map.end());
  EXPECT_EQ(map.size(), 2u);
}

TEST(RegionMapTest, SplitCreatesFreshId) {
  RegionMap map;
  map.SeedRange(kBase, kBase + 4 * kHugePageSize, 4 * kHugePageBytes);
  ASSERT_EQ(map.size(), 1u);
  u64 left_id = map.begin()->second.id;
  RegionMap::iterator first;
  RegionMap::iterator second;
  ASSERT_TRUE(map.Split(map.begin(), kBase + 2 * kHugePageSize, &first, &second));
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(first->second.id, left_id);
  EXPECT_NE(second->second.id, left_id);
  EXPECT_EQ(first->second.end, second->second.start);
}

TEST(RegionMapTest, SplitRejectsBoundaries) {
  RegionMap map;
  map.SeedRange(kBase, kBase + kHugePageSize, kHugePageBytes);
  EXPECT_FALSE(map.Split(map.begin(), kBase, nullptr, nullptr));
  EXPECT_FALSE(map.Split(map.begin(), kBase + kHugePageSize, nullptr, nullptr));
}

TEST(RegionMapTest, SplitPointHugeAligned) {
  // §5.4: splits of multi-huge-page regions land on huge boundaries so a
  // huge page is never profiled in two regions.
  Region r;
  r.start = kBase;
  r.end = kBase + 5 * kHugePageSize;
  VirtAddr split = RegionMap::SplitPoint(r);
  EXPECT_TRUE(IsHugeAligned(split));
  EXPECT_GT(split, r.start);
  EXPECT_LT(split, r.end);
}

TEST(RegionMapTest, SplitPointOddRegionStillAligned) {
  Region r;
  r.start = kBase + kPageSize;  // not huge aligned
  r.end = kBase + 3 * kHugePageSize;
  VirtAddr split = RegionMap::SplitPoint(r);
  EXPECT_TRUE(IsHugeAligned(split));
  EXPECT_GT(split, r.start);
  EXPECT_LT(split, r.end);
}

TEST(RegionMapTest, SplitPointSmallRegionPageAligned) {
  Region r;
  r.start = kBase;
  r.end = kBase + 6 * kPageSize;
  VirtAddr split = RegionMap::SplitPoint(r);
  EXPECT_TRUE(IsPageAligned(split));
  EXPECT_EQ(split, kBase + 3 * kPageSize);
}

TEST(RegionMapTest, SplitPointSinglePageImpossible) {
  Region r;
  r.start = kBase;
  r.end = kBase + kPageSize;
  EXPECT_EQ(RegionMap::SplitPoint(r), VirtAddr{});
}

TEST(RegionTest, HotnessVariance) {
  Region r;
  r.hi = 2.5;
  r.prev_hi = 1.0;
  EXPECT_DOUBLE_EQ(r.HotnessVariance(), 1.5);
  r.hi = 0.5;
  EXPECT_DOUBLE_EQ(r.HotnessVariance(), 0.5);
}

// Property: random merges and splits preserve exact coverage of the seeded
// range with no overlaps.
TEST(RegionMapPropertyTest, CoverageInvariant) {
  RegionMap map;
  const VirtAddr end = kBase + 64 * kHugePageSize;
  map.SeedRange(kBase, end, kHugePageBytes);
  Rng rng(99);
  for (int step = 0; step < 500; ++step) {
    u64 pick = rng.NextBounded(map.size());
    auto it = map.begin();
    std::advance(it, static_cast<long>(pick));
    if (rng.NextBernoulli(0.5)) {
      map.MergeWithNext(it);
    } else {
      VirtAddr split = RegionMap::SplitPoint(it->second);
      if (!split.IsZero()) {
        map.Split(it, split, nullptr, nullptr);
      }
    }
    // Invariant check.
    VirtAddr cursor = kBase;
    for (const auto& [start, region] : map) {
      ASSERT_EQ(region.start, cursor);
      ASSERT_LT(region.start, region.end);
      cursor = region.end;
    }
    ASSERT_EQ(cursor, end);
  }
}

}  // namespace
}  // namespace mtm
