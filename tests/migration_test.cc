// Tests for migration mechanisms and the migration engine (§7).
#include <gtest/gtest.h>

#include "src/common/types.h"
#include "src/common/units.h"
#include "src/mem/address_space.h"
#include "src/mem/frame_allocator.h"
#include "src/migration/admission/admission.h"
#include "src/migration/cost_model.h"
#include "src/migration/mechanism.h"
#include "src/migration/migration_engine.h"
#include "src/sim/clock.h"
#include "src/sim/counters.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"

namespace mtm {
namespace {

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest()
      : machine_(Machine::OptaneFourTier(512)),
        frames_(machine_),
        counters_(machine_.num_components()),
        t1_(machine_.TierOrder(0)[0]),
        t2_(machine_.TierOrder(0)[1]),
        t3_(machine_.TierOrder(0)[2]),
        t4_(machine_.TierOrder(0)[3]) {}

  VirtAddr BuildMapped(Bytes bytes, ComponentId component, bool huge) {
    u32 vma = address_space_.Allocate(bytes, huge, "w");
    VirtAddr start = address_space_.vma(vma).start;
    EXPECT_TRUE(page_table_.MapRange(start, address_space_.vma(vma).len, component, huge).ok());
    EXPECT_TRUE(frames_.Reserve(component, address_space_.vma(vma).len).ok());
    return start;
  }

  MigrationEngine MakeEngine(MechanismKind kind) {
    return MigrationEngine(machine_, page_table_, frames_, address_space_, counters_, clock_,
                           kind);
  }

  ComponentId ComponentAt(VirtAddr addr) {
    Pte* pte = page_table_.Find(addr);
    return pte == nullptr ? kInvalidComponent : pte->component;
  }

  Machine machine_;
  SimClock clock_;
  PageTable page_table_;
  AddressSpace address_space_;
  FrameAllocator frames_;
  MemCounters counters_;
  ComponentId t1_, t2_, t3_, t4_;
};

// ------------------------------------------------------- mechanism costs --

TEST_F(MigrationTest, MovePagesCopyDominates) {
  // Figure 3: "Copying pages is the most time-consuming step".
  MigrationCostModel model;
  MechanismCost cost = ComputeMechanismCost(MechanismKind::kMovePages, model, machine_, 0,
                                            t1_, t4_, 0, /*huge_pages=*/1);
  EXPECT_GT(cost.critical.copy_ns, cost.critical.allocate_ns);
  EXPECT_GT(cost.critical.copy_ns, cost.critical.unmap_remap_ns / 2);
  double share = static_cast<double>(cost.critical.copy_ns.value()) /
                 static_cast<double>(cost.CriticalNs().value());
  EXPECT_GT(share, 0.3);
  EXPECT_EQ(cost.BackgroundNs(), SimNanos{});
}

TEST_F(MigrationTest, MmrCriticalPathMuchCheaper) {
  // Figure 3: move_memory_regions() is ~4.4x faster than move_pages() on
  // the exposed path (copy and allocation run on helper threads).
  MigrationCostModel model;
  // A 2 MiB region of base pages, as move_pages() handles it.
  MechanismCost mp = ComputeMechanismCost(MechanismKind::kMovePages, model, machine_, 0, t1_,
                                          t4_, kPagesPerHugePage, 0);
  MechanismCost mmr = ComputeMechanismCost(MechanismKind::kMoveMemoryRegions, model, machine_,
                                           0, t1_, t4_, kPagesPerHugePage, 0);
  double ratio =
      static_cast<double>(mp.CriticalNs().value()) / static_cast<double>(mmr.CriticalNs().value());
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 15.0);
  EXPECT_GT(mmr.BackgroundNs(), SimNanos{});
  EXPECT_EQ(mmr.critical.copy_ns, SimNanos{});
}

TEST_F(MigrationTest, NimbleBetweenMovePagesAndMmr) {
  MigrationCostModel model;
  MechanismCost mp = ComputeMechanismCost(MechanismKind::kMovePages, model, machine_, 0, t1_,
                                          t3_, 0, 4);
  MechanismCost nb = ComputeMechanismCost(MechanismKind::kNimble, model, machine_, 0, t1_,
                                          t3_, 0, 4);
  MechanismCost mmr = ComputeMechanismCost(MechanismKind::kMoveMemoryRegions, model, machine_,
                                           0, t1_, t3_, 0, 4);
  EXPECT_LT(nb.CriticalNs(), mp.CriticalNs());
  EXPECT_GT(nb.CriticalNs(), mmr.CriticalNs());
}

TEST_F(MigrationTest, MmrSyncExposesCopy) {
  MigrationCostModel model;
  MechanismCost sync = ComputeMechanismCost(MechanismKind::kMmrSync, model, machine_, 0, t1_,
                                            t3_, 0, 1);
  EXPECT_GT(sync.critical.copy_ns, SimNanos{});
  EXPECT_EQ(sync.BackgroundNs(), SimNanos{});
}

TEST_F(MigrationTest, SlowerLinkCostsMore) {
  MigrationCostModel model;
  MechanismCost to_t3 = ComputeMechanismCost(MechanismKind::kMovePages, model, machine_, 0,
                                             t1_, t3_, 0, 1);
  MechanismCost to_t4 = ComputeMechanismCost(MechanismKind::kMovePages, model, machine_, 0,
                                             t1_, t4_, 0, 1);
  EXPECT_GT(to_t4.critical.copy_ns, to_t3.critical.copy_ns);
}

// --------------------------------------------------------------- engine --

TEST_F(MigrationTest, SyncSubmitCommitsImmediately) {
  VirtAddr start = BuildMapped(MiB(4), t3_, false);
  MigrationEngine engine = MakeEngine(MechanismKind::kMovePages);
  (void)engine.Submit(MigrationOrder{start, MiB(2), t1_, 0});
  EXPECT_EQ(ComponentAt(start), t1_);
  EXPECT_EQ(ComponentAt(start + MiB(2).value()), t3_);  // outside the order
  EXPECT_EQ(engine.stats().bytes_migrated, MiB(2));
  EXPECT_EQ(frames_.used(t1_), MiB(2));
  EXPECT_EQ(frames_.used(t3_), MiB(4) - MiB(2));
  EXPECT_GT(clock_.migration_ns(), SimNanos{});
  EXPECT_GT(counters_.migration_bytes(t1_), Bytes{});
}

TEST_F(MigrationTest, AsyncDefersUntilPoll) {
  VirtAddr start = BuildMapped(MiB(4), t3_, false);
  MigrationEngine engine = MakeEngine(MechanismKind::kMoveMemoryRegions);
  (void)engine.Submit(MigrationOrder{start, MiB(2), t1_, 0});
  // Copy is in flight: pages still on the source, write tracking armed.
  EXPECT_EQ(engine.pending(), 1u);
  EXPECT_EQ(ComponentAt(start), t3_);
  EXPECT_TRUE(page_table_.Find(start)->write_tracked());
  // The copy window passes (advance app time), Poll completes the move.
  clock_.AdvanceApp(Seconds(1));
  engine.Poll();
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(ComponentAt(start), t1_);
  EXPECT_FALSE(page_table_.Find(start)->write_tracked());
  EXPECT_EQ(engine.stats().sync_fallbacks, 0u);
}

TEST_F(MigrationTest, WriteDuringAsyncSwitchesToSync) {
  // §7.2: "whenever any page in the region for migration is written after
  // the asynchronous page copy starts, MTM switches to the synchronous page
  // copy immediately".
  VirtAddr start = BuildMapped(MiB(4), t3_, false);
  MigrationEngine engine = MakeEngine(MechanismKind::kMoveMemoryRegions);
  (void)engine.Submit(MigrationOrder{start, MiB(2), t1_, 0});
  SimNanos before = clock_.migration_ns();
  engine.OnWriteTrackFault(start + kPageSize, 0);
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(engine.stats().sync_fallbacks, 1u);
  EXPECT_EQ(ComponentAt(start), t1_);  // committed immediately
  EXPECT_GT(clock_.migration_ns(), before);  // remaining copy exposed
}

TEST_F(MigrationTest, FlushCompletesPending) {
  VirtAddr start = BuildMapped(MiB(4), t3_, false);
  MigrationEngine engine = MakeEngine(MechanismKind::kMoveMemoryRegions);
  (void)engine.Submit(MigrationOrder{start, MiB(2), t1_, 0});
  engine.Flush();
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(ComponentAt(start), t1_);
}

TEST_F(MigrationTest, OverlappingAsyncOrderDropped) {
  VirtAddr start = BuildMapped(MiB(4), t3_, false);
  MigrationEngine engine = MakeEngine(MechanismKind::kMoveMemoryRegions);
  (void)engine.Submit(MigrationOrder{start, MiB(2), t1_, 0});
  (void)engine.Submit(MigrationOrder{start + MiB(1).value(), MiB(2), t2_, 0});
  EXPECT_EQ(engine.pending(), 1u);
}

TEST_F(MigrationTest, NoopOrderIgnored) {
  VirtAddr start = BuildMapped(MiB(2), t1_, false);
  MigrationEngine engine = MakeEngine(MechanismKind::kMoveMemoryRegions);
  (void)engine.Submit(MigrationOrder{start, MiB(2), t1_, 0});  // already there
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(engine.stats().bytes_migrated, Bytes{});
}

TEST_F(MigrationTest, HugeMappingsMigrateWhole) {
  VirtAddr start = BuildMapped(MiB(4), t3_, /*huge=*/true);
  MigrationEngine engine = MakeEngine(MechanismKind::kNimble);
  (void)engine.Submit(MigrationOrder{start, kHugePageBytes, t1_, 0});
  Bytes size;
  ASSERT_NE(page_table_.Find(start, &size), nullptr);
  EXPECT_EQ(size, kHugePageBytes);
  EXPECT_EQ(ComponentAt(start), t1_);
  EXPECT_EQ(ComponentAt(start + kHugePageSize), t3_);
}

TEST_F(MigrationTest, ReclaimDemotesWhenDestinationFull) {
  // Fill t1 with cold pages; a promotion then demotes them down-class.
  VirtAddr cold = BuildMapped(frames_.capacity(t1_), t1_, false);
  VirtAddr hot = BuildMapped(MiB(2), t3_, false);
  ASSERT_EQ(frames_.free_bytes(t1_), Bytes{});
  MigrationEngine engine = MakeEngine(MechanismKind::kMovePages);
  (void)engine.Submit(MigrationOrder{hot, MiB(2), t1_, 0});
  EXPECT_EQ(ComponentAt(hot), t1_);
  EXPECT_GT(engine.stats().reclaim_demotions, 0u);
  // Victims went to a strictly slower class (PM), never laterally to DRAM1.
  int on_dram1 = 0;
  page_table_.ForEachMapping(cold, frames_.capacity(t1_), [&](VirtAddr, Bytes, Pte& pte) {
    on_dram1 += pte.component == t2_;
  });
  EXPECT_EQ(on_dram1, 0);
}

TEST_F(MigrationTest, ReclaimPrefersInactivePages) {
  VirtAddr cold = BuildMapped(frames_.capacity(t1_), t1_, false);
  VirtAddr hot = BuildMapped(MiB(2), t3_, false);
  // Mark the first half of t1's pages accessed (active).
  page_table_.ForEachMapping(cold, frames_.capacity(t1_) / 2,
                             [](VirtAddr, Bytes, Pte& pte) { pte.Set(Pte::kAccessed); });
  MigrationEngine engine = MakeEngine(MechanismKind::kMovePages);
  (void)engine.Submit(MigrationOrder{hot, MiB(2), t1_, 0});
  // Active pages survive: count demotions from the active half.
  int demoted_active = 0;
  page_table_.ForEachMapping(cold, frames_.capacity(t1_) / 2, [&](VirtAddr, Bytes, Pte& pte) {
    demoted_active += pte.component != t1_;
  });
  EXPECT_EQ(demoted_active, 0);
}

TEST_F(MigrationTest, StepBreakdownAccumulates) {
  VirtAddr start = BuildMapped(MiB(4), t3_, false);
  MigrationEngine engine = MakeEngine(MechanismKind::kMovePages);
  (void)engine.Submit(MigrationOrder{start, MiB(2), t1_, 0});
  const MigrationStepBreakdown& steps = engine.stats().steps;
  EXPECT_GT(steps.allocate_ns, SimNanos{});
  EXPECT_GT(steps.unmap_remap_ns, SimNanos{});
  EXPECT_GT(steps.copy_ns, SimNanos{});
  EXPECT_EQ(steps.Total(), engine.stats().critical_ns);
}

TEST_F(MigrationTest, MixedSourceRegionsHandled) {
  // A range straddling two components migrates everything to the target.
  VirtAddr start = BuildMapped(MiB(4), t3_, false);
  MigrationEngine engine = MakeEngine(MechanismKind::kMovePages);
  (void)engine.Submit(MigrationOrder{start, MiB(1), t4_, 0});
  ASSERT_EQ(ComponentAt(start), t4_);
  (void)engine.Submit(MigrationOrder{start, MiB(2), t1_, 0});
  EXPECT_EQ(ComponentAt(start), t1_);
  EXPECT_EQ(ComponentAt(start + MiB(1).value()), t1_);
}

}  // namespace
}  // namespace mtm
