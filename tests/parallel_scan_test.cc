// Differential determinism tests for the sharded PTE-scan engine: the same
// seeded workload must produce byte-identical metrics JSONL, interval
// timeline, Chrome trace, and report JSON for every --scan-threads value —
// and identical to the pre-PR serial golden output checked into
// tests/golden/ (generated before the parallel path existed).
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/core/solution.h"
#include "src/mem/address_space.h"
#include "src/obs/obs.h"
#include "src/profiling/mtm_profiler.h"
#include "src/profiling/region.h"
#include "src/sim/access_engine.h"
#include "src/sim/clock.h"
#include "src/sim/counters.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"
#include "src/sim/pebs.h"

namespace mtm {
namespace {

struct RunArtifacts {
  std::string metrics_jsonl;
  std::string trace_json;
  std::string report_json;
};

// Mirrors the CI observability smoke invocation of mtmsim:
//   mtmsim --workload=gups --solution=mtm --intervals=12 --accesses=3000000
RunArtifacts RunWithScanThreads(u32 scan_threads) {
  ExperimentConfig config;
  config.num_intervals = 12;
  config.target_accesses = 3'000'000;
  config.mtm.scan_threads = scan_threads;
  Observability obs;
  RunOptions options;
  options.obs = &obs;
  RunResult result = RunExperiment("gups", SolutionKind::kMtm, config, options);

  RunArtifacts artifacts;
  std::ostringstream metrics;
  obs.timeline.WriteJsonl(metrics, obs.metrics);
  artifacts.metrics_jsonl = metrics.str();
  std::ostringstream trace;
  obs.trace.WriteChromeTrace(trace);
  artifacts.trace_json = trace.str();
  // mtmsim prints the report with a trailing newline; the goldens carry it.
  artifacts.report_json = Render(result, ReportFormat::kJson) + "\n";
  return artifacts;
}

std::string ReadGolden(const std::string& name) {
  std::ifstream in(std::string(MTM_TESTS_GOLDEN_DIR) + "/" + name, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file: " << name;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ParallelScanTest, ScanThreadsProduceByteIdenticalArtifacts) {
  RunArtifacts serial = RunWithScanThreads(1);
  for (u32 threads : {2u, 8u}) {
    RunArtifacts parallel = RunWithScanThreads(threads);
    EXPECT_EQ(serial.metrics_jsonl, parallel.metrics_jsonl) << "scan_threads=" << threads;
    EXPECT_EQ(serial.trace_json, parallel.trace_json) << "scan_threads=" << threads;
    EXPECT_EQ(serial.report_json, parallel.report_json) << "scan_threads=" << threads;
  }
}

TEST(ParallelScanTest, MatchesPreParallelSerialGolden) {
  // Both the serial and a parallel run must reproduce the golden bytes
  // captured from the build that predates the sharded scan engine.
  const std::string golden_metrics = ReadGolden("scan_gups_metrics.jsonl");
  const std::string golden_trace = ReadGolden("scan_gups_trace.json");
  const std::string golden_report = ReadGolden("scan_gups_report.json");
  for (u32 threads : {1u, 8u}) {
    RunArtifacts artifacts = RunWithScanThreads(threads);
    EXPECT_EQ(artifacts.metrics_jsonl, golden_metrics) << "scan_threads=" << threads;
    EXPECT_EQ(artifacts.trace_json, golden_trace) << "scan_threads=" << threads;
    EXPECT_EQ(artifacts.report_json, golden_report) << "scan_threads=" << threads;
  }
}

// Profiler-level differential: two MtmProfiler instances over identically
// prepared page tables, one serial and one with an odd worker count (odd so
// shards and threads never divide evenly), must converge to bitwise-equal
// region state. This is the test TSan exercises most heavily.
class ProfilerHarness {
 public:
  explicit ProfilerHarness(u32 scan_threads)
      : machine_(Machine::OptaneFourTier(512)),
        counters_(machine_.num_components()),
        engine_(machine_, page_table_, clock_, counters_, AccessEngine::Config{}),
        pebs_(machine_, PebsEngine::Config{}) {
    engine_.set_pebs(&pebs_);
    u32 vma = address_space_.Allocate(MiB(32), false, "w");
    start_ = address_space_.vma(vma).start;
    EXPECT_TRUE(
        page_table_.MapRange(start_, address_space_.vma(vma).len, ComponentId(0), false).ok());
    MtmProfiler::Config config;
    config.interval_ns = Millis(20);
    config.scan_threads = scan_threads;
    config.hint_fault_period = 7;  // exercise hint arming across shard seams
    profiler_ = std::make_unique<MtmProfiler>(machine_, page_table_, address_space_, engine_,
                                              &pebs_, config);
    profiler_->Initialize();
  }

  // One profiling interval with a seeded pseudo-random touch pattern.
  void RunInterval(u64 interval_seed) {
    Rng rng(interval_seed);
    profiler_->OnIntervalStart();
    for (u32 tick = 0; tick < 3; ++tick) {
      for (int i = 0; i < 4000; ++i) {
        VirtAddr addr = start_ + PagesToBytes(rng.NextBounded(NumPages(MiB(8))));
        page_table_.Touch(addr, rng.NextBernoulli(0.3));
      }
      profiler_->OnScanTick(tick);
    }
    profiler_->OnIntervalEnd();
  }

  const MtmProfiler& profiler() const { return *profiler_; }

 private:
  Machine machine_;
  SimClock clock_;
  PageTable page_table_;
  AddressSpace address_space_;
  MemCounters counters_;
  AccessEngine engine_;
  PebsEngine pebs_;
  VirtAddr start_;
  std::unique_ptr<MtmProfiler> profiler_;
};

TEST(ParallelScanTest, RegionStateBitwiseEqualAcrossThreadCounts) {
  ProfilerHarness serial(1);
  ProfilerHarness parallel(3);
  for (u64 interval = 0; interval < 6; ++interval) {
    serial.RunInterval(0x9000 + interval);
    parallel.RunInterval(0x9000 + interval);
  }
  const RegionMap& a = serial.profiler().regions();
  const RegionMap& b = parallel.profiler().regions();
  ASSERT_EQ(a.size(), b.size());
  auto ita = a.begin();
  auto itb = b.begin();
  for (; ita != a.end(); ++ita, ++itb) {
    const Region& ra = ita->second;
    const Region& rb = itb->second;
    EXPECT_EQ(ra.start, rb.start);
    EXPECT_EQ(ra.end, rb.end);
    EXPECT_EQ(ra.id, rb.id);
    EXPECT_EQ(ra.sample_quota, rb.sample_quota);
    EXPECT_EQ(ra.sampled_pages, rb.sampled_pages);
    EXPECT_EQ(ra.sample_hits, rb.sample_hits);
    // Bitwise, not approximate: the parallel path must evaluate the exact
    // same floating-point expressions per region.
    EXPECT_EQ(ra.hi, rb.hi);
    EXPECT_EQ(ra.prev_hi, rb.prev_hi);
    EXPECT_EQ(ra.whi, rb.whi);
    EXPECT_EQ(ra.socket_hits, rb.socket_hits);
  }
  EXPECT_EQ(serial.profiler().last_interval_scans(), parallel.profiler().last_interval_scans());
  EXPECT_EQ(serial.profiler().current_tau_m(), parallel.profiler().current_tau_m());
}

TEST(ParallelScanTest, ThreadPoolRunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<int> hits(257, 0);
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
  }
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 50) << "task " << i;
  }
}

TEST(ParallelScanTest, ThreadPoolInlineWhenSingleThreaded) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(8);
  pool.ParallelFor(ran.size(), [&](std::size_t i) { ran[i] = std::this_thread::get_id(); });
  for (const std::thread::id& id : ran) {
    EXPECT_EQ(id, caller);  // no worker threads exist at num_threads=1
  }
}

}  // namespace
}  // namespace mtm
