// Tests for the Table 2 workload generators.
#include <gtest/gtest.h>

#include <map>

#include "src/common/types.h"
#include "src/common/units.h"
#include "src/mem/address_space.h"
#include "src/profiling/oracle.h"
#include "src/workloads/cassandra.h"
#include "src/workloads/graph.h"
#include "src/workloads/gups.h"
#include "src/workloads/pingpong.h"
#include "src/workloads/spark.h"
#include "src/workloads/voltdb.h"
#include "src/workloads/workload.h"
#include "src/workloads/workload_factory.h"

namespace mtm {
namespace {

Workload::Params SmallParams(Bytes footprint) {
  Workload::Params p;
  p.footprint_bytes = footprint;
  p.num_threads = 8;
  p.seed = 42;
  return p;
}

// Runs a batch and checks every address lies inside some VMA.
void CheckAddressesInVmas(Workload& w, AddressSpace& as, u32 n = 4096) {
  std::vector<MemAccess> buf(n);
  ASSERT_EQ(w.NextBatch(buf.data(), n), n);
  for (const MemAccess& a : buf) {
    EXPECT_NE(as.FindVma(a.addr), nullptr) << std::hex << a.addr;
    EXPECT_LT(a.thread, w.params().num_threads);
  }
}

double MeasuredWriteFraction(Workload& w, u32 n = 65536) {
  std::vector<MemAccess> buf(n);
  w.NextBatch(buf.data(), n);
  u32 writes = 0;
  for (const MemAccess& a : buf) {
    writes += a.is_write;
  }
  return static_cast<double>(writes) / n;
}

TEST(GupsTest, BuildAndAddresses) {
  GupsWorkload gups(SmallParams(MiB(64)));
  AddressSpace as;
  gups.Build(as);
  EXPECT_EQ(as.vmas().size(), 3u);  // table, index, info — Figure 6's C/A/B
  CheckAddressesInVmas(gups, as);
}

TEST(GupsTest, ReadWriteOneToOne) {
  GupsWorkload gups(SmallParams(MiB(64)));
  AddressSpace as;
  gups.Build(as);
  // Updates are read+write pairs; A/B object reads pull the ratio slightly
  // below 0.5 writes.
  double wf = MeasuredWriteFraction(gups);
  EXPECT_GT(wf, 0.35);
  EXPECT_LT(wf, 0.5);
}

TEST(GupsTest, HotSetReceivesMostAccesses) {
  GupsWorkload::Options options;
  GupsWorkload gups(SmallParams(MiB(64)), options);
  AddressSpace as;
  gups.Build(as);
  std::vector<HotRange> truth = gups.TrueHotRanges();
  ASSERT_EQ(truth.size(), 3u);
  std::vector<MemAccess> buf(65536);
  gups.NextBatch(buf.data(), buf.size());
  u64 hot = 0;
  for (const MemAccess& a : buf) {
    for (const HotRange& r : truth) {
      if (a.addr >= r.start && a.addr < r.end()) {
        ++hot;
        break;
      }
    }
  }
  // 80% of table updates + A/B traffic land in declared-hot ranges.
  EXPECT_GT(static_cast<double>(hot) / buf.size(), 0.75);
}

TEST(GupsTest, HotSetDriftsAcrossPhases) {
  GupsWorkload::Options options;
  options.phase_ops = 10000;
  GupsWorkload gups(SmallParams(MiB(64)), options);
  AddressSpace as;
  gups.Build(as);
  HotRange before = gups.object_c();
  std::vector<MemAccess> buf(4096);
  for (int i = 0; i < 20; ++i) {
    gups.NextBatch(buf.data(), buf.size());
  }
  HotRange after = gups.object_c();
  EXPECT_NE(before.start, after.start);
  EXPECT_EQ(before.len, after.len);
}

TEST(GupsTest, StaticHotSetWithoutPhases) {
  GupsWorkload::Options options;
  options.phase_ops = 0;
  GupsWorkload gups(SmallParams(MiB(64)), options);
  AddressSpace as;
  gups.Build(as);
  HotRange before = gups.object_c();
  std::vector<MemAccess> buf(8192);
  for (int i = 0; i < 10; ++i) {
    gups.NextBatch(buf.data(), buf.size());
  }
  EXPECT_EQ(before.start, gups.object_c().start);
}

TEST(VoltDbTest, BuildAndAddresses) {
  VoltDbWorkload voltdb(SmallParams(MiB(64)));
  AddressSpace as;
  voltdb.Build(as);
  EXPECT_EQ(as.vmas().size(), 4u);  // tables, index, order log, history
  // History grows at runtime rather than during initialization.
  EXPECT_FALSE(as.vma(3).prefault);
  CheckAddressesInVmas(voltdb, as);
}

TEST(VoltDbTest, WarehouseSkew) {
  VoltDbWorkload::Options options;
  options.num_warehouses = 64;
  VoltDbWorkload voltdb(SmallParams(MiB(64)), options);
  AddressSpace as;
  voltdb.Build(as);
  const Vma& tables = as.vma(0);
  std::vector<MemAccess> buf(65536);
  voltdb.NextBatch(buf.data(), buf.size());
  // Count accesses per warehouse block; zipf should concentrate them.
  u64 wh_bytes = (HugeAlignDown(tables.len) / 64).value();
  std::map<u64, u64> per_wh;
  for (const MemAccess& a : buf) {
    if (tables.Contains(a.addr)) {
      per_wh[(a.addr - tables.start) / wh_bytes]++;
    }
  }
  u64 max_count = 0;
  u64 total = 0;
  for (auto& [wh, count] : per_wh) {
    max_count = std::max(max_count, count);
    total += count;
  }
  EXPECT_GT(max_count, total / 64 * 3);  // hottest warehouse >> average
}

TEST(VoltDbTest, ReadWriteMix) {
  VoltDbWorkload voltdb(SmallParams(MiB(64)));
  AddressSpace as;
  voltdb.Build(as);
  double wf = MeasuredWriteFraction(voltdb);
  EXPECT_GT(wf, 0.35);
  EXPECT_LT(wf, 0.6);
}

TEST(CassandraTest, BuildAndAddresses) {
  CassandraWorkload cassandra(SmallParams(MiB(64)));
  AddressSpace as;
  cassandra.Build(as);
  EXPECT_EQ(as.vmas().size(), 3u);  // rows, memtable, commit log
  CheckAddressesInVmas(cassandra, as);
}

TEST(CassandraTest, UpdateHeavyMix) {
  CassandraWorkload cassandra(SmallParams(MiB(64)));
  AddressSpace as;
  cassandra.Build(as);
  double wf = MeasuredWriteFraction(cassandra);
  EXPECT_GT(wf, 0.3);  // YCSB-A: ~50% updates plus memtable/commitlog writes
  EXPECT_LT(wf, 0.65);
}

TEST(CassandraTest, ZipfKeysCluster) {
  CassandraWorkload cassandra(SmallParams(MiB(64)));
  AddressSpace as;
  cassandra.Build(as);
  const Vma& rows = as.vma(0);
  std::vector<MemAccess> buf(65536);
  cassandra.NextBatch(buf.data(), buf.size());
  std::map<u64, u64> per_block;  // 4 MiB blocks
  u64 total = 0;
  for (const MemAccess& a : buf) {
    if (rows.Contains(a.addr)) {
      per_block[(a.addr - rows.start) / MiB(4).value()]++;
      ++total;
    }
  }
  u64 max_count = 0;
  for (auto& [b, count] : per_block) {
    max_count = std::max(max_count, count);
  }
  u64 blocks = rows.len / MiB(4);
  EXPECT_GT(max_count, total / blocks * 2);
}

TEST(CsrGraphTest, StructureValid) {
  CsrGraph graph(10000, 15.5, 0.6, 7);
  EXPECT_EQ(graph.num_vertices(), 10000u);
  EXPECT_NEAR(static_cast<double>(graph.num_edges()), 155000.0, 155000.0 * 0.02);
  u64 prev = 0;
  for (u64 v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_GE(graph.OffsetOf(v), prev);
    prev = graph.OffsetOf(v);
    EXPECT_EQ(graph.OffsetOf(v) + graph.DegreeOf(v), graph.OffsetOf(v + 1));
  }
  for (u64 i = 0; i < std::min<u64>(graph.num_edges(), 10000); ++i) {
    EXPECT_LT(graph.Edge(i), graph.num_vertices());
  }
}

TEST(CsrGraphTest, DegreeSkewHubsAtLowIds) {
  CsrGraph graph(10000, 15.5, 0.6, 7);
  u64 head_degree = 0;
  for (u64 v = 0; v < 100; ++v) {
    head_degree += graph.DegreeOf(v);
  }
  u64 tail_degree = 0;
  for (u64 v = 9000; v < 9100; ++v) {
    tail_degree += graph.DegreeOf(v);
  }
  EXPECT_GT(head_degree, tail_degree * 5);
}

TEST(GraphWorkloadTest, BfsEmitsValidReadOnlyAccesses) {
  GraphWorkload::Options options;
  options.algorithm = GraphWorkload::Algorithm::kBfs;
  GraphWorkload bfs(SmallParams(MiB(64)), options);
  AddressSpace as;
  bfs.Build(as);
  EXPECT_EQ(as.vmas().size(), 3u);  // offsets, edges, state
  std::vector<MemAccess> buf(8192);
  ASSERT_EQ(bfs.NextBatch(buf.data(), buf.size()), buf.size());
  for (const MemAccess& a : buf) {
    EXPECT_NE(as.FindVma(a.addr), nullptr);
    EXPECT_FALSE(a.is_write);  // Table 2: read-only
  }
  EXPECT_DOUBLE_EQ(bfs.read_fraction(), 1.0);
}

TEST(GraphWorkloadTest, SsspRuns) {
  GraphWorkload::Options options;
  options.algorithm = GraphWorkload::Algorithm::kSssp;
  GraphWorkload sssp(SmallParams(MiB(64)), options);
  AddressSpace as;
  sssp.Build(as);
  EXPECT_EQ(sssp.name(), "sssp");
  std::vector<MemAccess> buf(8192);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(sssp.NextBatch(buf.data(), buf.size()), buf.size());
  }
}

TEST(GraphWorkloadTest, EdgeArrayDominatesTraffic) {
  GraphWorkload::Options options;
  GraphWorkload bfs(SmallParams(MiB(64)), options);
  AddressSpace as;
  bfs.Build(as);
  const Vma* edges = nullptr;
  for (const Vma& v : as.vmas()) {
    if (v.name == "graph.edges") {
      edges = &v;
    }
  }
  ASSERT_NE(edges, nullptr);
  std::vector<MemAccess> buf(65536);
  bfs.NextBatch(buf.data(), buf.size());
  u64 edge_hits = 0;
  for (const MemAccess& a : buf) {
    edge_hits += edges->Contains(a.addr);
  }
  EXPECT_GT(edge_hits, buf.size() / 12);
}

TEST(SparkTest, PhasesAlternate) {
  SparkTeraSortWorkload spark(SmallParams(MiB(32)));
  AddressSpace as;
  spark.Build(as);
  ASSERT_EQ(as.vmas().size(), 3u);  // input, shuffle, output
  const Vma& input = as.vma(0);
  const Vma& shuffle = as.vma(1);
  const Vma& output = as.vma(2);
  // Run long enough to cross map -> reduce -> map.
  std::vector<MemAccess> buf(8192);
  u64 input_hits = 0;
  u64 shuffle_hits = 0;
  u64 output_hits = 0;
  for (int i = 0; i < 200; ++i) {
    spark.NextBatch(buf.data(), buf.size());
    for (const MemAccess& a : buf) {
      input_hits += input.Contains(a.addr);
      shuffle_hits += shuffle.Contains(a.addr);
      output_hits += output.Contains(a.addr);
    }
  }
  EXPECT_GT(input_hits, 0u);
  EXPECT_GT(shuffle_hits, 0u);
  EXPECT_GT(output_hits, 0u);
}

TEST(SparkTest, ReadWriteMix) {
  SparkTeraSortWorkload spark(SmallParams(MiB(32)));
  AddressSpace as;
  spark.Build(as);
  double wf = MeasuredWriteFraction(spark);
  EXPECT_GT(wf, 0.25);
  EXPECT_LT(wf, 0.65);
}

TEST(PingPongTest, BuildAndAddresses) {
  PingPongWorkload pp(SmallParams(MiB(64)));
  AddressSpace as;
  pp.Build(as);
  EXPECT_EQ(as.vmas().size(), 1u);  // one table; the two sets live inside it
  CheckAddressesInVmas(pp, as);
}

TEST(PingPongTest, ReadWriteOneToOne) {
  PingPongWorkload pp(SmallParams(MiB(64)));
  AddressSpace as;
  pp.Build(as);
  EXPECT_DOUBLE_EQ(MeasuredWriteFraction(pp), 0.5);  // pure read+write updates
}

TEST(PingPongTest, ActiveSetReceivesMostAccesses) {
  PingPongWorkload::Options options;
  options.flip_ops = 0;  // hold set A hot for the whole measurement
  PingPongWorkload pp(SmallParams(MiB(64)), options);
  AddressSpace as;
  pp.Build(as);
  std::vector<HotRange> truth = pp.TrueHotRanges();
  ASSERT_EQ(truth.size(), 1u);
  EXPECT_EQ(truth[0].start, pp.set_a().start);
  std::vector<MemAccess> buf(65536);
  pp.NextBatch(buf.data(), buf.size());
  u64 active = 0;
  u64 inactive = 0;
  for (const MemAccess& a : buf) {
    active += a.addr >= truth[0].start && a.addr < truth[0].end();
    inactive += a.addr >= pp.set_b().start && a.addr < pp.set_b().end();
  }
  // ~90% of updates hit the active set; the cold set only sees its share of
  // the uniform background (hot_fraction of the remaining 10%).
  EXPECT_GT(static_cast<double>(active) / buf.size(), 0.8);
  EXPECT_LT(static_cast<double>(inactive) / buf.size(), 0.05);
}

TEST(PingPongTest, HotSetFlipsEachEpoch) {
  PingPongWorkload::Options options;
  options.flip_ops = 1000;
  PingPongWorkload pp(SmallParams(MiB(64)), options);
  AddressSpace as;
  pp.Build(as);
  ASSERT_EQ(pp.TrueHotRanges()[0].start, pp.set_a().start);
  std::vector<MemAccess> buf(2048);  // 1024 updates = one epoch boundary
  pp.NextBatch(buf.data(), buf.size());
  EXPECT_EQ(pp.epoch(), 1u);
  EXPECT_EQ(pp.TrueHotRanges()[0].start, pp.set_b().start);
  pp.NextBatch(buf.data(), buf.size());
  EXPECT_EQ(pp.epoch(), 2u);
  EXPECT_EQ(pp.TrueHotRanges()[0].start, pp.set_a().start);
}

TEST(PingPongTest, SetsAreDisjoint) {
  PingPongWorkload pp(SmallParams(MiB(64)));
  AddressSpace as;
  pp.Build(as);
  EXPECT_LT(pp.set_a().end(), pp.set_b().start);
  EXPECT_EQ(pp.set_a().len, pp.set_b().len);
}

TEST(WorkloadFactoryTest, PingPongRegistered) {
  auto w = MakeWorkload("pingpong", /*sim_scale=*/4096, 8, 1);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->name(), "pingpong");
  EXPECT_EQ(w->params().footprint_bytes, GiB(400) / 4096);
  AddressSpace as;
  w->Build(as);
  std::vector<MemAccess> buf(1024);
  EXPECT_EQ(w->NextBatch(buf.data(), 1024), 1024u);
}

TEST(WorkloadFactoryTest, AllNamesBuild) {
  for (const std::string& name : AllWorkloadNames()) {
    auto w = MakeWorkload(name, /*sim_scale=*/4096, 8, 1);
    ASSERT_NE(w, nullptr) << name;
    EXPECT_EQ(w->name(), name);
    AddressSpace as;
    w->Build(as);
    EXPECT_GT(as.total_bytes(), Bytes{});
    std::vector<MemAccess> buf(1024);
    EXPECT_EQ(w->NextBatch(buf.data(), 1024), 1024u);
  }
}

TEST(WorkloadFactoryTest, FootprintsMatchTable2Scaled) {
  const u64 scale = 4096;
  EXPECT_EQ(MakeWorkload("gups", scale, 8, 1)->params().footprint_bytes, GiB(512) / scale);
  EXPECT_EQ(MakeWorkload("voltdb", scale, 8, 1)->params().footprint_bytes, GiB(300) / scale);
  EXPECT_EQ(MakeWorkload("cassandra", scale, 8, 1)->params().footprint_bytes,
            GiB(400) / scale);
  EXPECT_EQ(MakeWorkload("bfs", scale, 8, 1)->params().footprint_bytes, GiB(525) / scale);
  EXPECT_EQ(MakeWorkload("spark", scale, 8, 1)->params().footprint_bytes, GiB(350) / scale);
}

TEST(WorkloadDeterminismTest, SameSeedSameStream) {
  auto a = MakeWorkload("voltdb", 4096, 8, 99);
  auto b = MakeWorkload("voltdb", 4096, 8, 99);
  AddressSpace as_a;
  AddressSpace as_b;
  a->Build(as_a);
  b->Build(as_b);
  std::vector<MemAccess> buf_a(4096);
  std::vector<MemAccess> buf_b(4096);
  a->NextBatch(buf_a.data(), 4096);
  b->NextBatch(buf_b.data(), 4096);
  for (u32 i = 0; i < 4096; ++i) {
    EXPECT_EQ(buf_a[i].addr, buf_b[i].addr);
    EXPECT_EQ(buf_a[i].is_write, buf_b[i].is_write);
  }
}

}  // namespace
}  // namespace mtm
