// Tests for the reporting module and the flag parser.
#include <gtest/gtest.h>

#include "src/common/flags.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/report.h"

namespace mtm {
namespace {

RunResult SampleResult() {
  RunResult r;
  r.workload = "gups";
  r.solution = "mtm";
  r.app_ns = Nanos(2'000'000'000);
  r.profiling_ns = Nanos(100'000'000);
  r.migration_ns = Nanos(50'000'000);
  r.total_accesses = 1'000'000;
  r.component_app_accesses = {700'000, 100'000, 200'000, 0};
  r.migration_stats.bytes_migrated = MiB(64);
  r.migration_stats.sync_fallbacks = 3;
  r.migration_stats.async_copies = 5;
  r.migration_stats.copy_shards = 12;
  r.migration_stats.async_copy_bytes = MiB(48);
  r.migration_stats.fallback_copy_bytes = MiB(16);
  r.migration_stats.copy_checksum = 0xDEADBEEF;
  r.profiler_memory_bytes = Bytes(4096);
  r.footprint_bytes = GiB(1);
  return r;
}

TEST(ReportTest, CsvRowMatchesHeaderColumns) {
  std::string header = CsvHeader();
  std::string row = CsvRow(SampleResult());
  auto count = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count(header), count(row));
  EXPECT_NE(row.find("gups,mtm"), std::string::npos);
  // Copy-engine accounting rides in the CSV (the JSON schema is goldened).
  EXPECT_NE(header.find("async_copies"), std::string::npos);
  EXPECT_NE(header.find("copy_checksum"), std::string::npos);
  EXPECT_NE(row.find(std::to_string(u64{0xDEADBEEF})), std::string::npos);
}

TEST(ReportTest, HumanReportMentionsEverything) {
  std::string report = HumanReport(SampleResult());
  EXPECT_NE(report.find("gups under mtm"), std::string::npos);
  EXPECT_NE(report.find("migration"), std::string::npos);
  EXPECT_NE(report.find("sync fallbacks"), std::string::npos);
  EXPECT_NE(report.find("async copy"), std::string::npos);
}

TEST(ReportTest, JsonWellFormedish) {
  RunResult r = SampleResult();
  IntervalRecord iv;
  iv.end_time_ns = Nanos(1'000'000);
  iv.fast_tier_accesses = 42;
  r.intervals.push_back(iv);
  std::string json = JsonReport(r);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"workload\":\"gups\""), std::string::npos);
  EXPECT_NE(json.find("\"intervals\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"fast_tier_accesses\":42"), std::string::npos);
  // Balanced braces/brackets.
  int braces = 0;
  int brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : (c == '}' ? -1 : 0);
    brackets += c == '[' ? 1 : (c == ']' ? -1 : 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ReportTest, RenderDispatch) {
  RunResult r = SampleResult();
  EXPECT_EQ(Render(r, ReportFormat::kCsv), CsvRow(r));
  EXPECT_EQ(Render(r, ReportFormat::kJson), JsonReport(r));
  EXPECT_EQ(Render(r, ReportFormat::kHuman), HumanReport(r));
}

TEST(FlagsTest, ParsesKeyValueAndBool) {
  const char* argv[] = {"prog", "--workload=voltdb", "--two-tier", "--scale=256",
                        "--alpha=0.25", "positional"};
  FlagSet flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetString("workload", "x"), "voltdb");
  EXPECT_TRUE(flags.GetBool("two-tier", false));
  EXPECT_EQ(flags.GetU64("scale", 0), 256u);
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0), 0.25);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  FlagSet flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetString("missing", "fallback"), "fallback");
  EXPECT_EQ(flags.GetU64("missing", 7), 7u);
  EXPECT_FALSE(flags.GetBool("missing", false));
  EXPECT_TRUE(flags.GetBool("missing", true));
}

TEST(FlagsTest, ExplicitBooleanValues) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=false"};
  FlagSet flags(5, const_cast<char**>(argv));
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
}

}  // namespace
}  // namespace mtm
