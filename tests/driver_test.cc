// End-to-end integration tests: the §8 daemon loop over every solution.
#include <gtest/gtest.h>

#include "src/common/types.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"
#include "src/migration/mechanism.h"

namespace mtm {
namespace {

ExperimentConfig TinyConfig() {
  ExperimentConfig config;
  config.sim_scale = 4096;  // GUPS at 128 MiB: fast tests
  config.num_intervals = 10;
  config.seed = 7;
  return config;
}

TEST(SolutionTest, NamesRoundTrip) {
  for (SolutionKind kind :
       {SolutionKind::kFirstTouch, SolutionKind::kHmc, SolutionKind::kVanillaTieredAutoNuma,
        SolutionKind::kTieredAutoNuma, SolutionKind::kAutoTiering, SolutionKind::kHemem,
        SolutionKind::kMtm, SolutionKind::kThermostatProfilerMtmMigration,
        SolutionKind::kAutoNumaProfilerMtmMigration}) {
    EXPECT_EQ(SolutionKindFromName(SolutionKindName(kind)), kind);
  }
  EXPECT_EQ(Figure4Solutions().size(), 6u);
}

TEST(DriverTest, FirstTouchNeverMigrates) {
  RunResult r = RunExperiment("gups", SolutionKind::kFirstTouch, TinyConfig());
  EXPECT_EQ(r.migration_stats.bytes_migrated, Bytes{});
  EXPECT_EQ(r.profiling_ns, SimNanos{});
  EXPECT_GT(r.app_ns, SimNanos{});
  EXPECT_GT(r.total_accesses, 0u);
}

TEST(DriverTest, MtmProfilesAndMigrates) {
  RunResult r = RunExperiment("gups", SolutionKind::kMtm, TinyConfig());
  EXPECT_GT(r.profiling_ns, SimNanos{});
  EXPECT_GT(r.migration_stats.bytes_migrated, Bytes{});
  EXPECT_GT(r.profiler_memory_bytes, Bytes{});
  EXPECT_GT(r.avg_num_regions, 0.0);
}

TEST(DriverTest, BreakdownSumsToTotal) {
  RunResult r = RunExperiment("voltdb", SolutionKind::kMtm, TinyConfig());
  EXPECT_EQ(r.total_ns(), r.app_ns + r.profiling_ns + r.migration_ns);
}

TEST(DriverTest, ProfilingWithinOverheadConstraint) {
  // §5.3: profiling stays within the 5% target (small slack for PEBS).
  RunResult r = RunExperiment("gups", SolutionKind::kMtm, TinyConfig());
  EXPECT_LT(static_cast<double>(r.profiling_ns.value()),
            0.07 * static_cast<double>(r.app_ns.value()) + 1e6);
}

TEST(DriverTest, FixedWorkStopsEarly) {
  ExperimentConfig config = TinyConfig();
  config.num_intervals = 1000;
  config.target_accesses = 500'000;
  RunResult r = RunExperiment("gups", SolutionKind::kFirstTouch, config);
  EXPECT_GE(r.total_accesses, 500'000u);
  EXPECT_LT(r.total_accesses, 1'500'000u);
}

TEST(DriverTest, IntervalRecordsCollected) {
  ExperimentConfig config = TinyConfig();
  RunOptions options;
  options.record_intervals = true;
  options.evaluate_quality = true;
  RunResult r = RunExperiment("gups", SolutionKind::kMtm, config, options);
  ASSERT_EQ(r.intervals.size(), config.num_intervals);
  // GUPS has ground truth; late-interval recall should be meaningful.
  EXPECT_GT(r.intervals.back().quality.true_hot_bytes, Bytes{});
  EXPECT_GE(r.intervals.back().quality.recall, 0.0);
  EXPECT_LE(r.intervals.back().quality.recall, 1.0);
}

TEST(DriverTest, TierAccountingCoversAllAccesses) {
  RunResult r = RunExperiment("voltdb", SolutionKind::kFirstTouch, TinyConfig());
  u64 sum = 0;
  for (u64 c : r.component_app_accesses) {
    sum += c;
  }
  // Init prefault also counts app accesses at components; totals must cover
  // at least the batch accesses.
  EXPECT_GE(sum, r.total_accesses);
}

struct SolutionCase {
  SolutionKind kind;
  const char* workload;
};

class AllSolutionsTest : public ::testing::TestWithParam<SolutionCase> {};

TEST_P(AllSolutionsTest, RunsToCompletion) {
  const SolutionCase& param = GetParam();
  ExperimentConfig config = TinyConfig();
  config.num_intervals = 6;
  RunResult r = RunExperiment(param.workload, param.kind, config);
  EXPECT_GT(r.total_accesses, 0u);
  EXPECT_GT(r.app_ns, SimNanos{});
  EXPECT_EQ(r.solution, SolutionKindName(param.kind));
  EXPECT_EQ(r.workload, param.workload);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllSolutionsTest,
    ::testing::Values(SolutionCase{SolutionKind::kFirstTouch, "gups"},
                      SolutionCase{SolutionKind::kHmc, "gups"},
                      SolutionCase{SolutionKind::kVanillaTieredAutoNuma, "gups"},
                      SolutionCase{SolutionKind::kTieredAutoNuma, "gups"},
                      SolutionCase{SolutionKind::kAutoTiering, "gups"},
                      SolutionCase{SolutionKind::kMtm, "gups"},
                      SolutionCase{SolutionKind::kThermostatProfilerMtmMigration, "gups"},
                      SolutionCase{SolutionKind::kAutoNumaProfilerMtmMigration, "gups"},
                      SolutionCase{SolutionKind::kMtm, "voltdb"},
                      SolutionCase{SolutionKind::kMtm, "cassandra"},
                      SolutionCase{SolutionKind::kMtm, "bfs"},
                      SolutionCase{SolutionKind::kMtm, "sssp"},
                      SolutionCase{SolutionKind::kMtm, "spark"},
                      SolutionCase{SolutionKind::kTieredAutoNuma, "voltdb"},
                      SolutionCase{SolutionKind::kAutoTiering, "spark"}));

TEST(DriverTest, TwoTierHememRuns) {
  ExperimentConfig config = TinyConfig();
  config.two_tier = true;
  RunResult r = RunExperiment("gups", SolutionKind::kHemem, config);
  EXPECT_EQ(r.component_app_accesses.size(), 2u);
  EXPECT_GT(r.total_accesses, 0u);
}

TEST(DriverTest, TwoTierMtmRuns) {
  ExperimentConfig config = TinyConfig();
  config.two_tier = true;
  RunResult r = RunExperiment("gups", SolutionKind::kMtm, config);
  EXPECT_GT(r.migration_stats.bytes_migrated, Bytes{});
}

TEST(DriverTest, MtmAblationsRun) {
  ExperimentConfig config = TinyConfig();
  config.num_intervals = 5;
  config.mtm.adaptive_regions = false;
  RunResult no_amr = RunExperiment("gups", SolutionKind::kMtm, config);
  EXPECT_GT(no_amr.total_accesses, 0u);

  config = TinyConfig();
  config.num_intervals = 5;
  config.mtm.use_pebs = false;
  RunResult no_pebs = RunExperiment("gups", SolutionKind::kMtm, config);
  EXPECT_GT(no_pebs.total_accesses, 0u);

  config = TinyConfig();
  config.num_intervals = 5;
  config.mtm.mechanism = MechanismKind::kMmrSync;
  RunResult no_async = RunExperiment("gups", SolutionKind::kMtm, config);
  EXPECT_GT(no_async.total_accesses, 0u);
  EXPECT_EQ(no_async.migration_stats.sync_fallbacks, 0u);
}

TEST(DriverTest, SlowTierFirstPlacementUsed) {
  // MTM starts in the slow tier; the very first interval's fast-tier
  // accesses should be near zero under slow-tier-first.
  ExperimentConfig config = TinyConfig();
  RunOptions options;
  options.record_intervals = true;
  RunResult r = RunExperiment("gups", SolutionKind::kMtm, config, options);
  ASSERT_FALSE(r.intervals.empty());
  EXPECT_LT(r.intervals.front().fast_tier_accesses, r.total_accesses / 20);
}

TEST(DriverTest, MemoryOverheadTinyVsFootprint) {
  // Table 5: MTM metadata is a vanishing fraction of the working set.
  RunResult r = RunExperiment("gups", SolutionKind::kMtm, TinyConfig());
  EXPECT_LT(static_cast<double>(r.profiler_memory_bytes.value()),
            0.01 * static_cast<double>(r.footprint_bytes.value()));
}

TEST(DriverTest, DeterministicAcrossRuns) {
  RunResult a = RunExperiment("cassandra", SolutionKind::kMtm, TinyConfig());
  RunResult b = RunExperiment("cassandra", SolutionKind::kMtm, TinyConfig());
  EXPECT_EQ(a.total_ns(), b.total_ns());
  EXPECT_EQ(a.total_accesses, b.total_accesses);
  EXPECT_EQ(a.migration_stats.bytes_migrated, b.migration_stats.bytes_migrated);
}

}  // namespace
}  // namespace mtm
