// Tests for the five-level simulated page table: mapping, huge pages,
// accessed/dirty semantics, PTE scans, and structural invariants.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/sim/page_table.h"

namespace mtm {
namespace {

constexpr VirtAddr kBase{0x5500'0000'0000ull};

TEST(PageTableTest, MapAndFindBasePage) {
  PageTable pt;
  ASSERT_TRUE(pt.MapRange(kBase, kPageBytes, ComponentId(2), /*huge=*/false).ok());
  Bytes size;
  Pte* pte = pt.Find(kBase + 100, &size);
  ASSERT_NE(pte, nullptr);
  EXPECT_EQ(size, kPageBytes);
  EXPECT_EQ(pte->component, ComponentId(2));
  EXPECT_TRUE(pte->present());
  EXPECT_FALSE(pte->huge());
  EXPECT_EQ(pt.mapped_bytes(), kPageBytes);
  EXPECT_EQ(pt.mapped_base_pages(), 1u);
}

TEST(PageTableTest, MapAndFindHugePage) {
  PageTable pt;
  ASSERT_TRUE(pt.MapRange(kBase, kHugePageBytes, ComponentId(1), /*huge=*/true).ok());
  Bytes size;
  Pte* pte = pt.Find(kBase + kPageSize * 37, &size);
  ASSERT_NE(pte, nullptr);
  EXPECT_EQ(size, kHugePageBytes);
  EXPECT_TRUE(pte->huge());
  EXPECT_EQ(pt.mapped_huge_pages(), 1u);
  // The whole 2 MiB range resolves to the same entry.
  EXPECT_EQ(pt.Find(kBase), pte);
  EXPECT_EQ(pt.Find(kBase + kHugePageSize - 1), pte);
}

TEST(PageTableTest, UnalignedMapRejected) {
  PageTable pt;
  EXPECT_FALSE(pt.MapRange(kBase + 1, kPageBytes, ComponentId(0), false).ok());
  EXPECT_FALSE(pt.MapRange(kBase, kPageBytes + Bytes(1), ComponentId(0), false).ok());
  EXPECT_FALSE(pt.MapRange(kBase + kPageSize, kHugePageBytes, ComponentId(0), true).ok());
  EXPECT_FALSE(pt.MapRange(kBase, Bytes{}, ComponentId(0), false).ok());
}

TEST(PageTableTest, DoubleMapRejected) {
  PageTable pt;
  ASSERT_TRUE(pt.MapRange(kBase, kPageBytes, ComponentId(0), false).ok());
  EXPECT_EQ(pt.MapRange(kBase, kPageBytes, ComponentId(1), false).code(), StatusCode::kAlreadyExists);
  // Huge over existing base pages rejected, and vice versa.
  EXPECT_FALSE(pt.MapRange(PageAlignDown(kBase), kHugePageBytes, ComponentId(1), true).ok());
  ASSERT_TRUE(pt.MapRange(kBase + kHugePageSize, kHugePageBytes, ComponentId(1), true).ok());
  EXPECT_FALSE(pt.MapRange(kBase + kHugePageSize, kPageBytes, ComponentId(1), false).ok());
}

TEST(PageTableTest, UnmapRange) {
  PageTable pt;
  ASSERT_TRUE(pt.MapRange(kBase, 8 * kPageBytes, ComponentId(0), false).ok());
  ASSERT_TRUE(pt.UnmapRange(kBase, 4 * kPageBytes).ok());
  EXPECT_EQ(pt.Find(kBase), nullptr);
  EXPECT_NE(pt.Find(kBase + 4 * kPageSize), nullptr);
  EXPECT_EQ(pt.mapped_base_pages(), 4u);
}

TEST(PageTableTest, UnmapCannotSplitHugeMapping) {
  PageTable pt;
  ASSERT_TRUE(pt.MapRange(kBase, kHugePageBytes, ComponentId(0), true).ok());
  EXPECT_FALSE(pt.UnmapRange(kBase, kPageBytes).ok());
  EXPECT_TRUE(pt.UnmapRange(kBase, kHugePageBytes).ok());
  EXPECT_EQ(pt.mapped_bytes(), Bytes{});
}

TEST(PageTableTest, TouchSetsAccessedAndDirty) {
  PageTable pt;
  ASSERT_TRUE(pt.MapRange(kBase, kPageBytes, ComponentId(0), false).ok());
  Pte* pte = nullptr;
  EXPECT_EQ(pt.Touch(kBase, /*is_write=*/false, &pte), PageTable::TouchResult::kOk);
  ASSERT_NE(pte, nullptr);
  EXPECT_TRUE(pte->accessed());
  EXPECT_FALSE(pte->dirty());
  EXPECT_EQ(pt.Touch(kBase, /*is_write=*/true), PageTable::TouchResult::kOk);
  EXPECT_TRUE(pte->dirty());
}

TEST(PageTableTest, TouchUnmappedIsFault) {
  PageTable pt;
  EXPECT_EQ(pt.Touch(kBase, false), PageTable::TouchResult::kNotPresent);
}

TEST(PageTableTest, WriteTrackFaultOnlyOnWrite) {
  PageTable pt;
  ASSERT_TRUE(pt.MapRange(kBase, kPageBytes, ComponentId(0), false).ok());
  pt.Find(kBase)->Set(Pte::kWriteTracked);
  EXPECT_EQ(pt.Touch(kBase, /*is_write=*/false), PageTable::TouchResult::kOk);
  EXPECT_EQ(pt.Touch(kBase, /*is_write=*/true), PageTable::TouchResult::kWriteTrackFault);
}

TEST(PageTableTest, ScanAccessedReadsAndClears) {
  // The paper's PTE-scan primitive: read the accessed bit, clear it, no TLB
  // flush (§5).
  PageTable pt;
  ASSERT_TRUE(pt.MapRange(kBase, kPageBytes, ComponentId(0), false).ok());
  bool accessed = true;
  ASSERT_TRUE(pt.ScanAccessed(kBase, &accessed));
  EXPECT_FALSE(accessed);  // not yet touched
  pt.Touch(kBase, false);
  ASSERT_TRUE(pt.ScanAccessed(kBase, &accessed));
  EXPECT_TRUE(accessed);
  ASSERT_TRUE(pt.ScanAccessed(kBase, &accessed));
  EXPECT_FALSE(accessed);  // cleared by the previous scan
  EXPECT_FALSE(pt.ScanAccessed(kBase + kHugePageSize, &accessed));  // unmapped
}

TEST(PageTableTest, HugePageHasOneAccessedBit) {
  // §5.4: a huge page is profiled through its single PDE.
  PageTable pt;
  ASSERT_TRUE(pt.MapRange(kBase, kHugePageBytes, ComponentId(0), true).ok());
  pt.Touch(kBase + 300 * kPageSize, false);
  bool accessed = false;
  ASSERT_TRUE(pt.ScanAccessed(kBase + 7 * kPageSize, &accessed));
  EXPECT_TRUE(accessed);  // any sub-page access shows at the huge PTE
}

TEST(PageTableTest, SplitHuge) {
  PageTable pt;
  ASSERT_TRUE(pt.MapRange(kBase, kHugePageBytes, ComponentId(3), true).ok());
  pt.Touch(kBase, true);
  ASSERT_TRUE(pt.SplitHuge(kBase + 5 * kPageSize).ok());
  EXPECT_EQ(pt.mapped_huge_pages(), 0u);
  EXPECT_EQ(pt.mapped_base_pages(), kPagesPerHugePage);
  Bytes size;
  Pte* pte = pt.Find(kBase + 100 * kPageSize, &size);
  ASSERT_NE(pte, nullptr);
  EXPECT_EQ(size, kPageBytes);
  EXPECT_EQ(pte->component, ComponentId(3));
  EXPECT_TRUE(pte->accessed());  // A/D bits inherited
  EXPECT_TRUE(pte->dirty());
  EXPECT_FALSE(pt.SplitHuge(kBase).ok());  // already split
}

TEST(PageTableTest, ForEachMappingVisitsInOrder) {
  PageTable pt;
  ASSERT_TRUE(pt.MapRange(kBase, 3 * kPageBytes, ComponentId(0), false).ok());
  ASSERT_TRUE(pt.MapRange(kBase + kHugePageSize, kHugePageBytes, ComponentId(1), true).ok());
  std::vector<std::pair<VirtAddr, Bytes>> seen;
  pt.ForEachMapping(kBase, 2 * kHugePageBytes,
                    [&](VirtAddr addr, Bytes size, Pte&) { seen.emplace_back(addr, size); });
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], std::make_pair(kBase, kPageBytes));
  EXPECT_EQ(seen[3], std::make_pair(kBase + kHugePageSize, kHugePageBytes));
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_GT(seen[i].first, seen[i - 1].first);
  }
}

TEST(PageTableTest, ForEachMappingRespectsRangeStart) {
  PageTable pt;
  ASSERT_TRUE(pt.MapRange(kBase, 4 * kPageBytes, ComponentId(0), false).ok());
  int count = 0;
  pt.ForEachMapping(kBase + 2 * kPageSize, 2 * kPageBytes,
                    [&](VirtAddr, Bytes, Pte&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(PageTableTest, GenerationBumpsOnStructuralChange) {
  PageTable pt;
  u64 g0 = pt.generation();
  ASSERT_TRUE(pt.MapRange(kBase, kPageBytes, ComponentId(0), false).ok());
  u64 g1 = pt.generation();
  EXPECT_GT(g1, g0);
  ASSERT_TRUE(pt.UnmapRange(kBase, kPageBytes).ok());
  EXPECT_GT(pt.generation(), g1);
}

TEST(PageTableTest, PageTablePagesGrow) {
  PageTable pt;
  u64 before = pt.page_table_pages();
  ASSERT_TRUE(pt.MapRange(kBase, MiB(8), ComponentId(0), false).ok());
  EXPECT_GT(pt.page_table_pages(), before);
}

TEST(PageTableTest, ScanCostOfLargeTable) {
  // §3 motivation: large memory means many PTEs; sanity-check the count a
  // full scan would visit for a 256 MiB mapping in base pages.
  PageTable pt;
  ASSERT_TRUE(pt.MapRange(kBase, MiB(256), ComponentId(0), false).ok());
  u64 visited = 0;
  pt.ForEachMapping(kBase, MiB(256), [&](VirtAddr, Bytes, Pte&) { ++visited; });
  EXPECT_EQ(visited, NumPages(MiB(256)));
}

// Property test: a random interleaving of maps and unmaps never corrupts
// byte accounting and Find agrees with our shadow model.
TEST(PageTablePropertyTest, RandomMapUnmapConsistency) {
  PageTable pt;
  Rng rng(77);
  std::set<u64> mapped;  // huge-page indices
  const u64 slots = 128;
  for (int step = 0; step < 2000; ++step) {
    u64 slot = rng.NextBounded(slots);
    VirtAddr addr = kBase + slot * kHugePageSize;
    if (mapped.count(slot)) {
      ASSERT_TRUE(pt.UnmapRange(addr, kHugePageBytes).ok());
      mapped.erase(slot);
    } else {
      bool huge = rng.NextBernoulli(0.5);
      ASSERT_TRUE(pt.MapRange(addr, kHugePageBytes, static_cast<ComponentId>(slot % 4), huge)
                      .ok());
      mapped.insert(slot);
    }
  }
  Bytes expected_bytes = HugePagesToBytes(mapped.size());
  EXPECT_EQ(pt.mapped_bytes(), expected_bytes);
  for (u64 slot = 0; slot < slots; ++slot) {
    VirtAddr addr = kBase + slot * kHugePageSize + kPageSize * 3;
    Pte* pte = pt.Find(addr);
    if (mapped.count(slot)) {
      ASSERT_NE(pte, nullptr) << slot;
      EXPECT_EQ(pte->component, ComponentId(static_cast<u32>(slot % 4)));
    } else {
      EXPECT_EQ(pte, nullptr) << slot;
    }
  }
}

struct HugenessCase {
  bool huge;
  u64 pages;
};

class PageTableParamTest : public ::testing::TestWithParam<HugenessCase> {};

TEST_P(PageTableParamTest, MapTouchScanCycle) {
  const HugenessCase& param = GetParam();
  PageTable pt;
  u64 unit = param.huge ? kHugePageSize : kPageSize;
  ASSERT_TRUE(pt.MapRange(kBase, Bytes(param.pages * unit), ComponentId(0), param.huge).ok());
  for (u64 i = 0; i < param.pages; ++i) {
    EXPECT_EQ(pt.Touch(kBase + i * unit + 64, i % 2 == 0), PageTable::TouchResult::kOk);
  }
  u64 accessed_count = 0;
  for (u64 i = 0; i < param.pages; ++i) {
    bool accessed = false;
    ASSERT_TRUE(pt.ScanAccessed(kBase + i * unit, &accessed));
    accessed_count += accessed;
  }
  EXPECT_EQ(accessed_count, param.pages);
}

INSTANTIATE_TEST_SUITE_P(Hugeness, PageTableParamTest,
                         ::testing::Values(HugenessCase{false, 1}, HugenessCase{false, 64},
                                           HugenessCase{false, 513}, HugenessCase{true, 1},
                                           HugenessCase{true, 8}, HugenessCase{true, 33}));

}  // namespace
}  // namespace mtm
